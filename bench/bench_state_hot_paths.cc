// Micro-benchmarks for the state-management hot paths: checkpoint capture,
// delta application, distribution-aware partitioning, buffer trimming and
// checkpoint serialisation, each measured against the naive (pre-rework)
// reference implementation — unsorted linear-scan filters, map-rebuild delta
// application, vector-erase trims and a byte-at-a-time encoder without
// reservation. Results go to stdout and BENCH_state_hot_paths.json.
//
// Usage: bench_state_hot_paths [output.json]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/state.h"
#include "core/state_ops.h"
#include "serde/frame.h"

namespace seep::bench {
namespace {

using core::KeyRange;
using core::ProcessingState;
using core::StateCheckpoint;
using core::Tuple;

// Best-of-`reps` wall time of `fn`, in microseconds. Min (not mean) filters
// out allocator warm-up and scheduler noise, which dwarf the microsecond-
// scale fast paths at small sizes.
template <typename Fn>
double TimeUs(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    best = std::min(best, us);
  }
  return best;
}

// Like TimeUs, but `setup` runs untimed before each rep and its result is
// passed to `fn` — for primitives that consume their input (delta apply,
// trim), so per-rep reconstruction does not dilute the measurement.
template <typename Setup, typename Fn>
double TimeConsumingUs(int reps, Setup&& setup, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto input = setup();
    const auto start = std::chrono::steady_clock::now();
    fn(input);
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    best = std::min(best, us);
  }
  return best;
}

// ----------------------------------------------------------- naive references
// The pre-rework implementations, kept verbatim in spirit: these are what the
// speedup column is measured against.

/// Byte-at-a-time encoder: fixed-width appends push one byte per call and
/// nothing ever reserves, so large checkpoints pay log(n) realloc-and-copy
/// cycles. Wire format is identical to serde::Encoder.
class NaiveEncoder {
 public:
  void AppendU8(uint8_t v) { buf_.push_back(v); }
  void AppendFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }
  void AppendFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }
  void AppendVarint64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(uint8_t(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(uint8_t(v));
  }
  void AppendVarintSigned64(int64_t v) {
    AppendVarint64((static_cast<uint64_t>(v) << 1) ^
                   static_cast<uint64_t>(v >> 63));
  }
  void AppendString(const std::string& s) {
    AppendVarint64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  const std::vector<uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

/// StateCheckpoint::Encode re-expressed over the naive encoder (checkpoints
/// in this bench carry no buffer state, so the buffer section is empty).
void NaiveEncodeCheckpoint(const StateCheckpoint& c, NaiveEncoder& enc) {
  SEEP_CHECK(c.buffer.buffers().empty());
  enc.AppendFixed32(c.op);
  enc.AppendFixed32(c.instance);
  enc.AppendFixed64(c.origin);
  enc.AppendFixed64(c.key_range.lo);
  enc.AppendFixed64(c.key_range.hi);
  enc.AppendVarintSigned64(c.out_clock);
  enc.AppendVarint64(c.seq);
  enc.AppendVarintSigned64(c.taken_at);
  enc.AppendVarint64(c.positions.positions().size());
  for (const auto& [origin, ts] : c.positions.positions()) {
    enc.AppendFixed64(origin);
    enc.AppendVarintSigned64(ts);
  }
  enc.AppendVarint64(c.processing.size());
  for (const auto& [key, value] : c.processing.entries()) {
    enc.AppendFixed64(key);
    enc.AppendString(value);
  }
  enc.AppendVarint64(0);  // empty buffer state
  enc.AppendU8(c.is_delta ? 1 : 0);
  enc.AppendVarint64(c.base_seq);
  enc.AppendVarint64(c.deleted_keys.size());
  for (KeyHash k : c.deleted_keys) enc.AppendFixed64(k);
  enc.AppendVarint64(c.buffer_front.size());
  for (const auto& [op_id, front] : c.buffer_front) {
    enc.AppendFixed32(op_id);
    enc.AppendVarintSigned64(front);
  }
}

/// Map-rebuild delta application: load every base entry into a std::map,
/// overlay the delta, erase deletions, rebuild the entry vector.
void NaiveApplyDelta(StateCheckpoint* base, const StateCheckpoint& delta) {
  std::map<KeyHash, std::string> merged;
  for (const auto& [key, value] : base->processing.entries()) {
    merged[key] = value;
  }
  for (const auto& [key, value] : delta.processing.entries()) {
    merged[key] = value;
  }
  for (KeyHash key : delta.deleted_keys) merged.erase(key);
  ProcessingState rebuilt;
  for (auto& [key, value] : merged) rebuilt.Add(key, std::move(value));
  base->processing = std::move(rebuilt);
  base->positions = delta.positions;
  base->out_clock = delta.out_clock;
  base->seq = delta.seq;
  base->taken_at = delta.taken_at;
}

/// Copy-keys-and-sort quantile split followed by a full linear scan per
/// partition (each entry is range-tested once per partition).
std::vector<StateCheckpoint> NaivePartition(const StateCheckpoint& checkpoint,
                                            uint32_t pi) {
  std::vector<KeyHash> keys;
  keys.reserve(checkpoint.processing.size());
  for (const auto& [key, value] : checkpoint.processing.entries()) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<KeyRange> ranges;
  KeyHash lo = checkpoint.key_range.lo;
  for (uint32_t i = 1; i < pi; ++i) {
    KeyHash cut = keys[keys.size() * i / pi];
    if (cut < lo) cut = lo;
    if (cut >= checkpoint.key_range.hi) cut = checkpoint.key_range.hi - 1;
    ranges.push_back(KeyRange{lo, cut});
    lo = cut + 1;
  }
  ranges.push_back(KeyRange{lo, checkpoint.key_range.hi});

  std::vector<StateCheckpoint> parts;
  for (const KeyRange& range : ranges) {
    StateCheckpoint part;
    part.op = checkpoint.op;
    part.key_range = range;
    part.seq = checkpoint.seq;
    part.positions = checkpoint.positions;
    for (const auto& [key, value] : checkpoint.processing.entries()) {
      if (range.Contains(key)) part.processing.Add(key, value);
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

// --------------------------------------------------------------- input makers

std::string ValueFor(Rng& rng) {
  return std::string(8 + rng.NextBounded(17),
                     static_cast<char>('a' + rng.NextBounded(26)));
}

/// A checkpoint with `n` distinct random-keyed entries and no buffer state.
StateCheckpoint MakeCheckpoint(size_t n, uint64_t seed) {
  Rng rng(seed);
  StateCheckpoint c;
  c.op = 3;
  c.instance = 1;
  c.origin = 9;
  c.seq = 4;
  c.out_clock = static_cast<int64_t>(n);
  c.positions.Set(9, static_cast<int64_t>(n));
  c.processing.Reserve(n);
  for (size_t i = 0; i < n; ++i) c.processing.Add(rng.Next(), ValueFor(rng));
  c.processing.entries();  // settle the one-time sort outside the timings
  return c;
}

Tuple MakeTuple(int64_t ts) {
  Tuple t;
  t.timestamp = ts;
  t.key = static_cast<KeyHash>(ts) * 2654435761u;
  t.event_time = ts;
  return t;
}

// ------------------------------------------------------------------- results

struct Row {
  const char* primitive;
  size_t size;
  double naive_us;
  double fast_us;
};

void Report(std::vector<Row>* rows, const char* primitive, size_t size,
            double naive_us, double fast_us) {
  std::printf("%-15s %9zu %14.1f %14.1f %9.1fx\n", primitive, size, naive_us,
              fast_us, naive_us / fast_us);
  std::fflush(stdout);
  rows->push_back(Row{primitive, size, naive_us, fast_us});
}

// ---------------------------------------------------------------- benchmarks

void BenchCapture(std::vector<Row>* rows, size_t n, int reps) {
  // Capture = canonicalise the operator's externalised state for shipping.
  // Naive: rebuild a std::map per capture. Fast: the entries are already
  // sorted (lazily, once), so a capture is a straight vector copy.
  const StateCheckpoint source = MakeCheckpoint(n, 0xCAFE + n);
  const double naive = TimeUs(reps, [&] {
    std::map<KeyHash, std::string> canonical;
    for (const auto& [key, value] : source.processing.entries()) {
      canonical[key] = value;
    }
    ProcessingState snap;
    for (const auto& [key, value] : canonical) snap.Add(key, value);
    SEEP_CHECK(snap.size() == source.processing.size());
  });
  const double fast = TimeUs(reps, [&] {
    ProcessingState snap = source.processing;
    SEEP_CHECK(snap.entries().size() == source.processing.size());
  });
  Report(rows, "capture", n, naive, fast);
}

void BenchDeltaApply(std::vector<Row>* rows, size_t n, int reps) {
  // 1% of keys updated, 0.1% deleted — the incremental-checkpoint shape of
  // a hot-set workload. Both sides pay the same fresh base copy per rep.
  const StateCheckpoint base = MakeCheckpoint(n, 0xD0 + n);
  const auto& entries = base.processing.entries();
  Rng rng(7);
  StateCheckpoint delta;
  delta.op = base.op;
  delta.instance = base.instance;
  delta.is_delta = true;
  delta.base_seq = base.seq;
  delta.seq = base.seq + 1;
  delta.positions = base.positions;
  for (size_t i = 0; i < n / 100; ++i) {
    delta.processing.Add(entries[rng.NextBounded(n)].first, ValueFor(rng));
  }
  for (size_t i = 0; i < n / 1000; ++i) {
    delta.deleted_keys.push_back(entries[rng.NextBounded(n)].first);
  }
  // The apply consumes the base, so each rep starts from an untimed copy —
  // only the application itself is measured.
  const auto fresh_base = [&] { return base; };
  const double naive = TimeConsumingUs(
      reps, fresh_base, [&](StateCheckpoint& work) {
    NaiveApplyDelta(&work, delta);
    SEEP_CHECK(work.seq == delta.seq);
  });
  const double fast = TimeConsumingUs(
      reps, fresh_base, [&](StateCheckpoint& work) {
    SEEP_CHECK(core::ApplyDelta(&work, delta).ok());
  });
  Report(rows, "delta_apply", n, naive, fast);
}

void BenchPartition(std::vector<Row>* rows, size_t n, int reps) {
  const StateCheckpoint source = MakeCheckpoint(n, 0xBEEF + n);
  constexpr uint32_t kPi = 8;
  const double naive = TimeUs(reps, [&] {
    const auto parts = NaivePartition(source, kPi);
    SEEP_CHECK(parts.size() == kPi);
  });
  const double fast = TimeUs(reps, [&] {
    const auto ranges = core::BalancedSplitRanges(source, kPi);
    const auto parts = core::PartitionCheckpointByRanges(source, ranges);
    SEEP_CHECK(parts.ok() && parts->size() == kPi);
  });
  Report(rows, "partition", n, naive, fast);
}

void BenchTrim(std::vector<Row>* rows, size_t n, int reps) {
  // 64 successive trim acknowledgements over an n-tuple replay buffer.
  // Naive: find_if + erase shifts every surviving tuple per trim. Fast:
  // binary search + front offset with amortised compaction.
  constexpr int kSteps = 64;
  const double naive = TimeConsumingUs(
      reps,
      [&] {
        std::vector<Tuple> buffer;
        buffer.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          buffer.push_back(MakeTuple(static_cast<int64_t>(i) + 1));
        }
        return buffer;
      },
      [&](std::vector<Tuple>& buffer) {
        for (int s = 1; s <= kSteps; ++s) {
          const int64_t up_to = static_cast<int64_t>(n) * s / kSteps;
          auto keep = std::find_if(
              buffer.begin(), buffer.end(),
              [&](const Tuple& t) { return t.timestamp > up_to; });
          buffer.erase(buffer.begin(), keep);
        }
        SEEP_CHECK(buffer.empty());
      });
  const double fast = TimeConsumingUs(
      reps,
      [&] {
        core::BufferState buffer;
        for (size_t i = 0; i < n; ++i) {
          buffer.Append(1, MakeTuple(static_cast<int64_t>(i) + 1));
        }
        return buffer;
      },
      [&](core::BufferState& buffer) {
        for (int s = 1; s <= kSteps; ++s) {
          buffer.Trim(1, static_cast<int64_t>(n) * s / kSteps);
        }
        SEEP_CHECK(buffer.TotalTuples() == 0);
      });
  Report(rows, "trim", n, naive, fast);
}

void BenchSerialize(std::vector<Row>* rows, size_t n, int reps) {
  const StateCheckpoint source = MakeCheckpoint(n, 0x5E + n);
  {
    // Untimed: both encoders produce the same wire bytes and the fast path
    // round-trips (frame + CRC + decode) back to the same state.
    NaiveEncoder naive_enc;
    NaiveEncodeCheckpoint(source, naive_enc);
    const std::vector<uint8_t> framed = source.Serialize();
    SEEP_CHECK(serde::FramePayload(naive_enc.buffer()) == framed);
    const auto back = StateCheckpoint::Deserialize(framed);
    SEEP_CHECK(back.ok() && back->processing.size() == n);
    SEEP_CHECK(back->Serialize() == framed);
  }
  // Timed: the encode itself. Framing and decode are byte-identical work on
  // both sides and would only dilute the comparison.
  const double naive = TimeUs(reps, [&] {
    NaiveEncoder enc;
    NaiveEncodeCheckpoint(source, enc);
    SEEP_CHECK(enc.buffer().size() > n);
  });
  const double fast = TimeUs(reps, [&] {
    serde::Encoder enc;
    source.Encode(&enc);
    SEEP_CHECK(enc.size() > n);
  });
  Report(rows, "serialize", n, naive, fast);
}

void BenchPartitionSerialize(std::vector<Row>* rows, size_t n, int reps) {
  // The scale-out hot path end to end: split the checkpoint into 8 partition
  // checkpoints, then serialise each for shipping to the new instances.
  const StateCheckpoint source = MakeCheckpoint(n, 0xFACE + n);
  constexpr uint32_t kPi = 8;
  const double naive = TimeUs(reps, [&] {
    size_t shipped = 0;
    for (const StateCheckpoint& part : NaivePartition(source, kPi)) {
      NaiveEncoder enc;
      NaiveEncodeCheckpoint(part, enc);
      shipped += enc.buffer().size();
    }
    SEEP_CHECK(shipped > n);
  });
  const double fast = TimeUs(reps, [&] {
    const auto ranges = core::BalancedSplitRanges(source, kPi);
    const auto parts = core::PartitionCheckpointByRanges(source, ranges);
    SEEP_CHECK(parts.ok());
    size_t shipped = 0;
    for (const StateCheckpoint& part : *parts) {
      serde::Encoder enc;
      part.Encode(&enc);
      shipped += enc.size();
    }
    SEEP_CHECK(shipped > n);
  });
  Report(rows, "part_serialize", n, naive, fast);
}

void WriteJson(FILE* f, const std::vector<Row>& rows) {
  std::fprintf(f, "{\n  \"bench\": \"state_hot_paths\",\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"primitive\": \"%s\", \"size\": %zu, "
                 "\"naive_us\": %.1f, \"fast_us\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.primitive, r.size, r.naive_us, r.fast_us,
                 r.naive_us / r.fast_us, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_state_hot_paths.json";
  // Open the output before the (minutes-long) measurements so a bad path
  // fails immediately instead of after the run.
  FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out);
    return 1;
  }
  std::printf("==== State hot paths: naive (pre-rework) vs current ====\n");
  std::printf("%-15s %9s %14s %14s %9s\n", "primitive", "entries", "naive(us)",
              "fast(us)", "speedup");
  std::vector<Row> rows;
  for (size_t n : std::vector<size_t>{1'000, 10'000, 100'000, 1'000'000}) {
    const int reps = n <= 10'000 ? 20 : (n <= 100'000 ? 8 : 3);
    BenchCapture(&rows, n, reps);
    BenchDeltaApply(&rows, n, reps);
    BenchPartition(&rows, n, reps);
    BenchTrim(&rows, n, n <= 100'000 ? reps : 2);
    BenchSerialize(&rows, n, reps);
    BenchPartitionSerialize(&rows, n, reps);
  }
  WriteJson(f, rows);
  std::fclose(f);
  std::printf("wrote %s\n", out);
  return 0;
}

}  // namespace
}  // namespace seep::bench

int main(int argc, char** argv) { return seep::bench::Main(argc, argv); }
