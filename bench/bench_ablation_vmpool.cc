// VM-pool ablation (paper §5.2): the pool decouples VM requests from
// minute-scale IaaS provisioning. We sweep the pool size p on the LRB ramp
// and measure VM-grant wait times, scale-out progress and latency. Without
// a pool (p=0), every scale out stalls ~90 s behind provisioning; a small
// pool removes the stall at modest extra VM cost.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

void BM_AblationVmPool(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Ablation (5.2)",
           "VM pool size vs scale-out stall time (LRB L=64 ramp, 90 s "
           "provisioning)");
    std::printf("%8s %16s %16s %12s %10s %14s\n", "pool p", "mean wait(s)",
                "max wait(s)", "scale-outs", "p95(ms)", "VM-hours");
    for (size_t pool : {0u, 1u, 2u, 4u, 8u}) {
      auto lrb = PaperLrb(64, /*duration_s=*/2400, 64, /*ramp_s=*/2000);
      lrb.seed = 15;
      auto query = workloads::lrb::BuildLrbQuery(lrb);
      sps::SpsConfig config = PaperControl();
      config.cluster.pool.target_size = pool;
      sps::Sps sps(std::move(query.graph), config);
      SEEP_CHECK(sps.Deploy().ok());
      sps.RunFor(2400);

      const auto& waits = sps.cluster().pool()->wait_times();
      std::printf("%8zu %16.1f %16.1f %12zu %10.0f %14.1f\n", pool,
                  waits.Mean(), waits.Max(),
                  sps.metrics().scale_outs.size(),
                  sps.metrics().latency_ms.Percentile(95),
                  sps.cluster().provider()->BilledVmSeconds() / 3600.0);
      if (pool == 0) {
        state.counters["max_wait_p0_s"] = waits.Max();
      }
      if (pool == 4) {
        state.counters["max_wait_p4_s"] = waits.Max();
      }
    }
    std::printf("(expected: p=0 waits ~90 s per scale-out; p>=2 waits ~2 s "
                "grant delay)\n");
  }
}

BENCHMARK(BM_AblationVmPool)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
