// Figure 9 reproduction: impact of the scale-out threshold δ on the number
// of allocated VMs and on processing latency (LRB, L=64). The paper finds a
// concave median-latency curve — latency rises both for low δ (too many
// disruptive scale-outs) and high δ (VMs near overload) — with δ=50–70% the
// sweet spot, and fewer VMs allocated as δ grows.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

struct ThresholdResult {
  double median_ms;
  double p95_ms;
  size_t vms;
  size_t scale_outs;
};

ThresholdResult RunWithThreshold(double threshold) {
  // Ramp to the L=64 peak over 2000 s (paper-relative rate), then hold.
  auto lrb = PaperLrb(64, /*duration_s=*/2400, 64, /*ramp_s=*/2000);
  lrb.seed = 9;
  auto query = workloads::lrb::BuildLrbQuery(lrb);
  sps::SpsConfig config = PaperControl();
  config.scaling.threshold = threshold;
  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  sps.RunFor(2400);
  return {sps.metrics().latency_ms.Median(),
          sps.metrics().latency_ms.Percentile(95), sps.VmsInUse(),
          sps.metrics().scale_outs.size()};
}

void BM_Fig09_ThresholdSweep(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Figure 9",
           "Impact of the scale-out threshold (delta) on processing latency "
           "(LRB L=64)");
    std::printf("%12s %12s %12s %8s %12s\n", "threshold(%)", "median(ms)",
                "p95(ms)", "VMs", "scale-outs");
    const double thresholds[] = {0.1, 0.3, 0.5, 0.7, 0.9};
    double vms_at_10 = 0, vms_at_90 = 0;
    for (double d : thresholds) {
      const ThresholdResult r = RunWithThreshold(d);
      std::printf("%12.0f %12.1f %12.1f %8zu %12zu\n", d * 100, r.median_ms,
                  r.p95_ms, r.vms, r.scale_outs);
      if (d == 0.1) vms_at_10 = static_cast<double>(r.vms);
      if (d == 0.9) vms_at_90 = static_cast<double>(r.vms);
    }
    std::printf("(paper: VMs fall as delta rises; median latency concave; "
                "best trade-off at 50-70%%)\n");
    state.counters["vms_at_10pct"] = vms_at_10;
    state.counters["vms_at_90pct"] = vms_at_90;
  }
}

BENCHMARK(BM_Fig09_ThresholdSweep)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
