// Elasticity ablation (the paper's §8 future work: "extend our scale out
// policy with support for scale in to enable truly elastic deployments").
// A load wave drives the word count query up and back down; with scale-in
// enabled the VM count follows the wave both ways and the bill shrinks.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

void BM_AblationElasticity(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Ablation (8)",
           "Elastic scale in on a load wave (word count; high phase "
           "60-300 s)");
    std::printf("%-12s %10s %12s %12s %12s\n", "scale-in", "end VMs",
                "end op-pi", "VM-hours", "p95(ms)");
    for (bool scale_in : {false, true}) {
      workloads::wordcount::WordCountConfig wc;
      wc.rate_tuples_per_sec = 200;
      wc.rate_fn = [](double t) {
        return (t >= 60 && t < 300) ? 200.0 : 40.0;
      };
      wc.words_per_sentence = 10;
      wc.counter_cost_us = 700;  // high phase: 200*10*700µs = 1.4 VMs
      wc.splitter_cost_us = 350;
      wc.seed = 44;

      sps::SpsConfig config;
      config.scaling.enabled = true;
      config.scaling.threshold = 0.7;
      config.scaling.scale_in_enabled = scale_in;
      config.scaling.scale_in_threshold = 0.25;
      config.scaling.scale_in_consecutive = 4;
      config.cluster.pool.target_size = 3;

      auto query = workloads::wordcount::BuildWordCountQuery(wc);
      const OperatorId counter = query.counter;
      sps::Sps sps(std::move(query.graph), config);
      SEEP_CHECK(sps.Deploy().ok());
      sps.RunFor(600);

      std::printf("%-12s %10zu %12u %12.2f %12.1f\n",
                  scale_in ? "on" : "off", sps.VmsInUse(),
                  sps.ParallelismOf(counter),
                  sps.cluster().provider()->BilledVmSeconds() / 3600.0,
                  sps.metrics().latency_ms.Percentile(95));
      state.counters[scale_in ? "vmh_on" : "vmh_off"] =
          sps.cluster().provider()->BilledVmSeconds() / 3600.0;
      state.counters[scale_in ? "pi_on" : "pi_off"] =
          sps.ParallelismOf(counter);
    }
    std::printf("(expected: scale-in returns to 1 partition after the wave "
                "and bills fewer VM-hours)\n");
  }
}

BENCHMARK(BM_AblationElasticity)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
