// Benchmarks for the networking subsystem: raw loopback shipping through
// net::LocalCluster (throughput and round-trip latency across tuple-batch
// sizes), then the Transport seam end to end — the windowed word-count
// workload on the TCP backend versus the simulated one, same sim horizon,
// wall-clock compared. Results go to stdout and BENCH_net_transport.json.
//
// Usage: bench_net_transport [output.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/sync.h"
#include "common/rng.h"
#include "core/tuple.h"
#include "net/local_cluster.h"
#include "net/wire.h"
#include "runtime/tcp_transport.h"
#include "serde/encoder.h"
#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// An encoded `batch_tuples`-tuple batch with word-count-shaped payloads,
/// wrapped in a wire envelope from VM 1 to VM 2.
net::Message MakeBatchMessage(size_t batch_tuples, uint64_t seed) {
  Rng rng(seed);
  core::TupleBatch batch;
  batch.from = 1;
  batch.tuples.reserve(batch_tuples);
  for (size_t i = 0; i < batch_tuples; ++i) {
    core::Tuple t;
    t.timestamp = static_cast<int64_t>(i);
    t.key = rng.Next();
    t.origin = 1;
    t.event_time = static_cast<SimTime>(i);
    t.text = std::string(4 + rng.NextBounded(8),
                         static_cast<char>('a' + rng.NextBounded(26)));
    batch.tuples.push_back(std::move(t));
  }
  serde::Encoder enc;
  batch.Encode(&enc);
  net::Message msg;
  msg.type = net::MessageType::kBatch;
  msg.from_vm = 1;
  msg.to_vm = 2;
  msg.body = enc.buffer();
  return msg;
}

struct LoopbackRow {
  size_t batch_tuples;
  size_t msg_bytes;
  double throughput_msgs_s;
  double throughput_mb_s;
  double rtt_p50_us;
  double rtt_p99_us;
};

/// One-way flood VM 1 -> VM 2, then one-at-a-time ping-pong for latency.
LoopbackRow BenchLoopback(size_t batch_tuples) {
  const net::Message msg =
      MakeBatchMessage(batch_tuples, 0xF00D + batch_tuples);
  // Enough messages to amortise connect/warm-up, capped so the largest
  // batches still finish quickly.
  const size_t total = std::max<size_t>(500, 65536 / std::max<size_t>(
                                                 1, batch_tuples / 8));

  sync::Mutex mu;
  sync::CondVar cv;
  size_t received SEEP_GUARDED_BY(mu) = 0;
  bool echoed SEEP_GUARDED_BY(mu) = false;

  net::LocalCluster cluster;
  SEEP_CHECK(cluster
                 .StartWorker(1,
                              [&](net::Message) {
                                sync::MutexLock lock(&mu);
                                echoed = true;
                                cv.NotifyAll();
                              })
                 .ok());
  SEEP_CHECK(cluster
                 .StartWorker(2,
                              [&](net::Message) {
                                sync::MutexLock lock(&mu);
                                ++received;
                                cv.NotifyAll();
                              })
                 .ok());

  // Warm-up: establishes the 1->2 connection (connect + hello + first frame).
  SEEP_CHECK(cluster.Post(1, 2, msg) != net::SendStatus::kClosed);
  {
    sync::MutexLock lock(&mu);
    SEEP_CHECK(cv.WaitFor(&mu, std::chrono::seconds(10), [&] {
      mu.AssertHeld();
      return received >= 1;
    }));
  }

  // Throughput: flood, retrying briefly when the hard cap rejects a frame.
  const auto start = Clock::now();
  for (size_t i = 0; i < total; ++i) {
    while (cluster.Post(1, 2, msg) == net::SendStatus::kOverflow) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  {
    sync::MutexLock lock(&mu);
    SEEP_CHECK(cv.WaitFor(&mu, std::chrono::seconds(60), [&] {
      mu.AssertHeld();
      return received >= total + 1;
    }));
  }
  const double flood_us = ElapsedUs(start);

  // Latency: single outstanding round trip, receiver echoes on its worker
  // thread. 2->1 uses its own connection, warmed by the first (discarded)
  // rounds.
  cluster.KillWorker(2);
  SEEP_CHECK(cluster
                 .StartWorker(2,
                              [&](net::Message m) {
                                m.from_vm = 2;
                                m.to_vm = 1;
                                // seep-ok: unchecked-status -- bench echo
                                (void)cluster.Post(2, 1, m);
                              })
                 .ok());
  std::vector<double> rtts;
  constexpr int kWarmup = 50, kRounds = 500;
  for (int i = 0; i < kWarmup + kRounds; ++i) {
    const auto ping = Clock::now();
    {
      sync::MutexLock lock(&mu);
      echoed = false;
    }
    SEEP_CHECK(cluster.Post(1, 2, msg) != net::SendStatus::kClosed);
    sync::MutexLock lock(&mu);
    SEEP_CHECK(cv.WaitFor(&mu, std::chrono::seconds(10), [&] {
      mu.AssertHeld();
      return echoed;
    }));
    if (i >= kWarmup) rtts.push_back(ElapsedUs(ping));
  }
  std::sort(rtts.begin(), rtts.end());

  const size_t frame_bytes = net::EncodeMessage(msg).size();
  LoopbackRow row;
  row.batch_tuples = batch_tuples;
  row.msg_bytes = frame_bytes;
  row.throughput_msgs_s = total / (flood_us / 1e6);
  row.throughput_mb_s =
      (double(total) * double(frame_bytes)) / (1 << 20) / (flood_us / 1e6);
  row.rtt_p50_us = rtts[rtts.size() / 2];
  row.rtt_p99_us = rtts[(rtts.size() * 99) / 100];
  return row;
}

struct WorkloadRow {
  const char* backend;
  double wall_ms;
  uint64_t tcp_messages;
};

/// Wall-clock for 60 simulated seconds of word count on one backend.
WorkloadRow BenchWorkload(runtime::TransportKind kind, const char* label) {
  double best_ms = 1e18;
  uint64_t tcp_messages = 0;
  for (int rep = 0; rep < 3; ++rep) {
    workloads::wordcount::WordCountConfig wc;
    wc.rate_tuples_per_sec = 100;
    wc.vocabulary = 200;
    wc.window = SecondsToSim(10);
    wc.seed = 17;
    auto query = workloads::wordcount::BuildWordCountQuery(wc);
    sps::SpsConfig config;
    config.cluster.transport = kind;
    config.cluster.checkpoint_interval = SecondsToSim(5);
    config.cluster.pool.target_size = 3;
    config.scaling.enabled = false;
    sps::Sps sps(std::move(query.graph), config);
    SEEP_CHECK(sps.Deploy().ok());
    const auto start = Clock::now();
    sps.RunFor(60);
    best_ms = std::min(best_ms, ElapsedUs(start) / 1e3);
    if (auto* tcp = dynamic_cast<runtime::TcpTransport*>(
            sps.cluster().transport())) {
      tcp_messages = tcp->messages_delivered();
    }
  }
  return WorkloadRow{label, best_ms, tcp_messages};
}

// ------------------------------------------------------------------- report

void WriteJson(FILE* f, const std::vector<LoopbackRow>& loopback,
               const std::vector<WorkloadRow>& workload) {
  std::fprintf(f, "{\n  \"bench\": \"net_transport\",\n  \"loopback\": [\n");
  for (size_t i = 0; i < loopback.size(); ++i) {
    const LoopbackRow& r = loopback[i];
    std::fprintf(f,
                 "    {\"batch_tuples\": %zu, \"msg_bytes\": %zu, "
                 "\"throughput_msgs_s\": %.0f, \"throughput_mb_s\": %.1f, "
                 "\"rtt_p50_us\": %.1f, \"rtt_p99_us\": %.1f}%s\n",
                 r.batch_tuples, r.msg_bytes, r.throughput_msgs_s,
                 r.throughput_mb_s, r.rtt_p50_us, r.rtt_p99_us,
                 i + 1 < loopback.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"workload\": [\n");
  for (size_t i = 0; i < workload.size(); ++i) {
    const WorkloadRow& r = workload[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"wall_ms\": %.1f, "
                 "\"tcp_messages\": %llu}%s\n",
                 r.backend, r.wall_ms,
                 static_cast<unsigned long long>(r.tcp_messages),
                 i + 1 < workload.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_net_transport.json";
  FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out);
    return 1;
  }

  std::printf("==== Loopback TCP shipping (net::LocalCluster) ====\n");
  std::printf("%12s %10s %12s %10s %10s %10s\n", "batch_tuples", "msg_bytes",
              "msgs/s", "MB/s", "p50(us)", "p99(us)");
  std::vector<LoopbackRow> loopback;
  for (size_t batch : {8u, 64u, 512u, 2048u}) {
    const LoopbackRow row = BenchLoopback(batch);
    std::printf("%12zu %10zu %12.0f %10.1f %10.1f %10.1f\n", row.batch_tuples,
                row.msg_bytes, row.throughput_msgs_s, row.throughput_mb_s,
                row.rtt_p50_us, row.rtt_p99_us);
    std::fflush(stdout);
    loopback.push_back(row);
  }

  std::printf("\n==== Word count, 60 sim-seconds: sim vs TCP backend ====\n");
  std::vector<WorkloadRow> workload;
  workload.push_back(BenchWorkload(runtime::TransportKind::kSim, "sim"));
  workload.push_back(BenchWorkload(runtime::TransportKind::kTcp, "tcp"));
  for (const WorkloadRow& r : workload) {
    std::printf("%-4s backend: %8.1f ms wall", r.backend, r.wall_ms);
    if (r.tcp_messages > 0) {
      std::printf("  (%llu messages over loopback TCP)",
                  static_cast<unsigned long long>(r.tcp_messages));
    }
    std::printf("\n");
  }

  WriteJson(f, loopback, workload);
  std::fclose(f);
  std::printf("wrote %s\n", out);
  return 0;
}

}  // namespace
}  // namespace seep::bench

int main(int argc, char** argv) { return seep::bench::Main(argc, argv); }
