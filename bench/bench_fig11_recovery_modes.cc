// Figure 11 reproduction: recovery time of the windowed word frequency
// query for the three fault-tolerance mechanisms (R+SM with c=5s, source
// replay, upstream backup) at input rates of 100/500/1000 tuples/s. The
// paper shows R+SM recovering fastest, with the gap widening at higher
// rates where re-processing dominates.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

const char* ModeName(runtime::FaultToleranceMode mode) {
  switch (mode) {
    case runtime::FaultToleranceMode::kStateManagement:
      return "R+SM";
    case runtime::FaultToleranceMode::kSourceReplay:
      return "SR";
    case runtime::FaultToleranceMode::kUpstreamBackup:
      return "UB";
    default:
      return "none";
  }
}

void BM_Fig11_RecoveryModes(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Figure 11",
           "Recovery time for different fault tolerance mechanisms "
           "(windowed word count, 30 s window, c=5 s)");
    std::printf("%12s %10s %10s %10s %12s\n", "rate(t/s)", "R+SM(s)",
                "SR(s)", "UB(s)", "R+SM/disk(s)");
    const runtime::FaultToleranceMode modes[] = {
        runtime::FaultToleranceMode::kStateManagement,
        runtime::FaultToleranceMode::kSourceReplay,
        runtime::FaultToleranceMode::kUpstreamBackup,
    };
    for (double rate : {100.0, 500.0, 1000.0}) {
      std::printf("%12.0f", rate);
      for (auto mode : modes) {
        const RecoveryRun r = RunWordCountRecovery(
            mode, rate, 5, 1, WorstCaseFailTime(5), /*total=*/130);
        std::printf(" %10.2f", r.recovery_seconds);
        if (rate == 1000) {
          state.counters[std::string(ModeName(mode)) + "_1000tps_s"] =
              r.recovery_seconds;
        }
      }
      // Fourth column: R+SM restoring from the durable checkpoint log
      // (kDisk — no in-memory backup at all), the extension's upper bound
      // on the cost of durability during recovery.
      const RecoveryRun disk = RunWordCountRecovery(
          runtime::FaultToleranceMode::kStateManagement, rate, 5, 1,
          WorstCaseFailTime(5), /*total=*/130, /*vocabulary=*/1000,
          /*inject_failure=*/true, /*async_checkpoints=*/false,
          runtime::BackupDurability::kDisk);
      std::printf(" %12.2f", disk.recovery_seconds);
      if (rate == 1000) {
        state.counters["RSM_disk_1000tps_s"] = disk.recovery_seconds;
      }
      std::printf("\n");
    }
    std::printf("(paper: R+SM < SR < UB-ish, gap grows with rate; R+SM "
                "replays <=5 s of tuples instead of the 30 s window; "
                "R+SM/disk adds the log read to the restore path)\n");
  }
}

BENCHMARK(BM_Fig11_RecoveryModes)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
