// Figure 7 reproduction: processing latency for the LRB workload during
// dynamic scale out. The paper reports median 153 ms, 95th 700 ms, 99th
// 1459 ms — all under the 5 s LRB bound — with latency peaks of up to ~4 s
// right after scale-out events (stream buffering and replay).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

void BM_Fig07_LrbLatency(benchmark::State& state) {
  const auto l = static_cast<uint32_t>(state.range(0));
  const double duration = static_cast<double>(state.range(1));

  for (auto _ : state) {
    // Ramp for 2/3 of the run, then hold: the plateau shows steady-state
    // latency, the ramp shows the scale-out peaks.
    auto lrb = PaperLrb(l, duration, 64, duration * 5 / 6);
    auto query = workloads::lrb::BuildLrbQuery(lrb);
    sps::Sps sps(std::move(query.graph), PaperControl());
    SEEP_CHECK(sps.Deploy().ok());
    sps.RunFor(duration);

    Banner("Figure 7", "Processing latency for the LRB workload");
    std::printf("L=%u, duration=%.0fs\n", l, duration);
    std::printf("%10s %14s %14s %8s\n", "time(s)", "median(ms)", "max(ms)",
                "VMs");

    // Windowed percentiles over the sampled latency series.
    const auto& series = sps.metrics().latency_series_ms.points();
    const auto& vm_series = sps.metrics().vms_in_use.points();
    const SimTime bucket = SecondsToSim(50);
    size_t idx = 0;
    size_t vm_idx = 0;
    double vms = 0;
    for (SimTime t = 0; t < SecondsToSim(duration); t += bucket) {
      std::vector<double> window;
      while (idx < series.size() && series[idx].time < t + bucket) {
        window.push_back(series[idx].value);
        ++idx;
      }
      while (vm_idx < vm_series.size() &&
             vm_series[vm_idx].time <= t + bucket) {
        vms = vm_series[vm_idx].value;
        ++vm_idx;
      }
      if (window.empty()) continue;
      std::sort(window.begin(), window.end());
      std::printf("%10.0f %14.1f %14.1f %8.0f\n", SimToSeconds(t),
                  window[window.size() / 2], window.back(), vms);
    }

    const auto& lat = sps.metrics().latency_ms;
    const double plateau_after = duration * 5 / 6 + 50;
    std::printf("overall: median=%.0fms p95=%.0fms p99=%.0fms; "
                "steady-state p95=%.0fms\n"
                "(paper: 153 / 700 / 1459 ms; LRB bound 5000 ms; peaks of "
                "up to ~4 s follow scale-out events)\n",
                lat.Median(), lat.Percentile(95), lat.Percentile(99),
                LatencyPercentileAfter(sps.metrics(), plateau_after, 95));
    state.counters["median_ms"] = lat.Median();
    state.counters["p95_ms"] = lat.Percentile(95);
    state.counters["p99_ms"] = lat.Percentile(99);
    state.counters["steady_p95_ms"] =
        LatencyPercentileAfter(sps.metrics(), plateau_after, 95);
  }
}

BENCHMARK(BM_Fig07_LrbLatency)
    ->Args({115, 2400})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
