// Figure 12 reproduction: R+SM recovery time as a function of the
// checkpointing interval, for different input rates. The paper shows
// recovery time growing with the interval (more tuples replayed) and with
// the rate (tuple re-processing dominates).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

void BM_Fig12_CheckpointInterval(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Figure 12",
           "Recovery time for different R+SM checkpointing intervals");
    std::printf("%14s %12s %12s %12s\n", "interval(s)", "100 t/s(s)",
                "500 t/s(s)", "1000 t/s(s)");
    for (double interval : {1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      std::printf("%14.0f", interval);
      for (double rate : {100.0, 500.0, 1000.0}) {
        const RecoveryRun r = RunWordCountRecovery(
            runtime::FaultToleranceMode::kStateManagement, rate, interval,
            /*recovery_parallelism=*/1, WorstCaseFailTime(interval),
            /*total=*/WorstCaseFailTime(interval) + 60);
        std::printf(" %12.2f", r.recovery_seconds);
        if (rate == 1000 && (interval == 1.0 || interval == 30.0)) {
          state.counters["s_at_" + std::to_string(int(interval)) + "s"] =
              r.recovery_seconds;
        }
      }
      std::printf("\n");
    }
    std::printf("(paper: recovery time grows with interval and rate)\n");
  }
}

BENCHMARK(BM_Fig12_CheckpointInterval)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
