// Headline result reproduction (§6.1): the maximum sustainable Linear Road
// L-rating. The paper reaches L=350 with 50 VMs, limited by source/sink
// serialisation capacity (~600k tuples/s); Zeitler & Risch's L=512 on 560
// dedicated cores is the only higher published figure. We sweep L and check
// the two LRB acceptance criteria: offered load fully ingested and response
// latency within the 5 s bound.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

struct LRatingResult {
  bool sustained;
  double achieved_peak_equiv;
  double offered_peak_equiv;
  double p95_ms;
  size_t vms;
};

LRatingResult RunL(uint32_t l) {
  constexpr double kLoadScale = 64;
  constexpr double kRamp = 1600;
  // A long plateau: the compressed ramp (1600 s vs the benchmark's 3 h)
  // leaves a queue backlog at its steep tail that takes several hundred
  // seconds of surplus capacity to drain; the LRB acceptance latency is
  // judged at the drained steady state.
  constexpr double kDuration = 2500;
  auto lrb = PaperLrb(l, kDuration, kLoadScale, kRamp);
  lrb.seed = 14;
  auto query = workloads::lrb::BuildLrbQuery(lrb);
  sps::SpsConfig config = PaperControl();
  config.scaling.max_vms = 170;
  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  sps.RunFor(kDuration);

  const double offered = lrb.ScaledRatePerXway(kDuration) * l * kLoadScale;
  double peak_input = 0;
  for (const auto& p : sps.metrics().source_tuples.RatesPerSecond()) {
    peak_input = std::max(peak_input, p.value);
  }
  const double achieved = peak_input * kLoadScale;
  // Latency judged at the steady-state plateau (LRB's acceptance criterion
  // is on responses, sampled here after the system finished adapting).
  const double p95 = LatencyPercentileAfter(sps.metrics(), kDuration - 250, 95);
  const bool sustained = achieved >= 0.97 * offered && p95 < 5000 &&
                         sps.metrics().source_saturated_ticks == 0;
  return {sustained, achieved, offered, p95, sps.VmsInUse()};
}

void BM_LRating(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Headline",
           "Maximum sustainable L-rating (paper: L=350 on 50 VMs, then "
           "source/sink saturate at ~600k t/s)");
    std::printf("%6s %18s %18s %10s %6s %10s\n", "L", "offered-peak(t/s)",
                "achieved-peak(t/s)", "p95(ms)", "VMs", "sustained");
    uint32_t max_sustained = 0;
    for (uint32_t l : {200u, 350u, 450u}) {
      const LRatingResult r = RunL(l);
      std::printf("%6u %18.0f %18.0f %10.0f %6zu %10s\n", l,
                  r.offered_peak_equiv, r.achieved_peak_equiv, r.p95_ms,
                  r.vms, r.sustained ? "yes" : "NO");
      if (r.sustained) max_sustained = std::max(max_sustained, l);
      if (l == 350) {
        state.counters["vms_at_350"] = static_cast<double>(r.vms);
        state.counters["p95_at_350_ms"] = r.p95_ms;
      }
    }
    std::printf("max sustained L-rating: %u (paper: 350)\n", max_sustained);
    state.counters["max_L"] = max_sustained;
  }
}

BENCHMARK(BM_LRating)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
