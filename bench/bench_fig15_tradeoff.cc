// Figure 15 reproduction: the trade-off between processing latency and
// recovery time across checkpointing intervals (windowed word count at
// 1000 t/s). The paper shows 95th-percentile latency falling as the
// interval grows while expected recovery time rises — the interval should
// be chosen from the anticipated failure rate and latency requirements.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

void BM_Fig15_LatencyRecoveryTradeoff(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Figure 15",
           "Trade-off between processing latency and recovery time for "
           "different checkpointing intervals (1000 t/s)");
    std::printf("%14s %16s %14s\n", "interval(s)", "latency p95(ms)",
                "recovery(s)");
    for (double interval : {1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      // Latency measured on a failure-free run; recovery measured with an
      // injected failure (the paper plots the two curves together). The
      // dictionary is large (the paper's ~2 MB state) so the checkpoint
      // serialisation lock is what the latency percentile sees.
      const RecoveryRun quiet = RunWordCountRecovery(
          runtime::FaultToleranceMode::kStateManagement, 1000, interval,
          1, /*fail_at=*/0, /*total=*/90, 100000, /*inject_failure=*/false);
      const RecoveryRun failed = RunWordCountRecovery(
          runtime::FaultToleranceMode::kStateManagement, 1000, interval,
          1, WorstCaseFailTime(interval),
          WorstCaseFailTime(interval) + 60, 10000);
      std::printf("%14.0f %16.1f %14.2f\n", interval, quiet.latency_p95_ms,
                  failed.recovery_seconds);
      if (interval == 1.0) {
        state.counters["p95_at_1s_ms"] = quiet.latency_p95_ms;
        state.counters["recovery_at_1s_s"] = failed.recovery_seconds;
      }
      if (interval == 30.0) {
        state.counters["p95_at_30s_ms"] = quiet.latency_p95_ms;
        state.counters["recovery_at_30s_s"] = failed.recovery_seconds;
      }
    }
    std::printf("(paper: latency falls / recovery rises with the "
                "interval)\n");
  }
}

BENCHMARK(BM_Fig15_LatencyRecoveryTradeoff)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
