// Micro-benchmark for the durable checkpoint store (src/store/): append
// throughput across payload sizes, per-append latency under each fsync
// policy, compaction write amplification on an overwrite-heavy history,
// and recovery-scan time as the log grows. Results go to stdout and
// BENCH_durable_store.json.
//
// Usage: bench_durable_store [output.json]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "serde/frame.h"
#include "store/checkpoint_log.h"

namespace seep::bench {
namespace {

using store::CheckpointLog;
using store::CheckpointLogConfig;
using store::FsyncPolicy;
using store::RecordMeta;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::filesystem::path FreshDir(const std::string& name) {
  const auto dir = std::filesystem::current_path() /
                   ("bench_durable_store_tmp-" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

CheckpointLogConfig BaseConfig(const std::filesystem::path& dir) {
  CheckpointLogConfig config;
  config.directory = dir.string();
  config.fsync = FsyncPolicy::kNever;
  config.background_compaction = false;
  return config;
}

std::unique_ptr<CheckpointLog> MustOpen(CheckpointLogConfig config) {
  auto log = CheckpointLog::Open(std::move(config));
  SEEP_CHECK(log.ok());
  return std::move(log).value();
}

/// A deterministic framed checkpoint payload, as the reassembler hands it
/// to the log: [length | crc32c | bytes].
std::vector<uint8_t> FramedPayload(uint64_t salt, size_t inner_size) {
  std::vector<uint8_t> inner(inner_size);
  for (size_t i = 0; i < inner_size; ++i) {
    inner[i] = static_cast<uint8_t>(salt * 31 + i * 7);
  }
  return serde::FramePayload(inner);
}

RecordMeta MetaFor(InstanceId owner, uint64_t seq, size_t inner_size) {
  RecordMeta meta;
  meta.owner = owner;
  meta.owner_op = 7;
  meta.holder = owner + 100;
  meta.seq = seq;
  meta.raw_bytes = inner_size;
  return meta;
}

double Percentile(std::vector<double>* samples, double pct) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t i = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(samples->size() - 1));
  return (*samples)[i];
}

struct AppendRow {
  size_t payload_bytes = 0;
  double appends_per_sec = 0;
  double mb_per_sec = 0;
};

AppendRow BenchAppendThroughput(size_t inner_size, size_t appends) {
  const auto dir = FreshDir("append-" + std::to_string(inner_size));
  auto log = MustOpen(BaseConfig(dir));
  const auto payload = FramedPayload(1, inner_size);
  const auto start = Clock::now();
  for (size_t i = 0; i < appends; ++i) {
    const auto meta =
        MetaFor(static_cast<InstanceId>(1 + i % 64), 1 + i / 64, inner_size);
    SEEP_CHECK(log->Append(meta, payload.data(), payload.size()).ok());
  }
  SEEP_CHECK(log->Flush().ok());
  const double seconds = SecondsSince(start);
  AppendRow row;
  row.payload_bytes = inner_size;
  row.appends_per_sec = static_cast<double>(appends) / seconds;
  row.mb_per_sec = static_cast<double>(appends * payload.size()) /
                   (seconds * 1024 * 1024);
  log.reset();
  std::filesystem::remove_all(dir);
  return row;
}

struct FsyncRow {
  const char* policy = "";
  double append_p50_us = 0;
  double append_p99_us = 0;
  uint64_t fsyncs = 0;
};

FsyncRow BenchFsyncPolicy(FsyncPolicy policy, const char* name,
                          size_t appends) {
  const auto dir = FreshDir(std::string("fsync-") + name);
  CheckpointLogConfig config = BaseConfig(dir);
  config.fsync = policy;
  config.fsync_interval_ms = 10;
  auto log = MustOpen(config);
  const size_t inner_size = 16 * 1024;
  const auto payload = FramedPayload(2, inner_size);
  std::vector<double> micros;
  micros.reserve(appends);
  for (size_t i = 0; i < appends; ++i) {
    const auto meta =
        MetaFor(static_cast<InstanceId>(1 + i % 64), 1 + i / 64, inner_size);
    const auto start = Clock::now();
    SEEP_CHECK(log->Append(meta, payload.data(), payload.size()).ok());
    micros.push_back(SecondsSince(start) * 1e6);
  }
  FsyncRow row;
  row.policy = name;
  row.append_p50_us = Percentile(&micros, 50);
  row.append_p99_us = Percentile(&micros, 99);
  row.fsyncs = log->metrics().fsyncs.load();
  log.reset();
  std::filesystem::remove_all(dir);
  return row;
}

struct CompactRow {
  uint64_t overwrites_per_owner = 0;
  double write_amplification = 0;
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  double compact_seconds = 0;
};

CompactRow BenchCompaction(uint64_t rounds) {
  const auto dir = FreshDir("compact-" + std::to_string(rounds));
  CheckpointLogConfig config = BaseConfig(dir);
  config.segment_bytes = 256 * 1024;  // seal often so compaction has work
  auto log = MustOpen(config);
  const size_t inner_size = 8 * 1024;
  const auto payload = FramedPayload(3, inner_size);
  constexpr InstanceId kOwners = 8;
  for (uint64_t seq = 1; seq <= rounds; ++seq) {
    for (InstanceId owner = 1; owner <= kOwners; ++owner) {
      const auto meta = MetaFor(owner, seq, inner_size);
      SEEP_CHECK(log->Append(meta, payload.data(), payload.size()).ok());
    }
  }
  CompactRow row;
  row.overwrites_per_owner = rounds;
  row.bytes_before = log->total_bytes();
  const auto start = Clock::now();
  SEEP_CHECK(log->CompactNow().ok());
  row.compact_seconds = SecondsSince(start);
  row.bytes_after = log->total_bytes();
  const uint64_t out = log->metrics().compaction_bytes_out.load();
  const uint64_t live = log->live_bytes();
  row.write_amplification =
      live > 0 ? static_cast<double>(out) / static_cast<double>(live) : 0;
  log.reset();
  std::filesystem::remove_all(dir);
  return row;
}

struct ScanRow {
  uint64_t records = 0;
  uint64_t log_bytes = 0;
  double scan_ms = 0;
};

ScanRow BenchRecoveryScan(uint64_t records) {
  const auto dir = FreshDir("scan-" + std::to_string(records));
  const size_t inner_size = 4 * 1024;
  const auto payload = FramedPayload(4, inner_size);
  // Compaction would drop superseded records and shrink the log under the
  // scan; push its threshold out of reach so log size is the variable.
  CheckpointLogConfig config = BaseConfig(dir);
  config.compact_min_bytes = 1ull << 40;
  {
    auto log = MustOpen(config);
    for (uint64_t i = 0; i < records; ++i) {
      const auto meta = MetaFor(static_cast<InstanceId>(1 + i % 512),
                                1 + i / 512, inner_size);
      SEEP_CHECK(log->Append(meta, payload.data(), payload.size()).ok());
    }
    SEEP_CHECK(log->Flush().ok());
  }
  auto reopened = MustOpen(config);
  ScanRow row;
  row.records = records;
  row.log_bytes = reopened->total_bytes();
  row.scan_ms = static_cast<double>(
                    reopened->metrics().recovery_scan_nanos.load()) /
                1e6;
  SEEP_CHECK(reopened->recovery_info().records_scanned == records);
  reopened.reset();
  std::filesystem::remove_all(dir);
  return row;
}

int Main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_durable_store.json";
  FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out);
    return 1;
  }

  std::printf("==== Durable checkpoint store ====\n");
  std::printf("-- append throughput (fsync=never) --\n");
  std::printf("%12s %14s %10s\n", "payload(B)", "appends/s", "MB/s");
  std::vector<AppendRow> append_rows;
  for (size_t size : std::vector<size_t>{1024, 16 * 1024, 256 * 1024}) {
    const size_t appends = size >= 256 * 1024 ? 512 : 4096;
    const AppendRow r = BenchAppendThroughput(size, appends);
    std::printf("%12zu %14.0f %10.1f\n", r.payload_bytes, r.appends_per_sec,
                r.mb_per_sec);
    append_rows.push_back(r);
  }

  std::printf("-- append latency by fsync policy (16 KiB payload) --\n");
  std::printf("%12s %12s %12s %8s\n", "policy", "p50(us)", "p99(us)",
              "fsyncs");
  std::vector<FsyncRow> fsync_rows;
  const std::vector<std::pair<FsyncPolicy, const char*>> policies = {
      {FsyncPolicy::kNever, "never"},
      {FsyncPolicy::kIntervalMs, "interval"},
      {FsyncPolicy::kAlways, "always"},
  };
  for (const auto& [policy, name] : policies) {
    const FsyncRow r = BenchFsyncPolicy(policy, name, 1024);
    std::printf("%12s %12.1f %12.1f %8llu\n", r.policy, r.append_p50_us,
                r.append_p99_us, static_cast<unsigned long long>(r.fsyncs));
    fsync_rows.push_back(r);
  }

  std::printf("-- compaction write amplification (8 owners, 8 KiB) --\n");
  std::printf("%12s %10s %12s %12s %12s\n", "overwrites", "amp",
              "before(KB)", "after(KB)", "compact(ms)");
  std::vector<CompactRow> compact_rows;
  for (uint64_t rounds : std::vector<uint64_t>{16, 64, 256}) {
    const CompactRow r = BenchCompaction(rounds);
    std::printf("%12llu %10.2f %12llu %12llu %12.2f\n",
                static_cast<unsigned long long>(r.overwrites_per_owner),
                r.write_amplification,
                static_cast<unsigned long long>(r.bytes_before / 1024),
                static_cast<unsigned long long>(r.bytes_after / 1024),
                r.compact_seconds * 1e3);
    compact_rows.push_back(r);
  }

  std::printf("-- recovery scan time vs log size (4 KiB records) --\n");
  std::printf("%12s %12s %12s\n", "records", "log(MB)", "scan(ms)");
  std::vector<ScanRow> scan_rows;
  for (uint64_t records : std::vector<uint64_t>{1000, 10000, 40000}) {
    const ScanRow r = BenchRecoveryScan(records);
    std::printf("%12llu %12.1f %12.2f\n",
                static_cast<unsigned long long>(r.records),
                static_cast<double>(r.log_bytes) / (1024 * 1024), r.scan_ms);
    scan_rows.push_back(r);
  }

  std::fprintf(f, "{\n  \"bench\": \"durable_store\",\n");
  std::fprintf(f, "  \"append_throughput\": [\n");
  for (size_t i = 0; i < append_rows.size(); ++i) {
    const AppendRow& r = append_rows[i];
    std::fprintf(f,
                 "    {\"payload_bytes\": %zu, \"appends_per_sec\": %.0f, "
                 "\"mb_per_sec\": %.1f}%s\n",
                 r.payload_bytes, r.appends_per_sec, r.mb_per_sec,
                 i + 1 < append_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fsync_latency\": [\n");
  for (size_t i = 0; i < fsync_rows.size(); ++i) {
    const FsyncRow& r = fsync_rows[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"append_p50_us\": %.1f, "
                 "\"append_p99_us\": %.1f, \"fsyncs\": %llu}%s\n",
                 r.policy, r.append_p50_us, r.append_p99_us,
                 static_cast<unsigned long long>(r.fsyncs),
                 i + 1 < fsync_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"compaction\": [\n");
  for (size_t i = 0; i < compact_rows.size(); ++i) {
    const CompactRow& r = compact_rows[i];
    std::fprintf(f,
                 "    {\"overwrites_per_owner\": %llu, "
                 "\"write_amplification\": %.2f, \"bytes_before\": %llu, "
                 "\"bytes_after\": %llu, \"compact_ms\": %.2f}%s\n",
                 static_cast<unsigned long long>(r.overwrites_per_owner),
                 r.write_amplification,
                 static_cast<unsigned long long>(r.bytes_before),
                 static_cast<unsigned long long>(r.bytes_after),
                 r.compact_seconds * 1e3,
                 i + 1 < compact_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery_scan\": [\n");
  for (size_t i = 0; i < scan_rows.size(); ++i) {
    const ScanRow& r = scan_rows[i];
    std::fprintf(f,
                 "    {\"records\": %llu, \"log_bytes\": %llu, "
                 "\"scan_ms\": %.2f}%s\n",
                 static_cast<unsigned long long>(r.records),
                 static_cast<unsigned long long>(r.log_bytes), r.scan_ms,
                 i + 1 < scan_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out);
  return 0;
}

}  // namespace
}  // namespace seep::bench

int main(int argc, char** argv) { return seep::bench::Main(argc, argv); }
