// Figure 14 reproduction: overhead of state checkpointing on tuple
// processing latency, for different state sizes (small ~10^2, medium ~10^4,
// large ~10^5 dictionary entries) and input rates (100/500/1000 t/s),
// against a no-checkpointing baseline. The paper's 95th-percentile latency
// grows with state size and input rate; the medium effect is small.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

void BM_Fig14_CheckpointOverhead(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Figure 14",
           "Overhead of state checkpointing for different input rates and "
           "state sizes (95th-percentile latency, c=5 s)");
    std::printf("%-16s %14s %14s %14s %15s %15s\n", "state size",
                "100 t/s(ms)", "500 t/s(ms)", "1000 t/s(ms)",
                "pause p99 sync", "pause p99 async");

    struct Variant {
      const char* label;
      size_t vocabulary;
      bool checkpointing;
    };
    const Variant variants[] = {
        {"small (1e2)", 100, true},
        {"medium (1e4)", 10000, true},
        {"large (1e5)", 100000, true},
        {"no checkpoint", 10000, false},
    };
    for (const Variant& v : variants) {
      std::printf("%-16s", v.label);
      double sync_pause_p99 = 0;
      for (double rate : {100.0, 500.0, 1000.0}) {
        const RecoveryRun r = RunWordCountRecovery(
            v.checkpointing ? runtime::FaultToleranceMode::kStateManagement
                            : runtime::FaultToleranceMode::kNone,
            rate, /*checkpoint_interval_s=*/5, /*recovery_parallelism=*/1,
            /*fail_at=*/0, /*total=*/90, v.vocabulary,
            /*inject_failure=*/false);
        std::printf(" %14.1f", r.latency_p95_ms);
        if (rate == 1000) {
          sync_pause_p99 = r.ckpt_pause_p99_ms;
          state.counters[std::string(v.label).substr(0, 5) + "_p95_ms"] =
              r.latency_p95_ms;
        }
      }
      // Per-checkpoint processing pause (p99, ms, at 1000 t/s): inline
      // serialization vs the asynchronous capture-only pipeline.
      if (v.checkpointing) {
        const RecoveryRun a = RunWordCountRecovery(
            runtime::FaultToleranceMode::kStateManagement, 1000,
            /*checkpoint_interval_s=*/5, /*recovery_parallelism=*/1,
            /*fail_at=*/0, /*total=*/90, v.vocabulary,
            /*inject_failure=*/false, /*async_checkpoints=*/true);
        std::printf(" %15.4f %15.4f\n", sync_pause_p99, a.ckpt_pause_p99_ms);
      } else {
        std::printf(" %15s %15s\n", "-", "-");
      }
    }
    std::printf("(paper: p95 grows with state size and rate; overhead "
                "vanishes without checkpointing)\n");
  }
}

BENCHMARK(BM_Fig14_CheckpointOverhead)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
