// Figure 6 reproduction: dynamic scale out for the Linear Road Benchmark
// closed-loop workload. Prints the time series of input rate, result
// throughput and allocated VMs — the paper shows the SPS tracking a ramp
// from ~12k to 600k tuples/s with up to ~50 VMs at L=350.
//
// Rates here are load-scaled by 64 (costs scaled up by 64), so the printed
// "equivalent" columns multiply back to paper units.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

constexpr double kLoadScale = 64;

void BM_Fig06_LrbDynamicScaleOut(benchmark::State& state) {
  const auto l = static_cast<uint32_t>(state.range(0));
  const double duration = static_cast<double>(state.range(1));

  for (auto _ : state) {
    auto lrb = PaperLrb(l, duration, kLoadScale);
    auto query = workloads::lrb::BuildLrbQuery(lrb);
    sps::SpsConfig config = PaperControl();
    sps::Sps sps(std::move(query.graph), config);
    SEEP_CHECK(sps.Deploy().ok());
    sps.RunFor(duration);

    Banner("Figure 6",
           "Dynamic scale out for the LRB workload (closed loop)");
    std::printf("L=%u, duration=%.0fs, load_scale=%.0f "
                "(rates below are x%.0f in paper units)\n",
                l, duration, kLoadScale, kLoadScale);
    std::printf("%10s %14s %14s %16s %8s\n", "time(s)", "input(t/s)",
                "output(t/s)", "input-equiv(t/s)", "VMs");

    const auto& metrics = sps.metrics();
    const auto input = metrics.source_tuples.RatesPerSecond();
    const auto output = metrics.sink_tuples.RatesPerSecond();
    const SimTime bucket = SecondsToSim(50);
    double vms = 0;
    size_t vm_idx = 0;
    const auto& vm_series = metrics.vms_in_use.points();
    for (SimTime t = 0; t < SecondsToSim(duration); t += bucket) {
      double in_rate = 0, out_rate = 0;
      size_t n = 0;
      for (SimTime s = t; s < t + bucket; s += kMicrosPerSecond) {
        const size_t idx = static_cast<size_t>(s / kMicrosPerSecond);
        if (idx < input.size()) in_rate += input[idx].value;
        if (idx < output.size()) out_rate += output[idx].value;
        ++n;
      }
      in_rate /= static_cast<double>(n);
      out_rate /= static_cast<double>(n);
      while (vm_idx < vm_series.size() &&
             vm_series[vm_idx].time <= t + bucket) {
        vms = vm_series[vm_idx].value;
        ++vm_idx;
      }
      std::printf("%10.0f %14.0f %14.0f %16.0f %8.0f\n", SimToSeconds(t),
                  in_rate, out_rate, in_rate * kLoadScale, vms);
    }
    std::printf("scale-out events: %zu; final VMs in use: %zu; "
                "billed VM-hours: %.1f\n",
                metrics.scale_outs.size(), sps.VmsInUse(),
                sps.cluster().provider()->BilledVmSeconds() / 3600.0);

    state.counters["final_vms"] = static_cast<double>(sps.VmsInUse());
    state.counters["scale_outs"] =
        static_cast<double>(metrics.scale_outs.size());
    state.counters["peak_input_equiv"] =
        metrics.source_tuples.RatesPerSecond().empty()
            ? 0
            : [&] {
                double m = 0;
                for (const auto& p : input) m = std::max(m, p.value);
                return m * kLoadScale;
              }();
  }
}

BENCHMARK(BM_Fig06_LrbDynamicScaleOut)
    ->Args({350, 2000})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
