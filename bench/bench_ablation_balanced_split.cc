// Distribution-guided partitioning ablation (Algorithm 2: "the key space
// can be distributed evenly using hash partitioning, or the key
// distribution can be used to guide the split"). When keys are NOT
// pre-hashed — e.g. an application partitions on raw identifiers that
// occupy a narrow band of the key space — an even hash split puts all the
// state and load in one partition. Splitting at the quantiles of the
// checkpointed state keys fixes the balance.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "runtime/operator_instance.h"
#include "common/hash.h"
#include "common/rng.h"

namespace seep::bench {
namespace {

// Source emitting raw (unhashed) keys drawn from a narrow band of the key
// space, mimicking an application that partitions on natural identifiers.
class NarrowKeySource : public core::SourceGenerator {
 public:
  NarrowKeySource(double rate, uint64_t seed) : rate_(rate), rng_(seed) {}

  void GenerateBatch(SimTime now, SimTime dt, core::Collector* emit) override {
    const double want = rate_ * SimToSeconds(dt) + carry_;
    const auto n = static_cast<size_t>(want);
    carry_ = want - static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      core::Tuple t;
      t.event_time = now;
      // Raw identifiers in [0, 2^44): the top 99.99...% of the hash space
      // is empty.
      t.key = rng_.NextBounded(1ull << 44);
      emit->Emit(std::move(t));
    }
  }
  double TargetRate(SimTime) const override { return rate_; }

 private:
  double rate_;
  Rng rng_;
  double carry_ = 0;
};

// Keyed counter with externalised per-key state.
class KeyCounter : public core::Operator {
 public:
  void Process(const core::Tuple& input, core::Collector* out) override {
    ++counts_[input.key];
  }
  bool IsStateful() const override { return true; }
  double CostMicrosPerTuple() const override { return 400; }
  core::ProcessingState GetProcessingState() const override {
    core::ProcessingState state;
    for (const auto& [key, count] : counts_) {
      state.Add(key, std::to_string(count));
    }
    return state;
  }
  void SetProcessingState(const core::ProcessingState& state) override {
    counts_.clear();
    for (const auto& [key, value] : state.entries()) {
      counts_[key] = std::stoull(value);
    }
  }

 private:
  std::map<KeyHash, uint64_t> counts_;
};

class NullSink : public core::SinkConsumer {
 public:
  void Consume(const core::Tuple&, SimTime) override {}
};

struct SplitResult {
  double max_share = 0;  // share of post-split tuples at the hottest part
  double p95_ms = 0;
  uint32_t partitions = 0;
};

SplitResult RunSplit(bool balanced) {
  core::QueryGraph graph;
  const OperatorId source = graph.AddSource(
      "narrow-source",
      [](uint32_t, uint32_t) {
        return std::make_unique<NarrowKeySource>(2000, 3);
      });
  const OperatorId counter = graph.AddOperator(
      "key-counter", [] { return std::make_unique<KeyCounter>(); },
      /*stateful=*/true);
  const OperatorId sink =
      graph.AddSink("sink", [] { return std::make_unique<NullSink>(); });
  SEEP_CHECK(graph.Connect(source, counter).ok());
  SEEP_CHECK(graph.Connect(counter, sink).ok());

  sps::SpsConfig config;
  config.coordinator.balanced_split = balanced;
  config.scaling.enabled = true;  // 2000 t/s x 400 µs = 80%: will scale out
  config.cluster.pool.target_size = 4;
  sps::Sps sps(std::move(graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  sps.RunFor(120);

  // Measure the post-split distribution of processed tuples.
  SplitResult out;
  uint64_t total = 0, max_processed = 0;
  for (InstanceId id : sps.cluster().LiveInstancesOf(counter)) {
    const auto* inst = sps.cluster().GetInstance(id);
    total += inst->processed_tuples();
    max_processed = std::max(max_processed, inst->processed_tuples());
    ++out.partitions;
  }
  out.max_share = total == 0 ? 0
                             : static_cast<double>(max_processed) /
                                   static_cast<double>(total);
  out.p95_ms = sps.metrics().latency_ms.Percentile(95);
  return out;
}

void BM_AblationBalancedSplit(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Ablation (Alg. 2)",
           "Even hash split vs distribution-guided split on unhashed "
           "narrow-band keys");
    std::printf("%-12s %12s %18s\n", "split", "partitions",
                "hottest share(%)");
    const SplitResult even = RunSplit(false);
    const SplitResult balanced = RunSplit(true);
    std::printf("%-12s %12u %18.1f\n", "even-hash", even.partitions,
                even.max_share * 100);
    std::printf("%-12s %12u %18.1f\n", "balanced", balanced.partitions,
                balanced.max_share * 100);
    std::printf("(expected: the even split leaves ~100%% of tuples on one "
                "partition — all keys fall in its subrange — while the "
                "balanced split divides them)\n");
    state.counters["even_hot_share"] = even.max_share;
    state.counters["balanced_hot_share"] = balanced.max_share;
  }
}

BENCHMARK(BM_AblationBalancedSplit)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
