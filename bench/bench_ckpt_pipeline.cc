// Macro-benchmark for the asynchronous checkpoint pipeline: per-checkpoint
// processing pause (synchronous serialize-inline vs asynchronous capture-
// only), end-to-end capture-to-stored latency, and the block-codec wire
// compression ratio, on the windowed word-count workload across state
// sizes. Results go to stdout and BENCH_ckpt_pipeline.json.
//
// Usage: bench_ckpt_pipeline [output.json]

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/macros.h"
#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep::bench {
namespace {

struct Row {
  size_t vocabulary = 0;
  bool async = false;
  double pause_p50_ms = 0;
  double pause_p99_ms = 0;
  double e2e_p50_ms = 0;
  double e2e_p99_ms = 0;
  uint64_t checkpoints = 0;
  uint64_t raw_bytes = 0;
  uint64_t wire_bytes = 0;
};

Row RunOne(size_t vocabulary, bool async) {
  workloads::wordcount::WordCountConfig wc;
  wc.rate_tuples_per_sec = 500;
  wc.vocabulary = vocabulary;
  wc.seed = 1234;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.async_checkpoints = async;
  config.cluster.pool.target_size = 3;
  config.scaling.enabled = false;

  auto query = workloads::wordcount::BuildWordCountQuery(wc);
  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  sps.RunFor(120);

  const runtime::MetricsRegistry& m = sps.metrics();
  Row row;
  row.vocabulary = vocabulary;
  row.async = async;
  row.pause_p50_ms = m.ckpt_pause_ms.Median();
  row.pause_p99_ms = m.ckpt_pause_ms.Percentile(99);
  row.e2e_p50_ms = m.ckpt_e2e_ms.Median();
  row.e2e_p99_ms = m.ckpt_e2e_ms.Percentile(99);
  row.checkpoints = m.checkpoints_taken;
  row.raw_bytes = m.ckpt_raw_bytes;
  row.wire_bytes = m.ckpt_wire_bytes;
  return row;
}

void WriteJson(FILE* f, const std::vector<Row>& rows) {
  std::fprintf(f, "{\n  \"bench\": \"ckpt_pipeline\",\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double ratio =
        r.wire_bytes > 0
            ? static_cast<double>(r.raw_bytes) /
                  static_cast<double>(r.wire_bytes)
            : 0.0;
    std::fprintf(f,
                 "    {\"vocabulary\": %zu, \"mode\": \"%s\", "
                 "\"pause_p50_ms\": %.4f, \"pause_p99_ms\": %.4f, "
                 "\"e2e_p50_ms\": %.3f, \"e2e_p99_ms\": %.3f, "
                 "\"checkpoints\": %llu, "
                 "\"compression_ratio\": %.2f}%s\n",
                 r.vocabulary, r.async ? "async" : "sync", r.pause_p50_ms,
                 r.pause_p99_ms, r.e2e_p50_ms, r.e2e_p99_ms,
                 static_cast<unsigned long long>(r.checkpoints), ratio,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_ckpt_pipeline.json";
  FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out);
    return 1;
  }
  std::printf(
      "==== Checkpoint pipeline: synchronous inline vs async 3-stage ====\n");
  std::printf("%-10s %6s %14s %14s %12s %12s %8s\n", "dict", "mode",
              "pause p50(ms)", "pause p99(ms)", "e2e p50(ms)", "e2e p99(ms)",
              "wire/raw");
  std::vector<Row> rows;
  for (size_t vocabulary : std::vector<size_t>{1'000, 10'000, 100'000}) {
    Row sync;
    for (bool async : {false, true}) {
      const Row r = RunOne(vocabulary, async);
      if (!async) sync = r;
      const double ratio =
          r.wire_bytes > 0 ? static_cast<double>(r.wire_bytes) /
                                 static_cast<double>(r.raw_bytes)
                           : 0.0;
      std::printf("%-10zu %6s %14.4f %14.4f %12.3f %12.3f %8.2f\n",
                  vocabulary, r.async ? "async" : "sync", r.pause_p50_ms,
                  r.pause_p99_ms, r.e2e_p50_ms, r.e2e_p99_ms, ratio);
      if (async && r.pause_p99_ms > 0) {
        std::printf("%-10s %6s   pause p99 reduction: %.1fx\n", "", "",
                    sync.pause_p99_ms / r.pause_p99_ms);
      }
      rows.push_back(r);
    }
  }
  WriteJson(f, rows);
  std::fclose(f);
  std::printf("wrote %s\n", out);
  return 0;
}

}  // namespace
}  // namespace seep::bench

int main(int argc, char** argv) { return seep::bench::Main(argc, argv); }
