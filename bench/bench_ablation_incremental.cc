// Incremental-checkpointing ablation (paper §3.2: "to reduce the size of
// checkpoints, it is also possible to use incremental checkpointing
// techniques [17]"). On the large-state word count of Fig. 14, compare full
// vs incremental checkpointing: bytes shipped to backups, the latency
// overhead of checkpointing, and the recovery time from the reconstructed
// state.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

struct IncResult {
  uint64_t checkpoint_bytes = 0;
  uint64_t checkpoints = 0;
  uint64_t deltas = 0;
  double p95_ms = 0;
  double recovery_s = -1;
};

IncResult RunOne(bool incremental, bool fail) {
  workloads::wordcount::WordCountConfig wc;
  wc.rate_tuples_per_sec = 500;
  wc.vocabulary = 100000;  // the paper's "large" state (~2 MB dictionary)
  wc.zipf_skew = 1.1;      // most checkpoints touch a small hot set
  wc.seed = 61;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.incremental_checkpoints = incremental;
  config.scaling.enabled = false;
  config.cluster.pool.target_size = 3;

  auto query = workloads::wordcount::BuildWordCountQuery(wc);
  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  if (fail) sps.InjectFailure(query.counter, WorstCaseFailTime(5));
  sps.RunFor(130);

  IncResult out;
  out.checkpoint_bytes = sps.metrics().checkpoint_bytes;
  out.checkpoints = sps.metrics().checkpoints_taken;
  out.deltas = sps.metrics().delta_checkpoints_taken;
  out.p95_ms = sps.metrics().latency_ms.Percentile(95);
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) out.recovery_s = r.RecoverySeconds();
  }
  return out;
}

void BM_AblationIncremental(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Ablation (3.2)",
           "Full vs incremental checkpointing (word count, 1e5-word "
           "dictionary, 500 t/s, c=5 s)");
    std::printf("%-14s %14s %10s %8s %10s %12s\n", "mode", "ckpt MB",
                "ckpts", "deltas", "p95(ms)", "recovery(s)");
    for (bool incremental : {false, true}) {
      const IncResult quiet = RunOne(incremental, false);
      const IncResult failed = RunOne(incremental, true);
      std::printf("%-14s %14.1f %10llu %8llu %10.1f %12.2f\n",
                  incremental ? "incremental" : "full",
                  static_cast<double>(quiet.checkpoint_bytes) / 1e6,
                  static_cast<unsigned long long>(quiet.checkpoints),
                  static_cast<unsigned long long>(quiet.deltas),
                  quiet.p95_ms, failed.recovery_s);
      state.counters[incremental ? "inc_MB" : "full_MB"] =
          static_cast<double>(quiet.checkpoint_bytes) / 1e6;
      state.counters[incremental ? "inc_p95_ms" : "full_p95_ms"] =
          quiet.p95_ms;
    }
    std::printf("(expected: deltas shrink shipped bytes and the p95 "
                "checkpoint overhead while recovery stays exact)\n");
  }
}

BENCHMARK(BM_AblationIncremental)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
