// Figure 10 reproduction: dynamic scale out vs. manual (expert) allocation,
// LRB L=115. The paper's expert allocates a fixed number of VMs across
// operators in proportion to their load; 20 VMs is the manual optimum,
// while the dynamic policy lands at 25 VMs (25% over) with comparable
// latency (median 101 ms, p95 714 ms).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

struct AllocationResult {
  double median_ms;
  double p95_ms;
  size_t vms;
};

// An "expert" static allocation: N worker VMs spread over the scalable
// operators in proportion to their per-tuple cost share (the steady-state
// answer an expert tracking the bottleneck converges to).
AllocationResult RunManual(uint32_t worker_vms) {
  auto lrb = PaperLrb(115, /*duration_s=*/2400, 64, /*ramp_s=*/2000);
  lrb.seed = 10;
  auto query = workloads::lrb::BuildLrbQuery(lrb);

  // Cost shares per source tuple: forwarder 15, toll calc 45,
  // assessment ~6 (20% of tuples), collector ~5, balance ~2.
  struct Share {
    OperatorId op;
    double share;
  };
  const std::vector<Share> shares = {
      {query.forwarder, 15},
      {query.toll_calculator, 45},
      {query.toll_assessment, 6},
      {query.toll_collector, 5},
      {query.balance_account, 2},
  };
  double total = 0;
  for (const auto& s : shares) total += s.share;

  sps::SpsConfig config = PaperControl();
  config.scaling.enabled = false;
  uint32_t assigned = 0;
  for (const auto& s : shares) {
    const auto n = std::max<uint32_t>(
        1, static_cast<uint32_t>(worker_vms * s.share / total + 0.5));
    config.initial_parallelism[s.op] = n;
    assigned += n;
  }

  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  sps.RunFor(2400);
  // Steady-state latency on the plateau (static allocations have no
  // scale-out transients, but the ramp phase is under-utilised).
  return {LatencyPercentileAfter(sps.metrics(), 2100, 50),
          LatencyPercentileAfter(sps.metrics(), 2100, 95), sps.VmsInUse()};
}

AllocationResult RunDynamic() {
  auto lrb = PaperLrb(115, /*duration_s=*/2400, 64, /*ramp_s=*/2000);
  lrb.seed = 10;
  auto query = workloads::lrb::BuildLrbQuery(lrb);
  sps::Sps sps(std::move(query.graph), PaperControl());
  SEEP_CHECK(sps.Deploy().ok());
  sps.RunFor(2400);
  return {LatencyPercentileAfter(sps.metrics(), 2100, 50),
          LatencyPercentileAfter(sps.metrics(), 2100, 95), sps.VmsInUse()};
}

void BM_Fig10_ManualVsDynamic(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Figure 10",
           "Dynamic vs manual scale out (LRB L=115); VMs include "
           "source+sink");
    std::printf("%-10s %8s %12s %12s\n", "mode", "VMs", "median(ms)",
                "p95(ms)");
    std::vector<AllocationResult> manual;
    for (uint32_t workers : {8, 12, 16, 20, 24, 28}) {
      manual.push_back(RunManual(workers));
      const AllocationResult& r = manual.back();
      std::printf("%-10s %8zu %12.1f %12.1f\n", "manual", r.vms, r.median_ms,
                  r.p95_ms);
    }
    // The paper's "most efficient manual allocation": the smallest VM count
    // before the p95 latency starts to climb — i.e. within 1.5x of the best
    // p95 achieved by any allocation.
    double best_p95 = 1e18;
    for (const auto& r : manual) best_p95 = std::min(best_p95, r.p95_ms);
    size_t manual_best_vms = 0;
    for (const auto& r : manual) {
      if (r.p95_ms <= 1.5 * best_p95) {
        manual_best_vms = r.vms;
        break;
      }
    }
    const AllocationResult dyn = RunDynamic();
    std::printf("%-10s %8zu %12.1f %12.1f\n", "dynamic", dyn.vms,
                dyn.median_ms, dyn.p95_ms);
    std::printf("(paper: manual optimum 20 VMs; dynamic uses ~25%% more "
                "with low latency)\n");
    state.counters["dynamic_vms"] = static_cast<double>(dyn.vms);
    state.counters["manual_best_vms"] = static_cast<double>(manual_best_vms);
    state.counters["dynamic_p95_ms"] = dyn.p95_ms;
  }
}

BENCHMARK(BM_Fig10_ManualVsDynamic)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
