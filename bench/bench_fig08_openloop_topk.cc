// Figure 8 reproduction: dynamic scale out for the map/reduce-style top-k
// query over a synthetic Wikipedia trace (open-loop workload). The paper's
// SPS starts under-provisioned, loses tuples, and scales out until it
// sustains 550k tuples/s; stateless maps scale out faster than stateful
// reducers early in the run.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "workloads/topk/topk.h"

namespace seep::bench {
namespace {

constexpr double kLoadScale = 16;  // 34.4k simulated t/s ~ paper's 550k

void BM_Fig08_OpenLoopTopK(benchmark::State& state) {
  const double duration = static_cast<double>(state.range(0));

  for (auto _ : state) {
    workloads::topk::TopKConfig cfg;
    cfg.total_rate_tuples_per_sec = 550000 / kLoadScale;
    cfg.num_sources = 18;
    cfg.map_cost_us = 2.0 * kLoadScale;
    cfg.reduce_cost_us = 5.0 * kLoadScale;
    cfg.source_cost_us = 1.0 * kLoadScale;
    cfg.sink_cost_us = 0.5 * kLoadScale;
    cfg.seed = 21;
    auto query = workloads::topk::BuildTopKQuery(cfg);
    const OperatorId map_op = query.map;
    const OperatorId reduce_op = query.reduce;

    sps::SpsConfig config = PaperControl();
    config.cluster.max_queue_tuples = 20000;  // open loop: drop on overload
    sps::Sps sps(std::move(query.graph), config);
    SEEP_CHECK(sps.Deploy().ok());

    Banner("Figure 8",
           "Dynamic scale out for a map/reduce-style top-k workload "
           "(open loop)");
    std::printf("offered=%.0f t/s (x%.0f paper-equiv = 550k), 18 sources\n",
                cfg.total_rate_tuples_per_sec, kLoadScale);
    std::printf("%10s %16s %14s %8s %8s %8s\n", "time(s)", "consumed(t/s)",
                "dropped(t/s)", "VMs", "map-pi", "red-pi");

    for (double t = 30; t <= duration; t += 30) {
      sps.RunUntil(t);
      const auto sink = sps.metrics().sink_tuples.RatesPerSecond();
      const auto drops = sps.metrics().dropped_tuples.RatesPerSecond();
      double consumed = 0, dropped = 0;
      int n = 0;
      for (double s = t - 30; s < t; s += 1) {
        const auto idx = static_cast<size_t>(s);
        if (idx < sink.size()) consumed += sink[idx].value;
        if (idx < drops.size()) dropped += drops[idx].value;
        ++n;
      }
      std::printf("%10.0f %16.0f %14.0f %8zu %8u %8u\n", t, consumed / n,
                  dropped / n, sps.VmsInUse(), sps.ParallelismOf(map_op),
                  sps.ParallelismOf(reduce_op));
    }
    std::printf("total dropped: %llu; scale-outs: %zu\n",
                static_cast<unsigned long long>(
                    sps.metrics().dropped_tuples.total()),
                sps.metrics().scale_outs.size());
    state.counters["final_map_pi"] = sps.ParallelismOf(map_op);
    state.counters["final_reduce_pi"] = sps.ParallelismOf(reduce_op);
    state.counters["dropped_total"] =
        static_cast<double>(sps.metrics().dropped_tuples.total());
  }
}

BENCHMARK(BM_Fig08_OpenLoopTopK)
    ->Args({600})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
