// Figure 13 reproduction: serial vs parallel recovery using state
// management (input rate 500 t/s). The paper shows parallel recovery
// winning only at larger checkpoint intervals, where enough tuples must be
// replayed that splitting the re-processing across two partitions pays for
// its overhead.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace seep::bench {
namespace {

void BM_Fig13_ParallelRecovery(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Figure 13",
           "Recovery time for serial and parallel recovery (R+SM, "
           "500 t/s)");
    std::printf("%14s %12s %14s\n", "interval(s)", "serial(s)",
                "parallel(s)");
    for (double interval : {1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      const double fail_at = WorstCaseFailTime(interval);
      const RecoveryRun serial = RunWordCountRecovery(
          runtime::FaultToleranceMode::kStateManagement, 500, interval,
          /*recovery_parallelism=*/1, fail_at, fail_at + 60);
      const RecoveryRun parallel = RunWordCountRecovery(
          runtime::FaultToleranceMode::kStateManagement, 500, interval,
          /*recovery_parallelism=*/2, fail_at, fail_at + 60);
      std::printf("%14.0f %12.2f %14.2f\n", interval,
                  serial.recovery_seconds, parallel.recovery_seconds);
      if (interval == 30.0) {
        state.counters["serial_30s"] = serial.recovery_seconds;
        state.counters["parallel_30s"] = parallel.recovery_seconds;
      }
    }
    std::printf("(paper: parallel recovery pays off only for larger "
                "intervals)\n");
  }
}

BENCHMARK(BM_Fig13_ParallelRecovery)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
