#ifndef SEEP_BENCH_BENCH_COMMON_H_
#define SEEP_BENCH_BENCH_COMMON_H_

// Shared scenario builders and table printers for the figure-reproduction
// benches. Each bench binary regenerates one table/figure of the paper's
// evaluation (§6); EXPERIMENTS.md records paper-vs-measured values.

#include <cmath>
#include <cstdio>

#include "sps/sps.h"
#include "workloads/lrb/lrb.h"
#include "workloads/wordcount/wordcount.h"

namespace seep::bench {

/// Prints a figure banner so bench output reads like the paper's plots.
inline void Banner(const char* figure, const char* caption) {
  std::printf("\n==== %s: %s ====\n", figure, caption);
}

/// The paper-scale LRB configuration. `l` is the number of express-ways;
/// `load_scale` thins the tuple stream while scaling per-tuple costs up by
/// the same factor, preserving VM demand, the scale-out trajectory and the
/// toll semantics (see DESIGN.md). At load_scale=64 and L=350 the simulated
/// peak input is ~9.4k tuples/s standing in for the paper's 600k.
inline workloads::lrb::LrbConfig PaperLrb(uint32_t l, double duration_s,
                                          double load_scale = 64,
                                          double ramp_s = 0) {
  workloads::lrb::LrbConfig lrb;
  lrb.num_xways = l;
  lrb.duration_s = duration_s;
  lrb.ramp_duration_s = ramp_s;
  lrb.load_scale = load_scale;
  lrb.source_cost_us = 1.6;  // saturates at ~600k t/s paper-equivalent
  lrb.sink_cost_us = 0.8;    // the paper's sink runs on a larger VM
  lrb.seed = 42;
  return lrb;
}

/// Control-plane configuration matching the paper's §5.1 defaults:
/// r = 5 s, k = 2, δ = 70 %, checkpoint interval c = 5 s.
inline sps::SpsConfig PaperControl() {
  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.scaling.report_interval = SecondsToSim(5);
  config.scaling.consecutive_reports = 2;
  config.scaling.threshold = 0.70;
  config.scaling.max_vms = 100;
  // A generous pool: the paper keeps p larger "while the SPS scales out
  // aggressively" and our compressed ramps scale out often.
  config.cluster.pool.target_size = 8;
  return config;
}

/// Latency percentile restricted to samples after `after_s` — used to
/// measure steady-state (plateau) latency, excluding the ramp/scale-out
/// transients.
inline double LatencyPercentileAfter(const runtime::MetricsRegistry& metrics,
                                     double after_s, double percentile) {
  SampleDistribution window;
  for (const auto& p : metrics.latency_series_ms.points()) {
    if (p.time >= SecondsToSim(after_s)) window.Add(p.value);
  }
  return window.Percentile(percentile);
}

/// Worst-case failure instant for a given checkpoint interval: just before
/// the checkpoint that would have covered the interval, so the replay spans
/// (almost) a full interval — the regime the paper's Figs. 12/13/15 plot.
inline double WorstCaseFailTime(double checkpoint_interval_s,
                                double not_before = 60) {
  const double k = std::ceil(not_before / checkpoint_interval_s);
  return k * checkpoint_interval_s + checkpoint_interval_s - 0.2;
}

/// One recovery experiment on the windowed word frequency query (§6.2):
/// fail the word counter at `fail_at` seconds and report the measured
/// recovery time (failure to replay-drained) in seconds, or -1 if recovery
/// did not complete within the run.
struct RecoveryRun {
  double recovery_seconds = -1;
  double latency_p95_ms = 0;
  double latency_median_ms = 0;
  double ckpt_pause_p99_ms = 0;
  uint64_t replayed = 0;
};

inline RecoveryRun RunWordCountRecovery(
    runtime::FaultToleranceMode mode, double rate_tuples_per_sec,
    double checkpoint_interval_s, uint32_t recovery_parallelism = 1,
    double fail_at = 60, double total = 120, size_t vocabulary = 1000,
    bool inject_failure = true, bool async_checkpoints = false,
    runtime::BackupDurability durability =
        runtime::BackupDurability::kMemory) {
  workloads::wordcount::WordCountConfig wc;
  wc.rate_tuples_per_sec = rate_tuples_per_sec;
  wc.vocabulary = vocabulary;
  wc.seed = 1234;

  sps::SpsConfig config;
  config.cluster.ft_mode = mode;
  config.cluster.checkpoint_interval = SecondsToSim(checkpoint_interval_s);
  config.cluster.buffer_window = SecondsToSim(35);
  config.cluster.backup_durability = durability;
  config.scaling.enabled = false;
  config.recovery.parallelism = recovery_parallelism;
  config.cluster.pool.target_size = 3;
  config.cluster.async_checkpoints = async_checkpoints;

  auto query = workloads::wordcount::BuildWordCountQuery(wc);
  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  if (inject_failure) sps.InjectFailure(query.counter, fail_at);
  sps.RunFor(total);

  RecoveryRun out;
  out.latency_p95_ms = sps.metrics().latency_ms.Percentile(95);
  out.latency_median_ms = sps.metrics().latency_ms.Median();
  out.ckpt_pause_p99_ms = sps.metrics().ckpt_pause_ms.Percentile(99);
  out.replayed = sps.metrics().tuples_replayed;
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) out.recovery_seconds = r.RecoverySeconds();
  }
  return out;
}

}  // namespace seep::bench

#endif  // SEEP_BENCH_BENCH_COMMON_H_
