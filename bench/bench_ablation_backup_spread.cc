// Backup-spread ablation (paper Algorithm 1 line 2): checkpoints are backed
// up to an upstream instance chosen by hash so the backup load spreads over
// all partitioned upstream operators. We deploy the word-count query with 4
// splitter and 8 counter partitions carrying large state and compare hashed
// spread against a fixed single holder: the fixed holder's downlink carries
// all checkpoint bytes and its VM becomes a hotspot.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "runtime/operator_instance.h"

namespace seep::bench {
namespace {

struct SpreadResult {
  uint64_t max_holder_bytes = 0;
  uint64_t min_holder_bytes = 0;
  uint64_t total_checkpoint_bytes = 0;
  double p95_ms = 0;
};

SpreadResult RunSpread(bool spread) {
  workloads::wordcount::WordCountConfig wc;
  wc.rate_tuples_per_sec = 800;
  wc.vocabulary = 50000;  // large state: ~MB-scale checkpoints
  wc.seed = 31;
  auto query = workloads::wordcount::BuildWordCountQuery(wc);
  const OperatorId splitter = query.splitter;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.spread_backups = spread;
  config.scaling.enabled = false;
  config.initial_parallelism = {{query.splitter, 4}, {query.counter, 8}};
  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  sps.RunFor(120);

  SpreadResult out;
  out.min_holder_bytes = UINT64_MAX;
  for (InstanceId id : sps.cluster().LiveInstancesOf(splitter)) {
    const auto* inst = sps.cluster().GetInstance(id);
    const uint64_t bytes = sps.cluster().network()->DownlinkBytes(inst->vm());
    out.max_holder_bytes = std::max(out.max_holder_bytes, bytes);
    out.min_holder_bytes = std::min(out.min_holder_bytes, bytes);
  }
  out.total_checkpoint_bytes = sps.metrics().checkpoint_bytes;
  out.p95_ms = sps.metrics().latency_ms.Percentile(95);
  return out;
}

void BM_AblationBackupSpread(benchmark::State& state) {
  for (auto _ : state) {
    Banner("Ablation (3.2)",
           "Hashed backup spreading vs fixed holder (4 splitters backing up "
           "8 counters, large state)");
    std::printf("%-14s %18s %18s %20s %10s\n", "policy",
                "max holder(MB)", "min holder(MB)", "ckpt bytes total(MB)",
                "p95(ms)");
    const SpreadResult hashed = RunSpread(true);
    const SpreadResult fixed = RunSpread(false);
    auto mb = [](uint64_t b) { return static_cast<double>(b) / 1e6; };
    std::printf("%-14s %18.1f %18.1f %20.1f %10.0f\n", "hash-spread",
                mb(hashed.max_holder_bytes), mb(hashed.min_holder_bytes),
                mb(hashed.total_checkpoint_bytes), hashed.p95_ms);
    std::printf("%-14s %18.1f %18.1f %20.1f %10.0f\n", "fixed-holder",
                mb(fixed.max_holder_bytes), mb(fixed.min_holder_bytes),
                mb(fixed.total_checkpoint_bytes), fixed.p95_ms);
    std::printf("(expected: fixed holder concentrates all checkpoint bytes "
                "on one VM's downlink)\n");
    state.counters["hashed_max_MB"] = mb(hashed.max_holder_bytes);
    state.counters["fixed_max_MB"] = mb(fixed.max_holder_bytes);
  }
}

BENCHMARK(BM_AblationBackupSpread)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace seep::bench

BENCHMARK_MAIN();
