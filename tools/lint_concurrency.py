#!/usr/bin/env python3
"""Static concurrency lint: the discipline src/common/sync.h exists to carry.

Clang Thread Safety Analysis (the SEEP_TSA build) proves lock discipline at
compile time, but only for code that goes through the annotated wrappers and
only when a clang toolchain is present. This lint enforces the parts that
keep the analysis sound on every toolchain:

  * no-raw-mutex: `std::mutex` / `std::condition_variable` / the std lock
    RAII types (and their headers) appear nowhere outside common/sync.h.
    A raw mutex is invisible to the analysis, to the holder bookkeeping,
    and to the lock-order manifest; every lock in the tree goes through
    sync::Mutex / sync::CondVar.
  * unannotated-member: in the thread-spawning translation units (the net/
    library, the checkpoint pipeline, the TCP transport), every mutable
    data member is either SEEP_GUARDED_BY a mutex or a thread-role
    capability, or carries an explicit SEEP_UNGUARDED waiver. Immutable
    (`const`/`constexpr`), `std::atomic`, and the sync primitives
    themselves are exempt. An unannotated member in threaded code is a
    data race nobody has thought about yet.
  * waiver-needs-reason: every SEEP_UNGUARDED carries a non-empty written
    reason. A waiver without a reason is a suppression, not a decision.
  * lock-order: tools/lock_order.json lists every sync::Mutex in the tree
    and the held-while-acquiring edges between them; the lint fails when
    the manifest and the source disagree (a mutex added or removed without
    updating the manifest) or when the edge graph has a cycle (a lock-order
    cycle is a deadlock waiting for the right interleaving).

Exit status: 0 when clean, 1 on any violation (CI fails), 2 on usage
errors. `--self-test` runs the rules against
tests/lint_fixtures/concurrency/, which contains one violation of each
class, and fails unless every rule fires.
"""

import argparse
import json
import re
import sys
from pathlib import Path

import lint_common
from lint_common import strip_comments

# Directories scanned for raw-mutex use and waiver hygiene, relative to the
# repo root. Fixture trees are excluded: they exist to contain violations.
SCAN_DIRS = ("src", "tests", "bench", "examples")
EXCLUDE_PARTS = {"lint_fixtures"}

# The one file allowed to touch the std synchronisation types: the wrapper.
RAW_MUTEX_ALLOWLIST = {Path("src/common/sync.h")}

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
    r"|^\s*#include\s+<(mutex|condition_variable|shared_mutex)>")

# Translation units that spawn or are entered by more than one thread; every
# mutable member they declare must be annotated or explicitly waivered.
THREADED_TUS = (
    "src/net/event_loop.h",
    "src/net/connection.h",
    "src/net/worker.h",
    "src/net/endpoint.h",
    "src/net/local_cluster.h",
    "src/runtime/ckpt_pipeline.h",
    "src/runtime/tcp_transport.h",
    "src/runtime/tcp_transport.cc",
    "src/store/checkpoint_log.h",
)

ANNOTATION_TOKENS = (
    "SEEP_GUARDED_BY", "SEEP_PT_GUARDED_BY", "SEEP_UNGUARDED",
)

# Only class bodies that visibly participate in threading are held to the
# annotation discipline: they declare a lock, a condition variable, a
# thread handle, or already carry capability annotations. Plain value
# structs (wire headers, configs, job descriptions) pass between threads
# by move and need no per-member story.
THREADING_MARKER_RE = re.compile(
    r"\bsync::Mutex\b|\bsync::CondVar\b|\bstd::thread\b"
    r"|SEEP_GUARDED_BY|SEEP_PT_GUARDED_BY|SEEP_UNGUARDED")

# A member declaration statement containing any of these needs no
# annotation: it is immutable, internally synchronised, or a primitive the
# annotations attach to.
MEMBER_EXEMPT_RE = re.compile(
    r"\bconst\b|\bconstexpr\b|\bstatic\b|\bstd::atomic\b|\bsync::Mutex\b"
    r"|\bsync::CondVar\b|\busing\b|\btypedef\b|\bfriend\b|\benum\b")

# The declared name of a member statement: trailing-underscore identifier
# (or a lone lowercase word for short struct members) right before the
# initializer / end of statement.
MEMBER_NAME_RE = re.compile(
    r"\b([A-Za-z]\w*)\s*(?:=[^=].*|\{[^}]*\})?\s*$")

WAIVER_RE = re.compile(r"SEEP_UNGUARDED\s*\(\s*(\"(?:[^\"\\]|\\.)*\")?\s*\)")

SYNC_MUTEX_DECL_RE = re.compile(
    r"\bsync::Mutex\s+(\w+)\s*(?:;|SEEP_)")


def scan_files(repo_root):
    for d in SCAN_DIRS:
        base = repo_root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if EXCLUDE_PARTS & set(path.parts):
                continue
            yield path


def check_raw_mutex(repo_root, violations):
    for path in scan_files(repo_root):
        rel = path.relative_to(repo_root)
        if rel in RAW_MUTEX_ALLOWLIST:
            continue
        text = strip_comments(path.read_text(errors="replace"))
        for number, line in enumerate(text.splitlines(), start=1):
            match = RAW_MUTEX_RE.search(line)
            if match:
                violations.append((
                    "no-raw-mutex", f"{rel}:{number}",
                    f"'{match.group(0).strip()}' bypasses common/sync.h; "
                    "raw std synchronisation is invisible to the thread "
                    "safety analysis and the lock-order manifest"))


def class_regions(text):
    """Yields (start_line, [(line_number, statement), ...]) per class body.

    Statements are member-declaration-level only: content inside nested
    braces (method bodies, nested classes — which get their own region,
    default member initializer lists) is skipped.
    """
    head_re = re.compile(r"\b(?:struct|class)\s+\w[^;{()]*\{")
    lines = text.splitlines()
    flat = "\n".join(lines)
    for match in head_re.finditer(flat):
        open_pos = match.end() - 1
        depth = 0
        stmt, stmt_line = [], None
        line_no = flat.count("\n", 0, open_pos) + 1
        statements = []
        i = open_pos
        while i < len(flat):
            ch = flat[i]
            if ch == "{":
                depth += 1
                if depth > 1:
                    # Skip the nested brace region wholesale.
                    inner = 1
                    i += 1
                    while i < len(flat) and inner:
                        if flat[i] == "{":
                            inner += 1
                        elif flat[i] == "}":
                            inner -= 1
                        line_no += flat[i] == "\n"
                        i += 1
                    depth -= 1
                    continue
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    break
            elif ch == '"':
                j = i + 1
                while j < len(flat) and flat[j] != '"':
                    j += 2 if flat[j] == "\\" else 1
                if depth == 1:
                    if stmt_line is None:
                        stmt_line = line_no
                    stmt.append(flat[i:j + 1])
                line_no += flat.count("\n", i, j + 1)
                i = j + 1
                continue
            elif ch == "\n":
                line_no += 1
            elif ch == ";" and depth == 1:
                body = "".join(stmt).strip()
                if body:
                    statements.append((stmt_line or line_no, body))
                stmt, stmt_line = [], None
                i += 1
                continue
            if depth == 1 and ch not in "{}":
                if stmt_line is None and not ch.isspace():
                    stmt_line = line_no
                stmt.append(ch)
            i += 1
        yield statements


def looks_like_member(stmt):
    """True for data-member declarations, false for methods/labels/etc.

    Template argument lists are stripped first (so a std::function<...>
    member's parentheses don't read as a method signature), then the SEEP
    annotation macros; what still has a '(' before any initializer is a
    method declaration.
    """
    no_templates = re.sub(r"<[^<>]*(?:<[^<>]*>[^<>]*)*>", "", stmt)
    no_macros = re.sub(r"SEEP_\w+\s*\((?:[^()\"]|\"[^\"]*\")*\)", "",
                       no_templates)
    if "(" in no_macros.split("=")[0]:
        return False  # a method (or constructor) declaration
    if no_macros.rstrip().endswith(("public:", "private:", "protected:")):
        return False
    for kw in ("public:", "private:", "protected:"):
        if no_macros.strip().startswith(kw):
            no_macros = no_macros.strip()[len(kw):]
    head = no_macros.strip()
    if not head or head.startswith(("#", "template", "explicit", "virtual",
                                    "operator", "~", "return", "struct",
                                    "class")):
        return False
    # A declaration needs at least a type and a name.
    return len(head.replace("=", " ").split()) >= 2


def check_threaded_members(repo_root, violations, tus):
    for tu in tus:
        path = repo_root / tu
        if not path.is_file():
            violations.append((
                "unannotated-member", str(tu),
                "listed threaded TU does not exist; update THREADED_TUS"))
            continue
        text = strip_comments(path.read_text(errors="replace"))
        for statements in class_regions(text):
            if not any(THREADING_MARKER_RE.search(stmt)
                       for _, stmt in statements):
                continue
            for line_no, stmt in statements:
                if not looks_like_member(stmt):
                    continue
                if MEMBER_EXEMPT_RE.search(
                        re.sub(r"SEEP_\w+\s*\((?:[^()\"]|\"[^\"]*\")*\)",
                               "", stmt)):
                    continue
                if any(tok in stmt for tok in ANNOTATION_TOKENS):
                    continue
                name = MEMBER_NAME_RE.search(
                    re.sub(r"SEEP_\w+\s*\((?:[^()\"]|\"[^\"]*\")*\)", "",
                           stmt).rstrip())
                label = name.group(1) if name else stmt[:40]
                violations.append((
                    "unannotated-member", f"{tu}:{line_no}",
                    f"member '{label}' in a thread-spawning TU has no "
                    "SEEP_GUARDED_BY and no SEEP_UNGUARDED waiver"))


def check_waiver_reasons(repo_root, violations):
    for path in scan_files(repo_root):
        rel = path.relative_to(repo_root)
        text = path.read_text(errors="replace")
        # Work on the raw text: the reasons live inside string literals.
        for number, line_block in enumerate(text.splitlines(), start=1):
            for match in WAIVER_RE.finditer(line_block):
                literal = match.group(1)
                if literal is None or len(literal) <= 2:
                    violations.append((
                        "waiver-needs-reason", f"{rel}:{number}",
                        "SEEP_UNGUARDED without a written reason is a "
                        "suppression, not a decision; say why the member "
                        "needs no guard"))


def check_lock_order(repo_root, manifest_path, violations):
    rel_manifest = manifest_path.relative_to(repo_root)
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        violations.append(("lock-order-manifest", str(rel_manifest),
                           f"cannot read manifest: {err}"))
        return
    mutexes = manifest.get("mutexes", {})
    edges = manifest.get("edges", [])

    # Manifest -> source: every listed mutex must still be declared there.
    declared = {}
    for name, rel in mutexes.items():
        path = repo_root / rel
        member = name.rsplit("::", 1)[-1]
        text = strip_comments(path.read_text(errors="replace")) \
            if path.is_file() else ""
        found = any(m.group(1) == member
                    for m in SYNC_MUTEX_DECL_RE.finditer(text))
        if not found:
            violations.append((
                "lock-order-stale-mutex", f"{rel_manifest}: {name}",
                f"manifest lists '{name}' but {rel} declares no "
                f"'sync::Mutex {member}'"))
        declared[name] = rel

    # Source -> manifest: every sync::Mutex in src/ must be listed.
    listed_by_file = {}
    for name, rel in mutexes.items():
        listed_by_file.setdefault(rel, set()).add(name.rsplit("::", 1)[-1])
    src = repo_root / "src"
    if src.is_dir():
        for path in sorted(src.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if path.relative_to(repo_root) in RAW_MUTEX_ALLOWLIST:
                continue
            rel = str(path.relative_to(repo_root))
            text = strip_comments(path.read_text(errors="replace"))
            for match in SYNC_MUTEX_DECL_RE.finditer(text):
                if match.group(1) not in listed_by_file.get(rel, set()):
                    number = text.count("\n", 0, match.start()) + 1
                    violations.append((
                        "lock-order-unlisted-mutex", f"{rel}:{number}",
                        f"sync::Mutex '{match.group(1)}' is not in "
                        f"{rel_manifest}; add it (and its held-while-"
                        "acquiring edges, if any)"))

    # Edge endpoints must be listed mutexes.
    graph = {name: [] for name in mutexes}
    for edge in edges:
        src_m, dst_m = edge.get("from"), edge.get("to")
        for endpoint in (src_m, dst_m):
            if endpoint not in mutexes:
                violations.append((
                    "lock-order-unknown-edge", str(rel_manifest),
                    f"edge {src_m!r} -> {dst_m!r} references a mutex not "
                    "listed under 'mutexes'"))
                break
        else:
            graph[src_m].append(dst_m)

    # Cycle detection: iterative DFS, three colours.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in graph}
    for root in graph:
        if colour[root] != WHITE:
            continue
        stack = [(root, iter(graph[root]))]
        colour[root] = GREY
        path_stack = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if colour[nxt] == GREY:
                    cycle = path_stack[path_stack.index(nxt):] + [nxt]
                    violations.append((
                        "lock-order-cycle", str(rel_manifest),
                        "lock-order cycle (a deadlock waiting for the "
                        "right interleaving): " + " -> ".join(cycle)))
                elif colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(graph[nxt])))
                    path_stack.append(nxt)
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
                path_stack.pop()


def lint(repo_root, manifest_path, tus):
    violations = []
    check_raw_mutex(repo_root, violations)
    check_threaded_members(repo_root, violations, tus)
    check_waiver_reasons(repo_root, violations)
    check_lock_order(repo_root, manifest_path, violations)
    return violations


def self_test(repo_root):
    """Runs the rules against the fixture tree; every class must fire."""
    fixtures = repo_root / "tests" / "lint_fixtures" / "concurrency"
    if not fixtures.is_dir():
        print(f"lint_concurrency: fixture tree missing: {fixtures}",
              file=sys.stderr)
        return 1
    violations = []

    # The fixture tree is scanned directly: every file in it is treated as
    # a thread-spawning TU, and its own (deliberately broken) manifest is
    # used for the lock-order check.
    def fixture_files():
        return sorted(p for p in fixtures.rglob("*")
                      if p.suffix in (".h", ".cc"))

    for path in fixture_files():
        rel = path.relative_to(fixtures)
        text = strip_comments(path.read_text(errors="replace"))
        for number, line in enumerate(text.splitlines(), start=1):
            match = RAW_MUTEX_RE.search(line)
            if match:
                violations.append(("no-raw-mutex", f"{rel}:{number}", ""))
        raw = path.read_text(errors="replace")
        for number, line in enumerate(raw.splitlines(), start=1):
            for match in WAIVER_RE.finditer(line):
                literal = match.group(1)
                if literal is None or len(literal) <= 2:
                    violations.append(
                        ("waiver-needs-reason", f"{rel}:{number}", ""))
    check_threaded_members(
        fixtures, violations,
        tuple(str(p.relative_to(fixtures)) for p in fixture_files()))
    check_lock_order(fixtures, fixtures / "lock_order_cycle.json",
                     violations)

    expected = {"no-raw-mutex", "unannotated-member", "waiver-needs-reason",
                "lock-order-cycle", "lock-order-stale-mutex"}
    return lint_common.self_test_verdict(
        "lint_concurrency", expected, violations)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on the fixtures")
    args = parser.parse_args()

    repo_root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(repo_root)
    if not (repo_root / "src").is_dir():
        print(f"lint_concurrency: no src/ under {repo_root}",
              file=sys.stderr)
        return lint_common.EXIT_USAGE

    violations = lint(repo_root, repo_root / "tools" / "lock_order.json",
                      THREADED_TUS)
    return lint_common.report(
        "lint_concurrency", violations,
        "clean (no raw mutexes, threaded members annotated, waivers "
        "reasoned, lock order acyclic)")


if __name__ == "__main__":
    sys.exit(main())
