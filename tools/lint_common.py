"""Shared harness for the tools/ lint suite.

Every lint in this repo (lint_layers.py, lint_concurrency.py,
seep_analyzer.py) follows the same contract:

  * violations are (rule, "file:line", detail) triples
  * output is one `file:line: [rule] detail` line per violation
  * exit status 0 when clean, 1 on violations, 2 on usage errors
  * `--self-test` runs the rules against tests/lint_fixtures/ and fails
    unless every rule class fires on the deliberately-broken fixtures

This module carries the shared plumbing so the three tools report
identically and their self-tests are built the same way; tools/lint.sh
drives all of them as one suite.
"""

import sys

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def strip_comments(text):
    """Removes // and block comments, preserving line structure.

    String literals are preserved verbatim so `//` inside a string does
    not start a comment. Used by every lint that must not match source
    patterns inside commentary.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif text[i] == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:min(j + 1, n)])
            i = j + 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def report(tool, violations, clean_message):
    """Prints violations in the shared format; returns the exit status."""
    for rule, where, detail in violations:
        print(f"{where}: [{rule}] {detail}")
    if violations:
        print(f"{tool}: {len(violations)} violation(s)", file=sys.stderr)
        return EXIT_VIOLATIONS
    print(f"{tool}: {clean_message}")
    return EXIT_CLEAN


def self_test_verdict(tool, expected_rules, violations, extra_failures=()):
    """Checks that every expected rule fired on the fixture tree.

    `extra_failures` carries scenario-level self-test failures (e.g. a
    negative fixture that produced violations, a cache that failed to
    invalidate) as human-readable strings. Returns the exit status.
    """
    found = {rule for rule, _, _ in violations}
    missing = sorted(set(expected_rules) - found)
    failures = list(extra_failures)
    if missing:
        failures.append("rules that did not fire on the fixture "
                        "violations: " + ", ".join(missing))
    if failures:
        print(f"{tool} self-test FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        for rule, where, _ in violations:
            print(f"  fired: {rule} at {where}", file=sys.stderr)
        return EXIT_VIOLATIONS
    print(f"{tool} self-test OK ({len(set(expected_rules))} rule classes "
          "fire on the fixture tree)")
    return EXIT_CLEAN
