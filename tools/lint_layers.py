#!/usr/bin/env python3
"""Static architecture lint: checks the include graph against the layer map.

The repo is layered (see DESIGN.md): each directory under src/ may only
include headers from itself and from the layers listed in LAYER_DEPS. On
top of the layer map, seven seam rules protect the component interfaces
introduced by the runtime decomposition, the networking subsystem, the
reconfiguration plane and the durable checkpoint store:

  * control-no-raw-network: src/control/ must not include sim/network.h.
    Coordinators act on the cluster through the Transport interface; a
    coordinator talking to the simulated network directly bypasses the
    seam the fault-injection and audit hooks rely on.
  * component-no-cluster-header: runtime component *headers* (everything
    in src/runtime/ except cluster.h itself) must not include
    runtime/cluster.h. Components are wired by Cluster, they do not know
    it; headers forward-declare Cluster and only .cc files include it.
  * net-isolation: src/net/ is a leaf I/O library that knows only bytes
    and frames; it must never include runtime/, control/, cloud/ or sim/
    headers. Message *bodies* are opaque to net; decoding them is the
    transport's job.
  * net-only-in-transport: outside src/net/ itself, only the Transport
    implementations (src/runtime/transport.* and tcp_transport.*) may
    include net/ headers. Everything else reaches the network through
    the runtime::Transport seam, keeping the sim path byte-identical.
  * ckpt-worker-no-net: the checkpoint pipeline's background worker code
    (src/runtime/ckpt_*) must not include net/ headers. Serialization
    workers run off the driver thread and hand frames back through the
    Transport seam; a worker writing sockets directly would bypass both
    the per-link FIFO the chunk protocol assumes and the audit hooks.
  * store-isolation: src/store/ is a storage-engine leaf; it may include
    only serde/ (framing, crc, compression) and common/. The log knows
    bytes and record metadata, never operators, checkpoint objects or
    the cluster — those live above the BackupStore seam.
  * store-only-in-backup-path: outside src/store/ itself, only the
    backup/recovery path (runtime/backup_store.* and runtime/cluster.*)
    may include store/ headers. Coordinators, transports and workers see
    durability exclusively through the BackupStore tier, so the kMemory
    default stays byte-identical and the log can change format freely.
  * no-upward-dependency: a layer including a header from a higher layer
    (e.g. core including runtime/) — the generic layer-map check.

The former coordinator-via-plan-only regex rule is retired: its
invariant (cluster mutations only through the reconfiguration plane's
choke points) is now enforced AST-accurately by tools/seep_analyzer.py's
choke-point-discipline rule, which resolves actual call expressions
instead of pattern-matching source text.

Exit status: 0 when clean, 1 on any violation (CI fails), 2 on usage
errors. `--self-test` runs the lint against tests/lint_fixtures/, a tiny
fake tree that contains one violation of each rule, and verifies each is
reported.
"""

import argparse
import re
import sys
from pathlib import Path

import lint_common

# Allowed include targets per src/ directory (besides itself). Mirrors the
# target_link_libraries graph in src/*/CMakeLists.txt; keep the two in sync.
LAYER_DEPS = {
    "common": set(),
    "serde": {"common"},
    "sim": {"common"},
    "net": {"common", "serde"},
    "cloud": {"common", "sim"},
    "store": {"common", "serde"},
    "core": {"common", "serde"},
    "verify": {"common", "serde", "core"},
    "workloads": {"common", "serde", "core"},
    "runtime": {"common", "serde", "sim", "net", "cloud", "store", "core",
                "verify"},
    "control": {"common", "serde", "sim", "cloud", "core", "verify",
                "runtime"},
    "sps": {"common", "serde", "sim", "cloud", "core", "verify", "runtime",
            "control", "workloads"},
}

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')

# The only files outside src/net/ allowed to include net/ headers: the
# Transport seam and its TCP implementation.
NET_INCLUDE_ALLOWLIST = {
    Path("runtime/transport.h"), Path("runtime/transport.cc"),
    Path("runtime/tcp_transport.h"), Path("runtime/tcp_transport.cc"),
}

# Layers the net library must never see: anything that runs protocol
# logic or the simulation. net ships opaque framed bytes, nothing more.
NET_FORBIDDEN_TARGETS = {"runtime", "control", "cloud", "sim"}

# The only files outside src/store/ allowed to include store/ headers:
# the BackupStore tiering seam and the Cluster that owns/wires the log.
STORE_INCLUDE_ALLOWLIST = {
    Path("runtime/backup_store.h"), Path("runtime/backup_store.cc"),
    Path("runtime/cluster.h"), Path("runtime/cluster.cc"),
}

# What the storage engine itself may include: framing/compression and the
# base layer. Anything else is protocol knowledge leaking below the seam.
STORE_ALLOWED_TARGETS = {"store", "serde", "common"}


def quoted_includes(path):
    """Yields (line_number, include_path) for every quoted include."""
    for number, line in enumerate(
            path.read_text(errors="replace").splitlines(), start=1):
        match = INCLUDE_RE.match(line)
        if match:
            yield number, match.group(1)


def lint_tree(src_root):
    """Returns a list of (rule, "file:line", detail) violations."""
    violations = []
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(src_root)
        layer = rel.parts[0]
        allowed = LAYER_DEPS.get(layer)
        if allowed is None:
            continue  # not a mapped layer (e.g. a stray file at src/)
        for number, inc in quoted_includes(path):
            target = inc.split("/", 1)[0] if "/" in inc else None
            where = f"{src_root}/{rel}:{number}"
            if target in LAYER_DEPS and target != layer \
                    and target not in allowed and layer != "store":
                violations.append((
                    "no-upward-dependency", where,
                    f"layer '{layer}' must not include '{inc}' "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'})"))
            if layer == "store" and target in LAYER_DEPS \
                    and target not in STORE_ALLOWED_TARGETS:
                violations.append((
                    "store-isolation", where,
                    "src/store/ is a storage-engine leaf over serde/ and "
                    f"common/; it must not include '{inc}' — protocol "
                    "objects stay above the BackupStore seam"))
            if layer != "store" and inc.startswith("store/") \
                    and rel not in STORE_INCLUDE_ALLOWLIST:
                violations.append((
                    "store-only-in-backup-path", where,
                    "only the backup/recovery path (runtime/backup_store.*, "
                    "runtime/cluster.*) may include store/ headers; "
                    "everything else sees durability through the "
                    "BackupStore tier"))
            if layer == "control" and inc == "sim/network.h":
                violations.append((
                    "control-no-raw-network", where,
                    "coordinators must reach the network through the "
                    "Transport interface, never sim::Network directly"))
            if layer == "net" and target in NET_FORBIDDEN_TARGETS:
                violations.append((
                    "net-isolation", where,
                    "src/net/ ships opaque framed bytes; it must not "
                    f"include '{inc}' — message bodies are decoded by "
                    "the transport, above the seam"))
            if layer == "runtime" and rel.name.startswith("ckpt_") \
                    and inc.startswith("net/"):
                violations.append((
                    "ckpt-worker-no-net", where,
                    "checkpoint pipeline worker code must not touch net/ "
                    "directly; frames reach the wire through the "
                    "runtime::Transport seam"))
            if layer != "net" and inc.startswith("net/") \
                    and rel not in NET_INCLUDE_ALLOWLIST:
                violations.append((
                    "net-only-in-transport", where,
                    "only the Transport implementations "
                    "(runtime/transport.*, runtime/tcp_transport.*) may "
                    "include net/ headers; everything else goes through "
                    "the runtime::Transport seam"))
            if layer == "runtime" and path.suffix == ".h" \
                    and rel.name != "cluster.h" \
                    and inc == "runtime/cluster.h":
                violations.append((
                    "component-no-cluster-header", where,
                    "runtime component headers forward-declare Cluster; "
                    "only their .cc files may include runtime/cluster.h"))
    return violations


def self_test(repo_root):
    """Lints tests/lint_fixtures/ and checks every rule fires there."""
    fixtures = repo_root / "tests" / "lint_fixtures"
    if not fixtures.is_dir():
        print(f"lint_layers: fixture tree missing: {fixtures}",
              file=sys.stderr)
        return 1
    expected = {"no-upward-dependency", "control-no-raw-network",
                "component-no-cluster-header", "net-isolation",
                "net-only-in-transport", "ckpt-worker-no-net",
                "store-isolation", "store-only-in-backup-path"}
    return lint_common.self_test_verdict(
        "lint_layers", expected, lint_tree(fixtures))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on tests/lint_fixtures")
    args = parser.parse_args()

    repo_root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(repo_root)

    src_root = repo_root / "src"
    if not src_root.is_dir():
        print(f"lint_layers: no src/ under {repo_root}", file=sys.stderr)
        return lint_common.EXIT_USAGE
    return lint_common.report(
        "lint_layers", lint_tree(src_root), "include graph clean")


if __name__ == "__main__":
    sys.exit(main())
