#!/usr/bin/env bash
# Builds the benches in Release mode and runs the state hot-path, net
# transport, checkpoint pipeline and durable store benchmarks, leaving
# BENCH_state_hot_paths.json, BENCH_net_transport.json,
# BENCH_ckpt_pipeline.json and BENCH_durable_store.json in the repo root.
#
# Usage: tools/run_benches.sh [extra bench binaries...]
#   tools/run_benches.sh                         # default benches only
#   tools/run_benches.sh bench_fig12_ckpt_interval bench_fig14_ckpt_overhead

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-release"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" \
  --target bench_state_hot_paths bench_net_transport bench_ckpt_pipeline \
           bench_durable_store "$@"

"${build_dir}/bench/bench_state_hot_paths" \
    "${repo_root}/BENCH_state_hot_paths.json"
"${build_dir}/bench/bench_net_transport" \
    "${repo_root}/BENCH_net_transport.json"
"${build_dir}/bench/bench_ckpt_pipeline" \
    "${repo_root}/BENCH_ckpt_pipeline.json"
"${build_dir}/bench/bench_durable_store" \
    "${repo_root}/BENCH_durable_store.json"

for bench in "$@"; do
  echo "==== ${bench} ===="
  "${build_dir}/bench/${bench}"
done

echo "results: ${repo_root}/BENCH_state_hot_paths.json"
echo "results: ${repo_root}/BENCH_net_transport.json"
echo "results: ${repo_root}/BENCH_ckpt_pipeline.json"
echo "results: ${repo_root}/BENCH_durable_store.json"
