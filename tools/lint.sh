#!/usr/bin/env bash
# One-command driver for the whole static-analysis suite. Runs every
# lint's self-test (so a broken rule fails loudly before it silently
# passes the tree) and then every lint against the repo. Any failure
# fails the run; all output keeps the shared `file:line: [rule] detail`
# format.
#
# Usage: tools/lint.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
tools="$root/tools"
status=0

run() {
  echo "== $* =="
  if ! "$@"; then
    status=1
  fi
}

run python3 "$tools/check_format.py"
run python3 "$tools/lint_layers.py" --self-test
run python3 "$tools/lint_layers.py" --root "$root"
run python3 "$tools/lint_concurrency.py" --self-test
run python3 "$tools/lint_concurrency.py" --root "$root"
run python3 "$tools/seep_analyzer.py" --self-test
run python3 "$tools/seep_analyzer.py" --root "$root"

if [ "$status" -ne 0 ]; then
  echo "lint.sh: FAILED" >&2
else
  echo "lint.sh: all lints clean"
fi
exit "$status"
