#!/usr/bin/env python3
"""Repo-wide formatting hygiene check (blocking in CI).

The container CI runners do not ship clang-format, so the enforceable
subset of .clang-format is checked here directly, line by line:

  * line length <= 80 columns (counted in characters, not bytes — the
    docs and comments use Unicode math symbols from the paper)
  * no tab characters in source files
  * no trailing whitespace
  * every file ends with exactly one newline

Covers src/, tests/, bench/ (.h/.cc) and tools/ (.py). When a developer
machine has clang-format available, `clang-format -n` against the
checked-in .clang-format remains the richer local check; this script is
the floor that CI can always enforce.
"""

import sys
from pathlib import Path

MAX_COLS = 80


def check_file(path):
    problems = []
    text = path.read_text(errors="replace")
    if text and not text.endswith("\n"):
        problems.append((len(text.splitlines()), "missing newline at EOF"))
    if text.endswith("\n\n"):
        problems.append((len(text.splitlines()), "multiple newlines at EOF"))
    for number, line in enumerate(text.splitlines(), start=1):
        if len(line) > MAX_COLS:
            problems.append((number, f"line is {len(line)} columns"))
        if "\t" in line:
            problems.append((number, "tab character"))
        if line != line.rstrip():
            problems.append((number, "trailing whitespace"))
        if line.endswith("\r"):
            problems.append((number, "CRLF line ending"))
    return problems


def main():
    repo_root = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent
    targets = []
    for directory, suffixes in (("src", (".h", ".cc")),
                                ("tests", (".h", ".cc")),
                                ("bench", (".h", ".cc")),
                                ("tools", (".py",))):
        base = repo_root / directory
        if base.is_dir():
            targets += [p for p in sorted(base.rglob("*"))
                        if p.suffix in suffixes]
    count = 0
    for path in targets:
        for number, what in check_file(path):
            print(f"{path}:{number}: {what}")
            count += 1
    if count:
        print(f"check_format: {count} problem(s) in {len(targets)} files",
              file=sys.stderr)
        return 1
    print(f"check_format: {len(targets)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
