#!/usr/bin/env python3
"""seep_analyzer: semantic lint over a real token-level parse of src/.

The existing lints see include graphs (lint_layers) and member
declarations (lint_concurrency); neither can see *calls*, *switches* or
*discarded values*. This analyzer builds a registry of function
declarations, enum definitions and call sites from a C++ tokenizer with
full comment/string/preprocessor handling, then enforces four semantic
rules the exactly-once protocol depends on:

  * unchecked-status: a discarded call to a function returning
    seep::Status / Result<T> (or a must-check transport enum such as
    net::SendStatus) is an error — a swallowed Status on a checkpoint
    append, a decode or a reconfiguration stage silently converts
    "recover and retry" into "lose the window". Three shapes are
    caught: bare expression statements `Append(...);`, explicit
    `(void)` casts, and `Status st = ...;` locals never read again in
    the enclosing function.
  * nodiscard-coverage: every function declared to return Status or
    Result<T> must carry [[nodiscard]], so the *compiler* enforces the
    same discipline in every TU (including tests and benches this tool
    does not scan). Out-of-line definitions whose declaration is
    annotated are exempt. `--fix` inserts the missing attributes.
  * enum-switch-exhaustiveness: a switch over a wire/protocol enum
    (MessageType, StatusCode, SendStatus, SendPressure, StageKind,
    RecordType, FsyncPolicy) must name every enumerator, and any
    `default:` must be loud (SEEP_CHECK / SEEP_LOG / abort / an error
    Status return) — a silently-swallowing default turns a new wire
    message kind into dropped data.
  * choke-point: protocol-map mutations happen only through their choke
    points. Replaces lint_layers' old regex approximation with
    call-site detection that is blind to comments and strings and can
    check the receiver: DeployInstance / InstallRoutes only from the
    reconfiguration plane and initial deployment, backup-map deletion
    only through Cluster::DeleteBackup.

Waivers: a line (or the line below a comment-only line) is waived with
`// seep-ok: <rule> -- <non-empty reason>`. A waiver without a reason
or naming an unknown rule is itself a violation (waiver-needs-reason),
the same policy as SEEP_UNGUARDED.

Per-TU cache: analysis verdicts are cached under --cache-dir keyed by
the file's content hash plus an environment hash covering the merged
declaration registry, the rule configuration and the analyzer source.
Editing any header changes the registry fingerprint, so every dependent
TU is re-analyzed; editing one .cc re-analyzes only that file.

Frontends: the built-in tokenizer frontend above is self-contained and
authoritative (it runs on any toolchain, including the gcc-only CI
image). When a clang toolchain and an exported compile_commands.json
are present, `--clang-verify` additionally replays every src/ TU
through `clang++ -fsyntax-only -Wunused-result`, cross-checking the
unchecked-status rule against clang's own AST/sema (the [[nodiscard]]
sweep makes every discard a clang diagnostic). Without clang the
cross-check degrades to a notice, never a failure.

Exit status: 0 when clean, 1 on any violation (CI fails), 2 on usage
errors. `--self-test` runs every rule against
tests/lint_fixtures/analyzer/ (positive fixtures must fire, the
negative tree must stay clean) and exercises cache invalidation.
"""

import argparse
import hashlib
import json
import re
import shlex
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import lint_common

ANALYZER_VERSION = "1"

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

# Return types whose values must always be inspected. "Result" means the
# class template Result<...>; the enums are the transport's must-act
# signals (dropping a SendStatus loses a frame silently).
WATCHED_CLASS_RETURNS = {"Status", "Result"}
WATCHED_ENUM_RETURNS = {"SendStatus", "SendPressure"}

# Wire/protocol enums whose switches must be exhaustive. A new
# enumerator added to one of these is a protocol change; every consumer
# must be forced to decide what it does with it.
PROTOCOL_ENUMS = {
    "MessageType", "StatusCode", "SendStatus", "SendPressure",
    "StageKind", "RecordType", "FsyncPolicy",
}

# A default: branch is "loud" when its statements contain one of these
# (an abort, a log line, or an error return) — it may guard corrupt
# wire values, but it may not swallow a known enumerator silently.
LOUD_DEFAULT_TOKENS = (
    "SEEP_CHECK", "SEEP_CHECK_EQ", "SEEP_CHECK_NE", "SEEP_CHECK_LT",
    "SEEP_CHECK_LE", "SEEP_CHECK_GT", "SEEP_CHECK_GE", "SEEP_LOG",
    "abort", "Unreachable", "throw",
)
LOUD_STATUS_FACTORIES = (
    "InvalidArgument", "NotFound", "AlreadyExists", "FailedPrecondition",
    "ResourceExhausted", "Unavailable", "Corruption", "Internal", "Aborted",
)

# Cluster-mutating methods reserved for their choke points. `allowed`
# lists the files (relative to the scan root) that may *call* the
# method — the declaring/defining files plus the sanctioned callers.
# `receivers` (optional) restricts matches to calls whose receiver
# identifier is listed, so a generic name like Delete only matches the
# backup map.
CHOKE_POINTS = (
    {
        "method": "DeployInstance",
        "allowed": {
            "runtime/membership.h", "runtime/membership.cc",
            "control/deployment_manager.cc", "control/reconfig_plan.cc",
        },
        "why": "instances are deployed only by ReconfigPlan stages (or "
               "the initial deployment); a direct deploy dodges the "
               "plan's compensations and the no-leaked-vm invariant",
    },
    {
        "method": "InstallRoutes",
        "allowed": {
            "runtime/cluster.h", "runtime/cluster.cc",
            "control/deployment_manager.cc", "control/reconfig_plan.cc",
        },
        "why": "routes are installed only by ReconfigPlan stages (or the "
               "initial deployment); a direct reroute dodges the "
               "routes-restored-on-abort invariant and the route-tiling "
               "audit hook",
    },
    {
        "method": "DeleteBackup",
        "allowed": {
            "runtime/cluster.h", "runtime/cluster.cc",
            "runtime/membership.cc",
        },
        "why": "backup-map deletion goes through the Cluster::DeleteBackup "
               "choke point (pending chunk streams + memory entry + "
               "durable tombstone move together)",
    },
    {
        "method": "Delete",
        "receivers": {"backups", "backups_"},
        "allowed": {"runtime/cluster.cc"},
        "why": "BackupStore::Delete outside Cluster::DeleteBackup leaves "
               "pending chunk streams and the durable tombstone behind",
    },
)

RULE_NAMES = (
    "unchecked-status", "nodiscard-coverage",
    "enum-switch-exhaustiveness", "choke-point", "waiver-needs-reason",
)

# Keywords that can never head a declaration's type or appear inside a
# discarded-call receiver chain.
CPP_KEYWORDS = {
    "alignas", "alignof", "auto", "break", "case", "catch", "class",
    "co_await", "co_return", "co_yield", "const_cast", "continue",
    "decltype", "default", "delete", "do", "dynamic_cast", "else",
    "enum", "explicit", "export", "extern", "for", "friend", "goto",
    "if", "namespace", "new", "noexcept", "operator", "private",
    "protected", "public", "register", "reinterpret_cast", "return",
    "sizeof", "static_assert", "static_cast", "struct", "switch",
    "template", "this", "throw", "try", "typedef", "typeid",
    "typename", "union", "using", "while",
}

DECL_SPECIFIERS = {"static", "virtual", "inline", "constexpr", "explicit",
                   "friend", "extern"}

WAIVER_RE = re.compile(
    r"//\s*seep-ok:\s*([A-Za-z-]*)\s*(?:--\s*(.*))?$")


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind  # "id", "num", "str", "chr", "punct"
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")


def tokenize(text):
    """Lexes C++ into tokens with line/column info.

    Comments and preprocessor directives are skipped (waivers are
    extracted from raw text separately); strings and char literals
    become single tokens so their contents can never match a rule.
    """
    toks = []
    i, n = 0, len(text)
    line, col = 1, 1

    def advance(j):
        nonlocal line, col, i
        seg = text[i:j]
        nl = seg.count("\n")
        if nl:
            line += nl
            col = j - seg.rfind("\n") - i
        else:
            col += j - i
        i = j

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(i + 1)
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            advance(n if j < 0 else j)
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            advance(n if j < 0 else j + 2)
            continue
        if ch == "#" and (not toks or toks[-1].line != line):
            # Preprocessor directive: skip to end of line, honouring
            # backslash continuations.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\" or (text[k - 1] == "\r" and
                                           text[k - 2] == "\\"):
                    j = k + 1
                    continue
                j = k
                break
            advance(j)
            continue
        if ch == "R" and text.startswith('R"', i):
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j < 0 else j + len(close)
                toks.append(Token("str", text[i:j], line, col))
                advance(j)
                continue
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Token("str", text[i:j], line, col))
            advance(j)
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Token("chr", text[i:j], line, col))
            advance(j)
            continue
        if ch in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Token("id", text[i:j], line, col))
            advance(j)
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"):
                j += 1
            toks.append(Token("num", text[i:j], line, col))
            advance(j)
            continue
        if text.startswith("::", i) or text.startswith("->", i):
            toks.append(Token("punct", text[i:i + 2], line, col))
            advance(i + 2)
            continue
        toks.append(Token("punct", ch, line, col))
        advance(i + 1)
    return toks


def match_forward(toks, i, open_ch, close_ch):
    """Index just past the bracket pair opening at toks[i], or None."""
    assert toks[i].text == open_ch
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == open_ch:
            depth += 1
        elif t == close_ch:
            depth -= 1
            if depth == 0:
                return j + 1
    return None


# ---------------------------------------------------------------------------
# Declaration extraction (the registry)
# ---------------------------------------------------------------------------

class Decl:
    """A function or watched-variable declaration found in a file."""

    __slots__ = ("kind", "name", "qualified", "ret", "nodiscard", "file",
                 "line", "insert_at", "is_definition", "decl_end")

    def __init__(self, **kw):
        for k in self.__slots__:
            setattr(self, k, kw.get(k))


def parse_qualified_id(toks, i):
    """Parses `id (:: id)*`; returns (next_index, [components]) or None."""
    if i >= len(toks) or toks[i].kind != "id" or \
            toks[i].text in CPP_KEYWORDS:
        return None
    parts = [toks[i].text]
    i += 1
    while i + 1 < len(toks) and toks[i].text == "::" and \
            toks[i + 1].kind == "id" and \
            toks[i + 1].text not in CPP_KEYWORDS:
        parts.append(toks[i + 1].text)
        i += 2
    return i, parts


def parse_type(toks, i):
    """Parses a type: qualified-id, template args, cv, ptr/ref.

    Returns (next_index, last_component, has_template, by_value) or
    None. `by_value` is false for pointer/reference returns.
    """
    while i < len(toks) and toks[i].text in ("const", "volatile",
                                             "unsigned", "signed"):
        i += 1
    got = parse_qualified_id(toks, i)
    if got is None:
        return None
    i, parts = got
    has_template = False
    if i < len(toks) and toks[i].text == "<":
        depth = 0
        j = i
        while j < len(toks):
            t = toks[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    break
            elif t in (";", "{", "}"):
                return None  # stray comparison, not a template
            j += 1
        else:
            return None
        i = j + 1
        has_template = True
    by_value = True
    while i < len(toks) and toks[i].text in ("const", "*", "&", "&&"):
        if toks[i].text in ("*", "&", "&&"):
            by_value = False
        i += 1
    return i, parts[-1], has_template, by_value


def classify_return(last, has_template, by_value):
    if not by_value:
        return "other"
    if last == "Status" and not has_template:
        return "Status"
    if last == "Result" and has_template:
        return "Result"
    if last in WATCHED_ENUM_RETURNS and not has_template:
        return last
    return "other"


def extract_decls(toks):
    """Scans a token stream for declarations; returns (decls, fn_spans).

    `fn_spans` are (start_index, end_index) token ranges of function
    *bodies*, used to scope the assigned-never-read check to locals.
    """
    decls = []
    fn_spans = []
    n = len(toks)
    i = 0
    while i < n:
        prev = toks[i - 1].text if i > 0 else None
        # ">" admits `template <...> Status Foo(...)` declarations.
        if prev not in (None, ";", "{", "}", ":", ">"):
            i += 1
            continue
        start = i
        j = i
        nodiscard = False
        # Leading attributes: [[...]]
        while j + 1 < n and toks[j].text == "[" and \
                toks[j + 1].text == "[":
            end = match_forward(toks, j, "[", "]")
            if end is None:
                break
            if any(t.text == "nodiscard" for t in toks[j:end]):
                nodiscard = True
            j = end
        while j < n and toks[j].text in DECL_SPECIFIERS:
            j += 1
        got = parse_type(toks, j)
        if got is None:
            i += 1
            continue
        j, last, has_template, by_value = got
        ret = classify_return(last, has_template, by_value)
        name = parse_qualified_id(toks, j)
        if name is None:
            i += 1
            continue
        j, parts = name
        if j >= n:
            break
        nxt = toks[j].text
        if nxt == "(":
            close = match_forward(toks, j, "(", ")")
            if close is None:
                i += 1
                continue
            # Suffix: const/override/noexcept/macros, up to ; { or =.
            k = close
            while k < n and toks[k].text not in (";", "{", "=", ":"):
                if toks[k].text == "(":
                    k = match_forward(toks, k, "(", ")") or n
                else:
                    k += 1
            if k >= n or toks[k].text == ":":
                i = j + 1
                continue
            is_definition = toks[k].text == "{"
            decls.append(Decl(
                kind="fn", name=parts[-1], qualified=len(parts) > 1,
                ret=ret, nodiscard=nodiscard, line=toks[start].line,
                insert_at=(toks[start].line, toks[start].col),
                is_definition=is_definition, decl_end=k))
            if is_definition:
                body_end = match_forward(toks, k, "{", "}")
                if body_end is not None:
                    fn_spans.append((k, body_end))
                    i = k + 1
                    continue
            i = k + 1
            continue
        if nxt in ("=", ";", "{") and ret in ("Status", "Result") and \
                len(parts) == 1:
            decls.append(Decl(
                kind="var", name=parts[-1], qualified=False, ret=ret,
                nodiscard=nodiscard, line=toks[j - 1].line,
                insert_at=None, is_definition=False, decl_end=j))
        i = j + 1
    return decls, fn_spans


def extract_enums(toks):
    """Returns {enum_name: [enumerators]} for every enum definition."""
    enums = {}
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].text != "enum":
            i += 1
            continue
        j = i + 1
        if j < n and toks[j].text in ("class", "struct"):
            j += 1
        if j >= n or toks[j].kind != "id":
            i += 1
            continue
        name = toks[j].text
        j += 1
        if j < n and toks[j].text == ":":  # underlying type
            j += 1
            got = parse_qualified_id(toks, j)
            if got is None:
                i += 1
                continue
            j, _ = got
        if j >= n or toks[j].text != "{":
            i = j
            continue
        end = match_forward(toks, j, "{", "}")
        if end is None:
            break
        enumerators = []
        depth = 0
        expect_name = True
        for t in toks[j:end]:
            if t.text in ("{", "(", "["):
                depth += 1
            elif t.text in ("}", ")", "]"):
                depth -= 1
            elif depth == 1 and t.text == ",":
                expect_name = True
            elif depth == 1 and expect_name and t.kind == "id":
                enumerators.append(t.text)
                expect_name = False
        enums[name] = enumerators
        i = end
    return enums


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------

def extract_waivers(text, rel, violations):
    """Returns {line_number: rule} for well-formed waivers.

    Comment-only waiver lines also waive the following line. Malformed
    waivers (no reason, unknown rule) are reported as
    waiver-needs-reason violations.
    """
    waived = {}
    for number, line in enumerate(text.splitlines(), start=1):
        m = WAIVER_RE.search(line)
        if m is None:
            continue
        rule, reason = m.group(1), (m.group(2) or "").strip()
        if rule not in RULE_NAMES:
            violations.append((
                "waiver-needs-reason", f"{rel}:{number}",
                f"waiver names unknown rule '{rule}' (known: "
                f"{', '.join(RULE_NAMES[:-1])})"))
            continue
        if not reason:
            violations.append((
                "waiver-needs-reason", f"{rel}:{number}",
                "seep-ok without a written reason is a suppression, not "
                "a decision; say why this discard/shape is safe"))
            continue
        waived[number] = rule
        if line.lstrip().startswith("//"):
            waived[number + 1] = rule
    return waived


def is_waived(waived, rule, line):
    return waived.get(line) == rule


# ---------------------------------------------------------------------------
# Rule: unchecked-status
# ---------------------------------------------------------------------------

def receiver_chain_ok(toks, start, call_idx):
    """True when toks[start:call_idx] is a pure receiver chain.

    A discarded statement call looks like `a->b().c(...)` — only
    identifiers, ::, ., ->, and balanced parens may precede the call
    for the statement to be a plain discard.
    """
    depth = 0
    for t in toks[start:call_idx]:
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
            if depth < 0:
                return False
        elif t.kind == "id":
            if t.text in CPP_KEYWORDS:
                return False
        elif t.text in ("::", ".", "->", "*"):
            continue
        else:
            return False
    return depth == 0


def check_unchecked_calls(toks, rel, must_check, waived, violations):
    """Bare-statement and (void)-cast discards of must-check calls."""
    stmt_start = 0
    n = len(toks)
    for i in range(n):
        t = toks[i]
        if t.text in (";", "{", "}"):
            stmt_start = i + 1
            continue
        if t.kind != "id" or t.text not in must_check:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = match_forward(toks, i + 1, "(", ")")
        if close is None or close >= n or toks[close].text != ";":
            continue
        start = stmt_start
        void_cast = (start + 2 < n and toks[start].text == "(" and
                     toks[start + 1].text == "void" and
                     toks[start + 2].text == ")")
        if void_cast:
            start += 3
        # The callee must open the statement or follow a member/scope
        # access — anything else (e.g. a type name) is a declaration or
        # an expression whose value is not discarded.
        if i != start and toks[i - 1].text not in (".", "->", "::"):
            continue
        if not receiver_chain_ok(toks, start, i):
            continue
        if is_waived(waived, "unchecked-status", t.line):
            continue
        how = "explicitly void-casts away" if void_cast else "discards"
        violations.append((
            "unchecked-status", f"{rel}:{t.line}",
            f"{how} the result of '{t.text}(...)', which returns "
            f"{must_check[t.text]}; inspect it, propagate it with "
            "SEEP_RETURN_IF_ERROR, or waive the line with "
            "`// seep-ok: unchecked-status -- <reason>`"))


def check_unread_status_locals(toks, rel, decls, fn_spans, waived,
                               violations):
    """`Status st = ...;` locals never mentioned again in the function."""
    # Token index per declaration line for scope lookup.
    for d in decls:
        if d.kind != "var" or d.ret not in ("Status", "Result"):
            continue
        span = None
        for s, e in fn_spans:
            if toks[s].line <= d.line and (span is None or s > span[0]):
                if toks[e - 1].line >= d.line:
                    span = (s, e)
        if span is None:
            continue  # a member or global, not a local
        # Find the token of the declared name inside the span.
        idx = None
        for j in range(span[0], span[1]):
            if toks[j].line == d.line and toks[j].kind == "id" and \
                    toks[j].text == d.name:
                idx = j
                break
        if idx is None:
            continue
        used = any(toks[j].kind == "id" and toks[j].text == d.name
                   for j in range(idx + 1, span[1]))
        if used:
            continue
        if is_waived(waived, "unchecked-status", d.line):
            continue
        violations.append((
            "unchecked-status", f"{rel}:{d.line}",
            f"local '{d.name}' holds a {d.ret} that is never inspected "
            "afterwards; a swallowed error here silently degrades "
            "recovery semantics"))


# ---------------------------------------------------------------------------
# Rule: nodiscard-coverage
# ---------------------------------------------------------------------------

def check_nodiscard(rel, decls, marked_names, waived, violations,
                    fixes=None):
    for d in decls:
        if d.kind != "fn" or d.ret not in ("Status", "Result"):
            continue
        if d.nodiscard:
            continue
        if d.qualified and d.name in marked_names:
            continue  # out-of-line definition; declaration is annotated
        if is_waived(waived, "nodiscard-coverage", d.line):
            continue
        violations.append((
            "nodiscard-coverage", f"{rel}:{d.line}",
            f"'{d.name}' returns {d.ret} but is not [[nodiscard]]; the "
            "compiler cannot flag swallowed errors at its call sites "
            "(run with --fix to insert the attribute)"))
        if fixes is not None and d.insert_at is not None:
            fixes.setdefault(rel, []).append(d.insert_at)


def apply_nodiscard_fixes(root, fixes):
    """Inserts `[[nodiscard]] ` at each recorded (line, col) position."""
    edited = 0
    for rel, positions in fixes.items():
        path = root / rel
        lines = path.read_text().splitlines(keepends=True)
        for line, col in sorted(positions, reverse=True):
            s = lines[line - 1]
            lines[line - 1] = s[:col - 1] + "[[nodiscard]] " + s[col - 1:]
            edited += 1
        path.write_text("".join(lines))
    return edited


# ---------------------------------------------------------------------------
# Rule: enum-switch-exhaustiveness
# ---------------------------------------------------------------------------

def check_enum_switches(toks, rel, enums, waived, violations):
    n = len(toks)
    i = 0
    while i < n:
        if toks[i].text != "switch" or toks[i].kind != "id":
            i += 1
            continue
        line = toks[i].line
        j = i + 1
        if j >= n or toks[j].text != "(":
            i += 1
            continue
        cond_end = match_forward(toks, j, "(", ")")
        if cond_end is None or cond_end >= n or \
                toks[cond_end].text != "{":
            i += 1
            continue
        body_end = match_forward(toks, cond_end, "{", "}")
        if body_end is None:
            break
        covered = {}  # enum name -> set of enumerators
        label_spans = []  # (start_of_statements, is_default)
        depth = 0
        k = cond_end
        while k < body_end:
            t = toks[k].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
            elif depth == 1 and t == "case":
                # Parse `case Qual::Name:` — qualified enum labels only.
                got = parse_qualified_id(toks, k + 1)
                if got is not None:
                    end, parts = got
                    if len(parts) >= 2 and end < n and \
                            toks[end].text == ":":
                        covered.setdefault(parts[-2],
                                           set()).add(parts[-1])
                        label_spans.append((end + 1, False))
            elif depth == 1 and t == "default" and k + 1 < n and \
                    toks[k + 1].text == ":":
                label_spans.append((k + 2, True))
            k += 1
        target = None
        for enum_name in covered:
            if enum_name in PROTOCOL_ENUMS and enum_name in enums:
                target = enum_name
                break
        if target is None:
            i = body_end
            continue
        missing = sorted(set(enums[target]) - covered[target])
        waived_here = is_waived(waived, "enum-switch-exhaustiveness",
                                line)
        if missing and not waived_here:
            violations.append((
                "enum-switch-exhaustiveness", f"{rel}:{line}",
                f"switch over protocol enum '{target}' does not handle "
                f"{', '.join(missing)}; every enumerator must be named "
                "so a protocol change forces a decision here"))
        for span_start, is_default in label_spans:
            if not is_default:
                continue
            # The default's statements run to the next label at depth 1
            # or the end of the switch body.
            stmts = []
            depth = 1
            k = span_start
            while k < body_end:
                t = toks[k].text
                if t == "{":
                    depth += 1
                elif t == "}":
                    depth -= 1
                    if depth == 0:
                        break
                elif depth == 1 and t in ("case", "default"):
                    break
                stmts.append(toks[k])
                k += 1
            loud = any(
                t.kind == "id" and (t.text in LOUD_DEFAULT_TOKENS or
                                    t.text in LOUD_STATUS_FACTORIES)
                for t in stmts)
            if not loud and not waived_here:
                violations.append((
                    "enum-switch-exhaustiveness", f"{rel}:{line}",
                    f"switch over protocol enum '{target}' has a "
                    "silently-swallowing default:; make it loud "
                    "(SEEP_CHECK / SEEP_LOG / abort / error Status) or "
                    "handle every enumerator explicitly"))
        i = body_end
    return


# ---------------------------------------------------------------------------
# Rule: choke-point
# ---------------------------------------------------------------------------

def call_receiver(toks, i):
    """Identifier of the receiver for the call at toks[i], if any.

    `x->M(`, `x.M(` and `x()->M(` resolve to "x"; a plain `M(` has no
    receiver and returns None.
    """
    j = i - 1
    if j < 0 or toks[j].text not in (".", "->"):
        return None
    j -= 1
    if j >= 1 and toks[j].text == ")" :
        # Skip a call's parens: `x()->M(` — receiver is the callee.
        depth = 0
        while j >= 0:
            if toks[j].text == ")":
                depth += 1
            elif toks[j].text == "(":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
    if j >= 0 and toks[j].kind == "id":
        return toks[j].text
    return None


def check_choke_points(toks, rel, waived, violations):
    n = len(toks)
    for entry in CHOKE_POINTS:
        if rel in entry["allowed"]:
            continue
        method = entry["method"]
        for i in range(n):
            t = toks[i]
            if t.kind != "id" or t.text != method:
                continue
            if i + 1 >= n or toks[i + 1].text != "(":
                continue
            receivers = entry.get("receivers")
            if receivers is not None and \
                    call_receiver(toks, i) not in receivers:
                continue
            if is_waived(waived, "choke-point", t.line):
                continue
            violations.append((
                "choke-point", f"{rel}:{t.line}",
                f"call to '{method}' outside its choke point "
                f"({', '.join(sorted(entry['allowed']))}): "
                f"{entry['why']}"))


# ---------------------------------------------------------------------------
# Analysis driver + cache
# ---------------------------------------------------------------------------

def scan_files(scan_root):
    return [p for p in sorted(scan_root.rglob("*"))
            if p.suffix in (".h", ".cc")]


def sha(data):
    return hashlib.sha256(data).hexdigest()


def build_registry(files, scan_root, cache):
    """Extraction pass over every file; returns the merged registry.

    Per-file extractions are context-free, so they are cached on the
    file's content hash alone.
    """
    registry = {
        "returns": {},       # fn name -> set of return classes
        "marked": set(),     # fn names with at least one nodiscard decl
        "enums": {},         # enum name -> [enumerators]
    }
    per_file = {}
    for path in files:
        rel = str(path.relative_to(scan_root))
        content = path.read_bytes()
        digest = sha(content)
        entry = cache["files"].get(rel)
        if entry is not None and entry.get("hash") == digest and \
                "extract" in entry:
            ext = entry["extract"]
            decls = [Decl(**d) for d in ext["decls"]]
            enums = ext["enums"]
            per_file[rel] = (digest, decls, ext["spans"], enums, None)
        else:
            toks = tokenize(content.decode(errors="replace"))
            decls, spans = extract_decls(toks)
            enums = extract_enums(toks)
            span_lines = [(toks[s].line, toks[e - 1].line)
                          for s, e in spans]
            per_file[rel] = (digest, decls, span_lines, enums, toks)
            cache["files"].setdefault(rel, {})
            cache["files"][rel]["hash"] = digest
            cache["files"][rel]["extract"] = {
                "decls": [{k: getattr(d, k) for k in Decl.__slots__}
                          for d in decls],
                "spans": span_lines,
                "enums": enums,
            }
    for rel, (_, decls, _, enums, _) in per_file.items():
        for d in decls:
            if d.kind != "fn":
                continue
            registry["returns"].setdefault(d.name, set()).add(d.ret)
            if d.nodiscard and d.ret in ("Status", "Result"):
                registry["marked"].add(d.name)
        for name, values in enums.items():
            registry["enums"].setdefault(name, values)
    return registry, per_file


def must_check_names(registry):
    """Unambiguous must-check call names: every known overload of the
    name returns a watched type. A name that also has (say) a void
    overload is skipped by the builtin frontend — the clang cross-check
    and the [[nodiscard]] attributes cover those precisely."""
    out = {}
    for name, rets in registry["returns"].items():
        watched = rets & (WATCHED_CLASS_RETURNS | WATCHED_ENUM_RETURNS)
        if watched and rets == watched:
            out[name] = "/".join(sorted(watched))
    return out


def environment_hash(registry, analyzer_source_hash):
    blob = json.dumps({
        "version": ANALYZER_VERSION,
        "source": analyzer_source_hash,
        "returns": {k: sorted(v) for k, v in
                    sorted(registry["returns"].items())},
        "marked": sorted(registry["marked"]),
        "enums": {k: v for k, v in sorted(registry["enums"].items())},
        "choke": [e["method"] for e in CHOKE_POINTS],
        "protocol_enums": sorted(PROTOCOL_ENUMS),
    }, sort_keys=True).encode()
    return sha(blob)


def analyze_tree(scan_root, cache, fixes=None):
    """Runs every rule over scan_root; returns (violations, stats)."""
    files = scan_files(scan_root)
    registry, per_file = build_registry(files, scan_root, cache)
    must_check = must_check_names(registry)
    source_hash = sha(Path(__file__).read_bytes())
    env = environment_hash(registry, source_hash)

    violations = []
    stats = {"files": len(files), "analyzed": 0, "cached": 0}
    for path in files:
        rel = str(path.relative_to(scan_root))
        digest, decls, span_lines, enums, toks = per_file[rel]
        entry = cache["files"][rel]
        if fixes is None and entry.get("env") == env and \
                entry.get("hash") == digest and "verdict" in entry:
            violations.extend(tuple(v) for v in entry["verdict"])
            stats["cached"] += 1
            continue
        text = path.read_text(errors="replace")
        if toks is None:
            toks = tokenize(text)
        file_violations = []
        waived = extract_waivers(text, rel, file_violations)
        check_unchecked_calls(toks, rel, must_check, waived,
                              file_violations)
        # Recompute spans as token indices for the local-variable scan.
        _, tok_spans = extract_decls(toks)
        check_unread_status_locals(toks, rel, decls, tok_spans, waived,
                                   file_violations)
        check_nodiscard(rel, decls, registry["marked"], waived,
                        file_violations, fixes)
        check_enum_switches(toks, rel, registry["enums"], waived,
                            file_violations)
        check_choke_points(toks, rel, waived, file_violations)
        entry["env"] = env
        entry["verdict"] = [list(v) for v in file_violations]
        violations.extend(file_violations)
        stats["analyzed"] += 1
    return violations, stats


def load_cache(cache_path):
    if cache_path is None:
        return {"files": {}}
    try:
        data = json.loads(cache_path.read_text())
        if data.get("version") == ANALYZER_VERSION and \
                isinstance(data.get("files"), dict):
            return data
    except (OSError, json.JSONDecodeError, ValueError):
        pass
    return {"files": {}}


def save_cache(cache_path, cache):
    if cache_path is None:
        return
    cache["version"] = ANALYZER_VERSION
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(json.dumps(cache))
    except OSError as err:
        print(f"seep_analyzer: cache not written: {err}",
              file=sys.stderr)


# ---------------------------------------------------------------------------
# clang cross-check (gated: degrades to a notice without a toolchain)
# ---------------------------------------------------------------------------

def clang_verify(repo_root, db_path, violations):
    clang = shutil.which("clang++")
    if clang is None:
        print("seep_analyzer: clang++ not found; --clang-verify skipped "
              "(the builtin frontend remains authoritative)")
        return
    if not db_path.is_file():
        print(f"seep_analyzer: no compile database at {db_path}; "
              "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON first",
              file=sys.stderr)
        return
    entries = json.loads(db_path.read_text())
    diag_re = re.compile(
        r"^(?P<file>[^:]+):(?P<line>\d+):\d+: warning: ignoring return "
        r"value")
    checked = 0
    for entry in entries:
        src = Path(entry["file"])
        try:
            rel = src.resolve().relative_to(repo_root / "src")
        except ValueError:
            continue
        if src.suffix != ".cc":
            continue
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = shlex.split(entry["command"])
        # Reuse the TU's real flags but only ask for the one warning.
        out = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            out.append(a)
        cmd = [clang, "-fsyntax-only", "-w", "-Wunused-result",
               "-Wno-unknown-warning-option"] + out
        proc = subprocess.run(cmd, cwd=entry.get("directory", "."),
                              capture_output=True, text=True)
        checked += 1
        for line in proc.stderr.splitlines():
            m = diag_re.match(line)
            if m:
                violations.append((
                    "unchecked-status",
                    f"src/{rel}:{m.group('line')}",
                    "clang -Wunused-result: discarded [[nodiscard]] "
                    "value (cross-check of the builtin frontend)"))
    print(f"seep_analyzer: clang cross-check over {checked} TU(s)")


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def expected_fixture_rules():
    return {
        "unchecked-status", "nodiscard-coverage",
        "enum-switch-exhaustiveness", "choke-point",
        "waiver-needs-reason",
    }


def self_test(repo_root):
    fixtures = repo_root / "tests" / "lint_fixtures" / "analyzer"
    bad, good = fixtures / "bad", fixtures / "good"
    failures = []
    if not bad.is_dir() or not good.is_dir():
        print(f"seep_analyzer: fixture tree missing under {fixtures}",
              file=sys.stderr)
        return lint_common.EXIT_VIOLATIONS

    bad_violations, _ = analyze_tree(bad, {"files": {}})
    good_violations, _ = analyze_tree(good, {"files": {}})
    if good_violations:
        failures.append(
            "negative fixture tree is expected to be clean but got: " +
            "; ".join(f"{w} [{r}]" for r, w, _ in good_violations))

    # Cache invalidation: analyzing a copy of the clean tree twice hits
    # the verdict cache; editing a *header* (a new Status-returning
    # declaration) changes the registry fingerprint, so the dependent TU
    # must be re-analyzed — and must now flag its formerly-clean call.
    with tempfile.TemporaryDirectory() as tmp:
        tree = Path(tmp) / "tree"
        shutil.copytree(good, tree)
        cache = {"files": {}}
        _, cold = analyze_tree(tree, cache)
        _, warm = analyze_tree(tree, cache)
        if warm["cached"] != warm["files"] or warm["analyzed"] != 0:
            failures.append(
                f"verdict cache did not hold on an unchanged tree "
                f"(cached {warm['cached']}/{warm['files']})")
        header = tree / "helper.h"
        header.write_text(header.read_text().replace(
            "void Ping();", "[[nodiscard]] Status Ping();"))
        after_violations, hot = analyze_tree(tree, cache)
        if hot["analyzed"] == 0:
            failures.append("editing a header re-analyzed no TU "
                            "(cache failed to invalidate)")
        if not any(r == "unchecked-status" and "uses_header" in w
                   for r, w, _ in after_violations):
            failures.append(
                "dependent TU was not re-checked against the edited "
                "header (expected an unchecked-status hit in "
                "uses_header.cc)")
        if cold["analyzed"] != cold["files"]:
            failures.append("cold run unexpectedly hit the cache")

    return lint_common.self_test_verdict(
        "seep_analyzer", expected_fixture_rules(), bad_violations,
        failures)


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule on tests/lint_fixtures/"
                             "analyzer/ and exercise the cache")
    parser.add_argument("--fix", action="store_true",
                        help="insert missing [[nodiscard]] attributes")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the verdict cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: "
                             "<root>/build/.cache)")
    parser.add_argument("--clang-verify", action="store_true",
                        help="cross-check unchecked-status with clang "
                             "-Wunused-result over the compile database "
                             "(skipped with a notice when clang or the "
                             "database is missing)")
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json path (default: "
                             "<root>/build/compile_commands.json)")
    args = parser.parse_args()

    repo_root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(repo_root)

    scan_root = repo_root / "src"
    if not scan_root.is_dir():
        print(f"seep_analyzer: no src/ under {repo_root}",
              file=sys.stderr)
        return lint_common.EXIT_USAGE

    cache_path = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir \
            else repo_root / "build" / ".cache"
        cache_path = cache_dir / "seep_analyzer_cache.json"
    cache = load_cache(cache_path)

    fixes = {} if args.fix else None
    violations, stats = analyze_tree(scan_root, cache, fixes)
    save_cache(cache_path, cache)

    if args.fix and fixes:
        edited = apply_nodiscard_fixes(scan_root, fixes)
        print(f"seep_analyzer: inserted {edited} [[nodiscard]] "
              f"attribute(s) across {len(fixes)} file(s); re-run to "
              "verify")

    if args.clang_verify:
        db = Path(args.compile_db) if args.compile_db \
            else repo_root / "build" / "compile_commands.json"
        clang_verify(repo_root, db, violations)

    code = lint_common.report(
        "seep_analyzer", violations,
        f"semantic rules clean ({stats['files']} files, "
        f"{stats['analyzed']} analyzed, {stats['cached']} verdicts "
        "cached)")
    return code


if __name__ == "__main__":
    sys.exit(main())
