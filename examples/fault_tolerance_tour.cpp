// A guided tour of the three fault-tolerance mechanisms the paper compares
// (§6.2): recovery using state management (R+SM), upstream backup (UB), and
// source replay (SR), all on the same windowed word count query and the
// same injected failure.
//
//   ./build/examples/fault_tolerance_tour

#include <cstdio>

#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace {

using namespace seep;

const char* ModeName(runtime::FaultToleranceMode mode) {
  switch (mode) {
    case runtime::FaultToleranceMode::kStateManagement:
      return "R+SM (checkpoint + replay)";
    case runtime::FaultToleranceMode::kUpstreamBackup:
      return "UB   (upstream buffers)";
    case runtime::FaultToleranceMode::kSourceReplay:
      return "SR   (replay from source)";
    default:
      return "none";
  }
}

void RunOne(runtime::FaultToleranceMode mode) {
  workloads::wordcount::WordCountConfig workload;
  workload.rate_tuples_per_sec = 500;
  workload.vocabulary = 2000;
  workload.seed = 4;
  auto query = workloads::wordcount::BuildWordCountQuery(workload);
  auto results = query.results;

  sps::SpsConfig config;
  config.cluster.ft_mode = mode;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.buffer_window = SecondsToSim(35);
  config.scaling.enabled = false;

  sps::Sps sps(std::move(query.graph), config);
  SEEP_CHECK(sps.Deploy().ok());
  sps.InjectFailure(query.counter, 64.8);  // mid-window, worst case for c=5
  sps.RunFor(150);

  double recovery = -1;
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) recovery = r.RecoverySeconds();
  }
  int64_t window1 = 0;
  for (const auto& [key, count] : results->counts) {
    if (key.first == 1) window1 += count;  // the window the failure hit
  }
  std::printf("%-28s recovery %6.2f s | replayed %8llu tuples | "
              "window-1 count %lld\n",
              ModeName(mode), recovery,
              static_cast<unsigned long long>(
                  sps.metrics().tuples_replayed),
              static_cast<long long>(window1));
}

}  // namespace

int main() {
  std::printf("failing the stateful word counter at t=64.8s "
              "(500 tuples/s, 30 s windows, c=5 s)...\n\n");
  RunOne(seep::runtime::FaultToleranceMode::kStateManagement);
  RunOne(seep::runtime::FaultToleranceMode::kUpstreamBackup);
  RunOne(seep::runtime::FaultToleranceMode::kSourceReplay);
  std::printf("\nAll three rebuild the damaged window; R+SM replays at most "
              "one checkpoint interval\nof tuples instead of the whole "
              "window, so it recovers fastest (paper Fig. 11).\n");
  return 0;
}
