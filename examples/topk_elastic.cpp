// Open-loop elasticity demo (paper §6.1, Fig. 8): a map/reduce-style top-k
// query starts under-provisioned and drops tuples; the SPS scales out until
// it sustains the offered rate, then we shrink the load and scale back *in*
// using the state-merge extension (paper §3.3 / §8 future work).
//
//   ./build/examples/topk_elastic

#include <cstdio>

#include "sps/sps.h"
#include "workloads/topk/topk.h"

int main() {
  using namespace seep;

  workloads::topk::TopKConfig workload;
  workload.total_rate_tuples_per_sec = 30000;
  workload.num_sources = 6;
  workload.map_cost_us = 30;     // one VM sustains ~33k t/s
  workload.reduce_cost_us = 40;  // one VM sustains ~25k t/s: must scale
  workload.num_languages = 200;
  workload.k = 10;
  workload.seed = 3;

  auto query = workloads::topk::BuildTopKQuery(workload);
  auto results = query.results;

  sps::SpsConfig config;
  config.cluster.max_queue_tuples = 20000;  // open loop: drop when full
  config.scaling.threshold = 0.70;
  config.cluster.pool.target_size = 4;

  sps::Sps sps(std::move(query.graph), config);
  if (auto status = sps.Deploy(); !status.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("%8s %8s %8s %8s %14s\n", "t(s)", "map-pi", "red-pi", "VMs",
              "dropped(t/s)");
  for (double t = 30; t <= 300; t += 30) {
    sps.RunUntil(t);
    const auto drops = sps.metrics().dropped_tuples.RatesPerSecond();
    double recent = 0;
    for (double s = t - 30; s < t; ++s) {
      const auto idx = static_cast<size_t>(s);
      if (idx < drops.size()) recent += drops[idx].value;
    }
    std::printf("%8.0f %8u %8u %8zu %14.0f\n", t,
                sps.ParallelismOf(query.map),
                sps.ParallelismOf(query.reduce), sps.VmsInUse(),
                recent / 30);
  }

  // Top-10 language ranking of a closed window.
  std::printf("\ntop-10 most visited language editions (window 8):\n");
  for (const auto& [lang, count] : results->TopK(/*window=*/8, workload.k)) {
    std::printf("  lang %3lld: %lld visits\n", static_cast<long long>(lang),
                static_cast<long long>(count));
  }

  // Scale back in: merge two reduce partitions under quiescence.
  if (sps.ParallelismOf(query.reduce) >= 2) {
    std::printf("\nscaling reduce back in...\n");
    sps.RequestScaleIn(query.reduce, sps.NowSeconds() + 1);
    sps.RunFor(30);
    std::printf("reduce parallelism now %u; VMs %zu\n",
                sps.ParallelismOf(query.reduce), sps.VmsInUse());
  }
  return 0;
}
