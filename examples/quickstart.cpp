// Quickstart: build a stateful streaming query, deploy it on the simulated
// cloud, scale it out, survive a failure, and read the results.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The query is the paper's running example (Fig. 2): sentences -> word
// splitter -> windowed word counter -> sink.

#include <cstdio>

#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

int main() {
  using namespace seep;

  // 1. Describe the workload: 500 sentences/s over a 1000-word vocabulary,
  //    counted in 30 s windows.
  workloads::wordcount::WordCountConfig workload;
  workload.rate_tuples_per_sec = 500;
  workload.vocabulary = 1000;
  workload.window = SecondsToSim(30);
  workload.seed = 7;

  // BuildWordCountQuery assembles the logical query graph; you can equally
  // build your own with QueryGraph::AddSource/AddOperator/AddSink and
  // custom Operator subclasses (see src/core/operator.h).
  auto query = workloads::wordcount::BuildWordCountQuery(workload);
  auto results = query.results;  // shared handle into the sink

  // 2. Configure the SPS: checkpoint every 5 s (the paper's c), keep a
  //    small VM pool, and let the bottleneck detector scale out at 70% CPU.
  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  // Pool sized for one scale-out (2 VMs) plus a failure before the ~90 s
  // asynchronous refill lands — too small a pool stalls recovery behind
  // VM provisioning, exactly the §5.2 trade-off.
  config.cluster.pool.target_size = 4;
  config.scaling.threshold = 0.70;

  sps::Sps sps(std::move(query.graph), config);
  if (auto status = sps.Deploy(); !status.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("deployed %zu VMs\n", sps.VmsInUse());

  // 3. Run for a minute, then scale the stateful counter out by hand (the
  //    detector would do this automatically under load).
  sps.RunFor(60);
  sps.RequestScaleOut(query.counter, sps.NowSeconds() + 1);
  sps.RunFor(30);
  std::printf("after scale out: counter parallelism = %u\n",
              sps.ParallelismOf(query.counter));

  // 4. Kill the VM hosting one counter partition; the failure detector
  //    notices within a second and recovery restores the checkpointed
  //    state and replays the unprocessed tuples.
  sps.InjectFailure(query.counter, sps.NowSeconds() + 5);
  sps.RunFor(60);
  for (const auto& r : sps.metrics().recoveries) {
    std::printf("recovered operator %u in %.2f s (detected in %.2f s)\n",
                r.op, r.RecoverySeconds(),
                SimToSeconds(r.detected_at - r.failed_at));
  }

  // 5. Results are exact despite the failure: word counts per window.
  int64_t window2_total = 0;
  for (const auto& [key, count] : results->counts) {
    if (key.first == 2) window2_total += count;
  }
  std::printf("window 2 counted %lld words across %zu (window, word) cells\n",
              static_cast<long long>(window2_total), results->counts.size());
  std::printf("median latency %.1f ms, p95 %.1f ms, duplicates dropped %llu\n",
              sps.metrics().latency_ms.Median(),
              sps.metrics().latency_ms.Percentile(95),
              static_cast<unsigned long long>(
                  sps.metrics().duplicates_dropped));
  return 0;
}
