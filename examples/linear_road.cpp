// Linear Road Benchmark end-to-end (paper §6.1): deploy the 7-operator LRB
// query on the simulated cloud and watch the SPS scale out automatically as
// the input ramps from ~12k to ~600k (paper-equivalent) tuples/s.
//
//   ./build/examples/linear_road [L] [duration_s]

#include <cstdio>
#include <cstdlib>

#include "sps/sps.h"
#include "workloads/lrb/lrb.h"

int main(int argc, char** argv) {
  using namespace seep;

  const uint32_t l = argc > 1 ? std::atoi(argv[1]) : 64;
  const double duration = argc > 2 ? std::atof(argv[2]) : 400;

  workloads::lrb::LrbConfig lrb;
  lrb.num_xways = l;
  lrb.duration_s = duration;
  // Thin the stream 64x while scaling per-tuple costs 64x: VM demand and
  // scale-out behaviour match the full-rate benchmark (DESIGN.md §2).
  lrb.load_scale = 64;
  lrb.seed = 1;

  auto query = workloads::lrb::BuildLrbQuery(lrb);
  auto results = query.results;

  sps::SpsConfig config;
  config.scaling.report_interval = SecondsToSim(5);   // r
  config.scaling.consecutive_reports = 2;             // k
  config.scaling.threshold = 0.70;                    // delta
  config.cluster.pool.target_size = 4;                // p

  sps::Sps sps(std::move(query.graph), config);
  if (auto status = sps.Deploy(); !status.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("LRB L=%u over %.0fs; initial VMs %zu\n", l, duration,
              sps.VmsInUse());
  std::printf("%8s %10s %6s %12s %12s %12s\n", "t(s)", "in(t/s)", "VMs",
              "fwd-pi", "tollcalc-pi", "assess-pi");
  for (double t = duration / 8; t <= duration; t += duration / 8) {
    sps.RunUntil(t);
    const auto rates = sps.metrics().source_tuples.RatesPerSecond();
    const double in_rate =
        rates.empty() ? 0 : rates[std::min(rates.size() - 1,
                                           static_cast<size_t>(t) - 1)]
                                .value;
    std::printf("%8.0f %10.0f %6zu %12u %12u %12u\n", t, in_rate,
                sps.VmsInUse(), sps.ParallelismOf(query.forwarder),
                sps.ParallelismOf(query.toll_calculator),
                sps.ParallelismOf(query.toll_assessment));
  }

  std::printf("\nresults: %llu toll notifications, %llu accident alerts, "
              "%llu balance answers, total tolls %lld\n",
              static_cast<unsigned long long>(results->toll_notifications),
              static_cast<unsigned long long>(results->accident_alerts),
              static_cast<unsigned long long>(results->balance_answers),
              static_cast<long long>(results->total_tolls_charged));
  std::printf("latency: median %.0f ms, p95 %.0f ms, p99 %.0f ms "
              "(LRB bound: 5000 ms)\n",
              sps.metrics().latency_ms.Median(),
              sps.metrics().latency_ms.Percentile(95),
              sps.metrics().latency_ms.Percentile(99));
  std::printf("%zu scale-out events; %.1f VM-hours billed\n",
              sps.metrics().scale_outs.size(),
              sps.cluster().provider()->BilledVmSeconds() / 3600.0);
  return 0;
}
