// Unit tests for the annotated synchronisation wrappers (common/sync.h):
// Mutex/MutexLock semantics and holder bookkeeping, CondVar hand-off around
// the internal unlock, ThreadRole adoption, and the always-on runtime
// checks behind SEEP_ASSERT_RUN_ON — the death tests pin the discipline the
// SEEP_TSA build proves statically (a wrapper that stopped aborting would
// leave gcc builds with no enforcement at all).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace seep::sync {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------------- Mutex

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.AssertHeld();
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool other_got_it = true;
  std::thread t([&] { other_got_it = mu.TryLock(); });
  t.join();
  EXPECT_FALSE(other_got_it);
  mu.Unlock();
}

TEST(MutexTest, MutexLockIsScoped) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    mu.AssertHeld();
  }
  ASSERT_TRUE(mu.TryLock());  // released at scope exit
  mu.Unlock();
}

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4, kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  // The runtime half of the TSA REQUIRES annotation: calling into
  // mutex-guarded code without the lock must die, not race.
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "SEEP_CHECK failed");
}

TEST(MutexDeathTest, AssertHeldAbortsWhenHeldByAnotherThread) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  mu.Lock();
  EXPECT_DEATH(
      {
        std::thread t([&] { mu.AssertHeld(); });
        t.join();
      },
      "SEEP_CHECK failed");
  mu.Unlock();
}

// ----------------------------------------------------------------- CondVar

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    cv.Wait(&mu, [&] {
      mu.AssertHeld();  // the predicate always runs with the mutex held
      return ready;
    });
    EXPECT_TRUE(ready);
    mu.AssertHeld();  // reacquired after the wait
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, 10ms, [&] {
    mu.AssertHeld();
    return false;
  }));
  mu.AssertHeld();  // reacquired even on timeout
}

TEST(CondVarTest, HolderMarkIsReleasedDuringWait) {
  // While a waiter sleeps inside Wait, it genuinely does not hold the
  // mutex: another thread can take it, see AssertHeld succeed, and wake
  // the waiter. This pins the Adopt/Restore holder hand-off.
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    cv.Wait(&mu, [&] {
      mu.AssertHeld();
      return ready;
    });
  });
  for (;;) {
    MutexLock lock(&mu);
    mu.AssertHeld();
    ready = true;
    cv.NotifyAll();
    break;
  }
  waiter.join();
}

// -------------------------------------------------------------- ThreadRole

TEST(ThreadRoleTest, AdoptDropAndQuery) {
  // Use the checkpoint-worker role: DriverThread may already be adopted by
  // the process-wide test harness (any test that builds a Simulation).
  EXPECT_FALSE(CkptWorkerThread.OnThread());
  CkptWorkerThread.Adopt();
  EXPECT_TRUE(CkptWorkerThread.OnThread());
  CkptWorkerThread.AssertOnThread();
  CkptWorkerThread.Adopt();  // idempotent
  EXPECT_TRUE(CkptWorkerThread.OnThread());
  CkptWorkerThread.Drop();
  EXPECT_FALSE(CkptWorkerThread.OnThread());
}

TEST(ThreadRoleTest, ScopedThreadRoleDropsAtScopeExit) {
  {
    ScopedThreadRole role(LoopThread);
    EXPECT_TRUE(LoopThread.OnThread());
  }
  EXPECT_FALSE(LoopThread.OnThread());
}

TEST(ThreadRoleTest, RolesAreThreadLocal) {
  ScopedThreadRole role(LoopThread);
  bool seen_on_other_thread = true;
  std::thread t([&] { seen_on_other_thread = LoopThread.OnThread(); });
  t.join();
  EXPECT_FALSE(seen_on_other_thread);  // adoption does not leak across
  EXPECT_TRUE(LoopThread.OnThread());
}

TEST(ThreadRoleTest, RolesAreIndependentBits) {
  ScopedThreadRole loop(LoopThread);
  {
    ScopedThreadRole worker(CkptWorkerThread);
    EXPECT_TRUE(LoopThread.OnThread());
    EXPECT_TRUE(CkptWorkerThread.OnThread());
  }
  EXPECT_TRUE(LoopThread.OnThread());  // dropping one bit keeps the other
  EXPECT_FALSE(CkptWorkerThread.OnThread());
}

TEST(ThreadRoleDeathTest, AssertOnThreadAbortsWithoutTheRole) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The runtime half of SEEP_RUN_ON / SEEP_ASSERT_RUN_ON: protocol
  // surfaces annotated with a role abort when entered from the wrong
  // thread, naming the missing role.
  EXPECT_DEATH(
      {
        std::thread t([] { LoopThread.AssertOnThread(); });
        t.join();
      },
      "thread-affinity violation.*LoopThread");
}

TEST(ThreadRoleDeathTest, DroppedRoleNoLongerSatisfiesAssert) {
  EXPECT_DEATH(
      {
        CkptWorkerThread.Adopt();
        CkptWorkerThread.Drop();
        CkptWorkerThread.AssertOnThread();
      },
      "thread-affinity violation.*CkptWorkerThread");
}

}  // namespace
}  // namespace seep::sync
