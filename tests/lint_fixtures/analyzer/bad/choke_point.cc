// Positive fixtures for the choke-point rule: protocol-map mutations
// from a file outside the sanctioned caller set must fire, including
// the receiver-matched backup-map Delete.
namespace seep {

class Cluster {
 public:
  void Helper();
};

class BackupStore {
 public:
  void Helper();
};

void Rogue(Cluster* cluster, BackupStore* backups) {
  cluster->InstallRoutes(1, 2);   // routes only via the reconfig plane
  cluster->DeployInstance(3);     // deploys only via plan stages
  cluster->DeleteBackup(4);       // deletion only via the choke point
  backups->Delete(5);             // receiver-matched: the backup map
}

}  // namespace seep
