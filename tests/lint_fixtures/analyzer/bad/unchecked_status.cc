// Positive fixtures for the unchecked-status rule: all three discard
// shapes (bare statement, (void) cast, assigned-never-read) must fire.
namespace seep {

class Status {};

Status DoAppend();
Status DoFsync();
Status MakeStatus();

void Caller() {
  DoAppend();                // bare-statement discard
  (void)DoFsync();           // explicit (void) cast discard
  Status st = MakeStatus();  // local assigned but never inspected
}

}  // namespace seep
