// Positive fixtures for waiver-needs-reason: a waiver without a reason
// and a waiver naming an unknown rule are both violations (and do not
// suppress the underlying unchecked-status hit).
namespace seep {

class Status {};

[[nodiscard]] Status Probe();

void Waived() {
  Probe();  // seep-ok: unchecked-status --
  Probe();  // seep-ok: bogus-rule -- reason for a rule that is not real
}

}  // namespace seep
