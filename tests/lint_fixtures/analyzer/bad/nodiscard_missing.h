// Positive fixtures for the nodiscard-coverage rule: Status- and
// Result-returning declarations without [[nodiscard]] must fire.
namespace seep {

class Status {};

template <typename T>
class Result {};

Status Open();
Result<int> DecodeHeader();

class Store {
 public:
  Status Append(int frame);
};

}  // namespace seep
