// Positive fixtures for enum-switch-exhaustiveness: a switch over a
// protocol enum that omits an enumerator, and one whose default:
// silently swallows.
namespace seep {

enum class MessageType { kHello = 1, kBatch, kCheckpoint };

int NonExhaustive(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return 1;
    case MessageType::kBatch:
      return 2;
  }
  return 0;
}

int SilentDefault(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return 1;
    case MessageType::kBatch:
      return 2;
    case MessageType::kCheckpoint:
      return 3;
    default:
      break;  // swallows unknown wire values without a trace
  }
  return 0;
}

}  // namespace seep
