#include "helper.h"

// Clean while helper.h declares `void Ping();`. The self-test rewrites
// that declaration to return Status, after which this bare call must be
// re-analyzed and reported — proving header edits invalidate dependent
// TU verdicts.
namespace seep {

void CallsHelper() {
  Ping();
}

}  // namespace seep
