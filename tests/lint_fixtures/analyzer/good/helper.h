// Edited in place by the cache-invalidation self-test: Ping() gains a
// [[nodiscard]] Status return, which changes the registry fingerprint
// and must force uses_header.cc to be re-analyzed (and then flagged).
namespace seep {

void Ping();
void Overloaded(long v);

}  // namespace seep
