// Negative fixtures: every shape here is legitimate and the tree must
// come out clean — checked statuses, a justified waiver, an exhaustive
// switch, a loud default, and an ambiguous overload (skipped by the
// name-keyed frontend; the [[nodiscard]] attribute covers it in the
// compiler).
namespace seep {

class Status {
 public:
  bool ok() const { return true; }
};

enum class MessageType { kHello = 1, kBatch };

[[nodiscard]] Status Checked();
[[nodiscard]] Status Waivable();
[[nodiscard]] Status Overloaded(int v);

void Consumer() {
  Status st = Checked();
  if (!st.ok()) {
    return;
  }
  Waivable();  // seep-ok: unchecked-status -- fixture: best-effort probe
  Overloaded(3);  // ambiguous with the void overload in helper.h
}

int Exhaustive(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return 1;
    case MessageType::kBatch:
      return 2;
  }
  return 0;
}

int LoudDefault(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return 1;
    case MessageType::kBatch:
      return 2;
    default:
      SEEP_CHECK(false);
      return 0;
  }
}

}  // namespace seep
