// Fixture: core including a runtime header is an upward dependency.
#include "runtime/cluster.h"
