// Fixture: a coordinator opening sockets instead of using the Transport.
#include "net/connection.h"
