// Fixture: a coordinator reaching sim::Network without the Transport seam.
#include "sim/network.h"
