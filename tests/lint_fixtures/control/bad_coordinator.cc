// Fixture: a coordinator mutating the cluster directly instead of building
// a ReconfigPlan, dodging compensations and the plan audit invariants.
void BadScaleOut() {
  auto id = membership->DeployInstance(op, vm, range, 0, 1);
  cluster->InstallRoutes(op, routes);
}
