// Fixture: a coordinator including the checkpoint log directly instead
// of going through the BackupStore tier. Violates
// store-only-in-backup-path.
#include "store/checkpoint_log.h"

void CoordinatorTouchingTheLogDirectly() {}
