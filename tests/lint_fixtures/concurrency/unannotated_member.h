// Fixture: violates unannotated-member (and waiver-needs-reason). The
// spawning struct has one mutable member with neither a SEEP_GUARDED_BY
// nor a SEEP_UNGUARDED waiver, and one waiver with an empty reason.
// Never compiled.
#ifndef SEEP_TESTS_LINT_FIXTURES_CONCURRENCY_UNANNOTATED_MEMBER_H_
#define SEEP_TESTS_LINT_FIXTURES_CONCURRENCY_UNANNOTATED_MEMBER_H_

#include <cstddef>
#include <thread>

struct SpawnsAThread {
  void Start();

  // unannotated-member: mutated by the spawned thread, no annotation.
  size_t frames_seen_;
  // waiver-needs-reason: an empty reason is a suppression, not a decision.
  size_t frames_dropped_ SEEP_UNGUARDED("");
  std::thread thread_ SEEP_UNGUARDED("owned exclusively by the starter");
};

#endif  // SEEP_TESTS_LINT_FIXTURES_CONCURRENCY_UNANNOTATED_MEMBER_H_
