// Fixture: violates no-raw-mutex. A std::mutex outside common/sync.h is
// invisible to the thread safety analysis, the holder bookkeeping, and the
// lock-order manifest. Never compiled.
#include <mutex>

struct RawLocker {
  void Touch() {
    std::lock_guard<std::mutex> lock(mu);
    ++count;
  }
  std::mutex mu;
  int count = 0;
};
