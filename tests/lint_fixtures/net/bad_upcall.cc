// Fixture: net reaching up into the runtime — net ships opaque bytes only.
#include "runtime/cluster.h"
