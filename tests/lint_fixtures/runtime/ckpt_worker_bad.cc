// Fixture: checkpoint pipeline worker code reaching into net/ directly
// instead of handing frames back through the runtime::Transport seam.
#include "net/wire.h"
