// Fixture: a runtime component header depending on the cluster wiring.
#include "runtime/cluster.h"
