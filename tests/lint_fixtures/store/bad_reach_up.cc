// Fixture: the storage engine including a runtime header. store/ is a
// leaf over serde/ and common/; it must never see protocol objects.
// Violates store-isolation.
#include "runtime/backup_store.h"

void StoreReachingAboveTheSeam() {}
