// Linear Road Benchmark integration: the query produces sane results
// (tolls, accident alerts, balance answers), the bottleneck detector scales
// out the toll calculator first (paper §6.1: "the main computational
// bottleneck ... is partitioned the most"), and latency stays within the
// LRB 5-second bound.

#include <gtest/gtest.h>

#include "sps/sps.h"
#include "workloads/lrb/lrb.h"

namespace seep {
namespace {

using workloads::lrb::BuildLrbQuery;
using workloads::lrb::LrbConfig;
using workloads::lrb::LrbQuery;

LrbConfig SmallLrb() {
  LrbConfig lrb;
  lrb.num_xways = 2;
  lrb.duration_s = 240;
  lrb.initial_rate_per_xway = 50;
  lrb.peak_rate_per_xway = 600;
  lrb.seed = 5;
  return lrb;
}

TEST(LrbIntegration, ProducesTollsAccidentsAndBalances) {
  LrbConfig lrb = SmallLrb();
  lrb.accident_rate_per_sec = 0.01;  // make accidents likely in a short run
  LrbQuery query = BuildLrbQuery(lrb);
  auto results = query.results;

  sps::SpsConfig config;
  config.scaling.enabled = false;
  // Give the single-instance deployment enough initial parallelism to
  // sustain the peak rate without scaling.
  config.initial_parallelism = {{query.toll_calculator, 4},
                                {query.forwarder, 2},
                                {query.toll_assessment, 2}};
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(240);

  EXPECT_GT(results->toll_notifications, 0u);
  EXPECT_GT(results->balance_answers, 0u);
  EXPECT_GT(results->accident_alerts, 0u);
  // Congestion builds as the ramp grows, so tolls must have been charged.
  EXPECT_GT(results->total_tolls_charged, 0);
}

TEST(LrbIntegration, DynamicScaleOutTracksTheRamp) {
  LrbConfig lrb = SmallLrb();
  // Scaled-down rates need scaled-up per-tuple costs (load_scale semantics)
  // so that operators actually saturate their VMs and trigger the policy.
  lrb.toll_calc_cost_us = 2500;
  lrb.forwarder_cost_us = 900;
  lrb.assessment_cost_us = 400;
  // A slightly gentler ramp than the 240 s default: the policy needs a few
  // report rounds per scale-out, and the LRB latency bound must hold.
  lrb.duration_s = 400;
  LrbQuery query = BuildLrbQuery(lrb);
  const OperatorId toll_calc = query.toll_calculator;

  sps::SpsConfig config;
  config.scaling.enabled = true;
  config.scaling.threshold = 0.7;
  config.cluster.pool.target_size = 4;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  const size_t vms_at_start = sps.VmsInUse();
  sps.RunFor(400);

  // The ramp forces scale out; the toll calculator is partitioned the most.
  EXPECT_GT(sps.VmsInUse(), vms_at_start);
  EXPECT_GE(sps.metrics().scale_outs.size(), 2u);
  std::map<OperatorId, int> scale_outs_by_op;
  for (const auto& event : sps.metrics().scale_outs) {
    ++scale_outs_by_op[event.op];
  }
  for (const auto& [op, count] : scale_outs_by_op) {
    EXPECT_LE(count, scale_outs_by_op[toll_calc])
        << "toll calculator should be partitioned the most";
  }
  EXPECT_GE(sps.ParallelismOf(toll_calc), 2u);

  // Throughput kept up with the ramp: results kept flowing near the end.
  const auto rates = sps.metrics().sink_tuples.RatesPerSecond();
  double late_throughput = 0;
  for (const auto& point : rates) {
    if (point.time > SecondsToSim(340)) {
      late_throughput = std::max(late_throughput, point.value);
    }
  }
  EXPECT_GT(late_throughput, 0);

  // LRB latency requirement: the paper's median is ~100-150 ms with
  // multi-second peaks during scale out. This test compresses the 3-hour
  // benchmark into 400 s (a ~27x steeper ramp), so scale-out transients
  // dominate the tail; assert the median honours the 5 s bound and the
  // tail stays within an order of magnitude of it. The paper-relative
  // latency check lives in bench_fig07_lrb_latency.
  EXPECT_LT(sps.metrics().latency_ms.Median(), 5000.0);
  EXPECT_LT(sps.metrics().latency_ms.Percentile(95), 30000.0);
}

TEST(LrbIntegration, RecoveryOfTollAssessmentPreservesProcessing) {
  // The toll assessment's per-vehicle balances depend on the complete tuple
  // history (the reason the paper cannot run UB/SR on LRB). Check that R+SM
  // recovers it and the query keeps answering balance queries.
  LrbConfig lrb = SmallLrb();
  lrb.duration_s = 180;
  LrbQuery query = BuildLrbQuery(lrb);
  auto results = query.results;

  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.initial_parallelism = {{query.toll_calculator, 4},
                                {query.forwarder, 2}};
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(query.toll_assessment, 90);
  sps.RunFor(180);

  ASSERT_EQ(sps.metrics().recoveries.size(), 1u);
  EXPECT_GT(sps.metrics().recoveries[0].caught_up_at, 0);
  EXPECT_LT(sps.metrics().recoveries[0].RecoverySeconds(), 30.0);
  EXPECT_GT(results->balance_answers, 0u);
}

}  // namespace
}  // namespace seep
