// Control-plane tests: scaling policy semantics (k consecutive reports over
// δ), scale-out abort/retry paths, failure-detection latency, the
// deployment manager's initial-parallelism handling, and fault injection
// into running reconfiguration plans (compensation + retry convergence).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/operator_instance.h"
#include "sps/sps.h"
#include "verify/invariant_auditor.h"
#include "workloads/wordcount/wordcount.h"

namespace seep::control {
namespace {

using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

WordCountConfig HeavyCounter(double rate, double counter_cost_us) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = rate;
  wc.words_per_sentence = 1;  // 1 word per tuple keeps rates predictable
  wc.vocabulary = 64;
  wc.counter_cost_us = counter_cost_us;
  wc.seed = 23;
  return wc;
}

TEST(ScalingPolicyTest, ScalesOutOnlyAfterKConsecutiveReports) {
  // Counter at ~90% utilisation: 300 t/s * 3000 µs = 0.9.
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(300, 3000));
  const OperatorId counter = query.counter;

  sps::SpsConfig config;
  config.scaling.enabled = true;
  config.scaling.report_interval = SecondsToSim(5);
  config.scaling.consecutive_reports = 2;
  config.scaling.threshold = 0.7;
  config.cluster.pool.grant_delay = SecondsToSim(1);
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());

  // After one report (t=5) nothing can have happened yet; after the second
  // (t=10) the scale-out fires and completes shortly after.
  sps.RunUntil(6);
  EXPECT_EQ(sps.ParallelismOf(counter), 1u);
  EXPECT_TRUE(sps.metrics().scale_outs.empty());
  sps.RunUntil(30);
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);
  ASSERT_EQ(sps.metrics().scale_outs.size(), 1u);
  EXPECT_EQ(sps.metrics().scale_outs[0].op, counter);
  EXPECT_GE(sps.metrics().scale_outs[0].at, SecondsToSim(10));
}

TEST(ScalingPolicyTest, BelowThresholdNeverScales) {
  // ~30% utilisation.
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(300, 1000));
  sps::SpsConfig config;
  config.scaling.enabled = true;
  config.scaling.threshold = 0.7;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(60);
  EXPECT_TRUE(sps.metrics().scale_outs.empty());
}

TEST(ScalingPolicyTest, VmCapBoundsScaleOut) {
  // Grossly overloaded: would scale forever without the cap.
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(500, 20000));
  sps::SpsConfig config;
  config.scaling.enabled = true;
  config.scaling.max_vms = 5;  // src + splitter + counter + sink = 4 used
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(120);
  EXPECT_LE(sps.VmsInUse(), 5u);
}

TEST(ScaleOutCoordinatorTest, GracefulScaleOutWithoutBackupAborts) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  const OperatorId counter = query.counter;
  sps::SpsConfig config;
  config.scaling.enabled = false;
  // Checkpoint far in the future: no backup exists at t=5.
  config.cluster.checkpoint_interval = SecondsToSim(1000);
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(5);

  Status result;
  ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) { result = std::move(s); };
  const InstanceId target = sps.cluster().LiveInstancesOf(counter).at(0);
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(callbacks));
  sps.RunFor(10);
  EXPECT_TRUE(result.IsUnavailable());
  EXPECT_EQ(sps.ParallelismOf(counter), 1u);
  EXPECT_EQ(sps.scale_out_coordinator().aborted_scale_outs(), 1u);
}

TEST(ScaleOutCoordinatorTest, ConcurrentOperationsOnSameOpRejected) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  const OperatorId counter = query.counter;
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.cluster.checkpoint_interval = SecondsToSim(2);
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(10);

  Status second_result;
  const InstanceId target = sps.cluster().LiveInstancesOf(counter).at(0);
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false);
  ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) { second_result = std::move(s); };
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(callbacks));
  EXPECT_TRUE(sps.scale_out_coordinator().InProgress(counter));
  sps.RunFor(30);
  EXPECT_TRUE(second_result.IsAborted());
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);  // first one went through
}

TEST(FailureDetectorTest, DetectionWithinConfiguredHeartbeats) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.failure_detector.heartbeat_interval = MillisToSim(500);
  config.failure_detector.missed_heartbeats = 2;
  const OperatorId counter = query.counter;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(counter, 20.0);
  sps.RunFor(60);

  ASSERT_EQ(sps.metrics().recoveries.size(), 1u);
  const auto& r = sps.metrics().recoveries[0];
  EXPECT_EQ(r.failed_at, SecondsToSim(20));
  const double detect_s = SimToSeconds(r.detected_at - r.failed_at);
  EXPECT_GT(detect_s, 0.4);
  EXPECT_LE(detect_s, 1.1);
}

TEST(FailureDetectorTest, DisabledDetectorNeverRecovers) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.failure_detector.enabled = false;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(query.counter, 20.0);
  sps.RunFor(60);
  EXPECT_TRUE(sps.metrics().recoveries.empty());
}

// ------------------------------- fault injection into running plans
//
// Each test interrupts a reconfiguration plan partway through, then checks
// that the executor's compensations put the system back exactly where it
// was (with the level-2 auditor watching: no leaked VM, checkpoints
// resumed, routes restored) and that a later retry converges.

/// Collects level-2 audit violations instead of aborting, so tests can
/// report them as readable failures.
struct AuditLog {
  explicit AuditLog(sps::Sps& sps) {
    sps.cluster().audit()->SetHandler([this](const verify::Violation& v) {
      entries.push_back(v.invariant + ": " + v.detail);
    });
  }
  std::vector<std::string> entries;
};

TEST(ReconfigFaultTest, ScaleInAbortResumesSurvivorCheckpoints) {
  // Regression for a bug the plan refactor folded away: when a merge
  // partner dies during the drain, the abort path must resume the
  // *surviving* partition's checkpoint schedule (and unpause upstreams).
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(300, 100));
  const OperatorId counter = query.counter;
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.failure_detector.enabled = false;
  config.cluster.checkpoint_interval = SecondsToSim(2);
  config.cluster.audit_level = verify::kAuditExpensive;
  config.initial_parallelism = {{counter, 2}};
  sps::Sps sps(std::move(query.graph), config);
  AuditLog audit(sps);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(10);

  const auto live = sps.cluster().LiveInstancesOf(counter);
  ASSERT_EQ(live.size(), 2u);

  bool done = false;
  Status result;
  ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) {
    done = true;
    result = std::move(s);
  };
  sps.scale_out_coordinator().ScaleIn(counter, std::move(callbacks));
  // The drain needs >= 200ms of quiet polls; kill one merge partner while
  // it is still polling.
  sps.cluster().simulation()->Schedule(MillisToSim(120), [&sps, live] {
    (void)sps.cluster().membership()->KillVm(
        sps.cluster().GetInstance(live[1])->vm());
  });
  sps.RunUntil(12);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsUnavailable());
  EXPECT_TRUE(sps.metrics().scale_ins.empty());

  const auto* survivor = sps.cluster().GetInstance(live[0]);
  ASSERT_NE(survivor, nullptr);
  EXPECT_TRUE(survivor->alive());
  EXPECT_FALSE(survivor->checkpoints_suspended());

  // Upstreams were unpaused by the compensation: tuples keep flowing.
  const uint64_t tuples_at_abort = sps.metrics().sink_tuples.total();
  sps.RunFor(10);
  EXPECT_GT(sps.metrics().sink_tuples.total(), tuples_at_abort);

  for (const auto& v : audit.entries) ADD_FAILURE() << "audit: " << v;
  EXPECT_EQ(sps.cluster().audit()->violations(), 0u);
}

/// Shared harness for the mid-ship kill tests: a word-count query whose
/// counter holds ~100KB of state at ~0.05 simulated seconds per KB, so its
/// ship stage spans several seconds and a kill scheduled 1s into the
/// scale-out lands inside it — while small checkpoints (the stateless
/// splitter's) still ship well inside the 30s deadline.
struct ShipWindowFixture {
  ShipWindowFixture()
      : query(BuildWordCountQuery([] {
          WordCountConfig wc = HeavyCounter(1000, 100);
          wc.vocabulary = 4096;
          return wc;
        }())) {
    config.scaling.enabled = false;
    config.failure_detector.enabled = false;
    config.cluster.checkpoint_interval = SecondsToSim(2);
    config.cluster.audit_level = verify::kAuditExpensive;
    config.cluster.serialize_cost_us_per_kb = 5e4;
    config.cluster.pool.grant_delay = MillisToSim(100);
    config.coordinator.ship_deadline = SecondsToSim(30);
  }

  WordCountQuery query;
  sps::SpsConfig config;
};

/// The one plan that aborted so far (asserts there is exactly one).
const runtime::ReconfigPlanEvent* AbortedPlan(sps::Sps& sps) {
  const runtime::ReconfigPlanEvent* found = nullptr;
  for (const auto& plan : sps.metrics().reconfig_plans) {
    if (!plan.aborted) continue;
    EXPECT_EQ(found, nullptr) << "more than one aborted plan";
    found = &plan;
  }
  return found;
}

TEST(ReconfigFaultTest, HolderKilledMidShipCompensatesAndRetryConverges) {
  ShipWindowFixture fx;
  const OperatorId counter = fx.query.counter;
  // The detector stays on: the dead holder instance must itself be
  // recovered before anyone can hold the counter's checkpoints again.
  fx.config.failure_detector.enabled = true;
  sps::Sps sps(std::move(fx.query.graph), fx.config);
  AuditLog audit(sps);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(10);

  const InstanceId target = sps.cluster().LiveInstancesOf(counter).at(0);
  const auto* backup = sps.cluster().backups()->Find(target);
  ASSERT_NE(backup, nullptr);
  const VmId holder_vm = sps.cluster().GetInstance(backup->holder)->vm();
  const size_t vms_in_use_before = sps.VmsInUse();

  bool done = false;
  Status result;
  ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) {
    done = true;
    result = std::move(s);
  };
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(callbacks));
  sps.cluster().simulation()->Schedule(SecondsToSim(1), [&sps, holder_vm] {
    (void)sps.cluster().membership()->KillVm(holder_vm);
  });
  sps.RunUntil(60);

  // The ship never completes (the holder died mid-transfer), the stage
  // deadline fires and the plan aborts in its ship stage.
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsUnavailable());
  const auto* plan = AbortedPlan(sps);
  ASSERT_NE(plan, nullptr);
  ASSERT_FALSE(plan->stages.empty());
  EXPECT_STREQ(plan->stages.back().stage, "ship");

  // Compensations rolled everything back: the query runs at its old
  // parallelism and both acquired VMs were returned (only the killed
  // holder VM is gone — its replacement is still provisioning).
  EXPECT_EQ(sps.ParallelismOf(counter), 1u);
  EXPECT_EQ(sps.VmsInUse(), vms_in_use_before - 1);

  // Once the pool can feed it a VM, the holder's own recovery completes;
  // the counter's resumed checkpoint schedule then finds a live upstream
  // to hold a fresh backup, and a retry converges.
  sps.RunUntil(150);
  EXPECT_EQ(sps.VmsInUse(), vms_in_use_before);
  ASSERT_TRUE(sps.cluster().backups()->Has(target));
  bool retry_done = false;
  Status retry;
  ScaleOutCoordinator::Callbacks retry_callbacks;
  retry_callbacks.on_done = [&](Status s) {
    retry_done = true;
    retry = std::move(s);
  };
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(retry_callbacks));
  sps.RunFor(60);
  ASSERT_TRUE(retry_done);
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);

  for (const auto& v : audit.entries) ADD_FAILURE() << "audit: " << v;
  EXPECT_EQ(sps.cluster().audit()->violations(), 0u);
}

TEST(ReconfigFaultTest, NewVmKilledDuringRestoreCompensatesAndRetries) {
  ShipWindowFixture fx;
  const OperatorId counter = fx.query.counter;
  sps::Sps sps(std::move(fx.query.graph), fx.config);
  AuditLog audit(sps);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(10);

  const InstanceId target = sps.cluster().LiveInstancesOf(counter).at(0);
  const size_t vms_in_use_before = sps.VmsInUse();

  bool done = false;
  Status result;
  ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) {
    done = true;
    result = std::move(s);
  };
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(callbacks));
  // 1s in, the two new partitions are deployed and state is being shipped
  // to them; kill one of the new VMs so its restore never happens.
  sps.cluster().simulation()->Schedule(SecondsToSim(1), [&sps, counter,
                                                        target] {
    for (InstanceId id : sps.cluster().InstancesOf(counter)) {
      if (id == target) continue;
      (void)sps.cluster().membership()->KillVm(
          sps.cluster().GetInstance(id)->vm());
      return;
    }
    ADD_FAILURE() << "no new partition deployed by kill time";
  });
  sps.RunUntil(60);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsUnavailable());
  const auto* plan = AbortedPlan(sps);
  ASSERT_NE(plan, nullptr);
  ASSERT_FALSE(plan->stages.empty());
  EXPECT_STREQ(plan->stages.back().stage, "ship");

  // Both new partitions were retired by the compensation (the dead one's
  // VM is simply gone); the original partition still runs, so the VM count
  // is back to the pre-scale-out figure.
  EXPECT_EQ(sps.ParallelismOf(counter), 1u);
  EXPECT_EQ(sps.VmsInUse(), vms_in_use_before);
  EXPECT_EQ(sps.cluster().pool()->pending_requests(), 0u);

  bool retry_done = false;
  Status retry;
  ScaleOutCoordinator::Callbacks retry_callbacks;
  retry_callbacks.on_done = [&](Status s) {
    retry_done = true;
    retry = std::move(s);
  };
  sps.RunFor(5);
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(retry_callbacks));
  sps.RunFor(60);
  ASSERT_TRUE(retry_done);
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);

  for (const auto& v : audit.entries) ADD_FAILURE() << "audit: " << v;
  EXPECT_EQ(sps.cluster().audit()->violations(), 0u);
}

TEST(DeploymentTest, InitialParallelismSplitsKeySpace) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  const OperatorId counter = query.counter;
  const OperatorId splitter = query.splitter;
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.initial_parallelism = {{counter, 4}, {splitter, 2}};
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  EXPECT_EQ(sps.ParallelismOf(counter), 4u);
  EXPECT_EQ(sps.ParallelismOf(splitter), 2u);

  // Key ranges of the partitions are disjoint and cover the space.
  const auto ids = sps.cluster().LiveInstancesOf(counter);
  std::vector<core::KeyRange> ranges;
  for (InstanceId id : ids) {
    ranges.push_back(sps.cluster().GetInstance(id)->key_range());
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const auto& a, const auto& b) { return a.lo < b.lo; });
  EXPECT_EQ(ranges.front().lo, 0u);
  EXPECT_EQ(ranges.back().hi, UINT64_MAX);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].hi + 1, ranges[i].lo);
  }

  // The query still computes: results arrive through all partitions.
  sps.RunFor(40);
  EXPECT_GT(sps.metrics().sink_tuples.total(), 0u);
}

TEST(DeploymentTest, DoubleDeployRejected) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  sps::Sps sps(std::move(query.graph), {});
  ASSERT_TRUE(sps.Deploy().ok());
  EXPECT_FALSE(sps.Deploy().ok());
}

}  // namespace
}  // namespace seep::control
