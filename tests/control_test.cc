// Control-plane tests: scaling policy semantics (k consecutive reports over
// δ), scale-out abort/retry paths, failure-detection latency, and the
// deployment manager's initial-parallelism handling.

#include <gtest/gtest.h>

#include "runtime/operator_instance.h"
#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep::control {
namespace {

using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

WordCountConfig HeavyCounter(double rate, double counter_cost_us) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = rate;
  wc.words_per_sentence = 1;  // 1 word per tuple keeps rates predictable
  wc.vocabulary = 64;
  wc.counter_cost_us = counter_cost_us;
  wc.seed = 23;
  return wc;
}

TEST(ScalingPolicyTest, ScalesOutOnlyAfterKConsecutiveReports) {
  // Counter at ~90% utilisation: 300 t/s * 3000 µs = 0.9.
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(300, 3000));
  const OperatorId counter = query.counter;

  sps::SpsConfig config;
  config.scaling.enabled = true;
  config.scaling.report_interval = SecondsToSim(5);
  config.scaling.consecutive_reports = 2;
  config.scaling.threshold = 0.7;
  config.cluster.pool.grant_delay = SecondsToSim(1);
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());

  // After one report (t=5) nothing can have happened yet; after the second
  // (t=10) the scale-out fires and completes shortly after.
  sps.RunUntil(6);
  EXPECT_EQ(sps.ParallelismOf(counter), 1u);
  EXPECT_TRUE(sps.metrics().scale_outs.empty());
  sps.RunUntil(30);
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);
  ASSERT_EQ(sps.metrics().scale_outs.size(), 1u);
  EXPECT_EQ(sps.metrics().scale_outs[0].op, counter);
  EXPECT_GE(sps.metrics().scale_outs[0].at, SecondsToSim(10));
}

TEST(ScalingPolicyTest, BelowThresholdNeverScales) {
  // ~30% utilisation.
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(300, 1000));
  sps::SpsConfig config;
  config.scaling.enabled = true;
  config.scaling.threshold = 0.7;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(60);
  EXPECT_TRUE(sps.metrics().scale_outs.empty());
}

TEST(ScalingPolicyTest, VmCapBoundsScaleOut) {
  // Grossly overloaded: would scale forever without the cap.
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(500, 20000));
  sps::SpsConfig config;
  config.scaling.enabled = true;
  config.scaling.max_vms = 5;  // src + splitter + counter + sink = 4 used
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(120);
  EXPECT_LE(sps.VmsInUse(), 5u);
}

TEST(ScaleOutCoordinatorTest, GracefulScaleOutWithoutBackupAborts) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  const OperatorId counter = query.counter;
  sps::SpsConfig config;
  config.scaling.enabled = false;
  // Checkpoint far in the future: no backup exists at t=5.
  config.cluster.checkpoint_interval = SecondsToSim(1000);
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(5);

  Status result;
  ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) { result = std::move(s); };
  const InstanceId target = sps.cluster().LiveInstancesOf(counter).at(0);
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(callbacks));
  sps.RunFor(10);
  EXPECT_TRUE(result.IsUnavailable());
  EXPECT_EQ(sps.ParallelismOf(counter), 1u);
  EXPECT_EQ(sps.scale_out_coordinator().aborted_scale_outs(), 1u);
}

TEST(ScaleOutCoordinatorTest, ConcurrentOperationsOnSameOpRejected) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  const OperatorId counter = query.counter;
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.cluster.checkpoint_interval = SecondsToSim(2);
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(10);

  Status second_result;
  const InstanceId target = sps.cluster().LiveInstancesOf(counter).at(0);
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false);
  ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) { second_result = std::move(s); };
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(callbacks));
  EXPECT_TRUE(sps.scale_out_coordinator().InProgress(counter));
  sps.RunFor(30);
  EXPECT_TRUE(second_result.IsAborted());
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);  // first one went through
}

TEST(FailureDetectorTest, DetectionWithinConfiguredHeartbeats) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.failure_detector.heartbeat_interval = MillisToSim(500);
  config.failure_detector.missed_heartbeats = 2;
  const OperatorId counter = query.counter;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(counter, 20.0);
  sps.RunFor(60);

  ASSERT_EQ(sps.metrics().recoveries.size(), 1u);
  const auto& r = sps.metrics().recoveries[0];
  EXPECT_EQ(r.failed_at, SecondsToSim(20));
  const double detect_s = SimToSeconds(r.detected_at - r.failed_at);
  EXPECT_GT(detect_s, 0.4);
  EXPECT_LE(detect_s, 1.1);
}

TEST(FailureDetectorTest, DisabledDetectorNeverRecovers) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.failure_detector.enabled = false;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(query.counter, 20.0);
  sps.RunFor(60);
  EXPECT_TRUE(sps.metrics().recoveries.empty());
}

TEST(DeploymentTest, InitialParallelismSplitsKeySpace) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  const OperatorId counter = query.counter;
  const OperatorId splitter = query.splitter;
  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.initial_parallelism = {{counter, 4}, {splitter, 2}};
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  EXPECT_EQ(sps.ParallelismOf(counter), 4u);
  EXPECT_EQ(sps.ParallelismOf(splitter), 2u);

  // Key ranges of the partitions are disjoint and cover the space.
  const auto ids = sps.cluster().LiveInstancesOf(counter);
  std::vector<core::KeyRange> ranges;
  for (InstanceId id : ids) {
    ranges.push_back(sps.cluster().GetInstance(id)->key_range());
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const auto& a, const auto& b) { return a.lo < b.lo; });
  EXPECT_EQ(ranges.front().lo, 0u);
  EXPECT_EQ(ranges.back().hi, UINT64_MAX);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].hi + 1, ranges[i].lo);
  }

  // The query still computes: results arrive through all partitions.
  sps.RunFor(40);
  EXPECT_GT(sps.metrics().sink_tuples.total(), 0u);
}

TEST(DeploymentTest, DoubleDeployRejected) {
  WordCountQuery query = BuildWordCountQuery(HeavyCounter(100, 100));
  sps::Sps sps(std::move(query.graph), {});
  ASSERT_TRUE(sps.Deploy().ok());
  EXPECT_FALSE(sps.Deploy().ok());
}

}  // namespace
}  // namespace seep::control
