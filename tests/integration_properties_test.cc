// Property-style integration sweeps: recovery and scale-out exactness must
// hold regardless of *when* the failure strikes relative to checkpoints and
// windows, across seeds, and across parallelism levels. These are the
// system-wide invariants the paper's integrated mechanism promises.

#include <gtest/gtest.h>

#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

using Counts = std::map<std::pair<int64_t, std::string>, int64_t>;

Counts RunScenario(uint64_t seed, double total_seconds,
                   const std::function<void(sps::Sps&, const WordCountQuery&)>&
                       actions = nullptr) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 120;
  wc.vocabulary = 150;
  wc.seed = seed;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.pool.target_size = 4;
  config.scaling.enabled = false;

  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  EXPECT_TRUE(sps.Deploy().ok());
  if (actions) actions(sps, query);
  sps.RunFor(total_seconds);
  return results->counts;
}

Counts UpTo(const Counts& counts, int64_t max_window) {
  Counts out;
  for (const auto& [key, value] : counts) {
    if (key.first <= max_window) out[key] = value;
  }
  return out;
}

// ---------------------------------------------------------------- failures

// Failure times chosen to straddle checkpoint boundaries (multiples of 5 s)
// and window boundaries (multiples of 30 s).
class FailureTimingTest : public ::testing::TestWithParam<double> {};

TEST_P(FailureTimingTest, RecoveryIsExactWheneverTheFailureStrikes) {
  const double fail_at = GetParam();
  const Counts baseline = RunScenario(5, 160);
  const Counts failed = RunScenario(
      5, 160, [&](sps::Sps& sps, const WordCountQuery& query) {
        sps.InjectFailure(query.counter, fail_at);
      });
  EXPECT_EQ(UpTo(baseline, 3), UpTo(failed, 3))
      << "divergence for failure at t=" << fail_at;
}

INSTANTIATE_TEST_SUITE_P(Times, FailureTimingTest,
                         ::testing::Values(12.0, 29.9, 30.1, 44.9, 45.1,
                                           60.0, 74.5, 89.9));

// Failure of the *stateless* splitter: positions and buffers must restore
// such that no words are lost or duplicated.
TEST(FailureTargetTest, StatelessOperatorRecoveryIsExact) {
  const Counts baseline = RunScenario(6, 160);
  const Counts failed = RunScenario(
      6, 160, [](sps::Sps& sps, const WordCountQuery& query) {
        sps.InjectFailure(query.splitter, 47.0);
      });
  EXPECT_EQ(UpTo(baseline, 3), UpTo(failed, 3));
}

TEST(FailureTargetTest, BackupHolderFailureAbortsAndRetries) {
  // Kill the splitter (which holds the counter's checkpoint backup), then
  // the counter shortly after: the counter's recovery must first abort
  // (backup lost with the holder), then succeed after the splitter is back
  // and a fresh checkpoint was taken.
  const Counts baseline = RunScenario(7, 220);
  const Counts failed = RunScenario(
      7, 220, [](sps::Sps& sps, const WordCountQuery& query) {
        sps.InjectFailure(query.splitter, 46.0);
        sps.InjectFailure(query.counter, 70.0);
      });
  // Both operators recovered and kept counting in later windows.
  int64_t late_total_baseline = 0;
  int64_t late_total_failed = 0;
  for (const auto& [key, value] : baseline) {
    if (key.first == 5) late_total_baseline += value;
  }
  for (const auto& [key, value] : failed) {
    if (key.first == 5) late_total_failed += value;
  }
  EXPECT_GT(late_total_failed, 0);
  EXPECT_EQ(late_total_failed, late_total_baseline);
}

// --------------------------------------------------------------- scale out

class ScaleOutTimingTest : public ::testing::TestWithParam<double> {};

TEST_P(ScaleOutTimingTest, ScaleOutIsExactWheneverItHappens) {
  const double at = GetParam();
  const Counts baseline = RunScenario(8, 160);
  const Counts scaled = RunScenario(
      8, 160, [&](sps::Sps& sps, const WordCountQuery& query) {
        sps.RequestScaleOut(query.counter, at);
      });
  EXPECT_EQ(UpTo(baseline, 3), UpTo(scaled, 3))
      << "divergence for scale out at t=" << at;
}

INSTANTIATE_TEST_SUITE_P(Times, ScaleOutTimingTest,
                         ::testing::Values(11.0, 30.0, 44.8, 45.2, 61.5));

TEST(RepeatedScaleOutTest, FourPartitionsRemainExact) {
  const Counts baseline = RunScenario(9, 200);
  const Counts scaled = RunScenario(
      9, 200, [](sps::Sps& sps, const WordCountQuery& query) {
        sps.RequestScaleOut(query.counter, 20);
        sps.RequestScaleOut(query.counter, 50);
        sps.RequestScaleOut(query.counter, 80);
      });
  EXPECT_EQ(UpTo(baseline, 4), UpTo(scaled, 4));
}

TEST(ScaleOutThenFailTest, PartitionFailureAfterScaleOutIsExact) {
  const Counts baseline = RunScenario(10, 200);
  const Counts stressed = RunScenario(
      10, 200, [](sps::Sps& sps, const WordCountQuery& query) {
        sps.RequestScaleOut(query.counter, 25);
        sps.InjectFailure(query.counter, 70);  // kills one partition
      });
  EXPECT_EQ(UpTo(baseline, 4), UpTo(stressed, 4));
}

// ------------------------------------------------------------- determinism

class SeedDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedDeterminismTest, IdenticalRunsProduceIdenticalCountsAndMetrics) {
  auto actions = [](sps::Sps& sps, const WordCountQuery& query) {
    sps.RequestScaleOut(query.counter, 30);
    sps.InjectFailure(query.counter, 75);
  };
  const Counts a = RunScenario(GetParam(), 150, actions);
  const Counts b = RunScenario(GetParam(), 150, actions);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminismTest,
                         ::testing::Values(1, 17, 99, 123456));

TEST(SeedSensitivityTest, DifferentSeedsProduceDifferentStreams) {
  const Counts a = RunScenario(1, 100);
  const Counts b = RunScenario(2, 100);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace seep
