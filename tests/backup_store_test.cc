// Unit tests for the checkpoint backup directory (the paper's backup(o)
// bookkeeping: store, supersede, retrieve, and loss on holder failure).

#include <gtest/gtest.h>

#include "runtime/backup_store.h"

namespace seep::runtime {
namespace {

core::StateCheckpoint Ckpt(InstanceId owner, uint64_t seq) {
  core::StateCheckpoint c;
  c.instance = owner;
  c.seq = seq;
  return c;
}

TEST(BackupStoreTest, StoreAndRetrieve) {
  BackupStore store;
  EXPECT_FALSE(store.Has(1));
  EXPECT_EQ(store.HolderOf(1), kInvalidInstance);
  store.Store(1, 10, Ckpt(1, 5));
  ASSERT_TRUE(store.Has(1));
  auto entry = store.Retrieve(1);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->holder, 10u);
  EXPECT_EQ(entry->checkpoint.seq, 5u);
}

TEST(BackupStoreTest, NewerStoreSupersedes) {
  BackupStore store;
  store.Store(1, 10, Ckpt(1, 5));
  // Algorithm 1 lines 5-6: a re-backup (possibly at another holder)
  // replaces the old copy.
  store.Store(1, 11, Ckpt(1, 6));
  auto entry = store.Retrieve(1);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->holder, 11u);
  EXPECT_EQ(entry->checkpoint.seq, 6u);
}

TEST(BackupStoreTest, RetrieveMissingIsNotFound) {
  BackupStore store;
  EXPECT_TRUE(store.Retrieve(99).status().IsNotFound());
}

TEST(BackupStoreTest, DropHeldByLosesOnlyThatHoldersBackups) {
  BackupStore store;
  store.Store(1, 10, Ckpt(1, 1));
  store.Store(2, 10, Ckpt(2, 1));
  store.Store(3, 11, Ckpt(3, 1));
  EXPECT_EQ(store.DropHeldBy(10), 2u);
  EXPECT_FALSE(store.Has(1));
  EXPECT_FALSE(store.Has(2));
  EXPECT_TRUE(store.Has(3));
}

TEST(BackupStoreTest, DeleteRemovesEntry) {
  BackupStore store;
  store.Store(1, 10, Ckpt(1, 1));
  store.Delete(1);
  EXPECT_FALSE(store.Has(1));
  store.Delete(1);  // idempotent
}

}  // namespace
}  // namespace seep::runtime
