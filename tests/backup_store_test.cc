// Unit tests for the checkpoint backup directory (the paper's backup(o)
// bookkeeping: store, supersede, retrieve, and loss on holder failure).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "runtime/backup_store.h"
#include "store/checkpoint_log.h"

namespace seep::runtime {
namespace {

core::StateCheckpoint Ckpt(InstanceId owner, uint64_t seq) {
  core::StateCheckpoint c;
  c.instance = owner;
  c.seq = seq;
  return c;
}

TEST(BackupStoreTest, StoreAndRetrieve) {
  BackupStore store;
  EXPECT_FALSE(store.Has(1));
  EXPECT_EQ(store.HolderOf(1), kInvalidInstance);
  ASSERT_TRUE(store.Store(1, 10, Ckpt(1, 5)).ok());
  ASSERT_TRUE(store.Has(1));
  auto entry = store.Retrieve(1);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->holder, 10u);
  EXPECT_EQ(entry->checkpoint.seq, 5u);
}

TEST(BackupStoreTest, NewerStoreSupersedes) {
  BackupStore store;
  ASSERT_TRUE(store.Store(1, 10, Ckpt(1, 5)).ok());
  // Algorithm 1 lines 5-6: a re-backup (possibly at another holder)
  // replaces the old copy.
  ASSERT_TRUE(store.Store(1, 11, Ckpt(1, 6)).ok());
  auto entry = store.Retrieve(1);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->holder, 11u);
  EXPECT_EQ(entry->checkpoint.seq, 6u);
}

TEST(BackupStoreTest, RetrieveMissingIsNotFound) {
  BackupStore store;
  EXPECT_TRUE(store.Retrieve(99).status().IsNotFound());
}

TEST(BackupStoreTest, DropHeldByLosesOnlyThatHoldersBackups) {
  BackupStore store;
  ASSERT_TRUE(store.Store(1, 10, Ckpt(1, 1)).ok());
  ASSERT_TRUE(store.Store(2, 10, Ckpt(2, 1)).ok());
  ASSERT_TRUE(store.Store(3, 11, Ckpt(3, 1)).ok());
  EXPECT_EQ(store.DropHeldBy(10), 2u);
  EXPECT_FALSE(store.Has(1));
  EXPECT_FALSE(store.Has(2));
  EXPECT_TRUE(store.Has(3));
}

store::CheckpointLogConfig RejectingLogConfig(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::current_path() / "backup_store_test_tmp" / name;
  std::filesystem::remove_all(dir);
  store::CheckpointLogConfig config;
  config.directory = dir.string();
  config.fsync = store::FsyncPolicy::kNever;
  config.background_compaction = false;
  // Every realistic checkpoint frame exceeds this, so each durable
  // append fails deterministically (the log's malformed-append guard).
  config.max_payload = 1;
  return config;
}

TEST(BackupStoreTest, DiskModeFailedAppendStoresNothing) {
  // Regression test for the seep_analyzer unchecked-status rule: the
  // durable append's Status used to be discarded, so under kDisk a
  // failed log append still acknowledged the checkpoint upstream and
  // the trim acks retired tuples the backup could not restore. Store
  // must surface the error and hold the record in no tier.
  auto log = store::CheckpointLog::Open(RejectingLogConfig("disk_fail"));
  ASSERT_TRUE(log.ok());
  BackupStore store;
  store.AttachDurable(log->get(), BackupDurability::kDisk,
                      /*compress=*/false, /*audit=*/nullptr);
  const Status stored = store.Store(1, 10, Ckpt(1, 5));
  EXPECT_FALSE(stored.ok());
  EXPECT_FALSE(store.Has(1));
  EXPECT_TRUE(store.Retrieve(1).status().IsNotFound());
}

TEST(BackupStoreTest, TieredModeFailedAppendKeepsMemoryCopy) {
  // Under kTiered the in-memory copy is canonical: a failed durable
  // append only degrades durability, so Store reports OK and the
  // backup stays retrievable (the caller logs and counts the
  // degradation instead of refusing the ack).
  auto log = store::CheckpointLog::Open(RejectingLogConfig("tiered_fail"));
  ASSERT_TRUE(log.ok());
  BackupStore store;
  store.AttachDurable(log->get(), BackupDurability::kTiered,
                      /*compress=*/false, /*audit=*/nullptr);
  ASSERT_TRUE(store.Store(1, 10, Ckpt(1, 5)).ok());
  ASSERT_TRUE(store.Has(1));
  auto entry = store.Retrieve(1);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->checkpoint.seq, 5u);
  EXPECT_FALSE(entry->from_disk);
}

TEST(BackupStoreTest, DeleteRemovesEntry) {
  BackupStore store;
  ASSERT_TRUE(store.Store(1, 10, Ckpt(1, 1)).ok());
  store.Delete(1);
  EXPECT_FALSE(store.Has(1));
  store.Delete(1);  // idempotent
}

}  // namespace
}  // namespace seep::runtime
