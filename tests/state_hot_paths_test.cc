// Randomized equivalence tests for the state-management hot paths: the
// sorted ProcessingState, the merge-based ApplyDelta and the amortized
// TupleBuffer trim must produce byte-identical Serialize() output to a
// naive reference implementation (std::map state, vector-erase buffer)
// across random operation sequences, including delta chains with deletions
// and out-of-order base_seq rejection.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/state.h"
#include "core/state_ops.h"
#include "serde/encoder.h"

namespace seep::core {
namespace {

// ------------------------------------------------------ naive reference model

// The pre-rework semantics, kept deliberately simple: processing state is a
// std::map (canonically sorted, last write wins, erase deletes), buffers are
// plain vectors trimmed with find_if + erase.
struct ReferenceModel {
  std::map<KeyHash, std::string> processing;
  std::map<OperatorId, std::vector<Tuple>> buffers;

  void ApplyDelta(const std::map<KeyHash, std::string>& updated,
                  const std::vector<KeyHash>& deleted,
                  const std::map<OperatorId, int64_t>& buffer_front,
                  const std::map<OperatorId, std::vector<Tuple>>& fresh) {
    for (const auto& [key, value] : updated) processing[key] = value;
    for (KeyHash key : deleted) processing.erase(key);
    for (const auto& [op, front] : buffer_front) Trim(op, front - 1);
    for (const auto& [op, tuples] : fresh) {
      auto& vec = buffers[op];
      vec.insert(vec.end(), tuples.begin(), tuples.end());
    }
  }

  void Trim(OperatorId op, int64_t up_to) {
    auto it = buffers.find(op);
    if (it == buffers.end()) return;
    auto& vec = it->second;
    auto keep_from = std::find_if(vec.begin(), vec.end(), [&](const Tuple& t) {
      return t.timestamp > up_to;
    });
    vec.erase(vec.begin(), keep_from);
  }

  void TrimByEventTime(SimTime cutoff) {
    for (auto& [op, vec] : buffers) {
      auto keep_from =
          std::find_if(vec.begin(), vec.end(),
                       [&](const Tuple& t) { return t.event_time >= cutoff; });
      vec.erase(vec.begin(), keep_from);
    }
  }

  /// Rebuilds a StateCheckpoint with identical metadata to `like` but with
  /// processing/buffer contents from this model, using only Add/Append.
  StateCheckpoint ToCheckpoint(const StateCheckpoint& like) const {
    StateCheckpoint c;
    c.op = like.op;
    c.instance = like.instance;
    c.origin = like.origin;
    c.key_range = like.key_range;
    c.out_clock = like.out_clock;
    c.seq = like.seq;
    c.taken_at = like.taken_at;
    c.positions = like.positions;
    c.is_delta = like.is_delta;
    c.base_seq = like.base_seq;
    c.deleted_keys = like.deleted_keys;
    c.buffer_front = like.buffer_front;
    for (const auto& [key, value] : processing) c.processing.Add(key, value);
    for (const auto& [op, vec] : buffers) {
      // Fully-trimmed buffers stay in the map as empty entries (and get
      // encoded); mirror that rather than dropping them.
      c.buffer.buffers()[op];
      for (const Tuple& t : vec) c.buffer.Append(op, t);
    }
    return c;
  }
};

Tuple MakeTuple(int64_t ts, KeyHash key, SimTime event_time = 0) {
  Tuple t;
  t.timestamp = ts;
  t.key = key;
  t.event_time = event_time;
  t.text = "t" + std::to_string(ts);
  return t;
}

std::string RandomValue(Rng& rng) {
  return std::string(1 + rng.NextBounded(24),
                     static_cast<char>('a' + rng.NextBounded(26)));
}

// A small key universe so delta updates/deletes collide with base keys often.
KeyHash RandomKey(Rng& rng) { return 1 + rng.NextBounded(200); }

// ----------------------------------------------------------- delta chains

TEST(StateHotPathsTest, RandomDeltaChainsMatchNaiveReference) {
  Rng rng(20260806);
  for (int round = 0; round < 1000; ++round) {
    // Random full base checkpoint.
    StateCheckpoint base;
    base.op = 7;
    base.instance = 3;
    base.origin = 11;
    base.seq = 1 + rng.NextBounded(5);
    base.out_clock = 100;
    base.positions.Set(1, 50);
    ReferenceModel ref;
    const size_t n_base = rng.NextBounded(48);
    for (size_t i = 0; i < n_base; ++i) {
      const KeyHash key = RandomKey(rng);
      if (ref.processing.contains(key)) continue;  // keys are identities
      const std::string value = RandomValue(rng);
      ref.processing[key] = value;
      base.processing.Add(key, value);
    }
    int64_t next_ts = 1;
    const size_t n_buf = rng.NextBounded(32);
    for (size_t i = 0; i < n_buf; ++i) {
      const OperatorId down = 20 + rng.NextBounded(2);
      const Tuple t = MakeTuple(next_ts++, rng.Next());
      ref.buffers[down].push_back(t);
      base.buffer.Append(down, t);
    }

    // Random chain of deltas applied onto the stored base.
    const int chain = 1 + rng.NextBounded(4);
    for (int d = 0; d < chain; ++d) {
      StateCheckpoint delta;
      delta.op = base.op;
      delta.instance = base.instance;
      delta.origin = base.origin;
      delta.is_delta = true;
      delta.base_seq = base.seq;
      delta.seq = base.seq + 1;
      delta.out_clock = base.out_clock + 10;
      delta.taken_at = base.taken_at + 5;
      delta.positions = base.positions;
      delta.positions.Set(1, 50 + d);

      std::map<KeyHash, std::string> updated;
      const size_t n_upd = rng.NextBounded(16);
      for (size_t i = 0; i < n_upd; ++i) {
        updated[RandomKey(rng)] = RandomValue(rng);
      }
      for (const auto& [key, value] : updated) {
        delta.processing.Add(key, value);
      }
      // Deletions: a mix of present and absent keys, sometimes overlapping
      // the same delta's updates (deletion must win).
      const size_t n_del = rng.NextBounded(6);
      for (size_t i = 0; i < n_del; ++i) {
        delta.deleted_keys.push_back(RandomKey(rng));
      }
      // Buffer mirror: advance fronts and append fresh tuples.
      std::map<OperatorId, std::vector<Tuple>> fresh;
      for (const auto& [op, vec] : ref.buffers) {
        if (!vec.empty() && rng.NextBounded(2) == 0) {
          const size_t keep = rng.NextBounded(vec.size() + 1);
          delta.buffer_front[op] =
              keep == 0 ? next_ts : vec[vec.size() - keep].timestamp;
        }
      }
      const size_t n_fresh = rng.NextBounded(8);
      for (size_t i = 0; i < n_fresh; ++i) {
        const OperatorId down = 20 + rng.NextBounded(2);
        const Tuple t = MakeTuple(next_ts++, rng.Next());
        fresh[down].push_back(t);
        delta.buffer.Append(down, t);
      }

      // Occasionally: an out-of-order delta must be rejected without
      // mutating the base at all.
      if (rng.NextBounded(8) == 0) {
        StateCheckpoint stale = delta;
        stale.base_seq = base.seq + 17;
        const auto before = base.Serialize();
        EXPECT_FALSE(ApplyDelta(&base, stale).ok());
        EXPECT_EQ(before, base.Serialize()) << "rejected delta mutated base";
      }

      ASSERT_TRUE(ApplyDelta(&base, delta).ok());
      ref.ApplyDelta(updated, delta.deleted_keys, delta.buffer_front, fresh);

      EXPECT_EQ(base.Serialize(), ref.ToCheckpoint(base).Serialize())
          << "divergence in round " << round << " after delta " << d;
    }
  }
}

// ------------------------------------------------------- processing state

TEST(StateHotPathsTest, UnsortedAddsSerializeCanonically) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    ProcessingState state;
    std::map<KeyHash, std::string> ref;
    for (int i = 0; i < 64; ++i) {
      const KeyHash key = rng.Next();  // arbitrary order
      if (ref.contains(key)) continue;
      const std::string value = RandomValue(rng);
      ref[key] = value;
      state.Add(key, value);
    }
    ProcessingState canonical;
    for (const auto& [key, value] : ref) canonical.Add(key, value);
    serde::Encoder a, b;
    state.Encode(&a);
    canonical.Encode(&b);
    EXPECT_EQ(a.buffer(), b.buffer());
  }
}

TEST(StateHotPathsTest, FilterByRangeMatchesLinearScan) {
  Rng rng(7);
  ProcessingState state;
  std::vector<std::pair<KeyHash, std::string>> raw;
  for (int i = 0; i < 2000; ++i) {
    const KeyHash key = rng.Next();
    const std::string value = RandomValue(rng);
    raw.emplace_back(key, value);
    state.Add(key, value);
  }
  for (int round = 0; round < 100; ++round) {
    KeyHash lo = rng.Next(), hi = rng.Next();
    if (lo > hi) std::swap(lo, hi);
    const KeyRange range{lo, hi};
    const ProcessingState fast = state.FilterByRange(range);
    std::map<KeyHash, std::string> slow;
    for (const auto& [key, value] : raw) {
      if (range.Contains(key)) slow[key] = value;
    }
    ASSERT_EQ(fast.size(), slow.size());
    for (const auto& [key, value] : fast.entries()) {
      EXPECT_TRUE(range.Contains(key));
      EXPECT_EQ(slow.at(key), value);
    }
  }
}

TEST(StateHotPathsTest, MergeFromMatchesMapUnion) {
  Rng rng(13);
  for (int round = 0; round < 200; ++round) {
    ProcessingState a, b;
    std::map<KeyHash, std::string> ref;
    for (int i = 0; i < 40; ++i) {
      const KeyHash key = rng.Next();
      const std::string value = RandomValue(rng);
      if (ref.contains(key)) continue;
      ref[key] = value;
      (rng.NextBounded(2) == 0 ? a : b).Add(key, value);
    }
    a.MergeFrom(b);
    ProcessingState canonical;
    size_t bytes = 0;
    for (const auto& [key, value] : ref) {
      canonical.Add(key, value);
      bytes += sizeof(KeyHash) + value.size();
    }
    EXPECT_EQ(a.ByteSize(), bytes);
    serde::Encoder enc_a, enc_b;
    a.Encode(&enc_a);
    canonical.Encode(&enc_b);
    EXPECT_EQ(enc_a.buffer(), enc_b.buffer());
  }
}

// ----------------------------------------------------------------- buffers

TEST(StateHotPathsTest, RandomTrimSequencesMatchVectorErase) {
  Rng rng(31);
  for (int round = 0; round < 1000; ++round) {
    BufferState fast;
    ReferenceModel ref;
    int64_t next_ts = 1;
    const int ops = 1 + rng.NextBounded(60);
    for (int i = 0; i < ops; ++i) {
      const OperatorId down = 40 + rng.NextBounded(3);
      switch (rng.NextBounded(3)) {
        case 0:
        case 1: {  // append (twice as likely as trim)
          const Tuple t =
              MakeTuple(next_ts, rng.Next(), next_ts * kMicrosPerSecond);
          ++next_ts;
          fast.Append(down, t);
          ref.buffers[down].push_back(t);
          break;
        }
        case 2: {
          if (rng.NextBounded(2) == 0) {
            const int64_t up_to = rng.NextBounded(next_ts + 4);
            size_t ref_dropped = 0;
            if (auto it = ref.buffers.find(down); it != ref.buffers.end()) {
              const size_t before = it->second.size();
              ref.Trim(down, up_to);
              ref_dropped = before - it->second.size();
            }
            EXPECT_EQ(fast.Trim(down, up_to), ref_dropped);
          } else {
            const SimTime cutoff =
                static_cast<SimTime>(rng.NextBounded(next_ts + 4)) *
                kMicrosPerSecond;
            ref.TrimByEventTime(cutoff);
            fast.TrimByEventTime(cutoff);
          }
          break;
        }
      }
    }
    // Contents, sizes and serialized bytes all match the erase-based model.
    StateCheckpoint like;
    StateCheckpoint ref_ckpt = ref.ToCheckpoint(like);
    serde::Encoder enc_fast, enc_ref;
    fast.Encode(&enc_fast);
    ref_ckpt.buffer.Encode(&enc_ref);
    EXPECT_EQ(enc_fast.buffer(), enc_ref.buffer());
    EXPECT_EQ(fast.ByteSize(), ref_ckpt.buffer.ByteSize());
    EXPECT_EQ(fast.TotalTuples(), ref_ckpt.buffer.TotalTuples());
  }
}

TEST(StateHotPathsTest, TrimByEventTimeHandlesNonMonotonePrefix) {
  // Window-close emissions can carry an event time ahead of a later tuple's
  // source time; the trim must still only drop the maximal qualifying
  // prefix, exactly like the old find_if scan.
  BufferState buffer;
  buffer.Append(1, MakeTuple(1, 0, 5 * kMicrosPerSecond));
  buffer.Append(1, MakeTuple(2, 0, 30 * kMicrosPerSecond));  // window close
  buffer.Append(1, MakeTuple(3, 0, 6 * kMicrosPerSecond));   // older source ts
  buffer.Append(1, MakeTuple(4, 0, 31 * kMicrosPerSecond));
  EXPECT_EQ(buffer.TrimByEventTime(10 * kMicrosPerSecond), 1u);
  ASSERT_NE(buffer.Get(1), nullptr);
  EXPECT_EQ(buffer.Get(1)->size(), 3u);
  EXPECT_EQ(buffer.Get(1)->front().timestamp, 2);
}

TEST(StateHotPathsTest, AmortizedTrimCompactsDeadPrefix) {
  // Many tiny trims over a long-lived buffer: every query still sees exactly
  // the live suffix, and ByteSize tracks it.
  BufferState buffer;
  for (int64_t ts = 1; ts <= 4096; ++ts) buffer.Append(9, MakeTuple(ts, 0));
  size_t live = 4096;
  for (int64_t ts = 1; ts <= 4000; ts += 7) {
    buffer.Trim(9, ts);
    live = 4096 - static_cast<size_t>(ts);
    ASSERT_EQ(buffer.Get(9)->size(), live);
    ASSERT_EQ(buffer.Get(9)->front().timestamp, ts + 1);
  }
  size_t bytes = 0;
  for (const Tuple& t : *buffer.Get(9)) bytes += t.SerializedSize();
  EXPECT_EQ(buffer.ByteSize(), bytes);
}

// ----------------------------------------------------- partition round trip

TEST(StateHotPathsTest, PartitionedSlicesSerializeLikeNaiveFilter) {
  Rng rng(55);
  StateCheckpoint c;
  std::map<KeyHash, std::string> ref;
  for (int i = 0; i < 3000; ++i) {
    const KeyHash key = rng.Next();
    const std::string value = RandomValue(rng);
    if (ref.contains(key)) continue;
    ref[key] = value;
    c.processing.Add(key, value);
  }
  auto parts = PartitionCheckpoint(c, 8);
  ASSERT_TRUE(parts.ok());
  size_t total = 0;
  for (const StateCheckpoint& part : *parts) {
    total += part.processing.size();
    ProcessingState naive;
    for (const auto& [key, value] : ref) {
      if (part.key_range.Contains(key)) naive.Add(key, value);
    }
    serde::Encoder a, b;
    part.processing.Encode(&a);
    naive.Encode(&b);
    EXPECT_EQ(a.buffer(), b.buffer());
  }
  EXPECT_EQ(total, ref.size());
}

}  // namespace
}  // namespace seep::core
