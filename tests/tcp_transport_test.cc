// End-to-end tests of the TCP transport backend: the windowed word-count
// workload running over real loopback sockets (runtime::TcpTransport /
// net::LocalCluster), with and without a mid-stream operator failure. The
// sim backend's failure-free run is the reference: stable-window results
// must match exactly, recovery must complete over TCP, the upstream must
// observe the dead peer as a TCP disconnection, and the invariant auditor
// at level 2 must stay silent.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "net/local_cluster.h"
#include "runtime/operator_instance.h"
#include "runtime/tcp_transport.h"
#include "sps/sps.h"
#include "verify/invariant_auditor.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

sps::SpsConfig BaseConfig(runtime::TransportKind transport) {
  sps::SpsConfig config;
  config.cluster.transport = transport;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.pool.target_size = 3;
  config.scaling.enabled = false;  // controlled experiments
  return config;
}

WordCountConfig BaseWorkload() {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 100;
  wc.vocabulary = 200;
  wc.window = SecondsToSim(30);
  wc.seed = 17;
  return wc;
}

struct RunOutcome {
  std::map<std::pair<int64_t, std::string>, int64_t> counts;
  uint64_t duplicates = 0;
  uint64_t recoveries_completed = 0;
  uint64_t audit_violations = 0;
  uint64_t disconnects_observed = 0;
  uint64_t tcp_messages_delivered = 0;
  std::vector<verify::Violation> violations;
};

RunOutcome RunQuery(const WordCountConfig& wc, const sps::SpsConfig& config,
                    double seconds,
                    const std::function<void(sps::Sps&)>& actions = nullptr) {
  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  RunOutcome outcome;
  if (auto* audit = sps.cluster().audit()) {
    audit->SetHandler([&outcome](const verify::Violation& v) {
      outcome.violations.push_back(v);
    });
  }
  EXPECT_TRUE(sps.Deploy().ok());
  if (actions) actions(sps);
  sps.RunFor(seconds);

  outcome.counts = results->counts;
  outcome.duplicates = sps.metrics().duplicates_dropped;
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) ++outcome.recoveries_completed;
  }
  if (auto* audit = sps.cluster().audit()) {
    outcome.audit_violations = audit->violations();
  }
  if (auto* tcp =
          dynamic_cast<runtime::TcpTransport*>(sps.cluster().transport())) {
    outcome.disconnects_observed = tcp->disconnects_observed();
    outcome.tcp_messages_delivered = tcp->messages_delivered();
  }
  return outcome;
}

// Restricts counts to windows fully closed and flushed well before t_end.
std::map<std::pair<int64_t, std::string>, int64_t> StableWindows(
    const std::map<std::pair<int64_t, std::string>, int64_t>& counts,
    int64_t max_window) {
  std::map<std::pair<int64_t, std::string>, int64_t> out;
  for (const auto& [key, value] : counts) {
    if (key.first <= max_window) out[key] = value;
  }
  return out;
}

TEST(TcpTransportIntegration, WordCountMatchesSimBackend) {
  const WordCountConfig wc = BaseWorkload();
  RunOutcome sim =
      RunQuery(wc, BaseConfig(runtime::TransportKind::kSim), 100);
  RunOutcome tcp =
      RunQuery(wc, BaseConfig(runtime::TransportKind::kTcp), 100);

  // Real traffic flowed over loopback TCP, and the windows that closed
  // before the horizon hold exactly the counts the deterministic sim
  // produced: batches are keyed by event time, so delivery-time differences
  // between the backends cannot change window contents.
  EXPECT_GT(tcp.tcp_messages_delivered, 0u);
  const auto expected = StableWindows(sim.counts, 2);
  const auto actual = StableWindows(tcp.counts, 2);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
}

TEST(TcpTransportIntegration, FailureRecoversExactlyOnceOverTcp) {
  const WordCountConfig wc = BaseWorkload();
  sps::SpsConfig config = BaseConfig(runtime::TransportKind::kTcp);
  // Full protocol audit: per-tuple sink exactly-once stamps and whole-table
  // sweeps must hold on the TCP path too.
  config.cluster.audit_level = verify::kAuditExpensive;

  RunOutcome baseline =
      RunQuery(wc, BaseConfig(runtime::TransportKind::kSim), 150);
  RunOutcome with_failure = RunQuery(wc, config, 150, [](sps::Sps& sps) {
    // Kill the stateful counter mid-window, well after checkpoints exist.
    // Over TCP this hard-kills the VM's worker: sockets close mid-stream.
    sps.InjectFailure(/*counter op id=*/2, /*at_seconds=*/47);
  });

  // Recovery ran to completion over TCP, replay did real work, and the
  // upstream worker observed the dead peer as a TCP disconnection.
  EXPECT_EQ(with_failure.recoveries_completed, 1u);
  EXPECT_GT(with_failure.duplicates, 0u);
  EXPECT_GE(with_failure.disconnects_observed, 1u);

  // Exactly-once at the sink: stable windows match the failure-free sim
  // reference, and the level-2 auditor saw zero protocol violations.
  const auto expected = StableWindows(baseline.counts, 3);
  const auto actual = StableWindows(with_failure.counts, 3);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
  for (const auto& v : with_failure.violations) {
    ADD_FAILURE() << "audit violation " << v.invariant << ": " << v.detail;
  }
  EXPECT_EQ(with_failure.audit_violations, 0u);
}

TEST(TcpTransportIntegration, CorrelatedKillRecoversFromDurableLogOverTcp) {
  // The durability tentpole over real sockets: the counter's VM AND the VM
  // of the upstream instance holding its backup are hard-killed in the same
  // instant, so the in-memory backup dies with the holder and recovery has
  // to come off the on-disk checkpoint log (kTiered). Exactly-once must
  // still hold against the failure-free sim reference, with the level-2
  // auditor (including the durable-log invariants) silent.
  const WordCountConfig wc = BaseWorkload();
  sps::SpsConfig config = BaseConfig(runtime::TransportKind::kTcp);
  config.cluster.audit_level = verify::kAuditExpensive;
  config.cluster.backup_durability = runtime::BackupDurability::kTiered;

  RunOutcome baseline =
      RunQuery(wc, BaseConfig(runtime::TransportKind::kSim), 150);
  RunOutcome with_failure = RunQuery(wc, config, 150, [](sps::Sps& sps) {
    runtime::Cluster& cluster = sps.cluster();
    cluster.simulation()->ScheduleAt(SecondsToSim(47), [&cluster]() {
      const auto live = cluster.LiveInstancesOf(/*counter op id=*/2);
      ASSERT_FALSE(live.empty());
      const InstanceId owner = live.front();
      const InstanceId holder = cluster.backups()->HolderOf(owner);
      const auto* h = cluster.GetInstance(holder);
      ASSERT_NE(h, nullptr);
      const VmId holder_vm = h->vm();
      const VmId owner_vm = cluster.GetInstance(owner)->vm();
      EXPECT_TRUE(cluster.membership()->KillVm(owner_vm).ok());
      EXPECT_TRUE(cluster.membership()->KillVm(holder_vm).ok());
    });
  });

  // Both dead instances recovered over TCP, and the durable log actually
  // served at least one checkpoint back.
  EXPECT_EQ(with_failure.recoveries_completed, 2u);
  EXPECT_GE(with_failure.disconnects_observed, 1u);

  const auto expected = StableWindows(baseline.counts, 3);
  const auto actual = StableWindows(with_failure.counts, 3);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
  for (const auto& v : with_failure.violations) {
    ADD_FAILURE() << "audit violation " << v.invariant << ": " << v.detail;
  }
  EXPECT_EQ(with_failure.audit_violations, 0u);
}

TEST(TcpTransportIntegration, DetachMidFlightKeepsPumpAccountingCoherent) {
  // Regression for the DetachVm path that zeroed the in-flight delivery
  // accounting outside Impl::mu (rule: every inbox / in_flight access
  // holds the lock — SEEP_GUARDED_BY(mu), checked statically by SEEP_TSA
  // and dynamically by the TSan CI job, which runs this suite). Racing the
  // detach against live worker deliveries either corrupted the counters —
  // wedging the pump's cv wait forever — or tripped TSan. A short horizon
  // with an aggressive pump wait and a VM hard-killed while its frames are
  // still in flight hangs here (test timeout) if the fix regresses.
  const WordCountConfig wc = BaseWorkload();
  sps::SpsConfig config = BaseConfig(runtime::TransportKind::kTcp);
  config.cluster.tcp.pump_wait_micros = 50;
  RunOutcome outcome = RunQuery(wc, config, 60, [](sps::Sps& sps) {
    sps.InjectFailure(/*counter op id=*/2, /*at_seconds=*/12);
  });
  // The run drained: the killed VM's in-flight frames were written off
  // under the lock, the pump woke, and recovery completed over TCP.
  EXPECT_EQ(outcome.recoveries_completed, 1u);
  EXPECT_GT(outcome.tcp_messages_delivered, 0u);
  EXPECT_GE(outcome.disconnects_observed, 1u);
}

TEST(TcpTransportIntegration, AsyncPipelineMatchesSimBackend) {
  // Async checkpointing over TCP: captures serialize on real per-VM worker
  // threads and frames cross loopback sockets in small chunks. Stable
  // windows must still match the synchronous sim reference exactly, with
  // the level-2 auditor (chunk-reassembly included) silent.
  const WordCountConfig wc = BaseWorkload();
  sps::SpsConfig config = BaseConfig(runtime::TransportKind::kTcp);
  config.cluster.async_checkpoints = true;
  config.cluster.checkpoint_chunk_bytes = 4096;
  config.cluster.audit_level = verify::kAuditExpensive;

  RunOutcome sim =
      RunQuery(wc, BaseConfig(runtime::TransportKind::kSim), 100);
  RunOutcome tcp = RunQuery(wc, config, 100);

  const auto expected = StableWindows(sim.counts, 2);
  const auto actual = StableWindows(tcp.counts, 2);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
  for (const auto& v : tcp.violations) {
    ADD_FAILURE() << "audit violation " << v.invariant << ": " << v.detail;
  }
  EXPECT_EQ(tcp.audit_violations, 0u);
}

TEST(TcpTransportIntegration, AsyncFailureMidChunkStreamRecoversExactly) {
  // Hard-kill the stateful counter's VM while async checkpoint frames are
  // streaming in small chunks: sockets die mid-stream, partial chunk
  // streams must be superseded rather than stored, and recovery from the
  // last complete backup must stay exactly-once under the full audit.
  const WordCountConfig wc = BaseWorkload();
  sps::SpsConfig config = BaseConfig(runtime::TransportKind::kTcp);
  config.cluster.async_checkpoints = true;
  config.cluster.checkpoint_chunk_bytes = 4096;
  config.cluster.audit_level = verify::kAuditExpensive;

  RunOutcome baseline =
      RunQuery(wc, BaseConfig(runtime::TransportKind::kSim), 150);
  RunOutcome with_failure = RunQuery(wc, config, 150, [](sps::Sps& sps) {
    sps.InjectFailure(/*counter op id=*/2, /*at_seconds=*/47);
  });

  EXPECT_EQ(with_failure.recoveries_completed, 1u);
  EXPECT_GE(with_failure.disconnects_observed, 1u);

  const auto expected = StableWindows(baseline.counts, 3);
  const auto actual = StableWindows(with_failure.counts, 3);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
  for (const auto& v : with_failure.violations) {
    ADD_FAILURE() << "audit violation " << v.invariant << ": " << v.detail;
  }
  EXPECT_EQ(with_failure.audit_violations, 0u);
}

TEST(TcpTransportIntegration, HolderDeathMidShipCompensatesOverTcp) {
  // Fault injection into a running reconfiguration plan, over real loopback
  // sockets: the backup holder's VM worker is hard-killed while the
  // partitioned checkpoint is being shipped. The ship stage's deadline must
  // convert the lost transfer into an abort, the plan's compensations must
  // roll the query back to its old shape (level-2 audit watching: no leaked
  // VM, checkpoints resumed, routes restored), and a later retry must
  // converge once a fresh backup exists.
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 1000;
  wc.words_per_sentence = 1;
  wc.vocabulary = 4096;
  wc.counter_cost_us = 100;
  wc.seed = 23;
  wc.window = SecondsToSim(30);

  sps::SpsConfig config = BaseConfig(runtime::TransportKind::kTcp);
  config.cluster.checkpoint_interval = SecondsToSim(2);
  config.cluster.audit_level = verify::kAuditExpensive;
  // ~100KB of counter state at 0.05 simulated s/KB: the ship stage spans
  // several seconds, so a kill 1s into the scale-out lands inside it.
  config.cluster.serialize_cost_us_per_kb = 5e4;
  config.cluster.pool.grant_delay = MillisToSim(100);
  config.coordinator.ship_deadline = SecondsToSim(30);

  WordCountQuery query = BuildWordCountQuery(wc);
  const OperatorId counter = query.counter;
  sps::Sps sps(std::move(query.graph), config);
  std::vector<std::string> audit_entries;
  sps.cluster().audit()->SetHandler([&audit_entries](
                                        const verify::Violation& v) {
    audit_entries.push_back(v.invariant + ": " + v.detail);
  });
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(10);

  const InstanceId target = sps.cluster().LiveInstancesOf(counter).at(0);
  const auto* backup = sps.cluster().backups()->Find(target);
  ASSERT_NE(backup, nullptr);
  const VmId holder_vm = sps.cluster().GetInstance(backup->holder)->vm();

  bool done = false;
  Status result;
  control::ScaleOutCoordinator::Callbacks callbacks;
  callbacks.on_done = [&](Status s) {
    done = true;
    result = std::move(s);
  };
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(callbacks));
  sps.cluster().simulation()->Schedule(SecondsToSim(1), [&sps, holder_vm] {
    (void)sps.cluster().membership()->KillVm(holder_vm);
  });
  sps.RunUntil(60);

  // The plan aborted in its ship stage; the compensations restored the old
  // parallelism.
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsUnavailable());
  const runtime::ReconfigPlanEvent* aborted = nullptr;
  for (const auto& plan : sps.metrics().reconfig_plans) {
    if (plan.aborted) aborted = &plan;
  }
  ASSERT_NE(aborted, nullptr);
  ASSERT_FALSE(aborted->stages.empty());
  EXPECT_STREQ(aborted->stages.back().stage, "ship");
  EXPECT_EQ(sps.ParallelismOf(counter), 1u);
  if (auto* tcp =
          dynamic_cast<runtime::TcpTransport*>(sps.cluster().transport())) {
    EXPECT_GE(tcp->disconnects_observed(), 1u);
  }

  // The holder's own recovery plus the resumed checkpoint schedule yield a
  // fresh backup; the retry converges.
  sps.RunUntil(150);
  ASSERT_TRUE(sps.cluster().backups()->Has(target));
  bool retry_done = false;
  Status retry;
  control::ScaleOutCoordinator::Callbacks retry_callbacks;
  retry_callbacks.on_done = [&](Status s) {
    retry_done = true;
    retry = std::move(s);
  };
  sps.scale_out_coordinator().ScaleOutInstance(target, 2, false,
                                               std::move(retry_callbacks));
  sps.RunFor(60);
  ASSERT_TRUE(retry_done);
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);

  for (const auto& v : audit_entries) ADD_FAILURE() << "audit: " << v;
  EXPECT_EQ(sps.cluster().audit()->violations(), 0u);
}

TEST(TcpTransportIntegration, ScaleOutPreservesResultsOverTcp) {
  const WordCountConfig wc = BaseWorkload();
  RunOutcome baseline =
      RunQuery(wc, BaseConfig(runtime::TransportKind::kSim), 150);
  RunOutcome scaled = RunQuery(
      wc, BaseConfig(runtime::TransportKind::kTcp), 150,
      [](sps::Sps& sps) { sps.RequestScaleOut(/*op=*/2, /*at_seconds=*/47); });

  const auto expected = StableWindows(baseline.counts, 3);
  const auto actual = StableWindows(scaled.counts, 3);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
}

}  // namespace
}  // namespace seep
