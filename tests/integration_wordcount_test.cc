// End-to-end integration tests on the windowed word frequency query
// (paper §6.2's workload): correctness of normal processing, exactness of
// recovery via state management, and exactness of dynamic scale out.

#include <gtest/gtest.h>

#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

sps::SpsConfig BaseConfig() {
  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.pool.target_size = 3;
  config.scaling.enabled = false;  // controlled experiments
  return config;
}

WordCountConfig BaseWorkload() {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 100;
  wc.vocabulary = 200;
  wc.window = SecondsToSim(30);
  wc.seed = 17;
  return wc;
}

// Runs the query for `seconds` with optional fault/scale actions and
// returns the per-(window, word) counts seen at the sink.
struct RunOutcome {
  std::map<std::pair<int64_t, std::string>, int64_t> counts;
  uint64_t duplicates = 0;
  uint64_t recoveries_completed = 0;
  double recovery_seconds = -1;
};

RunOutcome RunQuery(const WordCountConfig& wc, const sps::SpsConfig& config,
               double seconds,
               const std::function<void(sps::Sps&)>& actions = nullptr) {
  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  EXPECT_TRUE(sps.Deploy().ok());
  if (actions) actions(sps);
  sps.RunFor(seconds);

  RunOutcome outcome;
  outcome.counts = results->counts;
  outcome.duplicates = sps.metrics().duplicates_dropped;
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) {
      ++outcome.recoveries_completed;
      outcome.recovery_seconds = r.RecoverySeconds();
    }
  }
  return outcome;
}

// Restricts counts to windows that are fully closed and flushed by `t_end`.
std::map<std::pair<int64_t, std::string>, int64_t> StableWindows(
    const std::map<std::pair<int64_t, std::string>, int64_t>& counts,
    int64_t max_window) {
  std::map<std::pair<int64_t, std::string>, int64_t> out;
  for (const auto& [key, value] : counts) {
    if (key.first <= max_window) out[key] = value;
  }
  return out;
}

TEST(WordCountIntegration, CountsMatchGeneratedWords) {
  WordCountConfig wc = BaseWorkload();
  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), BaseConfig());
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(95);

  // Every sentence contributes exactly words_per_sentence words; the
  // per-second source counters tell us how many sentences fell in window 0.
  const auto rates = sps.metrics().source_tuples.RatesPerSecond();
  double sentences_window0 = 0;
  for (const auto& point : rates) {
    if (point.time < SecondsToSim(30)) {
      sentences_window0 += point.value;
    }
  }
  int64_t counted_window0 = 0;
  for (const auto& [key, count] : results->counts) {
    if (key.first == 0) counted_window0 += count;
  }
  EXPECT_EQ(counted_window0,
            static_cast<int64_t>(sentences_window0) *
                static_cast<int64_t>(wc.words_per_sentence));
  EXPECT_GT(results->counts.size(), 0u);
}

TEST(WordCountIntegration, RecoveryPreservesResultsExactly) {
  WordCountConfig wc = BaseWorkload();
  const sps::SpsConfig config = BaseConfig();

  RunOutcome baseline = RunQuery(wc, config, 150);
  RunOutcome with_failure =
      RunQuery(wc, config, 150, [](sps::Sps& sps) {
        // Kill the stateful counter mid-window, well after checkpoints
        // exist.
        sps.InjectFailure(/*counter op id=*/2, /*at_seconds=*/47);
      });

  EXPECT_EQ(with_failure.recoveries_completed, 1u);
  EXPECT_GT(with_failure.recovery_seconds, 0);
  // All windows closed well before the end are identical to the
  // failure-free run: recovery via checkpoint + replay is exact.
  const auto expected = StableWindows(baseline.counts, 3);
  const auto actual = StableWindows(with_failure.counts, 3);
  EXPECT_EQ(expected, actual);
  // Duplicate filtering did real work during replay.
  EXPECT_GT(with_failure.duplicates, 0u);
}

TEST(WordCountIntegration, ScaleOutPreservesResultsExactly) {
  WordCountConfig wc = BaseWorkload();
  const sps::SpsConfig config = BaseConfig();

  RunOutcome baseline = RunQuery(wc, config, 150);
  RunOutcome with_scale_out =
      RunQuery(wc, config, 150, [](sps::Sps& sps) {
        sps.RequestScaleOut(/*counter op id=*/2, /*at_seconds=*/47);
      });

  const auto expected = StableWindows(baseline.counts, 3);
  const auto actual = StableWindows(with_scale_out.counts, 3);
  EXPECT_EQ(expected, actual);
}

TEST(WordCountIntegration, ScaleOutThenScaleInPreservesResults) {
  WordCountConfig wc = BaseWorkload();
  const sps::SpsConfig config = BaseConfig();

  RunOutcome baseline = RunQuery(wc, config, 180);
  RunOutcome elastic = RunQuery(wc, config, 180, [](sps::Sps& sps) {
    sps.RequestScaleOut(2, 40);
    sps.RequestScaleIn(2, 100);
  });

  const auto expected = StableWindows(baseline.counts, 4);
  const auto actual = StableWindows(elastic.counts, 4);
  EXPECT_EQ(expected, actual);
}

TEST(WordCountIntegration, DeterministicAcrossRuns) {
  WordCountConfig wc = BaseWorkload();
  const sps::SpsConfig config = BaseConfig();
  RunOutcome a = RunQuery(wc, config, 100);
  RunOutcome b = RunQuery(wc, config, 100);
  EXPECT_EQ(a.counts, b.counts);
}

}  // namespace
}  // namespace seep
