// Unit and property tests for the binary serialisation layer: encoder and
// decoder roundtrips, varint edge cases, CRC32C vectors and frame integrity.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/rng.h"
#include "serde/block_codec.h"
#include "serde/crc32c.h"
#include "serde/decoder.h"
#include "serde/encoder.h"
#include "serde/frame.h"

namespace seep::serde {
namespace {

TEST(EncoderDecoderTest, FixedWidthRoundtrip) {
  Encoder enc;
  enc.AppendU8(0xAB);
  enc.AppendFixed32(0xDEADBEEF);
  enc.AppendFixed64(0x0123456789ABCDEFull);
  enc.AppendDouble(3.14159);

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.ReadU8().value(), 0xAB);
  EXPECT_EQ(dec.ReadFixed32().value(), 0xDEADBEEF);
  EXPECT_EQ(dec.ReadFixed64().value(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(dec.ReadDouble().value(), 3.14159);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(EncoderDecoderTest, VarintBoundaries) {
  const uint64_t cases[] = {0,       1,        127,        128,
                            16383,   16384,    (1ull << 32) - 1,
                            1ull << 32, UINT64_MAX};
  Encoder enc;
  for (uint64_t v : cases) enc.AppendVarint64(v);
  Decoder dec(enc.buffer());
  for (uint64_t v : cases) EXPECT_EQ(dec.ReadVarint64().value(), v);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(EncoderDecoderTest, SignedVarintBoundaries) {
  const int64_t cases[] = {0,  1,  -1, 63, -64, 64, -65,
                           INT64_MAX, INT64_MIN, -123456789};
  Encoder enc;
  for (int64_t v : cases) enc.AppendVarintSigned64(v);
  Decoder dec(enc.buffer());
  for (int64_t v : cases) EXPECT_EQ(dec.ReadVarintSigned64().value(), v);
}

TEST(EncoderDecoderTest, SmallMagnitudesEncodeSmall) {
  Encoder enc;
  enc.AppendVarintSigned64(-1);
  EXPECT_EQ(enc.size(), 1u);  // zigzag: -1 -> 1
}

TEST(EncoderDecoderTest, StringRoundtrip) {
  Encoder enc;
  enc.AppendString("");
  enc.AppendString("hello");
  enc.AppendString(std::string(1000, 'x'));
  std::string with_nul("a\0b", 3);
  enc.AppendString(with_nul);

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.ReadString().value(), "");
  EXPECT_EQ(dec.ReadString().value(), "hello");
  EXPECT_EQ(dec.ReadString().value(), std::string(1000, 'x'));
  EXPECT_EQ(dec.ReadString().value(), with_nul);
}

TEST(DecoderTest, TruncatedInputsReportCorruption) {
  Encoder enc;
  enc.AppendFixed64(42);
  // Chop one byte off: the read must fail cleanly.
  std::vector<uint8_t> chopped(enc.buffer().begin(), enc.buffer().end() - 1);
  Decoder dec(chopped);
  auto r = dec.ReadFixed64();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(DecoderTest, TruncatedStringBody) {
  Encoder enc;
  enc.AppendVarint64(100);  // claims 100 bytes follow
  enc.AppendRaw("short", 5);
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.ReadString().ok());
}

TEST(DecoderTest, OverlongVarintRejected) {
  std::vector<uint8_t> bad(11, 0x80);  // never terminates within 64 bits
  Decoder dec(bad);
  auto r = dec.ReadVarint64();
  ASSERT_FALSE(r.ok());
}

// Property sweep: random value sequences roundtrip exactly.
class SerdeRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeRoundtripTest, RandomSequenceRoundtrips) {
  Rng rng(GetParam());
  Encoder enc;
  std::vector<int64_t> signed_values;
  std::vector<uint64_t> unsigned_values;
  std::vector<std::string> strings;
  for (int i = 0; i < 200; ++i) {
    const int64_t sv = static_cast<int64_t>(rng.Next()) >>
                       (rng.NextBounded(63));
    const uint64_t uv = rng.Next() >> rng.NextBounded(63);
    std::string s(rng.NextBounded(50), 'a' + char(rng.NextBounded(26)));
    signed_values.push_back(sv);
    unsigned_values.push_back(uv);
    strings.push_back(s);
    enc.AppendVarintSigned64(sv);
    enc.AppendVarint64(uv);
    enc.AppendString(s);
  }
  Decoder dec(enc.buffer());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(dec.ReadVarintSigned64().value(), signed_values[i]);
    EXPECT_EQ(dec.ReadVarint64().value(), unsigned_values[i]);
    EXPECT_EQ(dec.ReadString().value(), strings[i]);
  }
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeRoundtripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------------------------- CRC32C

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // "123456789" -> 0xE3069283 (standard check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  const size_t n = strlen(data);
  const uint32_t oneshot = Crc32c(data, n);
  const uint32_t first = Crc32c(data, 10);
  const uint32_t incremental = Crc32c(data + 10, n - 10, first);
  EXPECT_EQ(oneshot, incremental);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(100, 0x5A);
  const uint32_t good = Crc32c(data.data(), data.size());
  data[50] ^= 1;
  EXPECT_NE(good, Crc32c(data.data(), data.size()));
}

// -------------------------------------------------------------------- Frame

TEST(FrameTest, Roundtrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto frame = FramePayload(payload);
  auto back = UnframePayload(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

TEST(FrameTest, EmptyPayload) {
  auto frame = FramePayload({});
  auto back = UnframePayload(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(FrameTest, CorruptedPayloadRejected) {
  auto frame = FramePayload({10, 20, 30, 40});
  frame.back() ^= 0xFF;
  auto back = UnframePayload(frame);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(FrameTest, LengthMismatchRejected) {
  auto frame = FramePayload({10, 20, 30, 40});
  frame.pop_back();
  EXPECT_FALSE(UnframePayload(frame).ok());
}

TEST(FrameTest, TruncationAtEveryBoundaryRejected) {
  const auto frame = FramePayload({1, 2, 3, 4, 5, 6, 7});
  // Every strict prefix of the frame — mid-length, mid-crc, mid-payload —
  // must be rejected, never crash or mis-parse.
  for (size_t len = 0; len < frame.size(); ++len) {
    const std::vector<uint8_t> cut(frame.begin(), frame.begin() + len);
    auto back = UnframePayload(cut);
    ASSERT_FALSE(back.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_TRUE(back.status().IsCorruption());
  }
}

TEST(FrameTest, OversizedLengthRejectedBeforeAllocation) {
  auto frame = FramePayload({1, 2, 3});
  // Corrupt the length prefix to claim an absurd payload (high bit set in
  // the u64): the parse must fail on the declared length alone — if it
  // tried to allocate or read that many bytes, this test would OOM/crash.
  frame[7] = 0xFF;
  auto back = UnframePayload(frame);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(FrameTest, ConfigurableMaxPayloadEnforced) {
  const std::vector<uint8_t> payload(1024, 0x5A);
  const auto frame = FramePayload(payload);
  EXPECT_TRUE(UnframePayload(frame, /*max_payload=*/1024).ok());
  auto back = UnframePayload(frame, /*max_payload=*/1023);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(FrameTest, EveryBitFlipCaught) {
  const auto frame = FramePayload({0xDE, 0xAD, 0xBE, 0xEF});
  // Flip each bit of the frame in turn; every corrupted frame must be
  // rejected (length flips fail the size checks, payload flips fail the
  // crc32c 100% at Hamming distance 1, crc flips fail the compare).
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<uint8_t> damaged = frame;
    damaged[bit / 8] ^= uint8_t(1u << (bit % 8));
    EXPECT_FALSE(UnframePayload(damaged).ok())
        << "bit " << bit << " flip went undetected";
  }
}

TEST(FrameTest, ReadFrameHeaderTruncatedAndOversized) {
  const auto frame = FramePayload({9, 9, 9});
  auto header =
      ReadFrameHeader(frame.data(), frame.size(), kDefaultMaxFramePayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().payload_len, 3u);
  EXPECT_FALSE(ReadFrameHeader(frame.data(), kFrameHeaderBytes - 1,
                               kDefaultMaxFramePayload)
                   .ok());
  EXPECT_FALSE(ReadFrameHeader(frame.data(), frame.size(), 2).ok());
}

// ------------------------------------------------------------ block codec

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& input) {
  const std::vector<uint8_t> packed = BlockCompress(input);
  auto back = BlockDecompress(packed, input.size());
  EXPECT_TRUE(back.ok());
  return back.ok() ? back.value() : std::vector<uint8_t>{};
}

TEST(BlockCodecTest, EmptyAndTinyInputsRoundTrip) {
  EXPECT_EQ(RoundTrip({}), std::vector<uint8_t>{});
  EXPECT_EQ(RoundTrip({42}), std::vector<uint8_t>{42});
  const std::vector<uint8_t> few = {1, 2, 3, 4, 5};
  EXPECT_EQ(RoundTrip(few), few);
}

TEST(BlockCodecTest, RepetitiveInputCompressesAndRoundTrips) {
  // Checkpoint-shaped data: repeated key/value runs.
  std::vector<uint8_t> input;
  for (int i = 0; i < 500; ++i) {
    const char* word = (i % 3 == 0) ? "window-count" : "word-count-value";
    input.insert(input.end(), word, word + strlen(word));
    input.push_back(static_cast<uint8_t>(i));
  }
  const std::vector<uint8_t> packed = BlockCompress(input);
  EXPECT_LT(packed.size(), input.size() / 2);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(BlockCodecTest, LongSelfOverlappingRunRoundTrips) {
  // A run of one byte forces matches whose source overlaps the output being
  // written — the copy must proceed byte-by-byte semantically.
  std::vector<uint8_t> input(100000, 0xAB);
  const std::vector<uint8_t> packed = BlockCompress(input);
  EXPECT_LT(packed.size(), input.size() / 50);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(BlockCodecTest, IncompressibleInputRoundTripsAndCallerKeepsRaw) {
  Rng rng(99);
  std::vector<uint8_t> input(4096);
  for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
  const std::vector<uint8_t> packed = BlockCompress(input);
  // Random bytes do not compress; the pipeline ships the raw payload when
  // the stream is not smaller, so only correctness matters here.
  EXPECT_EQ(RoundTrip(input), input);
  EXPECT_GE(packed.size(), input.size() * 9 / 10);
}

TEST(BlockCodecTest, DeclaredSizeAboveMaxOutputRejected) {
  const std::vector<uint8_t> input(1024, 7);
  const std::vector<uint8_t> packed = BlockCompress(input);
  EXPECT_TRUE(BlockDecompress(packed, 1024).ok());
  auto back = BlockDecompress(packed, 1023);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(BlockCodecTest, TruncationAtEveryBoundarySafe) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 64; ++i) {
    input.insert(input.end(), {1, 2, 3, 4, static_cast<uint8_t>(i)});
  }
  const std::vector<uint8_t> packed = BlockCompress(input);
  for (size_t len = 0; len < packed.size(); ++len) {
    const std::vector<uint8_t> cut(packed.begin(), packed.begin() + len);
    // A strict prefix must never produce the declared output; it either
    // fails cleanly or (for a cut inside the final literal run) never
    // reaches full size. It must not crash or read out of bounds.
    auto back = BlockDecompress(cut, input.size());
    if (back.ok()) {
      EXPECT_LT(back.value().size(), input.size()) << "cut at " << len;
    }
  }
}

TEST(BlockCodecTest, CorruptedStreamsNeverCrash) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 200; ++i) {
    input.insert(input.end(), {9, 8, 7, static_cast<uint8_t>(i % 11)});
  }
  const std::vector<uint8_t> packed = BlockCompress(input);
  for (size_t bit = 0; bit < packed.size() * 8; ++bit) {
    std::vector<uint8_t> damaged = packed;
    damaged[bit / 8] ^= uint8_t(1u << (bit % 8));
    // Any outcome but a crash/overrun is acceptable: the pipeline's crc32c
    // frame catches corruption; the codec only has to stay memory-safe.
    auto back = BlockDecompress(damaged, input.size());
    (void)back;
  }
}

TEST(BlockCodecTest, RandomStructuredInputsRoundTripExactly) {
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    std::vector<uint8_t> input;
    const size_t pieces = 1 + rng.Next() % 40;
    for (size_t p = 0; p < pieces; ++p) {
      if (rng.Next() % 2 == 0) {
        // A run: compressible.
        input.insert(input.end(), rng.Next() % 300,
                     static_cast<uint8_t>(rng.Next()));
      } else {
        // Random bytes: literals.
        const size_t n = rng.Next() % 100;
        for (size_t i = 0; i < n; ++i) {
          input.push_back(static_cast<uint8_t>(rng.Next()));
        }
      }
    }
    EXPECT_EQ(RoundTrip(input), input) << "round " << round;
  }
}

}  // namespace
}  // namespace seep::serde
