// Unit and property tests for the paper's state model (§3.1) and the
// partition/merge primitives (Algorithm 2 and the §3.3 merge extension).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/key_range.h"
#include "core/state.h"
#include "core/state_ops.h"

namespace seep::core {
namespace {

// ---------------------------------------------------------------- KeyRange

TEST(KeyRangeTest, FullRangeContainsEverything) {
  const KeyRange full = KeyRange::Full();
  EXPECT_TRUE(full.Contains(0));
  EXPECT_TRUE(full.Contains(UINT64_MAX));
  EXPECT_TRUE(full.Contains(1ull << 63));
}

TEST(KeyRangeTest, SplitOneIsIdentity) {
  const KeyRange r{100, 200};
  const auto parts = r.SplitEven(1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], r);
}

class KeyRangeSplitTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KeyRangeSplitTest, SplitCoversExactlyWithoutOverlap) {
  const uint32_t n = GetParam();
  const KeyRange full = KeyRange::Full();
  const auto parts = full.SplitEven(n);
  ASSERT_EQ(parts.size(), n);
  EXPECT_EQ(parts.front().lo, full.lo);
  EXPECT_EQ(parts.back().hi, full.hi);
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i - 1].hi + 1, parts[i].lo) << "gap or overlap at " << i;
  }
  // Every part is non-empty and parts are balanced within one key.
  for (const auto& p : parts) EXPECT_LE(p.lo, p.hi);
}

INSTANTIATE_TEST_SUITE_P(Counts, KeyRangeSplitTest,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 16, 64, 100));

TEST(KeyRangeTest, SplitAssignsEveryKeyToExactlyOnePart) {
  Rng rng(77);
  const auto parts = KeyRange::Full().SplitEven(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.Next();
    int owners = 0;
    for (const auto& p : parts) owners += p.Contains(key);
    EXPECT_EQ(owners, 1);
  }
}

TEST(KeyRangeTest, MergeAdjacentInvertsSplit) {
  const KeyRange r{1000, 99999};
  const auto parts = r.SplitEven(2);
  EXPECT_EQ(KeyRange::MergeAdjacent(parts[0], parts[1]), r);
}

// --------------------------------------------------------- ProcessingState

TEST(ProcessingStateTest, FilterByRangePartitionsEntries) {
  ProcessingState state;
  state.Add(10, "a");
  state.Add(1ull << 63, "b");
  state.Add(UINT64_MAX, "c");
  const auto parts = KeyRange::Full().SplitEven(2);
  const ProcessingState lo = state.FilterByRange(parts[0]);
  const ProcessingState hi = state.FilterByRange(parts[1]);
  EXPECT_EQ(lo.size(), 1u);
  EXPECT_EQ(hi.size(), 2u);
  EXPECT_EQ(lo.size() + hi.size(), state.size());
}

TEST(ProcessingStateTest, ByteSizeTracksContent) {
  ProcessingState state;
  EXPECT_EQ(state.ByteSize(), 0u);
  state.Add(1, std::string(100, 'x'));
  EXPECT_GE(state.ByteSize(), 100u);
}

TEST(ProcessingStateTest, SerdeRoundtrip) {
  ProcessingState state;
  state.Add(42, "hello");
  state.Add(43, std::string("\0\1\2", 3));
  serde::Encoder enc;
  state.Encode(&enc);
  serde::Decoder dec(enc.buffer());
  auto back = ProcessingState::Decode(&dec);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value().entries()[0].second, "hello");
  EXPECT_EQ(back.value().entries()[1].second, std::string("\0\1\2", 3));
}

// ----------------------------------------------------------- InputPositions

TEST(InputPositionsTest, AdvanceDetectsDuplicates) {
  InputPositions pos;
  EXPECT_TRUE(pos.Advance(1, 10));
  EXPECT_FALSE(pos.Advance(1, 10));  // duplicate
  EXPECT_FALSE(pos.Advance(1, 5));   // older duplicate
  EXPECT_TRUE(pos.Advance(1, 11));
  EXPECT_TRUE(pos.Advance(2, 1));  // independent origin
  EXPECT_EQ(pos.Get(1), 11);
  EXPECT_EQ(pos.Get(99), -1);
}

TEST(InputPositionsTest, BoundsCombine) {
  InputPositions a, b;
  a.Set(1, 10);
  a.Set(2, 5);
  b.Set(1, 7);
  b.Set(3, 9);
  InputPositions lower = a;
  lower.LowerBoundWith(b);
  EXPECT_EQ(lower.Get(1), 7);
  EXPECT_EQ(lower.Get(2), 5);
  EXPECT_EQ(lower.Get(3), 9);
  InputPositions upper = a;
  upper.UpperBoundWith(b);
  EXPECT_EQ(upper.Get(1), 10);
}

// -------------------------------------------------------------- BufferState

Tuple MakeTuple(int64_t ts, KeyHash key, SimTime event_time = 0) {
  Tuple t;
  t.timestamp = ts;
  t.key = key;
  t.event_time = event_time;
  return t;
}

TEST(BufferStateTest, TrimDropsPrefixByTimestamp) {
  BufferState buffer;
  for (int64_t ts = 1; ts <= 10; ++ts) buffer.Append(5, MakeTuple(ts, 0));
  EXPECT_EQ(buffer.Trim(5, 4), 4u);
  ASSERT_NE(buffer.Get(5), nullptr);
  EXPECT_EQ(buffer.Get(5)->size(), 6u);
  EXPECT_EQ(buffer.Get(5)->front().timestamp, 5);
  EXPECT_EQ(buffer.Trim(5, 0), 0u);
  EXPECT_EQ(buffer.Trim(99, 100), 0u);  // unknown downstream
}

TEST(BufferStateTest, TrimByEventTime) {
  BufferState buffer;
  for (int64_t i = 0; i < 10; ++i) {
    buffer.Append(1, MakeTuple(i, 0, i * kMicrosPerSecond));
  }
  EXPECT_EQ(buffer.TrimByEventTime(5 * kMicrosPerSecond), 5u);
  EXPECT_EQ(buffer.TotalTuples(), 5u);
}

TEST(BufferStateTest, SerdeRoundtrip) {
  BufferState buffer;
  Tuple t = MakeTuple(7, 42, 123);
  t.text = "payload";
  t.origin = 9;
  buffer.Append(3, t);
  serde::Encoder enc;
  buffer.Encode(&enc);
  serde::Decoder dec(enc.buffer());
  auto back = BufferState::Decode(&dec);
  ASSERT_TRUE(back.ok());
  ASSERT_NE(back.value().Get(3), nullptr);
  EXPECT_EQ(back.value().Get(3)->front().text, "payload");
  EXPECT_EQ(back.value().Get(3)->front().origin, 9u);
}

// ------------------------------------------------------------- RoutingState

TEST(RoutingStateTest, RoutesByKeyInterval) {
  RoutingState routing;
  const auto parts = KeyRange::Full().SplitEven(2);
  routing.SetRoutes(7, {{parts[0], 100}, {parts[1], 101}});
  EXPECT_EQ(routing.RouteKey(7, 0), 100u);
  EXPECT_EQ(routing.RouteKey(7, UINT64_MAX), 101u);
  EXPECT_EQ(routing.RouteKey(8, 0), kInvalidInstance);
}

TEST(RoutingStateTest, ReplacingRoutesTakesEffect) {
  RoutingState routing;
  routing.SetRoutes(1, {{KeyRange::Full(), 10}});
  EXPECT_EQ(routing.RouteKey(1, 5), 10u);
  routing.SetRoutes(1, {{KeyRange::Full(), 20}});
  EXPECT_EQ(routing.RouteKey(1, 5), 20u);
}

// --------------------------------------------------------- StateCheckpoint

StateCheckpoint MakeCheckpoint(uint64_t seed, size_t entries) {
  Rng rng(seed);
  StateCheckpoint c;
  c.op = 3;
  c.instance = 12;
  c.origin = 99;
  c.out_clock = 1234;
  c.seq = 5;
  c.taken_at = SecondsToSim(10);
  c.positions.Set(1, 100);
  c.positions.Set(2, 200);
  for (size_t i = 0; i < entries; ++i) {
    c.processing.Add(rng.Next(), "value-" + std::to_string(i));
  }
  Tuple t = MakeTuple(1000, rng.Next());
  t.origin = 99;
  c.buffer.Append(4, t);
  return c;
}

TEST(StateCheckpointTest, WireRoundtripPreservesEverything) {
  const StateCheckpoint c = MakeCheckpoint(1, 50);
  const auto raw = c.Serialize();
  auto back = StateCheckpoint::Deserialize(raw);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, c.op);
  EXPECT_EQ(back->instance, c.instance);
  EXPECT_EQ(back->origin, c.origin);
  EXPECT_EQ(back->out_clock, c.out_clock);
  EXPECT_EQ(back->seq, c.seq);
  EXPECT_EQ(back->positions.Get(1), 100);
  EXPECT_EQ(back->processing.size(), 50u);
  EXPECT_EQ(back->buffer.TotalTuples(), 1u);
}

TEST(StateCheckpointTest, CorruptedWireRejected) {
  auto raw = MakeCheckpoint(2, 10).Serialize();
  raw[raw.size() / 2] ^= 0x80;
  EXPECT_FALSE(StateCheckpoint::Deserialize(raw).ok());
}

// ------------------------------------------------ Partition/Merge (Alg. 2)

TEST(StateOpsTest, ChooseBackupIsDeterministicAndInRange) {
  const std::vector<InstanceId> upstream = {5, 6, 7};
  const InstanceId chosen = ChooseBackupInstance(42, upstream);
  EXPECT_EQ(chosen, ChooseBackupInstance(42, upstream));
  EXPECT_TRUE(std::find(upstream.begin(), upstream.end(), chosen) !=
              upstream.end());
}

TEST(StateOpsTest, ChooseBackupSpreadsLoad) {
  const std::vector<InstanceId> upstream = {1, 2, 3, 4};
  std::map<InstanceId, int> counts;
  for (InstanceId owner = 0; owner < 400; ++owner) {
    ++counts[ChooseBackupInstance(owner, upstream)];
  }
  for (const auto& [holder, n] : counts) {
    EXPECT_GT(n, 50) << "holder " << holder << " underloaded";
  }
}

class PartitionCheckpointTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionCheckpointTest, PartitionPreservesEveryEntryExactlyOnce) {
  const uint32_t pi = GetParam();
  const StateCheckpoint c = MakeCheckpoint(3, 500);
  auto parts = PartitionCheckpoint(c, pi);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), pi);

  size_t total_entries = 0;
  size_t total_buffer = 0;
  for (uint32_t i = 0; i < pi; ++i) {
    const StateCheckpoint& part = (*parts)[i];
    total_entries += part.processing.size();
    total_buffer += part.buffer.TotalTuples();
    // Algorithm 2 line 6: positions copied to every partition.
    EXPECT_EQ(part.positions.Get(1), c.positions.Get(1));
    // Every entry lies in its partition's range.
    for (const auto& [key, value] : part.processing.entries()) {
      EXPECT_TRUE(part.key_range.Contains(key));
    }
  }
  EXPECT_EQ(total_entries, c.processing.size());
  // Algorithm 2 line 7: buffer state goes to the first partition only,
  // which also inherits the parent's stream identity.
  EXPECT_EQ(total_buffer, c.buffer.TotalTuples());
  EXPECT_EQ((*parts)[0].buffer.TotalTuples(), c.buffer.TotalTuples());
  EXPECT_EQ((*parts)[0].origin, c.origin);
  EXPECT_EQ((*parts)[0].out_clock, c.out_clock);
  if (pi > 1) {
    EXPECT_EQ((*parts)[1].origin, kInvalidOrigin);
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, PartitionCheckpointTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(StateOpsTest, PartitionThenMergeIsIdentityOnState) {
  const StateCheckpoint c = MakeCheckpoint(4, 300);
  auto parts = PartitionCheckpoint(c, 4);
  ASSERT_TRUE(parts.ok());
  auto merged = MergeCheckpoints(*parts);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->key_range, c.key_range);
  EXPECT_EQ(merged->processing.size(), c.processing.size());
  EXPECT_EQ(merged->positions.Get(1), c.positions.Get(1));
  EXPECT_EQ(merged->positions.Get(2), c.positions.Get(2));
  EXPECT_EQ(merged->buffer.TotalTuples(), c.buffer.TotalTuples());
  // Entry multisets match.
  auto key_of = [](const auto& e) { return e.first; };
  std::multiset<KeyHash> original, roundtrip;
  for (const auto& e : c.processing.entries()) original.insert(key_of(e));
  for (const auto& e : merged->processing.entries()) {
    roundtrip.insert(key_of(e));
  }
  EXPECT_EQ(original, roundtrip);
}

TEST(StateOpsTest, PartitionRejectsBadArguments) {
  const StateCheckpoint c = MakeCheckpoint(5, 10);
  EXPECT_FALSE(PartitionCheckpoint(c, 0).ok());
  // Ranges not spanning the checkpoint range.
  EXPECT_FALSE(
      PartitionCheckpointByRanges(c, {{0, 1000}}).ok());
  // Non-contiguous ranges.
  EXPECT_FALSE(PartitionCheckpointByRanges(
                   c, {{0, 10}, {12, UINT64_MAX}})
                   .ok());
}

TEST(StateOpsTest, BalancedSplitEqualisesEntryCounts) {
  // Entries concentrated in the lowest 1% of the key space: an even split
  // would put everything in partition 0.
  Rng rng(8);
  StateCheckpoint c;
  for (int i = 0; i < 4000; ++i) {
    c.processing.Add(rng.Next() >> 7, "v");  // keys in [0, 2^57)
  }
  const auto ranges = BalancedSplitRanges(c, 4);
  ASSERT_EQ(ranges.size(), 4u);
  // Coverage invariants hold.
  EXPECT_EQ(ranges.front().lo, 0u);
  EXPECT_EQ(ranges.back().hi, UINT64_MAX);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].hi + 1, ranges[i].lo);
  }
  // Each partition holds roughly a quarter of the entries.
  auto parts = PartitionCheckpointByRanges(c, ranges);
  ASSERT_TRUE(parts.ok());
  for (const auto& part : *parts) {
    EXPECT_NEAR(static_cast<double>(part.processing.size()), 1000, 10);
  }
  // The even split, by contrast, is pathological here.
  auto even = PartitionCheckpoint(c, 4);
  ASSERT_TRUE(even.ok());
  EXPECT_EQ((*even)[0].processing.size(), 4000u);
}

TEST(StateOpsTest, BalancedSplitFallsBackOnSparseState) {
  StateCheckpoint c;
  c.processing.Add(1, "only");
  const auto ranges = BalancedSplitRanges(c, 4);
  EXPECT_EQ(ranges, KeyRange::Full().SplitEven(4));
}

TEST(StateOpsTest, BalancedSplitRespectsSubrange) {
  Rng rng(9);
  StateCheckpoint c;
  c.key_range = {1000, 2000000};
  for (int i = 0; i < 1000; ++i) {
    c.processing.Add(1000 + rng.NextBounded(1999000), "v");
  }
  const auto ranges = BalancedSplitRanges(c, 2);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges.front().lo, c.key_range.lo);
  EXPECT_EQ(ranges.back().hi, c.key_range.hi);
}

TEST(StateOpsTest, MergeRejectsNonAdjacent) {
  StateCheckpoint a = MakeCheckpoint(6, 10);
  StateCheckpoint b = MakeCheckpoint(7, 10);
  a.key_range = {0, 10};
  b.key_range = {20, 30};
  EXPECT_FALSE(MergeCheckpoints({a, b}).ok());
  b.op = 99;
  b.key_range = {11, 30};
  EXPECT_FALSE(MergeCheckpoints({a, b}).ok());  // different operator
  EXPECT_FALSE(MergeCheckpoints({}).ok());
}

}  // namespace
}  // namespace seep::core
