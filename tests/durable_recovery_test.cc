// End-to-end durability tests: with the checkpoint log attached (kDisk /
// kTiered), a correlated failure that kills both the operator AND its
// backup holder still recovers exactly-once from the on-disk record — the
// scenario the paper's in-memory upstream backup (kMemory) cannot survive.
// Runs at audit level 2, so any protocol or durable-log invariant violation
// aborts the test.

#include <gtest/gtest.h>

#include <filesystem>

#include "runtime/operator_instance.h"
#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

using runtime::BackupDurability;
using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

struct Outcome {
  std::map<std::pair<int64_t, std::string>, int64_t> counts;
  double recovery_seconds = -1;
  uint64_t durable_appends = 0;
  uint64_t durable_reads = 0;
  bool recovery_scan_torn = false;
};

/// Runs wordcount and, at `fail_at`, crash-stops the VM of the counter
/// instance AND the VM of whichever upstream instance holds its backup —
/// the correlated owner+holder failure.
Outcome RunCorrelatedFailure(BackupDurability durability, double fail_at,
                             double total = 150) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 200;
  wc.vocabulary = 300;
  wc.seed = 99;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.buffer_window = SecondsToSim(35);
  config.cluster.backup_durability = durability;
  config.cluster.audit_level = 2;
  config.scaling.enabled = false;

  WordCountQuery query = BuildWordCountQuery(wc);
  const OperatorId counter = query.counter;
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  EXPECT_TRUE(sps.Deploy().ok());

  runtime::Cluster& cluster = sps.cluster();
  cluster.simulation()->ScheduleAt(
      SecondsToSim(fail_at), [&cluster, counter]() {
        const auto live = cluster.LiveInstancesOf(counter);
        ASSERT_FALSE(live.empty());
        const InstanceId owner = live.front();
        const InstanceId holder = cluster.backups()->HolderOf(owner);
        const auto* h = cluster.GetInstance(holder);
        ASSERT_NE(h, nullptr) << "no backup holder to kill";
        const VmId holder_vm = h->vm();
        const VmId owner_vm = cluster.GetInstance(owner)->vm();
        // Owner first, then its holder: both die before any re-backup.
        EXPECT_TRUE(cluster.membership()->KillVm(owner_vm).ok());
        EXPECT_TRUE(cluster.membership()->KillVm(holder_vm).ok());
      });
  sps.RunFor(total);

  Outcome outcome;
  outcome.counts = results->counts;
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) outcome.recovery_seconds = r.RecoverySeconds();
  }
  if (const auto* log = cluster.durable_log()) {
    outcome.durable_appends = log->metrics().appends.load();
    outcome.durable_reads = log->metrics().reads.load();
    outcome.recovery_scan_torn = log->recovery_info().torn;
    EXPECT_TRUE(log->VerifyIndex().ok());
  }
  return outcome;
}

int64_t WindowTotal(const Outcome& outcome, int64_t window) {
  int64_t total = 0;
  for (const auto& [key, count] : outcome.counts) {
    if (key.first == window) total += count;
  }
  return total;
}

class DurableRecoveryTest
    : public ::testing::TestWithParam<BackupDurability> {};

TEST_P(DurableRecoveryTest, CorrelatedOwnerHolderKillRecoversExactlyOnce) {
  const Outcome outcome = RunCorrelatedFailure(GetParam(), 47.0);
  EXPECT_GT(outcome.recovery_seconds, 0) << "recovery never completed";
  // Window 1 spans [30, 60) s and straddles the correlated failure at 47 s;
  // each of its ~6000 sentences contributes 20 words. Exactly-once means
  // the rebuilt window is exact — no loss (in-memory backup died with the
  // holder) and no duplication (trim acks only covered durable state).
  EXPECT_EQ(WindowTotal(outcome, 1), 6000 * 20);
  // The durable tier actually worked for its living: checkpoints were
  // appended and recovery read at least one back.
  EXPECT_GT(outcome.durable_appends, 0u);
  EXPECT_GT(outcome.durable_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DiskAndTiered, DurableRecoveryTest,
    ::testing::Values(BackupDurability::kDisk, BackupDurability::kTiered),
    [](const auto& info) {
      return info.param == BackupDurability::kDisk ? "Disk" : "Tiered";
    });

TEST(DurableRecoveryTest, MemoryModeLosesStateOnCorrelatedFailure) {
  // The control: the paper's in-memory tier cannot survive a correlated
  // owner+holder kill, so the straddling window undercounts. This pins the
  // scenario as genuinely unrecoverable without the log (if this ever
  // starts passing exactly, the correlated kill is not correlated).
  const Outcome outcome =
      RunCorrelatedFailure(BackupDurability::kMemory, 47.0);
  EXPECT_LT(WindowTotal(outcome, 1), 6000 * 20);
}

TEST(DurableRecoveryTest, TieredSurvivesSingleFailureByteExact) {
  // A plain (uncorrelated) failure under kTiered behaves like kMemory's
  // recovery — the in-memory copy serves the restore — but the durable log
  // must have tracked every stored checkpoint.
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 200;
  wc.vocabulary = 300;
  wc.seed = 99;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.backup_durability = BackupDurability::kTiered;
  config.cluster.audit_level = 2;
  config.scaling.enabled = false;

  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(query.counter, 47.0);
  sps.RunFor(150);

  Outcome outcome;
  outcome.counts = results->counts;
  EXPECT_EQ(WindowTotal(outcome, 1), 6000 * 20);
  const auto* log = sps.cluster().durable_log();
  ASSERT_NE(log, nullptr);
  EXPECT_GT(log->metrics().appends.load(), 0u);
  EXPECT_TRUE(log->VerifyIndex().ok());
}

TEST(DurableRecoveryTest, DeleteBackupChokePointForgetsPartialStreams) {
  // Regression for the delete choke point: Cluster::DeleteBackup must drop
  // the owner's pending chunk streams along with the stored backup, so a
  // stream completing after retirement cannot resurrect a tombstoned
  // instance.
  runtime::ClusterConfig config;
  config.backup_durability = BackupDurability::kTiered;
  config.audit_level = 0;
  core::QueryGraph graph;
  runtime::Cluster cluster(&graph, config);

  runtime::CkptChunkHeader header;
  header.owner = 3;
  header.owner_op = 1;
  header.holder = 2;
  header.seq = 1;
  header.index = 0;
  header.count = 2;  // stream stays pending after one chunk
  header.frame_bytes = 8;
  const uint8_t chunk[4] = {1, 2, 3, 4};
  cluster.ckpt_reassembler()->OnChunk(header, chunk, sizeof(chunk));
  ASSERT_EQ(cluster.ckpt_reassembler()->pending_streams(), 1u);

  cluster.DeleteBackup(3);
  EXPECT_EQ(cluster.ckpt_reassembler()->pending_streams(), 0u);
  EXPECT_FALSE(cluster.backups()->Has(3));
  // The durable log now carries a terminal tombstone for the instance.
  ASSERT_NE(cluster.durable_log(), nullptr);
  EXPECT_TRUE(cluster.durable_log()->AppendTombstone(3).ok());
}

}  // namespace
}  // namespace seep
