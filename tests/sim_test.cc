// Unit tests for the discrete-event core: event ordering, cancellation,
// run-until semantics, and the network model (latency, bandwidth FIFO
// serialisation, drops at detached endpoints).

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulation.h"

namespace seep::sim {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, RunUntilStopsAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(500, [&] { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 200);
  sim.RunUntil(600);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 600);
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(10, [&] { times.push_back(sim.Now()); });
  });
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(50, [&] { ++fired; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, CancelUnknownIsNoop) {
  Simulation sim;
  sim.Cancel(9999);
  sim.Schedule(1, [] {});
  sim.RunAll();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulationTest, ZeroDelayFiresAtCurrentTime) {
  Simulation sim;
  sim.Schedule(100, [&] {
    sim.Schedule(0, [&] { EXPECT_EQ(sim.Now(), 100); });
  });
  sim.RunAll();
}

// ------------------------------------------------------------------ Network

NetworkConfig FastNet() {
  NetworkConfig cfg;
  cfg.latency = MillisToSim(1);
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 1 KB takes 1 ms
  return cfg;
}

TEST(NetworkTest, DeliveryIncludesLatencyAndTransmission) {
  Simulation sim;
  Network net(&sim, FastNet());
  net.Attach(1);
  net.Attach(2);
  SimTime delivered_at = -1;
  net.Send(1, 2, 1000, [&] { delivered_at = sim.Now(); });
  sim.RunAll();
  // 1 ms uplink serialisation + 1 ms latency + 1 ms downlink.
  EXPECT_EQ(delivered_at, MillisToSim(3));
}

TEST(NetworkTest, UplinkSerialisesFifo) {
  Simulation sim;
  Network net(&sim, FastNet());
  net.Attach(1);
  net.Attach(2);
  net.Attach(3);
  std::vector<std::pair<int, SimTime>> deliveries;
  // Two messages from the same sender: the second waits for the first's
  // uplink transmission even though the receivers differ.
  net.Send(1, 2, 10000, [&] { deliveries.push_back({2, sim.Now()}); });
  net.Send(1, 3, 1000, [&] { deliveries.push_back({3, sim.Now()}); });
  sim.RunAll();
  ASSERT_EQ(deliveries.size(), 2u);
  // Message to 3 finishes its uplink at 11 ms, so it arrives after ~13 ms,
  // later than it would alone (3 ms).
  EXPECT_GT(deliveries[1].second, MillisToSim(12));
}

TEST(NetworkTest, SendToDetachedEndpointDrops) {
  Simulation sim;
  Network net(&sim, FastNet());
  net.Attach(1);
  bool delivered = false;
  net.Send(1, 99, 100, [&] { delivered = true; });
  sim.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, DetachWhileInFlightDrops) {
  Simulation sim;
  Network net(&sim, FastNet());
  net.Attach(1);
  net.Attach(2);
  bool delivered = false;
  net.Send(1, 2, 1000, [&] { delivered = true; });
  sim.Schedule(MillisToSim(1), [&] { net.Detach(2); });
  sim.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, CountsBytesAndUplinkLoad) {
  Simulation sim;
  Network net(&sim, FastNet());
  net.Attach(1);
  net.Attach(2);
  net.Send(1, 2, 500, [] {});
  net.Send(1, 2, 700, [] {});
  sim.RunAll();
  EXPECT_EQ(net.bytes_sent(), 1200u);
  EXPECT_EQ(net.UplinkBytes(1), 1200u);
  EXPECT_EQ(net.UplinkBytes(2), 0u);
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(NetworkTest, LargeTransferScalesWithBandwidth) {
  Simulation sim;
  Network net(&sim, FastNet());
  net.Attach(1);
  net.Attach(2);
  SimTime delivered_at = -1;
  net.Send(1, 2, 1'000'000, [&] { delivered_at = sim.Now(); });  // 1 MB
  sim.RunAll();
  // ~1 s uplink + 1 ms + ~1 s downlink.
  EXPECT_GT(delivered_at, SecondsToSim(1.9));
  EXPECT_LT(delivered_at, SecondsToSim(2.2));
}

}  // namespace
}  // namespace seep::sim
