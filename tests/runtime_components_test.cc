// Unit tests for the runtime components extracted from OperatorInstance:
// TrimTracker's ack/trim semantics (standalone, with an injected buffer and
// membership), JobScheduler's FIFO/pause/priority behaviour (standalone,
// with a fake host), and CheckpointPlane suspension plus source catch-up on
// a minimal deployed query.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "control/deployment_manager.h"
#include "runtime/cluster.h"
#include "runtime/job_scheduler.h"
#include "runtime/operator_instance.h"
#include "runtime/trim_tracker.h"

namespace seep::runtime {
namespace {

// ------------------------------------------------------------- TrimTracker

core::Tuple MakeTuple(int64_t timestamp) {
  core::Tuple t;
  t.timestamp = timestamp;
  return t;
}

struct TrimFixture {
  explicit TrimFixture(std::vector<InstanceId> members)
      : members_(std::move(members)),
        tracker(&buffer, [this](OperatorId) { return members_; }) {}

  size_t Buffered(OperatorId down) const {
    const core::TupleBuffer* tuples = buffer.Get(down);
    return tuples == nullptr ? 0 : tuples->size();
  }

  std::vector<InstanceId> members_;
  core::BufferState buffer;
  TrimTracker tracker;
};

constexpr OperatorId kDown = 7;

TEST(TrimTrackerTest, TrimsToMinimumAckOverOutstandingDestinations) {
  TrimFixture f({1, 2});
  for (int64_t ts = 1; ts <= 10; ++ts) f.buffer.Append(kDown, MakeTuple(ts));
  // Both destinations have outstanding tuples; the slower ack bounds trims.
  f.tracker.NoteSent(kDown, 1, 10);
  f.tracker.NoteSent(kDown, 2, 9);
  f.tracker.OnTrimAck(kDown, 1, 6);
  EXPECT_EQ(f.Buffered(kDown), 10u);  // dest 2 has not acked at all
  f.tracker.OnTrimAck(kDown, 2, 4);
  EXPECT_EQ(f.Buffered(kDown), 6u);  // trimmed through min(6, 4) = 4
  f.tracker.OnTrimAck(kDown, 2, 6);
  EXPECT_EQ(f.Buffered(kDown), 4u);  // both acked through 6
}

TEST(TrimTrackerTest, DestinationWithoutOutstandingTuplesDoesNotBlockTrim) {
  // Key-preserving routing can leave a sibling partition without any tuples
  // from this instance; its silence must not freeze upstream buffers.
  TrimFixture f({1, 2});
  for (int64_t ts = 1; ts <= 10; ++ts) f.buffer.Append(kDown, MakeTuple(ts));
  f.tracker.NoteSent(kDown, 1, 10);  // nothing ever sent to dest 2
  f.tracker.OnTrimAck(kDown, 1, 8);
  EXPECT_EQ(f.Buffered(kDown), 2u);
}

TEST(TrimTrackerTest, FullyAckedDestinationsTrimToMaxSent) {
  TrimFixture f({1, 2});
  for (int64_t ts = 1; ts <= 10; ++ts) f.buffer.Append(kDown, MakeTuple(ts));
  f.tracker.NoteSent(kDown, 1, 6);
  f.tracker.NoteSent(kDown, 2, 10);
  f.tracker.OnTrimAck(kDown, 1, 6);    // dest 1 fully covered
  f.tracker.OnTrimAck(kDown, 2, 10);   // dest 2 fully covered
  EXPECT_EQ(f.Buffered(kDown), 0u);    // nothing outstanding anywhere
}

TEST(TrimTrackerTest, AcksNeverRegress) {
  TrimFixture f({1});
  for (int64_t ts = 1; ts <= 10; ++ts) f.buffer.Append(kDown, MakeTuple(ts));
  f.tracker.NoteSent(kDown, 1, 10);
  f.tracker.OnTrimAck(kDown, 1, 8);
  EXPECT_EQ(f.Buffered(kDown), 2u);
  // A stale (out-of-order) ack must not re-lower the position.
  f.tracker.OnTrimAck(kDown, 1, 3);
  EXPECT_EQ(f.Buffered(kDown), 2u);
}

TEST(TrimTrackerTest, PruneDropsReplacedInstancesAndUnblocksTrims) {
  TrimFixture f({1, 2});
  for (int64_t ts = 1; ts <= 10; ++ts) f.buffer.Append(kDown, MakeTuple(ts));
  f.tracker.NoteSent(kDown, 1, 10);
  f.tracker.NoteSent(kDown, 2, 10);
  f.tracker.OnTrimAck(kDown, 1, 9);
  EXPECT_EQ(f.Buffered(kDown), 10u);  // dest 2 still outstanding, no ack
  // Dest 2 was replaced by dest 3 (scale out); its stale entries go away.
  f.members_ = {1, 3};
  f.tracker.PruneAcks(kDown);
  // Dest 3 restored from a checkpoint covering position 9 of this origin.
  f.tracker.SeedAck(kDown, 3, 9);
  f.tracker.OnTrimAck(kDown, 1, 9);
  EXPECT_EQ(f.Buffered(kDown), 1u);
}

TEST(TrimTrackerTest, EmptyMembershipTrimsNothing) {
  TrimFixture f({});
  f.buffer.Append(kDown, MakeTuple(1));
  f.tracker.NoteSent(kDown, 1, 1);
  f.tracker.OnTrimAck(kDown, 1, 1);
  EXPECT_EQ(f.Buffered(kDown), 1u);
}

// ------------------------------------------------------------ JobScheduler

// Host that gives every batch a fixed cost and records completion order.
class RecordingHost : public JobScheduler::Host {
 public:
  explicit RecordingHost(double cost_us) : cost_us_(cost_us) {}

  void PrepareJob(JobScheduler::Job* job) override { job->cost_us = cost_us_; }
  void FinishJob(JobScheduler::Job* job) override {
    finished.push_back(job->kind);
  }
  bool alive() const override { return alive_v; }
  bool stopped() const override { return stopped_v; }

  std::vector<JobScheduler::Job::Kind> finished;
  bool alive_v = true;
  bool stopped_v = false;

 private:
  double cost_us_;
};

JobScheduler::Job BatchJob(size_t tuples) {
  JobScheduler::Job job;
  job.kind = JobScheduler::Job::Kind::kBatch;
  job.batch.tuples.resize(tuples);
  return job;
}

TEST(JobSchedulerTest, PauseDefersStartsResumeDrainsQueue) {
  sim::Simulation sim;
  RecordingHost host(/*cost_us=*/100);
  JobScheduler sched(&sim, &host, /*vm_capacity=*/1.0);

  sched.Pause();
  sched.Enqueue(BatchJob(1));
  sched.Enqueue(BatchJob(2));
  sim.RunUntil(MillisToSim(10));
  EXPECT_TRUE(host.finished.empty());
  EXPECT_EQ(sched.queued_tuples(), 3u);
  EXPECT_TRUE(sched.paused());

  sched.Resume();
  sim.RunUntil(MillisToSim(20));
  EXPECT_EQ(host.finished.size(), 2u);
  EXPECT_EQ(sched.queued_tuples(), 0u);
  EXPECT_TRUE(sched.idle());
}

TEST(JobSchedulerTest, CheckpointJobsJumpTheQueue) {
  sim::Simulation sim;
  RecordingHost host(/*cost_us=*/100);
  JobScheduler sched(&sim, &host, /*vm_capacity=*/1.0);

  sched.Pause();  // hold the server so ordering is decided by the queue
  sched.Enqueue(BatchJob(1));
  JobScheduler::Job ckpt;
  ckpt.kind = JobScheduler::Job::Kind::kCheckpoint;
  sched.Enqueue(std::move(ckpt));
  sched.Resume();
  sim.RunUntil(MillisToSim(10));

  ASSERT_EQ(host.finished.size(), 2u);
  EXPECT_EQ(host.finished[0], JobScheduler::Job::Kind::kCheckpoint);
  EXPECT_EQ(host.finished[1], JobScheduler::Job::Kind::kBatch);
}

TEST(JobSchedulerTest, ServiceTimeScalesWithVmCapacity) {
  sim::Simulation sim;
  RecordingHost host(/*cost_us=*/1000);
  JobScheduler sched(&sim, &host, /*vm_capacity=*/2.0);
  sched.Enqueue(BatchJob(1));
  sim.RunUntil(400);  // 1000 µs at capacity 2 = 500 µs; not done at 400
  EXPECT_TRUE(host.finished.empty());
  sim.RunUntil(600);
  EXPECT_EQ(host.finished.size(), 1u);
  EXPECT_DOUBLE_EQ(sched.TakeBusyMicros(), 500.0);
  EXPECT_DOUBLE_EQ(sched.TakeBusyMicros(), 0.0);  // consumed
}

TEST(JobSchedulerTest, ReplayBatchesAreExcludedFromBusyAccounting) {
  sim::Simulation sim;
  RecordingHost host(/*cost_us=*/1000);
  JobScheduler sched(&sim, &host, /*vm_capacity=*/1.0);
  JobScheduler::Job replay = BatchJob(1);
  replay.batch.replay = true;
  sched.Enqueue(std::move(replay));
  sim.RunUntil(MillisToSim(10));
  EXPECT_EQ(host.finished.size(), 1u);
  EXPECT_DOUBLE_EQ(sched.TakeBusyMicros(), 0.0);
}

TEST(JobSchedulerTest, ClearDiscardsQueuedJobsButNotInFlight) {
  sim::Simulation sim;
  RecordingHost host(/*cost_us=*/1000);
  JobScheduler sched(&sim, &host, /*vm_capacity=*/1.0);
  sched.Enqueue(BatchJob(1));  // starts immediately (in flight)
  sched.Enqueue(BatchJob(1));
  sched.Enqueue(BatchJob(1));
  sched.Clear();
  sim.RunUntil(MillisToSim(10));
  EXPECT_EQ(host.finished.size(), 1u);  // only the in-flight job completed
  EXPECT_TRUE(sched.idle());
}

// ----------------------------------- CheckpointPlane + source catch-up
// (on a deployed minimal query, as in runtime_test.cc)

class PassThroughOperator : public core::Operator {
 public:
  void Process(const core::Tuple& input, core::Collector* out) override {
    core::Tuple t = input;
    out->Emit(std::move(t));
  }
  bool IsStateful() const override { return true; }
  double CostMicrosPerTuple() const override { return 10; }
  core::ProcessingState GetProcessingState() const override { return {}; }
  void SetProcessingState(const core::ProcessingState&) override {}
};

class SteadySource : public core::SourceGenerator {
 public:
  explicit SteadySource(double rate) : rate_(rate) {}
  void GenerateBatch(SimTime now, SimTime dt,
                     core::Collector* emit) override {
    const double want = rate_ * SimToSeconds(dt) + carry_;
    const auto n = static_cast<size_t>(want);
    carry_ = want - static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      core::Tuple t;
      t.event_time = now;
      t.key = Mix64(counter_++ % 8);
      emit->Emit(std::move(t));
    }
  }
  double TargetRate(SimTime) const override { return rate_; }

 private:
  double rate_;
  double carry_ = 0;
  uint64_t counter_ = 0;
};

class TallySink : public core::SinkConsumer {
 public:
  explicit TallySink(uint64_t* counter) : counter_(counter) {}
  void Consume(const core::Tuple&, SimTime) override { ++(*counter_); }

 private:
  uint64_t* counter_;
};

struct MiniQuery {
  explicit MiniQuery(ClusterConfig config = {}, double rate = 100) {
    received = std::make_shared<uint64_t>(0);
    source = graph.AddSource("src", [rate](uint32_t, uint32_t) {
      return std::make_unique<SteadySource>(rate);
    });
    op = graph.AddOperator(
        "pass", [] { return std::make_unique<PassThroughOperator>(); },
        /*stateful=*/true);
    sink = graph.AddSink("snk", [r = received] {
      return std::make_unique<TallySink>(r.get());
    });
    SEEP_CHECK(graph.Connect(source, op).ok());
    SEEP_CHECK(graph.Connect(op, sink).ok());
    cluster = std::make_unique<Cluster>(&graph, config);
    control::DeploymentManager deployer(cluster.get());
    SEEP_CHECK(deployer.DeployAll().ok());
  }

  OperatorInstance* InstanceOf(OperatorId id) {
    return cluster->GetInstance(cluster->LiveInstancesOf(id).at(0));
  }

  core::QueryGraph graph;
  OperatorId source, op, sink;
  std::shared_ptr<uint64_t> received;
  std::unique_ptr<Cluster> cluster;
};

TEST(CheckpointPlaneTest, SuspensionFreezesScheduleAndResumeRestartsIt) {
  ClusterConfig config;
  config.checkpoint_interval = SecondsToSim(2);
  MiniQuery q(config);
  auto* sim = q.cluster->simulation();
  auto* metrics = q.cluster->metrics();

  sim->RunUntil(SecondsToSim(5));
  const uint64_t before = metrics->checkpoints_taken;
  EXPECT_GT(before, 0u);

  // While the scale-out coordinator holds the suspension, the periodic
  // timer keeps re-arming but must not emit checkpoint jobs: a fresher
  // checkpoint would trim upstream buffers past the restore point.
  q.InstanceOf(q.op)->SuspendCheckpoints();
  sim->RunUntil(SecondsToSim(15));
  EXPECT_EQ(metrics->checkpoints_taken, before);

  q.InstanceOf(q.op)->ResumeCheckpoints();
  sim->RunUntil(SecondsToSim(25));
  EXPECT_GT(metrics->checkpoints_taken, before);
}

TEST(OperatorInstanceTest, PausedSourceOwesTimeAndCatchesUpOnResume) {
  MiniQuery q({}, /*rate=*/100);
  auto* sim = q.cluster->simulation();
  OperatorInstance* src = q.InstanceOf(q.source);

  sim->RunUntil(SecondsToSim(10));
  const uint64_t at_pause = *q.received;
  src->Pause();
  sim->RunUntil(SecondsToSim(20));
  // Paused: no fresh generation reaches the sink (modulo in-flight tail).
  EXPECT_LT(*q.received - at_pause, 30u);

  // The backlogged interval is owed, not lost: after resume the source
  // emits the catch-up burst and the sink converges to rate * total time.
  src->Resume();
  sim->RunUntil(SecondsToSim(30));
  EXPECT_NEAR(static_cast<double>(*q.received), 3000, 60);
}

}  // namespace
}  // namespace seep::runtime
