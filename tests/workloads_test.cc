// Unit tests for the workload operators in isolation: LRB toll formula and
// accident detection, word splitter/counter semantics, top-k reducer, and
// state externalisation roundtrips for each stateful operator.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "workloads/lrb/lrb.h"
#include "workloads/topk/topk.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

// Collects emissions per port for driving operators directly.
class TestCollector : public core::Collector {
 public:
  void EmitTo(int port, core::Tuple tuple) override {
    emissions.emplace_back(port, std::move(tuple));
  }
  std::vector<std::pair<int, core::Tuple>> emissions;
};

// ------------------------------------------------------------------ LRB

namespace lrb = workloads::lrb;

core::Tuple PositionReport(int64_t vid, int64_t xway, int64_t seg,
                           int64_t speed, SimTime at, bool entering = true,
                           bool stopped = false) {
  core::Tuple t;
  t.event_time = at;
  t.ints = {lrb::kPositionReport, vid, lrb::PackLocation(xway, seg),
            lrb::PackSpeed(speed, entering, stopped)};
  t.key = Mix64(static_cast<uint64_t>(lrb::PackLocation(xway, seg)));
  return t;
}

TEST(LrbOperatorsTest, FieldPackingRoundtrips) {
  const int64_t loc = lrb::PackLocation(7, 42);
  EXPECT_EQ(lrb::LocationXway(loc), 7);
  EXPECT_EQ(lrb::LocationSegment(loc), 42);
  const int64_t packed = lrb::PackSpeed(55, true, false);
  EXPECT_EQ(lrb::SpeedOf(packed), 55);
  EXPECT_TRUE(lrb::IsEntering(packed));
  EXPECT_FALSE(lrb::IsStopped(packed));
}

TEST(LrbOperatorsTest, TollChargedForCongestedSlowSegment) {
  lrb::TollCalculator calc(1);
  TestCollector out;
  // Minute 0: 60 vehicles crawl through segment (3,10) at 20 mph.
  for (int64_t vid = 0; vid < 60; ++vid) {
    calc.Process(PositionReport(vid, 3, 10, 20, SecondsToSim(10)), &out);
  }
  out.emissions.clear();
  // Minute 1: one more vehicle enters; LRB toll = 2*(count-50)^2 = 200.
  calc.Process(PositionReport(100, 3, 10, 20, SecondsToSim(70)), &out);
  int64_t toll_charge = -1;
  int64_t toll_note = -1;
  for (const auto& [port, tuple] : out.emissions) {
    if (tuple.ints[0] == lrb::kTollCharge) toll_charge = tuple.ints[2];
    if (tuple.ints[0] == lrb::kTollNotification) toll_note = tuple.ints[2];
  }
  EXPECT_EQ(toll_charge, 2 * (60 - 50) * (60 - 50));
  EXPECT_EQ(toll_note, toll_charge);
}

TEST(LrbOperatorsTest, NoTollWhenFastOrUncongested) {
  lrb::TollCalculator calc(1);
  TestCollector out;
  // Fast traffic (LAV 60 >= 40): no toll.
  for (int64_t vid = 0; vid < 60; ++vid) {
    calc.Process(PositionReport(vid, 1, 5, 60, SecondsToSim(10)), &out);
  }
  out.emissions.clear();
  calc.Process(PositionReport(99, 1, 5, 60, SecondsToSim(70)), &out);
  for (const auto& [port, tuple] : out.emissions) {
    EXPECT_NE(tuple.ints[0], lrb::kTollCharge);
  }
  // Slow but light traffic (10 < 50 vehicles): no toll either.
  out.emissions.clear();
  for (int64_t vid = 0; vid < 10; ++vid) {
    calc.Process(PositionReport(vid, 2, 5, 20, SecondsToSim(10)), &out);
  }
  out.emissions.clear();
  calc.Process(PositionReport(99, 2, 5, 20, SecondsToSim(70)), &out);
  for (const auto& [port, tuple] : out.emissions) {
    EXPECT_NE(tuple.ints[0], lrb::kTollCharge);
  }
}

TEST(LrbOperatorsTest, AccidentDetectedOnTwoStoppedVehicles) {
  lrb::TollCalculator calc(1);
  TestCollector out;
  calc.Process(PositionReport(1, 0, 7, 0, SecondsToSim(1), true, true), &out);
  EXPECT_TRUE(out.emissions.empty() ||
              out.emissions[0].second.ints[0] != lrb::kAccidentAlert);
  out.emissions.clear();
  calc.Process(PositionReport(2, 0, 7, 0, SecondsToSim(2), true, true), &out);
  bool alerted = false;
  for (const auto& [port, tuple] : out.emissions) {
    if (tuple.ints[0] == lrb::kAccidentAlert) alerted = true;
  }
  EXPECT_TRUE(alerted);
}

TEST(LrbOperatorsTest, NoTollInAccidentSegment) {
  lrb::TollCalculator calc(1);
  TestCollector out;
  // Congest the segment in minute 0, then cause an accident.
  for (int64_t vid = 0; vid < 60; ++vid) {
    calc.Process(PositionReport(vid, 0, 3, 20, SecondsToSim(10)), &out);
  }
  calc.Process(PositionReport(200, 0, 3, 0, SecondsToSim(20), true, true),
               &out);
  calc.Process(PositionReport(201, 0, 3, 0, SecondsToSim(21), true, true),
               &out);
  out.emissions.clear();
  calc.Process(PositionReport(300, 0, 3, 20, SecondsToSim(70)), &out);
  for (const auto& [port, tuple] : out.emissions) {
    EXPECT_NE(tuple.ints[0], lrb::kTollCharge);
  }
}

TEST(LrbOperatorsTest, TollCalculatorStateRoundtrip) {
  lrb::TollCalculator calc(1);
  TestCollector out;
  for (int64_t vid = 0; vid < 30; ++vid) {
    calc.Process(PositionReport(vid, 1, vid % 5, 25, SecondsToSim(10)), &out);
  }
  const core::ProcessingState state = calc.GetProcessingState();
  EXPECT_EQ(state.size(), 5u);  // 5 segments

  lrb::TollCalculator restored(1);
  restored.SetProcessingState(state);
  EXPECT_EQ(restored.GetProcessingState().size(), 5u);
}

TEST(LrbOperatorsTest, AssessmentAccumulatesAndAnswersQueries) {
  lrb::TollAssessment assessment(1);
  TestCollector out;
  core::Tuple charge;
  charge.ints = {lrb::kTollCharge, /*vid=*/9, /*toll=*/50, 0};
  assessment.Process(charge, &out);
  assessment.Process(charge, &out);
  EXPECT_TRUE(out.emissions.empty());

  core::Tuple query;
  query.ints = {lrb::kBalanceQuery, 9, /*qid=*/1, 0};
  assessment.Process(query, &out);
  ASSERT_EQ(out.emissions.size(), 1u);
  EXPECT_EQ(out.emissions[0].second.ints[0], lrb::kBalanceAnswer);
  EXPECT_EQ(out.emissions[0].second.ints[2], 100);

  // State externalisation roundtrip preserves balances.
  lrb::TollAssessment restored(1);
  restored.SetProcessingState(assessment.GetProcessingState());
  out.emissions.clear();
  restored.Process(query, &out);
  ASSERT_EQ(out.emissions.size(), 1u);
  EXPECT_EQ(out.emissions[0].second.ints[2], 100);
}

TEST(LrbSourceTest, RateFollowsConfiguredRamp) {
  lrb::LrbConfig cfg;
  cfg.num_xways = 4;
  cfg.duration_s = 100;
  cfg.initial_rate_per_xway = 10;
  cfg.peak_rate_per_xway = 100;
  lrb::LrbSource source(cfg, 0, 1);
  EXPECT_NEAR(source.TargetRate(0), 40, 1);
  EXPECT_NEAR(source.TargetRate(SecondsToSim(100)), 400, 1);
  EXPECT_LT(source.TargetRate(SecondsToSim(50)), 200);  // superlinear ramp
}

TEST(LrbSourceTest, GeneratesConfiguredMixOfTuples) {
  lrb::LrbConfig cfg;
  cfg.num_xways = 1;
  cfg.duration_s = 100;
  cfg.initial_rate_per_xway = 1000;
  cfg.peak_rate_per_xway = 1000;
  cfg.balance_query_fraction = 0.1;
  lrb::LrbSource source(cfg, 0, 1);
  TestCollector out;
  source.GenerateBatch(SecondsToSim(1), SecondsToSim(10), &out);
  size_t reports = 0, queries = 0;
  for (const auto& [port, tuple] : out.emissions) {
    if (tuple.ints[0] == lrb::kPositionReport) ++reports;
    if (tuple.ints[0] == lrb::kBalanceQuery) ++queries;
  }
  EXPECT_NEAR(static_cast<double>(reports + queries), 10000, 10);
  EXPECT_NEAR(static_cast<double>(queries) / (reports + queries), 0.1, 0.02);
}

// ------------------------------------------------------------- Word count

namespace wc = workloads::wordcount;

TEST(WordCountOperatorsTest, SplitterTokenises) {
  wc::WordSplitter splitter(1);
  TestCollector out;
  core::Tuple sentence;
  sentence.text = "the cat  sat ";
  sentence.event_time = 123;
  splitter.Process(sentence, &out);
  ASSERT_EQ(out.emissions.size(), 3u);
  EXPECT_EQ(out.emissions[0].second.text, "the");
  EXPECT_EQ(out.emissions[1].second.text, "cat");
  EXPECT_EQ(out.emissions[2].second.text, "sat");
  EXPECT_EQ(out.emissions[0].second.key, HashBytes("the"));
  EXPECT_EQ(out.emissions[0].second.event_time, 123);
}

TEST(WordCountOperatorsTest, CounterWindowsByEventTime) {
  wc::WordCountConfig cfg;
  cfg.window = SecondsToSim(30);
  cfg.probe_every_n = 0;  // no probes in this test
  wc::WordCounter counter(cfg);
  TestCollector out;
  core::Tuple word;
  word.text = "cat";
  word.key = HashBytes("cat");
  word.event_time = SecondsToSim(5);  // window 0
  counter.Process(word, &out);
  counter.Process(word, &out);
  word.event_time = SecondsToSim(35);  // window 1
  counter.Process(word, &out);
  EXPECT_TRUE(out.emissions.empty());

  // Closing window 0 at t=60 emits both windows' finals? Only window 0 and
  // window 1 are closed at t=60... window 1 spans [30,60) so it is closed.
  counter.OnTimer(SecondsToSim(60), &out);
  std::map<int64_t, int64_t> finals;
  for (const auto& [port, tuple] : out.emissions) {
    finals[tuple.ints[0]] = tuple.ints[1];
  }
  EXPECT_EQ(finals[0], 2);
  EXPECT_EQ(finals[1], 1);
}

TEST(WordCountOperatorsTest, CounterStateMergeIsAdditive) {
  wc::WordCountConfig cfg;
  cfg.probe_every_n = 0;
  wc::WordCounter a(cfg), b(cfg), merged(cfg);
  TestCollector out;
  core::Tuple word;
  word.text = "dog";
  word.key = HashBytes("dog");
  word.event_time = SecondsToSim(1);
  a.Process(word, &out);
  a.Process(word, &out);
  b.Process(word, &out);

  merged.SetProcessingState(a.GetProcessingState());
  merged.MergeProcessingState(b.GetProcessingState());
  merged.OnTimer(SecondsToSim(60), &out);
  ASSERT_FALSE(out.emissions.empty());
  EXPECT_EQ(out.emissions.back().second.ints[1], 3);
}

TEST(WordCountOperatorsTest, ProbeEmittedEveryN) {
  wc::WordCountConfig cfg;
  cfg.probe_every_n = 5;
  wc::WordCounter counter(cfg);
  TestCollector out;
  core::Tuple word;
  word.text = "x";
  word.key = HashBytes("x");
  for (int i = 0; i < 25; ++i) counter.Process(word, &out);
  EXPECT_EQ(out.emissions.size(), 5u);
  EXPECT_EQ(out.emissions[0].second.ints[2], 0);  // probe flag
}

TEST(WordCountSourceTest, SentencesHaveConfiguredShape) {
  wc::WordCountConfig cfg;
  cfg.rate_tuples_per_sec = 100;
  cfg.words_per_sentence = 20;
  wc::SentenceSource source(cfg, 0, 1);
  TestCollector out;
  source.GenerateBatch(0, SecondsToSim(1), &out);
  ASSERT_EQ(out.emissions.size(), 100u);
  // Each sentence has exactly 20 space-separated words.
  const std::string& s = out.emissions[0].second.text;
  EXPECT_EQ(std::count(s.begin(), s.end(), ' '), 19);
}

// ----------------------------------------------------------------- Top-k

namespace topk = workloads::topk;

TEST(TopKOperatorsTest, MapStripsPayload) {
  topk::MapProject map(1);
  TestCollector out;
  core::Tuple raw;
  raw.key = 77;
  raw.event_time = 5;
  raw.ints = {3, 999, 999, 0};
  raw.text = "junk-payload-to-strip";
  map.Process(raw, &out);
  ASSERT_EQ(out.emissions.size(), 1u);
  const core::Tuple& projected = out.emissions[0].second;
  EXPECT_EQ(projected.key, 77u);
  EXPECT_EQ(projected.ints[0], 3);
  EXPECT_TRUE(projected.text.empty());
}

TEST(TopKOperatorsTest, ReducerEmitsPartialsAtWindowClose) {
  topk::TopKConfig cfg;
  cfg.window = SecondsToSim(30);
  topk::TopKReducer reducer(cfg);
  TestCollector out;
  core::Tuple view;
  view.ints = {5, 0, 0, 0};
  view.event_time = SecondsToSim(10);
  reducer.Process(view, &out);
  reducer.Process(view, &out);
  reducer.OnTimer(SecondsToSim(35), &out);
  ASSERT_EQ(out.emissions.size(), 1u);
  EXPECT_EQ(out.emissions[0].second.ints[0], 0);  // window
  EXPECT_EQ(out.emissions[0].second.ints[1], 5);  // language
  EXPECT_EQ(out.emissions[0].second.ints[2], 2);  // count
}

TEST(TopKOperatorsTest, SinkMaxMergesPartials) {
  auto results = std::make_shared<topk::TopKSink::Results>();
  topk::TopKSink sink(results);
  core::Tuple partial;
  partial.ints = {0, 7, 10, 0};
  sink.Consume(partial, 0);
  partial.ints = {0, 7, 8, 0};  // stale smaller partial
  sink.Consume(partial, 0);
  partial.ints = {0, 3, 25, 0};
  sink.Consume(partial, 0);
  const auto top = results->TopK(0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 3);
  EXPECT_EQ(top[0].second, 25);
  EXPECT_EQ(top[1].second, 10);
}

TEST(TopKOperatorsTest, ReducerStateRoundtrip) {
  topk::TopKConfig cfg;
  topk::TopKReducer a(cfg), b(cfg);
  TestCollector out;
  core::Tuple view;
  view.ints = {2, 0, 0, 0};
  view.event_time = SecondsToSim(1);
  for (int i = 0; i < 5; ++i) a.Process(view, &out);
  b.SetProcessingState(a.GetProcessingState());
  b.OnTimer(SecondsToSim(60), &out);
  ASSERT_FALSE(out.emissions.empty());
  EXPECT_EQ(out.emissions.back().second.ints[2], 5);
}

}  // namespace
}  // namespace seep
