// Unit tests for the durable checkpoint log (src/store/): append/read
// roundtrips, tombstone terminality, reopen recovery, segment roll +
// compaction, fsync policies — and the torn-write sweep, which truncates and
// bit-flips the segment file at every frame boundary and checks that the
// recovery scan never crashes, never resurrects a superseded or tombstoned
// record, and reports exactly the surviving prefix.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serde/frame.h"
#include "store/checkpoint_log.h"
#include "store/log_format.h"
#include "store/segment.h"

namespace seep::store {
namespace {

std::string FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::current_path() / "store_test_tmp" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

CheckpointLogConfig TestConfig(const std::string& dir) {
  CheckpointLogConfig config;
  config.directory = dir;
  config.fsync = FsyncPolicy::kNever;  // tests exercise scans, not platters
  config.background_compaction = false;
  return config;
}

std::unique_ptr<CheckpointLog> MustOpen(const CheckpointLogConfig& config) {
  auto log = CheckpointLog::Open(config);
  SEEP_CHECK(log.ok());
  return std::move(log).value();
}

/// A deterministic framed payload for (owner, seq): what the checkpoint
/// pipeline would hand over, minus the actual checkpoint encoding.
std::vector<uint8_t> FramedPayload(InstanceId owner, uint64_t seq,
                                   size_t size) {
  std::vector<uint8_t> inner(size);
  for (size_t i = 0; i < size; ++i) {
    inner[i] = static_cast<uint8_t>(owner * 37 + seq * 11 + i);
  }
  return serde::FramePayload(inner);
}

Status Put(CheckpointLog* log, InstanceId owner, uint64_t seq,
           size_t size = 64) {
  RecordMeta meta;
  meta.owner = owner;
  meta.owner_op = 7;
  meta.holder = 100 + owner;
  meta.seq = seq;
  meta.raw_bytes = size;
  meta.compressed = false;
  const std::vector<uint8_t> framed = FramedPayload(owner, seq, size);
  return log->Append(meta, framed.data(), framed.size());
}

TEST(CheckpointLogTest, AppendFindReadRoundtrip) {
  auto log = MustOpen(TestConfig(FreshDir("roundtrip")));
  ASSERT_TRUE(Put(log.get(), 1, 5).ok());
  ASSERT_TRUE(Put(log.get(), 2, 9, 300).ok());

  ASSERT_TRUE(log->Has(1));
  const auto meta = log->Find(1);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->seq, 5u);
  EXPECT_EQ(meta->holder, 101u);
  EXPECT_EQ(meta->owner_op, 7u);

  auto payload = log->ReadPayload(2);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload.value(), FramedPayload(2, 9, 300));
  EXPECT_TRUE(log->ReadPayload(3).status().IsNotFound());
  EXPECT_TRUE(log->VerifyIndex().ok());
  EXPECT_EQ(log->metrics().appends.load(), 2u);
}

TEST(CheckpointLogTest, LatestSeqWinsAndSpotCheckPasses) {
  auto log = MustOpen(TestConfig(FreshDir("supersede")));
  ASSERT_TRUE(Put(log.get(), 1, 1).ok());
  ASSERT_TRUE(Put(log.get(), 1, 2, 96).ok());
  const auto meta = log->Find(1);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->seq, 2u);
  EXPECT_EQ(log->ReadPayload(1).value(), FramedPayload(1, 2, 96));
  EXPECT_TRUE(log->SpotCheck(1).ok());
  EXPECT_EQ(log->LiveRecords().size(), 1u);
}

TEST(CheckpointLogTest, TombstoneIsTerminal) {
  auto log = MustOpen(TestConfig(FreshDir("tombstone")));
  ASSERT_TRUE(Put(log.get(), 1, 1).ok());
  ASSERT_TRUE(log->AppendTombstone(1).ok());
  EXPECT_FALSE(log->Has(1));
  EXPECT_TRUE(log->ReadPayload(1).status().IsNotFound());
  // Idempotent, and appends after the tombstone are refused: instance ids
  // are never reused, so a late-arriving checkpoint must not resurrect.
  EXPECT_TRUE(log->AppendTombstone(1).ok());
  EXPECT_EQ(Put(log.get(), 1, 2).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointLogTest, RejectsMalformedAppends) {
  CheckpointLogConfig config = TestConfig(FreshDir("malformed"));
  config.max_payload = 1024;
  auto log = MustOpen(config);
  RecordMeta meta;
  meta.owner = 1;
  meta.seq = 1;
  EXPECT_TRUE(log->Append(meta, nullptr, 0).IsInvalidArgument());
  const std::vector<uint8_t> big(4096);
  EXPECT_TRUE(
      log->Append(meta, big.data(), big.size()).IsInvalidArgument());
}

TEST(CheckpointLogTest, ReopenRebuildsIndex) {
  const std::string dir = FreshDir("reopen");
  {
    auto log = MustOpen(TestConfig(dir));
    ASSERT_TRUE(Put(log.get(), 1, 1).ok());
    ASSERT_TRUE(Put(log.get(), 1, 2, 128).ok());
    ASSERT_TRUE(Put(log.get(), 2, 7).ok());
    ASSERT_TRUE(Put(log.get(), 3, 1).ok());
    ASSERT_TRUE(log->AppendTombstone(3).ok());
  }
  auto log = MustOpen(TestConfig(dir));
  const RecoveryInfo& info = log->recovery_info();
  EXPECT_FALSE(info.torn);
  EXPECT_EQ(info.records_scanned, 5u);
  EXPECT_EQ(info.live_records, 2u);
  EXPECT_EQ(info.torn_bytes, 0u);
  EXPECT_GT(log->metrics().recovery_scan_nanos.load(), 0u);

  EXPECT_EQ(log->Find(1)->seq, 2u);
  EXPECT_EQ(log->ReadPayload(1).value(), FramedPayload(1, 2, 128));
  EXPECT_EQ(log->Find(2)->seq, 7u);
  EXPECT_FALSE(log->Has(3));
  // Still terminal after reopen.
  EXPECT_EQ(Put(log.get(), 3, 2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(log->VerifyIndex().ok());
}

TEST(CheckpointLogTest, SegmentRollAndCompaction) {
  CheckpointLogConfig config = TestConfig(FreshDir("compact"));
  config.segment_bytes = 512;  // force frequent rolls
  // High threshold: nothing compacts until the explicit CompactNow, so the
  // sealed-segment pileup is observable first.
  config.compact_min_bytes = 1ull << 20;
  auto log = MustOpen(config);
  // Repeatedly supersede two owners so sealed segments are mostly dead.
  for (uint64_t seq = 1; seq <= 40; ++seq) {
    ASSERT_TRUE(Put(log.get(), 1, seq, 100).ok());
    ASSERT_TRUE(Put(log.get(), 2, seq, 100).ok());
  }
  ASSERT_TRUE(Put(log.get(), 3, 1).ok());
  ASSERT_TRUE(log->AppendTombstone(3).ok());
  EXPECT_GT(log->segment_count(), 2u);

  const uint64_t before = log->total_bytes();
  ASSERT_TRUE(log->CompactNow().ok());
  EXPECT_LT(log->total_bytes(), before);
  EXPECT_GT(log->metrics().compactions.load(), 0u);
  EXPECT_GT(log->metrics().compaction_bytes_in.load(),
            log->metrics().compaction_bytes_out.load());

  // Live data and the tombstone survive the rewrite, and the on-disk state
  // still replays to exactly the in-memory index.
  EXPECT_EQ(log->Find(1)->seq, 40u);
  EXPECT_EQ(log->ReadPayload(2).value(), FramedPayload(2, 40, 100));
  EXPECT_FALSE(log->Has(3));
  EXPECT_TRUE(log->VerifyIndex().ok());
  EXPECT_TRUE(log->SpotCheck(1).ok());
  EXPECT_TRUE(log->last_compaction_error().ok());
}

TEST(CheckpointLogTest, CompactionSurvivesReopen) {
  CheckpointLogConfig config = TestConfig(FreshDir("compact_reopen"));
  config.segment_bytes = 512;
  config.compact_min_bytes = 1;
  config.compact_min_dead_ratio = 0.1;
  {
    auto log = MustOpen(config);
    for (uint64_t seq = 1; seq <= 20; ++seq) {
      ASSERT_TRUE(Put(log.get(), 1, seq, 100).ok());
    }
    ASSERT_TRUE(Put(log.get(), 2, 3).ok());
    ASSERT_TRUE(log->AppendTombstone(2).ok());
    ASSERT_TRUE(log->CompactNow().ok());
  }
  auto log = MustOpen(config);
  EXPECT_EQ(log->Find(1)->seq, 20u);
  EXPECT_EQ(log->ReadPayload(1).value(), FramedPayload(1, 20, 100));
  EXPECT_FALSE(log->Has(2));
  EXPECT_EQ(Put(log.get(), 2, 9).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(log->VerifyIndex().ok());
}

TEST(CheckpointLogTest, BackgroundCompactionRuns) {
  CheckpointLogConfig config = TestConfig(FreshDir("bg_compact"));
  config.segment_bytes = 512;
  config.compact_min_bytes = 1;
  config.compact_min_dead_ratio = 0.1;
  config.background_compaction = true;
  auto log = MustOpen(config);
  for (uint64_t seq = 1; seq <= 60; ++seq) {
    ASSERT_TRUE(Put(log.get(), 1, seq, 100).ok());
  }
  // The compactor thread races the appends; give it a bounded moment.
  for (int i = 0; i < 200 && log->metrics().compactions.load() == 0; ++i) {
    usleep(2000);
  }
  EXPECT_GT(log->metrics().compactions.load(), 0u);
  EXPECT_EQ(log->Find(1)->seq, 60u);
  EXPECT_TRUE(log->VerifyIndex().ok());
}

TEST(CheckpointLogTest, FsyncPolicies) {
  {
    CheckpointLogConfig config = TestConfig(FreshDir("fsync_always"));
    config.fsync = FsyncPolicy::kAlways;
    auto log = MustOpen(config);
    ASSERT_TRUE(Put(log.get(), 1, 1).ok());
    ASSERT_TRUE(Put(log.get(), 1, 2).ok());
    EXPECT_GE(log->metrics().fsyncs.load(), 2u);
    EXPECT_GT(log->metrics().fsync_nanos_max.load(), 0u);
  }
  {
    auto log = MustOpen(TestConfig(FreshDir("fsync_never")));
    ASSERT_TRUE(Put(log.get(), 1, 1).ok());
    const uint64_t before = log->metrics().fsyncs.load();
    ASSERT_TRUE(log->Flush().ok());  // explicit Flush still syncs
    EXPECT_EQ(log->metrics().fsyncs.load(), before + 1);
  }
}

// ------------------------------------------------------------------------
// Torn-write sweep (the crash-consistency satellite).

/// What must survive a crash that leaves only the first `n` records intact:
/// per-owner latest seq, with tombstones terminal.
struct Expected {
  std::map<InstanceId, uint64_t> live;  // owner -> winning seq
  std::set<InstanceId> dead;
};

Expected ReplayPrefix(const std::vector<ScannedRecord>& records, size_t n) {
  Expected e;
  for (size_t i = 0; i < n; ++i) {
    const RecordMeta& m = records[i].meta;
    if (m.type == RecordType::kTombstone) {
      e.live.erase(m.owner);
      e.dead.insert(m.owner);
    } else if (e.dead.count(m.owner) == 0) {
      auto it = e.live.find(m.owner);
      if (it == e.live.end() || m.seq >= it->second) e.live[m.owner] = m.seq;
    }
  }
  return e;
}

void ExpectStateMatches(CheckpointLog* log, const Expected& expected,
                        const std::string& what) {
  const std::vector<RecordMeta> live = log->LiveRecords();
  ASSERT_EQ(live.size(), expected.live.size()) << what;
  for (const RecordMeta& m : live) {
    auto it = expected.live.find(m.owner);
    ASSERT_NE(it, expected.live.end())
        << what << ": unexpected survivor owner " << m.owner;
    EXPECT_EQ(m.seq, it->second) << what << ": owner " << m.owner;
    // The payload must read back and be the exact framed bytes appended
    // for that (owner, seq).
    auto payload = log->ReadPayload(m.owner);
    ASSERT_TRUE(payload.ok()) << what;
    EXPECT_EQ(payload.value(),
              FramedPayload(m.owner, m.seq, m.raw_bytes))
        << what;
  }
  for (InstanceId owner : expected.dead) {
    EXPECT_FALSE(log->Has(owner)) << what << ": resurrected owner " << owner;
  }
  EXPECT_TRUE(log->VerifyIndex().ok()) << what;
}

/// Writes the scripted history (supersedes + a tombstone), closes the log,
/// and returns the single segment file plus its scanned record layout.
struct SweepFixture {
  std::string dir;
  std::string pristine;  // pristine copy of the segment file
  std::string segment;   // path the log will reopen
  std::vector<ScannedRecord> records;
  uint64_t valid_bytes = 0;
};

SweepFixture BuildSweepFixture(const std::string& name) {
  SweepFixture fx;
  fx.dir = FreshDir(name);
  {
    auto log = MustOpen(TestConfig(fx.dir));
    SEEP_CHECK(Put(log.get(), 1, 1, 64).ok());
    SEEP_CHECK(Put(log.get(), 2, 1, 48).ok());
    SEEP_CHECK(Put(log.get(), 1, 2, 80).ok());   // supersedes owner 1 seq 1
    SEEP_CHECK(Put(log.get(), 3, 1, 32).ok());
    SEEP_CHECK(log->AppendTombstone(2).ok());    // owner 2 terminally dead
    SEEP_CHECK(Put(log.get(), 3, 2, 96).ok());   // supersedes owner 3 seq 1
    SEEP_CHECK(Put(log.get(), 4, 1, 56).ok());
  }
  fx.segment = fx.dir + "/seg-00000001.seeplog";
  fx.pristine = fx.dir + "/pristine.bin";
  std::filesystem::copy_file(fx.segment, fx.pristine);

  const int fd = ::open(fx.segment.c_str(), O_RDONLY);
  SEEP_CHECK(fd >= 0);
  struct stat st;
  SEEP_CHECK(::fstat(fd, &st) == 0);
  const SegmentScan scan =
      ScanSegment(fd, static_cast<uint64_t>(st.st_size),
                  serde::kDefaultMaxFramePayload);
  ::close(fd);
  SEEP_CHECK(!scan.torn);
  SEEP_CHECK(scan.records.size() == 7);
  fx.records = scan.records;
  fx.valid_bytes = scan.valid_bytes;
  return fx;
}

void RestorePristine(const SweepFixture& fx) {
  std::filesystem::copy_file(
      fx.pristine, fx.segment,
      std::filesystem::copy_options::overwrite_existing);
}

uint64_t RecordEnd(const SweepFixture& fx, size_t i) {
  return i + 1 < fx.records.size() ? fx.records[i + 1].record_offset
                                   : fx.valid_bytes;
}

TEST(TornWriteSweepTest, TruncationAtEveryBoundaryKeepsExactPrefix) {
  const SweepFixture fx = BuildSweepFixture("sweep_truncate");
  for (size_t i = 0; i < fx.records.size(); ++i) {
    const uint64_t begin = fx.records[i].record_offset;
    const uint64_t payload = fx.records[i].payload_offset;
    const uint64_t end = RecordEnd(fx, i);
    // Clean cut at the boundary, plus torn cuts inside the meta frame,
    // at the payload start, and one byte short of complete. (For a
    // tombstone, payload start == record end — a clean boundary; the
    // expectations below are computed from the cut, not the loop index.)
    const uint64_t cuts[] = {begin, begin + 1, payload, end - 1};
    for (const uint64_t cut : cuts) {
      RestorePristine(fx);
      std::filesystem::resize_file(fx.segment, cut);
      auto log = MustOpen(TestConfig(fx.dir));
      const std::string what =
          "truncate at " + std::to_string(cut) + " (record " +
          std::to_string(i) + ")";
      size_t intact = 0;
      while (intact < fx.records.size() && RecordEnd(fx, intact) <= cut) {
        ++intact;
      }
      const uint64_t boundary = intact < fx.records.size()
                                    ? fx.records[intact].record_offset
                                    : fx.valid_bytes;
      // A cut at a record boundary is a clean shutdown image; any cut
      // inside a record is a torn tail the scan must repair.
      EXPECT_EQ(log->recovery_info().torn, cut != boundary) << what;
      ExpectStateMatches(log.get(), ReplayPrefix(fx.records, intact), what);
      // The log must stay appendable after tail repair.
      EXPECT_TRUE(Put(log.get(), 9, 1).ok()) << what;
    }
  }
}

TEST(TornWriteSweepTest, BitFlipAtEveryBoundaryKeepsExactPrefix) {
  const SweepFixture fx = BuildSweepFixture("sweep_bitflip");
  for (size_t i = 0; i < fx.records.size(); ++i) {
    const uint64_t begin = fx.records[i].record_offset;
    const uint64_t payload = fx.records[i].payload_offset;
    const uint64_t end = RecordEnd(fx, i);
    // Flip a bit in the meta frame header, the meta payload, the payload
    // frame, and the final byte of the record.
    std::vector<uint64_t> flips = {begin, begin + serde::kFrameHeaderBytes,
                                   end - 1};
    if (payload < end) flips.push_back(payload);
    for (const uint64_t flip : flips) {
      RestorePristine(fx);
      {
        std::fstream f(fx.segment,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(static_cast<std::streamoff>(flip));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(static_cast<std::streamoff>(flip));
        f.write(&byte, 1);
      }
      auto log = MustOpen(TestConfig(fx.dir));
      const std::string what =
          "bit flip at " + std::to_string(flip) + " (record " +
          std::to_string(i) + ")";
      // crc32c catches every single-bit flip, so the scan stops at record
      // i and exactly the prefix survives.
      EXPECT_TRUE(log->recovery_info().torn) << what;
      ExpectStateMatches(log.get(), ReplayPrefix(fx.records, i), what);
      EXPECT_TRUE(Put(log.get(), 9, 1).ok()) << what;
    }
  }
}

TEST(TornWriteSweepTest, BadSegmentHeaderDropsWholeSegment) {
  const SweepFixture fx = BuildSweepFixture("sweep_header");
  RestorePristine(fx);
  {
    std::fstream f(fx.segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XX", 2);  // clobber the magic
  }
  auto log = MustOpen(TestConfig(fx.dir));
  EXPECT_TRUE(log->recovery_info().torn);
  EXPECT_EQ(log->LiveRecords().size(), 0u);
  EXPECT_TRUE(log->VerifyIndex().ok());
  EXPECT_TRUE(Put(log.get(), 9, 1).ok());
}

}  // namespace
}  // namespace seep::store
