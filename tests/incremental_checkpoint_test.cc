// Incremental checkpointing (paper §3.2's size-reduction extension): delta
// application semantics, operator dirty tracking, end-to-end recovery
// exactness in incremental mode, and the byte savings that motivate it.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "core/state_ops.h"
#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;
using workloads::wordcount::WordCounter;

// ----------------------------------------------------------- ApplyDelta

core::StateCheckpoint BaseCheckpoint() {
  core::StateCheckpoint base;
  base.op = 1;
  base.instance = 9;
  base.seq = 3;
  base.out_clock = 100;
  base.processing.Add(1, "a");
  base.processing.Add(2, "b");
  core::Tuple t;
  t.timestamp = 50;
  base.buffer.Append(4, t);
  return base;
}

core::StateCheckpoint DeltaFor(const core::StateCheckpoint& base) {
  core::StateCheckpoint delta;
  delta.op = base.op;
  delta.instance = base.instance;
  delta.is_delta = true;
  delta.base_seq = base.seq;
  delta.seq = base.seq + 1;
  delta.out_clock = 120;
  return delta;
}

TEST(ApplyDeltaTest, ReplacesInsertsAndDeletes) {
  core::StateCheckpoint base = BaseCheckpoint();
  core::StateCheckpoint delta = DeltaFor(base);
  delta.processing.Add(2, "b2");  // replace
  delta.processing.Add(3, "c");   // insert
  delta.deleted_keys.push_back(1);

  ASSERT_TRUE(core::ApplyDelta(&base, delta).ok());
  EXPECT_EQ(base.seq, 4u);
  EXPECT_EQ(base.out_clock, 120);
  ASSERT_EQ(base.processing.size(), 2u);
  std::map<KeyHash, std::string> entries(base.processing.entries().begin(),
                                         base.processing.entries().end());
  EXPECT_EQ(entries[2], "b2");
  EXPECT_EQ(entries[3], "c");
  EXPECT_FALSE(entries.contains(1));
}

TEST(ApplyDeltaTest, MirrorsBufferTrimAndAppend) {
  core::StateCheckpoint base = BaseCheckpoint();
  core::StateCheckpoint delta = DeltaFor(base);
  delta.buffer_front[4] = 51;  // owner trimmed tuple 50
  core::Tuple fresh;
  fresh.timestamp = 60;
  delta.buffer.Append(4, fresh);

  ASSERT_TRUE(core::ApplyDelta(&base, delta).ok());
  ASSERT_NE(base.buffer.Get(4), nullptr);
  ASSERT_EQ(base.buffer.Get(4)->size(), 1u);
  EXPECT_EQ(base.buffer.Get(4)->front().timestamp, 60);
}

TEST(ApplyDeltaTest, RejectsOutOfOrderAndMismatched) {
  core::StateCheckpoint base = BaseCheckpoint();
  core::StateCheckpoint delta = DeltaFor(base);
  delta.base_seq = 99;
  EXPECT_FALSE(core::ApplyDelta(&base, delta).ok());

  delta = DeltaFor(base);
  delta.is_delta = false;
  EXPECT_FALSE(core::ApplyDelta(&base, delta).ok());

  delta = DeltaFor(base);
  delta.instance = 1234;
  EXPECT_FALSE(core::ApplyDelta(&base, delta).ok());
}

TEST(ApplyDeltaTest, DeltaChainEqualsFullState) {
  // Property: base + delta1 + delta2 == the state after all mutations.
  core::StateCheckpoint rolling = BaseCheckpoint();
  core::StateCheckpoint d1 = DeltaFor(rolling);
  d1.processing.Add(5, "x");
  ASSERT_TRUE(core::ApplyDelta(&rolling, d1).ok());
  core::StateCheckpoint d2 = DeltaFor(rolling);
  d2.processing.Add(5, "y");
  d2.deleted_keys.push_back(2);
  ASSERT_TRUE(core::ApplyDelta(&rolling, d2).ok());

  std::map<KeyHash, std::string> entries(rolling.processing.entries().begin(),
                                         rolling.processing.entries().end());
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1], "a");
  EXPECT_EQ(entries[5], "y");
}

// ----------------------------------------------------- operator tracking

TEST(WordCounterDeltaTest, TracksDirtyWordsOnly) {
  WordCountConfig cfg;
  cfg.probe_every_n = 0;
  WordCounter counter(cfg);

  auto feed = [&](const std::string& word) {
    core::Tuple t;
    t.text = word;
    t.key = HashBytes(word);
    t.event_time = SecondsToSim(1);
    counter.Process(t, nullptr);
  };
  feed("cat");
  feed("dog");
  core::StateDelta d1 = counter.TakeProcessingStateDelta();
  EXPECT_EQ(d1.updated.size(), 2u);
  EXPECT_TRUE(d1.deleted.empty());

  // Nothing changed since: empty delta.
  core::StateDelta d2 = counter.TakeProcessingStateDelta();
  EXPECT_TRUE(d2.updated.empty());

  feed("cat");
  core::StateDelta d3 = counter.TakeProcessingStateDelta();
  ASSERT_EQ(d3.updated.size(), 1u);
  EXPECT_EQ(d3.updated.entries()[0].first, HashBytes("cat"));
}

TEST(WordCounterDeltaTest, ExpiredWordsReportedDeleted) {
  WordCountConfig cfg;
  cfg.probe_every_n = 0;
  cfg.retained_windows = 0;
  WordCounter counter(cfg);
  core::Tuple t;
  t.text = "old";
  t.key = HashBytes("old");
  t.event_time = SecondsToSim(1);  // window 0
  counter.Process(t, nullptr);
  counter.TakeProcessingStateDelta();  // clear

  // Close window 0 and age it out entirely.
  class NullCollector : public core::Collector {
    void EmitTo(int, core::Tuple) override {}
  } sink;
  counter.OnTimer(SecondsToSim(95), &sink);  // current window 3; 0 expired
  core::StateDelta d = counter.TakeProcessingStateDelta();
  ASSERT_EQ(d.deleted.size(), 1u);
  EXPECT_EQ(d.deleted[0], HashBytes("old"));
}

// --------------------------------------------------------- end to end

using Counts = std::map<std::pair<int64_t, std::string>, int64_t>;

struct IncrementalOutcome {
  Counts counts;
  uint64_t checkpoint_bytes = 0;
  uint64_t delta_checkpoints = 0;
  uint64_t delta_failures = 0;
  uint64_t async_captures = 0;
  uint64_t async_aborted = 0;
  uint64_t decode_failures = 0;
  double recovery_seconds = -1;
};

IncrementalOutcome RunIncremental(bool incremental, bool fail,
                                  double scale_out_at = 0,
                                  bool async = false) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 100;
  // Large dictionary relative to the per-interval word sample: most
  // entries are untouched between checkpoints, so deltas stay small.
  wc.vocabulary = 50000;
  wc.seed = 77;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.incremental_checkpoints = incremental;
  config.cluster.async_checkpoints = async;
  config.cluster.pool.target_size = 4;
  config.scaling.enabled = false;

  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  EXPECT_TRUE(sps.Deploy().ok());
  if (scale_out_at > 0) sps.RequestScaleOut(query.counter, scale_out_at);
  if (fail) sps.InjectFailure(query.counter, 67.3);
  sps.RunFor(150);

  IncrementalOutcome out;
  out.counts = results->counts;
  out.checkpoint_bytes = sps.metrics().checkpoint_bytes;
  out.delta_checkpoints = sps.metrics().delta_checkpoints_taken;
  out.delta_failures = sps.metrics().delta_apply_failures;
  out.async_captures = sps.metrics().async_ckpt_captures;
  out.async_aborted = sps.metrics().async_ckpts_aborted;
  out.decode_failures = sps.metrics().ckpt_decode_failures;
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) out.recovery_seconds = r.RecoverySeconds();
  }
  return out;
}

Counts UpTo(const Counts& counts, int64_t max_window) {
  Counts out;
  for (const auto& [key, value] : counts) {
    if (key.first <= max_window) out[key] = value;
  }
  return out;
}

TEST(IncrementalEndToEnd, DeltaCheckpointsShrinkBytes) {
  const IncrementalOutcome full = RunIncremental(false, false);
  const IncrementalOutcome inc = RunIncremental(true, false);
  EXPECT_EQ(full.delta_checkpoints, 0u);
  EXPECT_GT(inc.delta_checkpoints, 10u);
  EXPECT_EQ(inc.delta_failures, 0u);
  // The steady-state dictionary barely changes between checkpoints, so the
  // shipped bytes shrink substantially. (Buffer mirroring sets a floor:
  // every emitted tuple crosses to the backup exactly once, so the
  // reduction cannot exceed data-rate x run-length.)
  EXPECT_LT(inc.checkpoint_bytes,
            static_cast<uint64_t>(0.65 * full.checkpoint_bytes));
  // Results are identical.
  EXPECT_EQ(full.counts, inc.counts);
}

TEST(IncrementalEndToEnd, RecoveryFromDeltaChainIsExact) {
  const IncrementalOutcome baseline = RunIncremental(true, false);
  const IncrementalOutcome failed = RunIncremental(true, true);
  EXPECT_GT(failed.recovery_seconds, 0);
  EXPECT_EQ(UpTo(baseline.counts, 3), UpTo(failed.counts, 3));
}

TEST(IncrementalEndToEnd, ScaleOutContinuesDeltaLineage) {
  const IncrementalOutcome baseline = RunIncremental(true, false);
  const IncrementalOutcome scaled = RunIncremental(true, false, 52.0);
  EXPECT_EQ(UpTo(baseline.counts, 3), UpTo(scaled.counts, 3));
  EXPECT_EQ(scaled.delta_failures, 0u);
  // After restore, partitions resume incremental checkpointing.
  EXPECT_GT(scaled.delta_checkpoints, 10u);
}

// ---------------------------------------- async pipeline x incremental

TEST(IncrementalEndToEnd, AsyncDeltaPipelineMatchesSyncResults) {
  // Delta admissibility must hold while earlier frames are still in the
  // background serializer: every interval's capture advances the lineage
  // synchronously, so deltas keep flowing and apply cleanly at the holder.
  const IncrementalOutcome sync = RunIncremental(true, false);
  const IncrementalOutcome async =
      RunIncremental(true, false, /*scale_out_at=*/0, /*async=*/true);
  EXPECT_GT(async.async_captures, 10u);
  EXPECT_GT(async.delta_checkpoints, 10u);
  EXPECT_EQ(async.delta_failures, 0u);
  EXPECT_EQ(async.decode_failures, 0u);
  EXPECT_EQ(sync.counts, async.counts);
}

TEST(IncrementalEndToEnd, AsyncRecoveryFromDeltaChainIsExact) {
  const IncrementalOutcome baseline = RunIncremental(true, false);
  const IncrementalOutcome failed =
      RunIncremental(true, true, /*scale_out_at=*/0, /*async=*/true);
  EXPECT_GT(failed.recovery_seconds, 0);
  EXPECT_EQ(failed.delta_failures, 0u);
  EXPECT_EQ(UpTo(baseline.counts, 3), UpTo(failed.counts, 3));
}

TEST(IncrementalEndToEnd, AsyncScaleOutAbortsInFlightWorkCleanly) {
  // Scale-out suspends the partitioned instance's checkpointing; any
  // capture or frame caught between pipeline stages must abort without a
  // stale store (the level-1 auditor's no-store-while-suspended and
  // aborted-checkpoint-stored invariants police this), and the post-restore
  // lineage must keep producing exact results.
  const IncrementalOutcome baseline = RunIncremental(true, false);
  const IncrementalOutcome scaled =
      RunIncremental(true, false, /*scale_out_at=*/52.0, /*async=*/true);
  EXPECT_EQ(UpTo(baseline.counts, 3), UpTo(scaled.counts, 3));
  EXPECT_EQ(scaled.delta_failures, 0u);
  EXPECT_EQ(scaled.decode_failures, 0u);
  EXPECT_GT(scaled.delta_checkpoints, 10u);
}

TEST(IncrementalEndToEnd, FailureAfterScaleOutWithDeltasIsExact) {
  const IncrementalOutcome baseline = RunIncremental(true, false);
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 100;
  wc.vocabulary = 50000;
  wc.seed = 77;
  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.incremental_checkpoints = true;
  config.cluster.pool.target_size = 4;
  config.scaling.enabled = false;
  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RequestScaleOut(query.counter, 40.0);
  sps.InjectFailure(query.counter, 90.0);
  sps.RunFor(150);
  EXPECT_EQ(UpTo(baseline.counts, 3), UpTo(results->counts, 3));
}

}  // namespace
}  // namespace seep
