// Unit tests for the networking subsystem (src/net/): event loop basics,
// incremental frame parsing across arbitrary chunk boundaries, worker
// message delivery (FIFO per link), dead-peer detection, and outbound
// queue limits.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/event_loop.h"
#include "net/local_cluster.h"
#include "net/wire.h"
#include "net/worker.h"

namespace seep::net {
namespace {

using namespace std::chrono_literals;

// Polls `pred` until true or ~2s of wall clock elapse.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// ---------------------------------------------------------------- EventLoop

TEST(EventLoopTest, PostRunsTasksOnLoopThread) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::atomic<bool> in_loop_thread{false};
  std::thread t([&] { loop.Run(); });
  loop.Post([&] {
    in_loop_thread = loop.InLoopThread();
    ++ran;
  });
  EXPECT_TRUE(WaitFor([&] { return ran.load() == 1; }));
  EXPECT_TRUE(in_loop_thread.load());
  EXPECT_FALSE(loop.InLoopThread());
  loop.Stop();
  t.join();
}

TEST(EventLoopTest, LoopThreadIdPublicationIsRaceFree) {
  // Regression for the loop_thread_ data race: Run() publishes the loop's
  // thread id with a release store into an atomic, and InLoopThread reads
  // it with an acquire load, so callers may legitimately race loop
  // startup. A reader polls InLoopThread across Run()'s startup and
  // shutdown stores; the TSan CI job fails here if loop_thread_ regresses
  // to a plain member.
  for (int round = 0; round < 10; ++round) {
    EventLoop loop;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
      while (!stop.load()) {
        loop.InLoopThread();
      }
    });
    std::thread t([&] { loop.Run(); });
    std::atomic<bool> ran{false};
    loop.Post([&] { ran = true; });
    EXPECT_TRUE(WaitFor([&] { return ran.load(); }));
    EXPECT_FALSE(loop.InLoopThread());
    loop.Stop();
    t.join();
    stop = true;
    reader.join();
  }
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  sync::Mutex mu;
  std::vector<int> order;
  std::thread t([&] { loop.Run(); });
  loop.Post([&] {
    loop.AddTimer(30ms, [&] {
      sync::MutexLock lock(&mu);
      order.push_back(2);
    });
    loop.AddTimer(5ms, [&] {
      sync::MutexLock lock(&mu);
      order.push_back(1);
    });
  });
  EXPECT_TRUE(WaitFor([&] {
    sync::MutexLock lock(&mu);
    return order.size() == 2;
  }));
  loop.Stop();
  t.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  std::atomic<bool> late_fired{false};
  std::thread t([&] { loop.Run(); });
  loop.Post([&] {
    const TimerId id = loop.AddTimer(10ms, [&] { fired = true; });
    loop.CancelTimer(id);
    loop.AddTimer(50ms, [&] { late_fired = true; });
  });
  EXPECT_TRUE(WaitFor([&] { return late_fired.load(); }));
  EXPECT_FALSE(fired.load());
  loop.Stop();
  t.join();
}

// -------------------------------------------------------------- FrameReader

std::vector<uint8_t> FrameOf(const Message& msg) { return EncodeMessage(msg); }

TEST(FrameReaderTest, ReassemblesAcrossEveryChunkBoundary) {
  Message a;
  a.type = MessageType::kBatch;
  a.from_vm = 1;
  a.to_vm = 2;
  a.body = {10, 20, 30};
  Message b;
  b.type = MessageType::kControl;
  b.from_vm = 2;
  b.to_vm = 1;
  b.ship_id = 77;
  b.body = std::vector<uint8_t>(300, 0x42);  // multi-byte length varints

  std::vector<uint8_t> stream = FrameOf(a);
  const std::vector<uint8_t> fb = FrameOf(b);
  stream.insert(stream.end(), fb.begin(), fb.end());

  // Split the two-frame stream at every possible byte boundary; the reader
  // must produce exactly the two payloads regardless of chunking.
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameReader reader;
    std::vector<std::vector<uint8_t>> payloads;
    ASSERT_TRUE(reader.Consume(stream.data(), split, &payloads).ok());
    ASSERT_TRUE(reader
                    .Consume(stream.data() + split, stream.size() - split,
                             &payloads)
                    .ok());
    ASSERT_EQ(payloads.size(), 2u) << "split at " << split;
    auto da = DecodeMessage(payloads[0]);
    auto db = DecodeMessage(payloads[1]);
    ASSERT_TRUE(da.ok());
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(da.value().body, a.body);
    EXPECT_EQ(db.value().ship_id, b.ship_id);
    EXPECT_EQ(db.value().body, b.body);
    EXPECT_EQ(reader.pending_bytes(), 0u);
  }
}

TEST(FrameReaderTest, ByteByByteFeed) {
  Message m;
  m.type = MessageType::kCheckpoint;
  m.from_vm = 3;
  m.to_vm = 4;
  m.body = {9, 8, 7, 6, 5};
  const std::vector<uint8_t> stream = FrameOf(m);
  FrameReader reader;
  std::vector<std::vector<uint8_t>> payloads;
  for (uint8_t byte : stream) {
    ASSERT_TRUE(reader.Consume(&byte, 1, &payloads).ok());
  }
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(DecodeMessage(payloads[0]).value().body, m.body);
}

TEST(FrameReaderTest, CorruptPayloadIsStickyError) {
  Message m;
  m.body = {1, 2, 3, 4};
  std::vector<uint8_t> stream = FrameOf(m);
  stream.back() ^= 0x01;
  FrameReader reader;
  std::vector<std::vector<uint8_t>> payloads;
  EXPECT_FALSE(reader.Consume(stream.data(), stream.size(), &payloads).ok());
  EXPECT_TRUE(payloads.empty());
}

TEST(FrameReaderTest, OversizedDeclaredLengthRejectedEarly) {
  // A header claiming a payload beyond the reader's cap must be rejected
  // from the header alone, before any payload bytes arrive.
  std::vector<uint8_t> header(serde::kFrameHeaderBytes, 0);
  header[3] = 0xFF;  // declared length ~4 GiB
  FrameReader reader(/*max_payload=*/1 << 20);
  std::vector<std::vector<uint8_t>> payloads;
  EXPECT_FALSE(reader.Consume(header.data(), header.size(), &payloads).ok());
}

// ------------------------------------------------------------ LocalCluster

struct Inbox {
  sync::Mutex mu;
  sync::CondVar cv;
  std::vector<Message> messages SEEP_GUARDED_BY(mu);

  void Push(Message msg) {
    sync::MutexLock lock(&mu);
    messages.push_back(std::move(msg));
    cv.NotifyAll();
  }
  size_t Size() {
    sync::MutexLock lock(&mu);
    return messages.size();
  }
  bool WaitForCount(size_t n) {
    sync::MutexLock lock(&mu);
    return cv.WaitFor(&mu, 2s, [&] {
      mu.AssertHeld();
      return messages.size() >= n;
    });
  }
};

Message MakeMsg(VmId from, VmId to, uint64_t tag) {
  Message msg;
  msg.type = MessageType::kControl;
  msg.from_vm = from;
  msg.to_vm = to;
  msg.ship_id = tag;
  msg.body = std::vector<uint8_t>(64, static_cast<uint8_t>(tag));
  return msg;
}

TEST(LocalClusterTest, DeliversMessagesInFifoOrderPerLink) {
  LocalCluster cluster;
  Inbox inbox;
  ASSERT_TRUE(cluster.StartWorker(1, nullptr).ok());
  ASSERT_TRUE(
      cluster.StartWorker(2, [&](Message m) { inbox.Push(std::move(m)); })
          .ok());

  constexpr uint64_t kCount = 200;
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_NE(cluster.Post(1, 2, MakeMsg(1, 2, i)), SendStatus::kClosed);
  }
  ASSERT_TRUE(inbox.WaitForCount(kCount));
  sync::MutexLock lock(&inbox.mu);
  for (uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(inbox.messages[i].ship_id, i) << "reordered at " << i;
    EXPECT_EQ(inbox.messages[i].from_vm, 1u);
  }
}

TEST(LocalClusterTest, BidirectionalTraffic) {
  LocalCluster cluster;
  Inbox at1, at2;
  ASSERT_TRUE(
      cluster.StartWorker(1, [&](Message m) { at1.Push(std::move(m)); })
          .ok());
  ASSERT_TRUE(
      cluster.StartWorker(2, [&](Message m) { at2.Push(std::move(m)); })
          .ok());
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_NE(cluster.Post(1, 2, MakeMsg(1, 2, i)), SendStatus::kClosed);
    ASSERT_NE(cluster.Post(2, 1, MakeMsg(2, 1, i)), SendStatus::kClosed);
  }
  EXPECT_TRUE(at2.WaitForCount(50));
  EXPECT_TRUE(at1.WaitForCount(50));
}

TEST(LocalClusterTest, SenderMayStartBeforeReceiver) {
  // Frames posted before the peer registers are held and flushed once the
  // reconnect backoff finds the listener.
  LocalCluster cluster;
  Inbox inbox;
  ASSERT_TRUE(cluster.StartWorker(1, nullptr).ok());
  ASSERT_NE(cluster.Post(1, 2, MakeMsg(1, 2, 1)), SendStatus::kClosed);
  ASSERT_NE(cluster.Post(1, 2, MakeMsg(1, 2, 2)), SendStatus::kClosed);
  ASSERT_TRUE(
      cluster.StartWorker(2, [&](Message m) { inbox.Push(std::move(m)); })
          .ok());
  ASSERT_TRUE(inbox.WaitForCount(2));
  sync::MutexLock lock(&inbox.mu);
  EXPECT_EQ(inbox.messages[0].ship_id, 1u);
  EXPECT_EQ(inbox.messages[1].ship_id, 2u);
}

TEST(LocalClusterTest, KilledWorkerLooksLikeDeadPeer) {
  LocalCluster cluster;
  Inbox inbox;
  std::atomic<uint64_t> disconnects_at_1{0};
  ASSERT_TRUE(cluster
                  .StartWorker(
                      1, [&](Message m) { inbox.Push(std::move(m)); },
                      [&](VmId) { ++disconnects_at_1; })
                  .ok());
  ASSERT_TRUE(
      cluster.StartWorker(2, [&](Message m) { inbox.Push(std::move(m)); })
          .ok());

  // Establish the 1->2 link, then kill 2 mid-stream.
  ASSERT_NE(cluster.Post(1, 2, MakeMsg(1, 2, 0)), SendStatus::kClosed);
  ASSERT_TRUE(inbox.WaitForCount(1));
  cluster.KillWorker(2);
  EXPECT_FALSE(cluster.IsAttached(2));

  // The sender observes the dead peer: its outbound link dies. Keep
  // posting so the link's death is exercised, not just idle-detected.
  EXPECT_TRUE(WaitFor([&] {
    // The peer is dead; this probe is allowed (expected) to fail.
    // seep-ok: unchecked-status -- probing a dead link
    (void)cluster.Post(1, 2, MakeMsg(1, 2, 99));
    return disconnects_at_1.load() >= 1;
  }));

  // Posting from the dead worker reports closed.
  EXPECT_EQ(cluster.Post(2, 1, MakeMsg(2, 1, 7)), SendStatus::kClosed);
}

TEST(LocalClusterTest, OutboundOverflowDropsAndReports) {
  WorkerOptions options;
  options.queue_limits.pressure_bytes = 2 * 1024;
  options.queue_limits.max_bytes = 8 * 1024;
  LocalCluster cluster(options);
  ASSERT_TRUE(cluster.StartWorker(1, nullptr).ok());
  // No worker 2 exists: frames pile up in the pending queue until the hard
  // cap drops them.
  bool saw_pressure = false;
  bool saw_overflow = false;
  for (int i = 0; i < 200; ++i) {
    const SendStatus st = cluster.Post(1, 2, MakeMsg(1, 2, 1));
    saw_pressure |= st == SendStatus::kPressured;
    saw_overflow |= st == SendStatus::kOverflow;
  }
  EXPECT_TRUE(saw_pressure);
  EXPECT_TRUE(saw_overflow);
  EXPECT_TRUE(WaitFor([&] { return cluster.TotalStats().frames_dropped > 0; }));
}

TEST(LocalClusterTest, HelloAttributesInboundDisconnect) {
  LocalCluster cluster;
  std::atomic<uint64_t> disconnect_peer{kInvalidVm};
  ASSERT_TRUE(cluster
                  .StartWorker(
                      2, nullptr,
                      [&](VmId peer) { disconnect_peer = peer; })
                  .ok());
  ASSERT_TRUE(cluster.StartWorker(7, nullptr).ok());
  // Establish 7 -> 2 (hello carries from_vm=7), then kill the sender.
  ASSERT_NE(cluster.Post(7, 2, MakeMsg(7, 2, 1)), SendStatus::kClosed);
  EXPECT_TRUE(WaitFor(
      [&] { return cluster.TotalStats().messages_delivered >= 1; }));
  cluster.KillWorker(7);
  EXPECT_TRUE(WaitFor([&] { return disconnect_peer.load() == 7u; }));
}

}  // namespace
}  // namespace seep::net
