// Unit tests for the cloud substrate: VM lifecycle, provisioning delays,
// billing, and the VM pool's grant/refill/stall behaviour (paper §5.2).

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "cloud/vm_pool.h"
#include "sim/simulation.h"

namespace seep::cloud {
namespace {

CloudProviderConfig SlowProvider() {
  CloudProviderConfig cfg;
  cfg.provision_delay_mean = SecondsToSim(90);
  cfg.provision_jitter = 0;  // deterministic timings for assertions
  return cfg;
}

TEST(CloudProviderTest, ProvisioningTakesConfiguredDelay) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  SimTime granted_at = -1;
  provider.RequestVm([&](VmId id) { granted_at = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(granted_at, SecondsToSim(90));
}

TEST(CloudProviderTest, ImmediateRequestIsSynchronous) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  const VmId id = provider.RequestVmImmediate();
  const Vm* vm = provider.GetVm(id);
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->state, VmState::kPooled);
}

TEST(CloudProviderTest, LifecycleTransitions) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  const VmId id = provider.RequestVmImmediate();
  EXPECT_TRUE(provider.MarkInUse(id).ok());
  EXPECT_EQ(provider.GetVm(id)->state, VmState::kInUse);
  EXPECT_FALSE(provider.MarkInUse(id).ok());  // not pooled any more
  EXPECT_TRUE(provider.KillVm(id).ok());
  EXPECT_EQ(provider.GetVm(id)->state, VmState::kFailed);
  EXPECT_FALSE(provider.KillVm(id).ok());     // already dead
  EXPECT_FALSE(provider.ReleaseVm(id).ok());  // already dead
}

TEST(CloudProviderTest, CompensatingReleaseToleratesAlreadyTerminated) {
  // Regression test for the seep_analyzer unchecked-status rule: the
  // compensation paths used to `(void)` the ReleaseVm status, so a
  // failed release (a billing leak) looked identical to a benign
  // double-release. ReleaseVmCompensating tolerates exactly the benign
  // races — the VM was already released or already failed — and aborts
  // on anything else.
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  const VmId released_twice = provider.RequestVmImmediate();
  provider.ReleaseVmCompensating(released_twice);
  EXPECT_EQ(provider.GetVm(released_twice)->state, VmState::kReleased);
  // Compensating a VM another path already released must not abort.
  provider.ReleaseVmCompensating(released_twice);

  // Compensating a VM that died before the release must not abort
  // either: the compensation's goal (the VM is not billing) holds.
  const VmId died_first = provider.RequestVmImmediate();
  ASSERT_TRUE(provider.KillVm(died_first).ok());
  provider.ReleaseVmCompensating(died_first);
  EXPECT_EQ(provider.GetVm(died_first)->state, VmState::kFailed);
}

TEST(CloudProviderTest, UnknownVmRejected) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  EXPECT_TRUE(provider.KillVm(12345).IsNotFound());
}

TEST(CloudProviderTest, BillingAccruesUntilRelease) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  const VmId id = provider.RequestVmImmediate();
  sim.RunUntil(SecondsToSim(100));
  EXPECT_TRUE(provider.ReleaseVm(id).ok());
  sim.RunUntil(SecondsToSim(500));
  EXPECT_DOUBLE_EQ(provider.BilledVmSeconds(), 100.0);
}

TEST(CloudProviderTest, KillDuringProvisioningNeverGrants) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  bool granted = false;
  provider.RequestVm([&](VmId) { granted = true; });
  // The requested VM has id 0; kill it while it is still booting.
  sim.Schedule(SecondsToSim(10), [&] { EXPECT_TRUE(provider.KillVm(0).ok()); });
  sim.RunAll();
  EXPECT_FALSE(granted);
}

// ------------------------------------------------------------------ VM pool

TEST(VmPoolTest, GrantFromPrefilledPoolIsFast) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  VmPoolConfig cfg;
  cfg.target_size = 2;
  cfg.grant_delay = SecondsToSim(2);
  VmPool pool(&sim, &provider, cfg);
  pool.PrefillImmediate();
  ASSERT_EQ(pool.available(), 2u);

  SimTime granted_at = -1;
  pool.Acquire([&](VmId id) {
    granted_at = sim.Now();
    EXPECT_EQ(provider.GetVm(id)->state, VmState::kInUse);
  });
  sim.RunAll();
  EXPECT_EQ(granted_at, SecondsToSim(2));
}

TEST(VmPoolTest, ExhaustedPoolStallsUntilProvisioning) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  VmPoolConfig cfg;
  cfg.target_size = 1;
  cfg.grant_delay = SecondsToSim(2);
  VmPool pool(&sim, &provider, cfg);
  pool.PrefillImmediate();

  std::vector<SimTime> grants;
  pool.Acquire([&](VmId) { grants.push_back(sim.Now()); });  // from pool
  pool.Acquire([&](VmId) { grants.push_back(sim.Now()); });  // must wait
  sim.RunAll();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0], SecondsToSim(2));
  // Second grant waits ~90 s provisioning + 2 s grant.
  EXPECT_GE(grants[1], SecondsToSim(90));
  // Wait-time stats recorded one sample per grant.
  EXPECT_EQ(pool.wait_times().count(), 2u);
  EXPECT_GT(pool.wait_times().Max(), 89.0);
}

TEST(VmPoolTest, RefillsAfterGrants) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  VmPoolConfig cfg;
  cfg.target_size = 2;
  cfg.grant_delay = SecondsToSim(1);
  VmPool pool(&sim, &provider, cfg);
  pool.PrefillImmediate();
  pool.Acquire([](VmId) {});
  sim.RunAll();
  // After the asynchronous refill completes the pool is back at target.
  EXPECT_EQ(pool.available(), 2u);
}

TEST(VmPoolTest, ShrinkReleasesSurplus) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  VmPoolConfig cfg;
  cfg.target_size = 4;
  VmPool pool(&sim, &provider, cfg);
  pool.PrefillImmediate();
  EXPECT_EQ(pool.available(), 4u);
  pool.SetTargetSize(1);
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(provider.num_live(), 1u);
}

TEST(VmPoolTest, ZeroPoolAlwaysStalls) {
  sim::Simulation sim;
  CloudProvider provider(&sim, SlowProvider(), 1);
  VmPoolConfig cfg;
  cfg.target_size = 0;
  cfg.grant_delay = SecondsToSim(1);
  VmPool pool(&sim, &provider, cfg);
  pool.PrefillImmediate();
  SimTime granted_at = -1;
  pool.Acquire([&](VmId) { granted_at = sim.Now(); });
  sim.RunAll();
  EXPECT_GE(granted_at, SecondsToSim(90));
}

}  // namespace
}  // namespace seep::cloud
