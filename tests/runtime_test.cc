// Runtime-level tests on a minimal deployed query: service-time modelling,
// duplicate filtering, the checkpoint → backup → trim-acknowledgement chain,
// admission control, fences, and checkpoint/restore on a live instance.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "control/deployment_manager.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {
namespace {

// A tiny keyed counter operator used as the stateful test subject.
class CountingOperator : public core::Operator {
 public:
  explicit CountingOperator(double cost_us = 10) : cost_us_(cost_us) {}

  void Process(const core::Tuple& input, core::Collector* out) override {
    ++counts_[input.key];
    core::Tuple t;
    t.key = input.key;
    t.event_time = input.event_time;
    t.ints = {static_cast<int64_t>(counts_[input.key]), 0, 0, 0};
    out->Emit(std::move(t));
  }
  bool IsStateful() const override { return true; }
  double CostMicrosPerTuple() const override { return cost_us_; }

  core::ProcessingState GetProcessingState() const override {
    core::ProcessingState state;
    for (const auto& [key, count] : counts_) {
      state.Add(key, std::to_string(count));
    }
    return state;
  }
  void SetProcessingState(const core::ProcessingState& state) override {
    counts_.clear();
    for (const auto& [key, value] : state.entries()) {
      counts_[key] = std::stoull(value);
    }
  }

 private:
  double cost_us_;
  std::map<KeyHash, uint64_t> counts_;
};

// Source emitting `rate` tuples/s with round-robin keys.
class RoundRobinSource : public core::SourceGenerator {
 public:
  explicit RoundRobinSource(double rate) : rate_(rate) {}
  void GenerateBatch(SimTime now, SimTime dt,
                     core::Collector* emit) override {
    const double want = rate_ * SimToSeconds(dt) + carry_;
    const auto n = static_cast<size_t>(want);
    carry_ = want - static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      core::Tuple t;
      t.event_time = now;
      t.key = Mix64(counter_++ % 16);
      emit->Emit(std::move(t));
    }
  }
  double TargetRate(SimTime) const override { return rate_; }

 private:
  double rate_;
  double carry_ = 0;
  uint64_t counter_ = 0;
};

class CountingSink : public core::SinkConsumer {
 public:
  explicit CountingSink(uint64_t* counter) : counter_(counter) {}
  void Consume(const core::Tuple&, SimTime) override { ++(*counter_); }

 private:
  uint64_t* counter_;
};

struct Harness {
  explicit Harness(ClusterConfig config = {}, double rate = 100,
                   double op_cost_us = 10) {
    received = std::make_shared<uint64_t>(0);
    source = graph.AddSource(
        "src",
        [rate](uint32_t, uint32_t) {
          return std::make_unique<RoundRobinSource>(rate);
        });
    op = graph.AddOperator(
        "count",
        [op_cost_us] { return std::make_unique<CountingOperator>(op_cost_us); },
        /*stateful=*/true);
    sink = graph.AddSink("snk", [r = received] {
      return std::make_unique<CountingSink>(r.get());
    });
    SEEP_CHECK(graph.Connect(source, op).ok());
    SEEP_CHECK(graph.Connect(op, sink).ok());
    cluster = std::make_unique<Cluster>(&graph, config);
    control::DeploymentManager deployer(cluster.get());
    SEEP_CHECK(deployer.DeployAll().ok());
  }

  OperatorInstance* InstanceOf(OperatorId id) {
    return cluster->GetInstance(cluster->LiveInstancesOf(id).at(0));
  }

  core::QueryGraph graph;
  OperatorId source, op, sink;
  std::shared_ptr<uint64_t> received;
  std::unique_ptr<Cluster> cluster;
};

TEST(RuntimeTest, TuplesFlowEndToEnd) {
  Harness h;
  h.cluster->simulation()->RunUntil(SecondsToSim(10));
  // ~100 tuples/s for 10 s, modulo the first tick and in-flight tail.
  EXPECT_NEAR(static_cast<double>(*h.received), 1000, 20);
  EXPECT_EQ(h.cluster->metrics()->duplicates_dropped, 0u);
}

TEST(RuntimeTest, UtilizationReflectsLoad) {
  // 1000 tuples/s at 100 µs each = 10% utilisation... times queueing; use
  // 500 µs for 50%.
  Harness h({}, /*rate=*/1000, /*op_cost_us=*/500);
  h.cluster->simulation()->RunUntil(SecondsToSim(10));
  OperatorInstance* inst = h.InstanceOf(h.op);
  const double busy = inst->TakeBusyMicros();
  EXPECT_NEAR(busy / static_cast<double>(SecondsToSim(10)), 0.5, 0.05);
}

TEST(RuntimeTest, CheckpointBackupAndTrimChain) {
  ClusterConfig config;
  config.checkpoint_interval = SecondsToSim(2);
  Harness h(config);
  auto* sim = h.cluster->simulation();
  sim->RunUntil(SecondsToSim(1));
  // Before any checkpoint: the source and the operator hold growing buffers.
  OperatorInstance* src = h.InstanceOf(h.source);
  const size_t buffered_early = src->buffer_state().TotalTuples();
  EXPECT_GT(buffered_early, 0u);

  sim->RunUntil(SecondsToSim(11));
  // Checkpoints every 2 s: the operator backed up its state to the source VM
  // and the source trimmed its buffer to the acknowledged positions.
  EXPECT_GT(h.cluster->metrics()->checkpoints_taken, 3u);
  const InstanceId op_instance = h.cluster->LiveInstancesOf(h.op).at(0);
  EXPECT_TRUE(h.cluster->backups()->Has(op_instance));
  EXPECT_EQ(h.cluster->backups()->HolderOf(op_instance), src->id());
  // Buffer holds roughly one checkpoint interval of tuples, not 11 s worth.
  EXPECT_LT(src->buffer_state().TotalTuples(), 450u);
}

TEST(RuntimeTest, CheckpointCarriesProcessingState) {
  ClusterConfig config;
  config.checkpoint_interval = SecondsToSim(2);
  Harness h(config);
  h.cluster->simulation()->RunUntil(SecondsToSim(5));
  const InstanceId op_instance = h.cluster->LiveInstancesOf(h.op).at(0);
  // Find, not Retrieve: the assertions only inspect the stored entry, so
  // there is no reason to copy the whole checkpoint out.
  const auto* entry = h.cluster->backups()->Find(op_instance);
  ASSERT_NE(entry, nullptr);
  // 16 distinct keys have been counted.
  EXPECT_EQ(entry->checkpoint.processing.size(), 16u);
  EXPECT_GT(entry->checkpoint.positions.positions().size(), 0u);
}

TEST(RuntimeTest, MakeCheckpointRestoreRoundtripOnLiveInstance) {
  Harness h;
  auto* sim = h.cluster->simulation();
  sim->RunUntil(SecondsToSim(5));
  OperatorInstance* inst = h.InstanceOf(h.op);
  core::StateCheckpoint ckpt = inst->MakeCheckpoint();
  EXPECT_EQ(ckpt.processing.size(), 16u);
  EXPECT_EQ(ckpt.out_clock, inst->out_clock());

  // Wipe and restore: state and positions come back.
  inst->ResetEmpty(h.cluster->NewOrigin());
  EXPECT_TRUE(inst->MakeCheckpoint().processing.empty());
  inst->Restore(ckpt, /*inherit_origin=*/true);
  EXPECT_EQ(inst->MakeCheckpoint().processing.size(), 16u);
  EXPECT_EQ(inst->origin(), ckpt.origin);
  EXPECT_EQ(inst->out_clock(), ckpt.out_clock);
}

TEST(RuntimeTest, DuplicateTimestampsAreDropped) {
  Harness h;
  auto* sim = h.cluster->simulation();
  sim->RunUntil(SecondsToSim(2));
  OperatorInstance* op = h.InstanceOf(h.op);
  const uint64_t processed_before = op->processed_tuples();

  // Hand-craft a duplicate batch from the source's already-sent range.
  OperatorInstance* src = h.InstanceOf(h.source);
  core::TupleBatch dup;
  core::Tuple t;
  t.origin = src->origin();
  t.timestamp = 1;  // long since processed
  t.key = Mix64(1);
  dup.tuples.push_back(t);
  op->OnBatch(std::move(dup));
  sim->RunUntil(SecondsToSim(3));
  EXPECT_EQ(h.cluster->metrics()->duplicates_dropped, 1u);
  EXPECT_GT(op->processed_tuples(), processed_before);
}

TEST(RuntimeTest, AdmissionControlDropsBeyondQueueLimit) {
  ClusterConfig config;
  config.max_queue_tuples = 50;
  // Operator far too slow for the offered rate.
  Harness h(config, /*rate=*/1000, /*op_cost_us=*/100000);
  h.cluster->simulation()->RunUntil(SecondsToSim(5));
  EXPECT_GT(h.cluster->metrics()->dropped_tuples.total(), 0u);
}

TEST(RuntimeTest, ReplayBatchesBypassAdmission) {
  ClusterConfig config;
  config.max_queue_tuples = 10;
  Harness h(config, /*rate=*/1, /*op_cost_us=*/1000000);
  auto* sim = h.cluster->simulation();
  OperatorInstance* op = h.InstanceOf(h.op);
  core::TupleBatch big;
  big.replay = true;
  for (int i = 0; i < 1000; ++i) {
    core::Tuple t;
    t.origin = 1234;
    t.timestamp = i + 1;
    big.tuples.push_back(t);
  }
  op->OnBatch(std::move(big));
  sim->RunUntil(SecondsToSim(1));
  EXPECT_GE(op->queued_tuples() + op->processed_tuples(), 900u);
}

TEST(RuntimeTest, FenceCompletesAfterQueuedWork) {
  Harness h;
  auto* sim = h.cluster->simulation();
  sim->RunUntil(SecondsToSim(1));
  OperatorInstance* op = h.InstanceOf(h.op);

  SimTime fence_done = -1;
  const uint64_t fence = h.cluster->fences()->Register(
      1, {op->id()}, [&](SimTime at) { fence_done = at; });
  core::TupleBatch marker;
  marker.fence_id = fence;
  op->OnBatch(std::move(marker));
  sim->RunUntil(SecondsToSim(2));
  EXPECT_GE(fence_done, SecondsToSim(1));
}

TEST(RuntimeTest, KillVmDropsInstanceAndBackupsHeldThere) {
  ClusterConfig config;
  config.checkpoint_interval = SecondsToSim(1);
  Harness h(config);
  auto* sim = h.cluster->simulation();
  sim->RunUntil(SecondsToSim(5));
  const InstanceId op_instance = h.cluster->LiveInstancesOf(h.op).at(0);
  OperatorInstance* src = h.InstanceOf(h.source);
  ASSERT_TRUE(h.cluster->backups()->Has(op_instance));

  // Killing the source VM loses the checkpoint stored there.
  ASSERT_TRUE(h.cluster->membership()->KillVm(src->vm()).ok());
  EXPECT_FALSE(h.cluster->backups()->Has(op_instance));
  EXPECT_FALSE(src->alive());
  EXPECT_EQ(src->died_at(), SecondsToSim(5));
  EXPECT_TRUE(h.cluster->LiveInstancesOf(h.source).empty());
}

TEST(RuntimeTest, PauseHoldsWorkAndResumeDrains) {
  Harness h;
  auto* sim = h.cluster->simulation();
  sim->RunUntil(SecondsToSim(1));
  OperatorInstance* op = h.InstanceOf(h.op);
  const uint64_t before = op->processed_tuples();
  op->Pause();
  sim->RunUntil(SecondsToSim(3));
  // At most the in-flight job finished after the pause.
  EXPECT_LE(op->processed_tuples(), before + 32);
  EXPECT_GT(op->queued_tuples(), 0u);
  op->Resume();
  sim->RunUntil(SecondsToSim(4));
  EXPECT_GT(op->processed_tuples(), before + 100);
}

TEST(RuntimeTest, StoppedInstanceIgnoresTraffic) {
  Harness h;
  auto* sim = h.cluster->simulation();
  sim->RunUntil(SecondsToSim(1));
  OperatorInstance* op = h.InstanceOf(h.op);
  op->Stop();
  const uint64_t before = op->processed_tuples();
  sim->RunUntil(SecondsToSim(3));
  EXPECT_EQ(op->processed_tuples(), before);
  EXPECT_EQ(op->queued_tuples(), 0u);
}

}  // namespace
}  // namespace seep::runtime
