// Tests for the protocol invariant auditor: per-invariant unit tests with
// a collecting handler, mutation tests that corrupt protocol state (a trim
// decision, a routing table, a replay/fence order) and assert the auditor
// aborts naming the violated invariant, and an audited end-to-end smoke run
// that must finish with zero violations.
//
// The mutation tests exercise the auditor's abort path the way a buggy
// component would: the hook stream is the component's claimed actions, so a
// corrupted internal table manifests as a claimed action that disagrees
// with the auditor's independently accumulated mirror.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/hash.h"
#include "control/deployment_manager.h"
#include "core/state_ops.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"
#include "runtime/trim_tracker.h"
#include "verify/invariant_auditor.h"

namespace seep::verify {
namespace {

// ------------------------------------------------------------ unit tests

/// An auditor whose violations are collected instead of aborting.
struct Collector {
  explicit Collector(int level = kAuditExpensive) : audit(level) {
    audit.SetHandler(
        [this](const Violation& v) { names.push_back(v.invariant); });
  }

  InvariantAuditor audit;
  std::vector<std::string> names;
};

constexpr InstanceId kUp = 1;
constexpr OperatorId kDownOp = 7;
constexpr InstanceId kA = 2;
constexpr InstanceId kB = 3;

TEST(AuditorTrimTest, TrimWithinAckedCoverageIsClean) {
  Collector c;
  c.audit.OnNoteSent(kUp, kDownOp, kA, 100);
  c.audit.OnTrimAck(kUp, kDownOp, kA, 60);
  c.audit.OnTrim(kUp, kDownOp, 60, {kA});
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorTrimTest, TrimBeyondCoverageTripsCheckpointCoversTrim) {
  Collector c;
  c.audit.OnNoteSent(kUp, kDownOp, kA, 100);
  c.audit.OnTrimAck(kUp, kDownOp, kA, 60);
  c.audit.OnTrim(kUp, kDownOp, 61, {kA});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "checkpoint-covers-trim");
}

TEST(AuditorTrimTest, RegressingTrimTripsMonotonicity) {
  Collector c;
  c.audit.OnNoteSent(kUp, kDownOp, kA, 100);
  c.audit.OnTrimAck(kUp, kDownOp, kA, 50);
  c.audit.OnTrim(kUp, kDownOp, 50, {kA});
  c.audit.OnTrim(kUp, kDownOp, 40, {kA});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "trim-monotonicity");
}

TEST(AuditorTrimTest, FullyAckedDestinationsAllowTrimToMaxSent) {
  // Mirror of the TrimTracker bound: a destination with sent == acked has
  // nothing outstanding and does not constrain the trim.
  Collector c;
  c.audit.OnNoteSent(kUp, kDownOp, kA, 80);
  c.audit.OnNoteSent(kUp, kDownOp, kB, 100);
  c.audit.OnTrimAck(kUp, kDownOp, kA, 80);
  c.audit.OnTrimAck(kUp, kDownOp, kB, 100);
  c.audit.OnTrim(kUp, kDownOp, 100, {kA, kB});
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorTrimTest, SeededReplacementConstrainsFromItsRestorePoint) {
  // After a scale-out, a freshly seeded partition's (lower) restore point
  // bounds trims for tuples newly outstanding to it.
  Collector c;
  c.audit.OnNoteSent(kUp, kDownOp, kA, 100);
  c.audit.OnTrimAck(kUp, kDownOp, kA, 100);
  c.audit.OnTrim(kUp, kDownOp, 100, {kA});
  c.audit.OnSeedAck(kUp, kDownOp, kB, 90);
  c.audit.OnNoteSent(kUp, kDownOp, kB, 120);
  c.audit.OnTrim(kUp, kDownOp, 121, {kB});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "checkpoint-covers-trim");
}

TEST(AuditorCheckpointTest, BackupOnOwnVmTripsBackupPlacement) {
  Collector c;
  c.audit.OnCheckpointStored(/*owner=*/kA, /*owner_vm=*/4, /*holder=*/kB,
                             /*holder_vm=*/4, /*seq=*/1);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "backup-placement");
}

TEST(AuditorCheckpointTest, BackupOnOwnInstanceTripsBackupPlacement) {
  Collector c;
  c.audit.OnCheckpointStored(kA, 4, kA, 5, 1);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "backup-placement");
}

TEST(AuditorCheckpointTest, StaleSequenceTripsSeqMonotonicity) {
  Collector c;
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 2);
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 3);
  EXPECT_TRUE(c.names.empty());
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 3);  // replayed duplicate
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "checkpoint-seq-monotonicity");
}

// -------------------------------------------- async checkpoint pipeline

TEST(AuditorCheckpointTest, StoreWhileSuspendedTripsNoStoreWhileSuspended) {
  Collector c;
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 1);
  c.audit.OnCheckpointsSuspended(kA);
  // A straggler frame (e.g. from the background serializer) lands while the
  // coordinator holds the owner suspended: its trim acks would outrun the
  // older restore point the coordinator is partitioning.
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 2);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "no-store-while-suspended");
  c.names.clear();
  c.audit.OnCheckpointsResumed(kA);
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 3);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorCheckpointTest, AbortedSequenceStoredTripsAbortedCheckpoint) {
  Collector c;
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 1);
  c.audit.OnAsyncCheckpointAborted(kA, 2);
  // The abort consumed seq 2; a frame claiming it must never be stored.
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 2);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "aborted-checkpoint-stored");
}

TEST(AuditorCheckpointTest, ResumeClearsAbortMarkersForRewoundLineage) {
  Collector c;
  c.audit.OnCheckpointsSuspended(kA);
  c.audit.OnAsyncCheckpointAborted(kA, 5);
  c.audit.OnCheckpointsResumed(kA);
  // A restore during the suspension rewinds the owner's lineage, so seq 5
  // may be legitimately reused by a fresh post-resume checkpoint.
  c.audit.OnCheckpointStored(kA, 4, kB, 5, 5);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorChunkTest, InOrderStreamWithExactByteSumIsClean) {
  Collector c;
  c.audit.OnCheckpointChunk(kA, kB, /*seq=*/1, /*index=*/0, /*count=*/2,
                            /*chunk_bytes=*/60, /*frame_bytes=*/100);
  c.audit.OnCheckpointChunk(kA, kB, 1, 1, 2, 40, 100);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorChunkTest, HeadlessStreamTripsChunkReassembly) {
  Collector c;
  c.audit.OnCheckpointChunk(kA, kB, 1, /*index=*/1, 2, 40, 100);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "chunk-reassembly");
}

TEST(AuditorChunkTest, IndexGapTripsChunkReassembly) {
  Collector c;
  c.audit.OnCheckpointChunk(kA, kB, 1, 0, 3, 30, 100);
  c.audit.OnCheckpointChunk(kA, kB, 1, 2, 3, 30, 100);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "chunk-reassembly");
}

TEST(AuditorChunkTest, InconsistentDeclarationsTripChunkReassembly) {
  Collector c;
  c.audit.OnCheckpointChunk(kA, kB, 1, 0, 2, 60, 100);
  c.audit.OnCheckpointChunk(kA, kB, 1, 1, 2, 40, 120);  // frame size changed
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "chunk-reassembly");
}

TEST(AuditorChunkTest, ByteSumMismatchTripsChunkReassembly) {
  Collector c;
  c.audit.OnCheckpointChunk(kA, kB, 1, 0, 2, 60, 100);
  c.audit.OnCheckpointChunk(kA, kB, 1, 1, 2, 20, 100);  // 80 != 100 at close
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "chunk-reassembly");
}

TEST(AuditorChunkTest, ConcurrentStreamsFromDistinctOwnersStayIndependent) {
  Collector c;
  c.audit.OnCheckpointChunk(kA, kB, 1, 0, 2, 50, 100);
  c.audit.OnCheckpointChunk(/*owner=*/9, kB, 1, 0, 2, 50, 100);
  c.audit.OnCheckpointChunk(kA, kB, 1, 1, 2, 50, 100);
  c.audit.OnCheckpointChunk(9, kB, 1, 1, 2, 50, 100);
  EXPECT_TRUE(c.names.empty());
}

core::RoutingState::Route Route(uint64_t lo, uint64_t hi, InstanceId id) {
  return {core::KeyRange{lo, hi}, id};
}

TEST(AuditorRoutingTest, ExactTilingIsClean) {
  Collector c;
  c.audit.OnRoutesInstalled(
      kDownOp, {Route(0, 99, kA), Route(100, UINT64_MAX, kB)});
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorRoutingTest, GapTripsRouteTiling) {
  Collector c;
  c.audit.OnRoutesInstalled(
      kDownOp, {Route(0, 99, kA), Route(101, UINT64_MAX, kB)});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "route-tiling");
}

TEST(AuditorRoutingTest, OverlapTripsRouteTiling) {
  Collector c;
  c.audit.OnRoutesInstalled(
      kDownOp, {Route(0, 100, kA), Route(100, UINT64_MAX, kB)});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "route-tiling");
}

TEST(AuditorRoutingTest, TruncatedKeySpaceTripsRouteTiling) {
  Collector c;
  c.audit.OnRoutesInstalled(kDownOp, {Route(0, 99, kA)});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "route-tiling");
  c.names.clear();
  c.audit.OnRoutesInstalled(kDownOp, {Route(1, UINT64_MAX, kA)});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "route-tiling");
}

TEST(AuditorRoutingTest, EmptyTableTripsRouteTiling) {
  Collector c;
  c.audit.OnRoutesInstalled(kDownOp, {});
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "route-tiling");
}

core::StateCheckpoint MakeBase(size_t entries, size_t buffered) {
  core::StateCheckpoint base;
  base.op = kDownOp;
  base.instance = kA;
  base.key_range = core::KeyRange::Full();
  for (size_t i = 0; i < entries; ++i) {
    base.processing.Add(Mix64(i), "v");
  }
  for (size_t i = 0; i < buffered; ++i) {
    core::Tuple t;
    t.timestamp = static_cast<int64_t>(i);
    base.buffer.Append(/*downstream=*/9, std::move(t));
  }
  return base;
}

TEST(AuditorPartitionTest, RealPartitionFunctionIsClean) {
  Collector c;
  const core::StateCheckpoint base = MakeBase(64, 10);
  auto parts = core::PartitionCheckpoint(base, 3);
  ASSERT_TRUE(parts.ok());
  c.audit.OnPartitioned(base, parts.value());
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorPartitionTest, LostEntryTripsPartitionCompleteness) {
  Collector c;
  const core::StateCheckpoint base = MakeBase(64, 0);
  auto parts = core::PartitionCheckpoint(base, 2);
  ASSERT_TRUE(parts.ok());
  // Corrupt: drop one partition's state entirely.
  parts.value()[1].processing = core::ProcessingState{};
  c.audit.OnPartitioned(base, parts.value());
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "partition-completeness");
}

TEST(AuditorPartitionTest, MisroutedEntryTripsPartitionCompleteness) {
  Collector c;
  core::StateCheckpoint base = MakeBase(0, 0);
  base.processing.Add(/*key=*/0, "v");
  auto parts = core::PartitionCheckpoint(base, 2);
  ASSERT_TRUE(parts.ok());
  // Corrupt: move the key-0 entry into the high partition (whose range
  // does not contain it), conserving the total count.
  parts.value()[0].processing = core::ProcessingState{};
  parts.value()[1].processing.Add(/*key=*/0, "v");
  c.audit.OnPartitioned(base, parts.value());
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "partition-completeness");
}

TEST(AuditorPartitionTest, DroppedBufferTuplesTripPartitionCompleteness) {
  Collector c;
  const core::StateCheckpoint base = MakeBase(8, 10);
  auto parts = core::PartitionCheckpoint(base, 2);
  ASSERT_TRUE(parts.ok());
  for (auto& p : parts.value()) p.buffer = core::BufferState{};
  c.audit.OnPartitioned(base, parts.value());
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "partition-completeness");
}

TEST(AuditorFenceTest, FenceAfterDrainedReplayIsClean) {
  Collector c;
  c.audit.OnReplaySent(kA, kB, 5);
  c.audit.OnFenceSent(/*fence_id=*/1, kA, kB);
  c.audit.OnReplayProcessed(kA, kB, 5);
  c.audit.OnFenceProcessed(1, kA, kB);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorFenceTest, FenceOvertakingReplayTripsFenceBeforeReplay) {
  Collector c;
  c.audit.OnReplaySent(kA, kB, 5);
  c.audit.OnFenceSent(1, kA, kB);
  c.audit.OnReplayProcessed(kA, kB, 3);
  c.audit.OnFenceProcessed(1, kA, kB);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "fence-before-replay");
}

TEST(AuditorFenceTest, ForwardedFenceWithoutSnapshotIsIgnored) {
  // A fence forwarded through an intermediate hop arrives on links the
  // registry never announced; those carry no drain obligation here.
  Collector c;
  c.audit.OnFenceProcessed(/*fence_id=*/42, kA, kB);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorSinkTest, DuplicateStampTripsExactlyOnceAtLevel2) {
  Collector c(kAuditExpensive);
  c.audit.OnSinkDelivered(kDownOp, /*origin=*/5, /*timestamp=*/1000);
  c.audit.OnSinkDelivered(kDownOp, 5, 1001);
  EXPECT_TRUE(c.names.empty());
  c.audit.OnSinkDelivered(kDownOp, 5, 1000);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "sink-exactly-once");
}

TEST(AuditorSinkTest, StampsNotTrackedBelowLevel2) {
  Collector c(kAuditCheap);
  c.audit.OnSinkDelivered(kDownOp, 5, 1000);
  c.audit.OnSinkDelivered(kDownOp, 5, 1000);
  EXPECT_TRUE(c.names.empty());
}

// ------------------------------------------------ reconfiguration plane

TEST(AuditorPlanTest, CommittedPlanWithAllVmsDisposedIsClean) {
  Collector c;
  c.audit.OnPlanStarted(/*plan_id=*/1, kDownOp);
  c.audit.OnPlanVmAcquired(1, /*vm=*/40);
  c.audit.OnPlanVmAcquired(1, 41);
  c.audit.OnPlanVmDisposed(1, 40);
  c.audit.OnPlanVmDisposed(1, 41);
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/false);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorPlanTest, UndisposedVmTripsNoLeakedVm) {
  Collector c;
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnPlanVmAcquired(1, 40);
  c.audit.OnPlanVmAcquired(1, 41);
  c.audit.OnPlanVmDisposed(1, 40);
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/true);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "no-leaked-vm");
}

TEST(AuditorPlanTest, SecondPlanForSameOpTripsOnePlanPerOperator) {
  Collector c;
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnPlanStarted(2, kDownOp);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "one-plan-per-operator");
  // A plan on a different operator is fine, and once both plans finish the
  // operator is free for a successor.
  c.names.clear();
  c.audit.OnPlanStarted(3, kDownOp + 1);
  c.audit.OnPlanFinished(2, kDownOp, false);
  c.audit.OnPlanFinished(1, kDownOp, false);
  c.audit.OnPlanStarted(4, kDownOp);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorPlanTest, AbortLeavingCheckpointsSuspendedTripsResumeInvariant) {
  Collector c;
  c.audit.OnCheckpointsSuspended(kA);
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnPlanSuspendedCheckpoints(1, kA);
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/true);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "checkpoints-resumed-after-abort");
}

TEST(AuditorPlanTest, AbortAfterResumeIsClean) {
  Collector c;
  c.audit.OnCheckpointsSuspended(kA);
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnPlanSuspendedCheckpoints(1, kA);
  c.audit.OnCheckpointsResumed(kA);
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/true);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorPlanTest, DeadInstanceExemptFromResumeInvariant) {
  // The suspended instance died mid-plan: its replacement starts a fresh
  // checkpoint schedule, so the frozen one need not be resumed.
  Collector c;
  c.audit.OnCheckpointsSuspended(kA);
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnPlanSuspendedCheckpoints(1, kA);
  c.audit.OnInstanceDead(kA);
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/true);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorPlanTest, AbortWithChangedRoutesTripsRoutesRestored) {
  Collector c;
  c.audit.OnRoutesInstalled(kDownOp, {Route(0, UINT64_MAX, kA)});
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnRoutesInstalled(
      kDownOp, {Route(0, 99, kA), Route(100, UINT64_MAX, kB)});
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/true);
  ASSERT_EQ(c.names.size(), 1u);
  EXPECT_EQ(c.names[0], "routes-restored-on-abort");
}

TEST(AuditorPlanTest, AbortWithRoutesPutBackIsClean) {
  Collector c;
  c.audit.OnRoutesInstalled(kDownOp, {Route(0, UINT64_MAX, kA)});
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnRoutesInstalled(
      kDownOp, {Route(0, 99, kA), Route(100, UINT64_MAX, kB)});
  c.audit.OnRoutesInstalled(kDownOp, {Route(0, UINT64_MAX, kA)});
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/true);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorPlanTest, CommittedPlanMayChangeRoutes) {
  Collector c;
  c.audit.OnRoutesInstalled(kDownOp, {Route(0, UINT64_MAX, kA)});
  c.audit.OnPlanStarted(1, kDownOp);
  c.audit.OnRoutesInstalled(
      kDownOp, {Route(0, 99, kA), Route(100, UINT64_MAX, kB)});
  c.audit.OnPlanFinished(1, kDownOp, /*aborted=*/false);
  EXPECT_TRUE(c.names.empty());
}

TEST(AuditorLevelTest, LevelOffIgnoresViolatingStreams) {
  Collector c(kAuditOff);
  c.audit.OnRoutesInstalled(kDownOp, {});
  c.audit.OnTrim(kUp, kDownOp, 100, {kA});
  c.audit.OnCheckpointStored(kA, 4, kA, 4, 0);
  EXPECT_TRUE(c.names.empty());
  EXPECT_EQ(c.audit.violations(), 0u);
}

TEST(AuditorLevelTest, EnvironmentVariableOverridesDefaultLevel) {
  const char* saved = std::getenv("SEEP_AUDIT");
  const std::string restore = saved == nullptr ? "" : saved;
  ASSERT_EQ(setenv("SEEP_AUDIT", "2", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultAuditLevel(), kAuditExpensive);
  ASSERT_EQ(setenv("SEEP_AUDIT", "7", 1), 0);  // clamped
  EXPECT_EQ(DefaultAuditLevel(), kAuditExpensive);
  ASSERT_EQ(setenv("SEEP_AUDIT", "0", 1), 0);
  EXPECT_EQ(DefaultAuditLevel(), kAuditOff);
  if (saved == nullptr) {
    unsetenv("SEEP_AUDIT");
  } else {
    setenv("SEEP_AUDIT", restore.c_str(), 1);
  }
}

// ------------------------------------------------- mutation (death) tests

using AuditorDeathTest = ::testing::Test;

TEST(AuditorDeathTest, CorruptedTrimDecisionAborts) {
  // A trim tracker whose ack table was corrupted upward would claim a trim
  // beyond what downstream checkpoints cover; the default handler aborts.
  InvariantAuditor audit(kAuditCheap);
  audit.OnNoteSent(kUp, kDownOp, kA, 100);
  audit.OnTrimAck(kUp, kDownOp, kA, 40);
  EXPECT_DEATH(audit.OnTrim(kUp, kDownOp, 100, {kA}),
               "checkpoint-covers-trim");
}

TEST(AuditorDeathTest, RegressingTrimAborts) {
  InvariantAuditor audit(kAuditCheap);
  audit.OnNoteSent(kUp, kDownOp, kA, 100);
  audit.OnTrimAck(kUp, kDownOp, kA, 50);
  audit.OnTrim(kUp, kDownOp, 50, {kA});
  EXPECT_DEATH(audit.OnTrim(kUp, kDownOp, 40, {kA}), "trim-monotonicity");
}

TEST(AuditorDeathTest, ReorderedFenceAborts) {
  InvariantAuditor audit(kAuditCheap);
  audit.OnReplaySent(kA, kB, 5);
  audit.OnFenceSent(1, kA, kB);
  EXPECT_DEATH(audit.OnFenceProcessed(1, kA, kB), "fence-before-replay");
}

// --------------------------------------- audited cluster: smoke + mutation

class CountingSource : public core::SourceGenerator {
 public:
  explicit CountingSource(double rate) : rate_(rate) {}
  void GenerateBatch(SimTime now, SimTime dt,
                     core::Collector* emit) override {
    const double want = rate_ * SimToSeconds(dt) + carry_;
    const auto n = static_cast<size_t>(want);
    carry_ = want - static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      core::Tuple t;
      t.event_time = now;
      t.key = Mix64(counter_++ % 16);
      emit->Emit(std::move(t));
    }
  }
  double TargetRate(SimTime) const override { return rate_; }

 private:
  double rate_;
  double carry_ = 0;
  uint64_t counter_ = 0;
};

class PassThroughOperator : public core::Operator {
 public:
  void Process(const core::Tuple& input, core::Collector* out) override {
    core::Tuple t = input;
    out->Emit(std::move(t));
  }
  bool IsStateful() const override { return true; }
  double CostMicrosPerTuple() const override { return 10; }
  core::ProcessingState GetProcessingState() const override { return {}; }
  void SetProcessingState(const core::ProcessingState&) override {}
};

class NullSink : public core::SinkConsumer {
 public:
  void Consume(const core::Tuple&, SimTime) override {}
};

struct AuditedQuery {
  explicit AuditedQuery(int audit_level) {
    source = graph.AddSource("src", [](uint32_t, uint32_t) {
      return std::make_unique<CountingSource>(200);
    });
    op = graph.AddOperator(
        "pass", [] { return std::make_unique<PassThroughOperator>(); },
        /*stateful=*/true);
    sink = graph.AddSink("snk", [] { return std::make_unique<NullSink>(); });
    SEEP_CHECK(graph.Connect(source, op).ok());
    SEEP_CHECK(graph.Connect(op, sink).ok());
    runtime::ClusterConfig config;
    config.audit_level = audit_level;
    config.checkpoint_interval = SecondsToSim(2);
    cluster = std::make_unique<runtime::Cluster>(&graph, config);
    control::DeploymentManager deployer(cluster.get());
    SEEP_CHECK(deployer.DeployAll().ok());
  }

  core::QueryGraph graph;
  OperatorId source, op, sink;
  std::unique_ptr<runtime::Cluster> cluster;
};

TEST(AuditedClusterTest, AuditLevelZeroBuildsNoAuditor) {
  AuditedQuery q(kAuditOff);
  EXPECT_EQ(q.cluster->audit(), nullptr);
}

TEST(AuditedClusterTest, SmokeRunAtLevel2HasZeroViolations) {
  AuditedQuery q(kAuditExpensive);
  ASSERT_NE(q.cluster->audit(), nullptr);
  // The default abort handler is live: any violation would kill the test.
  q.cluster->simulation()->RunUntil(SecondsToSim(20));
  EXPECT_EQ(q.cluster->audit()->violations(), 0u);
}

TEST(AuditedClusterTest, CorruptedRouteInstallAborts) {
  AuditedQuery q(kAuditCheap);
  const InstanceId inst = q.cluster->LiveInstancesOf(q.op).at(0);
  // A coordinator installing a routing table with a key-space gap must be
  // stopped before any tuple routes into the void.
  EXPECT_DEATH(
      q.cluster->InstallRoutes(q.op, {{core::KeyRange{0, 100}, inst}}),
      "route-tiling");
}

}  // namespace
}  // namespace seep::verify
