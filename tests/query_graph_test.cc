// Unit tests for the logical query graph: construction, validation and
// topological ordering (paper §2.2's query model).

#include <gtest/gtest.h>

#include "core/query_graph.h"

namespace seep::core {
namespace {

std::unique_ptr<SourceGenerator> NullSource(uint32_t, uint32_t) {
  return nullptr;
}

class NoopOperator : public Operator {
 public:
  void Process(const Tuple& input, Collector* out) override {}
};

QueryGraph Chain(OperatorId* source, OperatorId* op, OperatorId* sink) {
  QueryGraph g;
  *source = g.AddSource("src", NullSource);
  *op = g.AddOperator("op", [] { return std::make_unique<NoopOperator>(); },
                      false);
  *sink = g.AddSink("snk", [] { return nullptr; });
  EXPECT_TRUE(g.Connect(*source, *op).ok());
  EXPECT_TRUE(g.Connect(*op, *sink).ok());
  return g;
}

TEST(QueryGraphTest, ValidChainPasses) {
  OperatorId s, o, k;
  QueryGraph g = Chain(&s, &o, &k);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.Sources(), std::vector<OperatorId>{s});
  EXPECT_EQ(g.Sinks(), std::vector<OperatorId>{k});
  EXPECT_EQ(g.Upstream(o), std::vector<OperatorId>{s});
  EXPECT_EQ(g.Downstream(o), std::vector<OperatorId>{k});
}

TEST(QueryGraphTest, EmptyGraphInvalid) {
  QueryGraph g;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(QueryGraphTest, ConnectRejectsBadEndpoints) {
  OperatorId s, o, k;
  QueryGraph g = Chain(&s, &o, &k);
  EXPECT_FALSE(g.Connect(o, o).ok());      // self loop
  EXPECT_FALSE(g.Connect(k, o).ok());      // sink output
  EXPECT_FALSE(g.Connect(o, s).ok());      // source input
  EXPECT_FALSE(g.Connect(99, o).ok());     // unknown id
}

TEST(QueryGraphTest, OperatorWithoutInputRejected) {
  QueryGraph g;
  g.AddSource("src", NullSource);
  const OperatorId orphan = g.AddOperator(
      "orphan", [] { return std::make_unique<NoopOperator>(); }, false);
  (void)orphan;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(QueryGraphTest, OperatorWithoutOutputRejected) {
  QueryGraph g;
  const OperatorId s = g.AddSource("src", NullSource);
  const OperatorId o = g.AddOperator(
      "dead-end", [] { return std::make_unique<NoopOperator>(); }, false);
  ASSERT_TRUE(g.Connect(s, o).ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(QueryGraphTest, DiamondTopologyIsValid) {
  QueryGraph g;
  const OperatorId s = g.AddSource("src", NullSource);
  const OperatorId a = g.AddOperator(
      "a", [] { return std::make_unique<NoopOperator>(); }, false);
  const OperatorId b = g.AddOperator(
      "b", [] { return std::make_unique<NoopOperator>(); }, false);
  const OperatorId c = g.AddOperator(
      "c", [] { return std::make_unique<NoopOperator>(); }, true);
  const OperatorId k = g.AddSink("snk", [] { return nullptr; });
  ASSERT_TRUE(g.Connect(s, a).ok());
  ASSERT_TRUE(g.Connect(s, b).ok());
  ASSERT_TRUE(g.Connect(a, c).ok());
  ASSERT_TRUE(g.Connect(b, c).ok());
  ASSERT_TRUE(g.Connect(c, k).ok());
  EXPECT_TRUE(g.Validate().ok());

  // Topological order respects all edges.
  const auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 5u);
  auto pos = [&](OperatorId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(s), pos(a));
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
  EXPECT_LT(pos(c), pos(k));
}

TEST(QueryGraphTest, SourceParallelismStored) {
  QueryGraph g;
  const OperatorId s = g.AddSource("src", NullSource, 1.0, 18);
  EXPECT_EQ(g.Get(s)->source_parallelism, 18u);
  const OperatorId s2 = g.AddSource("src2", NullSource, 1.0, 0);
  EXPECT_EQ(g.Get(s2)->source_parallelism, 1u);  // clamped
}

TEST(QueryGraphTest, GetUnknownReturnsNull) {
  QueryGraph g;
  EXPECT_EQ(g.Get(0), nullptr);
}

}  // namespace
}  // namespace seep::core
