// Tests for the asynchronous checkpoint pipeline (runtime/ckpt_pipeline):
// capture/materialize equivalence against the old synchronous snapshot,
// byte-equality of the streaming encode, frame build round-trips through
// compression and framing, chunk-header codec and holder-side reassembly
// units, and a short sim end-to-end run proving the async pipeline produces
// the synchronous baseline's results under a level-2 audit.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "core/state.h"
#include "runtime/ckpt_pipeline.h"
#include "serde/block_codec.h"
#include "serde/decoder.h"
#include "serde/encoder.h"
#include "serde/frame.h"
#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep::runtime {
namespace {

core::Tuple MakeTuple(int64_t ts, const std::string& text) {
  core::Tuple t;
  t.timestamp = ts;
  t.key = static_cast<KeyHash>(ts) * 1315423911u;
  t.origin = 3;
  t.event_time = ts;
  t.text = text;
  return t;
}

// Live buffers with a multi-tuple downstream, a single-tuple one, and a
// deployed-but-empty one (full captures must keep the empty entry).
core::BufferState MakeLive() {
  core::BufferState live;
  live.Append(4, MakeTuple(10, "alpha"));
  live.Append(4, MakeTuple(20, "beta"));
  live.Append(4, MakeTuple(30, "gamma"));
  live.Append(5, MakeTuple(15, "delta"));
  live.buffers()[6];
  return live;
}

void FillHeader(core::StateCheckpoint* c) {
  c->op = 3;
  c->instance = 11;
  c->origin = 2;
  c->out_clock = 40;
  c->seq = 7;
  c->taken_at = 1234;
  c->positions.Set(1, 33);
  c->processing.Add(5, "value-a");
  c->processing.Add(9, "value-b");
}

// Mirrors CheckpointPlane::CaptureFull's extent construction.
CheckpointCapture FullCapture(const core::BufferState& live) {
  CheckpointCapture cap;
  FillHeader(&cap.ckpt);
  for (const auto& [op_id, tuples] : live.buffers()) {
    BufferExtent extent;
    extent.from_exclusive = INT64_MIN;
    extent.back = tuples.empty() ? INT64_MIN : tuples.back().timestamp;
    extent.tuples = tuples.size();
    extent.bytes = tuples.ByteSize();
    cap.extents[op_id] = extent;
  }
  return cap;
}

// Mirrors CheckpointPlane::CaptureDelta: op 4 shipped through 20 (one
// unshipped tuple), op 5 never shipped (whole buffer), op 6 empty.
CheckpointCapture DeltaCapture(const core::BufferState& live) {
  CheckpointCapture cap;
  FillHeader(&cap.ckpt);
  cap.ckpt.is_delta = true;
  cap.ckpt.base_seq = 6;
  cap.ckpt.deleted_keys.push_back(77);
  std::map<OperatorId, int64_t> shipped{
      {4, 20}, {5, INT64_MIN}, {6, INT64_MIN}};
  for (const auto& [op_id, tuples] : live.buffers()) {
    cap.ckpt.buffer_front[op_id] =
        tuples.empty() ? 41 : tuples.front().timestamp;
    BufferExtent extent;
    extent.from_exclusive = shipped[op_id];
    if (!tuples.empty() && tuples.back().timestamp > extent.from_exclusive) {
      extent.back = tuples.back().timestamp;
      auto it = tuples.UpperBound(extent.from_exclusive);
      extent.tuples = static_cast<size_t>(tuples.end() - it);
      for (; it != tuples.end(); ++it) extent.bytes += it->SerializedSize();
    }
    cap.extents[op_id] = extent;
  }
  return cap;
}

std::vector<uint8_t> EncodeDirect(const core::StateCheckpoint& c) {
  serde::Encoder enc;
  c.Encode(&enc);
  return std::move(enc).TakeBuffer();
}

// ------------------------------------------------- capture / materialize

TEST(CaptureTest, MaterializedFullCaptureEqualsWholesaleCopy) {
  const core::BufferState live = MakeLive();
  CheckpointCapture cap = FullCapture(live);
  MaterializeCaptureBuffer(live, &cap);

  core::StateCheckpoint direct;
  FillHeader(&direct);
  direct.buffer = live;
  EXPECT_EQ(EncodeDirect(cap.ckpt), EncodeDirect(direct));
  // Empty downstream entries survive a full capture (restore recreates
  // them), and the unmaterialized ByteSize + extent bytes match.
  EXPECT_EQ(cap.ckpt.buffer.buffers().size(), 3u);
}

TEST(CaptureTest, ExtentBytesCompleteTheUnmaterializedByteSize) {
  const core::BufferState live = MakeLive();
  const CheckpointCapture cap = FullCapture(live);
  size_t with_extents = cap.ckpt.ByteSize();
  for (const auto& [op_id, extent] : cap.extents) {
    with_extents += extent.bytes;
  }
  CheckpointCapture materialized = cap;
  MaterializeCaptureBuffer(live, &materialized);
  EXPECT_EQ(with_extents, materialized.ckpt.ByteSize());
}

TEST(CaptureTest, MaterializedDeltaCaptureTakesUnshippedSuffix) {
  const core::BufferState live = MakeLive();
  CheckpointCapture cap = DeltaCapture(live);
  MaterializeCaptureBuffer(live, &cap);

  // Op 4: only the tuple past the shipped position; op 5: everything;
  // op 6: no entry at all (deltas skip empty extents, like the old
  // MakeDeltaCheckpoint which only Append()ed real tuples).
  ASSERT_NE(cap.ckpt.buffer.Get(4), nullptr);
  ASSERT_EQ(cap.ckpt.buffer.Get(4)->size(), 1u);
  EXPECT_EQ(cap.ckpt.buffer.Get(4)->front().timestamp, 30);
  ASSERT_NE(cap.ckpt.buffer.Get(5), nullptr);
  EXPECT_EQ(cap.ckpt.buffer.Get(5)->size(), 1u);
  EXPECT_EQ(cap.ckpt.buffer.Get(6), nullptr);
}

TEST(CaptureTest, MaterializeIsIdempotent) {
  const core::BufferState live = MakeLive();
  CheckpointCapture cap = DeltaCapture(live);
  MaterializeCaptureBuffer(live, &cap);
  const std::vector<uint8_t> once = EncodeDirect(cap.ckpt);
  MaterializeCaptureBuffer(live, &cap);
  EXPECT_EQ(once, EncodeDirect(cap.ckpt));
}

// ------------------------------------------------------ streaming encode

TEST(StreamingEncodeTest, FullCaptureMatchesMaterializedEncodeByteForByte) {
  const core::BufferState live = MakeLive();
  const CheckpointCapture cap = FullCapture(live);

  serde::Encoder streamed;
  EncodeCapturedCheckpoint(live, cap, &streamed);

  CheckpointCapture materialized = cap;
  MaterializeCaptureBuffer(live, &materialized);
  EXPECT_EQ(streamed.buffer(), EncodeDirect(materialized.ckpt));
  EXPECT_EQ(CapturedEncodedSize(cap), streamed.size());
  EXPECT_EQ(CapturedEncodedSize(cap), materialized.ckpt.EncodedSize());
}

TEST(StreamingEncodeTest, DeltaCaptureMatchesMaterializedEncodeByteForByte) {
  const core::BufferState live = MakeLive();
  const CheckpointCapture cap = DeltaCapture(live);

  serde::Encoder streamed;
  EncodeCapturedCheckpoint(live, cap, &streamed);

  CheckpointCapture materialized = cap;
  MaterializeCaptureBuffer(live, &materialized);
  EXPECT_EQ(streamed.buffer(), EncodeDirect(materialized.ckpt));
  EXPECT_EQ(CapturedEncodedSize(cap), streamed.size());
}

TEST(StreamingEncodeTest, StreamedBytesDecodeToTheCapturedCheckpoint) {
  const core::BufferState live = MakeLive();
  const CheckpointCapture cap = DeltaCapture(live);
  serde::Encoder streamed;
  EncodeCapturedCheckpoint(live, cap, &streamed);

  serde::Decoder dec(streamed.buffer());
  auto decoded = core::StateCheckpoint::Decode(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().instance, 11u);
  EXPECT_EQ(decoded.value().seq, 7u);
  EXPECT_TRUE(decoded.value().is_delta);
  EXPECT_EQ(decoded.value().base_seq, 6u);
  EXPECT_EQ(decoded.value().buffer.TotalTuples(), 2u);
  EXPECT_EQ(decoded.value().buffer_front.size(), 3u);
}

// ---------------------------------------------------------- frame building

CkptSerializer::Job JobWithSnapshot(core::StateCheckpoint snapshot) {
  CkptSerializer::Job job;
  job.owner = snapshot.instance;
  job.owner_op = snapshot.op;
  job.vm = 1;
  job.seq = snapshot.seq;
  job.captured_at = snapshot.taken_at;
  job.snapshot = std::move(snapshot);
  return job;
}

core::StateCheckpoint CompressibleSnapshot() {
  core::StateCheckpoint c;
  FillHeader(&c);
  for (int i = 0; i < 200; ++i) {
    c.processing.Add(100 + i, "window-count-payload-window-count-payload");
  }
  return c;
}

TEST(BuildFrameTest, CompressedFrameRoundTripsToTheSnapshot) {
  const std::vector<uint8_t> raw = EncodeDirect(CompressibleSnapshot());
  const SerializedCkptFrame frame =
      CkptSerializer::BuildFrame(JobWithSnapshot(CompressibleSnapshot()),
                                 /*compress=*/true);
  EXPECT_TRUE(frame.compressed);
  EXPECT_EQ(frame.raw_bytes, raw.size());
  EXPECT_LT(frame.frame.size(), raw.size());  // compression actually won

  auto payload = serde::UnframePayload(frame.frame);
  ASSERT_TRUE(payload.ok());
  auto restored = serde::BlockDecompress(payload.value(), frame.raw_bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), raw);
}

TEST(BuildFrameTest, UncompressedFrameCarriesTheRawEncoding) {
  const std::vector<uint8_t> raw = EncodeDirect(CompressibleSnapshot());
  const SerializedCkptFrame frame =
      CkptSerializer::BuildFrame(JobWithSnapshot(CompressibleSnapshot()),
                                 /*compress=*/false);
  EXPECT_FALSE(frame.compressed);
  auto payload = serde::UnframePayload(frame.frame);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload.value(), raw);
}

TEST(BuildFrameTest, CorruptedFrameIsRejectedByTheCrc) {
  SerializedCkptFrame frame = CkptSerializer::BuildFrame(
      JobWithSnapshot(CompressibleSnapshot()), /*compress=*/true);
  frame.frame[frame.frame.size() / 2] ^= 0x40;
  EXPECT_FALSE(serde::UnframePayload(frame.frame).ok());
}

// ---------------------------------------------------------- chunk header

TEST(ChunkHeaderTest, RoundTripsEveryField) {
  CkptChunkHeader h;
  h.owner = 12;
  h.owner_op = 3;
  h.holder = 9;
  h.seq = 4242;
  h.index = 17;
  h.count = 33;
  h.frame_bytes = 5u << 20;
  h.raw_bytes = 9u << 20;
  h.compressed = true;

  serde::Encoder enc;
  EncodeChunkHeader(h, &enc);
  serde::Decoder dec(enc.buffer());
  auto out = DecodeChunkHeader(&dec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().owner, h.owner);
  EXPECT_EQ(out.value().owner_op, h.owner_op);
  EXPECT_EQ(out.value().holder, h.holder);
  EXPECT_EQ(out.value().seq, h.seq);
  EXPECT_EQ(out.value().index, h.index);
  EXPECT_EQ(out.value().count, h.count);
  EXPECT_EQ(out.value().frame_bytes, h.frame_bytes);
  EXPECT_EQ(out.value().raw_bytes, h.raw_bytes);
  EXPECT_EQ(out.value().compressed, h.compressed);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(ChunkHeaderTest, TruncatedHeaderFails) {
  CkptChunkHeader h;
  h.owner = 1;
  serde::Encoder enc;
  EncodeChunkHeader(h, &enc);
  std::vector<uint8_t> bytes = enc.buffer();
  bytes.resize(bytes.size() - 3);
  serde::Decoder dec(bytes);
  EXPECT_FALSE(DecodeChunkHeader(&dec).ok());
}

// ------------------------------------------------------------ reassembly

std::vector<uint8_t> PatternBytes(size_t n, uint8_t seed) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return out;
}

CkptChunkHeader Chunk(InstanceId owner, uint64_t seq, uint32_t index,
                      uint32_t count, uint64_t frame_bytes) {
  CkptChunkHeader h;
  h.owner = owner;
  h.owner_op = 3;
  h.holder = 9;
  h.seq = seq;
  h.index = index;
  h.count = count;
  h.frame_bytes = frame_bytes;
  return h;
}

TEST(ReassemblerTest, SingleChunkCompletesImmediately) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> frame = PatternBytes(100, 1);
  auto out = r.OnChunk(Chunk(1, 5, 0, 1, 100), frame.data(), frame.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, frame);
  EXPECT_EQ(r.pending_streams(), 0u);
}

TEST(ReassemblerTest, InOrderChunksReassembleExactly) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> frame = PatternBytes(1000, 2);
  // Uneven slices, like the last short chunk of a real frame.
  const size_t cuts[] = {0, 400, 800, 1000};
  for (uint32_t i = 0; i < 3; ++i) {
    auto out = r.OnChunk(Chunk(1, 6, i, 3, frame.size()),
                         frame.data() + cuts[i], cuts[i + 1] - cuts[i]);
    if (i < 2) {
      EXPECT_FALSE(out.has_value());
      EXPECT_EQ(r.pending_streams(), 1u);
    } else {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, frame);
    }
  }
  EXPECT_EQ(r.pending_streams(), 0u);
}

TEST(ReassemblerTest, HeadlessMidStreamChunkIsIgnored) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> bytes = PatternBytes(50, 3);
  // Index 1 with no stream open: the head was lost (e.g. holder restarted);
  // nothing is buffered and nothing completes.
  EXPECT_FALSE(
      r.OnChunk(Chunk(1, 7, 1, 2, 100), bytes.data(), bytes.size()));
  EXPECT_EQ(r.pending_streams(), 0u);
}

TEST(ReassemblerTest, IndexGapDropsTheStreamWholesale) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> bytes = PatternBytes(40, 4);
  EXPECT_FALSE(r.OnChunk(Chunk(1, 8, 0, 3, 120), bytes.data(), bytes.size()));
  EXPECT_EQ(r.pending_streams(), 1u);
  // Chunk 1 lost; chunk 2 arrives. The stream is corrupt — drop it all.
  EXPECT_FALSE(r.OnChunk(Chunk(1, 8, 2, 3, 120), bytes.data(), bytes.size()));
  EXPECT_EQ(r.pending_streams(), 0u);
  // The superseding checkpoint's stream starts fresh and completes.
  const std::vector<uint8_t> next = PatternBytes(40, 5);
  EXPECT_FALSE(r.OnChunk(Chunk(1, 9, 0, 2, 80), next.data(), next.size()));
  auto out = r.OnChunk(Chunk(1, 9, 1, 2, 80), next.data(), next.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 80u);
}

TEST(ReassemblerTest, InconsistentDeclarationsDropTheStream) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> bytes = PatternBytes(40, 6);
  EXPECT_FALSE(r.OnChunk(Chunk(1, 10, 0, 2, 80), bytes.data(), bytes.size()));
  // Same stream key, different declared frame size: corruption.
  EXPECT_FALSE(r.OnChunk(Chunk(1, 10, 1, 2, 99), bytes.data(), bytes.size()));
  EXPECT_EQ(r.pending_streams(), 0u);
}

TEST(ReassemblerTest, ByteOverflowDropsTheStream) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> bytes = PatternBytes(60, 7);
  EXPECT_FALSE(r.OnChunk(Chunk(1, 11, 0, 2, 80), bytes.data(), bytes.size()));
  EXPECT_FALSE(r.OnChunk(Chunk(1, 11, 1, 2, 80), bytes.data(), bytes.size()));
  EXPECT_EQ(r.pending_streams(), 0u);
}

TEST(ReassemblerTest, AbsurdDeclaredFrameSizeIsRejectedUpFront) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> bytes = PatternBytes(10, 8);
  EXPECT_FALSE(r.OnChunk(Chunk(1, 12, 0, 2, 1ull << 40), bytes.data(),
                         bytes.size()));
  EXPECT_EQ(r.pending_streams(), 0u);
}

TEST(ReassemblerTest, ForgetThroughDropsSupersededStreamsOnly) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> bytes = PatternBytes(10, 9);
  r.OnChunk(Chunk(1, 3, 0, 2, 20), bytes.data(), bytes.size());
  r.OnChunk(Chunk(1, 5, 0, 2, 20), bytes.data(), bytes.size());
  r.OnChunk(Chunk(2, 3, 0, 2, 20), bytes.data(), bytes.size());
  EXPECT_EQ(r.pending_streams(), 3u);
  r.ForgetThrough(/*owner=*/1, /*seq=*/4);
  // Owner 1 seq 3 superseded; owner 1 seq 5 and owner 2 survive.
  EXPECT_EQ(r.pending_streams(), 2u);
  auto out = r.OnChunk(Chunk(1, 5, 1, 2, 20), bytes.data(), bytes.size());
  EXPECT_TRUE(out.has_value());
}

TEST(ReassemblerTest, PendingStreamsAreBounded) {
  CkptChunkReassembler r;
  const std::vector<uint8_t> bytes = PatternBytes(10, 10);
  for (InstanceId owner = 1; owner <= 100; ++owner) {
    r.OnChunk(Chunk(owner, 1, 0, 2, 20), bytes.data(), bytes.size());
  }
  EXPECT_LE(r.pending_streams(), 64u);
}

// --------------------------------------------------------- sim end to end

using Counts = std::map<std::pair<int64_t, std::string>, int64_t>;

struct PipelineOutcome {
  Counts counts;
  uint64_t async_captures = 0;
  uint64_t async_chunks = 0;
  uint64_t aborted = 0;
  uint64_t decode_failures = 0;
  uint64_t checkpoints_taken = 0;
  uint64_t raw_bytes = 0;
  uint64_t wire_bytes = 0;
};

PipelineOutcome RunWordCount(bool async) {
  workloads::wordcount::WordCountConfig wc;
  wc.rate_tuples_per_sec = 100;
  wc.vocabulary = 500;
  wc.window = SecondsToSim(10);
  wc.seed = 7;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(3);
  config.cluster.async_checkpoints = async;
  // Tiny chunks so multi-chunk shipping and reassembly actually run.
  config.cluster.checkpoint_chunk_bytes = 512;
  // Full audit with the abort-on-violation default: any violated invariant
  // (chunk-reassembly included) kills the test.
  config.cluster.audit_level = verify::kAuditExpensive;
  config.cluster.pool.target_size = 4;
  config.scaling.enabled = false;

  workloads::wordcount::WordCountQuery query =
      workloads::wordcount::BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  EXPECT_TRUE(sps.Deploy().ok());
  sps.RunFor(35);

  PipelineOutcome out;
  out.counts = results->counts;
  out.async_captures = sps.metrics().async_ckpt_captures;
  out.async_chunks = sps.metrics().async_ckpt_chunks;
  out.aborted = sps.metrics().async_ckpts_aborted;
  out.decode_failures = sps.metrics().ckpt_decode_failures;
  out.checkpoints_taken = sps.metrics().checkpoints_taken;
  out.raw_bytes = sps.metrics().ckpt_raw_bytes;
  out.wire_bytes = sps.metrics().ckpt_wire_bytes;
  return out;
}

TEST(AsyncPipelineEndToEnd, MatchesSynchronousResultsUnderFullAudit) {
  const PipelineOutcome sync = RunWordCount(false);
  const PipelineOutcome async = RunWordCount(true);

  // The async pipeline really ran: captures went through the background
  // serializer and frames arrived in (multiple) chunks; nothing was lost
  // to corruption and nothing needed aborting in a failure-free run.
  EXPECT_EQ(sync.async_captures, 0u);
  EXPECT_GT(async.async_captures, 5u);
  EXPECT_GT(async.async_chunks, async.async_captures);
  EXPECT_EQ(async.aborted, 0u);
  EXPECT_EQ(async.decode_failures, 0u);
  EXPECT_GT(async.checkpoints_taken, 0u);

  // Compression earned its place on the wire.
  EXPECT_GT(async.raw_bytes, 0u);
  EXPECT_LT(async.wire_bytes, async.raw_bytes);

  // Same results: windows are event-time keyed, so moving serialization off
  // the processing path cannot change their contents.
  EXPECT_FALSE(sync.counts.empty());
  EXPECT_EQ(sync.counts, async.counts);
}

// ------------------------------------------------- serializer concurrency

// A threaded serializer with an inert completion callback, for lifecycle
// and thread-affinity tests. Constructing the Simulation adopts the
// DriverThread role for the calling thread.
struct ThreadedSerializerHarness {
  sim::Simulation sim;
  CkptSerializer serializer{&sim,
                            /*threaded=*/true,
                            /*compress=*/true,
                            /*pump_interval=*/MillisToSim(1),
                            [](const core::StateCheckpoint&) {
                              return SimTime{0};
                            },
                            [](SerializedCkptFrame) {}};
};

TEST(SerializerLifecycleTest, DestructorJoinsBusyWorkersUnderTheLock) {
  // Regression for the destructor that iterated the mu_-guarded workers_
  // map without the lock while worker threads were still publishing their
  // last frames (lint rule: every workers_ access holds mu_; the TSan CI
  // job fails here if the unlocked iteration comes back). Destroying the
  // serializer with deep per-VM queues exercises the shutdown handshake
  // while every worker is mid-frame.
  for (int round = 0; round < 5; ++round) {
    ThreadedSerializerHarness harness;
    for (uint64_t i = 0; i < 40; ++i) {
      CkptSerializer::Job job = JobWithSnapshot(CompressibleSnapshot());
      job.vm = 1 + (i % 4);
      job.seq = i;
      harness.serializer.Submit(std::move(job));
    }
    // Destructor runs here: stop flags flipped and threads moved out under
    // mu_, joined outside it.
  }
}

TEST(SerializerAffinityDeathTest, SubmitOffTheDriverThreadAborts) {
  // Submit mutates driver-confined accounting (outstanding_,
  // pump_scheduled_) before taking mu_; calling it from a worker or loop
  // thread must abort naming the missing role, not corrupt the counters
  // (rule: serializer entry points are SEEP_RUN_ON(DriverThread)).
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadedSerializerHarness harness;
  EXPECT_DEATH(
      {
        std::thread t([&] {
          harness.serializer.Submit(JobWithSnapshot(CompressibleSnapshot()));
        });
        t.join();
      },
      "thread-affinity violation.*DriverThread");
}

TEST(SerializerLifecycleTest, DrainAfterHeavySubmitDeliversEveryFrame) {
  // The done-queue drain runs on the driver thread via Pump (the satellite
  // fix: completions must re-enter through the polled queue, never fire on
  // the worker). RunUntil pumps until every submitted frame lands.
  sim::Simulation sim;
  size_t delivered = 0;
  CkptSerializer serializer(
      &sim, /*threaded=*/true, /*compress=*/false,
      /*pump_interval=*/MillisToSim(1),
      [](const core::StateCheckpoint&) { return SimTime{0}; },
      [&](SerializedCkptFrame frame) {
        ++delivered;
        EXPECT_FALSE(frame.frame.empty());
      });
  constexpr uint64_t kJobs = 25;
  for (uint64_t i = 0; i < kJobs; ++i) {
    CkptSerializer::Job job = JobWithSnapshot(CompressibleSnapshot());
    job.vm = 1 + (i % 3);
    job.seq = i;
    serializer.Submit(std::move(job));
  }
  // Real worker threads race the simulated pump clock, and simulated
  // milliseconds cost ~nothing in wall time — a spin counter alone can
  // burn through every pump before the OS has even scheduled the workers.
  // Pace the drain against a generous real-time deadline instead.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (serializer.in_flight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    sim.RunUntil(sim.Now() + MillisToSim(1));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(serializer.in_flight(), 0u);
  EXPECT_EQ(delivered, kJobs);
}

}  // namespace
}  // namespace seep::runtime
