// Elastic scale-in (the paper's §8 future work, built on the §3.3 merge
// primitive): the policy merges under-utilised partitions and releases VMs,
// and the full out-then-in cycle preserves results exactly.

#include <gtest/gtest.h>

#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

// A load wave: high for [t0, t1), low outside.
WordCountConfig WaveWorkload(double high, double low, double t0, double t1) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = high;
  wc.rate_fn = [=](double t) { return (t >= t0 && t < t1) ? high : low; };
  wc.vocabulary = 500;
  wc.words_per_sentence = 10;
  wc.counter_cost_us = 900;  // high rate saturates one VM
  wc.seed = 55;
  return wc;
}

sps::SpsConfig ElasticConfig(bool scale_in) {
  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(5);
  config.cluster.pool.target_size = 3;
  config.scaling.enabled = true;
  config.scaling.threshold = 0.7;
  config.scaling.scale_in_enabled = scale_in;
  config.scaling.scale_in_threshold = 0.25;
  config.scaling.scale_in_consecutive = 4;
  return config;
}

TEST(ElasticityTest, ScalesOutOnLoadAndBackInAfterwards) {
  // High phase: 150 t/s * 10 words * 900 µs = 135% of one VM -> scale
  // out; low phase: 35 t/s = ~32% total, ~16% per partition -> scale in.
  WordCountConfig wc = WaveWorkload(150, 35, 30, 120);
  WordCountQuery query = BuildWordCountQuery(wc);
  const OperatorId counter = query.counter;
  sps::Sps sps(std::move(query.graph), ElasticConfig(true));
  ASSERT_TRUE(sps.Deploy().ok());

  sps.RunUntil(100);
  EXPECT_GE(sps.ParallelismOf(counter), 2u) << "high phase should scale out";
  const size_t vms_high = sps.VmsInUse();

  sps.RunUntil(300);
  EXPECT_EQ(sps.ParallelismOf(counter), 1u) << "low phase should scale in";
  EXPECT_LT(sps.VmsInUse(), vms_high);
}

TEST(ElasticityTest, WithoutScaleInVmsStayAllocated) {
  WordCountConfig wc = WaveWorkload(150, 35, 30, 120);
  WordCountQuery query = BuildWordCountQuery(wc);
  const OperatorId counter = query.counter;
  sps::Sps sps(std::move(query.graph), ElasticConfig(false));
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(300);
  EXPECT_GE(sps.ParallelismOf(counter), 2u);
}

TEST(ElasticityTest, FullCyclePreservesResultsExactly) {
  using Counts = std::map<std::pair<int64_t, std::string>, int64_t>;
  auto run = [](bool elastic) {
    WordCountConfig wc = WaveWorkload(150, 35, 30, 120);
    WordCountQuery query = BuildWordCountQuery(wc);
    auto results = query.results;
    sps::SpsConfig config = ElasticConfig(elastic);
    config.scaling.enabled = elastic;
    sps::Sps sps(std::move(query.graph), config);
    EXPECT_TRUE(sps.Deploy().ok());
    sps.RunFor(300);
    Counts stable;
    for (const auto& [key, value] : results->counts) {
      if (key.first <= 8) stable[key] = value;
    }
    return stable;
  };
  // A statically provisioned run (no scaling at all, single counter able to
  // absorb the wave only with queueing) still counts exactly; the elastic
  // run must produce identical windows.
  EXPECT_EQ(run(false), run(true));
}

TEST(ElasticityTest, ScaleInReleasesVmBilling) {
  WordCountConfig wc = WaveWorkload(150, 35, 30, 90);
  WordCountQuery query = BuildWordCountQuery(wc);
  sps::Sps sps(std::move(query.graph), ElasticConfig(true));
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunUntil(100);
  const size_t live_high = sps.cluster().provider()->num_live();
  sps.RunUntil(300);
  // Merged partitions release their VMs back to the provider.
  EXPECT_LT(sps.cluster().provider()->num_live(), live_high);
}

}  // namespace
}  // namespace seep
