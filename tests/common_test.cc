// Unit tests for the common substrate: Status/Result, deterministic RNG,
// statistics accumulators, hashing and time conversion.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/macros.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"

namespace seep {
namespace {

// ------------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such operator");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such operator");
  EXPECT_EQ(s.ToString(), "NotFound: no such operator");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::Corruption("bad frame");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad frame");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsCorruption());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kAborted); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

// ------------------------------------------------------------------- Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto doubled = [](int v) -> Result<int> {
    SEEP_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
    return parsed * 2;
  };
  EXPECT_EQ(doubled(4).value(), 8);
  EXPECT_FALSE(doubled(-4).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(13);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.NextZipf(n, 1.0);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Rank 0 clearly dominates rank 9, which dominates rank 99.
  EXPECT_GT(counts[0], counts[9] * 3);
  EXPECT_GT(counts[9], counts[99]);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(1);
  EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// -------------------------------------------------------------------- Stats

TEST(SampleDistributionTest, ExactPercentilesSmall) {
  SampleDistribution d;
  for (int i = 1; i <= 100; ++i) d.Add(i);
  EXPECT_DOUBLE_EQ(d.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 100);
  EXPECT_NEAR(d.Median(), 50.5, 0.01);
  EXPECT_NEAR(d.Percentile(95), 95, 1.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 50.5);
  EXPECT_EQ(d.count(), 100u);
  EXPECT_EQ(d.Min(), 1);
  EXPECT_EQ(d.Max(), 100);
}

TEST(SampleDistributionTest, EmptyReturnsZero) {
  SampleDistribution d;
  EXPECT_EQ(d.Percentile(50), 0);
  EXPECT_EQ(d.Mean(), 0);
  EXPECT_TRUE(d.empty());
}

TEST(SampleDistributionTest, ReservoirApproximatesUniform) {
  SampleDistribution d(/*max_samples=*/1000, /*seed=*/3);
  for (int i = 0; i < 100000; ++i) d.Add(i % 1000);
  EXPECT_NEAR(d.Median(), 500, 60);
  EXPECT_EQ(d.count(), 100000u);
}

TEST(SampleDistributionTest, ClearResets) {
  SampleDistribution d;
  d.Add(5);
  d.Clear();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.Max(), 0);
}

TEST(TimeSeriesTest, BucketedAverages) {
  TimeSeries ts;
  ts.Add(0, 10);
  ts.Add(kMicrosPerSecond / 2, 20);
  ts.Add(kMicrosPerSecond + 1, 30);
  const auto buckets = ts.Bucketed(kMicrosPerSecond);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].value, 15);
  EXPECT_DOUBLE_EQ(buckets[1].value, 30);
}

TEST(TimeSeriesTest, MaxAndLast) {
  TimeSeries ts;
  EXPECT_EQ(ts.Last(-1), -1);
  ts.Add(0, 3);
  ts.Add(1, 9);
  ts.Add(2, 4);
  EXPECT_EQ(ts.Max(), 9);
  EXPECT_EQ(ts.Last(), 4);
}

TEST(RateCounterTest, RatesPerSecondScales) {
  RateCounter rc(kMicrosPerSecond);
  rc.Add(0, 5);
  rc.Add(kMicrosPerSecond / 2, 5);
  rc.Add(3 * kMicrosPerSecond, 7);
  const auto rates = rc.RatesPerSecond();
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0].value, 10);
  EXPECT_DOUBLE_EQ(rates[1].value, 0);
  EXPECT_DOUBLE_EQ(rates[3].value, 7);
  EXPECT_EQ(rc.total(), 17u);
}

TEST(RateCounterTest, SubSecondBuckets) {
  RateCounter rc(kMicrosPerSecond / 10);  // 100 ms buckets
  rc.Add(0, 1);
  const auto rates = rc.RatesPerSecond();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].value, 10);  // 1 tuple per 100 ms = 10/s
}

// --------------------------------------------------------------------- Hash

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, HashBytesDistinguishesStrings) {
  EXPECT_NE(HashBytes("cat"), HashBytes("dog"));
  EXPECT_EQ(HashBytes("cat"), HashBytes("cat"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// --------------------------------------------------------------------- Time

TEST(TimeTest, Conversions) {
  EXPECT_EQ(SecondsToSim(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(SimToSeconds(2'500'000), 2.5);
  EXPECT_EQ(MillisToSim(2.5), 2'500);
  EXPECT_DOUBLE_EQ(SimToMillis(1'500), 1.5);
}

}  // namespace
}  // namespace seep
