// Network model semantics added for the evaluation: background (throttled)
// transfers must never delay foreground data traffic, and FIFO ordering
// must hold per link — the property the replay-fence protocol relies on.

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulation.h"

namespace seep::sim {
namespace {

NetworkConfig SlowNet() {
  NetworkConfig cfg;
  cfg.latency = MillisToSim(1);
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  return cfg;
}

TEST(BackgroundTrafficTest, DoesNotDelayForegroundOnSameUplink) {
  Simulation sim;
  Network net(&sim, SlowNet());
  net.Attach(1);
  net.Attach(2);
  net.Attach(3);

  // A 2 MB background checkpoint shipment occupies 2 s of uplink...
  SimTime background_done = -1;
  net.Send(1, 2, 2'000'000, [&] { background_done = sim.Now(); },
           /*background=*/true);
  // ...but a foreground data batch sent right after is NOT queued behind it.
  SimTime data_done = -1;
  net.Send(1, 3, 1000, [&] { data_done = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(data_done, MillisToSim(3));  // 1 ms tx + 1 ms latency + 1 ms rx
  EXPECT_GT(background_done, SecondsToSim(2));
}

TEST(BackgroundTrafficTest, BackgroundWaitsBehindForeground) {
  Simulation sim;
  Network net(&sim, SlowNet());
  net.Attach(1);
  net.Attach(2);
  // Foreground first: it owns the uplink for 1 s.
  net.Send(1, 2, 1'000'000, [] {});
  SimTime background_done = -1;
  net.Send(1, 2, 1000, [&] { background_done = sim.Now(); },
           /*background=*/true);
  sim.RunAll();
  // The background transfer starts only after the 1 s foreground tx.
  EXPECT_GT(background_done, SecondsToSim(1));
}

TEST(BackgroundTrafficTest, CountsBytesLikeForeground) {
  Simulation sim;
  Network net(&sim, SlowNet());
  net.Attach(1);
  net.Attach(2);
  net.Send(1, 2, 500, [] {}, true);
  sim.RunAll();
  EXPECT_EQ(net.UplinkBytes(1), 500u);
  EXPECT_EQ(net.DownlinkBytes(2), 500u);
}

TEST(FifoOrderingTest, SameLinkDeliveriesPreserveSendOrder) {
  Simulation sim;
  Network net(&sim, SlowNet());
  net.Attach(1);
  net.Attach(2);
  std::vector<int> deliveries;
  for (int i = 0; i < 20; ++i) {
    net.Send(1, 2, 100 + static_cast<uint64_t>(i) * 37, [&deliveries, i] {
      deliveries.push_back(i);
    });
  }
  sim.RunAll();
  ASSERT_EQ(deliveries.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(deliveries[i], i);
}

TEST(FifoOrderingTest, InterleavedSendersStillFifoPerReceiver) {
  Simulation sim;
  Network net(&sim, SlowNet());
  net.Attach(1);
  net.Attach(2);
  net.Attach(3);
  std::vector<std::pair<int, int>> deliveries;  // (sender, seq)
  for (int i = 0; i < 10; ++i) {
    net.Send(1, 3, 1000, [&, i] { deliveries.push_back({1, i}); });
    net.Send(2, 3, 1000, [&, i] { deliveries.push_back({2, i}); });
  }
  sim.RunAll();
  // Per-sender subsequences are in order even though they interleave.
  int last1 = -1, last2 = -1;
  for (const auto& [sender, seq] : deliveries) {
    if (sender == 1) {
      EXPECT_GT(seq, last1);
      last1 = seq;
    } else {
      EXPECT_GT(seq, last2);
      last2 = seq;
    }
  }
}

}  // namespace
}  // namespace seep::sim
