// Compares the three fault-tolerance mechanisms of paper §6.2 — recovery
// with state management (R+SM), upstream backup (UB) and source replay (SR)
// — on the windowed word frequency query, checking that all three rebuild
// correct windows and that their recovery times order as the paper reports
// (R+SM < SR/UB, widening with input rate).

#include <gtest/gtest.h>

#include "sps/sps.h"
#include "workloads/wordcount/wordcount.h"

namespace seep {
namespace {

using runtime::FaultToleranceMode;
using workloads::wordcount::BuildWordCountQuery;
using workloads::wordcount::WordCountConfig;
using workloads::wordcount::WordCountQuery;

struct ModeOutcome {
  std::map<std::pair<int64_t, std::string>, int64_t> counts;
  double recovery_seconds = -1;
  uint64_t replayed = 0;
};

ModeOutcome RunWithFailure(FaultToleranceMode mode, double rate,
                           double fail_at, double total = 150,
                           uint32_t parallel_recovery = 1,
                           double checkpoint_interval = 5) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = rate;
  wc.vocabulary = 300;
  wc.seed = 99;

  sps::SpsConfig config;
  config.cluster.ft_mode = mode;
  config.cluster.checkpoint_interval = SecondsToSim(checkpoint_interval);
  config.cluster.buffer_window = SecondsToSim(35);
  config.scaling.enabled = false;
  config.recovery.parallelism = parallel_recovery;

  WordCountQuery query = BuildWordCountQuery(wc);
  auto results = query.results;
  sps::Sps sps(std::move(query.graph), config);
  EXPECT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(query.counter, fail_at);
  sps.RunFor(total);

  ModeOutcome outcome;
  outcome.counts = results->counts;
  outcome.replayed = sps.metrics().tuples_replayed;
  for (const auto& r : sps.metrics().recoveries) {
    if (r.caught_up_at != 0) outcome.recovery_seconds = r.RecoverySeconds();
  }
  return outcome;
}

int64_t WindowTotal(const ModeOutcome& outcome, int64_t window) {
  int64_t total = 0;
  for (const auto& [key, count] : outcome.counts) {
    if (key.first == window) total += count;
  }
  return total;
}

class RecoveryModeTest
    : public ::testing::TestWithParam<FaultToleranceMode> {};

TEST_P(RecoveryModeTest, RecoversAndRebuildsWindows) {
  const ModeOutcome outcome = RunWithFailure(GetParam(), 200, 47.0);
  EXPECT_GT(outcome.recovery_seconds, 0) << "recovery never completed";
  EXPECT_LT(outcome.recovery_seconds, 35);
  // Window 1 spans [30, 60) s and straddles the failure at 47 s; each of its
  // ~6000 sentences contributes 20 words. All three mechanisms must rebuild
  // it fully (UB/SR buffers cover the whole 30 s window).
  const int64_t window1 = WindowTotal(outcome, 1);
  EXPECT_EQ(window1, 6000 * 20);
  EXPECT_GT(outcome.replayed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RecoveryModeTest,
    ::testing::Values(FaultToleranceMode::kStateManagement,
                      FaultToleranceMode::kUpstreamBackup,
                      FaultToleranceMode::kSourceReplay),
    [](const auto& info) {
      switch (info.param) {
        case FaultToleranceMode::kStateManagement:
          return "StateManagement";
        case FaultToleranceMode::kUpstreamBackup:
          return "UpstreamBackup";
        case FaultToleranceMode::kSourceReplay:
          return "SourceReplay";
        default:
          return "None";
      }
    });

TEST(RecoveryComparison, StateManagementRecoversFasterAtHighRate) {
  // Paper Fig. 11: at higher input rates, re-processing dominates recovery
  // time, so R+SM (which replays only up to one checkpoint interval) beats
  // the mechanisms that re-process the whole window.
  const double rate = 1000;
  const double r_sm =
      RunWithFailure(FaultToleranceMode::kStateManagement, rate, 47)
          .recovery_seconds;
  const double ub =
      RunWithFailure(FaultToleranceMode::kUpstreamBackup, rate, 47)
          .recovery_seconds;
  const double sr =
      RunWithFailure(FaultToleranceMode::kSourceReplay, rate, 47)
          .recovery_seconds;
  ASSERT_GT(r_sm, 0);
  ASSERT_GT(ub, 0);
  ASSERT_GT(sr, 0);
  EXPECT_LT(r_sm, ub);
  EXPECT_LT(r_sm, sr);
}

TEST(RecoveryComparison, RecoveryTimeGrowsWithCheckpointInterval) {
  // Paper Fig. 12: longer checkpoint intervals mean more tuples to replay.
  const double short_interval =
      RunWithFailure(FaultToleranceMode::kStateManagement, 500, 47, 150, 1,
                     /*checkpoint_interval=*/2)
          .recovery_seconds;
  const double long_interval =
      RunWithFailure(FaultToleranceMode::kStateManagement, 500, 47, 150, 1,
                     /*checkpoint_interval=*/20)
          .recovery_seconds;
  ASSERT_GT(short_interval, 0);
  ASSERT_GT(long_interval, 0);
  EXPECT_LT(short_interval, long_interval);
}

TEST(RecoveryComparison, ParallelRecoveryCompletesAndSplitsOperator) {
  WordCountConfig wc;
  wc.rate_tuples_per_sec = 500;
  wc.seed = 7;

  sps::SpsConfig config;
  config.cluster.checkpoint_interval = SecondsToSim(15);
  config.scaling.enabled = false;
  config.recovery.parallelism = 2;

  WordCountQuery query = BuildWordCountQuery(wc);
  const OperatorId counter = query.counter;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.InjectFailure(counter, 40);
  sps.RunFor(120);

  ASSERT_EQ(sps.metrics().recoveries.size(), 1u);
  EXPECT_GT(sps.metrics().recoveries[0].caught_up_at, 0);
  // Parallel recovery leaves the operator partitioned in two.
  EXPECT_EQ(sps.ParallelismOf(counter), 2u);
}

}  // namespace
}  // namespace seep
