// Wire-format tests for tuples and batches: exact roundtrips, size
// accounting (the network/CPU cost model), and property sweeps.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tuple.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::core {
namespace {

Tuple Sample() {
  Tuple t;
  t.timestamp = 123456;
  t.key = 0xDEADBEEFCAFEull;
  t.origin = 42;
  t.event_time = SecondsToSim(3.5);
  t.ints = {-1, 0, 77, INT64_MAX};
  t.text = "hello world";
  t.latency_sample = false;
  return t;
}

TEST(TupleTest, RoundtripPreservesAllFields) {
  const Tuple t = Sample();
  serde::Encoder enc;
  t.Encode(&enc);
  serde::Decoder dec(enc.buffer());
  auto back = Tuple::Decode(&dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->timestamp, t.timestamp);
  EXPECT_EQ(back->key, t.key);
  EXPECT_EQ(back->origin, t.origin);
  EXPECT_EQ(back->event_time, t.event_time);
  EXPECT_EQ(back->ints, t.ints);
  EXPECT_EQ(back->text, t.text);
  EXPECT_EQ(back->latency_sample, t.latency_sample);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(TupleTest, SerializedSizeMatchesEncodedSize) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Tuple t;
    t.timestamp = static_cast<int64_t>(rng.Next()) >> rng.NextBounded(40);
    t.key = rng.Next();
    t.origin = rng.Next();
    t.event_time = static_cast<SimTime>(rng.NextBounded(1u << 30));
    for (auto& v : t.ints) {
      v = static_cast<int64_t>(rng.Next()) >> rng.NextBounded(60);
    }
    t.text = std::string(rng.NextBounded(100), 'q');
    serde::Encoder enc;
    t.Encode(&enc);
    EXPECT_EQ(enc.size(), t.SerializedSize());
  }
}

TEST(TupleTest, BatchSizeSumsTuplesPlusHeader) {
  TupleBatch batch;
  batch.tuples.push_back(Sample());
  batch.tuples.push_back(Sample());
  EXPECT_EQ(batch.SerializedSize(), 16 + 2 * Sample().SerializedSize());
}

TEST(TupleTest, DefaultsAreSane) {
  Tuple t;
  EXPECT_EQ(t.origin, kInvalidOrigin);
  EXPECT_TRUE(t.latency_sample);
  EXPECT_EQ(t.timestamp, 0);
  TupleBatch b;
  EXPECT_FALSE(b.replay);
  EXPECT_EQ(b.fence_id, 0u);
}

}  // namespace
}  // namespace seep::core
