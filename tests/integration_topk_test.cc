// Top-k map/reduce integration (paper §6.1's open-loop workload): an
// initially under-provisioned deployment drops tuples, scales out until it
// sustains the rate, and the per-window ranking reflects the Zipf skew.

#include <gtest/gtest.h>

#include "sps/sps.h"
#include "workloads/topk/topk.h"

namespace seep {
namespace {

using workloads::topk::BuildTopKQuery;
using workloads::topk::TopKConfig;
using workloads::topk::TopKQuery;

TEST(TopKIntegration, RankingReflectsZipfSkew) {
  TopKConfig cfg;
  cfg.total_rate_tuples_per_sec = 2000;
  cfg.num_sources = 4;
  cfg.num_languages = 50;
  cfg.seed = 11;
  TopKQuery query = BuildTopKQuery(cfg);
  auto results = query.results;

  sps::SpsConfig config;
  config.scaling.enabled = false;
  config.initial_parallelism = {{query.map, 2}, {query.reduce, 2}};
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(100);

  // Window 1 is fully closed and flushed. Under Zipf skew, language 0 is
  // the most visited.
  const auto top = results->TopK(/*window=*/1, cfg.k);
  ASSERT_GE(top.size(), cfg.k);
  EXPECT_EQ(top[0].first, 0);
  EXPECT_GT(top[0].second, top[1].second);
  // Counts across the ranking are monotonically non-increasing.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST(TopKIntegration, OpenLoopScalesOutUntilRateSustained) {
  TopKConfig cfg;
  cfg.total_rate_tuples_per_sec = 30000;
  cfg.num_sources = 6;
  cfg.map_cost_us = 30;     // deliberately expensive: 1 VM sustains ~33k/s
  cfg.reduce_cost_us = 40;  // 1 VM sustains ~25k/s: must scale out
  cfg.seed = 13;
  TopKQuery query = BuildTopKQuery(cfg);

  sps::SpsConfig config;
  config.cluster.max_queue_tuples = 20000;  // open loop: drops under overload
  config.scaling.enabled = true;
  config.scaling.report_interval = SecondsToSim(5);
  config.cluster.pool.target_size = 4;
  const OperatorId map_op = query.map;
  const OperatorId reduce_op = query.reduce;
  sps::Sps sps(std::move(query.graph), config);
  ASSERT_TRUE(sps.Deploy().ok());
  sps.RunFor(300);

  // Under-provisioned at the start: tuples were dropped.
  EXPECT_GT(sps.metrics().dropped_tuples.total(), 0u);
  // The system scaled out both operators.
  EXPECT_GE(sps.ParallelismOf(map_op) + sps.ParallelismOf(reduce_op), 4u);

  // Eventually the sink consumption approaches the partial-count output of
  // a system keeping up: drops stop near the end of the run.
  const auto drops = sps.metrics().dropped_tuples.RatesPerSecond();
  double late_drop_rate = 0;
  for (const auto& point : drops) {
    if (point.time > SecondsToSim(280)) {
      late_drop_rate = std::max(late_drop_rate, point.value);
    }
  }
  EXPECT_EQ(late_drop_rate, 0);
}

}  // namespace
}  // namespace seep
