#ifndef SEEP_NET_EVENT_LOOP_H_
#define SEEP_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/socket.h"

namespace seep::net {

/// Handle for a scheduled timer, usable with EventLoop::CancelTimer.
/// Value 0 is never issued.
using TimerId = uint64_t;

/// An epoll-based reactor, run by exactly one thread (the worker thread that
/// calls Run). Everything registered with the loop — fd callbacks, timers,
/// posted tasks — executes on that thread, which is what lets Connection and
/// Worker keep all their state unlocked: the loop thread is a single-writer
/// domain, and other threads talk to it only through Post (task queue +
/// eventfd wakeup).
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t epoll_events)>;
  using Task = std::function<void()>;
  using Clock = std::chrono::steady_clock;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs the loop until Stop: waits on epoll, dispatches fd events, fires
  /// due timers, drains posted tasks. Call from the owning thread only.
  void Run();

  /// Makes Run return after the current iteration. Safe from any thread and
  /// from inside loop callbacks.
  void Stop();

  /// Registers `fd` for the epoll events in `mask` (EPOLLIN/EPOLLOUT/...),
  /// dispatching to `cb` on the loop thread. Loop thread only.
  void AddFd(int fd, uint32_t mask, FdCallback cb);

  /// Changes the interest mask of a registered fd. Loop thread only.
  void UpdateFd(int fd, uint32_t mask);

  /// Unregisters `fd`; no further callbacks fire for it. Loop thread only.
  void RemoveFd(int fd);

  /// Enqueues `task` to run on the loop thread and wakes the loop. Safe from
  /// any thread — this is the only cross-thread entry point. Tasks posted
  /// after Stop may never run.
  void Post(Task task);

  /// Schedules `task` on the loop thread after `delay` (reconnect backoff
  /// and the like). Loop thread only; cancel with CancelTimer.
  TimerId AddTimer(std::chrono::milliseconds delay, Task task);

  /// Cancels a pending timer; cancelling a fired/unknown id is a no-op.
  void CancelTimer(TimerId id);

  /// Whether the caller is the thread currently inside Run (callbacks may
  /// assert this).
  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  struct Timer {
    Clock::time_point deadline;
    TimerId id;
    mutable Task task;  // moved out when the timer fires
    bool operator>(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };

  void Wakeup();
  void DrainWakeup();
  int NextTimeoutMillis() const;
  void FireDueTimers();

  ScopedFd epoll_fd_;
  ScopedFd wakeup_fd_;  // eventfd: cross-thread Post and Stop wake the loop
  std::atomic<bool> stop_{false};
  std::thread::id loop_thread_;

  std::unordered_map<int, FdCallback> fd_callbacks_;

  std::mutex tasks_mu_;
  std::vector<Task> tasks_;

  TimerId next_timer_id_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_set<TimerId> cancelled_timers_;
};

}  // namespace seep::net

#endif  // SEEP_NET_EVENT_LOOP_H_
