#ifndef SEEP_NET_EVENT_LOOP_H_
#define SEEP_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sync.h"
#include "net/socket.h"

namespace seep::net {

/// Handle for a scheduled timer, usable with EventLoop::CancelTimer.
/// Value 0 is never issued.
using TimerId = uint64_t;

/// An epoll-based reactor, run by exactly one thread (the worker thread that
/// calls Run). Everything registered with the loop — fd callbacks, timers,
/// posted tasks — executes on that thread, which is what lets Connection and
/// Worker keep all their state unlocked: the loop thread is a single-writer
/// domain, and other threads talk to it only through Post (task queue +
/// eventfd wakeup).
///
/// The single-writer discipline is a capability: Run adopts
/// sync::LoopThread, loop-confined methods are SEEP_RUN_ON(LoopThread), and
/// loop-confined state is SEEP_GUARDED_BY(LoopThread) — so a clang SEEP_TSA
/// build rejects any call that reaches them from another thread.
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t epoll_events)>;
  using Task = std::function<void()>;
  using Clock = std::chrono::steady_clock;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs the loop until Stop: waits on epoll, dispatches fd events, fires
  /// due timers, drains posted tasks. Adopts the LoopThread role for the
  /// calling thread; call from the owning thread only.
  void Run();

  /// Makes Run return after the current iteration. Safe from any thread and
  /// from inside loop callbacks.
  void Stop();

  /// Registers `fd` for the epoll events in `mask` (EPOLLIN/EPOLLOUT/...),
  /// dispatching to `cb` on the loop thread. Loop thread only.
  void AddFd(int fd, uint32_t mask, FdCallback cb)
      SEEP_RUN_ON(sync::LoopThread);

  /// Changes the interest mask of a registered fd. Loop thread only.
  void UpdateFd(int fd, uint32_t mask) SEEP_RUN_ON(sync::LoopThread);

  /// Unregisters `fd`; no further callbacks fire for it. Loop thread only.
  void RemoveFd(int fd) SEEP_RUN_ON(sync::LoopThread);

  /// Enqueues `task` to run on the loop thread and wakes the loop. Safe from
  /// any thread — this is the only cross-thread entry point. Tasks posted
  /// after Stop may never run.
  void Post(Task task) SEEP_EXCLUDES(tasks_mu_);

  /// Schedules `task` on the loop thread after `delay` (reconnect backoff
  /// and the like). Loop thread only; cancel with CancelTimer.
  TimerId AddTimer(std::chrono::milliseconds delay, Task task)
      SEEP_RUN_ON(sync::LoopThread);

  /// Cancels a pending timer; cancelling a fired/unknown id is a no-op.
  void CancelTimer(TimerId id) SEEP_RUN_ON(sync::LoopThread);

  /// Whether the caller is the thread currently inside Run (callbacks may
  /// assert this). Safe from any thread.
  bool InLoopThread() const {
    return std::this_thread::get_id() ==
           loop_thread_.load(std::memory_order_acquire);
  }

 private:
  struct Timer {
    Clock::time_point deadline;
    TimerId id;
    mutable Task task;  // moved out when the timer fires
    bool operator>(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };

  void Wakeup();
  void DrainWakeup() SEEP_RUN_ON(sync::LoopThread);
  int NextTimeoutMillis() const SEEP_RUN_ON(sync::LoopThread);
  void FireDueTimers() SEEP_RUN_ON(sync::LoopThread);

  ScopedFd epoll_fd_ SEEP_UNGUARDED("set in the constructor, fixed after");
  ScopedFd wakeup_fd_ SEEP_UNGUARDED("set in the constructor, fixed after");
  std::atomic<bool> stop_{false};
  // The id of the thread inside Run; atomic because InLoopThread races with
  // Run's store by design (it answers "am I that thread?" from any thread).
  std::atomic<std::thread::id> loop_thread_{};

  std::unordered_map<int, FdCallback> fd_callbacks_
      SEEP_GUARDED_BY(sync::LoopThread);

  sync::Mutex tasks_mu_;
  std::vector<Task> tasks_ SEEP_GUARDED_BY(tasks_mu_);

  TimerId next_timer_id_ SEEP_GUARDED_BY(sync::LoopThread) = 0;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_
      SEEP_GUARDED_BY(sync::LoopThread);
  std::unordered_set<TimerId> cancelled_timers_
      SEEP_GUARDED_BY(sync::LoopThread);
};

}  // namespace seep::net

#endif  // SEEP_NET_EVENT_LOOP_H_
