#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/macros.h"

namespace seep::net {

namespace {

[[nodiscard]] Status Errno(const char* what) {
  // strerror(3) shares a static buffer across threads and this path runs
  // on every event-loop thread; format into a local buffer instead. The
  // GNU strerror_r returns the message pointer (which may ignore buf).
  char buf[128] = {};
  const char* msg = strerror_r(errno, buf, sizeof(buf));
  return Status::Internal(std::string(what) + ": " + msg);
}

[[nodiscard]] Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  // Latency over throughput on the data path: tuple batches are small and
  // Nagle would add a full RTT of delay to every odd-sized frame.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void ScopedFd::Reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

[[nodiscard]] Result<ScopedFd> ListenLoopback(uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) return Errno("listen");
  SEEP_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

[[nodiscard]] Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

[[nodiscard]] Result<ScopedFd> ConnectLoopback(uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  SEEP_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  SetNoDelay(fd.get());
  const sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    return Errno("connect");
  }
  return fd;
}

[[nodiscard]] Result<ScopedFd> AcceptConnection(int listen_fd) {
  const int fd =
      ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ScopedFd();
    return Errno("accept4");
  }
  SetNoDelay(fd);
  return ScopedFd(fd);
}

int SocketError(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

}  // namespace seep::net
