#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/macros.h"

namespace seep::net {

namespace {
// One epoll_wait's worth of events; more simply arrive on the next turn.
constexpr int kMaxEvents = 64;
}  // namespace

EventLoop::EventLoop()
    : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)),
      wakeup_fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  SEEP_CHECK(epoll_fd_.valid());
  SEEP_CHECK(wakeup_fd_.valid());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_.get();
  SEEP_CHECK_EQ(
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wakeup_fd_.get(), &ev), 0);
}

EventLoop::~EventLoop() = default;

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // A full eventfd counter (impossible here) would mean a wakeup is already
  // pending, which is all we need.
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_fd_.get(), &one, sizeof(one));
}

void EventLoop::DrainWakeup() {
  uint64_t count;
  while (::read(wakeup_fd_.get(), &count, sizeof(count)) > 0) {
  }
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wakeup();
}

void EventLoop::Post(Task task) {
  {
    sync::MutexLock lock(&tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::AddFd(int fd, uint32_t mask, FdCallback cb) {
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = fd;
  SEEP_CHECK_EQ(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev), 0);
  fd_callbacks_[fd] = std::move(cb);
}

void EventLoop::UpdateFd(int fd, uint32_t mask) {
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = fd;
  SEEP_CHECK_EQ(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev), 0);
}

void EventLoop::RemoveFd(int fd) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  fd_callbacks_.erase(fd);
}

TimerId EventLoop::AddTimer(std::chrono::milliseconds delay, Task task) {
  const TimerId id = ++next_timer_id_;
  timers_.push(Timer{Clock::now() + delay, id, std::move(task)});
  return id;
}

void EventLoop::CancelTimer(TimerId id) { cancelled_timers_.insert(id); }

int EventLoop::NextTimeoutMillis() const {
  if (timers_.empty()) return 100;  // idle heartbeat; wakeups cut it short
  const auto until = timers_.top().deadline - Clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(until).count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(ms, 100));
}

void EventLoop::FireDueTimers() {
  const Clock::time_point now = Clock::now();
  while (!timers_.empty() && timers_.top().deadline <= now) {
    Task task = std::move(timers_.top().task);
    const TimerId id = timers_.top().id;
    timers_.pop();
    if (cancelled_timers_.erase(id) > 0) continue;
    task();
  }
}

void EventLoop::Run() {
  // The calling thread is the loop thread for the duration of Run: it holds
  // the LoopThread capability, unlocking the loop-confined methods/state.
  sync::ScopedThreadRole role(sync::LoopThread);
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_.get(), events, kMaxEvents,
                     NextTimeoutMillis());
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_.get()) {
        DrainWakeup();
        continue;
      }
      // The callback may RemoveFd itself or peers; look up per event.
      auto it = fd_callbacks_.find(fd);
      if (it != fd_callbacks_.end()) it->second(events[i].events);
    }
    FireDueTimers();
    // Drain posted tasks last: a task may close connections whose events
    // were dispatched above, never the other way around.
    std::vector<Task> tasks;
    {
      sync::MutexLock lock(&tasks_mu_);
      tasks.swap(tasks_);
    }
    for (Task& task : tasks) task();
  }
  loop_thread_.store(std::thread::id(), std::memory_order_release);
}

}  // namespace seep::net
