#ifndef SEEP_NET_CONNECTION_H_
#define SEEP_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/sync.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"

namespace seep::net {

/// Outcome of queueing a frame on a connection. kPressured means the frame
/// was accepted but the outbound queue has crossed its soft watermark — the
/// sender should ease off; kOverflow means the hard cap was hit and the
/// frame was dropped (the peer recovers the data through replay, exactly as
/// it would after a crash).
enum class [[nodiscard]] SendStatus : uint8_t {
  kOk = 0,
  kPressured = 1,
  kOverflow = 2,
  kClosed = 3,
};

/// Soft/hard bounds on a connection's outbound byte queue.
struct QueueLimits {
  size_t pressure_bytes = 4 << 20;  // report kPressured above this
  size_t max_bytes = 64 << 20;      // drop frames above this
};

/// One non-blocking TCP stream, owned by and confined to an EventLoop
/// thread (every method and both callbacks run under the LoopThread
/// capability). Handles connect completion, a bounded outbound write queue,
/// incremental frame reassembly on the inbound side, and error/EOF
/// detection. Reconnect policy lives in Worker; a Connection dies once and
/// reports it.
class Connection {
 public:
  using FrameCallback =
      std::function<void(Connection*, std::vector<uint8_t> payload)>;
  using CloseCallback = std::function<void(Connection*)>;

  /// Takes ownership of `fd`, which is either connecting (client side) or
  /// already established (accepted side). Registers with `loop`; must be
  /// called on the loop thread (runtime-checked), as must every other
  /// method.
  Connection(EventLoop* loop, ScopedFd fd, bool connecting,
             QueueLimits limits, uint64_t max_frame_payload);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_on_frame(FrameCallback cb) SEEP_RUN_ON(sync::LoopThread) {
    on_frame_ = std::move(cb);
  }
  /// Fires exactly once, after the fd is deregistered. The callback may
  /// delete this Connection.
  void set_on_close(CloseCallback cb) SEEP_RUN_ON(sync::LoopThread) {
    on_close_ = std::move(cb);
  }

  /// Queues an already-framed message for writing. Frames queued while still
  /// connecting flush in order once the connect completes.
  SendStatus Send(std::vector<uint8_t> frame) SEEP_RUN_ON(sync::LoopThread);

  /// Deregisters from the loop and closes the socket. Pending outbound
  /// frames are dropped (a closing link makes no delivery promises — the
  /// recovery protocol does). Fires on_close unless it already fired.
  void Close() SEEP_RUN_ON(sync::LoopThread);

  bool connected() const SEEP_RUN_ON(sync::LoopThread) {
    return state_ == State::kConnected;
  }
  bool closed() const SEEP_RUN_ON(sync::LoopThread) {
    return state_ == State::kClosed;
  }
  /// Whether the connect ever completed (distinguishes an established link
  /// that died from one that never came up, for backoff policy).
  bool ever_connected() const SEEP_RUN_ON(sync::LoopThread) {
    return ever_connected_;
  }
  size_t queued_bytes() const SEEP_RUN_ON(sync::LoopThread) {
    return queued_bytes_;
  }
  size_t frames_dropped() const SEEP_RUN_ON(sync::LoopThread) {
    return frames_dropped_;
  }

 private:
  enum class State : uint8_t { kConnecting, kConnected, kClosed };

  void OnEvents(uint32_t events) SEEP_RUN_ON(sync::LoopThread);
  void HandleConnectComplete() SEEP_RUN_ON(sync::LoopThread);
  void HandleReadable() SEEP_RUN_ON(sync::LoopThread);
  void FlushWrites() SEEP_RUN_ON(sync::LoopThread);
  void UpdateInterest() SEEP_RUN_ON(sync::LoopThread);

  EventLoop* const loop_;
  ScopedFd fd_ SEEP_GUARDED_BY(sync::LoopThread);
  State state_ SEEP_GUARDED_BY(sync::LoopThread);
  const QueueLimits limits_;

  FrameReader reader_ SEEP_GUARDED_BY(sync::LoopThread);
  FrameCallback on_frame_ SEEP_GUARDED_BY(sync::LoopThread);
  CloseCallback on_close_ SEEP_GUARDED_BY(sync::LoopThread);

  std::deque<std::vector<uint8_t>> write_queue_
      SEEP_GUARDED_BY(sync::LoopThread);
  // Bytes of write_queue_.front() already sent.
  size_t write_offset_ SEEP_GUARDED_BY(sync::LoopThread) = 0;
  size_t queued_bytes_ SEEP_GUARDED_BY(sync::LoopThread) = 0;
  size_t frames_dropped_ SEEP_GUARDED_BY(sync::LoopThread) = 0;
  bool want_write_ SEEP_GUARDED_BY(sync::LoopThread) = false;
  bool ever_connected_ SEEP_GUARDED_BY(sync::LoopThread) = false;
};

}  // namespace seep::net

#endif  // SEEP_NET_CONNECTION_H_
