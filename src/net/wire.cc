#include "net/wire.h"

#include <cstring>

#include "common/macros.h"
#include "serde/crc32c.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::net {

std::vector<uint8_t> EncodeMessage(const Message& msg) {
  serde::Encoder enc;
  enc.Reserve(1 + 4 + 4 + 9 + msg.body.size());
  enc.AppendU8(static_cast<uint8_t>(msg.type));
  enc.AppendFixed32(msg.from_vm);
  enc.AppendFixed32(msg.to_vm);
  enc.AppendVarint64(msg.ship_id);
  enc.AppendRaw(msg.body.data(), msg.body.size());
  return serde::FramePayload(std::move(enc).TakeBuffer());
}

[[nodiscard]]
Result<Message> DecodeMessage(const std::vector<uint8_t>& payload) {
  serde::Decoder dec(payload);
  Message msg;
  SEEP_ASSIGN_OR_RETURN(const uint8_t type, dec.ReadU8());
  if (type < static_cast<uint8_t>(MessageType::kHello) ||
      type > static_cast<uint8_t>(MessageType::kCheckpointChunk)) {
    return Status::Corruption("unknown wire message type");
  }
  msg.type = static_cast<MessageType>(type);
  SEEP_ASSIGN_OR_RETURN(msg.from_vm, dec.ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(msg.to_vm, dec.ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(msg.ship_id, dec.ReadVarint64());
  msg.body.assign(payload.begin() + dec.position(), payload.end());
  return msg;
}

[[nodiscard]] Status FrameReader::Consume(const uint8_t* data, size_t n,
                            std::vector<std::vector<uint8_t>>* out) {
  buf_.insert(buf_.end(), data, data + n);
  while (true) {
    const size_t avail = buf_.size() - pos_;
    if (avail < serde::kFrameHeaderBytes) break;
    SEEP_ASSIGN_OR_RETURN(
        const serde::FrameHeader header,
        serde::ReadFrameHeader(buf_.data() + pos_, avail, max_payload_));
    const size_t frame_len =
        serde::kFrameHeaderBytes + static_cast<size_t>(header.payload_len);
    if (avail < frame_len) break;
    const uint8_t* payload = buf_.data() + pos_ + serde::kFrameHeaderBytes;
    if (serde::Crc32c(payload, header.payload_len) != header.crc) {
      return Status::Corruption("frame CRC mismatch");
    }
    out->emplace_back(payload, payload + header.payload_len);
    pos_ += frame_len;
  }
  // Compact once the parsed prefix dominates, so a long-lived stream does
  // not grow the buffer without bound while staying O(1) amortized.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + pos_);
    pos_ = 0;
  }
  return Status::OK();
}

}  // namespace seep::net
