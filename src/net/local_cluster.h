#ifndef SEEP_NET_LOCAL_CLUSTER_H_
#define SEEP_NET_LOCAL_CLUSTER_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/ids.h"
#include "common/status.h"
#include "net/endpoint.h"
#include "net/worker.h"

namespace seep::net {

/// A cluster of VM workers on 127.0.0.1 ephemeral ports: the harness the TCP
/// transport (and the net tests/benches) run against. Owns the endpoint
/// registry and one Worker per attached VM. All methods are safe from the
/// harness thread; worker callbacks run on the worker threads.
class LocalCluster {
 public:
  explicit LocalCluster(WorkerOptions options = {}) : options_(options) {}
  ~LocalCluster() { Shutdown(); }

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Creates and starts a worker for `vm`. Callbacks are installed before
  /// the worker starts, so no delivery can be missed.
  Status StartWorker(VmId vm, Worker::MessageCallback on_message,
                     Worker::PeerCallback on_peer_disconnect = nullptr,
                     Worker::DropCallback on_frames_dropped = nullptr);

  /// Hard-kills `vm`'s worker: sockets close mid-stream, peers observe a
  /// dead TCP peer. No-op for an unknown VM.
  void KillWorker(VmId vm);

  /// Sends `msg` from `from`'s worker to `to`. Returns kClosed if `from` has
  /// no live worker.
  SendStatus Post(VmId from, VmId to, const Message& msg);

  /// Whether `vm` currently has a live worker.
  bool IsAttached(VmId vm) const;

  /// Aggregate counters across live workers (killed workers' counts are
  /// frozen into the totals at kill time).
  struct Stats {
    uint64_t messages_delivered = 0;
    uint64_t frames_dropped = 0;
    uint64_t peer_disconnects = 0;
  };
  Stats TotalStats() const;

  /// Kills every worker.
  void Shutdown();

  EndpointRegistry* registry() { return &registry_; }

 private:
  void Accumulate(const Worker& worker) const;

  const WorkerOptions options_;
  EndpointRegistry registry_;

  mutable std::mutex mu_;
  std::unordered_map<VmId, std::unique_ptr<Worker>> workers_;
  mutable Stats frozen_;  // counters of workers killed so far
};

}  // namespace seep::net

#endif  // SEEP_NET_LOCAL_CLUSTER_H_
