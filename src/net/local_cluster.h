#ifndef SEEP_NET_LOCAL_CLUSTER_H_
#define SEEP_NET_LOCAL_CLUSTER_H_

#include <memory>
#include <unordered_map>

#include "common/ids.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/endpoint.h"
#include "net/worker.h"

namespace seep::net {

/// A cluster of VM workers on 127.0.0.1 ephemeral ports: the harness the TCP
/// transport (and the net tests/benches) run against. Owns the endpoint
/// registry and one Worker per attached VM. All methods are safe from the
/// harness thread; worker callbacks run on the worker threads.
class LocalCluster {
 public:
  explicit LocalCluster(WorkerOptions options = {}) : options_(options) {}
  ~LocalCluster() { Shutdown(); }

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Creates and starts a worker for `vm`. Callbacks are installed before
  /// the worker starts, so no delivery can be missed.
  [[nodiscard]] Status StartWorker(VmId vm, Worker::MessageCallback on_message,
                     Worker::PeerCallback on_peer_disconnect = nullptr,
                     Worker::DropCallback on_frames_dropped = nullptr)
      SEEP_EXCLUDES(mu_);

  /// Hard-kills `vm`'s worker: sockets close mid-stream, peers observe a
  /// dead TCP peer. No-op for an unknown VM.
  void KillWorker(VmId vm) SEEP_EXCLUDES(mu_);

  /// Sends `msg` from `from`'s worker to `to`. Returns kClosed if `from` has
  /// no live worker.
  SendStatus Post(VmId from, VmId to, const Message& msg)
      SEEP_EXCLUDES(mu_);

  /// Whether `vm` currently has a live worker.
  bool IsAttached(VmId vm) const SEEP_EXCLUDES(mu_);

  /// Aggregate counters across live workers (killed workers' counts are
  /// frozen into the totals at kill time).
  struct Stats {
    uint64_t messages_delivered = 0;
    uint64_t frames_dropped = 0;
    uint64_t peer_disconnects = 0;
  };
  Stats TotalStats() const SEEP_EXCLUDES(mu_);

  /// Kills every worker.
  void Shutdown() SEEP_EXCLUDES(mu_);

  EndpointRegistry* registry() { return &registry_; }

 private:
  void Accumulate(const Worker& worker) const SEEP_REQUIRES(mu_);

  const WorkerOptions options_;
  EndpointRegistry registry_
      SEEP_UNGUARDED("internally synchronised (its own mu_; endpoint.h)");

  mutable sync::Mutex mu_;
  std::unordered_map<VmId, std::unique_ptr<Worker>> workers_
      SEEP_GUARDED_BY(mu_);
  // Counters of workers killed so far.
  mutable Stats frozen_ SEEP_GUARDED_BY(mu_);
};

}  // namespace seep::net

#endif  // SEEP_NET_LOCAL_CLUSTER_H_
