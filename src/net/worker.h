#ifndef SEEP_NET_WORKER_H_
#define SEEP_NET_WORKER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/connection.h"
#include "net/endpoint.h"
#include "net/event_loop.h"
#include "net/wire.h"

namespace seep::net {

/// Knobs for a worker's links.
struct WorkerOptions {
  QueueLimits queue_limits;
  uint64_t max_frame_payload = serde::kDefaultMaxFramePayload;
  /// Reconnect backoff: first retry after `backoff_initial`, doubling up to
  /// `backoff_cap`.
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_cap{500};
};

/// The networking half of one VM: a thread running an EventLoop, a loopback
/// listener other workers connect to, and one outbound Connection per peer
/// VM this worker sends to (lazily established, reconnected with capped
/// exponential backoff after any failure). Inbound links identify their peer
/// through a kHello frame, so disconnects are attributed to a VmId on both
/// sides.
///
/// Threading: Post and Kill are safe from any thread; everything else —
/// including all callbacks — runs on the worker's loop thread.
class Worker {
 public:
  /// Inbound message, delivered on the worker thread.
  using MessageCallback = std::function<void(Message)>;
  /// A link to/from `peer` died, delivered on the worker thread. Fires for
  /// both inbound and outbound links (once per link death, which means a
  /// dead peer is typically reported twice: data link and reverse link).
  using PeerCallback = std::function<void(VmId peer)>;
  /// `frames` outbound frames to `peer` were dropped (overflow or link
  /// death), on the worker thread.
  using DropCallback = std::function<void(VmId peer, size_t frames)>;

  /// Monotonic counters, readable from any thread.
  struct Stats {
    std::atomic<uint64_t> messages_delivered{0};
    std::atomic<uint64_t> frames_dropped{0};
    std::atomic<uint64_t> peer_disconnects{0};
    std::atomic<uint64_t> reconnect_attempts{0};
  };

  Worker(VmId vm, EndpointRegistry* registry, WorkerOptions options = {});
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void set_on_message(MessageCallback cb) { on_message_ = std::move(cb); }
  void set_on_peer_disconnect(PeerCallback cb) {
    on_peer_disconnect_ = std::move(cb);
  }
  void set_on_frames_dropped(DropCallback cb) {
    on_frames_dropped_ = std::move(cb);
  }

  /// Binds the listener (ephemeral loopback port), registers it, and starts
  /// the loop thread. Callbacks must be set before Start.
  [[nodiscard]] Status Start();

  /// Hard stop, from any thread except the loop thread: unregisters the
  /// endpoint, stops and joins the loop, closes every socket. Peers see the
  /// close as a dead TCP peer — exactly the failure the recovery protocol
  /// handles. Idempotent.
  void Kill();

  /// Queues `msg` for delivery to `to`, establishing the link if needed.
  /// Safe from any thread. kPressured reflects this worker's total queued
  /// outbound bytes crossing the soft watermark; kOverflow means the frame
  /// was dropped at the hard cap; kClosed means the worker was killed.
  SendStatus Post(VmId to, const Message& msg);

  VmId vm() const { return vm_; }
  uint16_t port() const { return port_; }
  const Stats& stats() const { return stats_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  /// One outbound link: the live connection (possibly still connecting), a
  /// pending queue for frames that arrive while the link is down, and the
  /// reconnect backoff state. Loop thread only.
  struct Link {
    std::unique_ptr<Connection> conn;
    std::deque<std::vector<uint8_t>> pending;
    size_t pending_bytes = 0;
    uint32_t failures = 0;
    bool retry_scheduled = false;
  };

  /// One accepted inbound connection and the peer it announced via kHello.
  struct Inbound {
    std::unique_ptr<Connection> conn;
    VmId peer = kInvalidVm;
  };

  void OnListenerReadable() SEEP_RUN_ON(sync::LoopThread);
  void SendOnLink(VmId to, std::vector<uint8_t> frame)
      SEEP_RUN_ON(sync::LoopThread);
  void TryConnect(VmId to) SEEP_RUN_ON(sync::LoopThread);
  void OnOutboundClosed(VmId to, Connection* conn)
      SEEP_RUN_ON(sync::LoopThread);
  void ScheduleRetry(VmId to) SEEP_RUN_ON(sync::LoopThread);
  void OnInboundFrame(Connection* conn, std::vector<uint8_t> payload)
      SEEP_RUN_ON(sync::LoopThread);
  void OnInboundClosed(Connection* conn) SEEP_RUN_ON(sync::LoopThread);
  void DropFrames(VmId to, size_t n) SEEP_RUN_ON(sync::LoopThread);
  size_t TotalQueuedBytes() const SEEP_RUN_ON(sync::LoopThread);

  const VmId vm_;
  EndpointRegistry* const registry_;
  const WorkerOptions options_;

  MessageCallback on_message_
      SEEP_UNGUARDED("set before Start, immutable while the loop runs");
  PeerCallback on_peer_disconnect_
      SEEP_UNGUARDED("set before Start, immutable while the loop runs");
  DropCallback on_frames_dropped_
      SEEP_UNGUARDED("set before Start, immutable while the loop runs");

  EventLoop loop_ SEEP_UNGUARDED("internally synchronised; event_loop.h");
  std::thread thread_
      SEEP_UNGUARDED("owned exclusively by the harness thread (Start/Kill)");
  ScopedFd listener_
      SEEP_UNGUARDED("set in Start before the loop thread exists, read-only "
                     "after; reset in Kill after the join");
  uint16_t port_
      SEEP_UNGUARDED("set in Start before the loop thread exists") = 0;
  std::atomic<bool> running_{false};

  // Loop-thread state (Kill re-adopts the role after joining the loop).
  std::unordered_map<VmId, Link> links_ SEEP_GUARDED_BY(sync::LoopThread);
  std::vector<std::unique_ptr<Inbound>> inbound_
      SEEP_GUARDED_BY(sync::LoopThread);
  // Connections whose close callback fired mid-event: parked here and freed
  // by a posted task, after the loop unwinds out of their callbacks.
  std::vector<std::unique_ptr<Connection>> graveyard_
      SEEP_GUARDED_BY(sync::LoopThread);

  // Approximate outbound backlog for pressure reporting: posted-but-not-yet-
  // processed bytes plus a loop-thread-maintained snapshot of queued bytes.
  std::atomic<size_t> posted_bytes_{0};
  std::atomic<size_t> queued_snapshot_{0};

  Stats stats_ SEEP_UNGUARDED("all members are monotonic atomics");
};

}  // namespace seep::net

#endif  // SEEP_NET_WORKER_H_
