#ifndef SEEP_NET_SOCKET_H_
#define SEEP_NET_SOCKET_H_

#include <cstdint>
#include <utility>

#include "common/result.h"

namespace seep::net {

/// Owning wrapper for a file descriptor: closes on destruction, moves by
/// stealing. Everything in net/ that holds a kernel object holds it through
/// this, so an early return can never leak an fd.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// A 127.0.0.1 TCP listener bound to `port` (0 = kernel-assigned ephemeral
/// port), non-blocking, listening. The worker harness binds every endpoint
/// to loopback so tests and benches exercise the real stack without any
/// external reachability.
[[nodiscard]] Result<ScopedFd> ListenLoopback(uint16_t port);

/// The local port a bound socket ended up on (after port-0 bind).
[[nodiscard]] Result<uint16_t> LocalPort(int fd);

/// Starts a non-blocking connect to 127.0.0.1:`port`. The returned socket is
/// usually still connecting: the caller waits for writability and checks
/// SO_ERROR (Connection does both).
[[nodiscard]] Result<ScopedFd> ConnectLoopback(uint16_t port);

/// Accepts one pending connection as a non-blocking socket. Returns an fd of
/// -1 (not an error) when the accept queue is empty.
[[nodiscard]] Result<ScopedFd> AcceptConnection(int listen_fd);

/// Pending SO_ERROR on a socket (0 = none); consumes the error.
int SocketError(int fd);

}  // namespace seep::net

#endif  // SEEP_NET_SOCKET_H_
