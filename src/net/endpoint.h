#ifndef SEEP_NET_ENDPOINT_H_
#define SEEP_NET_ENDPOINT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/ids.h"
#include "common/sync.h"

namespace seep::net {

/// Maps VmId to the loopback TCP port its worker listens on. Workers consult
/// the registry lazily on every (re)connect attempt, so a worker can start
/// before its peers have registered — the connect fails, backoff retries,
/// and the link comes up once the peer appears. Thread-safe: worker threads
/// read it while the harness thread registers/unregisters.
class EndpointRegistry {
 public:
  void Register(VmId vm, uint16_t port) SEEP_EXCLUDES(mu_) {
    sync::MutexLock lock(&mu_);
    ports_[vm] = port;
  }

  void Unregister(VmId vm) SEEP_EXCLUDES(mu_) {
    sync::MutexLock lock(&mu_);
    ports_.erase(vm);
  }

  std::optional<uint16_t> Lookup(VmId vm) const SEEP_EXCLUDES(mu_) {
    sync::MutexLock lock(&mu_);
    auto it = ports_.find(vm);
    if (it == ports_.end()) return std::nullopt;
    return it->second;
  }

 private:
  mutable sync::Mutex mu_;
  std::unordered_map<VmId, uint16_t> ports_ SEEP_GUARDED_BY(mu_);
};

}  // namespace seep::net

#endif  // SEEP_NET_ENDPOINT_H_
