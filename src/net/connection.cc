#include "net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace seep::net {

namespace {
// Per-read buffer; a busy stream just loops until EAGAIN.
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

Connection::Connection(EventLoop* loop, ScopedFd fd, bool connecting,
                       QueueLimits limits, uint64_t max_frame_payload)
    : loop_(loop),
      fd_(std::move(fd)),
      state_(connecting ? State::kConnecting : State::kConnected),
      limits_(limits),
      reader_(max_frame_payload) {
  // Constructed via make_unique, which the static analysis cannot see
  // through; the runtime assert re-establishes the LoopThread capability.
  SEEP_ASSERT_RUN_ON(sync::LoopThread);
  ever_connected_ = !connecting;
  // While connecting we wait for writability (connect completion); once
  // connected we always want readability and add writability on demand.
  want_write_ = connecting;
  loop_->AddFd(fd_.get(), EPOLLIN | (want_write_ ? EPOLLOUT : 0u),
               [this](uint32_t events) {
                 SEEP_ASSERT_RUN_ON(sync::LoopThread);
                 OnEvents(events);
               });
}

Connection::~Connection() {
  // Destroyed through unique_ptr (opaque to the static analysis); assert
  // the affinity at runtime instead of annotating the destructor.
  SEEP_ASSERT_RUN_ON(sync::LoopThread);
  Close();
}

SendStatus Connection::Send(std::vector<uint8_t> frame) {
  if (state_ == State::kClosed) return SendStatus::kClosed;
  if (queued_bytes_ + frame.size() > limits_.max_bytes) {
    ++frames_dropped_;
    return SendStatus::kOverflow;
  }
  queued_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
  if (state_ == State::kConnected) {
    FlushWrites();
    if (state_ == State::kClosed) return SendStatus::kClosed;
  }
  return queued_bytes_ > limits_.pressure_bytes ? SendStatus::kPressured
                                                : SendStatus::kOk;
}

void Connection::OnEvents(uint32_t events) {
  if (state_ == State::kConnecting && (events & (EPOLLOUT | EPOLLERR))) {
    HandleConnectComplete();
    if (state_ == State::kClosed) return;
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    // Read first: the peer may have written data before dying, and EPOLLHUP
    // with pending bytes is a half-close, not necessarily an error.
    HandleReadable();
    if (state_ != State::kClosed) Close();
    return;
  }
  if (events & EPOLLIN) {
    HandleReadable();
    if (state_ == State::kClosed) return;
  }
  if ((events & EPOLLOUT) && state_ == State::kConnected) FlushWrites();
}

void Connection::HandleConnectComplete() {
  if (SocketError(fd_.get()) != 0) {
    Close();
    return;
  }
  state_ = State::kConnected;
  ever_connected_ = true;
  FlushWrites();
  if (state_ != State::kClosed) UpdateInterest();
}

void Connection::HandleReadable() {
  uint8_t buf[kReadChunk];
  while (true) {
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      std::vector<std::vector<uint8_t>> payloads;
      const Status st =
          reader_.Consume(buf, static_cast<size_t>(n), &payloads);
      for (auto& payload : payloads) {
        if (on_frame_) on_frame_(this, std::move(payload));
        if (state_ == State::kClosed) return;
      }
      if (!st.ok()) {
        // A corrupt stream cannot be resynchronised; drop the link and let
        // the recovery protocol replay whatever was in flight.
        Close();
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly EOF from the peer
      Close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    Close();
    return;
  }
}

void Connection::FlushWrites() {
  while (!write_queue_.empty()) {
    const std::vector<uint8_t>& front = write_queue_.front();
    const ssize_t n = ::send(fd_.get(), front.data() + write_offset_,
                             front.size() - write_offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Close();
      return;
    }
    write_offset_ += static_cast<size_t>(n);
    queued_bytes_ -= static_cast<size_t>(n);
    if (write_offset_ == front.size()) {
      write_queue_.pop_front();
      write_offset_ = 0;
    }
  }
  UpdateInterest();
}

void Connection::UpdateInterest() {
  const bool need_write =
      state_ == State::kConnecting || !write_queue_.empty();
  if (need_write == want_write_) return;
  want_write_ = need_write;
  loop_->UpdateFd(fd_.get(), EPOLLIN | (need_write ? EPOLLOUT : 0u));
}

void Connection::Close() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  loop_->RemoveFd(fd_.get());
  fd_.Reset();
  frames_dropped_ += write_queue_.size();
  write_queue_.clear();
  queued_bytes_ = 0;
  if (on_close_) {
    // The callback may delete this object, so detach it first.
    CloseCallback cb = std::move(on_close_);
    on_close_ = nullptr;
    cb(this);
  }
}

}  // namespace seep::net
