#include "net/local_cluster.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace seep::net {

[[nodiscard]]
Status LocalCluster::StartWorker(VmId vm, Worker::MessageCallback on_message,
                                 Worker::PeerCallback on_peer_disconnect,
                                 Worker::DropCallback on_frames_dropped) {
  auto worker = std::make_unique<Worker>(vm, &registry_, options_);
  worker->set_on_message(std::move(on_message));
  worker->set_on_peer_disconnect(std::move(on_peer_disconnect));
  worker->set_on_frames_dropped(std::move(on_frames_dropped));
  SEEP_RETURN_IF_ERROR(worker->Start());
  sync::MutexLock lock(&mu_);
  workers_[vm] = std::move(worker);
  return Status::OK();
}

void LocalCluster::KillWorker(VmId vm) {
  std::unique_ptr<Worker> worker;
  {
    sync::MutexLock lock(&mu_);
    auto it = workers_.find(vm);
    if (it == workers_.end()) return;
    worker = std::move(it->second);
    workers_.erase(it);
  }
  // Kill outside the lock: it joins the worker thread, whose callbacks may
  // be blocked in code that queries this cluster.
  worker->Kill();
  sync::MutexLock lock(&mu_);
  Accumulate(*worker);
}

SendStatus LocalCluster::Post(VmId from, VmId to, const Message& msg) {
  sync::MutexLock lock(&mu_);
  auto it = workers_.find(from);
  if (it == workers_.end()) return SendStatus::kClosed;
  return it->second->Post(to, msg);
}

bool LocalCluster::IsAttached(VmId vm) const {
  sync::MutexLock lock(&mu_);
  return workers_.count(vm) > 0;
}

void LocalCluster::Accumulate(const Worker& worker) const {
  const Worker::Stats& s = worker.stats();
  frozen_.messages_delivered += s.messages_delivered.load();
  frozen_.frames_dropped += s.frames_dropped.load();
  frozen_.peer_disconnects += s.peer_disconnects.load();
}

LocalCluster::Stats LocalCluster::TotalStats() const {
  sync::MutexLock lock(&mu_);
  Stats total = frozen_;
  for (const auto& [vm, worker] : workers_) {
    const Worker::Stats& s = worker->stats();
    total.messages_delivered += s.messages_delivered.load();
    total.frames_dropped += s.frames_dropped.load();
    total.peer_disconnects += s.peer_disconnects.load();
  }
  return total;
}

void LocalCluster::Shutdown() {
  std::vector<std::unique_ptr<Worker>> doomed;
  {
    sync::MutexLock lock(&mu_);
    for (auto& [vm, worker] : workers_) doomed.push_back(std::move(worker));
    workers_.clear();
  }
  for (auto& worker : doomed) worker->Kill();
  sync::MutexLock lock(&mu_);
  for (const auto& worker : doomed) Accumulate(*worker);
}

}  // namespace seep::net
