#ifndef SEEP_NET_WIRE_H_
#define SEEP_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "serde/frame.h"

namespace seep::net {

/// Kinds of messages on a worker-to-worker TCP stream. The body of each is
/// opaque to net/: the transport layer above encodes tuple batches and
/// checkpoints with the core codecs, net/ only moves envelopes.
enum class MessageType : uint8_t {
  kHello = 1,       // first frame on every outbound link: identifies from_vm
  kBatch = 2,       // a tuple batch (data path)
  kCheckpoint = 3,  // a checkpoint backup (background path, carries trim ack)
  kStateShip = 4,   // bulk state shipping (scale out / recovery)
  kControl = 5,     // free-form control messages
  kCheckpointChunk = 6,  // one chunk of a serialized checkpoint frame
};

/// One message between two VM workers: a typed envelope plus an opaque body.
/// `ship_id` is a sender-side completion token for kStateShip (the sender
/// keeps the delivery callback; the id travels with the bytes).
struct Message {
  MessageType type = MessageType::kControl;
  VmId from_vm = kInvalidVm;
  VmId to_vm = kInvalidVm;
  uint64_t ship_id = 0;
  std::vector<uint8_t> body;
};

/// Encodes `msg` into a crc32c frame ready for the wire: the serde
/// [length | crc | payload] frame around the encoded envelope. The wire
/// stream is simply a concatenation of such frames.
std::vector<uint8_t> EncodeMessage(const Message& msg);

/// Decodes the payload of one frame (already CRC-verified by FrameReader /
/// UnframePayload) back into a Message.
[[nodiscard]]
Result<Message> DecodeMessage(const std::vector<uint8_t>& payload);

/// Incremental parser for a stream of frames. Feed it raw bytes as they
/// arrive from a socket; it validates each header against `max_payload`
/// *before* buffering a frame's worth of bytes and each completed payload
/// against its crc32c, and hands back whole payloads. Any error is sticky:
/// a stream that lied about a length or failed a CRC is torn down by the
/// caller (the peer replays through the recovery protocol; there is no
/// resync inside a stream).
class FrameReader {
 public:
  explicit FrameReader(
      uint64_t max_payload = serde::kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Consumes `n` bytes, appending every completed frame payload to `out`.
  [[nodiscard]] Status Consume(const uint8_t* data, size_t n,
                 std::vector<std::vector<uint8_t>>* out);

  /// Bytes buffered waiting for the rest of a frame.
  size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  uint64_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // start of the unparsed region within buf_
};

}  // namespace seep::net

#endif  // SEEP_NET_WIRE_H_
