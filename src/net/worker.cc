#include "net/worker.h"

#include <sys/epoll.h>

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace seep::net {

Worker::Worker(VmId vm, EndpointRegistry* registry, WorkerOptions options)
    : vm_(vm), registry_(registry), options_(options) {}

Worker::~Worker() { Kill(); }

[[nodiscard]] Status Worker::Start() {
  SEEP_ASSIGN_OR_RETURN(listener_, ListenLoopback(0));
  SEEP_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  registry_->Register(vm_, port_);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] {
    {
      // This thread is the loop thread from birth, so it may adopt the role
      // before Run (which re-adopts for its own duration) to register the
      // listener.
      sync::ScopedThreadRole role(sync::LoopThread);
      loop_.AddFd(listener_.get(), EPOLLIN, [this](uint32_t) {
        SEEP_ASSERT_RUN_ON(sync::LoopThread);
        OnListenerReadable();
      });
    }
    loop_.Run();
  });
  return Status::OK();
}

void Worker::Kill() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unregister first so peers' reconnect attempts stop finding us, then
  // stop the loop. After the join no thread touches loop state, so tearing
  // the connections down from this thread is safe; detaching their close
  // callbacks keeps teardown from firing disconnect notifications for a
  // death we initiated ourselves.
  registry_->Unregister(vm_);
  loop_.Stop();
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone; this thread is now the sole owner of the
  // loop-confined state, so it adopts the role for the teardown.
  sync::ScopedThreadRole role(sync::LoopThread);
  for (auto& [to, link] : links_) {
    if (link.conn) link.conn->set_on_close(nullptr);
  }
  for (auto& in : inbound_) {
    if (in->conn) in->conn->set_on_close(nullptr);
  }
  links_.clear();
  inbound_.clear();
  graveyard_.clear();
  listener_.Reset();
}

SendStatus Worker::Post(VmId to, const Message& msg) {
  if (!running_.load(std::memory_order_acquire)) return SendStatus::kClosed;
  std::vector<uint8_t> frame = EncodeMessage(msg);
  const size_t frame_bytes = frame.size();
  const size_t backlog =
      posted_bytes_.fetch_add(frame_bytes, std::memory_order_relaxed) +
      frame_bytes + queued_snapshot_.load(std::memory_order_relaxed);
  if (backlog > options_.queue_limits.max_bytes) {
    posted_bytes_.fetch_sub(frame_bytes, std::memory_order_relaxed);
    stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
    return SendStatus::kOverflow;
  }
  loop_.Post([this, to, frame = std::move(frame), frame_bytes]() mutable {
    SEEP_ASSERT_RUN_ON(sync::LoopThread);
    posted_bytes_.fetch_sub(frame_bytes, std::memory_order_relaxed);
    SendOnLink(to, std::move(frame));
    queued_snapshot_.store(TotalQueuedBytes(), std::memory_order_relaxed);
  });
  return backlog > options_.queue_limits.pressure_bytes
             ? SendStatus::kPressured
             : SendStatus::kOk;
}

size_t Worker::TotalQueuedBytes() const {
  size_t total = 0;
  for (const auto& [to, link] : links_) {
    total += link.pending_bytes;
    if (link.conn) total += link.conn->queued_bytes();
  }
  return total;
}

void Worker::DropFrames(VmId to, size_t n) {
  if (n == 0) return;
  stats_.frames_dropped.fetch_add(n, std::memory_order_relaxed);
  if (on_frames_dropped_) on_frames_dropped_(to, n);
}

void Worker::SendOnLink(VmId to, std::vector<uint8_t> frame) {
  Link& link = links_[to];
  if (!link.conn && !link.retry_scheduled) TryConnect(to);
  if (link.conn) {
    const SendStatus st = link.conn->Send(std::move(frame));
    if (st == SendStatus::kOverflow) DropFrames(to, 1);
    // kClosed: the close callback already rerouted state; the frame is part
    // of that link's loss, which replay covers.
    return;
  }
  // Link down, retry pending: hold the frame, bounded like a live queue.
  if (link.pending_bytes + frame.size() >
      options_.queue_limits.max_bytes) {
    DropFrames(to, 1);
    return;
  }
  link.pending_bytes += frame.size();
  link.pending.push_back(std::move(frame));
}

void Worker::TryConnect(VmId to) {
  Link& link = links_[to];
  const std::optional<uint16_t> port = registry_->Lookup(to);
  if (!port.has_value()) {
    // Peer not (yet, or no longer) registered; retry on the same backoff
    // schedule as a refused connect.
    ++link.failures;
    ScheduleRetry(to);
    return;
  }
  auto fd = ConnectLoopback(*port);
  if (!fd.ok()) {
    ++link.failures;
    ScheduleRetry(to);
    return;
  }
  stats_.reconnect_attempts.fetch_add(1, std::memory_order_relaxed);
  link.conn = std::make_unique<Connection>(
      &loop_, std::move(fd).value(), /*connecting=*/true,
      options_.queue_limits, options_.max_frame_payload);
  link.conn->set_on_close([this, to](Connection* conn) {
    SEEP_ASSERT_RUN_ON(sync::LoopThread);
    OnOutboundClosed(to, conn);
  });
  // First frame on every outbound link: who we are, so the receiver can
  // attribute a later disconnect of this link to our VmId.
  Message hello;
  hello.type = MessageType::kHello;
  hello.from_vm = vm_;
  hello.to_vm = to;
  // The connection was created above in the connecting state, so the
  // hello only queues: it cannot overflow (empty queue, tiny frame) and
  // cannot observe a close (no flush happens before connect completes).
  // Losing it silently would strip VmId attribution from every later
  // disconnect on this link, so enforce rather than assume.
  const SendStatus hello_sent = link.conn->Send(EncodeMessage(hello));
  SEEP_CHECK(hello_sent != SendStatus::kOverflow &&
             hello_sent != SendStatus::kClosed);
  // A successful (eventual) connect flushes in order: hello, then any
  // frames queued while the link was down.
  while (!link.pending.empty()) {
    std::vector<uint8_t> frame = std::move(link.pending.front());
    link.pending.pop_front();
    link.pending_bytes -= frame.size();
    if (link.conn->Send(std::move(frame)) == SendStatus::kOverflow) {
      DropFrames(to, 1);
    }
    if (!link.conn) return;  // close fired re-entrantly
  }
}

void Worker::OnOutboundClosed(VmId to, Connection* conn) {
  auto it = links_.find(to);
  if (it == links_.end() || it->second.conn.get() != conn) return;
  Link& link = it->second;
  DropFrames(to, conn->frames_dropped());
  stats_.peer_disconnects.fetch_add(1, std::memory_order_relaxed);
  // Defer destruction: this callback runs inside the connection's own event
  // handling, and the loop drains posted tasks only after unwinding it.
  graveyard_.push_back(std::move(link.conn));
  loop_.Post([this] {
    SEEP_ASSERT_RUN_ON(sync::LoopThread);
    graveyard_.clear();
  });
  // A link that had come up earns a fresh backoff schedule; one that never
  // connected keeps climbing towards the cap.
  link.failures = conn->ever_connected() ? 0 : link.failures + 1;
  ScheduleRetry(to);
  if (on_peer_disconnect_) on_peer_disconnect_(to);
}

void Worker::ScheduleRetry(VmId to) {
  Link& link = links_[to];
  if (link.retry_scheduled) return;
  link.retry_scheduled = true;
  const uint32_t shift = std::min<uint32_t>(link.failures, 16);
  const auto delay = std::min(options_.backoff_initial * (1u << shift),
                              options_.backoff_cap);
  loop_.AddTimer(delay, [this, to] {
    SEEP_ASSERT_RUN_ON(sync::LoopThread);
    auto it = links_.find(to);
    if (it == links_.end()) return;
    it->second.retry_scheduled = false;
    if (!it->second.conn) TryConnect(to);
  });
}

void Worker::OnListenerReadable() {
  while (true) {
    auto fd = AcceptConnection(listener_.get());
    if (!fd.ok()) return;
    if (!fd.value().valid()) return;  // accept queue drained
    auto in = std::make_unique<Inbound>();
    in->conn = std::make_unique<Connection>(
        &loop_, std::move(fd).value(), /*connecting=*/false,
        options_.queue_limits, options_.max_frame_payload);
    in->conn->set_on_frame(
        [this](Connection* conn, std::vector<uint8_t> payload) {
          SEEP_ASSERT_RUN_ON(sync::LoopThread);
          OnInboundFrame(conn, std::move(payload));
        });
    in->conn->set_on_close([this](Connection* conn) {
      SEEP_ASSERT_RUN_ON(sync::LoopThread);
      OnInboundClosed(conn);
    });
    inbound_.push_back(std::move(in));
  }
}

void Worker::OnInboundFrame(Connection* conn,
                            std::vector<uint8_t> payload) {
  auto decoded = DecodeMessage(payload);
  if (!decoded.ok()) {
    // Undecodable envelope after a valid CRC: protocol bug or version skew.
    // Treat the stream as poisoned, same as corruption.
    conn->Close();
    return;
  }
  Message msg = std::move(decoded).value();
  if (msg.type == MessageType::kHello) {
    for (auto& in : inbound_) {
      if (in->conn.get() == conn) {
        in->peer = msg.from_vm;
        break;
      }
    }
    return;
  }
  stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
  if (on_message_) on_message_(std::move(msg));
}

void Worker::OnInboundClosed(Connection* conn) {
  for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
    if ((*it)->conn.get() != conn) continue;
    const VmId peer = (*it)->peer;
    stats_.peer_disconnects.fetch_add(1, std::memory_order_relaxed);
    // Deferred destruction, as for outbound links.
    graveyard_.push_back(std::move((*it)->conn));
    loop_.Post([this] {
      SEEP_ASSERT_RUN_ON(sync::LoopThread);
      graveyard_.clear();
    });
    inbound_.erase(it);
    if (peer != kInvalidVm && on_peer_disconnect_) on_peer_disconnect_(peer);
    return;
  }
}

}  // namespace seep::net
