#ifndef SEEP_CORE_KEY_RANGE_H_
#define SEEP_CORE_KEY_RANGE_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/macros.h"

namespace seep::core {

/// A closed interval [lo, hi] of the hashed key space. Routing state maps
/// key ranges to partitioned operator instances (paper §3.1: routing state
/// ρo maps key intervals to downstream partitions). Closed intervals let the
/// full 64-bit space be representable.
struct KeyRange {
  KeyHash lo = 0;
  KeyHash hi = UINT64_MAX;

  static KeyRange Full() { return KeyRange{0, UINT64_MAX}; }

  bool Contains(KeyHash k) const { return lo <= k && k <= hi; }
  bool operator==(const KeyRange& other) const = default;

  /// Number of keys covered; saturates at UINT64_MAX for the full range.
  uint64_t Width() const {
    const uint64_t w = hi - lo;
    return w == UINT64_MAX ? UINT64_MAX : w + 1;
  }

  /// Splits this range into `n` contiguous, non-overlapping subranges that
  /// exactly cover it. Hash partitioning assumes uniform keys, so even splits
  /// balance load (paper Algorithm 2: "the key space can be distributed
  /// evenly using hash partitioning").
  std::vector<KeyRange> SplitEven(uint32_t n) const;

  /// Merges two adjacent ranges (used by scale-in). Requires a.hi + 1 == b.lo.
  static KeyRange MergeAdjacent(const KeyRange& a, const KeyRange& b);
};

}  // namespace seep::core

#endif  // SEEP_CORE_KEY_RANGE_H_
