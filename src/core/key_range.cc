#include "core/key_range.h"

namespace seep::core {

std::vector<KeyRange> KeyRange::SplitEven(uint32_t n) const {
  SEEP_CHECK_GT(n, 0u);
  SEEP_CHECK_LE(lo, hi);
  std::vector<KeyRange> out;
  out.reserve(n);
  if (n == 1) {
    out.push_back(*this);
    return out;
  }
  // Compute per-part width with rounding spread across the first parts, in
  // 128-bit arithmetic to handle the full 64-bit space.
  const unsigned __int128 total =
      static_cast<unsigned __int128>(hi) - lo + 1;
  unsigned __int128 start = lo;
  for (uint32_t i = 0; i < n; ++i) {
    unsigned __int128 part = total / n + (i < total % n ? 1 : 0);
    if (part == 0) {
      // More parts than keys: give remaining parts empty-equivalent single
      // keys clamped at hi. Callers never split tiny ranges in practice.
      out.push_back(KeyRange{static_cast<KeyHash>(hi), hi});
      continue;
    }
    const KeyHash part_lo = static_cast<KeyHash>(start);
    const KeyHash part_hi = static_cast<KeyHash>(start + part - 1);
    out.push_back(KeyRange{part_lo, part_hi});
    start += part;
  }
  out.back().hi = hi;
  return out;
}

KeyRange KeyRange::MergeAdjacent(const KeyRange& a, const KeyRange& b) {
  SEEP_CHECK(a.hi != UINT64_MAX && a.hi + 1 == b.lo);
  return KeyRange{a.lo, b.hi};
}

}  // namespace seep::core
