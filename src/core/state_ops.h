#ifndef SEEP_CORE_STATE_OPS_H_
#define SEEP_CORE_STATE_OPS_H_

#include <vector>

#include "common/result.h"
#include "core/state.h"

namespace seep::core {

/// Selects which upstream instance stores operator `op`'s checkpoints:
/// Algorithm 1 line 2, i = hash(id(o)) mod |up(o)|. Spreading backups by
/// hash balances backup load across partitioned upstream operators.
InstanceId ChooseBackupInstance(InstanceId instance,
                                const std::vector<InstanceId>& upstream);

/// Algorithm 2, partition-processing-state: splits a checkpoint into `pi`
/// partition checkpoints. The checkpoint's key range is split evenly; each
/// partition receives the processing-state entries in its subrange and a
/// copy of the input positions τ; the buffer state β is assigned to the
/// first partition only (Algorithm 2 line 7).
///
/// Returns InvalidArgument when pi == 0 or the range is too narrow.
[[nodiscard]] Result<std::vector<StateCheckpoint>> PartitionCheckpoint(
    const StateCheckpoint& checkpoint, uint32_t pi);

/// Splits a checkpoint along explicit key ranges (used when the caller wants
/// distribution-aware splits rather than even hash splits; paper Algorithm 2:
/// "the key distribution can be used to guide the split"). Ranges must be
/// disjoint and cover checkpoint.key_range.
[[nodiscard]] Result<std::vector<StateCheckpoint>> PartitionCheckpointByRanges(
    const StateCheckpoint& checkpoint, const std::vector<KeyRange>& ranges);

/// Distribution-aware split (Algorithm 2: "the key distribution can be used
/// to guide the split"): cuts the checkpoint's key range at the quantiles of
/// its processing-state entry keys, so each partition receives roughly the
/// same number of state entries — a proxy for per-key load that beats even
/// hash splits when the populated key space is skewed. Falls back to an
/// even split when there are too few entries to estimate the distribution.
std::vector<KeyRange> BalancedSplitRanges(const StateCheckpoint& checkpoint,
                                          uint32_t pi);

/// Applies an incremental (delta) checkpoint onto a stored full checkpoint
/// in place: processing-state entries are replaced/inserted by key and
/// deleted keys removed via a linear two-pointer merge of the sorted base
/// and delta (O(base + delta) — no intermediate map, no full rebuild);
/// positions, clocks and sequence advance to the delta's; mirrored buffers
/// are trimmed to the delta's buffer_front and extended with the delta's
/// tuples. Fails (before any mutation) if `delta.base_seq` does not match
/// `base->seq` (a delta applied out of order) or `delta` is not a delta
/// checkpoint.
[[nodiscard]]
Status ApplyDelta(StateCheckpoint* base, const StateCheckpoint& delta);

/// Scale-in support (paper §3.3): merges checkpoints of partitions with
/// adjacent key ranges into one checkpoint covering their union. Requires a
/// quiesced capture (both partitions drained), so input positions combine by
/// upper bound. Checkpoints must be sorted by key range and adjacent.
[[nodiscard]] Result<StateCheckpoint> MergeCheckpoints(
    const std::vector<StateCheckpoint>& checkpoints);

}  // namespace seep::core

#endif  // SEEP_CORE_STATE_OPS_H_
