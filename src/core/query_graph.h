#ifndef SEEP_CORE_QUERY_GRAPH_H_
#define SEEP_CORE_QUERY_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/operator.h"

namespace seep::core {

/// Role of a vertex in the query graph. Sources and sinks are assumed not to
/// fail and are never scaled out (paper §2.2).
enum class VertexKind { kSource, kOperator, kSink };

/// A logical operator in the query graph q = (O, S) (paper §2.2).
struct OperatorSpec {
  OperatorId id = 0;
  std::string name;
  VertexKind kind = VertexKind::kOperator;
  bool stateful = false;

  // Exactly one of the factories is set, matching `kind`.
  OperatorFactory factory;
  SourceFactory source_factory;
  SinkFactory sink_factory;

  /// Per-tuple CPU cost on the reference core for sources/sinks
  /// (serialisation work); operators report their own cost via
  /// Operator::CostMicrosPerTuple.
  double endpoint_cost_us = 1.0;

  /// Whether the scaling policy may parallelise this operator.
  bool scalable = true;

  /// Number of parallel source instances to deploy (sources only; the
  /// paper's top-k workload uses 18 data sources).
  uint32_t source_parallelism = 1;
};

/// The logical, user-facing description of a streaming query: a DAG of
/// operator specs. The physical realisation (partitioned instances on VMs)
/// is the execution graph owned by the query manager.
class QueryGraph {
 public:
  /// Adds a source vertex. `cost_us` models per-tuple serialisation cost;
  /// `parallelism` is the number of source instances to deploy.
  OperatorId AddSource(std::string name, SourceFactory factory,
                       double cost_us = 1.0, uint32_t parallelism = 1);

  /// Adds a processing operator vertex.
  OperatorId AddOperator(std::string name, OperatorFactory factory,
                         bool stateful, bool scalable = true);

  /// Adds a sink vertex.
  OperatorId AddSink(std::string name, SinkFactory factory,
                     double cost_us = 1.0);

  /// Adds a stream s = (from, to). The order of Connect calls per `from`
  /// defines the emission port numbering seen by Collector::EmitTo.
  [[nodiscard]] Status Connect(OperatorId from, OperatorId to);

  /// Checks the graph is a DAG, every operator is reachable from a source,
  /// sources have no inputs, sinks no outputs.
  [[nodiscard]] Status Validate() const;

  const OperatorSpec* Get(OperatorId id) const;
  const std::vector<OperatorSpec>& operators() const { return operators_; }

  const std::vector<OperatorId>& Downstream(OperatorId id) const;
  const std::vector<OperatorId>& Upstream(OperatorId id) const;

  std::vector<OperatorId> Sources() const;
  std::vector<OperatorId> Sinks() const;

  /// Operators in a topological order (sources first). Requires Validate().
  std::vector<OperatorId> TopologicalOrder() const;

 private:
  OperatorId NextId() { return static_cast<OperatorId>(operators_.size()); }

  std::vector<OperatorSpec> operators_;
  std::map<OperatorId, std::vector<OperatorId>> downstream_;
  std::map<OperatorId, std::vector<OperatorId>> upstream_;
};

}  // namespace seep::core

#endif  // SEEP_CORE_QUERY_GRAPH_H_
