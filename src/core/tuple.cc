#include "core/tuple.h"

namespace seep::core {

namespace {
size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
size_t SignedVarintSize(int64_t v) {
  return VarintSize((static_cast<uint64_t>(v) << 1) ^
                    static_cast<uint64_t>(v >> 63));
}
}  // namespace

void Tuple::Encode(serde::Encoder* enc) const {
  enc->AppendVarintSigned64(timestamp);
  enc->AppendFixed64(key);
  enc->AppendFixed64(origin);
  enc->AppendVarintSigned64(event_time);
  for (int64_t v : ints) enc->AppendVarintSigned64(v);
  enc->AppendString(text);
  enc->AppendU8(latency_sample ? 1 : 0);
}

[[nodiscard]] Result<Tuple> Tuple::Decode(serde::Decoder* dec) {
  Tuple t;
  SEEP_ASSIGN_OR_RETURN(t.timestamp, dec->ReadVarintSigned64());
  SEEP_ASSIGN_OR_RETURN(t.key, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(t.origin, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(t.event_time, dec->ReadVarintSigned64());
  for (auto& v : t.ints) {
    SEEP_ASSIGN_OR_RETURN(v, dec->ReadVarintSigned64());
  }
  SEEP_ASSIGN_OR_RETURN(t.text, dec->ReadString());
  uint8_t latency_sample;
  SEEP_ASSIGN_OR_RETURN(latency_sample, dec->ReadU8());
  t.latency_sample = latency_sample != 0;
  return t;
}

size_t Tuple::SerializedSize() const {
  size_t n = SignedVarintSize(timestamp) + 8 + 8 + SignedVarintSize(event_time);
  for (int64_t v : ints) n += SignedVarintSize(v);
  n += VarintSize(text.size()) + text.size();
  return n + 1;  // + latency_sample flag
}

void TupleBatch::Encode(serde::Encoder* enc) const {
  enc->AppendFixed32(from);
  enc->AppendU8(replay ? 1 : 0);
  enc->AppendVarint64(fence_id);
  enc->AppendVarint64(tuples.size());
  for (const Tuple& t : tuples) t.Encode(enc);
}

[[nodiscard]] Result<TupleBatch> TupleBatch::Decode(serde::Decoder* dec) {
  TupleBatch batch;
  SEEP_ASSIGN_OR_RETURN(batch.from, dec->ReadFixed32());
  uint8_t replay;
  SEEP_ASSIGN_OR_RETURN(replay, dec->ReadU8());
  batch.replay = replay != 0;
  SEEP_ASSIGN_OR_RETURN(batch.fence_id, dec->ReadVarint64());
  uint64_t count;
  SEEP_ASSIGN_OR_RETURN(count, dec->ReadVarint64());
  // A tuple encodes to >= 19 bytes; a declared count beyond what the buffer
  // could possibly hold is corruption, caught before reserving memory.
  if (count > dec->remaining() / 19 + 1) {
    return Status::Corruption("batch tuple count exceeds buffer");
  }
  batch.tuples.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Tuple t;
    SEEP_ASSIGN_OR_RETURN(t, Tuple::Decode(dec));
    batch.tuples.push_back(std::move(t));
  }
  return batch;
}

size_t TupleBatch::SerializedSize() const {
  size_t n = 16;  // header: sender + count
  for (const Tuple& t : tuples) n += t.SerializedSize();
  return n;
}

}  // namespace seep::core
