#include "core/state.h"

#include <algorithm>

#include "serde/frame.h"

namespace seep::core {

// ---------------------------------------------------------------- Processing

ProcessingState ProcessingState::FilterByRange(const KeyRange& range) const {
  ProcessingState out;
  for (const Entry& e : entries_) {
    if (range.Contains(e.first)) out.Add(e.first, e.second);
  }
  return out;
}

void ProcessingState::MergeFrom(const ProcessingState& other) {
  for (const Entry& e : other.entries_) Add(e.first, e.second);
}

void ProcessingState::Encode(serde::Encoder* enc) const {
  enc->AppendVarint64(entries_.size());
  for (const Entry& e : entries_) {
    enc->AppendFixed64(e.first);
    enc->AppendString(e.second);
  }
}

Result<ProcessingState> ProcessingState::Decode(serde::Decoder* dec) {
  ProcessingState out;
  uint64_t n;
  SEEP_ASSIGN_OR_RETURN(n, dec->ReadVarint64());
  for (uint64_t i = 0; i < n; ++i) {
    KeyHash k;
    SEEP_ASSIGN_OR_RETURN(k, dec->ReadFixed64());
    std::string v;
    SEEP_ASSIGN_OR_RETURN(v, dec->ReadString());
    out.Add(k, std::move(v));
  }
  return out;
}

// ------------------------------------------------------------------ Positions

bool InputPositions::Advance(OriginId origin, int64_t timestamp) {
  auto [it, inserted] = positions_.try_emplace(origin, timestamp);
  if (inserted) return true;
  if (timestamp <= it->second) return false;
  it->second = timestamp;
  return true;
}

int64_t InputPositions::Get(OriginId origin) const {
  auto it = positions_.find(origin);
  return it == positions_.end() ? -1 : it->second;
}

void InputPositions::LowerBoundWith(const InputPositions& other) {
  for (const auto& [origin, ts] : other.positions_) {
    auto [it, inserted] = positions_.try_emplace(origin, ts);
    if (!inserted) it->second = std::min(it->second, ts);
  }
}

void InputPositions::UpperBoundWith(const InputPositions& other) {
  for (const auto& [origin, ts] : other.positions_) {
    auto [it, inserted] = positions_.try_emplace(origin, ts);
    if (!inserted) it->second = std::max(it->second, ts);
  }
}

void InputPositions::Encode(serde::Encoder* enc) const {
  enc->AppendVarint64(positions_.size());
  for (const auto& [origin, ts] : positions_) {
    enc->AppendFixed64(origin);
    enc->AppendVarintSigned64(ts);
  }
}

Result<InputPositions> InputPositions::Decode(serde::Decoder* dec) {
  InputPositions out;
  uint64_t n;
  SEEP_ASSIGN_OR_RETURN(n, dec->ReadVarint64());
  for (uint64_t i = 0; i < n; ++i) {
    OriginId origin;
    SEEP_ASSIGN_OR_RETURN(origin, dec->ReadFixed64());
    int64_t ts;
    SEEP_ASSIGN_OR_RETURN(ts, dec->ReadVarintSigned64());
    out.positions_[origin] = ts;
  }
  return out;
}

// -------------------------------------------------------------------- Buffer

void BufferState::Append(OperatorId downstream, Tuple t) {
  buffers_[downstream].push_back(std::move(t));
}

size_t BufferState::Trim(OperatorId downstream, int64_t up_to) {
  auto it = buffers_.find(downstream);
  if (it == buffers_.end()) return 0;
  auto& vec = it->second;
  // Output buffers are appended in timestamp order per origin; a single
  // instance's buffer holds only its own emissions, so a prefix erase by
  // timestamp is exact.
  auto keep_from = std::find_if(vec.begin(), vec.end(), [&](const Tuple& t) {
    return t.timestamp > up_to;
  });
  const size_t dropped = static_cast<size_t>(keep_from - vec.begin());
  vec.erase(vec.begin(), keep_from);
  return dropped;
}

size_t BufferState::TrimByEventTime(SimTime cutoff) {
  size_t dropped = 0;
  for (auto& [op, vec] : buffers_) {
    auto keep_from =
        std::find_if(vec.begin(), vec.end(), [&](const Tuple& t) {
          return t.event_time >= cutoff;
        });
    dropped += static_cast<size_t>(keep_from - vec.begin());
    vec.erase(vec.begin(), keep_from);
  }
  return dropped;
}

const std::vector<Tuple>* BufferState::Get(OperatorId downstream) const {
  auto it = buffers_.find(downstream);
  return it == buffers_.end() ? nullptr : &it->second;
}

size_t BufferState::TotalTuples() const {
  size_t n = 0;
  for (const auto& [op, vec] : buffers_) n += vec.size();
  return n;
}

size_t BufferState::ByteSize() const {
  size_t n = 0;
  for (const auto& [op, vec] : buffers_) {
    for (const Tuple& t : vec) n += t.SerializedSize();
  }
  return n;
}

void BufferState::Encode(serde::Encoder* enc) const {
  enc->AppendVarint64(buffers_.size());
  for (const auto& [op, vec] : buffers_) {
    enc->AppendFixed32(op);
    enc->AppendVarint64(vec.size());
    for (const Tuple& t : vec) t.Encode(enc);
  }
}

Result<BufferState> BufferState::Decode(serde::Decoder* dec) {
  BufferState out;
  uint64_t n_ops;
  SEEP_ASSIGN_OR_RETURN(n_ops, dec->ReadVarint64());
  for (uint64_t i = 0; i < n_ops; ++i) {
    uint32_t op;
    SEEP_ASSIGN_OR_RETURN(op, dec->ReadFixed32());
    uint64_t n_tuples;
    SEEP_ASSIGN_OR_RETURN(n_tuples, dec->ReadVarint64());
    auto& vec = out.buffers_[op];
    vec.reserve(n_tuples);
    for (uint64_t j = 0; j < n_tuples; ++j) {
      Tuple t;
      SEEP_ASSIGN_OR_RETURN(t, Tuple::Decode(dec));
      vec.push_back(std::move(t));
    }
  }
  return out;
}

// ------------------------------------------------------------------- Routing

void RoutingState::SetRoutes(OperatorId downstream,
                             std::vector<Route> routes) {
  table_[downstream] = std::move(routes);
}

InstanceId RoutingState::RouteKey(OperatorId downstream, KeyHash key) const {
  auto it = table_.find(downstream);
  if (it == table_.end()) return kInvalidInstance;
  for (const Route& r : it->second) {
    if (r.range.Contains(key)) return r.instance;
  }
  return kInvalidInstance;
}

const std::vector<RoutingState::Route>* RoutingState::GetRoutes(
    OperatorId downstream) const {
  auto it = table_.find(downstream);
  return it == table_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------- Checkpoint

size_t StateCheckpoint::ByteSize() const {
  return 64 + processing.ByteSize() + buffer.ByteSize() +
         positions.positions().size() * 16 + deleted_keys.size() * 8 +
         buffer_front.size() * 12;
}

void StateCheckpoint::Encode(serde::Encoder* enc) const {
  enc->AppendFixed32(op);
  enc->AppendFixed32(instance);
  enc->AppendFixed64(origin);
  enc->AppendFixed64(key_range.lo);
  enc->AppendFixed64(key_range.hi);
  enc->AppendVarintSigned64(out_clock);
  enc->AppendVarint64(seq);
  enc->AppendVarintSigned64(taken_at);
  positions.Encode(enc);
  processing.Encode(enc);
  buffer.Encode(enc);
  enc->AppendU8(is_delta ? 1 : 0);
  enc->AppendVarint64(base_seq);
  enc->AppendVarint64(deleted_keys.size());
  for (KeyHash k : deleted_keys) enc->AppendFixed64(k);
  enc->AppendVarint64(buffer_front.size());
  for (const auto& [op_id, front] : buffer_front) {
    enc->AppendFixed32(op_id);
    enc->AppendVarintSigned64(front);
  }
}

Result<StateCheckpoint> StateCheckpoint::Decode(serde::Decoder* dec) {
  StateCheckpoint c;
  SEEP_ASSIGN_OR_RETURN(c.op, dec->ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(c.instance, dec->ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(c.origin, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(c.key_range.lo, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(c.key_range.hi, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(c.out_clock, dec->ReadVarintSigned64());
  SEEP_ASSIGN_OR_RETURN(c.seq, dec->ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(c.taken_at, dec->ReadVarintSigned64());
  SEEP_ASSIGN_OR_RETURN(c.positions, InputPositions::Decode(dec));
  SEEP_ASSIGN_OR_RETURN(c.processing, ProcessingState::Decode(dec));
  SEEP_ASSIGN_OR_RETURN(c.buffer, BufferState::Decode(dec));
  uint8_t is_delta;
  SEEP_ASSIGN_OR_RETURN(is_delta, dec->ReadU8());
  c.is_delta = is_delta != 0;
  SEEP_ASSIGN_OR_RETURN(c.base_seq, dec->ReadVarint64());
  uint64_t n_deleted;
  SEEP_ASSIGN_OR_RETURN(n_deleted, dec->ReadVarint64());
  for (uint64_t i = 0; i < n_deleted; ++i) {
    KeyHash k;
    SEEP_ASSIGN_OR_RETURN(k, dec->ReadFixed64());
    c.deleted_keys.push_back(k);
  }
  uint64_t n_fronts;
  SEEP_ASSIGN_OR_RETURN(n_fronts, dec->ReadVarint64());
  for (uint64_t i = 0; i < n_fronts; ++i) {
    uint32_t op_id;
    SEEP_ASSIGN_OR_RETURN(op_id, dec->ReadFixed32());
    int64_t front;
    SEEP_ASSIGN_OR_RETURN(front, dec->ReadVarintSigned64());
    c.buffer_front[op_id] = front;
  }
  return c;
}

std::vector<uint8_t> StateCheckpoint::Serialize() const {
  serde::Encoder enc;
  Encode(&enc);
  return serde::FramePayload(enc.buffer());
}

Result<StateCheckpoint> StateCheckpoint::Deserialize(
    const std::vector<uint8_t>& raw) {
  auto payload = serde::UnframePayload(raw);
  if (!payload.ok()) return payload.status();
  serde::Decoder dec(payload.value());
  return Decode(&dec);
}

}  // namespace seep::core
