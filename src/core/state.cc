#include "core/state.h"

#include <algorithm>
#include <cstring>

#include "serde/frame.h"

namespace seep::core {

// ---------------------------------------------------------------- Processing

void ProcessingState::EnsureSorted() const {
  if (sorted_) return;
  // Stable so entries with colliding key hashes keep a deterministic
  // (insertion) order — Encode output must be canonical.
  std::stable_sort(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.first < b.first; });
  sorted_ = true;
}

namespace {

// Binary-search helpers over the sorted entry vector.
std::vector<ProcessingState::Entry>::const_iterator LowerBoundKey(
    const std::vector<ProcessingState::Entry>& entries, KeyHash key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const ProcessingState::Entry& e, KeyHash k) { return e.first < k; });
}

std::vector<ProcessingState::Entry>::const_iterator UpperBoundKey(
    const std::vector<ProcessingState::Entry>& entries, KeyHash key) {
  return std::upper_bound(
      entries.begin(), entries.end(), key,
      [](KeyHash k, const ProcessingState::Entry& e) { return k < e.first; });
}

}  // namespace

ProcessingState ProcessingState::FilterByRange(const KeyRange& range) const {
  SEEP_DCHECK_LE(range.lo, range.hi);
  EnsureSorted();
  const auto first = LowerBoundKey(entries_, range.lo);
  const auto last = UpperBoundKey(entries_, range.hi);
  ProcessingState out;
  out.Reserve(static_cast<size_t>(last - first));
  for (auto it = first; it != last; ++it) out.Add(it->first, it->second);
  return out;
}

void ProcessingState::MergeFrom(const ProcessingState& other) {
  if (other.entries_.empty()) return;
  EnsureSorted();
  other.EnsureSorted();
  // Scale-in merges adjacent key ranges, so one side usually follows the
  // other entirely: a straight append keeps the result sorted.
  if (entries_.empty() ||
      entries_.back().first <= other.entries_.front().first) {
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
    bytes_ += other.bytes_;
    return;
  }
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::merge(std::make_move_iterator(entries_.begin()),
             std::make_move_iterator(entries_.end()), other.entries_.begin(),
             other.entries_.end(), std::back_inserter(merged),
             [](const Entry& a, const Entry& b) { return a.first < b.first; });
  entries_ = std::move(merged);
  bytes_ += other.bytes_;
}

void ProcessingState::ApplyDelta(const ProcessingState& updated,
                                 const std::vector<KeyHash>& deleted) {
  EnsureSorted();
  updated.EnsureSorted();
  std::vector<KeyHash> dead(deleted);
  std::sort(dead.begin(), dead.end());
  const auto is_dead = [&dead](KeyHash key) {
    return std::binary_search(dead.begin(), dead.end(), key);
  };

  std::vector<Entry> merged;
  merged.reserve(entries_.size() + updated.entries_.size());
  size_t bytes = 0;
  const auto push = [&](Entry e) {
    bytes += sizeof(KeyHash) + e.second.size();
    merged.push_back(std::move(e));
  };

  size_t i = 0, j = 0;
  const auto& upd = updated.entries_;
  while (i < entries_.size() || j < upd.size()) {
    // For one key, the delta's (last) entry supersedes the base's; a
    // deletion supersedes both.
    if (j == upd.size() ||
        (i < entries_.size() && entries_[i].first < upd[j].first)) {
      if (!is_dead(entries_[i].first)) push(std::move(entries_[i]));
      ++i;
      continue;
    }
    const KeyHash key = upd[j].first;
    while (j + 1 < upd.size() && upd[j + 1].first == key) ++j;  // last wins
    if (!is_dead(key)) push(upd[j]);
    ++j;
    while (i < entries_.size() && entries_[i].first == key) ++i;  // replaced
  }

  entries_ = std::move(merged);
  bytes_ = bytes;
  sorted_ = true;
}

size_t ProcessingState::EncodedSize() const {
  size_t total = serde::Encoder::VarintSize(entries_.size()) + bytes_;
  for (const Entry& e : entries_) {
    total += serde::Encoder::VarintSize(e.second.size());
  }
  return total;
}

void ProcessingState::Encode(serde::Encoder* enc) const {
  EnsureSorted();
  enc->AppendVarint64(entries_.size());
  // The payload size is knowable exactly (bytes_ already counts 8 bytes per
  // key plus the value bytes; only the length varints are extra), so the
  // whole state is emitted into one Extend() region with raw pointer
  // writes — no per-append bounds checks on the serialisation hot path.
  size_t total = bytes_;
  for (const Entry& e : entries_) {
    total += serde::Encoder::VarintSize(e.second.size());
  }
  uint8_t* p = enc->Extend(total);
  for (const Entry& e : entries_) {
    p = serde::Encoder::WriteFixed64(p, e.first);
    p = serde::Encoder::WriteVarint64(p, e.second.size());
    std::memcpy(p, e.second.data(), e.second.size());
    p += e.second.size();
  }
}

[[nodiscard]]
Result<ProcessingState> ProcessingState::Decode(serde::Decoder* dec) {
  ProcessingState out;
  uint64_t n;
  SEEP_ASSIGN_OR_RETURN(n, dec->ReadVarint64());
  if (n <= dec->remaining()) out.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    KeyHash k;
    SEEP_ASSIGN_OR_RETURN(k, dec->ReadFixed64());
    std::string v;
    SEEP_ASSIGN_OR_RETURN(v, dec->ReadString());
    out.Add(k, std::move(v));
  }
  return out;
}

// ------------------------------------------------------------------ Positions

bool InputPositions::Advance(OriginId origin, int64_t timestamp) {
  auto [it, inserted] = positions_.try_emplace(origin, timestamp);
  if (inserted) return true;
  if (timestamp <= it->second) return false;
  it->second = timestamp;
  return true;
}

int64_t InputPositions::Get(OriginId origin) const {
  auto it = positions_.find(origin);
  return it == positions_.end() ? -1 : it->second;
}

void InputPositions::LowerBoundWith(const InputPositions& other) {
  for (const auto& [origin, ts] : other.positions_) {
    auto [it, inserted] = positions_.try_emplace(origin, ts);
    if (!inserted) it->second = std::min(it->second, ts);
  }
}

void InputPositions::UpperBoundWith(const InputPositions& other) {
  for (const auto& [origin, ts] : other.positions_) {
    auto [it, inserted] = positions_.try_emplace(origin, ts);
    if (!inserted) it->second = std::max(it->second, ts);
  }
}

namespace {

// Encoded size of AppendVarintSigned64(v): the zigzag-mapped varint.
size_t SignedVarintSize(int64_t v) {
  return serde::Encoder::VarintSize((static_cast<uint64_t>(v) << 1) ^
                                    static_cast<uint64_t>(v >> 63));
}

}  // namespace

size_t InputPositions::EncodedSize() const {
  size_t total = serde::Encoder::VarintSize(positions_.size());
  for (const auto& [origin, ts] : positions_) {
    total += 8 + SignedVarintSize(ts);
  }
  return total;
}

void InputPositions::Encode(serde::Encoder* enc) const {
  enc->AppendVarint64(positions_.size());
  for (const auto& [origin, ts] : positions_) {
    enc->AppendFixed64(origin);
    enc->AppendVarintSigned64(ts);
  }
}

[[nodiscard]]
Result<InputPositions> InputPositions::Decode(serde::Decoder* dec) {
  InputPositions out;
  uint64_t n;
  SEEP_ASSIGN_OR_RETURN(n, dec->ReadVarint64());
  for (uint64_t i = 0; i < n; ++i) {
    OriginId origin;
    SEEP_ASSIGN_OR_RETURN(origin, dec->ReadFixed64());
    int64_t ts;
    SEEP_ASSIGN_OR_RETURN(ts, dec->ReadVarintSigned64());
    out.positions_[origin] = ts;
  }
  return out;
}

// --------------------------------------------------------------- TupleBuffer

TupleBuffer::const_iterator TupleBuffer::UpperBound(int64_t timestamp) const {
  return std::partition_point(begin(), end(), [timestamp](const Tuple& t) {
    return t.timestamp <= timestamp;
  });
}

size_t TupleBuffer::TrimThroughTimestamp(int64_t up_to) {
  // Appends come from a monotone logical clock, so the buffer is sorted by
  // timestamp and the trim point is a binary search.
  const auto keep_from = UpperBound(up_to);
  const size_t dropped = static_cast<size_t>(keep_from - begin());
  for (auto it = begin(); it != keep_from; ++it) {
    bytes_ -= it->SerializedSize();
  }
  front_ += dropped;
  MaybeCompact();
  return dropped;
}

size_t TupleBuffer::TrimBeforeEventTime(SimTime cutoff) {
  // Event times are not strictly append-ordered (window-close emissions
  // carry the close time, which can precede a later tuple's source time), so
  // a binary search would be unsound; walk the dropped prefix instead.
  size_t dropped = 0;
  while (front_ != tuples_.size() && tuples_[front_].event_time < cutoff) {
    bytes_ -= tuples_[front_].SerializedSize();
    ++front_;
    ++dropped;
  }
  MaybeCompact();
  return dropped;
}

void TupleBuffer::MaybeCompact() {
  // Reclaim the dead prefix once it dominates the live region: each tuple is
  // then moved at most O(1) amortised times over its lifetime.
  if (front_ >= 32 && front_ * 2 >= tuples_.size()) {
    tuples_.erase(tuples_.begin(),
                  tuples_.begin() + static_cast<ptrdiff_t>(front_));
    front_ = 0;
  }
}

// -------------------------------------------------------------------- Buffer

void BufferState::Append(OperatorId downstream, Tuple t) {
  buffers_[downstream].Append(std::move(t));
}

size_t BufferState::Trim(OperatorId downstream, int64_t up_to) {
  auto it = buffers_.find(downstream);
  if (it == buffers_.end()) return 0;
  return it->second.TrimThroughTimestamp(up_to);
}

size_t BufferState::TrimByEventTime(SimTime cutoff) {
  size_t dropped = 0;
  for (auto& [op, buf] : buffers_) dropped += buf.TrimBeforeEventTime(cutoff);
  return dropped;
}

const TupleBuffer* BufferState::Get(OperatorId downstream) const {
  auto it = buffers_.find(downstream);
  return it == buffers_.end() ? nullptr : &it->second;
}

size_t BufferState::TotalTuples() const {
  size_t n = 0;
  for (const auto& [op, buf] : buffers_) n += buf.size();
  return n;
}

size_t BufferState::ByteSize() const {
  size_t n = 0;
  for (const auto& [op, buf] : buffers_) n += buf.ByteSize();
  return n;
}

size_t BufferState::EncodedSize() const {
  size_t total = serde::Encoder::VarintSize(buffers_.size());
  for (const auto& [op, buf] : buffers_) {
    total += 4 + serde::Encoder::VarintSize(buf.size()) + buf.ByteSize();
  }
  return total;
}

void BufferState::Encode(serde::Encoder* enc) const {
  enc->Reserve(EncodedSize());
  enc->AppendVarint64(buffers_.size());
  for (const auto& [op, buf] : buffers_) {
    enc->AppendFixed32(op);
    enc->AppendVarint64(buf.size());
    for (const Tuple& t : buf) t.Encode(enc);
  }
}

[[nodiscard]] Result<BufferState> BufferState::Decode(serde::Decoder* dec) {
  BufferState out;
  uint64_t n_ops;
  SEEP_ASSIGN_OR_RETURN(n_ops, dec->ReadVarint64());
  for (uint64_t i = 0; i < n_ops; ++i) {
    uint32_t op;
    SEEP_ASSIGN_OR_RETURN(op, dec->ReadFixed32());
    uint64_t n_tuples;
    SEEP_ASSIGN_OR_RETURN(n_tuples, dec->ReadVarint64());
    auto& buf = out.buffers_[op];
    if (n_tuples <= dec->remaining()) buf.Reserve(n_tuples);
    for (uint64_t j = 0; j < n_tuples; ++j) {
      Tuple t;
      SEEP_ASSIGN_OR_RETURN(t, Tuple::Decode(dec));
      buf.Append(std::move(t));
    }
  }
  return out;
}

// ------------------------------------------------------------------- Routing

void RoutingState::SetRoutes(OperatorId downstream,
                             std::vector<Route> routes) {
  table_[downstream] = std::move(routes);
}

InstanceId RoutingState::RouteKey(OperatorId downstream, KeyHash key) const {
  auto it = table_.find(downstream);
  if (it == table_.end()) return kInvalidInstance;
  for (const Route& r : it->second) {
    if (r.range.Contains(key)) return r.instance;
  }
  return kInvalidInstance;
}

const std::vector<RoutingState::Route>* RoutingState::GetRoutes(
    OperatorId downstream) const {
  auto it = table_.find(downstream);
  return it == table_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------- Checkpoint

size_t StateCheckpoint::ByteSize() const {
  return 64 + processing.ByteSize() + buffer.ByteSize() +
         positions.positions().size() * 16 + deleted_keys.size() * 8 +
         buffer_front.size() * 12;
}

size_t StateCheckpoint::EncodedSize() const {
  size_t total = 4 + 4 + 8 + 8 + 8;  // op, instance, origin, key range
  total += SignedVarintSize(out_clock) + serde::Encoder::VarintSize(seq) +
           SignedVarintSize(taken_at);
  total += positions.EncodedSize() + processing.EncodedSize() +
           buffer.EncodedSize();
  total += 1 + serde::Encoder::VarintSize(base_seq);
  total +=
      serde::Encoder::VarintSize(deleted_keys.size()) + 8 * deleted_keys.size();
  total += serde::Encoder::VarintSize(buffer_front.size());
  for (const auto& [op_id, front] : buffer_front) {
    total += 4 + SignedVarintSize(front);
  }
  return total;
}

void StateCheckpoint::Encode(serde::Encoder* enc) const {
  enc->Reserve(EncodedSize());
  enc->AppendFixed32(op);
  enc->AppendFixed32(instance);
  enc->AppendFixed64(origin);
  enc->AppendFixed64(key_range.lo);
  enc->AppendFixed64(key_range.hi);
  enc->AppendVarintSigned64(out_clock);
  enc->AppendVarint64(seq);
  enc->AppendVarintSigned64(taken_at);
  positions.Encode(enc);
  processing.Encode(enc);
  buffer.Encode(enc);
  enc->AppendU8(is_delta ? 1 : 0);
  enc->AppendVarint64(base_seq);
  enc->AppendVarint64(deleted_keys.size());
  for (KeyHash k : deleted_keys) enc->AppendFixed64(k);
  enc->AppendVarint64(buffer_front.size());
  for (const auto& [op_id, front] : buffer_front) {
    enc->AppendFixed32(op_id);
    enc->AppendVarintSigned64(front);
  }
}

[[nodiscard]]
Result<StateCheckpoint> StateCheckpoint::Decode(serde::Decoder* dec) {
  StateCheckpoint c;
  SEEP_ASSIGN_OR_RETURN(c.op, dec->ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(c.instance, dec->ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(c.origin, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(c.key_range.lo, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(c.key_range.hi, dec->ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(c.out_clock, dec->ReadVarintSigned64());
  SEEP_ASSIGN_OR_RETURN(c.seq, dec->ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(c.taken_at, dec->ReadVarintSigned64());
  SEEP_ASSIGN_OR_RETURN(c.positions, InputPositions::Decode(dec));
  SEEP_ASSIGN_OR_RETURN(c.processing, ProcessingState::Decode(dec));
  SEEP_ASSIGN_OR_RETURN(c.buffer, BufferState::Decode(dec));
  uint8_t is_delta;
  SEEP_ASSIGN_OR_RETURN(is_delta, dec->ReadU8());
  c.is_delta = is_delta != 0;
  SEEP_ASSIGN_OR_RETURN(c.base_seq, dec->ReadVarint64());
  uint64_t n_deleted;
  SEEP_ASSIGN_OR_RETURN(n_deleted, dec->ReadVarint64());
  for (uint64_t i = 0; i < n_deleted; ++i) {
    KeyHash k;
    SEEP_ASSIGN_OR_RETURN(k, dec->ReadFixed64());
    c.deleted_keys.push_back(k);
  }
  uint64_t n_fronts;
  SEEP_ASSIGN_OR_RETURN(n_fronts, dec->ReadVarint64());
  for (uint64_t i = 0; i < n_fronts; ++i) {
    uint32_t op_id;
    SEEP_ASSIGN_OR_RETURN(op_id, dec->ReadFixed32());
    int64_t front;
    SEEP_ASSIGN_OR_RETURN(front, dec->ReadVarintSigned64());
    c.buffer_front[op_id] = front;
  }
  return c;
}

std::vector<uint8_t> StateCheckpoint::Serialize() const {
  serde::Encoder enc;
  Encode(&enc);
  return serde::FramePayload(enc.buffer());
}

[[nodiscard]] Result<StateCheckpoint> StateCheckpoint::Deserialize(
    const std::vector<uint8_t>& raw) {
  auto payload = serde::UnframePayload(raw);
  if (!payload.ok()) return payload.status();
  serde::Decoder dec(payload.value());
  return Decode(&dec);
}

}  // namespace seep::core
