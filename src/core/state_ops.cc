#include "core/state_ops.h"

#include <algorithm>

#include "common/hash.h"

namespace seep::core {

InstanceId ChooseBackupInstance(InstanceId instance,
                                const std::vector<InstanceId>& upstream) {
  SEEP_CHECK(!upstream.empty());
  const uint64_t h = Mix64(instance);
  return upstream[h % upstream.size()];
}

[[nodiscard]] Result<std::vector<StateCheckpoint>> PartitionCheckpoint(
    const StateCheckpoint& checkpoint, uint32_t pi) {
  if (pi == 0) return Status::InvalidArgument("pi must be >= 1");
  return PartitionCheckpointByRanges(checkpoint,
                                     checkpoint.key_range.SplitEven(pi));
}

[[nodiscard]] Result<std::vector<StateCheckpoint>> PartitionCheckpointByRanges(
    const StateCheckpoint& checkpoint, const std::vector<KeyRange>& ranges) {
  if (ranges.empty()) return Status::InvalidArgument("no ranges");
  // Validate coverage: ranges must be sorted, contiguous, and span exactly
  // the checkpoint's range so no key can be lost or duplicated.
  if (ranges.front().lo != checkpoint.key_range.lo ||
      ranges.back().hi != checkpoint.key_range.hi) {
    return Status::InvalidArgument("ranges do not span checkpoint range");
  }
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i - 1].hi == UINT64_MAX ||
        ranges[i - 1].hi + 1 != ranges[i].lo) {
      return Status::InvalidArgument("ranges not contiguous");
    }
  }

  std::vector<StateCheckpoint> parts;
  parts.reserve(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    StateCheckpoint part;
    part.op = checkpoint.op;
    part.instance = kInvalidInstance;  // assigned at deployment
    part.origin = kInvalidOrigin;      // fresh origin assigned at restore
    part.key_range = ranges[i];
    part.seq = checkpoint.seq;
    part.taken_at = checkpoint.taken_at;
    // Algorithm 2 line 6: τi ← τ (positions copied to every partition).
    part.positions = checkpoint.positions;
    // Algorithm 2 line 5: θi ← {(k,v) ∈ θ : ki ≤ k < ki+1}.
    part.processing = checkpoint.processing.FilterByRange(ranges[i]);
    // Algorithm 2 line 7: the buffer state goes to the first partition; its
    // tuples carry the parent's origin and original timestamps, so replaying
    // them downstream remains duplicate-detectable. The first partition also
    // carries the parent's stream identity (origin + output clock) so that a
    // single-partition restore — serial recovery — re-emits under the parent
    // origin and downstream filters recognise the duplicates (§3.2).
    if (i == 0) {
      part.buffer = checkpoint.buffer;
      part.out_clock = checkpoint.out_clock;
      part.origin = checkpoint.origin;
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

std::vector<KeyRange> BalancedSplitRanges(const StateCheckpoint& checkpoint,
                                          uint32_t pi) {
  SEEP_CHECK_GT(pi, 0u);
  const KeyRange range = checkpoint.key_range;
  // With few entries, quantiles are noise; even hash splitting is better.
  if (checkpoint.processing.size() < static_cast<size_t>(pi) * 8) {
    return range.SplitEven(pi);
  }
  // Entries are maintained sorted by key, so quantiles are direct reads —
  // no key copy, no per-split sort.
  const auto& entries = checkpoint.processing.entries();

  std::vector<KeyRange> ranges;
  ranges.reserve(pi);
  KeyHash lo = range.lo;
  for (uint32_t i = 1; i < pi; ++i) {
    // Cut just above the i-th pi-quantile entry so the entry itself lands in
    // the left partition.
    const size_t idx = entries.size() * i / pi;
    KeyHash cut = entries[idx].first;
    // Keep cuts strictly increasing and inside the range.
    if (cut < lo) cut = lo;
    if (cut >= range.hi) cut = range.hi - 1;
    ranges.push_back(KeyRange{lo, cut});
    lo = cut + 1;
  }
  ranges.push_back(KeyRange{lo, range.hi});
  // Degenerate cuts (duplicate quantiles) can produce inverted ranges;
  // fall back to the even split in that case.
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].lo > ranges[i].hi) return range.SplitEven(pi);
  }
  return ranges;
}

[[nodiscard]]
Status ApplyDelta(StateCheckpoint* base, const StateCheckpoint& delta) {
  if (!delta.is_delta) {
    return Status::InvalidArgument("not a delta checkpoint");
  }
  if (delta.base_seq != base->seq) {
    return Status::FailedPrecondition("delta base does not match stored seq");
  }
  if (delta.op != base->op || delta.instance != base->instance) {
    return Status::InvalidArgument("delta for a different instance");
  }

  // Replace/insert updated entries by key, drop deleted keys: a linear
  // two-pointer merge of the sorted base and delta — O(base + delta), no
  // intermediate map.
  base->processing.ApplyDelta(delta.processing, delta.deleted_keys);

  base->positions = delta.positions;
  base->out_clock = delta.out_clock;
  base->seq = delta.seq;
  base->taken_at = delta.taken_at;
  base->origin = delta.origin;
  base->key_range = delta.key_range;

  // Mirror the owner's buffer: trim to the owner's current front, then
  // append the tuples produced since the base checkpoint.
  for (const auto& [op_id, front] : delta.buffer_front) {
    base->buffer.Trim(op_id, front - 1);
  }
  for (const auto& [op_id, tuples] : delta.buffer.buffers()) {
    for (const Tuple& t : tuples) base->buffer.Append(op_id, t);
  }
  return Status::OK();
}

[[nodiscard]] Result<StateCheckpoint> MergeCheckpoints(
    const std::vector<StateCheckpoint>& checkpoints) {
  if (checkpoints.empty()) return Status::InvalidArgument("nothing to merge");
  for (size_t i = 1; i < checkpoints.size(); ++i) {
    if (checkpoints[i].op != checkpoints[0].op) {
      return Status::InvalidArgument("merging different operators");
    }
    if (checkpoints[i - 1].key_range.hi == UINT64_MAX ||
        checkpoints[i - 1].key_range.hi + 1 != checkpoints[i].key_range.lo) {
      return Status::InvalidArgument("key ranges not adjacent");
    }
  }
  StateCheckpoint merged;
  merged.op = checkpoints[0].op;
  merged.instance = kInvalidInstance;
  merged.origin = kInvalidOrigin;
  merged.key_range = KeyRange{checkpoints.front().key_range.lo,
                              checkpoints.back().key_range.hi};
  merged.taken_at = checkpoints[0].taken_at;
  for (const StateCheckpoint& c : checkpoints) {
    merged.seq = std::max(merged.seq, c.seq);
    merged.taken_at = std::max(merged.taken_at, c.taken_at);
    merged.processing.MergeFrom(c.processing);
    // Quiesced capture: both partitions saw everything up to their
    // positions, so the union of coverage is the element-wise max.
    merged.positions.UpperBoundWith(c.positions);
    for (const auto& [op, tuples] : c.buffer.buffers()) {
      for (const Tuple& t : tuples) merged.buffer.Append(op, t);
    }
  }
  return merged;
}

}  // namespace seep::core
