#ifndef SEEP_CORE_TUPLE_H_
#define SEEP_CORE_TUPLE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::core {

/// Stable identity of a stream origin. Every operator instance's output
/// stream has an origin; timestamps are monotone per origin, which is what
/// lets downstream operators detect and discard duplicates after replay
/// (paper §3.2: "resets its logical clock ... so that downstream operators
/// can detect and discard duplicate tuples").
using OriginId = uint64_t;

inline constexpr OriginId kInvalidOrigin = 0;

/// The paper's tuple t = (τ, k, p) (§2.2), plus bookkeeping the evaluation
/// needs: the originating stream (for per-origin duplicate filtering) and
/// the source event time (for end-to-end latency measurement).
struct Tuple {
  /// Logical timestamp τ, assigned by the emitting instance's monotonically
  /// increasing logical clock.
  int64_t timestamp = 0;
  /// Partitioning key k (already hashed into the uniform key space).
  KeyHash key = 0;
  /// Stream origin that assigned `timestamp`.
  OriginId origin = kInvalidOrigin;
  /// Simulated time at which the source created the ancestor of this tuple;
  /// carried through operators so sinks can measure processing latency.
  SimTime event_time = 0;
  /// Payload p: workload-defined integer fields plus an optional text field
  /// (words, page titles). LRB uses only the integers.
  std::array<int64_t, 4> ints{};
  std::string text;
  /// Whether sinks should include this tuple in processing-latency metrics.
  /// Per-tuple results keep it true; periodic window emissions (whose
  /// event_time is the window close, not an input arrival) set it false so
  /// they don't masquerade as multi-second processing latencies.
  bool latency_sample = true;

  void Encode(serde::Encoder* enc) const;
  [[nodiscard]] static Result<Tuple> Decode(serde::Decoder* dec);

  /// Exact size of the Encode() output, without encoding. Drives the network
  /// cost model and serialisation CPU cost.
  size_t SerializedSize() const;
};

/// A batch of tuples travelling on one edge of the execution graph. Batching
/// is an event-granularity optimisation only: every tuple is still applied to
/// state and routed by key individually.
struct TupleBatch {
  InstanceId from = kInvalidInstance;
  std::vector<Tuple> tuples;
  /// True when this batch is a replay of buffered tuples after a restore;
  /// replay batches bypass the admission-control drop path.
  bool replay = false;
  /// Non-zero marks a replay fence: an empty marker batch that follows the
  /// last replay batch on the same FIFO link. When the restored instance
  /// drains the fence, replay (and hence recovery) is complete. Fences that
  /// reach a non-target instance are forwarded downstream, which lets a
  /// source-replay fence travel through intermediate operators.
  uint64_t fence_id = 0;

  /// Wire codec for batches crossing a real transport (the simulated network
  /// only models sizes and never encodes). Encodes sender, flags and every
  /// tuple; Decode rejects truncated or corrupt input as Status rather than
  /// crashing, since batch frames arrive from the network.
  void Encode(serde::Encoder* enc) const;
  [[nodiscard]] static Result<TupleBatch> Decode(serde::Decoder* dec);

  size_t SerializedSize() const;
};

}  // namespace seep::core

#endif  // SEEP_CORE_TUPLE_H_
