#include "core/query_graph.h"

#include <algorithm>
#include <deque>

namespace seep::core {

OperatorId QueryGraph::AddSource(std::string name, SourceFactory factory,
                                 double cost_us, uint32_t parallelism) {
  OperatorSpec spec;
  spec.id = NextId();
  spec.name = std::move(name);
  spec.kind = VertexKind::kSource;
  spec.source_factory = std::move(factory);
  spec.endpoint_cost_us = cost_us;
  spec.scalable = false;
  spec.source_parallelism = parallelism == 0 ? 1 : parallelism;
  operators_.push_back(std::move(spec));
  return operators_.back().id;
}

OperatorId QueryGraph::AddOperator(std::string name, OperatorFactory factory,
                                   bool stateful, bool scalable) {
  OperatorSpec spec;
  spec.id = NextId();
  spec.name = std::move(name);
  spec.kind = VertexKind::kOperator;
  spec.factory = std::move(factory);
  spec.stateful = stateful;
  spec.scalable = scalable;
  operators_.push_back(std::move(spec));
  return operators_.back().id;
}

OperatorId QueryGraph::AddSink(std::string name, SinkFactory factory,
                               double cost_us) {
  OperatorSpec spec;
  spec.id = NextId();
  spec.name = std::move(name);
  spec.kind = VertexKind::kSink;
  spec.sink_factory = std::move(factory);
  spec.endpoint_cost_us = cost_us;
  spec.scalable = false;
  operators_.push_back(std::move(spec));
  return operators_.back().id;
}

[[nodiscard]] Status QueryGraph::Connect(OperatorId from, OperatorId to) {
  if (from >= operators_.size() || to >= operators_.size()) {
    return Status::InvalidArgument("unknown operator id in Connect");
  }
  if (from == to) return Status::InvalidArgument("self loop");
  if (operators_[from].kind == VertexKind::kSink) {
    return Status::InvalidArgument("sink cannot have outputs");
  }
  if (operators_[to].kind == VertexKind::kSource) {
    return Status::InvalidArgument("source cannot have inputs");
  }
  downstream_[from].push_back(to);
  upstream_[to].push_back(from);
  return Status::OK();
}

[[nodiscard]] Status QueryGraph::Validate() const {
  if (operators_.empty()) return Status::InvalidArgument("empty query");
  // Kahn's algorithm doubles as the cycle check.
  std::map<OperatorId, size_t> indegree;
  for (const auto& spec : operators_) indegree[spec.id] = 0;
  for (const auto& [from, tos] : downstream_) {
    for (OperatorId to : tos) ++indegree[to];
  }
  std::deque<OperatorId> frontier;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) {
      if (operators_[id].kind != VertexKind::kSource) {
        return Status::InvalidArgument(
            "operator '" + operators_[id].name + "' has no inputs");
      }
      frontier.push_back(id);
    }
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    OperatorId id = frontier.front();
    frontier.pop_front();
    ++visited;
    auto it = downstream_.find(id);
    if (it == downstream_.end()) {
      if (operators_[id].kind != VertexKind::kSink) {
        return Status::InvalidArgument(
            "operator '" + operators_[id].name + "' has no outputs");
      }
      continue;
    }
    for (OperatorId to : it->second) {
      if (--indegree[to] == 0) frontier.push_back(to);
    }
  }
  if (visited != operators_.size()) {
    return Status::InvalidArgument("query graph has a cycle");
  }
  return Status::OK();
}

const OperatorSpec* QueryGraph::Get(OperatorId id) const {
  return id < operators_.size() ? &operators_[id] : nullptr;
}

const std::vector<OperatorId>& QueryGraph::Downstream(OperatorId id) const {
  static const std::vector<OperatorId> kEmpty;
  auto it = downstream_.find(id);
  return it == downstream_.end() ? kEmpty : it->second;
}

const std::vector<OperatorId>& QueryGraph::Upstream(OperatorId id) const {
  static const std::vector<OperatorId> kEmpty;
  auto it = upstream_.find(id);
  return it == upstream_.end() ? kEmpty : it->second;
}

std::vector<OperatorId> QueryGraph::Sources() const {
  std::vector<OperatorId> out;
  for (const auto& spec : operators_) {
    if (spec.kind == VertexKind::kSource) out.push_back(spec.id);
  }
  return out;
}

std::vector<OperatorId> QueryGraph::Sinks() const {
  std::vector<OperatorId> out;
  for (const auto& spec : operators_) {
    if (spec.kind == VertexKind::kSink) out.push_back(spec.id);
  }
  return out;
}

std::vector<OperatorId> QueryGraph::TopologicalOrder() const {
  std::map<OperatorId, size_t> indegree;
  for (const auto& spec : operators_) indegree[spec.id] = 0;
  for (const auto& [from, tos] : downstream_) {
    for (OperatorId to : tos) ++indegree[to];
  }
  std::deque<OperatorId> frontier;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) frontier.push_back(id);
  }
  std::vector<OperatorId> order;
  while (!frontier.empty()) {
    OperatorId id = frontier.front();
    frontier.pop_front();
    order.push_back(id);
    auto it = downstream_.find(id);
    if (it == downstream_.end()) continue;
    for (OperatorId to : it->second) {
      if (--indegree[to] == 0) frontier.push_back(to);
    }
  }
  return order;
}

}  // namespace seep::core
