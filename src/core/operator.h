#ifndef SEEP_CORE_OPERATOR_H_
#define SEEP_CORE_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>

#include "common/time.h"
#include "core/state.h"
#include "core/tuple.h"

namespace seep::core {

/// Sink for tuples emitted by an operator while processing. The runtime
/// routes emissions by key through the routing state and stamps timestamps
/// from the instance's logical clock — operators never see those mechanics.
class Collector {
 public:
  virtual ~Collector() = default;

  /// Emits a tuple on output port `port`. Ports are numbered by the order of
  /// QueryGraph::Connect calls from this operator (port 0 = first edge).
  /// `tuple.event_time` should be inherited from the triggering input for
  /// latency accounting; timestamp and origin are stamped by the runtime.
  virtual void EmitTo(int port, Tuple tuple) = 0;

  /// Emits on port 0 — the common single-downstream case.
  void Emit(Tuple tuple) { EmitTo(0, std::move(tuple)); }
};

/// The paper's operator function fo (§2.2): deterministic, no externally
/// visible side effects, optionally stateful. Developers implement Process
/// plus the state translation hooks; everything else (checkpointing, backup,
/// partitioning, recovery) is done by the SPS through these hooks — the
/// paper's core idea of *externalising* operator state.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Processes one input tuple, possibly updating internal state and
  /// emitting output tuples.
  virtual void Process(const Tuple& input, Collector* out) = 0;

  /// True for operators with processing state (θo ≠ ∅).
  virtual bool IsStateful() const { return false; }

  /// get-processing-state(o) → θo (paper §3.1). Must return a consistent
  /// snapshot translated to key/value pairs. Stateless operators return
  /// empty state.
  virtual ProcessingState GetProcessingState() const { return {}; }

  /// set-processing-state: replaces internal state from a checkpointed θ.
  virtual void SetProcessingState(const ProcessingState& state) {}

  /// Scale-in merge hook (paper §3.3): folds another partition's state into
  /// this operator. Key sets are disjoint, so the default delegates to
  /// SetProcessingState-style insertion via a second call; stateful
  /// operators with cross-key aggregates override this.
  virtual void MergeProcessingState(const ProcessingState& state) {
    SetProcessingState(state);
  }

  // ------------------------------------------------- incremental state

  /// Incremental checkpointing support (paper §3.2: "to reduce the size of
  /// checkpoints, it is also possible to use incremental checkpointing
  /// techniques [17]"). Operators that track which keys changed since the
  /// previous checkpoint return true and implement the two hooks below.
  virtual bool SupportsIncrementalState() const { return false; }

  /// State entries changed since the last TakeProcessingStateDelta /
  /// ClearStateDelta call, plus keys whose entries were removed entirely.
  /// Calling this clears the dirty tracking.
  virtual StateDelta TakeProcessingStateDelta() {
    return StateDelta{GetProcessingState(), {}};
  }

  /// Resets dirty tracking without producing a delta — called after a full
  /// checkpoint captured everything.
  virtual void ClearStateDelta() {}

  /// CPU cost to process one tuple on the reference core, in microseconds.
  /// This is the knob the simulator uses in place of real CPU burn.
  virtual double CostMicrosPerTuple() const { return 1.0; }

  /// Periodic callback for window-triggered emission (e.g. "output the word
  /// frequencies every 30 s"). Returns 0 to disable.
  virtual SimTime TimerInterval() const { return 0; }
  virtual void OnTimer(SimTime now, Collector* out) {}
};

/// Factory creating fresh operator instances; invoked for each partition
/// deployed during scale out and for each replacement during recovery.
using OperatorFactory = std::function<std::unique_ptr<Operator>()>;

/// Generates source tuples. Sources are special operators (paper §2.2:
/// "sources and sinks cannot fail"): the runtime calls GenerateBatch on a
/// fixed tick and routes the produced tuples downstream.
class SourceGenerator {
 public:
  virtual ~SourceGenerator() = default;

  /// Produces the tuples for simulated interval [now, now + dt). Keys and
  /// payloads are workload-specific; `emit` routes each tuple.
  virtual void GenerateBatch(SimTime now, SimTime dt, Collector* emit) = 0;

  /// Target input rate at `now` in tuples/second, for figure reporting.
  virtual double TargetRate(SimTime now) const = 0;
};

/// Creates the generator for one of `count` parallel source instances;
/// `index` lets implementations partition the offered load (the paper's
/// top-k workload uses 18 data sources).
using SourceFactory =
    std::function<std::unique_ptr<SourceGenerator>(uint32_t index,
                                                   uint32_t count)>;

/// Consumes result tuples. The runtime feeds every tuple reaching a sink
/// instance; implementations aggregate final answers and validate results.
class SinkConsumer {
 public:
  virtual ~SinkConsumer() = default;
  virtual void Consume(const Tuple& tuple, SimTime now) = 0;
};

using SinkFactory = std::function<std::unique_ptr<SinkConsumer>()>;

}  // namespace seep::core

#endif  // SEEP_CORE_OPERATOR_H_
