#ifndef SEEP_CORE_STATE_H_
#define SEEP_CORE_STATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/macros.h"
#include "common/result.h"
#include "common/time.h"
#include "core/key_range.h"
#include "core/tuple.h"

namespace seep::core {

/// Processing state θo (paper §3.1): the operator's summary of past tuples,
/// externalised as key/value pairs so the SPS can checkpoint and partition it
/// without understanding operator internals. Operators keep efficient
/// internal structures and translate on demand (get-processing-state).
///
/// Entries are kept sorted by key hash. Operators may Add in any order; the
/// sort happens lazily on first read (one O(n log n) per capture instead of
/// per-operation bookkeeping), after which every range operation is a
/// binary-searched slice: FilterByRange is O(log n + output), MergeFrom and
/// delta application are linear merges, and quantile splits read positions
/// directly.
class ProcessingState {
 public:
  using Entry = std::pair<KeyHash, std::string>;

  ProcessingState() = default;

  void Add(KeyHash key, std::string value) {
    bytes_ += sizeof(KeyHash) + value.size();
    if (!entries_.empty() && key < entries_.back().first) sorted_ = false;
    entries_.emplace_back(key, std::move(value));
  }

  /// Entries sorted ascending by key (ties keep insertion order).
  const std::vector<Entry>& entries() const {
    EnsureSorted();
    return entries_;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void Reserve(size_t n) { entries_.reserve(n); }

  /// Approximate in-memory footprint; checkpoint CPU cost scales with this.
  size_t ByteSize() const { return bytes_; }

  /// Exact size of the Encode() output, without encoding: bytes_ already
  /// counts 8 bytes per key plus the value bytes, so only the varint lengths
  /// are summed — arithmetic only, no memory traffic.
  size_t EncodedSize() const;

  /// Returns the subset of entries whose key falls in `range` — the core of
  /// Algorithm 2 line 5: θi ← {(k,v) ∈ θ : ki ≤ k < ki+1}. Binary-searches
  /// the sorted entries, so the cost is O(log n) plus the copied slice.
  ProcessingState FilterByRange(const KeyRange& range) const;

  /// Merges all entries of `other` (used by scale-in merge; key sets must be
  /// disjoint, which holds for partitions of disjoint ranges). Adjacent
  /// ranges append in O(other); the general case is a linear merge.
  void MergeFrom(const ProcessingState& other);

  /// Incremental-checkpoint application: replaces/inserts `updated` entries
  /// by key and drops `deleted` keys, as a single two-pointer merge over the
  /// sorted base and delta — O(base + delta), no intermediate map, no full
  /// rebuild. A key in both `updated` and `deleted` is deleted.
  void ApplyDelta(const ProcessingState& updated,
                  const std::vector<KeyHash>& deleted);

  void Encode(serde::Encoder* enc) const;
  [[nodiscard]] static Result<ProcessingState> Decode(serde::Decoder* dec);

 private:
  void EnsureSorted() const;

  // Lazily sorted: Add only appends; readers sort once on demand.
  mutable std::vector<Entry> entries_;
  mutable bool sorted_ = true;
  size_t bytes_ = 0;
};

/// The τ vector (paper §2.2/§3.1): for each input stream origin, the most
/// recent timestamp reflected in the processing state. Doubles as the
/// duplicate-filtering watermark: a tuple from origin g with timestamp
/// <= positions[g] is already accounted for and must be discarded on replay.
class InputPositions {
 public:
  /// Returns true if the tuple advances the position (i.e. is fresh); false
  /// if it is a duplicate.
  bool Advance(OriginId origin, int64_t timestamp);

  /// Position for an origin, or -1 when never seen.
  int64_t Get(OriginId origin) const;

  void Set(OriginId origin, int64_t timestamp) {
    positions_[origin] = timestamp;
  }

  const std::map<OriginId, int64_t>& positions() const { return positions_; }

  /// Exact size of the Encode() output, without encoding.
  size_t EncodedSize() const;

  /// Element-wise minimum with `other`; used when merging states where the
  /// conservative (replay-more) direction is required.
  void LowerBoundWith(const InputPositions& other);

  /// Element-wise maximum with `other`; valid only for quiesced merges where
  /// both sides have seen all tuples up to their positions.
  void UpperBoundWith(const InputPositions& other);

  void Encode(serde::Encoder* enc) const;
  [[nodiscard]] static Result<InputPositions> Decode(serde::Decoder* dec);

 private:
  std::map<OriginId, int64_t> positions_;
};

/// One downstream operator's replay buffer: tuples in append (= logical
/// timestamp) order, with an amortised-O(1) front trim. Trimming only
/// advances a front offset; the dead prefix is compacted away once it
/// outgrows the live region, so each tuple is moved O(1) times over its
/// lifetime instead of once per trim. Copying (checkpoint capture) copies
/// only the live region.
class TupleBuffer {
 public:
  using const_iterator = std::vector<Tuple>::const_iterator;

  TupleBuffer() = default;
  TupleBuffer(const TupleBuffer& other)
      : tuples_(other.begin(), other.end()), bytes_(other.bytes_) {}
  TupleBuffer& operator=(const TupleBuffer& other) {
    if (this != &other) {
      tuples_.assign(other.begin(), other.end());
      front_ = 0;
      bytes_ = other.bytes_;
    }
    return *this;
  }
  TupleBuffer(TupleBuffer&&) = default;
  TupleBuffer& operator=(TupleBuffer&&) = default;

  void Append(Tuple t) {
    // UpperBound/Trim binary-search on timestamp order; an out-of-order
    // append would silently corrupt trims.
    SEEP_DCHECK(tuples_.empty() || tuples_.back().timestamp <= t.timestamp);
    bytes_ += t.SerializedSize();
    tuples_.push_back(std::move(t));
  }

  void Reserve(size_t n) { tuples_.reserve(front_ + n); }

  size_t size() const { return tuples_.size() - front_; }
  bool empty() const { return front_ == tuples_.size(); }
  const Tuple& front() const { return tuples_[front_]; }
  const Tuple& back() const { return tuples_.back(); }
  const_iterator begin() const { return tuples_.begin() + front_; }
  const_iterator end() const { return tuples_.end(); }

  /// Wire size of the live tuples (maintained incrementally, O(1)).
  size_t ByteSize() const { return bytes_; }

  /// First tuple with timestamp > `timestamp`. Timestamps are assigned by
  /// the emitting instance's monotone logical clock, so the buffer is sorted
  /// by timestamp and this is a binary search.
  const_iterator UpperBound(int64_t timestamp) const;

  /// Drops all tuples with timestamp <= up_to; returns how many.
  /// O(log n) search + amortised-O(1) per dropped tuple.
  size_t TrimThroughTimestamp(int64_t up_to);

  /// Drops the longest prefix with event_time < cutoff; returns how many.
  /// Event times are only approximately append-ordered (window-close
  /// emissions interleave with per-tuple ones), so this walks the prefix —
  /// O(dropped), not O(n): it stops at the first survivor and never shifts
  /// the survivors.
  size_t TrimBeforeEventTime(SimTime cutoff);

 private:
  void MaybeCompact();

  std::vector<Tuple> tuples_;
  size_t front_ = 0;   // index of the first live tuple
  size_t bytes_ = 0;   // wire size of the live region
};

/// Buffer state βo (paper §3.1): output tuples kept per downstream logical
/// operator until a downstream checkpoint covers them. Replayed after a
/// downstream restore; trimmed on checkpoint acknowledgements.
class BufferState {
 public:
  void Append(OperatorId downstream, Tuple t);

  /// Drops all tuples for `downstream` with timestamp <= up_to (the paper's
  /// trim(o, τ)). Returns the number of tuples dropped.
  size_t Trim(OperatorId downstream, int64_t up_to);

  /// Drops all tuples (any downstream) created before `cutoff`. Used by the
  /// upstream-backup and source-replay baselines, whose buffers cover a
  /// fixed window of history rather than the checkpoint horizon.
  size_t TrimByEventTime(SimTime cutoff);

  const TupleBuffer* Get(OperatorId downstream) const;
  std::map<OperatorId, TupleBuffer>& buffers() { return buffers_; }
  const std::map<OperatorId, TupleBuffer>& buffers() const {
    return buffers_;
  }

  size_t TotalTuples() const;
  size_t ByteSize() const;

  /// Exact size of the Encode() output, without encoding. Tuple byte sizes
  /// are maintained incrementally per buffer, so this is O(#buffers).
  size_t EncodedSize() const;

  void Encode(serde::Encoder* enc) const;
  [[nodiscard]] static Result<BufferState> Decode(serde::Decoder* dec);

 private:
  std::map<OperatorId, TupleBuffer> buffers_;
};

/// Routing state ρo (paper §3.1): for each downstream logical operator, the
/// key-interval → partitioned-instance mapping. Changes only on scale out,
/// scale in, or recovery, and is therefore owned by the query manager and
/// pushed to upstream instances (paper §3.2: "routing state is maintained by
/// the query manager").
class RoutingState {
 public:
  struct Route {
    KeyRange range;
    InstanceId instance;
  };

  /// Replaces the routes for one downstream logical operator. Routes must
  /// cover disjoint ranges (checked in debug builds at lookup time).
  void SetRoutes(OperatorId downstream, std::vector<Route> routes);

  /// Routes a key: the instance whose range contains `key`. Returns
  /// kInvalidInstance if `downstream` has no routes (not deployed).
  InstanceId RouteKey(OperatorId downstream, KeyHash key) const;

  const std::vector<Route>* GetRoutes(OperatorId downstream) const;
  const std::map<OperatorId, std::vector<Route>>& all() const {
    return table_;
  }

  bool empty() const { return table_.empty(); }

 private:
  std::map<OperatorId, std::vector<Route>> table_;
};

/// Changed portion of a processing state since the previous checkpoint:
/// updated/inserted entries plus keys removed entirely (e.g. expired
/// windows). Keys are treated as entry identities.
struct StateDelta {
  ProcessingState updated;
  std::vector<KeyHash> deleted;
};

/// A checkpoint of one operator instance: everything needed to restore or
/// partition it (paper §3.2 checkpoint-state → (θo, τo, βo), plus the output
/// clock that restore resets so downstream can discard duplicates).
///
/// A checkpoint is either *full* or a *delta* (incremental checkpointing,
/// §3.2): a delta carries only the processing-state entries changed since
/// the base checkpoint `base_seq`, the keys deleted since then, the new
/// buffer tuples, and per-downstream trim positions for the buffer the
/// holder mirrors. The holder applies deltas onto its stored full copy
/// (ApplyDelta in state_ops.h), so retrieval always yields a full state.
struct StateCheckpoint {
  OperatorId op = 0;
  InstanceId instance = kInvalidInstance;
  OriginId origin = kInvalidOrigin;
  KeyRange key_range = KeyRange::Full();
  int64_t out_clock = 0;
  uint64_t seq = 0;        // checkpoint sequence number, monotone per instance
  SimTime taken_at = 0;
  InputPositions positions;
  ProcessingState processing;
  BufferState buffer;

  // Incremental-checkpoint fields (meaningful when is_delta).
  bool is_delta = false;
  uint64_t base_seq = 0;
  std::vector<KeyHash> deleted_keys;
  /// For each downstream op: the owner's current oldest buffered timestamp;
  /// the holder drops mirrored tuples below it (trim replication).
  std::map<OperatorId, int64_t> buffer_front;

  size_t ByteSize() const;

  /// Exact size of the Encode() output, without encoding — what Encode
  /// reserves, and what the checkpoint pipeline's serialization stage uses
  /// to size the frame in one allocation (no realloc churn on multi-MB
  /// snapshots).
  size_t EncodedSize() const;

  void Encode(serde::Encoder* enc) const;
  [[nodiscard]] static Result<StateCheckpoint> Decode(serde::Decoder* dec);

  /// Round-trips through the wire format; the restore path uses this to
  /// model (and verify) real serialisation.
  std::vector<uint8_t> Serialize() const;
  [[nodiscard]]
  static Result<StateCheckpoint> Deserialize(const std::vector<uint8_t>& raw);
};

}  // namespace seep::core

#endif  // SEEP_CORE_STATE_H_
