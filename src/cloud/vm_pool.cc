#include "cloud/vm_pool.h"

#include <utility>

#include "common/macros.h"

namespace seep::cloud {

VmPool::VmPool(sim::Simulation* sim, CloudProvider* provider,
               VmPoolConfig config)
    : sim_(sim), provider_(provider), config_(config) {}

void VmPool::Prefill() { Refill(); }

void VmPool::PrefillImmediate() {
  while (pooled_.size() < config_.target_size) {
    pooled_.push_back(provider_->RequestVmImmediate());
  }
}

void VmPool::Acquire(VmGrant on_ready) {
  waiting_.push_back({sim_->Now(), std::move(on_ready)});
  TryGrant();
  Refill();
}

void VmPool::SetTargetSize(size_t target) {
  config_.target_size = target;
  while (pooled_.size() > target) {
    const VmId id = pooled_.back();
    pooled_.pop_back();
    SEEP_CHECK(provider_->ReleaseVm(id).ok());
  }
  Refill();
}

void VmPool::Refill() {
  // Keep (pooled + in-flight provisioning - queued waiters) at target size.
  const size_t demand = config_.target_size + waiting_.size();
  while (pooled_.size() + inflight_refills_ < demand) {
    ++inflight_refills_;
    provider_->RequestVm([this](VmId id) {
      SEEP_CHECK_GT(inflight_refills_, 0u);
      --inflight_refills_;
      pooled_.push_back(id);
      TryGrant();
    });
  }
}

void VmPool::TryGrant() {
  while (!waiting_.empty() && !pooled_.empty()) {
    const VmId id = pooled_.front();
    pooled_.pop_front();
    Waiter waiter = std::move(waiting_.front());
    waiting_.pop_front();
    const SimTime now = sim_->Now();
    const SimTime grant_at =
        std::max(now + config_.grant_delay,
                 next_grant_at_ + config_.grant_pipeline);
    next_grant_at_ = grant_at;
    sim_->ScheduleAt(
        grant_at,
        [this, id, since = waiter.since, grant = std::move(waiter.grant)]() {
          wait_times_.Add(SimToSeconds(sim_->Now() - since));
          SEEP_CHECK(provider_->MarkInUse(id).ok());
          grant(id);
        });
  }
}

}  // namespace seep::cloud
