#include "cloud/cloud_provider.h"

#include <algorithm>

#include "common/macros.h"

namespace seep::cloud {

const char* VmStateName(VmState s) {
  switch (s) {
    case VmState::kProvisioning:
      return "provisioning";
    case VmState::kPooled:
      return "pooled";
    case VmState::kInUse:
      return "in-use";
    case VmState::kFailed:
      return "failed";
    case VmState::kReleased:
      return "released";
  }
  return "unknown";
}

void CloudProvider::RequestVm(VmGrant on_ready) {
  const VmId id = next_id_++;
  Vm vm;
  vm.id = id;
  vm.capacity = config_.vm_capacity;
  vm.state = VmState::kProvisioning;
  vm.requested_at = sim_->Now();
  vms_.emplace(id, vm);
  ++num_live_;

  const double jitter =
      1.0 + config_.provision_jitter * (2.0 * rng_.NextDouble() - 1.0);
  const SimTime delay = std::max<SimTime>(
      0, static_cast<SimTime>(
             static_cast<double>(config_.provision_delay_mean) * jitter));
  sim_->Schedule(delay, [this, id, cb = std::move(on_ready)]() {
    Vm* vm = GetMutableVm(id);
    SEEP_CHECK(vm != nullptr);
    if (vm->state != VmState::kProvisioning) return;  // killed while booting
    vm->state = VmState::kPooled;
    vm->booted_at = sim_->Now();
    cb(id);
  });
}

VmId CloudProvider::RequestVmImmediate() {
  const VmId id = next_id_++;
  Vm vm;
  vm.id = id;
  vm.capacity = config_.vm_capacity;
  vm.state = VmState::kPooled;
  vm.requested_at = sim_->Now();
  vm.booted_at = sim_->Now();
  vms_.emplace(id, vm);
  ++num_live_;
  return id;
}

[[nodiscard]] seep::Status CloudProvider::KillVm(VmId id) {
  Vm* vm = GetMutableVm(id);
  if (vm == nullptr) return seep::Status::NotFound("unknown VM");
  if (vm->state == VmState::kFailed || vm->state == VmState::kReleased) {
    return seep::Status::FailedPrecondition("VM already terminated");
  }
  vm->state = VmState::kFailed;
  vm->released_at = sim_->Now();
  --num_live_;
  return seep::Status::OK();
}

[[nodiscard]] seep::Status CloudProvider::ReleaseVm(VmId id) {
  Vm* vm = GetMutableVm(id);
  if (vm == nullptr) return seep::Status::NotFound("unknown VM");
  if (vm->state == VmState::kFailed || vm->state == VmState::kReleased) {
    return seep::Status::FailedPrecondition("VM already terminated");
  }
  vm->state = VmState::kReleased;
  vm->released_at = sim_->Now();
  --num_live_;
  return seep::Status::OK();
}

void CloudProvider::ReleaseVmCompensating(VmId id) {
  const seep::Status st = ReleaseVm(id);
  SEEP_CHECK(st.ok() ||
             st.code() == seep::StatusCode::kFailedPrecondition);
}

[[nodiscard]] seep::Status CloudProvider::MarkInUse(VmId id) {
  Vm* vm = GetMutableVm(id);
  if (vm == nullptr) return seep::Status::NotFound("unknown VM");
  if (vm->state != VmState::kPooled) {
    return seep::Status::FailedPrecondition("VM not pooled");
  }
  vm->state = VmState::kInUse;
  return seep::Status::OK();
}

const Vm* CloudProvider::GetVm(VmId id) const {
  auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : &it->second;
}

Vm* CloudProvider::GetMutableVm(VmId id) {
  auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : &it->second;
}

double CloudProvider::BilledVmSeconds() const {
  double total = 0;
  for (const auto& [id, vm] : vms_) {
    const SimTime end = (vm.state == VmState::kFailed ||
                         vm.state == VmState::kReleased)
                            ? vm.released_at
                            : sim_->Now();
    total += SimToSeconds(end - vm.requested_at);
  }
  return total;
}

}  // namespace seep::cloud
