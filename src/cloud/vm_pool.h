#ifndef SEEP_CLOUD_VM_POOL_H_
#define SEEP_CLOUD_VM_POOL_H_

#include <deque>
#include <functional>

#include "cloud/cloud_provider.h"
#include "common/stats.h"
#include "sim/simulation.h"

namespace seep::cloud {

/// VM pool parameters (paper §5.2).
struct VmPoolConfig {
  /// Target pool size p. The pool is pre-filled to p at startup and refilled
  /// asynchronously after each grant.
  size_t target_size = 2;
  /// Time to hand a pooled VM to the SPS ("can happen in seconds").
  SimTime grant_delay = SecondsToSim(2);
  /// Minimum spacing between successive grants: the pool manager configures
  /// VMs one at a time, so acquiring k VMs at once (parallel recovery,
  /// simultaneous scale-outs) pipelines rather than completing in parallel.
  SimTime grant_pipeline = MillisToSim(500);
};

/// Pre-allocated pool of booted VMs that decouples "the SPS needs a VM now"
/// from minute-scale IaaS provisioning. When the pool is exhausted, requests
/// queue until the asynchronous refill delivers — the resulting stall is
/// exactly what the pool-size ablation bench measures.
class VmPool {
 public:
  using VmGrant = CloudProvider::VmGrant;

  VmPool(sim::Simulation* sim, CloudProvider* provider, VmPoolConfig config);

  /// Pre-fills the pool to the target size (call once at deployment).
  void Prefill();

  /// Pre-fills synchronously with immediately provisioned VMs, for initial
  /// deployments that happen before the measured run.
  void PrefillImmediate();

  /// Requests a VM. Granted after `grant_delay` if a pooled VM is available,
  /// otherwise queued until provisioning completes.
  void Acquire(VmGrant on_ready);

  /// Adjusts the target size at runtime (paper: shrink after aggressive
  /// scale-out phases). Shrinking releases surplus pooled VMs.
  void SetTargetSize(size_t target);

  size_t available() const { return pooled_.size(); }
  size_t pending_requests() const { return waiting_.size(); }
  size_t target_size() const { return config_.target_size; }

  /// Time each Acquire spent waiting before its VM was granted; the pool's
  /// effectiveness metric (seconds, one sample per grant).
  const SampleDistribution& wait_times() const { return wait_times_; }

 private:
  void Refill();
  void TryGrant();

  sim::Simulation* sim_;
  CloudProvider* provider_;
  VmPoolConfig config_;
  std::deque<VmId> pooled_;
  struct Waiter {
    SimTime since;
    VmGrant grant;
  };
  std::deque<Waiter> waiting_;
  size_t inflight_refills_ = 0;
  SimTime next_grant_at_ = 0;
  SampleDistribution wait_times_;
};

}  // namespace seep::cloud

#endif  // SEEP_CLOUD_VM_POOL_H_
