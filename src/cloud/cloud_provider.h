#ifndef SEEP_CLOUD_CLOUD_PROVIDER_H_
#define SEEP_CLOUD_CLOUD_PROVIDER_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "cloud/vm.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/simulation.h"

namespace seep::cloud {

/// IaaS provider model parameters.
struct CloudProviderConfig {
  /// Mean time to provision a fresh VM. Public IaaS platforms take on the
  /// order of minutes (paper §5.2); the pool exists to hide this.
  SimTime provision_delay_mean = SecondsToSim(90);
  /// Uniform jitter fraction applied to the delay (0.2 => ±20%).
  double provision_jitter = 0.2;
  /// Compute capacity of granted VMs relative to the reference core.
  double vm_capacity = 1.0;
};

/// Simulated IaaS control plane: asynchronous VM provisioning with
/// minute-scale delays, crash-stop failure marking, and VM-hour accounting.
class CloudProvider {
 public:
  using VmGrant = std::function<void(VmId)>;

  CloudProvider(sim::Simulation* sim, CloudProviderConfig config,
                uint64_t seed)
      : sim_(sim), config_(config), rng_(seed) {}

  /// Requests a new VM; `on_ready` fires after the provisioning delay with
  /// the booted VM (state kPooled — caller decides whether it goes to the
  /// pool or straight into use).
  void RequestVm(VmGrant on_ready);

  /// Synchronously provisions a booted VM (state kPooled). Used only for
  /// initial deployment and pool pre-fill, which the paper performs before
  /// the measured run starts.
  VmId RequestVmImmediate();

  /// Marks a VM failed (crash-stop). Returns NotFound for unknown ids and
  /// FailedPrecondition if it already terminated.
  [[nodiscard]] seep::Status KillVm(VmId id);

  /// Returns a VM to the provider; billing stops.
  [[nodiscard]] seep::Status ReleaseVm(VmId id);

  /// Release on a compensation/retire path, where racing a VM failure is
  /// expected: FailedPrecondition ("already terminated") is the benign
  /// outcome of releasing a VM that died mid-plan and is absorbed; any
  /// other failure (e.g. NotFound) means the caller's bookkeeping holds a
  /// VM the provider does not know — a billing leak the no-leaked-vm
  /// invariant exists to prevent — and aborts.
  void ReleaseVmCompensating(VmId id);

  /// Transition a pooled VM to in-use (bookkeeping only).
  [[nodiscard]] seep::Status MarkInUse(VmId id);

  const Vm* GetVm(VmId id) const;
  Vm* GetMutableVm(VmId id);

  /// Total VM-seconds billed so far (provisioning time is billed too, as on
  /// real IaaS). Live VMs are billed up to Now().
  double BilledVmSeconds() const;

  size_t num_live() const { return num_live_; }
  size_t num_requested() const { return next_id_; }

 private:
  sim::Simulation* sim_;
  CloudProviderConfig config_;
  Rng rng_;
  VmId next_id_ = 0;
  size_t num_live_ = 0;
  std::unordered_map<VmId, Vm> vms_;
};

}  // namespace seep::cloud

#endif  // SEEP_CLOUD_CLOUD_PROVIDER_H_
