#ifndef SEEP_CLOUD_VM_H_
#define SEEP_CLOUD_VM_H_

#include <cstdint>

#include "common/ids.h"
#include "common/time.h"

namespace seep::cloud {

/// Lifecycle of a simulated virtual machine.
enum class VmState {
  kProvisioning,  // requested from the provider, not yet booted
  kPooled,        // booted and parked in the VM pool
  kInUse,         // hosting an operator instance
  kFailed,        // crashed (crash-stop model, paper §2.2)
  kReleased,      // returned to the provider, no longer billed
};

const char* VmStateName(VmState s);

/// A virtual machine. `capacity` expresses compute power relative to the
/// reference core that per-tuple operator costs are calibrated against
/// (paper: 1 EC2 compute unit ≈ 1.0–1.2 GHz 2007 Xeon).
struct Vm {
  VmId id = kInvalidVm;
  double capacity = 1.0;
  VmState state = VmState::kProvisioning;
  SimTime requested_at = 0;
  SimTime booted_at = 0;
  SimTime released_at = 0;  // also set on failure, for billing purposes
};

}  // namespace seep::cloud

#endif  // SEEP_CLOUD_VM_H_
