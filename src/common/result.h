#ifndef SEEP_COMMON_RESULT_H_
#define SEEP_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace seep {

/// A value-or-Status, the return type of fallible factory/lookup functions.
/// Accessing value() on an error Result aborts (programmer error); callers
/// are expected to test ok() or use SEEP_ASSIGN_OR_RETURN.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error Status keeps call sites
  /// terse (`return value;` / `return Status::NotFound(...)`), matching the
  /// Arrow/abseil StatusOr idiom.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SEEP_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const& { return status_; }
  [[nodiscard]] Status status() && { return std::move(status_); }

  const T& value() const& {
    SEEP_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SEEP_CHECK(ok());
    return *value_;
  }
  T value() && {
    SEEP_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace seep

#endif  // SEEP_COMMON_RESULT_H_
