#ifndef SEEP_COMMON_STATUS_H_
#define SEEP_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace seep {

/// Error categories used across the library. Mirrors the RocksDB/Arrow idiom:
/// recoverable runtime conditions travel as Status values, never exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kCorruption,
  kInternal,
  kAborted,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, movable success-or-error value. The OK state carries no
/// allocation; error states carry a code and a message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(code, std::move(message))) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace seep

#endif  // SEEP_COMMON_STATUS_H_
