#ifndef SEEP_COMMON_MACROS_H_
#define SEEP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <type_traits>
#include <utility>

namespace seep::internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

/// Streams `v` when the type supports it; integral-promotes char-sized
/// integers so they print as numbers, not glyphs.
template <typename T>
void PrintOperand(std::ostream& os, const T& v) {
  if constexpr (std::is_integral_v<T> && sizeof(T) == 1) {
    os << +v;
  } else if constexpr (IsStreamable<T>::value) {
    os << v;
  } else {
    os << "<unprintable>";
  }
}

/// Failure path of the SEEP_CHECK_OP family: prints the stringified
/// comparison AND the operand values, then aborts. Out-of-line per
/// instantiation keeps the passing path branch-only.
template <typename A, typename B>
[[noreturn]] inline void CheckOpFail(const char* file, int line,
                                     const char* expr, const A& a,
                                     const B& b) {
  std::ostringstream msg;
  PrintOperand(msg, a);
  msg << " vs ";
  PrintOperand(msg, b);
  std::fprintf(stderr, "SEEP_CHECK failed at %s:%d: %s (%s)\n", file, line,
               expr, msg.str().c_str());
  std::abort();
}

}  // namespace seep::internal

// Aborts the process with a message when `cond` is false. Used for invariant
// violations that indicate programmer error, never for recoverable runtime
// conditions (those return seep::Status).
#define SEEP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SEEP_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Comparison checks that print the operand values on failure (operands are
// evaluated exactly once).
#define SEEP_CHECK_OP(a, op, b)                                           \
  do {                                                                    \
    auto&& _seep_va = (a);                                                \
    auto&& _seep_vb = (b);                                                \
    if (!(_seep_va op _seep_vb)) {                                        \
      ::seep::internal::CheckOpFail(__FILE__, __LINE__,                   \
                                    #a " " #op " " #b, _seep_va,          \
                                    _seep_vb);                            \
    }                                                                     \
  } while (0)

#define SEEP_CHECK_EQ(a, b) SEEP_CHECK_OP(a, ==, b)
#define SEEP_CHECK_NE(a, b) SEEP_CHECK_OP(a, !=, b)
#define SEEP_CHECK_LT(a, b) SEEP_CHECK_OP(a, <, b)
#define SEEP_CHECK_LE(a, b) SEEP_CHECK_OP(a, <=, b)
#define SEEP_CHECK_GT(a, b) SEEP_CHECK_OP(a, >, b)
#define SEEP_CHECK_GE(a, b) SEEP_CHECK_OP(a, >=, b)

// Debug-only checks: compiled in for debug builds (no NDEBUG) and for
// SEEP_AUDIT builds (which define SEEP_DCHECK_ENABLED); compiled out —
// condition parsed but never evaluated — in Release. Use for per-tuple /
// per-event assertions too hot for the always-on SEEP_CHECK family.
#if !defined(NDEBUG) || defined(SEEP_DCHECK_ENABLED)
#define SEEP_DCHECK(cond) SEEP_CHECK(cond)
#define SEEP_DCHECK_OP(a, op, b) SEEP_CHECK_OP(a, op, b)
#else
#define SEEP_DCHECK(cond)       \
  do {                          \
    if (false && (cond)) {      \
    }                           \
  } while (0)
#define SEEP_DCHECK_OP(a, op, b)     \
  do {                               \
    if (false && ((a)op(b))) {       \
    }                                \
  } while (0)
#endif

#define SEEP_DCHECK_EQ(a, b) SEEP_DCHECK_OP(a, ==, b)
#define SEEP_DCHECK_NE(a, b) SEEP_DCHECK_OP(a, !=, b)
#define SEEP_DCHECK_LT(a, b) SEEP_DCHECK_OP(a, <, b)
#define SEEP_DCHECK_LE(a, b) SEEP_DCHECK_OP(a, <=, b)
#define SEEP_DCHECK_GT(a, b) SEEP_DCHECK_OP(a, >, b)
#define SEEP_DCHECK_GE(a, b) SEEP_DCHECK_OP(a, >=, b)

// Propagates a non-OK Status from an expression to the caller.
#define SEEP_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::seep::Status _seep_status = (expr);          \
    if (!_seep_status.ok()) return _seep_status;   \
  } while (0)

// Evaluates a Result<T> expression and either assigns the value to `lhs` or
// returns its error Status to the caller.
#define SEEP_ASSIGN_OR_RETURN(lhs, expr)                        \
  SEEP_ASSIGN_OR_RETURN_IMPL_(                                  \
      SEEP_CONCAT_(_seep_result_, __LINE__), lhs, expr)

#define SEEP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define SEEP_CONCAT_(a, b) SEEP_CONCAT_IMPL_(a, b)
#define SEEP_CONCAT_IMPL_(a, b) a##b

#endif  // SEEP_COMMON_MACROS_H_
