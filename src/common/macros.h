#ifndef SEEP_COMMON_MACROS_H_
#define SEEP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a message when `cond` is false. Used for invariant
// violations that indicate programmer error, never for recoverable runtime
// conditions (those return seep::Status).
#define SEEP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SEEP_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SEEP_CHECK_OP(a, op, b) SEEP_CHECK((a)op(b))
#define SEEP_CHECK_EQ(a, b) SEEP_CHECK_OP(a, ==, b)
#define SEEP_CHECK_NE(a, b) SEEP_CHECK_OP(a, !=, b)
#define SEEP_CHECK_LT(a, b) SEEP_CHECK_OP(a, <, b)
#define SEEP_CHECK_LE(a, b) SEEP_CHECK_OP(a, <=, b)
#define SEEP_CHECK_GT(a, b) SEEP_CHECK_OP(a, >, b)
#define SEEP_CHECK_GE(a, b) SEEP_CHECK_OP(a, >=, b)

// Propagates a non-OK Status from an expression to the caller.
#define SEEP_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::seep::Status _seep_status = (expr);          \
    if (!_seep_status.ok()) return _seep_status;   \
  } while (0)

// Evaluates a Result<T> expression and either assigns the value to `lhs` or
// returns its error Status to the caller.
#define SEEP_ASSIGN_OR_RETURN(lhs, expr)                        \
  SEEP_ASSIGN_OR_RETURN_IMPL_(                                  \
      SEEP_CONCAT_(_seep_result_, __LINE__), lhs, expr)

#define SEEP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define SEEP_CONCAT_(a, b) SEEP_CONCAT_IMPL_(a, b)
#define SEEP_CONCAT_IMPL_(a, b) a##b

#endif  // SEEP_COMMON_MACROS_H_
