#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace seep {

SampleDistribution::SampleDistribution(size_t max_samples, uint64_t seed)
    : max_samples_(max_samples), rng_state_(seed | 1) {
  samples_.reserve(std::min<size_t>(max_samples_, 4096));
}

void SampleDistribution::Add(double value) {
  if (total_count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_count_;
  sum_ += value;
  if (samples_.size() < max_samples_) {
    samples_.push_back(value);
    sorted_ = false;
    return;
  }
  // Reservoir replacement with probability max_samples / total_count.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const size_t slot = rng_state_ % total_count_;
  if (slot < max_samples_) {
    samples_[slot] = value;
    sorted_ = false;
  }
}

double SampleDistribution::Percentile(double p) const {
  if (samples_.empty()) return 0;
  SEEP_CHECK_GE(p, 0.0);
  SEEP_CHECK_LE(p, 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double SampleDistribution::Mean() const {
  return total_count_ == 0 ? 0 : sum_ / static_cast<double>(total_count_);
}

double SampleDistribution::Max() const { return total_count_ == 0 ? 0 : max_; }
double SampleDistribution::Min() const { return total_count_ == 0 ? 0 : min_; }

void SampleDistribution::Clear() {
  total_count_ = 0;
  sum_ = 0;
  max_ = min_ = 0;
  samples_.clear();
  sorted_ = true;
}

double TimeSeries::Max() const {
  double m = 0;
  for (const Point& p : points_) m = std::max(m, p.value);
  return m;
}

std::vector<TimeSeries::Point> TimeSeries::Bucketed(
    SimTime bucket_width) const {
  SEEP_CHECK_GT(bucket_width, 0);
  std::vector<Point> out;
  if (points_.empty()) return out;
  SimTime bucket_start = 0;
  double sum = 0;
  size_t n = 0;
  for (const Point& p : points_) {
    while (p.time >= bucket_start + bucket_width) {
      if (n > 0) {
        out.push_back({bucket_start, sum / static_cast<double>(n)});
        sum = 0;
        n = 0;
      }
      bucket_start += bucket_width;
    }
    sum += p.value;
    ++n;
  }
  if (n > 0) out.push_back({bucket_start, sum / static_cast<double>(n)});
  return out;
}

void RateCounter::Add(SimTime t, uint64_t n) {
  SEEP_CHECK_GE(t, 0);
  const size_t bucket = static_cast<size_t>(t / bucket_width_);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  buckets_[bucket] += n;
  total_ += n;
}

std::vector<TimeSeries::Point> RateCounter::RatesPerSecond() const {
  std::vector<TimeSeries::Point> out;
  out.reserve(buckets_.size());
  const double scale = static_cast<double>(kMicrosPerSecond) /
                       static_cast<double>(bucket_width_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out.push_back({static_cast<SimTime>(i) * bucket_width_,
                   static_cast<double>(buckets_[i]) * scale});
  }
  return out;
}

}  // namespace seep
