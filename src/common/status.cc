#include "common/status.h"

namespace seep {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace seep
