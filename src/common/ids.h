#ifndef SEEP_COMMON_IDS_H_
#define SEEP_COMMON_IDS_H_

#include <cstdint>

namespace seep {

/// Identifier of a logical operator in the query graph (paper's `o`).
using OperatorId = uint32_t;

/// Identifier of a physical partitioned operator instance in the execution
/// graph (paper's `o^i`). Instance ids are unique across the whole run and
/// never reused, so a message addressed to a failed/replaced instance can be
/// detected and dropped.
using InstanceId = uint32_t;

/// Identifier of a simulated virtual machine.
using VmId = uint32_t;

/// Hashed partitioning key; routing state maps intervals of this space to
/// downstream instances.
using KeyHash = uint64_t;

inline constexpr InstanceId kInvalidInstance = UINT32_MAX;
inline constexpr VmId kInvalidVm = UINT32_MAX;

}  // namespace seep

#endif  // SEEP_COMMON_IDS_H_
