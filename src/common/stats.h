#ifndef SEEP_COMMON_STATS_H_
#define SEEP_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace seep {

/// Accumulates scalar samples and answers percentile/mean queries. Samples
/// are kept exactly up to `max_samples`, after which uniform reservoir
/// sampling keeps the distribution estimate unbiased while bounding memory.
class SampleDistribution {
 public:
  explicit SampleDistribution(size_t max_samples = 1 << 20,
                              uint64_t seed = 0x5EED);

  void Add(double value);

  /// Percentile in [0, 100]. Returns 0 for an empty distribution.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double Mean() const;
  double Max() const;
  double Min() const;
  size_t count() const { return total_count_; }
  bool empty() const { return total_count_ == 0; }

  void Clear();

 private:
  size_t max_samples_;
  uint64_t rng_state_;
  size_t total_count_ = 0;
  double sum_ = 0;
  double max_ = 0;
  double min_ = 0;
  mutable bool sorted_ = true;
  mutable std::vector<double> samples_;
};

/// A time series of (time, value) points, e.g. "number of VMs over time" or
/// "throughput per second bucket". Used by benches to print figure rows.
class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  void Add(SimTime t, double v) { points_.push_back({t, v}); }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Last recorded value, or `fallback` when empty.
  double Last(double fallback = 0) const {
    return points_.empty() ? fallback : points_.back().value;
  }

  /// Maximum value over the series, or 0 when empty.
  double Max() const;

  /// Averages values into fixed-width time buckets; used to downsample dense
  /// series when printing figures.
  std::vector<Point> Bucketed(SimTime bucket_width) const;

 private:
  std::vector<Point> points_;
};

/// Counts events per fixed-width time bucket (e.g. tuples per second).
class RateCounter {
 public:
  explicit RateCounter(SimTime bucket_width = kMicrosPerSecond)
      : bucket_width_(bucket_width) {}

  void Add(SimTime t, uint64_t n = 1);

  /// Per-bucket rates scaled to events/second.
  std::vector<TimeSeries::Point> RatesPerSecond() const;

  uint64_t total() const { return total_; }
  SimTime bucket_width() const { return bucket_width_; }

 private:
  SimTime bucket_width_;
  uint64_t total_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace seep

#endif  // SEEP_COMMON_STATS_H_
