#ifndef SEEP_COMMON_LOGGING_H_
#define SEEP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/time.h"

namespace seep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Benches raise this to
/// kWarn so figure output stays clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Builds one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, SimTime sim_time);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

// Logging with a simulated timestamp, e.g.:
//   SEEP_LOG(kInfo, now) << "scaled out operator " << id;
#define SEEP_LOG(level, sim_time)                                       \
  if (::seep::LogLevel::level >= ::seep::GetLogLevel())                 \
  ::seep::internal_logging::LogMessage(::seep::LogLevel::level,         \
                                       __FILE__, __LINE__, (sim_time))

}  // namespace seep

#endif  // SEEP_COMMON_LOGGING_H_
