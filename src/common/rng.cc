#include "common/rng.h"

#include <cmath>

namespace seep {

double Rng::NextExponential(double mean) {
  // Inverse-CDF sampling; clamp the uniform away from 0 to avoid log(0).
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  SEEP_CHECK_GT(n, 0u);
  if (n == 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) over ranks
  // 1..n, returned zero-based.
  const double e = 1.0 - s;
  auto h_integral = [&](double x) {
    if (std::abs(e) < 1e-12) return std::log(x);
    return (std::pow(x, e) - 1.0) / e;
  };
  auto h_integral_inverse = [&](double y) {
    if (std::abs(e) < 1e-12) return std::exp(y);
    return std::pow(1.0 + e * y, 1.0 / e);
  };
  auto h = [&](double x) { return std::pow(x, -s); };

  const double h_x1 = h_integral(1.5) - h(1.0);
  const double h_n = h_integral(static_cast<double>(n) + 0.5);
  const double h_half = h_integral(0.5);

  while (true) {
    const double u = h_half + NextDouble() * (h_n - h_half);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n)) k = static_cast<double>(n);
    if (k - x <= h_x1 || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

}  // namespace seep
