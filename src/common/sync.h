#ifndef SEEP_COMMON_SYNC_H_
#define SEEP_COMMON_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/macros.h"

/// Compile-time concurrency discipline for the whole repo (clang Thread
/// Safety Analysis, per Hickman et al., "C/C++ Thread Safety Analysis").
///
/// Every mutex, condition variable and cross-thread field in the codebase
/// goes through this header: the wrappers carry capability annotations, so
/// a clang build with -DSEEP_TSA=ON (-Werror=thread-safety) rejects lock
/// discipline violations at compile time — a guarded field read without its
/// mutex, a loop-confined method called off the loop thread, a capability
/// released twice. Under gcc the annotations expand to nothing and only the
/// runtime checks (AssertHeld / AssertOnThread) remain.
///
/// Two kinds of capability live here:
///
///  * Lock capabilities — `Mutex`, acquired with `MutexLock` and named by
///    `SEEP_GUARDED_BY(mu_)` annotations on the fields it protects. The
///    acquisition order between mutexes is recorded in
///    tools/lock_order.json, which tools/lint_concurrency.py verifies
///    acyclic.
///
///  * Thread-affinity capabilities — phantom capabilities that model "runs
///    on thread X" as a capability the thread's entry point adopts. The
///    repo has three thread roles (DESIGN.md §8): the simulation driver
///    thread (`DriverThread` — all protocol state), the net event-loop
///    threads (`LoopThread` — per-VM epoll reactors), and the background
///    checkpoint serializers (`CkptWorkerThread`). A function annotated
///    `SEEP_RUN_ON(DriverThread)` is compile-time rejected when called from
///    a context that does not hold the capability, and
///    `Role.AssertOnThread()` backs the static claim with a runtime check.

// ---------------------------------------------------------------- attributes

#if defined(__clang__) && !defined(SEEP_NO_THREAD_SAFETY_ANALYSIS_MODE)
#define SEEP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SEEP_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lockable, or a phantom such as a
/// thread role). The string names the capability kind in diagnostics.
#define SEEP_CAPABILITY(x) SEEP_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SEEP_SCOPED_CAPABILITY SEEP_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be accessed while holding capability `x`.
#define SEEP_GUARDED_BY(x) SEEP_THREAD_ANNOTATION_(guarded_by(x))

/// The annotated pointer/smart-pointer field may be *dereferenced* only
/// while holding capability `x` (the pointer itself is unguarded).
#define SEEP_PT_GUARDED_BY(x) SEEP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function may only be called while holding the listed
/// capabilities; it does not acquire or release them.
#define SEEP_REQUIRES(...) \
  SEEP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SEEP_REQUIRES_SHARED(...) \
  SEEP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires / releases the listed capabilities.
#define SEEP_ACQUIRE(...) \
  SEEP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SEEP_RELEASE(...) \
  SEEP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SEEP_TRY_ACQUIRE(...) \
  SEEP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called while holding the listed
/// capabilities (deadlock prevention: it acquires them itself, or sleeps).
#define SEEP_EXCLUDES(...) SEEP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// States (to the analysis and at runtime) that the capability is held.
/// This is how code that the analysis cannot follow across threads —
/// lambdas posted to an event loop, simulation events, condition-variable
/// wait predicates — re-establishes the capability on re-entry.
#define SEEP_ASSERT_CAPABILITY(x) \
  SEEP_THREAD_ANNOTATION_(assert_capability(x))

/// The annotated function returns a reference to the named capability.
#define SEEP_RETURN_CAPABILITY(x) SEEP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only in the
/// sync primitives themselves.
#define SEEP_NO_THREAD_SAFETY_ANALYSIS \
  SEEP_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Thread-affinity shorthand: the annotated function runs only on threads
/// holding `role` (one of DriverThread / LoopThread / CkptWorkerThread).
#define SEEP_RUN_ON(role) SEEP_REQUIRES(role)

/// Written waiver for a field in a thread-spawning TU that deliberately
/// carries no capability annotation. The reason is mandatory and checked by
/// tools/lint_concurrency.py (rule waiver-needs-reason); typical reasons
/// are "set before the thread starts, immutable afterwards" or "owned
/// exclusively by the harness thread". Expands to nothing.
#define SEEP_UNGUARDED(reason)

namespace seep::sync {

// ------------------------------------------------------------------- Mutex

/// An annotated std::mutex. Lock/Unlock track the holding thread so
/// AssertHeld() is a real runtime check (always on: one relaxed atomic
/// store per lock/unlock, noise next to the lock itself), and the
/// SEEP_ACQUIRE/SEEP_RELEASE annotations make the clang analysis track the
/// capability statically.
class SEEP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SEEP_ACQUIRE() {
    mu_.lock();
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() SEEP_RELEASE() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

  bool TryLock() SEEP_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }

  /// Aborts unless the calling thread holds this mutex. Statically, tells
  /// the analysis the capability is held from here on — the idiom for
  /// condition-variable wait predicates and other code the analysis cannot
  /// follow across the lock boundary.
  void AssertHeld() const SEEP_ASSERT_CAPABILITY(this) {
    SEEP_CHECK(holder_.load(std::memory_order_relaxed) ==
               std::this_thread::get_id());
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  // The thread currently inside the critical section (default id: none).
  std::atomic<std::thread::id> holder_{};
};

/// RAII lock for a Mutex (the only way the codebase takes locks — raw
/// std::lock_guard/std::unique_lock are banned by lint rule no-raw-mutex).
class SEEP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SEEP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SEEP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// ----------------------------------------------------------------- CondVar

/// Condition variable paired with Mutex. All waits require the mutex held;
/// the holder bookkeeping is handed off around the internal unlock/relock
/// so AssertHeld stays truthful inside predicates.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Atomically releases `*mu`, waits, and reacquires. Spurious wakeups
  /// happen; callers loop on their predicate (or use the predicate
  /// overloads, whose predicate runs with the mutex held — start it with
  /// `mu->AssertHeld()` so the static analysis knows).
  void Wait(Mutex* mu) SEEP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock = Adopt(mu);
    cv_.wait(lock);
    Restore(mu, &lock);
  }

  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) SEEP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock = Adopt(mu);
    cv_.wait(lock, WrapPred(mu, pred));
    Restore(mu, &lock);
  }

  /// Bounded wait; returns the predicate's value on exit.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) SEEP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock = Adopt(mu);
    const bool satisfied = cv_.wait_for(lock, timeout, WrapPred(mu, pred));
    Restore(mu, &lock);
    return satisfied;
  }

 private:
  /// Takes over the already-held native mutex for the duration of a wait.
  /// The holder mark is cleared: while the wait sleeps, the calling thread
  /// genuinely does not hold the mutex.
  static std::unique_lock<std::mutex> Adopt(Mutex* mu)
      SEEP_NO_THREAD_SAFETY_ANALYSIS {
    mu->AssertHeld();
    mu->holder_.store(std::thread::id(), std::memory_order_relaxed);
    return std::unique_lock<std::mutex>(mu->mu_, std::adopt_lock);
  }

  /// Returns the native mutex (reacquired by the wait) to the wrapper.
  static void Restore(Mutex* mu, std::unique_lock<std::mutex>* lock)
      SEEP_NO_THREAD_SAFETY_ANALYSIS {
    mu->holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lock->release();
  }

  /// Runs the caller's predicate with the holder mark set: the wait holds
  /// the native mutex whenever the predicate runs, so AssertHeld inside
  /// the predicate must succeed.
  template <typename Pred>
  auto WrapPred(Mutex* mu, Pred& pred) {
    return [mu, &pred]() SEEP_NO_THREAD_SAFETY_ANALYSIS {
      mu->holder_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
      const bool satisfied = pred();
      mu->holder_.store(std::thread::id(), std::memory_order_relaxed);
      return satisfied;
    };
  }

  std::condition_variable cv_;
};

// -------------------------------------------------------------- ThreadRole

/// A phantom capability modelling "the calling thread is one of the X
/// threads". Unlike a mutex, several threads may hold the same role at
/// once (every net event-loop thread holds LoopThread); what the
/// capability buys is the converse guarantee — code annotated
/// SEEP_RUN_ON(Role) cannot be reached from a thread that never adopted
/// the role, statically under clang and at runtime via AssertOnThread.
class SEEP_CAPABILITY("thread role") ThreadRole {
 public:
  constexpr ThreadRole(const char* name, uint32_t bit)
      : name_(name), bit_(bit) {}
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Marks the calling thread as holding this role until Drop (or forever:
  /// the simulation driver adopts DriverThread once and never drops it).
  /// Adoption is idempotent and thread-local.
  void Adopt() const SEEP_ACQUIRE(this) { tls_roles_ |= bit_; }
  void Drop() const SEEP_RELEASE(this) { tls_roles_ &= ~bit_; }

  /// Whether the calling thread holds this role.
  bool OnThread() const { return (tls_roles_ & bit_) != 0; }

  /// Aborts unless the calling thread holds this role. Statically asserts
  /// the capability — the re-entry idiom for event-loop lambdas and
  /// simulation events, mirroring Mutex::AssertHeld.
  void AssertOnThread() const SEEP_ASSERT_CAPABILITY(this) {
    if (!OnThread()) {
      std::fprintf(stderr,
                   "SEEP thread-affinity violation: current thread does not "
                   "hold role '%s'\n",
                   name_);
      std::abort();
    }
  }

  const char* name() const { return name_; }

 private:
  const char* const name_;
  const uint32_t bit_;
  // Roles held by the current thread, as a bitmask over ThreadRole bits.
  static thread_local uint32_t tls_roles_;
};

inline thread_local uint32_t ThreadRole::tls_roles_ = 0;

/// The repo's thread roles (DESIGN.md §8 maps state to roles).
inline constexpr ThreadRole DriverThread{"DriverThread", 1u << 0};
inline constexpr ThreadRole LoopThread{"LoopThread", 1u << 1};
inline constexpr ThreadRole CkptWorkerThread{"CkptWorkerThread", 1u << 2};
inline constexpr ThreadRole StoreCompactorThread{"StoreCompactorThread",
                                                 1u << 3};

/// Scoped role adoption for a thread entry point: the body of the thread
/// (or the scope that is provably confined to it) holds the role.
class SEEP_SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(const ThreadRole& role) SEEP_ACQUIRE(role)
      : role_(role) {
    role_.Adopt();
  }
  ~ScopedThreadRole() SEEP_RELEASE() { role_.Drop(); }

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  const ThreadRole& role_;
};

}  // namespace seep::sync

/// Runtime + static assertion that the enclosing code runs under `role`.
/// Place as the first statement of any function or lambda that touches
/// role-confined state but is reached through a type-erased boundary
/// (std::function, simulation event, posted task) the static analysis
/// cannot see through.
#define SEEP_ASSERT_RUN_ON(role) (role).AssertOnThread()

#endif  // SEEP_COMMON_SYNC_H_
