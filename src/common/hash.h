#ifndef SEEP_COMMON_HASH_H_
#define SEEP_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace seep {

/// 64-bit finalizer-style mixer (from MurmurHash3 / SplitMix64). Used to map
/// arbitrary integer keys onto the uniform key-hash space that routing state
/// partitions by interval (paper §2.2: "keys can be computed as a hash").
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over bytes; used to key textual payloads (e.g. words).
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  // Final mix so short strings spread across the full key interval.
  return Mix64(h);
}

/// Combines two hashes (boost::hash_combine-style).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

}  // namespace seep

#endif  // SEEP_COMMON_HASH_H_
