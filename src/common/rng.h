#ifndef SEEP_COMMON_RNG_H_
#define SEEP_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace seep {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every source of randomness in the library draws from an Rng
/// whose seed flows from the top-level configuration, so a (config, seed)
/// pair fully determines a run.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state, as recommended
    // by the xoshiro authors to avoid correlated low-entropy states.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    SEEP_CHECK_GT(bound, 0u);
    // Rejection-free multiply-shift mapping (Lemire); slight modulo bias is
    // acceptable for workload generation.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean);

  /// Zipf-distributed integer in [0, n) with skew parameter `s`.
  /// Uses the rejection-inversion method of Hörmann/Derflinger so sampling is
  /// O(1) without precomputing the harmonic table.
  uint64_t NextZipf(uint64_t n, double s);

  /// Creates an independent child generator; used to give each simulated
  /// entity its own stream so entity creation order does not perturb others.
  Rng Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFull); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace seep

#endif  // SEEP_COMMON_RNG_H_
