#include "common/logging.h"

#include <cstdio>

namespace seep {

namespace {
LogLevel g_log_level = LogLevel::kWarn;
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       SimTime sim_time)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " t=" << SimToSeconds(sim_time)
          << "s] ";
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace seep
