#ifndef SEEP_COMMON_TIME_H_
#define SEEP_COMMON_TIME_H_

#include <cstdint>

namespace seep {

/// Simulated time in microseconds since simulation start. All timing in the
/// library is expressed in SimTime; there is no wall-clock dependence, which
/// is what makes runs bit-reproducible.
using SimTime = int64_t;

inline constexpr SimTime kMicrosPerMilli = 1'000;
inline constexpr SimTime kMicrosPerSecond = 1'000'000;

/// Converts seconds (possibly fractional) to SimTime microseconds.
constexpr SimTime SecondsToSim(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kMicrosPerSecond));
}

/// Converts SimTime microseconds to fractional seconds.
constexpr double SimToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}

/// Converts milliseconds to SimTime microseconds.
constexpr SimTime MillisToSim(double millis) {
  return static_cast<SimTime>(millis * static_cast<double>(kMicrosPerMilli));
}

/// Converts SimTime microseconds to fractional milliseconds.
constexpr double SimToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerMilli);
}

}  // namespace seep

#endif  // SEEP_COMMON_TIME_H_
