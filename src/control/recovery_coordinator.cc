#include "control/recovery_coordinator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/sync.h"
#include "control/reconfig_plan.h"
#include "runtime/operator_instance.h"

namespace seep::control {

void RecoveryCoordinator::Start() {
  if (!detector_config_.enabled) return;
  cluster_->simulation()->Schedule(detector_config_.heartbeat_interval,
                                   [this]() {
                                     SEEP_ASSERT_RUN_ON(sync::DriverThread);
                                     Poll();
                                     Start();
                                   });
}

void RecoveryCoordinator::Poll() {
  for (const auto& [id, inst] : cluster_->instances()) {
    if (inst->alive() || inst->stopped() || handled_.contains(id)) continue;
    // Only current members of an operator need recovery; retired tombstones
    // were already replaced.
    const auto members = cluster_->InstancesOf(inst->op());
    if (std::find(members.begin(), members.end(), id) == members.end()) {
      continue;
    }
    if (++missed_[id] < detector_config_.missed_heartbeats) continue;
    handled_.insert(id);
    Recover(id);
  }
}

void RecoveryCoordinator::Recover(InstanceId failed) {
  runtime::OperatorInstance* inst = cluster_->GetInstance(failed);
  if (inst == nullptr || inst->alive()) return;
  handled_.insert(failed);

  runtime::RecoveryEvent event;
  event.op = inst->op();
  event.failed_instance = failed;
  event.failed_at = inst->died_at();
  event.detected_at = cluster_->Now();
  event.parallelism = recovery_config_.parallelism;
  cluster_->metrics()->recoveries.push_back(event);
  const size_t index = cluster_->metrics()->recoveries.size() - 1;

  SEEP_LOG(kInfo, cluster_->Now())
      << "recovering instance " << failed << " of op '"
      << inst->spec().name << "'";

  switch (cluster_->config().ft_mode) {
    case runtime::FaultToleranceMode::kStateManagement:
      RecoverStateManagement(failed, index);
      break;
    case runtime::FaultToleranceMode::kUpstreamBackup:
      RecoverReplayBased(failed, index, /*source_replay=*/false);
      break;
    case runtime::FaultToleranceMode::kSourceReplay:
      RecoverReplayBased(failed, index, /*source_replay=*/true);
      break;
    case runtime::FaultToleranceMode::kNone:
      break;  // no recovery; the query stays degraded
  }
}

void RecoveryCoordinator::RecoverStateManagement(InstanceId failed,
                                                 size_t event_index) {
  // The paper's integrated path: recovery IS scale-out, at parallelism 1
  // (serial) or >= 2 (parallel recovery).
  ScaleOutCoordinator::Callbacks callbacks;
  auto* metrics = cluster_->metrics();
  callbacks.on_restored = [metrics, event_index](SimTime at) {
    metrics->recoveries[event_index].restored_at = at;
  };
  callbacks.on_caught_up = [metrics, event_index](SimTime at) {
    metrics->recoveries[event_index].caught_up_at = at;
  };
  callbacks.on_done = [this, failed, event_index](Status status) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    if (status.ok()) return;
    // Abort (e.g. another operation in flight, or the backup holder also
    // failed): retry shortly, per the paper's §4.3 discussion. The plan's
    // compensations already rolled the cluster back to a clean state.
    cluster_->simulation()->Schedule(SecondsToSim(1), [this, failed,
                                                       event_index]() {
      SEEP_ASSERT_RUN_ON(sync::DriverThread);
      RecoverStateManagement(failed, event_index);
    });
  };
  coordinator_->ScaleOutInstance(failed, recovery_config_.parallelism,
                                 /*recovery=*/true, std::move(callbacks));
}

void RecoveryCoordinator::RecoverReplayBased(InstanceId failed,
                                             size_t event_index,
                                             bool source_replay) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  // The replay-based baselines (Fig. 11) share one plan shape: deploy a
  // replacement with the dead instance's key range, retire the corpse,
  // reroute, then rebuild state by replay — from every upstream buffer
  // (upstream backup) or from the sources' full history (source replay).
  runtime::OperatorInstance* dead = cluster_->GetInstance(failed);
  auto* metrics = cluster_->metrics();

  ReconfigPlan plan;
  plan.op = dead->op();
  plan.label = source_replay ? "source-replay-recovery"
                             : "upstream-backup-recovery";
  plan.ctx = std::make_shared<PlanContext>();
  plan.ctx->target = failed;
  plan.ctx->recovery = true;
  plan.ctx->replacement_range = dead->key_range();
  plan.ctx->on_restored = [metrics, event_index](SimTime at) {
    metrics->recoveries[event_index].restored_at = at;
  };
  plan.ctx->on_caught_up = [metrics, event_index](SimTime at) {
    metrics->recoveries[event_index].caught_up_at = at;
  };
  plan.stages = {
      AcquireVmsStage(1, /*pre_delay=*/0, /*deadline=*/0),
      DeployReplacementStage(),
      RerouteRetireFailedStage(),
      source_replay ? SourceReplayStage() : ReplayUpstreamBuffersStage(),
      CommitRecoveryStage(),
  };
  coordinator_->executor()->Run(
      std::move(plan), [this, failed, event_index,
                        source_replay](Status status) {
        SEEP_ASSERT_RUN_ON(sync::DriverThread);
        if (status.ok()) return;
        // Refused (another plan owns the operator) or compensated: retry
        // once the conflicting reconfiguration finished.
        cluster_->simulation()->Schedule(
            SecondsToSim(1), [this, failed, event_index, source_replay]() {
              SEEP_ASSERT_RUN_ON(sync::DriverThread);
              RecoverReplayBased(failed, event_index, source_replay);
            });
      });
}

}  // namespace seep::control
