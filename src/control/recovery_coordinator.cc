#include "control/recovery_coordinator.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/operator_instance.h"

namespace seep::control {

void RecoveryCoordinator::Start() {
  if (!detector_config_.enabled) return;
  cluster_->simulation()->Schedule(detector_config_.heartbeat_interval,
                                   [this]() {
                                     Poll();
                                     Start();
                                   });
}

void RecoveryCoordinator::Poll() {
  for (const auto& [id, inst] : cluster_->instances()) {
    if (inst->alive() || inst->stopped() || handled_.contains(id)) continue;
    // Only current members of an operator need recovery; retired tombstones
    // were already replaced.
    const auto members = cluster_->InstancesOf(inst->op());
    if (std::find(members.begin(), members.end(), id) == members.end()) {
      continue;
    }
    if (++missed_[id] < detector_config_.missed_heartbeats) continue;
    handled_.insert(id);
    Recover(id);
  }
}

void RecoveryCoordinator::Recover(InstanceId failed) {
  runtime::OperatorInstance* inst = cluster_->GetInstance(failed);
  if (inst == nullptr || inst->alive()) return;
  handled_.insert(failed);

  runtime::RecoveryEvent event;
  event.op = inst->op();
  event.failed_instance = failed;
  event.failed_at = inst->died_at();
  event.detected_at = cluster_->Now();
  event.parallelism = recovery_config_.parallelism;
  cluster_->metrics()->recoveries.push_back(event);
  const size_t index = cluster_->metrics()->recoveries.size() - 1;

  SEEP_LOG(kInfo, cluster_->Now())
      << "recovering instance " << failed << " of op '"
      << inst->spec().name << "'";

  switch (cluster_->config().ft_mode) {
    case runtime::FaultToleranceMode::kStateManagement:
      RecoverStateManagement(failed, index);
      break;
    case runtime::FaultToleranceMode::kUpstreamBackup:
      RecoverUpstreamBackup(failed, index);
      break;
    case runtime::FaultToleranceMode::kSourceReplay:
      RecoverSourceReplay(failed, index);
      break;
    case runtime::FaultToleranceMode::kNone:
      break;  // no recovery; the query stays degraded
  }
}

void RecoveryCoordinator::RecoverStateManagement(InstanceId failed,
                                                 size_t event_index) {
  // The paper's integrated path: recovery IS scale-out, at parallelism 1
  // (serial) or >= 2 (parallel recovery).
  ScaleOutCoordinator::Callbacks callbacks;
  auto* metrics = cluster_->metrics();
  callbacks.on_restored = [metrics, event_index](SimTime at) {
    metrics->recoveries[event_index].restored_at = at;
  };
  callbacks.on_caught_up = [metrics, event_index](SimTime at) {
    metrics->recoveries[event_index].caught_up_at = at;
  };
  callbacks.on_done = [this, failed, event_index](Status status) {
    if (status.ok()) return;
    // Abort (e.g. another operation in flight, or the backup holder also
    // failed): retry shortly, per the paper's §4.3 discussion.
    cluster_->simulation()->Schedule(SecondsToSim(1), [this, failed,
                                                       event_index]() {
      RecoverStateManagement(failed, event_index);
    });
  };
  coordinator_->ScaleOutInstance(failed, recovery_config_.parallelism,
                                 /*recovery=*/true, std::move(callbacks));
}

void RecoveryCoordinator::RecoverUpstreamBackup(InstanceId failed,
                                                size_t event_index) {
  runtime::OperatorInstance* dead = cluster_->GetInstance(failed);
  const OperatorId op = dead->op();
  const core::KeyRange range = dead->key_range();
  auto* metrics = cluster_->metrics();

  cluster_->pool()->Acquire([this, op, range, failed, event_index,
                             metrics](VmId vm) {
    auto deployed = cluster_->membership()->DeployInstance(op, vm, range);
    SEEP_CHECK(deployed.ok());
    const InstanceId new_id = deployed.value();
    runtime::OperatorInstance* inst = cluster_->GetInstance(new_id);
    inst->Start();
    metrics->recoveries[event_index].restored_at = cluster_->Now();

    cluster_->membership()->RetireInstance(failed, /*release_vm=*/false);
    std::vector<core::RoutingState::Route> routes;
    for (InstanceId id : cluster_->InstancesOf(op)) {
      routes.push_back({cluster_->GetInstance(id)->key_range(), id});
    }
    cluster_->InstallRoutes(op, std::move(routes));

    // Upstream backup: every upstream instance replays its (window-length)
    // buffer; the replacement rebuilds state by re-processing it all.
    std::vector<InstanceId> upstream = cluster_->UpstreamInstancesOf(op);
    const uint64_t fence = cluster_->fences()->Register(
        static_cast<int>(upstream.size()), {new_id},
        [metrics, event_index](SimTime at) {
          metrics->recoveries[event_index].caught_up_at = at;
        });
    for (InstanceId uid : upstream) {
      cluster_->GetInstance(uid)->ReplayBuffer(op, INT64_MIN, {new_id},
                                               fence);
    }
  });
}

void RecoveryCoordinator::RecoverSourceReplay(InstanceId failed,
                                              size_t event_index) {
  runtime::OperatorInstance* dead = cluster_->GetInstance(failed);
  const OperatorId op = dead->op();
  const core::KeyRange range = dead->key_range();
  auto* metrics = cluster_->metrics();

  cluster_->pool()->Acquire([this, op, range, failed, event_index,
                             metrics](VmId vm) {
    auto deployed = cluster_->membership()->DeployInstance(op, vm, range);
    SEEP_CHECK(deployed.ok());
    const InstanceId new_id = deployed.value();
    cluster_->GetInstance(new_id)->Start();
    metrics->recoveries[event_index].restored_at = cluster_->Now();

    cluster_->membership()->RetireInstance(failed, /*release_vm=*/false);
    std::vector<core::RoutingState::Route> routes;
    for (InstanceId id : cluster_->InstancesOf(op)) {
      routes.push_back({cluster_->GetInstance(id)->key_range(), id});
    }
    cluster_->InstallRoutes(op, std::move(routes));

    // Source replay: pause generation, reset the whole pipeline, and
    // recompute everything from the sources' buffered history [29].
    std::vector<InstanceId> source_instances;
    for (const auto& [id, inst] : cluster_->instances()) {
      if (!inst->alive() || inst->stopped()) continue;
      if (inst->spec().kind == core::VertexKind::kSource) {
        inst->Pause();
        source_instances.push_back(id);
      } else if (inst->spec().kind == core::VertexKind::kOperator) {
        inst->ResetEmpty(cluster_->NewOrigin());
      }
    }

    const int expected = ExpectedSourceFences(op);
    const uint64_t fence = cluster_->fences()->Register(
        expected, {new_id},
        [this, metrics, event_index, source_instances](SimTime at) {
          metrics->recoveries[event_index].caught_up_at = at;
          for (InstanceId sid : source_instances) {
            runtime::OperatorInstance* s = cluster_->GetInstance(sid);
            if (s != nullptr) s->Resume();
          }
        });
    for (InstanceId sid : source_instances) {
      runtime::OperatorInstance* s = cluster_->GetInstance(sid);
      for (OperatorId down : cluster_->graph()->Downstream(s->op())) {
        s->ReplayBuffer(down, INT64_MIN, cluster_->LiveInstancesOf(down),
                        fence);
      }
    }
  });
}

int RecoveryCoordinator::ExpectedSourceFences(OperatorId target_op) const {
  // Fences multiply at each hop: a processed fence is forwarded to every
  // live instance of every downstream operator. outflow(u) is the number of
  // fences each downstream *instance* of u will receive from u's side.
  const core::QueryGraph* graph = cluster_->graph();
  std::map<OperatorId, int> outflow;
  for (OperatorId id : graph->TopologicalOrder()) {
    const core::OperatorSpec* spec = graph->Get(id);
    if (spec->kind == core::VertexKind::kSource) {
      outflow[id] = static_cast<int>(cluster_->LiveInstancesOf(id).size());
      continue;
    }
    int arriving_per_instance = 0;
    for (OperatorId up : graph->Upstream(id)) {
      arriving_per_instance += outflow[up];
    }
    if (id == target_op) return arriving_per_instance;
    // Every instance of this operator forwards each fence it processes.
    outflow[id] = arriving_per_instance *
                  static_cast<int>(cluster_->LiveInstancesOf(id).size());
  }
  return 0;
}

}  // namespace seep::control
