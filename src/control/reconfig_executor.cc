#include "control/reconfig_executor.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "verify/invariant_auditor.h"

namespace seep::control {

void ReconfigExecutor::Run(ReconfigPlan plan,
                           std::function<void(Status)> on_done) {
  SEEP_CHECK(plan.ctx != nullptr);
  SEEP_CHECK(!plan.stages.empty());
  if (active_ops_.contains(plan.op)) {
    if (on_done) on_done(Status::Aborted("operation already in progress"));
    return;
  }
  const uint64_t plan_id = next_plan_id_++;
  plan.ctx->cluster = cluster_;
  plan.ctx->plan_id = plan_id;
  plan.ctx->op = plan.op;
  active_ops_.insert(plan.op);

  RunState run;
  run.ctx = plan.ctx;
  run.stages = std::move(plan.stages);
  run.on_done = std::move(on_done);
  run.event.plan_id = plan_id;
  run.event.op = plan.op;
  run.event.label = plan.label;
  run.event.started = cluster_->Now();
  runs_.emplace(plan_id, std::move(run));

  if (auto* audit = cluster_->audit()) {
    audit->OnPlanStarted(plan_id, plan.op);
  }
  StartStage(plan_id);
}

void ReconfigExecutor::StartStage(uint64_t plan_id) {
  auto it = runs_.find(plan_id);
  SEEP_CHECK(it != runs_.end());
  RunState& run = it->second;
  if (run.stage >= run.stages.size()) {
    Finish(plan_id, Status::OK(), /*aborted=*/false);
    return;
  }
  const ReconfigStage& stage = run.stages[run.stage];
  const uint64_t epoch = ++run.epoch;
  run.stage_started = cluster_->Now();
  if (stage.deadline > 0) {
    cluster_->simulation()->Schedule(stage.deadline, [this, plan_id, epoch]() {
      SEEP_ASSERT_RUN_ON(sync::DriverThread);
      auto rit = runs_.find(plan_id);
      if (rit == runs_.end() || rit->second.epoch != epoch) return;
      const StageKind kind = rit->second.stages[rit->second.stage].kind;
      CompleteStage(plan_id, epoch,
                    Status::Unavailable(
                        std::string("reconfiguration stage '") +
                        StageKindName(kind) + "' exceeded its deadline"));
    });
  }
  // Copies: the forward action may complete the whole plan synchronously,
  // erasing the run (and with it `stage` and `run.ctx`) while still on this
  // stack frame.
  auto forward = stage.forward;
  auto ctx = run.ctx;
  SEEP_CHECK(forward != nullptr);
  forward(ctx, [this, plan_id, epoch](Status status) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    CompleteStage(plan_id, epoch, std::move(status));
  });
}

void ReconfigExecutor::CompleteStage(uint64_t plan_id, uint64_t epoch,
                                     Status status) {
  auto it = runs_.find(plan_id);
  if (it == runs_.end() || it->second.epoch != epoch) return;  // stale
  RunState& run = it->second;
  runtime::ReconfigStageTiming timing;
  timing.stage = StageKindName(run.stages[run.stage].kind);
  timing.started = run.stage_started;
  timing.ended = cluster_->Now();
  run.event.stages.push_back(std::move(timing));
  if (!status.ok()) {
    Abort(plan_id, std::move(status));
    return;
  }
  ++run.stage;
  StartStage(plan_id);
}

void ReconfigExecutor::Abort(uint64_t plan_id, Status status) {
  RunState& run = runs_.at(plan_id);
  // In-flight continuations (pool grants, shipped-state deliveries, drain
  // polls) observe the dead context and resolve without effect; pending
  // deadline timers see a stale epoch.
  run.ctx->active = false;
  ++run.epoch;
  // Compensate the failed stage and every completed stage, in reverse.
  // Compensations are idempotent over partial forward progress, so the
  // failed stage's own partial work is undone too.
  for (size_t i = run.stage + 1; i-- > 0;) {
    if (run.stages[i].compensate) run.stages[i].compensate(*run.ctx);
  }
  Finish(plan_id, std::move(status), /*aborted=*/true);
}

void ReconfigExecutor::Finish(uint64_t plan_id, Status status, bool aborted) {
  auto it = runs_.find(plan_id);
  SEEP_CHECK(it != runs_.end());
  RunState& run = it->second;
  run.ctx->active = false;
  run.event.aborted = aborted;
  run.event.status = status.ToString();
  run.event.ended = cluster_->Now();
  cluster_->metrics()->reconfig_plans.push_back(std::move(run.event));
  if (auto* audit = cluster_->audit()) {
    audit->OnPlanFinished(plan_id, run.ctx->op, aborted);
  }
  if (aborted) {
    ++aborted_;
  } else {
    ++committed_;
  }
  active_ops_.erase(run.ctx->op);
  auto on_done = std::move(run.on_done);
  runs_.erase(it);
  if (on_done) on_done(std::move(status));
}

}  // namespace seep::control
