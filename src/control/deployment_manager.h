#ifndef SEEP_CONTROL_DEPLOYMENT_MANAGER_H_
#define SEEP_CONTROL_DEPLOYMENT_MANAGER_H_

#include <map>

#include "common/status.h"
#include "runtime/cluster.h"

namespace seep::control {

/// Maps the logical query graph onto VMs and starts processing (paper §5:
/// "the execution graph is used by a deployment manager to initialise VMs,
/// deploy operators, set up stream communication and start processing").
/// Initial deployment provisions VMs synchronously — it happens before the
/// measured run — and pre-fills the VM pool.
class DeploymentManager {
 public:
  explicit DeploymentManager(runtime::Cluster* cluster) : cluster_(cluster) {}

  /// Deploys the execution graph, sets routing, and starts everything.
  /// By default each logical operator gets one instance (paper §2.2:
  /// initially "the execution graph has one operator for each logical
  /// operator"); `initial_parallelism` overrides this per operator with an
  /// even key-range split — the static/manual deployment of the Fig. 10
  /// experiment. Sources deploy their configured source_parallelism.
  [[nodiscard]] Status DeployAll(
      const std::map<OperatorId, uint32_t>& initial_parallelism = {});

 private:
  runtime::Cluster* cluster_;
};

}  // namespace seep::control

#endif  // SEEP_CONTROL_DEPLOYMENT_MANAGER_H_
