#ifndef SEEP_CONTROL_RECONFIG_EXECUTOR_H_
#define SEEP_CONTROL_RECONFIG_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "control/reconfig_plan.h"
#include "runtime/cluster.h"
#include "runtime/metrics.h"

namespace seep::control {

/// Runs ReconfigPlans: stages execute in order, each under its optional
/// deadline; on any stage failure or timeout the executor runs the
/// compensations of the failed stage and every completed stage in reverse
/// order, then reports the (retryable) failure. Stage transitions are
/// synchronous — when a stage completes, the next stage's forward action
/// runs in the same simulation event, so a plan adds no scheduling points
/// beyond the ones its stages explicitly take (the refactor is
/// behavior-preserving on fault-free runs).
///
/// The executor admits at most one plan per operator at a time (a second
/// plan is refused with a retryable Aborted status), records per-stage
/// timing into MetricsRegistry::reconfig_plans, and reports the plan
/// lifecycle to the InvariantAuditor (one-plan-per-operator, no-leaked-vm,
/// checkpoints-resumed-after-abort, routes-restored-on-abort).
class ReconfigExecutor {
 public:
  explicit ReconfigExecutor(runtime::Cluster* cluster) : cluster_(cluster) {}

  ReconfigExecutor(const ReconfigExecutor&) = delete;
  ReconfigExecutor& operator=(const ReconfigExecutor&) = delete;

  /// Starts `plan`. `on_done` fires exactly once: OK after the commit stage,
  /// or the failing stage's status after all compensations ran.
  void Run(ReconfigPlan plan, std::function<void(Status)> on_done)
      SEEP_RUN_ON(sync::DriverThread);

  /// True while a plan for `op` is running.
  bool InProgress(OperatorId op) const SEEP_RUN_ON(sync::DriverThread) {
    return active_ops_.contains(op);
  }

  size_t committed_plans() const SEEP_RUN_ON(sync::DriverThread) {
    return committed_;
  }
  size_t aborted_plans() const SEEP_RUN_ON(sync::DriverThread) {
    return aborted_;
  }

 private:
  struct RunState {
    std::shared_ptr<PlanContext> ctx;
    std::vector<ReconfigStage> stages;
    std::function<void(Status)> on_done;
    size_t stage = 0;
    /// Bumped at each stage start; a deadline timer or late completion
    /// carrying a stale epoch is ignored.
    uint64_t epoch = 0;
    SimTime stage_started = 0;
    runtime::ReconfigPlanEvent event;
  };

  void StartStage(uint64_t plan_id) SEEP_RUN_ON(sync::DriverThread);
  void CompleteStage(uint64_t plan_id, uint64_t epoch, Status status)
      SEEP_RUN_ON(sync::DriverThread);
  void Abort(uint64_t plan_id, Status status)
      SEEP_RUN_ON(sync::DriverThread);
  void Finish(uint64_t plan_id, Status status, bool aborted)
      SEEP_RUN_ON(sync::DriverThread);

  runtime::Cluster* cluster_;
  uint64_t next_plan_id_ SEEP_GUARDED_BY(sync::DriverThread) = 1;
  std::map<uint64_t, RunState> runs_ SEEP_GUARDED_BY(sync::DriverThread);
  std::set<OperatorId> active_ops_ SEEP_GUARDED_BY(sync::DriverThread);
  size_t committed_ SEEP_GUARDED_BY(sync::DriverThread) = 0;
  size_t aborted_ SEEP_GUARDED_BY(sync::DriverThread) = 0;
};

}  // namespace seep::control

#endif  // SEEP_CONTROL_RECONFIG_EXECUTOR_H_
