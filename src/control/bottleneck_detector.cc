#include "control/bottleneck_detector.h"

#include "common/logging.h"
#include "runtime/operator_instance.h"

namespace seep::control {

void BottleneckDetector::Start() {
  if (!config_.enabled) return;
  cluster_->simulation()->Schedule(config_.report_interval, [this]() {
    CollectReports();
    Start();
  });
}

void BottleneckDetector::CollectReports() {
  const double interval_us = static_cast<double>(config_.report_interval);
  size_t vms_in_use = 0;
  for (const auto& [id, inst] : cluster_->instances()) {
    if (inst->alive() && !inst->stopped()) ++vms_in_use;
  }

  // Aggregate the CPU reports per logical operator (paper §5.1: "when k
  // consecutive reports from an operator are above a threshold δ"). Scaling
  // on the operator's AVERAGE utilisation is self-damping: the transient
  // 100% catch-up burn of a freshly split partition barely moves the
  // average, whereas a genuinely rising workload lifts every partition.
  std::map<OperatorId, OpLoad> op_loads;

  for (const auto& [id, inst] : cluster_->instances()) {
    if (!inst->alive() || inst->stopped()) continue;
    const double utilization = inst->TakeBusyMicros() / interval_us;
    if (!inst->spec().scalable) continue;
    OpLoad& load = op_loads[inst->op()];
    load.total_util += utilization;
    ++load.partitions;
    if (utilization >= load.max_util) {
      load.max_util = utilization;
      load.hottest = id;
    }
  }

  for (const auto& [op, load] : op_loads) {
    const double avg_util =
        load.total_util / static_cast<double>(load.partitions);
    int& above = consecutive_above_[op];
    if (avg_util > config_.threshold ||
        load.max_util > config_.saturation_threshold) {
      ++above;
    } else {
      above = 0;
      continue;
    }
    if (above < config_.consecutive_reports) continue;
    if (coordinator_->InProgress(op)) continue;
    if (vms_in_use >= config_.max_vms) continue;
    auto last = last_scale_out_.find(op);
    if (last != last_scale_out_.end() &&
        cluster_->Now() - last->second < config_.per_op_cooldown) {
      continue;
    }
    last_scale_out_[op] = cluster_->Now();
    above = 0;
    ++requests_;
    ++vms_in_use;
    SEEP_LOG(kInfo, cluster_->Now())
        << "bottleneck: op " << op << " at " << avg_util * 100
        << "% average CPU over " << load.partitions
        << " partitions; scaling out instance " << load.hottest;
    // Partition the hottest instance (Fig. 3's incremental refinement).
    coordinator_->ScaleOutInstance(load.hottest, /*pi=*/2,
                                   /*recovery=*/false);
  }

  if (config_.scale_in_enabled) ConsiderScaleIn(op_loads);
}

void BottleneckDetector::ConsiderScaleIn(
    const std::map<OperatorId, OpLoad>& op_loads) {
  for (const auto& [op, load] : op_loads) {
    const auto& [total_util, max_util, partitions, hottest] = load;
    if (partitions < 2 || max_util >= config_.scale_in_threshold) {
      consecutive_idle_[op] = 0;
      continue;
    }
    if (++consecutive_idle_[op] < config_.scale_in_consecutive) continue;
    if (coordinator_->InProgress(op)) continue;
    consecutive_idle_[op] = 0;
    ++scale_in_requests_;
    SEEP_LOG(kInfo, cluster_->Now())
        << "op " << op << " under-utilised (" << max_util * 100
        << "% max across " << partitions << " partitions); scaling in";
    coordinator_->ScaleIn(op);
  }
}

}  // namespace seep::control
