#ifndef SEEP_CONTROL_BOTTLENECK_DETECTOR_H_
#define SEEP_CONTROL_BOTTLENECK_DETECTOR_H_

#include <map>

#include "control/scale_out_coordinator.h"
#include "runtime/cluster.h"

namespace seep::control {

/// The paper's scaling policy (§5.1): CPU-utilisation reports every r
/// seconds; an operator instance whose utilisation exceeds δ for k
/// consecutive reports is a bottleneck and gets partitioned.
struct ScalingPolicyConfig {
  SimTime report_interval = SecondsToSim(5);  // r
  int consecutive_reports = 2;                // k
  double threshold = 0.70;                    // δ
  /// Secondary per-instance trigger: even when the operator's average is
  /// healthy, one saturated partition (repeated binary splits leave ranges
  /// of unequal width) is a real bottleneck and must be split.
  double saturation_threshold = 0.95;
  /// Hard cap on VMs hosting instances (cluster budget).
  size_t max_vms = 80;
  /// Minimum time between successive scale-outs of the same operator.
  /// Right after a split, the new partitions run at 100% CPU while they
  /// catch up on replayed tuples; without a cooldown this transient load
  /// masquerades as a persistent bottleneck and triggers a split storm.
  SimTime per_op_cooldown = SecondsToSim(15);
  bool enabled = true;

  /// Elastic scale-in (the paper's §8 future work): when EVERY partition of
  /// an operator stays below `scale_in_threshold` for
  /// `scale_in_consecutive` reports, two adjacent partitions are merged and
  /// a VM released. The merged partition's load is the sum of two, so the
  /// threshold must be below half the scale-out threshold to avoid
  /// oscillation.
  bool scale_in_enabled = false;
  double scale_in_threshold = 0.25;
  int scale_in_consecutive = 6;
};

/// Collects per-instance CPU utilisation reports and drives the scale-out
/// coordinator when a compute bottleneck is detected.
class BottleneckDetector {
 public:
  BottleneckDetector(runtime::Cluster* cluster,
                     ScaleOutCoordinator* coordinator,
                     ScalingPolicyConfig config)
      : cluster_(cluster), coordinator_(coordinator), config_(config) {}

  /// Starts the periodic report collection loop.
  void Start();

  size_t scale_out_requests() const { return requests_; }
  size_t scale_in_requests() const { return scale_in_requests_; }

 private:
  /// One report round's aggregated load of a logical operator.
  struct OpLoad {
    double total_util = 0;
    double max_util = 0;
    size_t partitions = 0;
    InstanceId hottest = kInvalidInstance;
  };

  void CollectReports();
  void ConsiderScaleIn(const std::map<OperatorId, OpLoad>& op_loads);

  runtime::Cluster* cluster_;
  ScaleOutCoordinator* coordinator_;
  ScalingPolicyConfig config_;
  std::map<OperatorId, int> consecutive_above_;
  std::map<OperatorId, int> consecutive_idle_;
  std::map<OperatorId, SimTime> last_scale_out_;
  size_t requests_ = 0;
  size_t scale_in_requests_ = 0;
};

}  // namespace seep::control

#endif  // SEEP_CONTROL_BOTTLENECK_DETECTOR_H_
