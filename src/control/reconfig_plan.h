#ifndef SEEP_CONTROL_RECONFIG_PLAN_H_
#define SEEP_CONTROL_RECONFIG_PLAN_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/key_range.h"
#include "core/state.h"
#include "runtime/cluster.h"

namespace seep::control {

/// Stage vocabulary of the reconfiguration plane. Every reconfiguration —
/// scale out, scale in, and all three recovery modes — is an ordered subset
/// of these stages. The paper's central claim ("operator recovery becomes a
/// special case of scale out", §4.2) is made literal here: the coordinators
/// only choose which stages to compose and with which policy parameters; the
/// stage mechanics are shared.
enum class StageKind {
  kQuiesce,            ///< freeze checkpoint schedules / pause + drain
  kAcquireVms,         ///< obtain VMs from the pool (Algorithm 3 line 4)
  kFetchAndPartition,  ///< retrieve the backup and split it (Algorithm 2)
  kMerge,              ///< capture + merge partition checkpoints (scale in)
  kShip,               ///< move partitioned state to the new VMs + restore
  kRestore,            ///< hand over: replacements live, old instance stops
  kReroute,            ///< retire old instances, install the new routes
  kSeedAcksAndReplay,  ///< seed acks, register fences, replay buffers
  kCommit,             ///< record metrics; the plan is irrevocable
};

/// Stable display name of a stage (metrics, logs, deadline statuses).
const char* StageKindName(StageKind kind);

/// Shared mutable state of one running plan. The policy driver (coordinator)
/// fills in the inputs; stages communicate through the progress fields, in
/// stage order. Continuations that outlive an event (pool grants, shipped
/// state deliveries, drain polls) hold the context via shared_ptr and check
/// `active` so work landing after an abort resolves safely.
struct PlanContext {
  runtime::Cluster* cluster = nullptr;  // set by the executor
  uint64_t plan_id = 0;                 // set by the executor
  OperatorId op = 0;                    // set by the executor from the plan
  bool active = true;                   // false once committed or aborted

  // ------------------------------------------------------- policy inputs
  /// Scale out: the partitioned parent. Recovery: the failed instance.
  InstanceId target = kInvalidInstance;
  uint32_t pi = 1;
  bool recovery = false;
  bool balanced_split = true;
  SimTime control_delay = 0;
  /// Key range of the replacement deployed by DeployReplacementStage
  /// (upstream-backup / source-replay recovery).
  core::KeyRange replacement_range;

  // ----------------------------------------------------------- progress
  size_t partitions_before = 0;
  /// Instances whose checkpoint schedule this plan froze (quiesce).
  std::vector<InstanceId> suspended;
  /// Upstream instances this plan paused before the point of no return.
  std::vector<InstanceId> paused_upstreams;
  /// VMs acquired from the pool and not yet consumed by a deployment.
  std::vector<VmId> vms;
  core::StateCheckpoint base;
  bool have_backup = false;
  /// The backup came off the durable checkpoint log rather than holder
  /// memory (kDisk, or kTiered after the holder died): no live holder is
  /// required and no state ships over the network.
  bool from_disk = false;
  bool inherit_origin = false;
  InstanceId holder = kInvalidInstance;
  SimTime partition_delay = 0;
  std::shared_ptr<std::vector<core::StateCheckpoint>> parts;
  /// Instances this plan deployed (new partitions / the replacement).
  std::vector<InstanceId> new_ids;
  /// Upstream instances captured at the reroute stage.
  std::vector<InstanceId> upstreams;
  /// Scale in: the two adjacent partitions being merged.
  InstanceId merge_a = kInvalidInstance;
  InstanceId merge_b = kInvalidInstance;
  std::shared_ptr<core::StateCheckpoint> merged;

  // -------------------------------------------------- policy observers
  std::function<void(SimTime)> on_restored;
  std::function<void(SimTime)> on_caught_up;
};

/// Reports the stage outcome to the executor, exactly once. OK advances the
/// plan; any error aborts it and runs compensations.
using StageDone = std::function<void(Status)>;

/// One plan stage: a forward action paired with a compensation and an
/// optional deadline. On any stage failure or deadline expiry the executor
/// runs the compensations of the failed stage and every completed stage in
/// reverse order; compensations are synchronous and idempotent over partial
/// forward progress (a stage that failed halfway is undone by the same
/// compensation as one that never started).
struct ReconfigStage {
  StageKind kind = StageKind::kCommit;
  /// 0 disables the deadline. Otherwise, if the stage has not completed
  /// `deadline` after it started, it fails with a retryable status. Defaults
  /// are far beyond anything a healthy reconfiguration takes, so fault-free
  /// runs never observe a timer firing.
  SimTime deadline = 0;
  std::function<void(const std::shared_ptr<PlanContext>&, StageDone)> forward;
  std::function<void(PlanContext&)> compensate;
};

/// An ordered list of stages over a shared context — the unit the executor
/// runs. Built by the coordinators, executed by ReconfigExecutor.
struct ReconfigPlan {
  OperatorId op = 0;
  const char* label = "";
  std::shared_ptr<PlanContext> ctx;
  std::vector<ReconfigStage> stages;
};

// --------------------------------------------------------------------------
// Stage factories. All membership mutation (DeployInstance, RetireInstance)
// and route installation lives here, behind the stage seam — coordinators
// compose these, they do not touch the mechanism (enforced by the
// coordinator-via-plan-only lint rule).

/// Freezes the scale-out target's checkpoint schedule (graceful only; a
/// recovery target is dead and cannot checkpoint). Compensation resumes
/// every schedule the plan froze on still-live instances.
ReconfigStage QuiesceTargetStage();

/// Acquires `count` VMs from the pool, after an optional control delay.
/// Compensation releases every acquired-but-unconsumed VM; grants landing
/// after an abort are released on arrival (the pool has no cancel).
ReconfigStage AcquireVmsStage(uint32_t count, SimTime pre_delay,
                              SimTime deadline);

/// Algorithm 3 lines 1-3 + Algorithm 2: retrieves the most recent backup of
/// the target (or synthesizes an empty base for a recovery without one),
/// partitions it, and deploys pi new instances on the acquired VMs.
/// Compensation retires every deployed instance and releases its VM.
ReconfigStage FetchAndPartitionStage();

/// Ships each partition checkpoint from the holder to its new VM and
/// restores + starts it there (initial backups stored at the holder,
/// Algorithm 2 line 8). Completes when all pi partitions restored; the
/// deadline converts a never-arriving delivery (holder or new VM died
/// mid-ship) into an abort instead of a hang.
ReconfigStage ShipStage(SimTime deadline);

/// The scale-out handover (point of no return): the restored buffer replays
/// downstream, the parent stops and the new partitions inherit its
/// suppression positions. No stage after this one can fail.
ReconfigStage HandoverStage();

/// After a control delay: finalizes the parent's retirement, pauses
/// upstreams and installs the new routing (Algorithm 3 lines 9-11).
ReconfigStage RerouteStage();

/// Seeds acknowledgement positions, registers the catch-up fence, replays
/// upstream buffers and resumes them (Algorithm 3 lines 12-14).
ReconfigStage SeedAcksAndReplayStage();

/// Records the ScaleOutEvent metric (graceful only) and commits.
ReconfigStage CommitScaleOutStage();

/// Scale in: freezes both merge partners' checkpoints, pauses upstreams and
/// polls until both partitions drained. Compensation resumes the paused
/// upstreams and the surviving partners' checkpoint schedules.
ReconfigStage QuiesceAndDrainStage(SimTime deadline);

/// Captures consistent checkpoints of both drained partners and merges them
/// (paper §3.3's merge primitive).
ReconfigStage MergeStage();

/// Deploys the merged partition on the acquired VM, restores and starts it.
ReconfigStage DeployMergedStage();

/// Retires both merge partners (releasing their VMs) and installs routes.
ReconfigStage RerouteMergedStage();

/// Seeds acks and replays each upstream buffer to the merged partition.
ReconfigStage SeedAcksAndReplayMergedStage();

/// Records the ScaleInEvent metric and commits.
ReconfigStage CommitScaleInStage();

/// Upstream-backup / source-replay recovery: deploys a replacement with the
/// failed instance's key range on the acquired VM and starts it (no state to
/// restore — replay rebuilds it).
ReconfigStage DeployReplacementStage();

/// Retires the failed instance (its VM is already dead) and installs routes.
ReconfigStage RerouteRetireFailedStage();

/// Upstream backup: every upstream instance replays its buffered window to
/// the replacement behind a fence.
ReconfigStage ReplayUpstreamBuffersStage();

/// Source replay: pauses sources, resets every operator's state, and
/// recomputes the pipeline from the sources' buffered history.
ReconfigStage SourceReplayStage();

/// No-op commit marker for recovery plans (metrics flow through the
/// RecoveryEvent callbacks instead).
ReconfigStage CommitRecoveryStage();

}  // namespace seep::control

#endif  // SEEP_CONTROL_RECONFIG_PLAN_H_
