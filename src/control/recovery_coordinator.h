#ifndef SEEP_CONTROL_RECOVERY_COORDINATOR_H_
#define SEEP_CONTROL_RECOVERY_COORDINATOR_H_

#include <set>

#include "control/scale_out_coordinator.h"
#include "runtime/cluster.h"

namespace seep::control {

struct FailureDetectorConfig {
  /// Liveness-probe period; crash-stops are suspected after
  /// `missed_heartbeats` consecutive missed probes (paper §4.2: the SPS
  /// simply scales out an operator that "has become unresponsive").
  SimTime heartbeat_interval = MillisToSim(500);
  int missed_heartbeats = 2;
  bool enabled = true;
};

struct RecoveryConfig {
  /// Parallelisation level of recovery: 1 = serial, >= 2 = parallel
  /// recovery (§4.2/§6.2).
  uint32_t parallelism = 1;
};

/// Watches for failed operator instances and restores them using the
/// configured fault-tolerance mechanism. With R+SM, recovery is literally a
/// call into the scale-out coordinator; the UB/SR baselines implement the
/// replay-based schemes the paper compares against (Fig. 11).
class RecoveryCoordinator {
 public:
  RecoveryCoordinator(runtime::Cluster* cluster,
                      ScaleOutCoordinator* coordinator,
                      FailureDetectorConfig detector_config,
                      RecoveryConfig recovery_config)
      : cluster_(cluster),
        coordinator_(coordinator),
        detector_config_(detector_config),
        recovery_config_(recovery_config) {}

  /// Starts the failure-detector polling loop.
  void Start();

  /// Immediately triggers recovery of a failed instance (tests use this to
  /// bypass detection latency).
  void Recover(InstanceId failed);

 private:
  void Poll();
  void RecoverStateManagement(InstanceId failed, size_t event_index);

  /// The upstream-backup and source-replay baselines, expressed as one
  /// shared ReconfigPlan shape (deploy replacement → retire + reroute →
  /// replay) that differs only in its replay stage.
  void RecoverReplayBased(InstanceId failed, size_t event_index,
                          bool source_replay);

  runtime::Cluster* cluster_;
  ScaleOutCoordinator* coordinator_;
  FailureDetectorConfig detector_config_;
  RecoveryConfig recovery_config_;
  std::map<InstanceId, int> missed_;
  std::set<InstanceId> handled_;
};

}  // namespace seep::control

#endif  // SEEP_CONTROL_RECOVERY_COORDINATOR_H_
