#include "control/deployment_manager.h"

#include "runtime/operator_instance.h"

namespace seep::control {

[[nodiscard]] Status DeploymentManager::DeployAll(
    const std::map<OperatorId, uint32_t>& initial_parallelism) {
  const core::QueryGraph* graph = cluster_->graph();
  SEEP_RETURN_IF_ERROR(graph->Validate());

  std::vector<InstanceId> to_start;
  for (const core::OperatorSpec& spec : graph->operators()) {
    uint32_t count = 1;
    if (spec.kind == core::VertexKind::kSource) {
      count = spec.source_parallelism;
    } else if (auto it = initial_parallelism.find(spec.id);
               it != initial_parallelism.end() && spec.scalable) {
      count = std::max<uint32_t>(1, it->second);
    }
    const std::vector<core::KeyRange> ranges =
        core::KeyRange::Full().SplitEven(count);
    std::vector<core::RoutingState::Route> routes;
    for (uint32_t i = 0; i < count; ++i) {
      const VmId vm = cluster_->provider()->RequestVmImmediate();
      SEEP_RETURN_IF_ERROR(cluster_->provider()->MarkInUse(vm));
      // Sources partition the offered load by index; everything else
      // partitions the key space.
      const core::KeyRange range = spec.kind == core::VertexKind::kSource
                                       ? core::KeyRange::Full()
                                       : ranges[i];
      auto deployed = cluster_->membership()->DeployInstance(
          spec.id, vm, range, i, count);
      if (!deployed.ok()) return deployed.status();
      to_start.push_back(deployed.value());
      routes.push_back({range, deployed.value()});
    }
    // Sources receive no tuples, so only non-sources need routes; setting
    // them uniformly is harmless and keeps the table complete.
    if (spec.kind != core::VertexKind::kSource) {
      cluster_->InstallRoutes(spec.id, std::move(routes));
    }
  }

  cluster_->pool()->PrefillImmediate();
  for (InstanceId id : to_start) cluster_->GetInstance(id)->Start();
  cluster_->membership()->RecordVmsInUse();
  return Status::OK();
}

}  // namespace seep::control
