#include "control/scale_out_coordinator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/sync.h"
#include "control/reconfig_plan.h"
#include "runtime/operator_instance.h"

namespace seep::control {

std::function<void(Status)> ScaleOutCoordinator::FinishFn(
    OperatorId op, std::function<void(Status)> on_done) {
  return [this, op, on_done = std::move(on_done)](Status status) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    in_progress_.erase(op);
    if (status.ok()) {
      ++completed_;
    } else {
      ++aborted_;
      SEEP_LOG(kInfo, cluster_->Now())
          << "scale out of op " << op << " aborted: " << status.ToString();
    }
    if (on_done) on_done(status);
  };
}

void ScaleOutCoordinator::ScaleOutInstance(InstanceId target, uint32_t pi,
                                           bool recovery,
                                           Callbacks callbacks) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  runtime::OperatorInstance* t = cluster_->GetInstance(target);
  if (t == nullptr || pi == 0) {
    if (callbacks.on_done) {
      callbacks.on_done(Status::InvalidArgument("bad target or pi"));
    }
    return;
  }
  const OperatorId op = t->op();
  if (in_progress_.contains(op)) {
    if (callbacks.on_done) {
      callbacks.on_done(Status::Aborted("operation already in progress"));
    }
    return;
  }
  // A graceful scale out needs an existing backup to partition; abort early
  // and let the policy retry after the next checkpoint (paper §4.3). A
  // recovery can proceed regardless: without a backup, upstream buffers were
  // never trimmed and replay rebuilds the state from scratch.
  if (!recovery && !cluster_->backups()->Has(target)) {
    ++aborted_;
    if (callbacks.on_done) {
      callbacks.on_done(Status::Unavailable("no backup checkpoint yet"));
    }
    return;
  }
  in_progress_.insert(op);

  ReconfigPlan plan;
  plan.op = op;
  plan.label = recovery ? "recovery" : "scale-out";
  plan.ctx = std::make_shared<PlanContext>();
  plan.ctx->target = target;
  plan.ctx->pi = pi;
  plan.ctx->recovery = recovery;
  plan.ctx->balanced_split = config_.balanced_split;
  plan.ctx->control_delay = config_.control_delay;
  plan.ctx->on_restored = std::move(callbacks.on_restored);
  plan.ctx->on_caught_up = std::move(callbacks.on_caught_up);
  plan.stages = {
      QuiesceTargetStage(),
      AcquireVmsStage(pi, config_.control_delay, /*deadline=*/0),
      FetchAndPartitionStage(),
      ShipStage(config_.ship_deadline),
      HandoverStage(),
      RerouteStage(),
      SeedAcksAndReplayStage(),
      CommitScaleOutStage(),
  };
  executor_.Run(std::move(plan), FinishFn(op, std::move(callbacks.on_done)));
}

void ScaleOutCoordinator::ScaleIn(OperatorId op, Callbacks callbacks) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  if (in_progress_.contains(op)) {
    if (callbacks.on_done) {
      callbacks.on_done(Status::Aborted("operation already in progress"));
    }
    return;
  }
  std::vector<InstanceId> live = cluster_->LiveInstancesOf(op);
  if (live.size() < 2) {
    if (callbacks.on_done) {
      callbacks.on_done(
          Status::FailedPrecondition("need >= 2 partitions to scale in"));
    }
    return;
  }
  // Pick two partitions with adjacent key ranges.
  std::sort(live.begin(), live.end(), [&](InstanceId a, InstanceId b) {
    return cluster_->GetInstance(a)->key_range().lo <
           cluster_->GetInstance(b)->key_range().lo;
  });
  InstanceId a_id = kInvalidInstance;
  InstanceId b_id = kInvalidInstance;
  for (size_t i = 1; i < live.size(); ++i) {
    const auto& prev = cluster_->GetInstance(live[i - 1])->key_range();
    const auto& cur = cluster_->GetInstance(live[i])->key_range();
    if (prev.hi != UINT64_MAX && prev.hi + 1 == cur.lo) {
      a_id = live[i - 1];
      b_id = live[i];
      break;
    }
  }
  if (a_id == kInvalidInstance) {
    if (callbacks.on_done) {
      callbacks.on_done(
          Status::FailedPrecondition("no adjacent partitions to merge"));
    }
    return;
  }
  in_progress_.insert(op);

  ReconfigPlan plan;
  plan.op = op;
  plan.label = "scale-in";
  plan.ctx = std::make_shared<PlanContext>();
  plan.ctx->merge_a = a_id;
  plan.ctx->merge_b = b_id;
  plan.ctx->control_delay = config_.control_delay;
  plan.ctx->on_restored = std::move(callbacks.on_restored);
  plan.ctx->on_caught_up = std::move(callbacks.on_caught_up);
  plan.stages = {
      QuiesceAndDrainStage(config_.drain_deadline),
      MergeStage(),
      AcquireVmsStage(1, /*pre_delay=*/0, /*deadline=*/0),
      DeployMergedStage(),
      RerouteMergedStage(),
      SeedAcksAndReplayMergedStage(),
      CommitScaleInStage(),
  };
  executor_.Run(std::move(plan), FinishFn(op, std::move(callbacks.on_done)));
}

}  // namespace seep::control
