#include "control/scale_out_coordinator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "core/state_ops.h"
#include "runtime/operator_instance.h"

namespace seep::control {

namespace {

/// Time to serialise/partition `bytes` of checkpoint state on a node.
SimTime StateProcessingDelay(const runtime::Cluster* cluster, size_t bytes) {
  const double us = static_cast<double>(bytes) / 1024.0 *
                    cluster->config().serialize_cost_us_per_kb;
  return static_cast<SimTime>(us);
}

}  // namespace

void ScaleOutCoordinator::FinishAborted(OperatorId op, Status status,
                                        const Callbacks& cb) {
  in_progress_.erase(op);
  ++aborted_;
  SEEP_LOG(kInfo, cluster_->Now())
      << "scale out of op " << op << " aborted: " << status.ToString();
  if (cb.on_done) cb.on_done(status);
}

void ScaleOutCoordinator::ScaleOutInstance(InstanceId target, uint32_t pi,
                                           bool recovery,
                                           Callbacks callbacks) {
  runtime::OperatorInstance* t = cluster_->GetInstance(target);
  if (t == nullptr || pi == 0) {
    if (callbacks.on_done) {
      callbacks.on_done(Status::InvalidArgument("bad target or pi"));
    }
    return;
  }
  const OperatorId op = t->op();
  if (in_progress_.contains(op)) {
    if (callbacks.on_done) {
      callbacks.on_done(Status::Aborted("operation already in progress"));
    }
    return;
  }
  // A graceful scale out needs an existing backup to partition; abort early
  // and let the policy retry after the next checkpoint (paper §4.3). A
  // recovery can proceed regardless: without a backup, upstream buffers were
  // never trimmed and replay rebuilds the state from scratch.
  if (!recovery && !cluster_->backups()->Has(target)) {
    ++aborted_;
    if (callbacks.on_done) {
      callbacks.on_done(Status::Unavailable("no backup checkpoint yet"));
    }
    return;
  }
  in_progress_.insert(op);

  // Freeze the target's checkpoint schedule: a checkpoint completing while
  // we partition an older one would trim upstream buffers past the restore
  // point. (Recovery targets are dead and cannot checkpoint.)
  if (!recovery) t->SuspendCheckpoints();

  // Algorithm 3 line 4: acquire π VMs from the pool, then partition the
  // (latest) backed-up checkpoint and restore it across them.
  cluster_->simulation()->Schedule(
      config_.control_delay, [this, op, target, pi, recovery, callbacks]() {
        auto vms = std::make_shared<std::vector<VmId>>();
        for (uint32_t i = 0; i < pi; ++i) {
          cluster_->pool()->Acquire([this, op, target, pi, recovery,
                                     callbacks, vms](VmId vm) {
            vms->push_back(vm);
            if (vms->size() < pi) return;
            RestoreAndSwitch(op, target, *vms, recovery, callbacks);
          });
        }
      });
}

void ScaleOutCoordinator::RestoreAndSwitch(OperatorId op, InstanceId target,
                                           std::vector<VmId> vms,
                                           bool recovery,
                                           Callbacks callbacks) {
  const auto pi = static_cast<uint32_t>(vms.size());
  const size_t partitions_before = cluster_->InstancesOf(op).size();

  auto abort = [&](Status status) {
    runtime::OperatorInstance* t = cluster_->GetInstance(target);
    if (t != nullptr && !recovery) t->ResumeCheckpoints();
    for (VmId vm : vms) (void)cluster_->provider()->ReleaseVm(vm);
    FinishAborted(op, std::move(status), callbacks);
  };

  // Algorithm 3 lines 1-3: retrieve the most recent checkpoint from
  // backup(o) and partition it there. The holder must be alive (paper §4.3:
  // if backup(o) failed, abort and retry after a fresh backup exists).
  auto entry = cluster_->backups()->Retrieve(target);
  const bool have_backup = entry.ok();
  core::StateCheckpoint base;
  InstanceId holder = kInvalidInstance;
  if (have_backup) {
    base = entry.value().checkpoint;
    holder = entry.value().holder;
    runtime::OperatorInstance* h = cluster_->GetInstance(holder);
    if (h == nullptr || !h->alive() || h->stopped()) {
      abort(Status::Unavailable("backup holder failed"));
      return;
    }
  } else if (recovery) {
    runtime::OperatorInstance* t = cluster_->GetInstance(target);
    SEEP_CHECK(t != nullptr);
    base.op = op;
    base.instance = target;
    base.key_range = t->key_range();
  } else {
    abort(Status::Unavailable("backup disappeared"));
    return;
  }
  const bool inherit_origin = recovery && pi == 1 && have_backup;

  auto parts_result =
      config_.balanced_split
          ? core::PartitionCheckpointByRanges(
                base, core::BalancedSplitRanges(base, pi))
          : core::PartitionCheckpoint(base, pi);
  if (!parts_result.ok()) {
    abort(parts_result.status());
    return;
  }
  // Algorithm 2 audit: the split must exactly tile the parent's key range
  // and conserve every state entry and buffered tuple.
  if (auto* audit = cluster_->audit()) {
    audit->OnPartitioned(base, parts_result.value());
  }
  auto shared_parts = std::make_shared<std::vector<core::StateCheckpoint>>(
      std::move(parts_result).value());
  const SimTime partition_delay =
      StateProcessingDelay(cluster_, base.ByteSize());

  // Algorithm 3 lines 3-6: deploy π new partitioned operators and restore.
  std::vector<InstanceId> new_ids;
  for (uint32_t i = 0; i < pi; ++i) {
    auto deployed = cluster_->membership()->DeployInstance(
        op, vms[i], (*shared_parts)[i].key_range);
    SEEP_CHECK(deployed.ok());
    new_ids.push_back(deployed.value());
  }

  auto remaining = std::make_shared<uint32_t>(pi);
  auto on_all_restored = [this, op, target, new_ids, shared_parts, recovery,
                          inherit_origin, partitions_before, callbacks]() {
    const SimTime now = cluster_->Now();
    if (callbacks.on_restored) callbacks.on_restored(now);

    // Algorithm 3 line 7: the partition holding the restored buffer state
    // replays it to downstream operators; their duplicate filters discard
    // anything they already processed.
    runtime::OperatorInstance* first = cluster_->GetInstance(new_ids[0]);
    SEEP_CHECK(first != nullptr);
    for (OperatorId down : cluster_->graph()->Downstream(op)) {
      first->ReplayBuffer(down, INT64_MIN, cluster_->LiveInstancesOf(down),
                          /*fence_id=*/0);
    }
    // A fresh-origin partition then discards the inherited buffer: its
    // tuples carry the parent's origin and clock and would break the
    // monotone-timestamp invariant the trim protocol relies on. (A serial
    // recovery inherits the parent's origin, so its buffer stays.)
    if (!inherit_origin) first->buffer_state().buffers().clear();

    // Algorithm 3 line 8: stop the old operator and release its VM. On the
    // graceful path we first capture its processed positions: the new
    // partitions suppress re-emission while catching up through tuples the
    // parent already delivered downstream.
    // Membership removal is deferred to the routing switch below: until
    // then, the stopped parent's frozen acknowledgement position keeps
    // upstream buffers from being trimmed past the replay point.
    runtime::OperatorInstance* parent = cluster_->GetInstance(target);
    SEEP_CHECK(parent != nullptr);
    if (!recovery) {
      core::InputPositions parent_positions = parent->positions();
      cluster_->membership()->StopInstance(target, /*release_vm=*/true);
      if (!inherit_origin) {
        for (InstanceId id : new_ids) {
          cluster_->GetInstance(id)->SetSuppressUntil(parent_positions);
        }
      }
    } else {
      cluster_->membership()->StopInstance(target, /*release_vm=*/false);
    }

    // Algorithm 3 lines 9-14: stop upstream operators, repartition their
    // routing and buffer state, replay unprocessed tuples, restart.
    cluster_->simulation()->Schedule(
        config_.control_delay,
        [this, op, new_ids, shared_parts, recovery, partitions_before,
         target, callbacks]() {
          cluster_->membership()->FinalizeRetire(target);

          std::vector<runtime::OperatorInstance*> upstream;
          for (InstanceId uid : cluster_->UpstreamInstancesOf(op)) {
            upstream.push_back(cluster_->GetInstance(uid));
          }
          for (auto* u : upstream) u->Pause();

          // partition-routing-state: rebuild this operator's routes from
          // the current membership (surviving partitions + new ones).
          std::vector<core::RoutingState::Route> routes;
          for (InstanceId id : cluster_->InstancesOf(op)) {
            const runtime::OperatorInstance* inst = cluster_->GetInstance(id);
            routes.push_back({inst->key_range(), id});
          }
          cluster_->InstallRoutes(op, std::move(routes));

          const core::InputPositions& restored = (*shared_parts)[0].positions;
          for (auto* u : upstream) {
            u->PruneAcks(op);
            for (InstanceId id : new_ids) {
              u->SeedAck(op, id, restored.Get(u->origin()));
            }
          }

          // Fence: one per (upstream instance, new partition) pair; when
          // all have drained, the new partitions have caught up.
          uint64_t fence = 0;
          if (!upstream.empty()) {
            fence = cluster_->fences()->Register(
                static_cast<int>(upstream.size() * new_ids.size()),
                std::set<InstanceId>(new_ids.begin(), new_ids.end()),
                [callbacks](SimTime at) {
                  if (callbacks.on_caught_up) callbacks.on_caught_up(at);
                });
          }
          for (auto* u : upstream) {
            u->ReplayBuffer(op, restored.Get(u->origin()), new_ids, fence);
            u->Resume();
          }

          if (!recovery) {
            runtime::ScaleOutEvent event;
            event.at = cluster_->Now();
            event.op = op;
            event.partitioned_instance = target;
            event.parallelism_before =
                static_cast<uint32_t>(partitions_before);
            event.parallelism_after =
                static_cast<uint32_t>(cluster_->InstancesOf(op).size());
            cluster_->metrics()->scale_outs.push_back(event);
            SEEP_LOG(kInfo, cluster_->Now())
                << "scaled out op " << op << " to "
                << event.parallelism_after << " partitions";
          }

          in_progress_.erase(op);
          ++completed_;
          if (callbacks.on_done) callbacks.on_done(Status::OK());
        });
  };

  // Ship each partition checkpoint from the holder to its new VM (after the
  // holder spent `partition_delay` splitting it), then restore there.
  // Without a backup (empty synthetic state) the restore is immediate after
  // a control delay.
  for (uint32_t i = 0; i < pi; ++i) {
    const InstanceId new_id = new_ids[i];
    auto restore_one = [this, shared_parts, i, new_id, holder, inherit_origin,
                        remaining, on_all_restored]() {
      runtime::OperatorInstance* inst = cluster_->GetInstance(new_id);
      SEEP_CHECK(inst != nullptr);
      const core::StateCheckpoint& part = (*shared_parts)[i];
      inst->Restore(part, inherit_origin);
      inst->Start();
      // Algorithm 2 line 8: the partition checkpoints become the initial
      // backups of the new partitions.
      if (holder != kInvalidInstance) {
        core::StateCheckpoint initial = part;
        initial.instance = new_id;
        initial.origin = inst->origin();
        if (auto* audit = cluster_->audit()) {
          const runtime::OperatorInstance* h = cluster_->GetInstance(holder);
          audit->OnCheckpointStored(new_id, inst->vm(), holder,
                                    h != nullptr ? h->vm() : kInvalidVm,
                                    initial.seq);
        }
        cluster_->backups()->Store(new_id, holder, std::move(initial));
      }
      if (--(*remaining) == 0) on_all_restored();
    };
    if (have_backup) {
      const runtime::OperatorInstance* h = cluster_->GetInstance(holder);
      const runtime::OperatorInstance* inst = cluster_->GetInstance(new_id);
      const uint64_t bytes = (*shared_parts)[i].ByteSize();
      cluster_->simulation()->Schedule(
          partition_delay,
          [this, h_vm = h->vm(), i_vm = inst->vm(), bytes,
           restore_one = std::move(restore_one)]() mutable {
            cluster_->transport()->ShipState(h_vm, i_vm, bytes,
                                             std::move(restore_one));
          });
    } else {
      cluster_->simulation()->Schedule(config_.control_delay,
                                       std::move(restore_one));
    }
  }
}

void ScaleOutCoordinator::ScaleIn(OperatorId op, Callbacks callbacks) {
  if (in_progress_.contains(op)) {
    if (callbacks.on_done) {
      callbacks.on_done(Status::Aborted("operation already in progress"));
    }
    return;
  }
  std::vector<InstanceId> live = cluster_->LiveInstancesOf(op);
  if (live.size() < 2) {
    if (callbacks.on_done) {
      callbacks.on_done(
          Status::FailedPrecondition("need >= 2 partitions to scale in"));
    }
    return;
  }
  // Pick two partitions with adjacent key ranges.
  std::sort(live.begin(), live.end(), [&](InstanceId a, InstanceId b) {
    return cluster_->GetInstance(a)->key_range().lo <
           cluster_->GetInstance(b)->key_range().lo;
  });
  InstanceId a_id = kInvalidInstance;
  InstanceId b_id = kInvalidInstance;
  for (size_t i = 1; i < live.size(); ++i) {
    const auto& prev = cluster_->GetInstance(live[i - 1])->key_range();
    const auto& cur = cluster_->GetInstance(live[i])->key_range();
    if (prev.hi != UINT64_MAX && prev.hi + 1 == cur.lo) {
      a_id = live[i - 1];
      b_id = live[i];
      break;
    }
  }
  if (a_id == kInvalidInstance) {
    if (callbacks.on_done) {
      callbacks.on_done(
          Status::FailedPrecondition("no adjacent partitions to merge"));
    }
    return;
  }
  in_progress_.insert(op);
  cluster_->GetInstance(a_id)->SuspendCheckpoints();
  cluster_->GetInstance(b_id)->SuspendCheckpoints();

  // Quiesce: pause every upstream instance, wait for both partitions to
  // drain, then capture consistent checkpoints and merge them (paper §3.3's
  // merge primitive for scale in).
  std::vector<InstanceId> upstream = cluster_->UpstreamInstancesOf(op);
  for (InstanceId uid : upstream) cluster_->GetInstance(uid)->Pause();

  // Drain check: both idle on three consecutive 50 ms polls after a grace
  // period longer than the network round trip.
  auto poll = std::make_shared<std::function<void(int)>>();
  *poll = [this, op, a_id, b_id, upstream, callbacks, poll](int idle_polls) {
    runtime::OperatorInstance* a = cluster_->GetInstance(a_id);
    runtime::OperatorInstance* b = cluster_->GetInstance(b_id);
    if (a == nullptr || b == nullptr || !a->alive() || !b->alive()) {
      for (InstanceId uid : upstream) cluster_->GetInstance(uid)->Resume();
      FinishAborted(op, Status::Unavailable("partition died during scale-in"),
                    callbacks);
      return;
    }
    const bool idle = a->idle() && b->idle();
    const int next = idle ? idle_polls + 1 : 0;
    if (next < 3) {
      cluster_->simulation()->Schedule(MillisToSim(50),
                                       [poll, next]() { (*poll)(next); });
      return;
    }

    auto merged = core::MergeCheckpoints(
        {a->MakeCheckpoint(), b->MakeCheckpoint()});
    SEEP_CHECK(merged.ok());
    auto shared = std::make_shared<core::StateCheckpoint>(
        std::move(merged).value());

    cluster_->pool()->Acquire([this, op, a_id, b_id, upstream, shared,
                               callbacks](VmId vm) {
      auto deployed = cluster_->membership()->DeployInstance(
          op, vm, shared->key_range);
      SEEP_CHECK(deployed.ok());
      const InstanceId new_id = deployed.value();
      runtime::OperatorInstance* inst = cluster_->GetInstance(new_id);
      inst->Restore(*shared, /*inherit_origin=*/false);
      inst->Start();

      cluster_->membership()->RetireInstance(a_id, /*release_vm=*/true);
      cluster_->membership()->RetireInstance(b_id, /*release_vm=*/true);

      std::vector<core::RoutingState::Route> routes;
      for (InstanceId id : cluster_->InstancesOf(op)) {
        routes.push_back({cluster_->GetInstance(id)->key_range(), id});
      }
      cluster_->InstallRoutes(op, std::move(routes));

      for (InstanceId uid : upstream) {
        runtime::OperatorInstance* u = cluster_->GetInstance(uid);
        u->PruneAcks(op);
        u->SeedAck(op, new_id, shared->positions.Get(u->origin()));
        u->ReplayBuffer(op, shared->positions.Get(u->origin()), {new_id},
                        /*fence_id=*/0);
        u->Resume();
      }
      in_progress_.erase(op);
      ++completed_;
      if (callbacks.on_done) callbacks.on_done(Status::OK());
    });
  };
  cluster_->simulation()->Schedule(MillisToSim(100),
                                   [poll]() { (*poll)(0); });
}

}  // namespace seep::control
