#ifndef SEEP_CONTROL_SCALE_OUT_COORDINATOR_H_
#define SEEP_CONTROL_SCALE_OUT_COORDINATOR_H_

#include <functional>
#include <set>
#include <vector>

#include "common/status.h"
#include "runtime/cluster.h"

namespace seep::control {

/// Timing model for coordination messages between the query manager and VMs.
struct CoordinatorConfig {
  /// One-way latency of each control-plane step (deploy command, routing
  /// update, stop/start, ...).
  SimTime control_delay = MillisToSim(20);
  /// Split partitions at the quantiles of the checkpoint's state-entry keys
  /// (Algorithm 2's distribution-guided split) instead of even hash halves.
  bool balanced_split = true;
};

/// Implements the paper's Algorithm 3 (fault-tolerant scale out) over the
/// runtime. Failure recovery is the same code path invoked with the failed
/// instance and `recovery = true` — the paper's central claim that
/// "operator recovery becomes a special case of scale out".
class ScaleOutCoordinator {
 public:
  /// Outcome callbacks; either may be null.
  struct Callbacks {
    /// State restored onto all new partitions (before replay completes).
    std::function<void(SimTime)> on_restored;
    /// All replayed tuples drained at the new partitions (recovery done).
    std::function<void(SimTime)> on_caught_up;
    /// Final status (OK, or the abort reason).
    std::function<void(Status)> on_done;
  };

  ScaleOutCoordinator(runtime::Cluster* cluster, CoordinatorConfig config)
      : cluster_(cluster), config_(config) {}

  /// Partitions instance `target` of its logical operator into `pi` new
  /// instances, fault-tolerantly (Algorithm 3). With `recovery` the target
  /// has crash-stopped: pi == 1 is serial recovery, pi >= 2 parallel
  /// recovery (§4.2). Aborts (without harming the running query) when the
  /// backup is unavailable or the VM pool cannot deliver.
  void ScaleOutInstance(InstanceId target, uint32_t pi, bool recovery,
                        Callbacks callbacks = {});

  /// Scale-in extension (paper §3.3 / §8 future work): merges the two
  /// partitions of `op` with adjacent key ranges under quiescence, releasing
  /// one VM. Requires the operator to currently have >= 2 live partitions.
  void ScaleIn(OperatorId op, Callbacks callbacks = {});

  /// True while a scale-out/recovery/scale-in of `op` is running; the
  /// scaling policy holds off further actions on that operator meanwhile.
  bool InProgress(OperatorId op) const { return in_progress_.contains(op); }

  size_t completed_scale_outs() const { return completed_; }
  size_t aborted_scale_outs() const { return aborted_; }

 private:
  void FinishAborted(OperatorId op, Status status, const Callbacks& cb);
  void RestoreAndSwitch(OperatorId op, InstanceId target,
                        std::vector<VmId> vms, bool recovery,
                        Callbacks callbacks);

  runtime::Cluster* cluster_;
  CoordinatorConfig config_;
  std::set<OperatorId> in_progress_;
  size_t completed_ = 0;
  size_t aborted_ = 0;
};

}  // namespace seep::control

#endif  // SEEP_CONTROL_SCALE_OUT_COORDINATOR_H_
