#ifndef SEEP_CONTROL_SCALE_OUT_COORDINATOR_H_
#define SEEP_CONTROL_SCALE_OUT_COORDINATOR_H_

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "control/reconfig_executor.h"
#include "runtime/cluster.h"

namespace seep::control {

/// Timing model for coordination messages between the query manager and VMs.
struct CoordinatorConfig {
  /// One-way latency of each control-plane step (deploy command, routing
  /// update, stop/start, ...).
  SimTime control_delay = MillisToSim(20);
  /// Split partitions at the quantiles of the checkpoint's state-entry keys
  /// (Algorithm 2's distribution-guided split) instead of even hash halves.
  bool balanced_split = true;
  /// Abort-and-compensate deadline for the Ship stage: a shipped partition
  /// whose delivery never arrives (the holder or the new VM died mid-ship)
  /// fails the plan instead of hanging it forever. Far beyond any healthy
  /// ship time; fault-injection tests shrink it.
  SimTime ship_deadline = SecondsToSim(600);
  /// Same for scale-in's quiesce-and-drain stage.
  SimTime drain_deadline = SecondsToSim(600);
};

/// Implements the paper's Algorithm 3 (fault-tolerant scale out) over the
/// runtime. Failure recovery is the same code path invoked with the failed
/// instance and `recovery = true` — the paper's central claim that
/// "operator recovery becomes a special case of scale out".
///
/// The coordinator is a thin policy driver: it admits the request, picks the
/// participants, and builds a ReconfigPlan from the shared stage vocabulary;
/// the ReconfigExecutor runs the stages and compensates on failure.
class ScaleOutCoordinator {
 public:
  /// Outcome callbacks; either may be null.
  struct Callbacks {
    /// State restored onto all new partitions (before replay completes).
    std::function<void(SimTime)> on_restored;
    /// All replayed tuples drained at the new partitions (recovery done).
    std::function<void(SimTime)> on_caught_up;
    /// Final status (OK, or the abort reason).
    std::function<void(Status)> on_done;
  };

  ScaleOutCoordinator(runtime::Cluster* cluster, CoordinatorConfig config)
      : cluster_(cluster), config_(config), executor_(cluster) {}

  /// Partitions instance `target` of its logical operator into `pi` new
  /// instances, fault-tolerantly (Algorithm 3). With `recovery` the target
  /// has crash-stopped: pi == 1 is serial recovery, pi >= 2 parallel
  /// recovery (§4.2). Aborts (without harming the running query) when the
  /// backup is unavailable or the VM pool cannot deliver.
  void ScaleOutInstance(InstanceId target, uint32_t pi, bool recovery,
                        Callbacks callbacks = {});

  /// Scale-in extension (paper §3.3 / §8 future work): merges the two
  /// partitions of `op` with adjacent key ranges under quiescence, releasing
  /// one VM. Requires the operator to currently have >= 2 live partitions.
  void ScaleIn(OperatorId op, Callbacks callbacks = {});

  /// True while a scale-out/recovery/scale-in of `op` is running; the
  /// scaling policy holds off further actions on that operator meanwhile.
  bool InProgress(OperatorId op) const { return in_progress_.contains(op); }

  size_t completed_scale_outs() const { return completed_; }
  size_t aborted_scale_outs() const { return aborted_; }

  /// The plan executor, shared with the recovery coordinator so every
  /// reconfiguration mode runs through the same stage machinery.
  ReconfigExecutor* executor() { return &executor_; }

 private:
  /// Wraps a plan's terminal status into the coordinator's bookkeeping:
  /// clears the in-progress mark, bumps the completion/abort counters and
  /// forwards to the caller's callback.
  std::function<void(Status)> FinishFn(OperatorId op,
                                       std::function<void(Status)> on_done);

  runtime::Cluster* cluster_;
  CoordinatorConfig config_;
  ReconfigExecutor executor_;
  std::set<OperatorId> in_progress_;
  size_t completed_ = 0;
  size_t aborted_ = 0;
};

}  // namespace seep::control

#endif  // SEEP_CONTROL_SCALE_OUT_COORDINATOR_H_
