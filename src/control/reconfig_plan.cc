#include "control/reconfig_plan.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/sync.h"
#include "core/state_ops.h"
#include "runtime/operator_instance.h"
#include "verify/invariant_auditor.h"

namespace seep::control {

const char* StageKindName(StageKind kind) {
  switch (kind) {
    case StageKind::kQuiesce:
      return "quiesce";
    case StageKind::kAcquireVms:
      return "acquire-vms";
    case StageKind::kFetchAndPartition:
      return "fetch-and-partition";
    case StageKind::kMerge:
      return "merge";
    case StageKind::kShip:
      return "ship";
    case StageKind::kRestore:
      return "restore";
    case StageKind::kReroute:
      return "reroute";
    case StageKind::kSeedAcksAndReplay:
      return "seed-acks-and-replay";
    case StageKind::kCommit:
      return "commit";
  }
  return "unknown";
}

namespace {

/// Time to serialise/partition `bytes` of checkpoint state on a node.
SimTime StateProcessingDelay(const runtime::Cluster* cluster, size_t bytes) {
  const double us = static_cast<double>(bytes) / 1024.0 *
                    cluster->config().serialize_cost_us_per_kb;
  return static_cast<SimTime>(us);
}

void NotePlanVmAcquired(PlanContext& ctx, VmId vm) {
  if (auto* audit = ctx.cluster->audit()) {
    audit->OnPlanVmAcquired(ctx.plan_id, vm);
  }
}

void NotePlanVmDisposed(PlanContext& ctx, VmId vm) {
  if (auto* audit = ctx.cluster->audit()) {
    audit->OnPlanVmDisposed(ctx.plan_id, vm);
  }
}

void SuspendCheckpoints(PlanContext& ctx, InstanceId id) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  runtime::OperatorInstance* inst = ctx.cluster->GetInstance(id);
  SEEP_CHECK(inst != nullptr);
  inst->SuspendCheckpoints();
  ctx.suspended.push_back(id);
  if (auto* audit = ctx.cluster->audit()) {
    audit->OnPlanSuspendedCheckpoints(ctx.plan_id, id);
  }
}

/// Resumes every checkpoint schedule the plan froze, on instances that can
/// still checkpoint. A dead partition is exempt (it cannot checkpoint; its
/// replacement starts a fresh schedule) — but a *surviving* partition left
/// suspended would never back up again, which is exactly the scale-in abort
/// bug the checkpoints-resumed-after-abort invariant guards against.
void ResumeSuspended(PlanContext& ctx) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  for (InstanceId id : ctx.suspended) {
    runtime::OperatorInstance* inst = ctx.cluster->GetInstance(id);
    if (inst != nullptr && inst->alive() && !inst->stopped()) {
      inst->ResumeCheckpoints();
    }
  }
  ctx.suspended.clear();
}

/// Rebuilds `op`'s routing table from the current membership (surviving
/// partitions + the plan's deployments) and installs it through the
/// Cluster::InstallRoutes choke point — the single shared reroute used by
/// every plan (scale out, scale in, all recovery modes).
void InstallCurrentRoutes(PlanContext& ctx) {
  std::vector<core::RoutingState::Route> routes;
  for (InstanceId id : ctx.cluster->InstancesOf(ctx.op)) {
    routes.push_back({ctx.cluster->GetInstance(id)->key_range(), id});
  }
  ctx.cluster->InstallRoutes(ctx.op, std::move(routes));
}

/// Undoes deployments that never became part of the committed membership:
/// stop + finalize immediately (no handover happened, so nothing depends on
/// a tombstone's frozen acks) and release the VM. Safe on instances whose VM
/// died mid-plan (ReleaseVm on a terminated VM is a rejected no-op) and on
/// partially restored/started instances.
void RetireDeployed(PlanContext& ctx) {
  for (InstanceId id : ctx.new_ids) {
    ctx.cluster->membership()->RetireInstance(id, /*release_vm=*/true);
  }
  ctx.new_ids.clear();
}

void RequestVms(const std::shared_ptr<PlanContext>& ctx, uint32_t count,
                const StageDone& done) {
  for (uint32_t i = 0; i < count; ++i) {
    ctx->cluster->pool()->Acquire([ctx, count, done](VmId vm) {
      if (!ctx->active) {
        // The grant landed after the plan aborted (the pool has no cancel):
        // return the VM immediately so nothing leaks.
        ctx->cluster->provider()->ReleaseVmCompensating(vm);
        return;
      }
      NotePlanVmAcquired(*ctx, vm);
      ctx->vms.push_back(vm);
      if (ctx->vms.size() < count) return;
      done(Status::OK());
    });
  }
}

/// Restores partition `i` onto its deployed instance, starts it, and stores
/// the partition checkpoint as the new partition's initial backup at the
/// holder (Algorithm 2 line 8). Returns the store's status: under kDisk a
/// failed durable append leaves the new partition with no recoverable
/// backup, and the plan must abort (compensations retire the partial
/// deployment) rather than commit an unprotected operator.
[[nodiscard]] Status RestoreOnePartition(PlanContext& ctx, uint32_t i,
                                         InstanceId new_id) {
  runtime::OperatorInstance* inst = ctx.cluster->GetInstance(new_id);
  SEEP_CHECK(inst != nullptr);
  const core::StateCheckpoint& part = (*ctx.parts)[i];
  inst->Restore(part, ctx.inherit_origin);
  inst->Start();
  if (ctx.holder != kInvalidInstance) {
    core::StateCheckpoint initial = part;
    initial.instance = new_id;
    initial.origin = inst->origin();
    const uint64_t initial_seq = initial.seq;
    // Store before the audit hook: with a durable tier the log append
    // happens inside Store, and durable-log-covers-trim requires the record
    // to be on disk by the time the stored event fires.
    SEEP_RETURN_IF_ERROR(
        ctx.cluster->backups()->Store(new_id, ctx.holder,
                                      std::move(initial)));
    if (auto* audit = ctx.cluster->audit()) {
      const runtime::OperatorInstance* h = ctx.cluster->GetInstance(ctx.holder);
      audit->OnCheckpointStored(new_id, inst->vm(), ctx.holder,
                                h != nullptr ? h->vm() : kInvalidVm,
                                initial_seq);
    }
  }
  return Status::OK();
}

/// Ships partition `i` from the holder to its new VM (after the holder spent
/// `partition_delay` splitting it), then restores there. Without a backup
/// (empty synthetic state) the restore is immediate after a control delay.
void ShipOnePartition(const std::shared_ptr<PlanContext>& ctx, uint32_t i,
                      const std::shared_ptr<uint32_t>& remaining,
                      const StageDone& done) {
  const InstanceId new_id = ctx->new_ids[i];
  auto restore_one = [ctx, i, new_id, remaining, done]() {
    if (!ctx->active) return;  // aborted while the state was in flight
    const Status restored = RestoreOnePartition(*ctx, i, new_id);
    if (!restored.ok()) {
      // Aborting marks the context inactive, so sibling restores still
      // in flight become no-ops and done() fires exactly once (the
      // executor's epoch guard absorbs any stale completion).
      done(restored);
      return;
    }
    if (--(*remaining) == 0) done(Status::OK());
  };
  if (ctx->have_backup && ctx->from_disk) {
    // The partition was read back from the durable log: nothing ships from
    // a holder (the new VM reads cluster storage directly); it still pays
    // the partition/deserialize delay.
    ctx->cluster->simulation()->Schedule(ctx->partition_delay,
                                         std::move(restore_one));
  } else if (ctx->have_backup) {
    const runtime::OperatorInstance* h = ctx->cluster->GetInstance(ctx->holder);
    const runtime::OperatorInstance* inst = ctx->cluster->GetInstance(new_id);
    const uint64_t bytes = (*ctx->parts)[i].ByteSize();
    ctx->cluster->simulation()->Schedule(
        ctx->partition_delay,
        [ctx, h_vm = h->vm(), i_vm = inst->vm(), bytes,
         restore_one = std::move(restore_one)]() mutable {
          ctx->cluster->transport()->ShipState(h_vm, i_vm, bytes,
                                               std::move(restore_one));
        });
  } else {
    ctx->cluster->simulation()->Schedule(ctx->control_delay,
                                         std::move(restore_one));
  }
}

/// Drain check: both merge partners idle on three consecutive 50 ms polls
/// (after an initial grace period longer than the network round trip).
void PollDrained(const std::shared_ptr<PlanContext>& ctx, int idle_polls,
                 const StageDone& done) {
  if (!ctx->active) return;
  runtime::OperatorInstance* a = ctx->cluster->GetInstance(ctx->merge_a);
  runtime::OperatorInstance* b = ctx->cluster->GetInstance(ctx->merge_b);
  if (a == nullptr || b == nullptr || !a->alive() || !b->alive()) {
    done(Status::Unavailable("partition died during scale-in"));
    return;
  }
  const bool idle = a->idle() && b->idle();
  const int next = idle ? idle_polls + 1 : 0;
  if (next < 3) {
    ctx->cluster->simulation()->Schedule(
        MillisToSim(50), [ctx, next, done]() { PollDrained(ctx, next, done); });
    return;
  }
  done(Status::OK());
}

/// Expected number of fence deliveries at the replacement when each source
/// instance fences its replay and intermediate instances forward fences to
/// every downstream instance. Fences multiply at each hop: outflow(u) is the
/// number of fences each downstream *instance* of u will receive from u's
/// side.
int ExpectedSourceFences(const runtime::Cluster* cluster,
                         OperatorId target_op) {
  const core::QueryGraph* graph = cluster->graph();
  std::map<OperatorId, int> outflow;
  for (OperatorId id : graph->TopologicalOrder()) {
    const core::OperatorSpec* spec = graph->Get(id);
    if (spec->kind == core::VertexKind::kSource) {
      outflow[id] = static_cast<int>(cluster->LiveInstancesOf(id).size());
      continue;
    }
    int arriving_per_instance = 0;
    for (OperatorId up : graph->Upstream(id)) {
      arriving_per_instance += outflow[up];
    }
    if (id == target_op) return arriving_per_instance;
    // Every instance of this operator forwards each fence it processes.
    outflow[id] = arriving_per_instance *
                  static_cast<int>(cluster->LiveInstancesOf(id).size());
  }
  return 0;
}

}  // namespace

ReconfigStage QuiesceTargetStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kQuiesce;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    // Freeze the target's checkpoint schedule: a checkpoint completing while
    // we partition an older one would trim upstream buffers past the restore
    // point. (Recovery targets are dead and cannot checkpoint.)
    if (!ctx->recovery) SuspendCheckpoints(*ctx, ctx->target);
    done(Status::OK());
  };
  stage.compensate = [](PlanContext& ctx) { ResumeSuspended(ctx); };
  return stage;
}

ReconfigStage AcquireVmsStage(uint32_t count, SimTime pre_delay,
                              SimTime deadline) {
  ReconfigStage stage;
  stage.kind = StageKind::kAcquireVms;
  stage.deadline = deadline;
  stage.forward = [count, pre_delay](const std::shared_ptr<PlanContext>& ctx,
                                     StageDone done) {
    if (pre_delay > 0) {
      ctx->cluster->simulation()->Schedule(
          pre_delay,
          [ctx, count, done]() { RequestVms(ctx, count, done); });
    } else {
      RequestVms(ctx, count, done);
    }
  };
  stage.compensate = [](PlanContext& ctx) {
    for (VmId vm : ctx.vms) {
      // A VM that failed mid-plan is already terminated; any other
      // release failure is a billing leak and aborts in the helper.
      ctx.cluster->provider()->ReleaseVmCompensating(vm);
      NotePlanVmDisposed(ctx, vm);
    }
    ctx.vms.clear();
  };
  return stage;
}

ReconfigStage FetchAndPartitionStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kFetchAndPartition;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    runtime::Cluster* cluster = ctx->cluster;
    ctx->partitions_before = cluster->InstancesOf(ctx->op).size();

    // A recovery can only finish if someone can replay the lost input: with
    // every upstream instance dead (a correlated failure), abort now — the
    // coordinator retries in 1 s, after the upstream's own recovery (which
    // needs no replay from this operator) has restored a live instance.
    if (ctx->recovery && !cluster->graph()->Upstream(ctx->op).empty() &&
        cluster->UpstreamInstancesOf(ctx->op).empty()) {
      done(Status::Unavailable("no live upstream instance to replay from"));
      return;
    }

    // Algorithm 3 lines 1-3: retrieve the most recent checkpoint from
    // backup(o) and partition it there. The holder must be alive (paper
    // §4.3: if backup(o) failed, abort and retry after a fresh backup
    // exists) — unless the checkpoint came off the durable log, which
    // survives the holder.
    auto entry = cluster->backups()->Retrieve(ctx->target);
    ctx->have_backup = entry.ok();
    if (ctx->have_backup) {
      ctx->base = entry.value().checkpoint;
      ctx->holder = entry.value().holder;
      ctx->from_disk = entry.value().from_disk;
      runtime::OperatorInstance* h = cluster->GetInstance(ctx->holder);
      const bool holder_live = h != nullptr && h->alive() && !h->stopped();
      if (ctx->from_disk) {
        // Durable-log fallback (kDisk, or kTiered after the holder died):
        // recovery proceeds through the correlated owner+holder failure the
        // in-memory tier cannot survive. A dead holder just means the new
        // partitions get no initial in-memory backup.
        if (!holder_live) ctx->holder = kInvalidInstance;
      } else if (!holder_live) {
        done(Status::Unavailable("backup holder failed"));
        return;
      }
    } else if (ctx->recovery) {
      runtime::OperatorInstance* t = cluster->GetInstance(ctx->target);
      SEEP_CHECK(t != nullptr);
      ctx->base.op = ctx->op;
      ctx->base.instance = ctx->target;
      ctx->base.key_range = t->key_range();
    } else {
      done(Status::Unavailable("backup disappeared"));
      return;
    }
    ctx->inherit_origin = ctx->recovery && ctx->pi == 1 && ctx->have_backup;

    auto parts_result =
        ctx->balanced_split
            ? core::PartitionCheckpointByRanges(
                  ctx->base, core::BalancedSplitRanges(ctx->base, ctx->pi))
            : core::PartitionCheckpoint(ctx->base, ctx->pi);
    if (!parts_result.ok()) {
      done(parts_result.status());
      return;
    }
    // Algorithm 2 audit: the split must exactly tile the parent's key range
    // and conserve every state entry and buffered tuple.
    if (auto* audit = cluster->audit()) {
      audit->OnPartitioned(ctx->base, parts_result.value());
    }
    ctx->parts = std::make_shared<std::vector<core::StateCheckpoint>>(
        std::move(parts_result).value());
    ctx->partition_delay = StateProcessingDelay(cluster, ctx->base.ByteSize());

    // Algorithm 3 lines 3-6: deploy pi new partitioned operators.
    for (uint32_t i = 0; i < ctx->pi; ++i) {
      auto deployed = cluster->membership()->DeployInstance(
          ctx->op, ctx->vms[i], (*ctx->parts)[i].key_range);
      SEEP_CHECK(deployed.ok());
      ctx->new_ids.push_back(deployed.value());
      NotePlanVmDisposed(*ctx, ctx->vms[i]);  // consumed by the deployment
    }
    ctx->vms.clear();
    done(Status::OK());
  };
  stage.compensate = [](PlanContext& ctx) { RetireDeployed(ctx); };
  return stage;
}

ReconfigStage ShipStage(SimTime deadline) {
  ReconfigStage stage;
  stage.kind = StageKind::kShip;
  stage.deadline = deadline;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    auto remaining = std::make_shared<uint32_t>(ctx->pi);
    for (uint32_t i = 0; i < ctx->pi; ++i) {
      ShipOnePartition(ctx, i, remaining, done);
    }
  };
  // Partial restores are undone by FetchAndPartition's compensation (the
  // deployed instances are retired wholesale, initial backups dropped with
  // them); nothing extra to undo here.
  stage.compensate = nullptr;
  return stage;
}

ReconfigStage HandoverStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kRestore;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    runtime::Cluster* cluster = ctx->cluster;
    if (ctx->on_restored) ctx->on_restored(cluster->Now());

    // Algorithm 3 line 7: the partition holding the restored buffer state
    // replays it to downstream operators; their duplicate filters discard
    // anything they already processed.
    runtime::OperatorInstance* first = cluster->GetInstance(ctx->new_ids[0]);
    SEEP_CHECK(first != nullptr);
    for (OperatorId down : cluster->graph()->Downstream(ctx->op)) {
      first->ReplayBuffer(down, INT64_MIN, cluster->LiveInstancesOf(down),
                          /*fence_id=*/0);
    }
    // A fresh-origin partition then discards the inherited buffer: its
    // tuples carry the parent's origin and clock and would break the
    // monotone-timestamp invariant the trim protocol relies on. (A serial
    // recovery inherits the parent's origin, so its buffer stays.)
    if (!ctx->inherit_origin) first->buffer_state().buffers().clear();

    // Algorithm 3 line 8: stop the old operator and release its VM. On the
    // graceful path we first capture its processed positions: the new
    // partitions suppress re-emission while catching up through tuples the
    // parent already delivered downstream.
    // Membership removal is deferred to the routing switch (reroute stage):
    // until then, the stopped parent's frozen acknowledgement position keeps
    // upstream buffers from being trimmed past the replay point.
    runtime::OperatorInstance* parent = cluster->GetInstance(ctx->target);
    SEEP_CHECK(parent != nullptr);
    if (!ctx->recovery) {
      core::InputPositions parent_positions = parent->positions();
      cluster->membership()->StopInstance(ctx->target, /*release_vm=*/true);
      if (!ctx->inherit_origin) {
        for (InstanceId id : ctx->new_ids) {
          cluster->GetInstance(id)->SetSuppressUntil(parent_positions);
        }
      }
    } else {
      cluster->membership()->StopInstance(ctx->target, /*release_vm=*/false);
    }
    done(Status::OK());
  };
  return stage;
}

ReconfigStage RerouteStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kReroute;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    // Algorithm 3 lines 9-11: stop upstream operators and repartition their
    // routing state, one control-plane round trip after the handover.
    ctx->cluster->simulation()->Schedule(ctx->control_delay, [ctx, done]() {
      if (!ctx->active) return;
      runtime::Cluster* cluster = ctx->cluster;
      cluster->membership()->FinalizeRetire(ctx->target);
      ctx->upstreams = cluster->UpstreamInstancesOf(ctx->op);
      for (InstanceId uid : ctx->upstreams) {
        cluster->GetInstance(uid)->Pause();
      }
      InstallCurrentRoutes(*ctx);
      done(Status::OK());
    });
  };
  return stage;
}

ReconfigStage SeedAcksAndReplayStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kSeedAcksAndReplay;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    runtime::Cluster* cluster = ctx->cluster;
    std::vector<runtime::OperatorInstance*> upstream;
    for (InstanceId uid : ctx->upstreams) {
      upstream.push_back(cluster->GetInstance(uid));
    }
    const core::InputPositions& restored = (*ctx->parts)[0].positions;
    for (auto* u : upstream) {
      u->PruneAcks(ctx->op);
      for (InstanceId id : ctx->new_ids) {
        u->SeedAck(ctx->op, id, restored.Get(u->origin()));
      }
    }

    // Fence: one per (upstream instance, new partition) pair; when all have
    // drained, the new partitions have caught up (Algorithm 3 lines 12-14).
    uint64_t fence = 0;
    if (!upstream.empty()) {
      auto on_caught_up = ctx->on_caught_up;
      fence = cluster->fences()->Register(
          static_cast<int>(upstream.size() * ctx->new_ids.size()),
          std::set<InstanceId>(ctx->new_ids.begin(), ctx->new_ids.end()),
          [on_caught_up](SimTime at) {
            if (on_caught_up) on_caught_up(at);
          });
    }
    for (auto* u : upstream) {
      u->ReplayBuffer(ctx->op, restored.Get(u->origin()), ctx->new_ids, fence);
      u->Resume();
    }
    done(Status::OK());
  };
  return stage;
}

ReconfigStage CommitScaleOutStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kCommit;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    runtime::Cluster* cluster = ctx->cluster;
    if (!ctx->recovery) {
      runtime::ScaleOutEvent event;
      event.at = cluster->Now();
      event.op = ctx->op;
      event.partitioned_instance = ctx->target;
      event.parallelism_before = static_cast<uint32_t>(ctx->partitions_before);
      event.parallelism_after =
          static_cast<uint32_t>(cluster->InstancesOf(ctx->op).size());
      cluster->metrics()->scale_outs.push_back(event);
      SEEP_LOG(kInfo, cluster->Now())
          << "scaled out op " << ctx->op << " to " << event.parallelism_after
          << " partitions";
    }
    done(Status::OK());
  };
  return stage;
}

ReconfigStage QuiesceAndDrainStage(SimTime deadline) {
  ReconfigStage stage;
  stage.kind = StageKind::kQuiesce;
  stage.deadline = deadline;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    ctx->partitions_before = ctx->cluster->InstancesOf(ctx->op).size();
    SuspendCheckpoints(*ctx, ctx->merge_a);
    SuspendCheckpoints(*ctx, ctx->merge_b);

    // Quiesce: pause every upstream instance, wait for both partitions to
    // drain, then capture consistent checkpoints and merge them (paper
    // §3.3's merge primitive for scale in).
    for (InstanceId uid : ctx->cluster->UpstreamInstancesOf(ctx->op)) {
      ctx->cluster->GetInstance(uid)->Pause();
      ctx->paused_upstreams.push_back(uid);
    }
    ctx->cluster->simulation()->Schedule(
        MillisToSim(100), [ctx, done]() { PollDrained(ctx, 0, done); });
  };
  stage.compensate = [](PlanContext& ctx) {
    for (InstanceId uid : ctx.paused_upstreams) {
      runtime::OperatorInstance* u = ctx.cluster->GetInstance(uid);
      if (u != nullptr) u->Resume();
    }
    ctx.paused_upstreams.clear();
    // The surviving merge partner must checkpoint again after an abort —
    // leaving it suspended would freeze its backup schedule forever.
    ResumeSuspended(ctx);
  };
  return stage;
}

ReconfigStage MergeStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kMerge;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    runtime::OperatorInstance* a = ctx->cluster->GetInstance(ctx->merge_a);
    runtime::OperatorInstance* b = ctx->cluster->GetInstance(ctx->merge_b);
    auto merged =
        core::MergeCheckpoints({a->MakeCheckpoint(), b->MakeCheckpoint()});
    SEEP_CHECK(merged.ok());
    ctx->merged =
        std::make_shared<core::StateCheckpoint>(std::move(merged).value());
    done(Status::OK());
  };
  return stage;
}

ReconfigStage DeployMergedStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kRestore;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    runtime::Cluster* cluster = ctx->cluster;
    auto deployed = cluster->membership()->DeployInstance(
        ctx->op, ctx->vms[0], ctx->merged->key_range);
    SEEP_CHECK(deployed.ok());
    NotePlanVmDisposed(*ctx, ctx->vms[0]);
    ctx->vms.clear();
    const InstanceId new_id = deployed.value();
    ctx->new_ids.push_back(new_id);
    runtime::OperatorInstance* inst = cluster->GetInstance(new_id);
    inst->Restore(*ctx->merged, /*inherit_origin=*/false);
    inst->Start();
    done(Status::OK());
  };
  stage.compensate = [](PlanContext& ctx) { RetireDeployed(ctx); };
  return stage;
}

ReconfigStage RerouteMergedStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kReroute;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    ctx->cluster->membership()->RetireInstance(ctx->merge_a,
                                               /*release_vm=*/true);
    ctx->cluster->membership()->RetireInstance(ctx->merge_b,
                                               /*release_vm=*/true);
    InstallCurrentRoutes(*ctx);
    done(Status::OK());
  };
  return stage;
}

ReconfigStage SeedAcksAndReplayMergedStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kSeedAcksAndReplay;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    const InstanceId new_id = ctx->new_ids[0];
    for (InstanceId uid : ctx->paused_upstreams) {
      runtime::OperatorInstance* u = ctx->cluster->GetInstance(uid);
      u->PruneAcks(ctx->op);
      u->SeedAck(ctx->op, new_id, ctx->merged->positions.Get(u->origin()));
      u->ReplayBuffer(ctx->op, ctx->merged->positions.Get(u->origin()),
                      {new_id}, /*fence_id=*/0);
      u->Resume();
    }
    ctx->paused_upstreams.clear();
    done(Status::OK());
  };
  return stage;
}

ReconfigStage CommitScaleInStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kCommit;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    runtime::Cluster* cluster = ctx->cluster;
    runtime::ScaleInEvent event;
    event.at = cluster->Now();
    event.op = ctx->op;
    event.merged_a = ctx->merge_a;
    event.merged_b = ctx->merge_b;
    event.merged_into = ctx->new_ids[0];
    event.parallelism_before = static_cast<uint32_t>(ctx->partitions_before);
    event.parallelism_after =
        static_cast<uint32_t>(cluster->InstancesOf(ctx->op).size());
    cluster->metrics()->scale_ins.push_back(event);
    SEEP_LOG(kInfo, cluster->Now())
        << "scaled in op " << ctx->op << " to " << event.parallelism_after
        << " partitions";
    done(Status::OK());
  };
  return stage;
}

ReconfigStage DeployReplacementStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kRestore;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    runtime::Cluster* cluster = ctx->cluster;
    auto deployed = cluster->membership()->DeployInstance(
        ctx->op, ctx->vms[0], ctx->replacement_range);
    SEEP_CHECK(deployed.ok());
    NotePlanVmDisposed(*ctx, ctx->vms[0]);
    ctx->vms.clear();
    const InstanceId new_id = deployed.value();
    ctx->new_ids.push_back(new_id);
    cluster->GetInstance(new_id)->Start();
    if (ctx->on_restored) ctx->on_restored(cluster->Now());
    done(Status::OK());
  };
  stage.compensate = [](PlanContext& ctx) { RetireDeployed(ctx); };
  return stage;
}

ReconfigStage RerouteRetireFailedStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kReroute;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    ctx->cluster->membership()->RetireInstance(ctx->target,
                                               /*release_vm=*/false);
    InstallCurrentRoutes(*ctx);
    done(Status::OK());
  };
  return stage;
}

ReconfigStage ReplayUpstreamBuffersStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kSeedAcksAndReplay;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    runtime::Cluster* cluster = ctx->cluster;
    const InstanceId new_id = ctx->new_ids[0];

    // Upstream backup: every upstream instance replays its (window-length)
    // buffer; the replacement rebuilds state by re-processing it all.
    std::vector<InstanceId> upstream = cluster->UpstreamInstancesOf(ctx->op);
    auto on_caught_up = ctx->on_caught_up;
    const uint64_t fence = cluster->fences()->Register(
        static_cast<int>(upstream.size()), {new_id},
        [on_caught_up](SimTime at) {
          if (on_caught_up) on_caught_up(at);
        });
    for (InstanceId uid : upstream) {
      cluster->GetInstance(uid)->ReplayBuffer(ctx->op, INT64_MIN, {new_id},
                                              fence);
    }
    done(Status::OK());
  };
  return stage;
}

ReconfigStage SourceReplayStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kSeedAcksAndReplay;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    SEEP_ASSERT_RUN_ON(sync::DriverThread);
    runtime::Cluster* cluster = ctx->cluster;
    const InstanceId new_id = ctx->new_ids[0];

    // Source replay: pause generation, reset the whole pipeline, and
    // recompute everything from the sources' buffered history [29].
    std::vector<InstanceId> source_instances;
    for (const auto& [id, inst] : cluster->instances()) {
      if (!inst->alive() || inst->stopped()) continue;
      if (inst->spec().kind == core::VertexKind::kSource) {
        inst->Pause();
        source_instances.push_back(id);
      } else if (inst->spec().kind == core::VertexKind::kOperator) {
        inst->ResetEmpty(cluster->NewOrigin());
      }
    }

    const int expected = ExpectedSourceFences(cluster, ctx->op);
    auto on_caught_up = ctx->on_caught_up;
    const uint64_t fence = cluster->fences()->Register(
        expected, {new_id},
        [cluster, on_caught_up, source_instances](SimTime at) {
          if (on_caught_up) on_caught_up(at);
          for (InstanceId sid : source_instances) {
            runtime::OperatorInstance* s = cluster->GetInstance(sid);
            if (s != nullptr) s->Resume();
          }
        });
    for (InstanceId sid : source_instances) {
      runtime::OperatorInstance* s = cluster->GetInstance(sid);
      for (OperatorId down : cluster->graph()->Downstream(s->op())) {
        s->ReplayBuffer(down, INT64_MIN, cluster->LiveInstancesOf(down),
                        fence);
      }
    }
    done(Status::OK());
  };
  return stage;
}

ReconfigStage CommitRecoveryStage() {
  ReconfigStage stage;
  stage.kind = StageKind::kCommit;
  stage.forward = [](const std::shared_ptr<PlanContext>& ctx, StageDone done) {
    (void)ctx;
    done(Status::OK());
  };
  return stage;
}

}  // namespace seep::control
