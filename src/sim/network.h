#ifndef SEEP_SIM_NETWORK_H_
#define SEEP_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "common/time.h"
#include "sim/simulation.h"

namespace seep::sim {

/// Network model parameters. Each VM has a dedicated full-duplex link to a
/// non-blocking core (star topology) — the standard abstraction for a cloud
/// datacenter fabric where the access link is the contention point.
struct NetworkConfig {
  /// One-way propagation delay between any two VMs.
  SimTime latency = MillisToSim(0.5);
  /// Per-VM uplink/downlink bandwidth in bytes per second. Small EC2
  /// instances in 2013 offered roughly ~100 Mb/s of usable throughput.
  double bandwidth_bytes_per_sec = 100e6 / 8;
};

/// Simulated network. Transfers occupy the sender's uplink and the
/// receiver's downlink FIFO: a large checkpoint backup or state replay
/// serialises behind earlier traffic on the same links, which is what gives
/// recovery its size-dependent cost (paper §6.2).
class Network {
 public:
  Network(Simulation* sim, NetworkConfig config)
      : sim_(sim), config_(config) {}

  /// Delivery callback type. The closure owns the message payload.
  using Delivery = std::function<void()>;

  /// Registers/unregisters a VM endpoint. Messages to unregistered endpoints
  /// are counted and dropped — this is how traffic to a failed VM dies.
  void Attach(VmId vm);
  void Detach(VmId vm);
  bool IsAttached(VmId vm) const { return endpoints_.contains(vm); }

  /// Sends `size_bytes` from `from` to `to`; runs `on_delivery` when the last
  /// byte arrives, unless either endpoint has been detached by then.
  ///
  /// `background` marks throttled bulk traffic (checkpoint backups): it
  /// waits behind foreground transfers and pays its own transmission time,
  /// but does not delay subsequent foreground traffic — the standard
  /// low-priority treatment for replication streams.
  void Send(VmId from, VmId to, uint64_t size_bytes, Delivery on_delivery,
            bool background = false);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Total bytes that have crossed a given VM's uplink/downlink; used by
  /// the backup load-balancing ablation.
  uint64_t UplinkBytes(VmId vm) const;
  uint64_t DownlinkBytes(VmId vm) const;

 private:
  struct Endpoint {
    SimTime uplink_free = 0;    // when the uplink finishes current transfers
    SimTime downlink_free = 0;  // same for the downlink
    uint64_t uplink_bytes = 0;
    uint64_t downlink_bytes = 0;
  };

  Simulation* sim_;
  NetworkConfig config_;
  std::unordered_map<VmId, Endpoint> endpoints_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace seep::sim

#endif  // SEEP_SIM_NETWORK_H_
