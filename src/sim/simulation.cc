#include "sim/simulation.h"

namespace seep::sim {

bool Simulation::FireNext() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      queue_.pop();
      continue;
    }
    SEEP_CHECK_GE(top.time, now_);
    now_ = top.time;
    std::function<void()> fn = std::move(top.fn);
    queue_.pop();
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulation::RunUntil(SimTime until) {
  SEEP_CHECK_GE(until, now_);
  while (!queue_.empty() && queue_.top().time <= until) {
    if (!FireNext()) break;
  }
  now_ = until;
}

void Simulation::RunAll() {
  while (FireNext()) {
  }
}

}  // namespace seep::sim
