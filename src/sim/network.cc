#include "sim/network.h"

#include <algorithm>

#include "common/macros.h"

namespace seep::sim {

void Network::Attach(VmId vm) { endpoints_.try_emplace(vm); }

void Network::Detach(VmId vm) { endpoints_.erase(vm); }

void Network::Send(VmId from, VmId to, uint64_t size_bytes,
                   Delivery on_delivery, bool background) {
  auto src = endpoints_.find(from);
  auto dst = endpoints_.find(to);
  if (src == endpoints_.end() || dst == endpoints_.end()) {
    ++messages_dropped_;
    return;
  }
  const SimTime now = sim_->Now();
  const SimTime tx_time = static_cast<SimTime>(
      static_cast<double>(size_bytes) / config_.bandwidth_bytes_per_sec *
      static_cast<double>(kMicrosPerSecond));

  // Serialise on the sender's uplink, then propagate, then serialise on the
  // receiver's downlink. Background transfers experience the queueing but
  // do not push the free-pointers forward, so they never delay foreground
  // data traffic.
  const SimTime uplink_done = std::max(now, src->second.uplink_free) + tx_time;
  if (!background) src->second.uplink_free = uplink_done;
  src->second.uplink_bytes += size_bytes;
  const SimTime at_receiver = uplink_done + config_.latency;
  const SimTime delivered =
      std::max(at_receiver, dst->second.downlink_free + config_.latency) +
      tx_time;
  if (!background) dst->second.downlink_free = delivered - config_.latency;
  dst->second.downlink_bytes += size_bytes;

  ++messages_sent_;
  bytes_sent_ += size_bytes;

  sim_->ScheduleAt(
      delivered, [this, to, cb = std::move(on_delivery)]() mutable {
        // The receiver may have failed while the message was in flight.
        if (!IsAttached(to)) {
          ++messages_dropped_;
          return;
        }
        cb();
      });
}

uint64_t Network::UplinkBytes(VmId vm) const {
  auto it = endpoints_.find(vm);
  return it == endpoints_.end() ? 0 : it->second.uplink_bytes;
}

uint64_t Network::DownlinkBytes(VmId vm) const {
  auto it = endpoints_.find(vm);
  return it == endpoints_.end() ? 0 : it->second.downlink_bytes;
}

}  // namespace seep::sim
