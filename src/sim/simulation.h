#ifndef SEEP_SIM_SIMULATION_H_
#define SEEP_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"
#include "common/time.h"

namespace seep::sim {

/// Handle for a scheduled event, usable with Simulation::Cancel. Value 0 is
/// never issued.
using EventId = uint64_t;

/// Deterministic discrete-event executor. Events fire in (time, insertion
/// sequence) order, so two runs that schedule identically behave identically.
/// This is the substrate that replaces the paper's EC2 deployment: simulated
/// VMs, network links and coordinators all schedule their work here.
class Simulation {
 public:
  /// The thread that constructs a Simulation is its driver thread: it (and
  /// only it) runs events and the protocol code they reach. Adoption is
  /// idempotent and deliberately permanent — tests and benches create many
  /// simulations from one harness thread, and that thread stays the driver.
  Simulation() { sync::DriverThread.Adopt(); }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at Now() + delay (delay >= 0).
  EventId Schedule(SimTime delay, std::function<void()> fn) {
    SEEP_CHECK_GE(delay, 0);
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time >= Now().
  EventId ScheduleAt(SimTime at, std::function<void()> fn) {
    SEEP_CHECK_GE(at, now_);
    const EventId id = ++next_id_;
    queue_.push(Event{at, id, std::move(fn)});
    return id;
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (the id space is never reused, so this is safe).
  void Cancel(EventId id) { cancelled_.insert(id); }

  /// Runs events until the queue is empty or `until` is reached (whichever is
  /// first); Now() advances to `until` even if the queue drains early.
  void RunUntil(SimTime until);

  /// Runs all pending events to quiescence.
  void RunAll();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    mutable std::function<void()> fn;  // moved out when the event fires
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  bool FireNext();

  SimTime now_ = 0;
  EventId next_id_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace seep::sim

#endif  // SEEP_SIM_SIMULATION_H_
