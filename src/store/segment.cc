#include "store/segment.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <sstream>

#include "serde/crc32c.h"
#include "serde/encoder.h"
#include "serde/frame.h"

namespace seep::store {
namespace {

constexpr char kSegmentMagic[8] = {'S', 'E', 'E', 'P', 'L', 'O', 'G', '1'};

/// Marks the scan torn at `pos` and stops it. valid_bytes stays wherever
/// the last good record ended.
void MarkTorn(SegmentScan* scan, uint64_t pos, const std::string& why) {
  scan->torn = true;
  std::ostringstream msg;
  msg << "torn at offset " << pos << ": " << why;
  scan->torn_detail = msg.str();
}

}  // namespace

std::vector<uint8_t> EncodeSegmentHeader(uint32_t id) {
  serde::Encoder enc;
  enc.AppendRaw(kSegmentMagic, sizeof(kSegmentMagic));
  enc.AppendFixed64(id);
  return std::move(enc).TakeBuffer();
}

[[nodiscard]]
Status ReadExact(int fd, uint64_t offset, uint8_t* out, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, out + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Corruption(std::string("pread: ") +
                                std::strerror(errno));
    }
    if (r == 0) return Status::Corruption("pread: unexpected end of file");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

SegmentScan ScanSegment(int fd, uint64_t file_size, uint64_t max_payload) {
  SegmentScan scan;
  uint8_t header[kSegmentHeaderBytes];
  if (file_size < kSegmentHeaderBytes ||
      !ReadExact(fd, 0, header, sizeof(header)).ok() ||
      std::memcmp(header, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    MarkTorn(&scan, 0, "bad segment header");
    return scan;
  }
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= uint64_t(header[8 + i]) << (8 * i);
  }
  scan.id = static_cast<uint32_t>(id);
  uint64_t pos = kSegmentHeaderBytes;
  scan.valid_bytes = pos;

  std::vector<uint8_t> buf;
  while (pos < file_size) {
    // Meta frame: [length | crc32c | encoded RecordMeta].
    uint8_t fh[serde::kFrameHeaderBytes];
    if (pos + sizeof(fh) > file_size ||
        !ReadExact(fd, pos, fh, sizeof(fh)).ok()) {
      MarkTorn(&scan, pos, "truncated meta frame header");
      return scan;
    }
    auto mh = serde::ReadFrameHeader(fh, sizeof(fh), kMaxMetaBytes);
    if (!mh.ok()) {
      MarkTorn(&scan, pos, mh.status().message());
      return scan;
    }
    const uint64_t meta_len = mh->payload_len;
    if (pos + sizeof(fh) + meta_len > file_size) {
      MarkTorn(&scan, pos, "truncated meta frame payload");
      return scan;
    }
    buf.resize(meta_len);
    if (!ReadExact(fd, pos + sizeof(fh), buf.data(), meta_len).ok()) {
      MarkTorn(&scan, pos, "meta frame payload read failed");
      return scan;
    }
    if (serde::Crc32c(buf.data(), buf.size()) != mh->crc) {
      MarkTorn(&scan, pos, "meta frame crc mismatch");
      return scan;
    }
    auto meta = DecodeRecordMeta(buf.data(), buf.size());
    if (!meta.ok()) {
      MarkTorn(&scan, pos, meta.status().message());
      return scan;
    }

    ScannedRecord rec;
    rec.meta = *meta;
    rec.record_offset = pos;
    rec.payload_offset = pos + sizeof(fh) + meta_len;

    // Payload: the checkpoint's own crc32c frame, validated end to end so a
    // record whose bytes the index would later serve is known intact now.
    if (rec.meta.payload_bytes > 0) {
      if (rec.meta.payload_bytes > max_payload + serde::kFrameHeaderBytes) {
        MarkTorn(&scan, pos, "payload larger than frame ceiling");
        return scan;
      }
      if (rec.payload_offset + rec.meta.payload_bytes > file_size) {
        MarkTorn(&scan, pos, "truncated record payload");
        return scan;
      }
      buf.resize(rec.meta.payload_bytes);
      if (!ReadExact(fd, rec.payload_offset, buf.data(), buf.size()).ok()) {
        MarkTorn(&scan, pos, "record payload read failed");
        return scan;
      }
      auto ph = serde::ReadFrameHeader(buf.data(), buf.size(), max_payload);
      if (!ph.ok()) {
        MarkTorn(&scan, pos, ph.status().message());
        return scan;
      }
      if (serde::kFrameHeaderBytes + ph->payload_len !=
          rec.meta.payload_bytes) {
        MarkTorn(&scan, pos, "payload frame length disagrees with meta");
        return scan;
      }
      if (serde::Crc32c(buf.data() + serde::kFrameHeaderBytes,
                        ph->payload_len) != ph->crc) {
        MarkTorn(&scan, pos, "payload frame crc mismatch");
        return scan;
      }
    }

    pos = rec.payload_offset + rec.meta.payload_bytes;
    scan.valid_bytes = pos;
    scan.records.push_back(rec);
  }
  return scan;
}

}  // namespace seep::store
