#ifndef SEEP_STORE_LOG_FORMAT_H_
#define SEEP_STORE_LOG_FORMAT_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/result.h"

namespace seep::store {

/// On-disk record kinds. A checkpoint record carries a payload (the
/// checkpoint's own [length | crc32c | payload] frame, written verbatim);
/// a tombstone carries none and terminally deletes its owner — instance ids
/// are never reused, so a tombstone can never be superseded by a later
/// checkpoint for the same owner.
enum class RecordType : uint8_t {
  kCheckpoint = 1,
  kTombstone = 2,
};

/// Metadata of one log record, encoded as the payload of a small crc32c
/// frame prepended to the checkpoint payload. `payload_bytes` is the exact
/// length of the payload that follows the meta frame on disk (0 for
/// tombstones), which is what lets the recovery scan skip a record without
/// decoding its checkpoint.
struct RecordMeta {
  RecordType type = RecordType::kCheckpoint;
  InstanceId owner = kInvalidInstance;
  OperatorId owner_op = 0;
  InstanceId holder = kInvalidInstance;
  uint64_t seq = 0;
  uint64_t raw_bytes = 0;  // encoded checkpoint size before compression
  bool compressed = false;
  uint64_t payload_bytes = 0;
};

/// Ceiling on an encoded RecordMeta. The recovery scan reads a meta frame
/// before trusting anything else in the record, so a corrupted length must
/// be rejected against a bound far below any plausible allocation.
inline constexpr uint64_t kMaxMetaBytes = 256;

/// Encodes `meta` and wraps it in a [length | crc32c | payload] frame —
/// the exact bytes written to disk ahead of the record payload.
std::vector<uint8_t> EncodeRecordHeader(const RecordMeta& meta);

/// Decodes a RecordMeta from an already-unframed meta payload. Returns
/// Corruption on truncation, trailing bytes, or an unknown record type.
[[nodiscard]]
Result<RecordMeta> DecodeRecordMeta(const uint8_t* data, size_t size);

}  // namespace seep::store

#endif  // SEEP_STORE_LOG_FORMAT_H_
