#include "store/log_format.h"

#include <utility>

#include "serde/decoder.h"
#include "serde/encoder.h"
#include "serde/frame.h"

namespace seep::store {

std::vector<uint8_t> EncodeRecordHeader(const RecordMeta& meta) {
  serde::Encoder enc;
  enc.AppendU8(static_cast<uint8_t>(meta.type));
  enc.AppendVarint64(meta.owner);
  enc.AppendVarint64(meta.owner_op);
  enc.AppendVarint64(meta.holder);
  enc.AppendVarint64(meta.seq);
  enc.AppendVarint64(meta.raw_bytes);
  enc.AppendU8(meta.compressed ? 1 : 0);
  enc.AppendVarint64(meta.payload_bytes);
  return serde::FramePayload(std::move(enc).TakeBuffer());
}

[[nodiscard]]
Result<RecordMeta> DecodeRecordMeta(const uint8_t* data, size_t size) {
  serde::Decoder dec(data, size);
  RecordMeta meta;
  SEEP_ASSIGN_OR_RETURN(const uint8_t type, dec.ReadU8());
  if (type != static_cast<uint8_t>(RecordType::kCheckpoint) &&
      type != static_cast<uint8_t>(RecordType::kTombstone)) {
    return Status::Corruption("unknown log record type");
  }
  meta.type = static_cast<RecordType>(type);
  SEEP_ASSIGN_OR_RETURN(const uint64_t owner, dec.ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(const uint64_t op, dec.ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(const uint64_t holder, dec.ReadVarint64());
  if (owner > kInvalidInstance || op > UINT32_MAX ||
      holder > kInvalidInstance) {
    return Status::Corruption("log record id out of range");
  }
  meta.owner = static_cast<InstanceId>(owner);
  meta.owner_op = static_cast<OperatorId>(op);
  meta.holder = static_cast<InstanceId>(holder);
  SEEP_ASSIGN_OR_RETURN(meta.seq, dec.ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(meta.raw_bytes, dec.ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(const uint8_t compressed, dec.ReadU8());
  meta.compressed = compressed != 0;
  SEEP_ASSIGN_OR_RETURN(meta.payload_bytes, dec.ReadVarint64());
  if (meta.type == RecordType::kTombstone && meta.payload_bytes != 0) {
    return Status::Corruption("tombstone record with payload");
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after log record meta");
  }
  return meta;
}

}  // namespace seep::store
