#include "store/checkpoint_log.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "serde/crc32c.h"
#include "store/segment.h"

namespace seep::store {
namespace {

constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".seeplog";

std::string SegmentFileName(uint32_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08u%s", kSegmentPrefix, id,
                kSegmentSuffix);
  return buf;
}

/// Parses "seg-<8 digits>.seeplog"; returns false for anything else.
bool ParseSegmentFileName(const std::string& name, uint32_t* id) {
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  if (name.size() != prefix.size() + 8 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 8; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *id = static_cast<uint32_t>(v);
  return true;
}

[[nodiscard]]
Status WriteExact(int fd, uint64_t offset, const uint8_t* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd, data + done, n - done,
                               static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("pwrite: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

[[nodiscard]] Status FsyncFd(int fd) {
  while (::fdatasync(fd) != 0) {
    if (errno == EINTR) continue;
    return Status::Internal(std::string("fdatasync: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

/// Durability of file creation needs the directory entry flushed too.
[[nodiscard]] Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(std::string("open dir: ") +
                            std::strerror(errno));
  }
  Status st = Status::OK();
  if (::fsync(fd) != 0) {
    st = Status::Internal(std::string("fsync dir: ") + std::strerror(errno));
  }
  ::close(fd);
  return st;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Order-independent replay of scanned records into (live, tombstoned):
/// a tombstone is terminal for its owner; otherwise the highest seq wins.
/// Shared by Recover and VerifyIndex so both agree on semantics.
struct ReplayState {
  struct Live {
    RecordMeta meta;
    uint32_t segment = 0;
    uint64_t record_offset = 0;
    uint64_t payload_offset = 0;
    uint64_t record_bytes = 0;
  };
  std::map<InstanceId, Live> live;
  std::map<InstanceId, Live> tombstones;

  void Apply(uint32_t segment, const ScannedRecord& rec,
             uint64_t record_bytes) {
    Live entry;
    entry.meta = rec.meta;
    entry.segment = segment;
    entry.record_offset = rec.record_offset;
    entry.payload_offset = rec.payload_offset;
    entry.record_bytes = record_bytes;
    const InstanceId owner = rec.meta.owner;
    if (rec.meta.type == RecordType::kTombstone) {
      live.erase(owner);
      tombstones.emplace(owner, entry);
      return;
    }
    if (tombstones.count(owner) != 0) return;  // never resurrect
    auto it = live.find(owner);
    if (it == live.end() || rec.meta.seq >= it->second.meta.seq) {
      live[owner] = entry;
    }
  }
};

uint64_t RecordBytes(const ScannedRecord& rec) {
  return (rec.payload_offset - rec.record_offset) + rec.meta.payload_bytes;
}

}  // namespace

CheckpointLog::CheckpointLog(CheckpointLogConfig config)
    : config_(std::move(config)) {}

[[nodiscard]] Result<std::unique_ptr<CheckpointLog>> CheckpointLog::Open(
    CheckpointLogConfig config) {
  if (config.directory.empty()) {
    return Status::InvalidArgument("checkpoint log needs a directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(config.directory, ec);
  if (ec) {
    return Status::Internal("create " + config.directory + ": " +
                            ec.message());
  }
  std::unique_ptr<CheckpointLog> log(new CheckpointLog(std::move(config)));
  SEEP_RETURN_IF_ERROR(log->Recover());
  if (log->config_.background_compaction) {
    CheckpointLog* raw = log.get();
    log->compactor_ = std::thread([raw] { raw->CompactorLoop(); });
  }
  return log;
}

CheckpointLog::~CheckpointLog() {
  {
    sync::MutexLock lock(&mu_);
    stop_ = true;
    compaction_cv_.NotifyAll();
  }
  if (compactor_.joinable()) compactor_.join();
  sync::MutexLock lock(&mu_);
  if (config_.fsync != FsyncPolicy::kNever) {
    // A destructor cannot propagate, but a failed final fsync is
    // potential data loss and must at least be observable.
    const Status final_sync = MaybeFsyncLocked(/*force=*/true);
    if (!final_sync.ok()) {
      SEEP_LOG(kWarn, 0) << "final fsync on close failed: "
                         << final_sync.message();
    }
  }
  for (auto& [id, seg] : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

[[nodiscard]] Status CheckpointLog::Recover() {
  const uint64_t t0 = NowNanos();
  std::vector<std::pair<uint32_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.directory, ec)) {
    uint32_t id = 0;
    if (ParseSegmentFileName(entry.path().filename().string(), &id)) {
      files.emplace_back(id, entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("list " + config_.directory + ": " +
                            ec.message());
  }
  std::sort(files.begin(), files.end());

  sync::MutexLock lock(&mu_);
  ReplayState replay;
  for (const auto& [id, path] : files) {
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) {
      return Status::Internal("open " + path + ": " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::Internal("fstat " + path + ": " + std::strerror(errno));
    }
    const auto size = static_cast<uint64_t>(st.st_size);
    SegmentScan scan = ScanSegment(fd, size, config_.max_payload);
    ++recovery_info_.segments_scanned;
    // A file whose header did not validate (or that recorded a different
    // id than its name) contributes nothing; drop it entirely.
    if (scan.valid_bytes < kSegmentHeaderBytes || scan.id != id) {
      recovery_info_.torn = true;
      recovery_info_.torn_detail = path + ": " +
                                   (scan.torn_detail.empty()
                                        ? "segment id mismatch"
                                        : scan.torn_detail);
      recovery_info_.torn_bytes += size;
      ::close(fd);
      ::unlink(path.c_str());
      continue;
    }
    if (scan.valid_bytes < size) {
      // Torn tail: truncate at the first bad frame so the file and the
      // replayed index agree byte for byte.
      recovery_info_.torn = true;
      recovery_info_.torn_detail = path + ": " + scan.torn_detail;
      recovery_info_.torn_bytes += size - scan.valid_bytes;
      if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
        ::close(fd);
        return Status::Internal("ftruncate " + path + ": " +
                                std::strerror(errno));
      }
    }
    for (const auto& rec : scan.records) {
      replay.Apply(id, rec, RecordBytes(rec));
      ++recovery_info_.records_scanned;
    }
    Segment seg;
    seg.path = path;
    seg.fd = fd;
    seg.bytes = scan.valid_bytes;
    seg.sealed = true;  // the highest id is unsealed below
    segments_.emplace(id, seg);
  }

  for (const auto& [owner, live] : replay.live) {
    IndexEntry e;
    e.meta = live.meta;
    e.segment = live.segment;
    e.record_offset = live.record_offset;
    e.payload_offset = live.payload_offset;
    e.record_bytes = live.record_bytes;
    index_.emplace(owner, e);
    segments_[live.segment].live += live.record_bytes;
  }
  for (const auto& [owner, tomb] : replay.tombstones) {
    IndexEntry e;
    e.meta = tomb.meta;
    e.segment = tomb.segment;
    e.record_offset = tomb.record_offset;
    e.payload_offset = tomb.payload_offset;
    e.record_bytes = tomb.record_bytes;
    tombstones_.emplace(owner, e);
    segments_[tomb.segment].live += tomb.record_bytes;
  }

  if (segments_.empty()) {
    SEEP_RETURN_IF_ERROR(CreateSegmentLocked(next_segment_id_));
    next_segment_id_ += 1;
  } else {
    active_id_ = segments_.rbegin()->first;
    segments_[active_id_].sealed = false;
    next_segment_id_ = active_id_ + 1;
  }
  last_fsync_ = std::chrono::steady_clock::now();

  recovery_info_.live_records = index_.size();
  const uint64_t nanos = NowNanos() - t0;
  metrics_.recovery_scan_nanos.store(nanos, std::memory_order_relaxed);
  metrics_.recovery_records_scanned.store(recovery_info_.records_scanned,
                                          std::memory_order_relaxed);
  metrics_.recovery_torn_bytes.store(recovery_info_.torn_bytes,
                                     std::memory_order_relaxed);
  return Status::OK();
}

[[nodiscard]] Status CheckpointLog::CreateSegmentLocked(uint32_t id) {
  Segment seg;
  seg.path = config_.directory + "/" + SegmentFileName(id);
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (seg.fd < 0) {
    return Status::Internal("open " + seg.path + ": " +
                            std::strerror(errno));
  }
  const std::vector<uint8_t> header = EncodeSegmentHeader(id);
  Status st = WriteExact(seg.fd, 0, header.data(), header.size());
  if (st.ok() && config_.fsync != FsyncPolicy::kNever) {
    st = FsyncFd(seg.fd);
    if (st.ok()) st = FsyncDirectory(config_.directory);
  }
  if (!st.ok()) {
    ::close(seg.fd);
    return st;
  }
  seg.bytes = header.size();
  segments_.emplace(id, seg);
  active_id_ = id;
  return Status::OK();
}

[[nodiscard]] Status CheckpointLog::RollSegmentLocked() {
  Segment& act = segments_[active_id_];
  if (config_.fsync != FsyncPolicy::kNever) {
    SEEP_RETURN_IF_ERROR(FsyncFd(act.fd));
    dirty_since_fsync_ = false;
  }
  act.sealed = true;
  const uint32_t id = next_segment_id_;
  next_segment_id_ += 1;
  return CreateSegmentLocked(id);
}

[[nodiscard]] Status CheckpointLog::AppendRecordLocked(const RecordMeta& meta,
                                         const uint8_t* payload, size_t n,
                                         IndexEntry* out) {
  const std::vector<uint8_t> header = EncodeRecordHeader(meta);
  const uint64_t rec_bytes = header.size() + n;
  {
    const Segment& act = segments_[active_id_];
    if (act.bytes > kSegmentHeaderBytes &&
        act.bytes + rec_bytes > config_.segment_bytes) {
      SEEP_RETURN_IF_ERROR(RollSegmentLocked());
    }
  }
  Segment& act = segments_[active_id_];
  SEEP_RETURN_IF_ERROR(
      WriteExact(act.fd, act.bytes, header.data(), header.size()));
  if (n > 0) {
    SEEP_RETURN_IF_ERROR(
        WriteExact(act.fd, act.bytes + header.size(), payload, n));
  }
  out->meta = meta;
  out->segment = active_id_;
  out->record_offset = act.bytes;
  out->payload_offset = act.bytes + header.size();
  out->record_bytes = rec_bytes;
  act.bytes += rec_bytes;
  act.live += rec_bytes;
  dirty_since_fsync_ = true;
  metrics_.append_bytes.fetch_add(rec_bytes, std::memory_order_relaxed);
  return MaybeFsyncLocked(/*force=*/false);
}

[[nodiscard]] Status CheckpointLog::MaybeFsyncLocked(bool force) {
  if (!dirty_since_fsync_ && !force) return Status::OK();
  bool do_sync = force;
  switch (config_.fsync) {
    case FsyncPolicy::kAlways:
      do_sync = true;
      break;
    case FsyncPolicy::kIntervalMs: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_fsync_ >=
          std::chrono::milliseconds(config_.fsync_interval_ms)) {
        do_sync = true;
      }
      break;
    }
    case FsyncPolicy::kNever:
      break;
  }
  if (!do_sync) return Status::OK();
  const uint64_t t0 = NowNanos();
  SEEP_RETURN_IF_ERROR(FsyncFd(segments_[active_id_].fd));
  metrics_.RecordFsync(NowNanos() - t0);
  last_fsync_ = std::chrono::steady_clock::now();
  dirty_since_fsync_ = false;
  return Status::OK();
}

[[nodiscard]]
Status CheckpointLog::Append(RecordMeta meta, const uint8_t* payload,
                             size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("checkpoint record needs a payload");
  }
  if (n > config_.max_payload + serde::kFrameHeaderBytes) {
    return Status::InvalidArgument("checkpoint payload exceeds frame "
                                   "ceiling");
  }
  meta.type = RecordType::kCheckpoint;
  meta.payload_bytes = n;
  bool inline_compact = false;
  {
    sync::MutexLock lock(&mu_);
    if (tombstones_.count(meta.owner) != 0) {
      return Status::FailedPrecondition("owner is tombstoned");
    }
    IndexEntry e;
    SEEP_RETURN_IF_ERROR(AppendRecordLocked(meta, payload, n, &e));
    auto it = index_.find(meta.owner);
    if (it != index_.end()) {
      segments_[it->second.segment].live -= it->second.record_bytes;
      it->second = e;
    } else {
      index_.emplace(meta.owner, e);
    }
    metrics_.appends.fetch_add(1, std::memory_order_relaxed);
    inline_compact = SignalCompactionLocked();
  }
  if (inline_compact) return CompactOnce();
  return Status::OK();
}

[[nodiscard]] Status CheckpointLog::AppendTombstone(InstanceId owner) {
  RecordMeta meta;
  meta.type = RecordType::kTombstone;
  meta.owner = owner;
  bool inline_compact = false;
  {
    sync::MutexLock lock(&mu_);
    if (tombstones_.count(owner) != 0) return Status::OK();
    IndexEntry e;
    SEEP_RETURN_IF_ERROR(AppendRecordLocked(meta, nullptr, 0, &e));
    auto it = index_.find(owner);
    if (it != index_.end()) {
      segments_[it->second.segment].live -= it->second.record_bytes;
      index_.erase(it);
    }
    tombstones_.emplace(owner, e);
    metrics_.tombstones.fetch_add(1, std::memory_order_relaxed);
    inline_compact = SignalCompactionLocked();
  }
  if (inline_compact) return CompactOnce();
  return Status::OK();
}

[[nodiscard]] Result<std::vector<uint8_t>> CheckpointLog::ReadPayload(
    InstanceId owner) const {
  sync::MutexLock lock(&mu_);
  auto it = index_.find(owner);
  if (it == index_.end()) {
    return Status::NotFound("no live checkpoint for owner");
  }
  const IndexEntry& e = it->second;
  std::vector<uint8_t> buf(e.meta.payload_bytes);
  auto seg = segments_.find(e.segment);
  SEEP_CHECK(seg != segments_.end());
  SEEP_RETURN_IF_ERROR(
      ReadExact(seg->second.fd, e.payload_offset, buf.data(), buf.size()));
  metrics_.reads.fetch_add(1, std::memory_order_relaxed);
  metrics_.read_bytes.fetch_add(buf.size(), std::memory_order_relaxed);
  return buf;
}

std::optional<RecordMeta> CheckpointLog::Find(InstanceId owner) const {
  sync::MutexLock lock(&mu_);
  auto it = index_.find(owner);
  if (it == index_.end()) return std::nullopt;
  return it->second.meta;
}

bool CheckpointLog::Has(InstanceId owner) const {
  sync::MutexLock lock(&mu_);
  return index_.count(owner) != 0;
}

std::vector<RecordMeta> CheckpointLog::LiveRecords() const {
  sync::MutexLock lock(&mu_);
  std::vector<RecordMeta> out;
  out.reserve(index_.size());
  for (const auto& [owner, e] : index_) out.push_back(e.meta);
  return out;
}

[[nodiscard]] Status CheckpointLog::Flush() {
  sync::MutexLock lock(&mu_);
  return MaybeFsyncLocked(/*force=*/true);
}

bool CheckpointLog::CompactionNeededLocked() const {
  uint64_t sealed_payload = 0;
  uint64_t sealed_live = 0;
  for (const auto& [id, seg] : segments_) {
    if (!seg.sealed) continue;
    sealed_payload += seg.bytes - kSegmentHeaderBytes;
    sealed_live += seg.live;
  }
  if (sealed_payload == 0) return false;
  const uint64_t dead = sealed_payload - sealed_live;
  if (dead < config_.compact_min_bytes) return false;
  return static_cast<double>(dead) >=
         config_.compact_min_dead_ratio *
             static_cast<double>(sealed_payload);
}

bool CheckpointLog::SignalCompactionLocked() {
  if (compaction_running_ || compaction_requested_) return false;
  if (!CompactionNeededLocked()) return false;
  if (config_.background_compaction) {
    compaction_requested_ = true;
    compaction_cv_.NotifyAll();
    return false;
  }
  return true;
}

void CheckpointLog::CompactorLoop() {
  sync::ScopedThreadRole role(sync::StoreCompactorThread);
  while (true) {
    {
      sync::MutexLock lock(&mu_);
      compaction_cv_.Wait(&mu_, [this] {
        mu_.AssertHeld();
        return stop_ || compaction_requested_;
      });
      if (stop_) return;
      compaction_requested_ = false;
    }
    const Status st = CompactOnce();
    if (!st.ok()) {
      sync::MutexLock lock(&mu_);
      last_compaction_error_ = st;
    }
  }
}

[[nodiscard]] Status CheckpointLog::CompactOnce() {
  // Phase 1: snapshot the survivors and victims under mu_. Sealed segments
  // are immutable and their fds are closed only by this function (single
  // flight via compaction_running_), so phase 2 can read them lock-free.
  std::vector<Survivor> survivors;
  std::set<uint32_t> victims;
  uint64_t bytes_in = 0;
  uint32_t new_id = 0;
  std::map<uint32_t, int> victim_fds;
  {
    sync::MutexLock lock(&mu_);
    if (compaction_running_) return Status::OK();
    for (const auto& [id, seg] : segments_) {
      if (!seg.sealed) continue;
      victims.insert(id);
      victim_fds[id] = seg.fd;
      bytes_in += seg.bytes;
    }
    if (victims.empty()) return Status::OK();
    for (const auto& [owner, e] : index_) {
      if (victims.count(e.segment) != 0) {
        survivors.push_back({owner, false, e});
      }
    }
    for (const auto& [owner, e] : tombstones_) {
      if (victims.count(e.segment) != 0) {
        survivors.push_back({owner, true, e});
      }
    }
    new_id = next_segment_id_;
    next_segment_id_ += 1;
    compaction_running_ = true;
  }

  // Phase 2: rewrite the survivors verbatim into a fresh sealed segment,
  // without holding mu_ — appends and reads proceed concurrently.
  struct NewLocation {
    uint64_t record_offset = 0;
    uint64_t payload_offset = 0;
  };
  std::vector<NewLocation> locations(survivors.size());
  Segment fresh;
  fresh.sealed = true;
  uint64_t bytes_out = 0;
  Status st = Status::OK();
  if (!survivors.empty()) {
    fresh.path = config_.directory + "/" + SegmentFileName(new_id);
    fresh.fd = ::open(fresh.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fresh.fd < 0) {
      st = Status::Internal("open " + fresh.path + ": " +
                            std::strerror(errno));
    }
    if (st.ok()) {
      const std::vector<uint8_t> header = EncodeSegmentHeader(new_id);
      st = WriteExact(fresh.fd, 0, header.data(), header.size());
      fresh.bytes = header.size();
    }
    std::vector<uint8_t> buf;
    for (size_t i = 0; st.ok() && i < survivors.size(); ++i) {
      const IndexEntry& e = survivors[i].entry;
      buf.resize(e.record_bytes);
      st = ReadExact(victim_fds[e.segment], e.record_offset, buf.data(),
                     buf.size());
      if (!st.ok()) break;
      st = WriteExact(fresh.fd, fresh.bytes, buf.data(), buf.size());
      if (!st.ok()) break;
      locations[i].record_offset = fresh.bytes;
      locations[i].payload_offset =
          fresh.bytes + (e.payload_offset - e.record_offset);
      fresh.bytes += e.record_bytes;
    }
    if (st.ok() && config_.fsync != FsyncPolicy::kNever) {
      st = FsyncFd(fresh.fd);
      if (st.ok()) st = FsyncDirectory(config_.directory);
    }
    bytes_out = fresh.bytes;
    if (!st.ok() && fresh.fd >= 0) {
      // Failed pass: drop the half-written output, keep the victims.
      ::close(fresh.fd);
      ::unlink(fresh.path.c_str());
      fresh.fd = -1;
    }
  }

  // Phase 3: install the swap under mu_. An entry that moved while we
  // copied (superseded by a fresh append or tombstone) keeps its current
  // location; its stale copy in the fresh segment is dead weight.
  std::vector<std::string> unlink_paths;
  {
    sync::MutexLock lock(&mu_);
    compaction_running_ = false;
    if (!st.ok()) return st;
    if (fresh.fd >= 0) {
      for (size_t i = 0; i < survivors.size(); ++i) {
        const Survivor& s = survivors[i];
        auto& table = s.tombstone ? tombstones_ : index_;
        auto it = table.find(s.owner);
        if (it == table.end() ||
            it->second.segment != s.entry.segment ||
            it->second.record_offset != s.entry.record_offset) {
          continue;  // superseded mid-compaction
        }
        it->second.segment = new_id;
        it->second.record_offset = locations[i].record_offset;
        it->second.payload_offset = locations[i].payload_offset;
        fresh.live += it->second.record_bytes;
      }
      segments_.emplace(new_id, fresh);
    }
    for (uint32_t id : victims) {
      auto it = segments_.find(id);
      SEEP_CHECK(it != segments_.end());
      ::close(it->second.fd);
      unlink_paths.push_back(it->second.path);
      segments_.erase(it);
    }
    metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
    metrics_.compaction_bytes_in.fetch_add(bytes_in,
                                           std::memory_order_relaxed);
    metrics_.compaction_bytes_out.fetch_add(bytes_out,
                                            std::memory_order_relaxed);
  }
  for (const auto& path : unlink_paths) ::unlink(path.c_str());
  return Status::OK();
}

[[nodiscard]] Status CheckpointLog::CompactNow() {
  return CompactOnce();
}

[[nodiscard]] Status CheckpointLog::SpotCheck(InstanceId owner) const {
  sync::MutexLock lock(&mu_);
  auto it = index_.find(owner);
  if (it == index_.end()) {
    return Status::NotFound("no live checkpoint for owner");
  }
  const IndexEntry& e = it->second;
  auto seg = segments_.find(e.segment);
  SEEP_CHECK(seg != segments_.end());
  uint8_t fh[serde::kFrameHeaderBytes];
  SEEP_RETURN_IF_ERROR(
      ReadExact(seg->second.fd, e.record_offset, fh, sizeof(fh)));
  SEEP_ASSIGN_OR_RETURN(const serde::FrameHeader header,
                        serde::ReadFrameHeader(fh, sizeof(fh),
                                               kMaxMetaBytes));
  std::vector<uint8_t> buf(header.payload_len);
  SEEP_RETURN_IF_ERROR(ReadExact(seg->second.fd,
                                 e.record_offset + sizeof(fh), buf.data(),
                                 buf.size()));
  if (serde::Crc32c(buf.data(), buf.size()) != header.crc) {
    return Status::Corruption("meta frame crc mismatch on disk");
  }
  SEEP_ASSIGN_OR_RETURN(const RecordMeta disk,
                        DecodeRecordMeta(buf.data(), buf.size()));
  if (disk.owner != e.meta.owner || disk.seq != e.meta.seq ||
      disk.payload_bytes != e.meta.payload_bytes) {
    std::ostringstream msg;
    msg << "index/disk divergence for instance " << owner << ": index seq "
        << e.meta.seq << " disk seq " << disk.seq;
    return Status::Corruption(msg.str());
  }
  return Status::OK();
}

[[nodiscard]] Status CheckpointLog::VerifyIndexLocked() const {
  ReplayState replay;
  for (const auto& [id, seg] : segments_) {
    SegmentScan scan = ScanSegment(seg.fd, seg.bytes, config_.max_payload);
    if (scan.torn || scan.valid_bytes != seg.bytes) {
      return Status::Corruption(seg.path + " no longer scans clean: " +
                                scan.torn_detail);
    }
    for (const auto& rec : scan.records) {
      replay.Apply(id, rec, RecordBytes(rec));
    }
  }
  if (replay.live.size() != index_.size()) {
    std::ostringstream msg;
    msg << "index has " << index_.size() << " live owners, log replays "
        << replay.live.size();
    return Status::Corruption(msg.str());
  }
  for (const auto& [owner, e] : index_) {
    auto it = replay.live.find(owner);
    if (it == replay.live.end()) {
      std::ostringstream msg;
      msg << "instance " << owner << " indexed but not in the log";
      return Status::Corruption(msg.str());
    }
    const RecordMeta& disk = it->second.meta;
    if (disk.seq != e.meta.seq ||
        disk.payload_bytes != e.meta.payload_bytes ||
        disk.holder != e.meta.holder ||
        disk.raw_bytes != e.meta.raw_bytes ||
        disk.compressed != e.meta.compressed) {
      std::ostringstream msg;
      msg << "instance " << owner << " index meta disagrees with log "
          << "(index seq " << e.meta.seq << ", log seq " << disk.seq << ")";
      return Status::Corruption(msg.str());
    }
  }
  for (const auto& [owner, e] : tombstones_) {
    if (replay.tombstones.count(owner) == 0) {
      std::ostringstream msg;
      msg << "instance " << owner << " tombstoned in memory but not in "
          << "the log";
      return Status::Corruption(msg.str());
    }
  }
  if (replay.tombstones.size() != tombstones_.size()) {
    return Status::Corruption("log replays tombstones the index misses");
  }
  return Status::OK();
}

[[nodiscard]] Status CheckpointLog::VerifyIndex() const {
  sync::MutexLock lock(&mu_);
  return VerifyIndexLocked();
}

size_t CheckpointLog::segment_count() const {
  sync::MutexLock lock(&mu_);
  return segments_.size();
}

uint64_t CheckpointLog::total_bytes() const {
  sync::MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [id, seg] : segments_) total += seg.bytes;
  return total;
}

uint64_t CheckpointLog::live_bytes() const {
  sync::MutexLock lock(&mu_);
  uint64_t live = 0;
  for (const auto& [id, seg] : segments_) live += seg.live;
  return live;
}

[[nodiscard]] Status CheckpointLog::last_compaction_error() const {
  sync::MutexLock lock(&mu_);
  return last_compaction_error_;
}

}  // namespace seep::store
