#ifndef SEEP_STORE_STORE_METRICS_H_
#define SEEP_STORE_STORE_METRICS_H_

#include <atomic>
#include <cstdint>

namespace seep::store {

/// Per-operation counters for the durable checkpoint log. All fields are
/// relaxed atomics: the log is written from the driver thread but compacted
/// (and read by tests/benches) from other threads, and a torn counter read
/// must never require the log's mutex.
struct StoreMetrics {
  // Append path.
  std::atomic<uint64_t> appends{0};
  std::atomic<uint64_t> append_bytes{0};  // header frame + payload bytes
  std::atomic<uint64_t> tombstones{0};

  // Fsync policy.
  std::atomic<uint64_t> fsyncs{0};
  std::atomic<uint64_t> fsync_nanos_total{0};
  std::atomic<uint64_t> fsync_nanos_max{0};

  // Background compaction (write amplification = bytes_written /
  // live bytes carried forward).
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> compaction_bytes_in{0};   // sealed bytes examined
  std::atomic<uint64_t> compaction_bytes_out{0};  // bytes rewritten

  // Startup recovery scan.
  std::atomic<uint64_t> recovery_scan_nanos{0};
  std::atomic<uint64_t> recovery_records_scanned{0};
  std::atomic<uint64_t> recovery_torn_bytes{0};  // truncated torn tail

  // Read path (disk recovery).
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> read_bytes{0};

  void RecordFsync(uint64_t nanos) {
    fsyncs.fetch_add(1, std::memory_order_relaxed);
    fsync_nanos_total.fetch_add(nanos, std::memory_order_relaxed);
    uint64_t prev = fsync_nanos_max.load(std::memory_order_relaxed);
    while (prev < nanos && !fsync_nanos_max.compare_exchange_weak(
                               prev, nanos, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace seep::store

#endif  // SEEP_STORE_STORE_METRICS_H_
