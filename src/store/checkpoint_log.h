#ifndef SEEP_STORE_CHECKPOINT_LOG_H_
#define SEEP_STORE_CHECKPOINT_LOG_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/sync.h"
#include "serde/frame.h"
#include "store/log_format.h"
#include "store/store_metrics.h"

namespace seep::store {

/// When appended records reach the disk platter.
enum class FsyncPolicy : uint8_t {
  kAlways,      // fdatasync after every append
  kIntervalMs,  // fdatasync on the first append after the interval elapses
  kNever,       // the OS page cache decides (plus explicit Flush calls)
};

struct CheckpointLogConfig {
  /// Directory holding the segment files; created if missing.
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kIntervalMs;
  uint64_t fsync_interval_ms = 50;
  /// A segment holding at least one record seals once it grows past this.
  uint64_t segment_bytes = 8ull << 20;
  /// Compaction runs when sealed segments hold at least this many dead
  /// bytes AND the dead fraction of sealed bytes reaches the ratio.
  uint64_t compact_min_bytes = 1ull << 20;
  double compact_min_dead_ratio = 0.5;
  /// Off: compaction only runs via CompactNow (deterministic tests).
  bool background_compaction = true;
  /// Ceiling on one record's checkpoint payload, pre-allocation-checked.
  uint64_t max_payload = serde::kDefaultMaxFramePayload;
};

/// What the startup recovery scan found and repaired.
struct RecoveryInfo {
  uint64_t segments_scanned = 0;
  uint64_t records_scanned = 0;  // intact records replayed into the index
  uint64_t live_records = 0;     // owners with a live checkpoint after replay
  uint64_t torn_bytes = 0;       // truncated from torn tails
  bool torn = false;
  std::string torn_detail;
};

/// A segmented, append-only, crc32c-framed checkpoint log with an in-memory
/// index: the durable backend behind the BackupStore seam.
///
/// Records are (meta frame, payload) pairs where the payload is the
/// checkpoint's own [length | crc32c | payload] frame written verbatim — the
/// bytes the chunk reassembler hands over are appended without re-encoding,
/// and ReadPayload returns exactly those bytes for the normal unframe +
/// decompress + decode receive path. A tombstone record terminally deletes
/// its owner (instance ids are never reused). The latest intact checkpoint
/// record per non-tombstoned owner wins, independent of segment order, so
/// compaction can rewrite survivors into fresh segments without ordering
/// constraints.
///
/// Crash consistency: Open scans every segment front to back, verifying
/// both the meta frame and the payload frame crc32c of each record, and
/// truncates a segment at the first bad frame — a torn tail can only drop
/// the newest records, never resurrect superseded ones, because replay
/// consumes only the intact prefix.
///
/// Threading: the driver thread appends and reads under `mu_`; one
/// background compactor thread (sync.h discipline, StoreCompactorThread
/// role) rewrites sealed segments, holding `mu_` only to snapshot survivors
/// and to install the swap. `mu_` is a leaf in tools/lock_order.json.
class CheckpointLog {
 public:
  [[nodiscard]] static Result<std::unique_ptr<CheckpointLog>> Open(
      CheckpointLogConfig config);
  ~CheckpointLog();

  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  /// Appends a checkpoint record. `meta.payload_bytes` is derived from `n`;
  /// `payload` must be the checkpoint's framed bytes. Fails with
  /// FailedPrecondition for a tombstoned owner.
  [[nodiscard]]
  Status Append(RecordMeta meta, const uint8_t* payload, size_t n);

  /// Appends a tombstone, terminally deleting `owner`. Idempotent.
  [[nodiscard]] Status AppendTombstone(InstanceId owner);

  /// Reads back the framed payload of `owner`'s live checkpoint.
  [[nodiscard]]
  Result<std::vector<uint8_t>> ReadPayload(InstanceId owner) const;

  /// Index lookup: the live checkpoint's meta, or nullopt.
  std::optional<RecordMeta> Find(InstanceId owner) const;
  bool Has(InstanceId owner) const;

  /// Metas of every live (non-tombstoned) checkpoint, owner-ordered.
  std::vector<RecordMeta> LiveRecords() const;

  /// Forces an fdatasync of the active segment regardless of policy.
  [[nodiscard]] Status Flush();

  /// Runs one synchronous compaction pass over the sealed segments (no-op
  /// when none are sealed). Tests and benches call this for determinism.
  [[nodiscard]] Status CompactNow();

  /// Full cross-check: rescans the segment files and verifies the replayed
  /// state matches the in-memory index exactly. Expensive; tests only.
  [[nodiscard]] Status VerifyIndex() const;

  /// Cheap per-operation check (audit level 2): re-reads `owner`'s meta
  /// frame from disk and compares it against the index entry.
  [[nodiscard]] Status SpotCheck(InstanceId owner) const;

  const StoreMetrics& metrics() const { return metrics_; }
  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  const CheckpointLogConfig& config() const { return config_; }

  size_t segment_count() const;
  uint64_t total_bytes() const;
  uint64_t live_bytes() const;
  [[nodiscard]] Status last_compaction_error() const;

 private:
  struct IndexEntry {
    RecordMeta meta;
    uint32_t segment = 0;
    uint64_t record_offset = 0;
    uint64_t payload_offset = 0;
    uint64_t record_bytes = 0;  // meta frame + payload
  };
  struct Segment {
    std::string path;
    int fd = -1;
    uint64_t bytes = 0;
    uint64_t live = 0;
    bool sealed = false;
  };
  /// A record carried forward by one compaction pass.
  struct Survivor {
    InstanceId owner = kInvalidInstance;
    bool tombstone = false;
    IndexEntry entry;
  };

  explicit CheckpointLog(CheckpointLogConfig config);

  [[nodiscard]] Status Recover();
  [[nodiscard]]
  Status AppendRecordLocked(const RecordMeta& meta, const uint8_t* payload,
                            size_t n, IndexEntry* out) SEEP_REQUIRES(mu_);
  [[nodiscard]] Status RollSegmentLocked() SEEP_REQUIRES(mu_);
  [[nodiscard]] Status CreateSegmentLocked(uint32_t id) SEEP_REQUIRES(mu_);
  [[nodiscard]] Status MaybeFsyncLocked(bool force) SEEP_REQUIRES(mu_);
  bool CompactionNeededLocked() const SEEP_REQUIRES(mu_);
  /// Returns true when a synchronous caller should run CompactOnce after
  /// releasing mu_ (background mode signals the compactor instead).
  bool SignalCompactionLocked() SEEP_REQUIRES(mu_);
  [[nodiscard]] Status CompactOnce();
  void CompactorLoop();
  [[nodiscard]] Status VerifyIndexLocked() const SEEP_REQUIRES(mu_);

  const CheckpointLogConfig config_;
  mutable StoreMetrics metrics_ SEEP_UNGUARDED("all counters are std::atomic");
  RecoveryInfo recovery_info_
      SEEP_UNGUARDED("written once by Open's recovery scan before the "
                     "compactor thread exists; read-only after");

  mutable sync::Mutex mu_;
  sync::CondVar compaction_cv_;
  std::map<InstanceId, IndexEntry> index_ SEEP_GUARDED_BY(mu_);
  std::map<InstanceId, IndexEntry> tombstones_ SEEP_GUARDED_BY(mu_);
  std::map<uint32_t, Segment> segments_ SEEP_GUARDED_BY(mu_);
  uint32_t active_id_ SEEP_GUARDED_BY(mu_) = 0;
  uint32_t next_segment_id_ SEEP_GUARDED_BY(mu_) = 1;
  std::chrono::steady_clock::time_point last_fsync_ SEEP_GUARDED_BY(mu_);
  bool dirty_since_fsync_ SEEP_GUARDED_BY(mu_) = false;
  bool stop_ SEEP_GUARDED_BY(mu_) = false;
  bool compaction_requested_ SEEP_GUARDED_BY(mu_) = false;
  bool compaction_running_ SEEP_GUARDED_BY(mu_) = false;
  Status last_compaction_error_ SEEP_GUARDED_BY(mu_);
  std::thread compactor_
      SEEP_UNGUARDED("started at the end of Open before the log is shared; "
                     "joined by the destructor after stop_ is set under mu_");
};

}  // namespace seep::store

#endif  // SEEP_STORE_CHECKPOINT_LOG_H_
