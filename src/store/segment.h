#ifndef SEEP_STORE_SEGMENT_H_
#define SEEP_STORE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "store/log_format.h"

namespace seep::store {

/// Fixed 16-byte segment file header: the 8-byte magic "SEEPLOG1" followed
/// by the segment id as a little-endian fixed64. A file whose header does
/// not validate is treated as fully torn (zero valid bytes).
inline constexpr size_t kSegmentHeaderBytes = 16;

/// Bytes of EncodeSegmentHeader's output for segment `id`.
std::vector<uint8_t> EncodeSegmentHeader(uint32_t id);

/// One record surfaced by the recovery scan: its decoded meta plus the file
/// offsets needed to read the payload back (and to rewrite the record
/// verbatim during compaction).
struct ScannedRecord {
  RecordMeta meta;
  uint64_t record_offset = 0;   // start of the meta frame
  uint64_t payload_offset = 0;  // start of the payload bytes
};

/// Result of scanning one segment file. `valid_bytes` is the length of the
/// longest prefix ending at a record boundary whose every frame validated;
/// everything past it is a torn tail. The scan never throws and never reads
/// past `file_size`.
struct SegmentScan {
  uint32_t id = 0;
  std::vector<ScannedRecord> records;
  uint64_t valid_bytes = 0;
  bool torn = false;
  std::string torn_detail;
};

/// Scans an open segment file descriptor: validates the segment header,
/// then walks records — meta frame (crc32c over the encoded RecordMeta),
/// then `payload_bytes` of payload whose own embedded frame crc32c is
/// verified — stopping at the first bad frame. Corruption is data, not an
/// error: the scan reports what survived instead of failing.
SegmentScan ScanSegment(int fd, uint64_t file_size, uint64_t max_payload);

/// Reads `n` bytes at `offset` with pread, retrying on EINTR. Returns
/// Corruption on a short read or I/O error.
[[nodiscard]] Status ReadExact(int fd, uint64_t offset, uint8_t* out, size_t n);

}  // namespace seep::store

#endif  // SEEP_STORE_SEGMENT_H_
