#include "runtime/trim_tracker.h"

#include <algorithm>

namespace seep::runtime {

void TrimTracker::NoteSent(OperatorId down_op, InstanceId dest,
                           int64_t timestamp) {
  if (audit_) audit_->OnNoteSent(self_, down_op, dest, timestamp);
  auto [it, inserted] = sent_[down_op].try_emplace(dest, timestamp);
  if (!inserted) it->second = std::max(it->second, timestamp);
}

void TrimTracker::OnTrimAck(OperatorId down_op, InstanceId down_instance,
                            int64_t position) {
  if (audit_) audit_->OnTrimAck(self_, down_op, down_instance, position);
  auto& acks = acks_[down_op];
  auto [it, inserted] = acks.try_emplace(down_instance, position);
  if (!inserted) it->second = std::max(it->second, position);
  MaybeTrim(down_op);
}

void TrimTracker::PruneAcks(OperatorId down_op) {
  const std::vector<InstanceId> current = current_members_(down_op);
  auto prune = [&](std::map<InstanceId, int64_t>* table) {
    for (auto entry = table->begin(); entry != table->end();) {
      if (std::find(current.begin(), current.end(), entry->first) ==
          current.end()) {
        entry = table->erase(entry);
      } else {
        ++entry;
      }
    }
  };
  if (auto it = acks_.find(down_op); it != acks_.end()) prune(&it->second);
  if (auto it = sent_.find(down_op); it != sent_.end()) prune(&it->second);
}

void TrimTracker::SeedAck(OperatorId down_op, InstanceId down_instance,
                          int64_t position) {
  if (audit_) audit_->OnSeedAck(self_, down_op, down_instance, position);
  acks_[down_op][down_instance] = position;
}

void TrimTracker::MaybeTrim(OperatorId down_op) {
  // Trim to the minimum acknowledged position over the current partitions
  // that still have outstanding (sent but not checkpoint-covered) tuples
  // from this instance. Partitions with nothing outstanding don't constrain
  // the trim: every tuple routed to them is reflected in their latest
  // checkpoint, so recovery never replays it.
  const std::vector<InstanceId> current = current_members_(down_op);
  if (current.empty()) return;
  const auto& acks = acks_[down_op];
  const auto& sent = sent_[down_op];
  auto lookup = [](const std::map<InstanceId, int64_t>& table,
                   InstanceId id) {
    auto it = table.find(id);
    return it == table.end() ? INT64_MIN : it->second;
  };
  int64_t bound = INT64_MAX;
  int64_t max_sent = INT64_MIN;
  for (InstanceId inst : current) {
    const int64_t s = lookup(sent, inst);
    const int64_t a = lookup(acks, inst);
    max_sent = std::max(max_sent, s);
    if (s > a) bound = std::min(bound, a);
  }
  if (bound == INT64_MAX) {
    // Nothing outstanding anywhere: everything sent so far is covered.
    bound = max_sent;
  }
  if (bound == INT64_MIN) return;
  auto [trimmed, inserted] = trimmed_.try_emplace(down_op, INT64_MIN);
  if (bound <= trimmed->second) return;  // no-op below the high-water mark
  trimmed->second = bound;
  if (audit_) audit_->OnTrim(self_, down_op, bound, current);
  buffer_->Trim(down_op, bound);
}

}  // namespace seep::runtime
