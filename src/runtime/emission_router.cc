#include "runtime/emission_router.h"

#include <map>

#include "common/macros.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"
#include "runtime/trim_tracker.h"

namespace seep::runtime {

EmissionRouter::EmissionRouter(Cluster* cluster, OperatorInstance* instance,
                               TrimTracker* trims)
    : cluster_(cluster), inst_(instance), trims_(trims) {
  downstream_ops_ = cluster_->graph()->Downstream(inst_->op());
}

void EmissionRouter::Flush(
    std::vector<std::pair<int, core::Tuple>>* emissions,
    const std::vector<bool>* suppressed) {
  std::map<InstanceId, core::TupleBatch> outgoing;
  for (size_t i = 0; i < emissions->size(); ++i) {
    auto& [port, tuple] = (*emissions)[i];
    SEEP_CHECK_LT(static_cast<size_t>(port), downstream_ops_.size());
    const OperatorId down = downstream_ops_[static_cast<size_t>(port)];
    tuple.timestamp = ++out_clock_;
    tuple.origin = inst_->origin();
    // Suppressed emissions rebuild state only; the stopped parent already
    // delivered (and buffered through its checkpoint) these outputs.
    if (suppressed != nullptr && (*suppressed)[i]) continue;
    if (BuffersTo(down)) inst_->buffer_state().Append(down, tuple);
    const InstanceId dest = cluster_->routing()->RouteKey(down, tuple.key);
    if (dest == kInvalidInstance) continue;
    trims_->NoteSent(down, dest, tuple.timestamp);
    outgoing[dest].tuples.push_back(std::move(tuple));
  }
  bool pressured = false;
  for (auto& [dest, batch] : outgoing) {
    if (cluster_->transport()->SendBatch(inst_, dest, std::move(batch)) ==
        SendPressure::kPressured) {
      pressured = true;
    }
  }
  if (pressured) inst_->OnSendPressure();
}

void EmissionRouter::SetSuppressUntil(core::InputPositions positions) {
  suppress_until_ = std::move(positions);
  suppressing_ = true;
}

bool EmissionRouter::BuffersTo(OperatorId down_op) const {
  const core::OperatorSpec* down = cluster_->graph()->Get(down_op);
  // Sinks are assumed reliable (paper §2.2), so no replay buffer is needed
  // for them. In source-replay mode only sources keep buffers.
  if (down->kind == core::VertexKind::kSink) return false;
  if (cluster_->config().ft_mode == FaultToleranceMode::kSourceReplay) {
    return inst_->spec().kind == core::VertexKind::kSource;
  }
  return true;
}

void EmissionRouter::Reset() {
  out_clock_ = 0;
  suppress_until_ = core::InputPositions();
  suppressing_ = false;
}

}  // namespace seep::runtime
