#ifndef SEEP_RUNTIME_TRANSPORT_H_
#define SEEP_RUNTIME_TRANSPORT_H_

#include <functional>

#include "common/ids.h"
#include "core/state.h"
#include "core/tuple.h"
#include "runtime/backup_store.h"
#include "runtime/ckpt_pipeline.h"

namespace seep::runtime {

class Cluster;
class OperatorInstance;

/// What SendBatch reports about the sender's outbound queues. The simulated
/// backend never pushes back (the sim models links, not finite socket
/// buffers), so kNone keeps every sim run byte-identical; the TCP backend
/// reports kPressured when the sending worker's queued bytes cross its soft
/// watermark, and the sending instance throttles its job scheduler briefly
/// in response.
enum class [[nodiscard]] SendPressure : uint8_t {
  kNone = 0,
  kPressured = 1,
};

/// All inter-instance message shipping: tuple batches on the data path,
/// checkpoint backups (with their trim acknowledgements) on the background
/// path, and bulk state shipping during scale out / recovery. Everything an
/// instance or coordinator sends to another VM goes through this interface —
/// a threaded or socket-based backend is a drop-in replacement for the
/// simulated one.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Brings up / tears down the transport endpoint of a VM. Membership calls
  /// these as VMs are deployed, released and killed; after DetachVm, traffic
  /// to the VM is dead (dropped by the sim network, or met with closed
  /// sockets by the TCP backend — a dead TCP peer and a detached VM are the
  /// same event to the protocol).
  virtual void AttachVm(VmId vm) = 0;
  virtual void DetachVm(VmId vm) = 0;

  /// Ships a tuple batch from one instance to another, reporting outbound
  /// queue pressure.
  virtual SendPressure SendBatch(OperatorInstance* from, InstanceId to,
                                 core::TupleBatch batch) = 0;

  /// Algorithm 1 backup-state: selects the holder by hashing over upstream
  /// instances, ships the checkpoint, stores it (applying it onto the held
  /// copy when it is a delta), and sends trim acknowledgements to the
  /// owner's upstream instances.
  virtual void BackupCheckpoint(OperatorInstance* owner,
                                core::StateCheckpoint ckpt) = 0;

  /// The holder Algorithm 1 would choose for `owner` right now, or
  /// kInvalidInstance if there is no live upstream. Owners use this to
  /// decide whether an incremental checkpoint can target the same holder
  /// as the stored base.
  virtual InstanceId BackupHolderFor(const OperatorInstance* owner) const = 0;

  /// Synchronous-checkpoint capture hook: turns a stage-1 capture into the
  /// shipment ShipBackup sends once the checkpoint job's service time has
  /// elapsed. Runs at capture time, before any trim can move the live
  /// buffers. The default materializes the capture into a checkpoint
  /// struct; the TCP backend overrides it to encode the wire payload
  /// straight from the live buffers, skipping the intermediate buffer copy.
  virtual CheckpointShipment PrepareBackup(OperatorInstance* owner,
                                           CheckpointCapture* capture);

  /// Ships a shipment built by PrepareBackup (holder choice happens here,
  /// at ship time, exactly as BackupCheckpoint does). The default unwraps
  /// the materialized checkpoint and delegates to BackupCheckpoint.
  virtual void ShipBackup(OperatorInstance* owner, CheckpointShipment ship);

  /// Stage 3 of the asynchronous pipeline: ships one serialized checkpoint
  /// frame to the holder Algorithm 1 selects now, split into chunks of at
  /// most the configured chunk size so multi-MB checkpoints interleave with
  /// data batches instead of occupying a link in one burst.
  virtual void ShipCheckpointFrame(OperatorInstance* owner,
                                   SerializedCkptFrame frame) = 0;

  /// Bulk state shipping (partitioned checkpoints during scale out /
  /// recovery): `size_bytes` from VM `from` to VM `to`, then `on_delivery`.
  virtual void ShipState(VmId from, VmId to, uint64_t size_bytes,
                         std::function<void()> on_delivery) = 0;
};

/// Algorithm 1 line 2: the holder for `owner`'s checkpoints — spread over
/// the live upstream instances by hash (or the first one, for the ablation
/// baseline); kInvalidInstance when no upstream is live. Shared by every
/// Transport backend so they cannot drift on holder choice.
InstanceId ChooseBackupHolder(const Cluster* cluster,
                              const OperatorInstance* owner);

/// Algorithm 1 lines 3-7 on the holder's side, run when a shipped checkpoint
/// arrives: validity/suspension guards, store (or delta-apply onto the held
/// base) with the stale-sequence guard, audit hook, metrics, and the trim
/// acknowledgements to the owner's upstream instances. Shared by every
/// Transport backend — the wire differs, the protocol must not. `prebuilt`
/// (optional, consumed) is the checkpoint's already-serialized wire frame:
/// the chunked receive path passes it so a durable-tier append reuses the
/// received bytes instead of re-encoding.
void DeliverCheckpointToHolder(Cluster* cluster, InstanceId owner_id,
                               OperatorId owner_op, InstanceId holder_id,
                               uint64_t bytes, core::StateCheckpoint ckpt,
                               BackupStore::EncodedFrame* prebuilt = nullptr);

/// The serializer's completion hook (driver thread): re-checks that the
/// owner is still alive, running and unsuspended — an async checkpoint
/// caught by Suspend()/failure between capture and serialization aborts
/// here — then records compression metrics and hands the frame to the
/// transport's chunked shipping. Shared by both backends.
void ShipSerializedCheckpoint(Cluster* cluster, SerializedCkptFrame frame);

/// Holder-side arrival of one checkpoint chunk (driver thread): audits the
/// chunk stream, reassembles, and on completion unframes (crc32c),
/// decompresses, decodes and delivers through DeliverCheckpointToHolder.
/// Any decode failure drops the frame — the owner's next checkpoint
/// supersedes it, exactly like a frame lost to a link failure. Shared by
/// both backends so the wire differs but the protocol cannot.
void DeliverCheckpointChunk(Cluster* cluster, const CkptChunkHeader& header,
                            const uint8_t* data, size_t n);

/// Transport over the deterministic `sim::Network`: batches pay the data
/// path's bandwidth/latency; checkpoint shipping is throttled background
/// traffic that must not delay the data path (the paper checkpoints
/// asynchronously).
class SimTransport : public Transport {
 public:
  explicit SimTransport(Cluster* cluster) : cluster_(cluster) {}

  void AttachVm(VmId vm) override;
  void DetachVm(VmId vm) override;
  SendPressure SendBatch(OperatorInstance* from, InstanceId to,
                         core::TupleBatch batch) override;
  void BackupCheckpoint(OperatorInstance* owner,
                        core::StateCheckpoint ckpt) override;
  InstanceId BackupHolderFor(const OperatorInstance* owner) const override;
  void ShipCheckpointFrame(OperatorInstance* owner,
                           SerializedCkptFrame frame) override;
  void ShipState(VmId from, VmId to, uint64_t size_bytes,
                 std::function<void()> on_delivery) override;

 private:
  Cluster* cluster_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_TRANSPORT_H_
