#ifndef SEEP_RUNTIME_TRANSPORT_H_
#define SEEP_RUNTIME_TRANSPORT_H_

#include <functional>

#include "common/ids.h"
#include "core/state.h"
#include "core/tuple.h"

namespace seep::runtime {

class Cluster;
class OperatorInstance;

/// All inter-instance message shipping: tuple batches on the data path,
/// checkpoint backups (with their trim acknowledgements) on the background
/// path, and bulk state shipping during scale out / recovery. Everything an
/// instance or coordinator sends to another VM goes through this interface —
/// a threaded or socket-based backend is a drop-in replacement for the
/// simulated one.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships a tuple batch from one instance to another.
  virtual void SendBatch(OperatorInstance* from, InstanceId to,
                         core::TupleBatch batch) = 0;

  /// Algorithm 1 backup-state: selects the holder by hashing over upstream
  /// instances, ships the checkpoint, stores it (applying it onto the held
  /// copy when it is a delta), and sends trim acknowledgements to the
  /// owner's upstream instances.
  virtual void BackupCheckpoint(OperatorInstance* owner,
                                core::StateCheckpoint ckpt) = 0;

  /// The holder Algorithm 1 would choose for `owner` right now, or
  /// kInvalidInstance if there is no live upstream. Owners use this to
  /// decide whether an incremental checkpoint can target the same holder
  /// as the stored base.
  virtual InstanceId BackupHolderFor(const OperatorInstance* owner) const = 0;

  /// Bulk state shipping (partitioned checkpoints during scale out /
  /// recovery): `size_bytes` from VM `from` to VM `to`, then `on_delivery`.
  virtual void ShipState(VmId from, VmId to, uint64_t size_bytes,
                         std::function<void()> on_delivery) = 0;
};

/// Transport over the deterministic `sim::Network`: batches pay the data
/// path's bandwidth/latency; checkpoint shipping is throttled background
/// traffic that must not delay the data path (the paper checkpoints
/// asynchronously).
class SimTransport : public Transport {
 public:
  explicit SimTransport(Cluster* cluster) : cluster_(cluster) {}

  void SendBatch(OperatorInstance* from, InstanceId to,
                 core::TupleBatch batch) override;
  void BackupCheckpoint(OperatorInstance* owner,
                        core::StateCheckpoint ckpt) override;
  InstanceId BackupHolderFor(const OperatorInstance* owner) const override;
  void ShipState(VmId from, VmId to, uint64_t size_bytes,
                 std::function<void()> on_delivery) override;

 private:
  Cluster* cluster_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_TRANSPORT_H_
