#ifndef SEEP_RUNTIME_MEMBERSHIP_H_
#define SEEP_RUNTIME_MEMBERSHIP_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "core/key_range.h"

namespace seep::runtime {

class Cluster;
class OperatorInstance;

/// The deployment's membership plane: which physical instances exist, which
/// logical operator each partitions, which VM hosts which instance, and the
/// lifecycle transitions between those states (deploy, stop, two-phase
/// retirement, crash). All membership *mutation* goes through this class;
/// Cluster only exposes read-side lookups that delegate here.
class Membership {
 public:
  explicit Membership(Cluster* cluster);
  ~Membership();

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  /// Creates an instance of logical operator `op` on `vm` covering `range`.
  /// The instance is registered as a current partition of `op` but not
  /// started; callers set routing and call Start.
  [[nodiscard]] Result<InstanceId> DeployInstance(OperatorId op, VmId vm,
                                    core::KeyRange range,
                                    uint32_t source_index = 0,
                                    uint32_t source_count = 1);

  OperatorInstance* GetInstance(InstanceId id);
  const OperatorInstance* GetInstance(InstanceId id) const;

  /// Current partitions of a logical operator (includes failed instances
  /// until a recovery replaces them — their buffers upstream must be
  /// preserved meanwhile).
  std::vector<InstanceId> InstancesOf(OperatorId op) const;

  /// Same, restricted to alive instances.
  std::vector<InstanceId> LiveInstancesOf(OperatorId op) const;

  /// Alive instances of all upstream logical operators of `op` — the
  /// candidate backup holders (Algorithm 1).
  std::vector<InstanceId> UpstreamInstancesOf(OperatorId op) const;

  /// Removes `id` from the current membership of its logical operator (it
  /// was replaced); stops it and optionally releases its VM. The object
  /// remains as a tombstone so in-flight events resolve safely.
  void RetireInstance(InstanceId id, bool release_vm);

  /// First half of retirement: stop the instance and release its VM, but
  /// KEEP it in the membership. Until FinalizeRetire runs (atomically with
  /// the routing switch that seeds the replacements' acknowledgement
  /// positions), the stopped instance's frozen ack still constrains
  /// upstream buffer trimming — otherwise a sibling partition's checkpoint
  /// in the handover window could trim tuples the replacements still need.
  void StopInstance(InstanceId id, bool release_vm);

  /// Second half: removes `id` from membership and drops its backups.
  void FinalizeRetire(InstanceId id);

  /// Crash-stops a VM: the hosted instance dies, its network endpoint
  /// detaches (in-flight messages drop), and any checkpoint backups stored
  /// on it are lost.
  [[nodiscard]] Status KillVm(VmId vm);

  /// Convenience for tests/benches: kills the VM hosting the (single)
  /// current instance of `op`.
  [[nodiscard]] Status KillOperator(OperatorId op);

  const std::map<InstanceId, std::unique_ptr<OperatorInstance>>& instances()
      const {
    return instances_;
  }

  /// Samples the number of alive, unstopped instances into the metrics
  /// registry's VM-usage series.
  void RecordVmsInUse();

 private:
  Cluster* cluster_;
  InstanceId next_instance_id_ = 0;
  std::map<InstanceId, std::unique_ptr<OperatorInstance>> instances_;
  std::map<OperatorId, std::vector<InstanceId>> partitions_;
  std::map<VmId, InstanceId> vm_to_instance_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_MEMBERSHIP_H_
