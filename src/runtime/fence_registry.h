#ifndef SEEP_RUNTIME_FENCE_REGISTRY_H_
#define SEEP_RUNTIME_FENCE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "common/ids.h"
#include "common/sync.h"
#include "common/time.h"

namespace seep::runtime {

class Cluster;
class OperatorInstance;

/// Replay fences: markers sent after replayed tuples on the same FIFO links,
/// whose arrival at the target instances proves the replay has drained.
/// Fences that reach a non-target instance are forwarded to every live
/// downstream instance, so they traverse intermediate operators
/// (source-replay recovery).
class FenceRegistry {
 public:
  explicit FenceRegistry(Cluster* cluster) : cluster_(cluster) {}

  FenceRegistry(const FenceRegistry&) = delete;
  FenceRegistry& operator=(const FenceRegistry&) = delete;

  /// Registers a replay fence: `expected` fence deliveries at instances in
  /// `targets` complete the fence and invoke `on_complete(now)`.
  uint64_t Register(int expected, std::set<InstanceId> targets,
                    std::function<void(SimTime)> on_complete)
      SEEP_RUN_ON(sync::DriverThread);

  /// A fence marker reached instance `at` (called when its batch-job
  /// finishes, i.e. after all earlier queued work).
  void Handle(uint64_t fence_id, OperatorInstance* at)
      SEEP_RUN_ON(sync::DriverThread);

 private:
  struct Fence {
    std::set<InstanceId> targets;
    int remaining = 0;
    std::function<void(SimTime)> on_complete;
  };

  Cluster* cluster_;
  uint64_t counter_ SEEP_GUARDED_BY(sync::DriverThread) = 0;
  std::map<uint64_t, Fence> fences_ SEEP_GUARDED_BY(sync::DriverThread);
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_FENCE_REGISTRY_H_
