#include "runtime/job_scheduler.h"

#include <algorithm>

namespace seep::runtime {

void JobScheduler::Enqueue(Job job) {
  if (job.kind == Job::Kind::kBatch) queued_tuples_ += job.batch.tuples.size();
  if (job.kind == Job::Kind::kCheckpoint) {
    queue_.push_front(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
  TryStart();
}

void JobScheduler::Resume() {
  if (!paused_) return;
  paused_ = false;
  TryStart();
}

void JobScheduler::ThrottleFor(SimTime duration) {
  if (throttled_ || duration <= 0) return;
  throttled_ = true;
  sim_->Schedule(duration, [this]() {
    throttled_ = false;
    TryStart();
  });
}

void JobScheduler::Clear() {
  queue_.clear();
  queued_tuples_ = 0;
}

void JobScheduler::TryStart() {
  if (busy_ || paused_ || throttled_ || !host_->alive() ||
      host_->stopped() || queue_.empty()) {
    return;
  }

  auto job = std::make_shared<Job>(std::move(queue_.front()));
  queue_.pop_front();

  // Determine the job's CPU cost (checkpoint jobs snapshot state here, so
  // their cost reflects the real encoded size).
  host_->PrepareJob(job.get());

  busy_ = true;
  const SimTime duration = std::max<SimTime>(
      0, static_cast<SimTime>(job->cost_us / vm_capacity_));
  const bool replay_catch_up =
      job->kind == Job::Kind::kBatch && job->batch.replay;
  if (!replay_catch_up) busy_accum_us_ += static_cast<double>(duration);
  sim_->Schedule(duration, [this, job]() {
    if (!host_->alive()) return;
    busy_ = false;
    if (!host_->stopped()) {
      if (job->kind == Job::Kind::kBatch) {
        queued_tuples_ -= std::min(queued_tuples_, job->batch.tuples.size());
      }
      host_->FinishJob(job.get());
    }
    TryStart();
  });
}

double JobScheduler::TakeBusyMicros() {
  const double v = busy_accum_us_;
  busy_accum_us_ = 0;
  return v;
}

}  // namespace seep::runtime
