#ifndef SEEP_RUNTIME_CHECKPOINT_PLANE_H_
#define SEEP_RUNTIME_CHECKPOINT_PLANE_H_

#include <map>

#include "common/ids.h"
#include "common/sync.h"
#include "core/state.h"
#include "runtime/ckpt_pipeline.h"

namespace seep::runtime {

class Cluster;
class OperatorInstance;

/// The checkpoint schedule and snapshot logic of one operator instance:
/// periodic full/delta checkpoints, suspension during scale-out, and the
/// sequence/shipped-buffer bookkeeping that decides when an incremental
/// checkpoint is admissible (paper §3.2 and Algorithm 1).
class CheckpointPlane {
 public:
  CheckpointPlane(Cluster* cluster, OperatorInstance* instance)
      : cluster_(cluster), inst_(instance) {}

  /// Begins the periodic checkpoint timer (R+SM mode, inner operators).
  void StartSchedule() SEEP_RUN_ON(sync::DriverThread);

  /// Freezes the schedule while the scale-out coordinator is partitioning
  /// this instance's backed-up state: a fresher checkpoint landing
  /// mid-operation would trim upstream buffers past the restore point. (The
  /// paper's Algorithm 3 likewise never asks the overloaded operator to
  /// checkpoint during its own scale out.) Suspension also aborts in-flight
  /// asynchronous checkpoints at their next pipeline stage boundary.
  void Suspend() SEEP_RUN_ON(sync::DriverThread);
  void Resume() SEEP_RUN_ON(sync::DriverThread);
  bool suspended() const SEEP_RUN_ON(sync::DriverThread) {
    return suspended_;
  }

  /// Stage 1 of the checkpoint pipeline: snapshots the processing state and
  /// marks buffer extents without copying buffered tuples — the cheap pause.
  /// Advances the sequence/shipped-buffer lineage exactly as the synchronous
  /// snapshot does.
  CheckpointCapture Capture(bool delta) SEEP_RUN_ON(sync::DriverThread);

  /// Hands a finished capture to the background serialization stage (stage
  /// 2), or aborts it cleanly when the instance died, stopped or was
  /// suspended while the capture job waited its service time; the next full
  /// checkpoint's sequence-mismatch fallback heals the skipped delta.
  void ShipAsync(CheckpointCapture cap) SEEP_RUN_ON(sync::DriverThread);

  /// checkpoint-state(o) → (θo, τo, βo): synchronous snapshot, used by the
  /// checkpoint job and by quiesced scale-in. Capture + materialize.
  core::StateCheckpoint MakeCheckpoint() SEEP_RUN_ON(sync::DriverThread);

  /// Incremental variant: only the state entries changed since the previous
  /// checkpoint, new buffer tuples, and trim positions for the mirrored
  /// buffer. Requires the operator's SupportsIncrementalState().
  core::StateCheckpoint MakeDeltaCheckpoint()
      SEEP_RUN_ON(sync::DriverThread);

  /// Whether the next periodic checkpoint may be shipped as a delta
  /// (incremental mode on, operator supports it, a full base is stored at
  /// the holder Algorithm 1 currently selects, and no full resync is due).
  bool CanCheckpointIncrementally() const SEEP_RUN_ON(sync::DriverThread);

  /// Continues the checkpoint lineage of a restored checkpoint: the restored
  /// state equals the stored base of its sequence number, so subsequent
  /// delta checkpoints apply cleanly on top of it.
  void OnRestore(const core::StateCheckpoint& checkpoint)
      SEEP_RUN_ON(sync::DriverThread);

  /// Forgets all lineage (ResetEmpty).
  void Reset() SEEP_RUN_ON(sync::DriverThread);

 private:
  void ScheduleTimer() SEEP_RUN_ON(sync::DriverThread);
  CheckpointCapture CaptureFull() SEEP_RUN_ON(sync::DriverThread);
  CheckpointCapture CaptureDelta() SEEP_RUN_ON(sync::DriverThread);

  Cluster* cluster_;
  OperatorInstance* inst_;
  bool suspended_ SEEP_GUARDED_BY(sync::DriverThread) = false;
  uint64_t ckpt_seq_ SEEP_GUARDED_BY(sync::DriverThread) = 0;
  // Highest buffered timestamp shipped per downstream op (delta checkpoint
  // bookkeeping).
  std::map<OperatorId, int64_t> shipped_buffer_back_
      SEEP_GUARDED_BY(sync::DriverThread);
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_CHECKPOINT_PLANE_H_
