#include "runtime/transport.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "core/state_ops.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {

InstanceId ChooseBackupHolder(const Cluster* cluster,
                              const OperatorInstance* owner) {
  const std::vector<InstanceId> upstream =
      cluster->membership()->UpstreamInstancesOf(owner->op());
  if (upstream.empty()) return kInvalidInstance;
  return cluster->config().spread_backups
             ? core::ChooseBackupInstance(owner->id(), upstream)
             : upstream.front();
}

void DeliverCheckpointToHolder(Cluster* cluster, InstanceId owner_id,
                               OperatorId owner_op, InstanceId holder_id,
                               uint64_t bytes, core::StateCheckpoint ckpt) {
  Membership* members = cluster->membership();
  MetricsRegistry* metrics = cluster->metrics();
  OperatorInstance* h = members->GetInstance(holder_id);
  if (h == nullptr || !h->alive() || h->stopped()) return;
  OperatorInstance* o = members->GetInstance(owner_id);
  if (o == nullptr || !o->alive()) return;  // owner died meanwhile
  // A checkpoint caught in flight when the scale-out coordinator suspended
  // the owner must not land: the coordinator already retrieved the older
  // backup as the restore point, and this checkpoint's trim
  // acknowledgements would drop upstream tuples that restore point still
  // needs replayed.
  if (o->checkpoints_suspended()) return;

  // Algorithm 1 lines 3/5-7: store (or apply a delta onto the held base),
  // superseding any previous holder.
  const core::InputPositions positions = ckpt.positions;
  if (ckpt.is_delta) {
    BackupStore::Entry* entry = cluster->backups()->Mutable(owner_id);
    if (entry == nullptr || entry->holder != holder_id) {
      ++metrics->delta_apply_failures;
      return;  // base missing or moved; the next full resyncs
    }
    // Applied in place on the stored base: ApplyDelta validates before
    // mutating, so a rejected delta leaves the older consistent base.
    const Status applied = core::ApplyDelta(&entry->checkpoint, ckpt);
    if (!applied.ok()) {
      ++metrics->delta_apply_failures;
      return;  // out-of-order delta; keep the older consistent base
    }
  } else {
    // Background checkpoint shipments to different holders can arrive out
    // of order; a stale one must never supersede a fresher stored
    // checkpoint whose higher positions were already acknowledged upstream
    // (recovery from the stale one would need trimmed tuples).
    const BackupStore::Entry* existing = cluster->backups()->Find(owner_id);
    if (existing != nullptr && existing->checkpoint.seq >= ckpt.seq) {
      return;
    }
    cluster->backups()->Store(owner_id, holder_id, std::move(ckpt));
  }
  if (auto* audit = cluster->audit()) {
    const BackupStore::Entry* stored = cluster->backups()->Find(owner_id);
    audit->OnCheckpointStored(owner_id, o->vm(), holder_id, h->vm(),
                              stored->checkpoint.seq);
  }
  metrics->checkpoints_taken++;
  metrics->checkpoint_bytes += bytes;

  // Algorithm 1 line 4: acknowledge the checkpointed positions to all
  // upstream instances so they can trim their output buffers.
  for (OperatorId up_op : cluster->graph()->Upstream(owner_op)) {
    for (InstanceId uid : members->LiveInstancesOf(up_op)) {
      OperatorInstance* u = members->GetInstance(uid);
      u->OnTrimAck(owner_op, owner_id, positions.Get(u->origin()));
    }
  }
}

void SimTransport::AttachVm(VmId vm) { cluster_->network()->Attach(vm); }

void SimTransport::DetachVm(VmId vm) { cluster_->network()->Detach(vm); }

SendPressure SimTransport::SendBatch(OperatorInstance* from, InstanceId to,
                                     core::TupleBatch batch) {
  batch.from = from->id();
  Membership* members = cluster_->membership();
  const OperatorInstance* dest = members->GetInstance(to);
  if (dest == nullptr) return SendPressure::kNone;
  const uint64_t bytes = batch.SerializedSize();
  auto shared = std::make_shared<core::TupleBatch>(std::move(batch));
  cluster_->network()->Send(
      from->vm(), dest->vm(), bytes, [members, to, shared]() {
        OperatorInstance* target = members->GetInstance(to);
        if (target != nullptr) target->OnBatch(std::move(*shared));
      });
  return SendPressure::kNone;
}

InstanceId SimTransport::BackupHolderFor(
    const OperatorInstance* owner) const {
  return ChooseBackupHolder(cluster_, owner);
}

void SimTransport::BackupCheckpoint(OperatorInstance* owner,
                                    core::StateCheckpoint ckpt) {
  // Algorithm 1 line 2: spread backup load over upstream instances by hash
  // (unless disabled for the ablation baseline).
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = cluster_->membership()->GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  const uint64_t bytes = ckpt.ByteSize();
  const InstanceId owner_id = owner->id();
  const OperatorId owner_op = owner->op();
  auto shared = std::make_shared<core::StateCheckpoint>(std::move(ckpt));

  cluster_->network()->Send(
      owner->vm(), holder->vm(), bytes,
      // Checkpoint shipping is throttled background traffic: it must not
      // delay the data path (the paper checkpoints asynchronously).
      [this, owner_id, owner_op, holder_id, bytes, shared]() {
        DeliverCheckpointToHolder(cluster_, owner_id, owner_op, holder_id,
                                  bytes, std::move(*shared));
      },
      /*background=*/true);
}

void SimTransport::ShipState(VmId from, VmId to, uint64_t size_bytes,
                             std::function<void()> on_delivery) {
  cluster_->network()->Send(from, to, size_bytes, std::move(on_delivery));
}

}  // namespace seep::runtime
