#include "runtime/transport.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "core/state_ops.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {

void SimTransport::SendBatch(OperatorInstance* from, InstanceId to,
                             core::TupleBatch batch) {
  batch.from = from->id();
  Membership* members = cluster_->membership();
  const OperatorInstance* dest = members->GetInstance(to);
  if (dest == nullptr) return;
  const uint64_t bytes = batch.SerializedSize();
  auto shared = std::make_shared<core::TupleBatch>(std::move(batch));
  cluster_->network()->Send(
      from->vm(), dest->vm(), bytes, [members, to, shared]() {
        OperatorInstance* target = members->GetInstance(to);
        if (target != nullptr) target->OnBatch(std::move(*shared));
      });
}

InstanceId SimTransport::BackupHolderFor(
    const OperatorInstance* owner) const {
  const std::vector<InstanceId> upstream =
      cluster_->membership()->UpstreamInstancesOf(owner->op());
  if (upstream.empty()) return kInvalidInstance;
  return cluster_->config().spread_backups
             ? core::ChooseBackupInstance(owner->id(), upstream)
             : upstream.front();
}

void SimTransport::BackupCheckpoint(OperatorInstance* owner,
                                    core::StateCheckpoint ckpt) {
  // Algorithm 1 line 2: spread backup load over upstream instances by hash
  // (unless disabled for the ablation baseline).
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = cluster_->membership()->GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  const uint64_t bytes = ckpt.ByteSize();
  const InstanceId owner_id = owner->id();
  const OperatorId owner_op = owner->op();
  auto shared = std::make_shared<core::StateCheckpoint>(std::move(ckpt));

  cluster_->network()->Send(
      owner->vm(), holder->vm(), bytes,
      // Checkpoint shipping is throttled background traffic: it must not
      // delay the data path (the paper checkpoints asynchronously).
      [this, owner_id, owner_op, holder_id, bytes, shared]() {
        Membership* members = cluster_->membership();
        MetricsRegistry* metrics = cluster_->metrics();
        OperatorInstance* h = members->GetInstance(holder_id);
        if (h == nullptr || !h->alive() || h->stopped()) return;
        OperatorInstance* o = members->GetInstance(owner_id);
        if (o == nullptr || !o->alive()) return;  // owner died meanwhile

        // Algorithm 1 lines 3/5-7: store (or apply a delta onto the held
        // base), superseding any previous holder.
        const core::InputPositions positions = shared->positions;
        if (shared->is_delta) {
          BackupStore::Entry* entry = cluster_->backups()->Mutable(owner_id);
          if (entry == nullptr || entry->holder != holder_id) {
            ++metrics->delta_apply_failures;
            return;  // base missing or moved; the next full resyncs
          }
          // Applied in place on the stored base: ApplyDelta validates before
          // mutating, so a rejected delta leaves the older consistent base.
          const Status applied = core::ApplyDelta(&entry->checkpoint, *shared);
          if (!applied.ok()) {
            ++metrics->delta_apply_failures;
            return;  // out-of-order delta; keep the older consistent base
          }
        } else {
          cluster_->backups()->Store(owner_id, holder_id, std::move(*shared));
        }
        metrics->checkpoints_taken++;
        metrics->checkpoint_bytes += bytes;

        // Algorithm 1 line 4: acknowledge the checkpointed positions to all
        // upstream instances so they can trim their output buffers.
        for (OperatorId up_op : cluster_->graph()->Upstream(owner_op)) {
          for (InstanceId uid : members->LiveInstancesOf(up_op)) {
            OperatorInstance* u = members->GetInstance(uid);
            u->OnTrimAck(owner_op, owner_id, positions.Get(u->origin()));
          }
        }
      },
      /*background=*/true);
}

void SimTransport::ShipState(VmId from, VmId to, uint64_t size_bytes,
                             std::function<void()> on_delivery) {
  cluster_->network()->Send(from, to, size_bytes, std::move(on_delivery));
}

}  // namespace seep::runtime
