#include "runtime/transport.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/sync.h"
#include "core/state_ops.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"
#include "serde/block_codec.h"
#include "serde/decoder.h"
#include "serde/frame.h"

namespace seep::runtime {

InstanceId ChooseBackupHolder(const Cluster* cluster,
                              const OperatorInstance* owner) {
  const std::vector<InstanceId> upstream =
      cluster->membership()->UpstreamInstancesOf(owner->op());
  if (upstream.empty()) return kInvalidInstance;
  return cluster->config().spread_backups
             ? core::ChooseBackupInstance(owner->id(), upstream)
             : upstream.front();
}

void DeliverCheckpointToHolder(Cluster* cluster, InstanceId owner_id,
                               OperatorId owner_op, InstanceId holder_id,
                               uint64_t bytes, core::StateCheckpoint ckpt,
                               BackupStore::EncodedFrame* prebuilt) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  Membership* members = cluster->membership();
  MetricsRegistry* metrics = cluster->metrics();
  const SimTime taken_at = ckpt.taken_at;
  OperatorInstance* h = members->GetInstance(holder_id);
  if (h == nullptr || !h->alive() || h->stopped()) return;
  OperatorInstance* o = members->GetInstance(owner_id);
  if (o == nullptr || !o->alive()) return;  // owner died meanwhile
  // A checkpoint caught in flight when the scale-out coordinator suspended
  // the owner must not land: the coordinator already retrieved the older
  // backup as the restore point, and this checkpoint's trim
  // acknowledgements would drop upstream tuples that restore point still
  // needs replayed.
  if (o->checkpoints_suspended()) return;

  // Algorithm 1 lines 3/5-7: store (or apply a delta onto the held base),
  // superseding any previous holder.
  const core::InputPositions positions = ckpt.positions;
  uint64_t stored_seq = 0;
  if (ckpt.is_delta) {
    BackupStore::Entry* entry = cluster->backups()->Mutable(owner_id);
    if (entry == nullptr || entry->holder != holder_id) {
      ++metrics->delta_apply_failures;
      return;  // base missing or moved; the next full resyncs
    }
    // Applied in place on the stored base: ApplyDelta validates before
    // mutating, so a rejected delta leaves the older consistent base.
    const Status applied = core::ApplyDelta(&entry->checkpoint, ckpt);
    if (!applied.ok()) {
      ++metrics->delta_apply_failures;
      return;  // out-of-order delta; keep the older consistent base
    }
    stored_seq = entry->checkpoint.seq;
    // The in-place mutation bypassed Store; re-append so the durable tier
    // catches up with the folded base (no-op in kMemory mode). The
    // in-memory copy stays canonical, so a refresh failure degrades
    // durability (counted) without blocking the ack below.
    const Status refreshed = cluster->backups()->RefreshDurable(owner_id);
    if (!refreshed.ok()) ++metrics->ckpt_store_failures;
  } else {
    // Background checkpoint shipments to different holders can arrive out
    // of order; a stale one must never supersede a fresher stored
    // checkpoint whose higher positions were already acknowledged upstream
    // (recovery from the stale one would need trimmed tuples). LatestSeq
    // consults every tier, so the guard also holds under kDisk where no
    // in-memory entry exists.
    const auto existing = cluster->backups()->LatestSeq(owner_id);
    if (existing.has_value() && *existing >= ckpt.seq) {
      return;
    }
    stored_seq = ckpt.seq;
    Status stored;
    if (prebuilt != nullptr) {
      stored = cluster->backups()->StoreWithFrame(owner_id, holder_id,
                                                  std::move(ckpt),
                                                  std::move(*prebuilt));
    } else {
      stored = cluster->backups()->Store(owner_id, holder_id,
                                         std::move(ckpt));
    }
    if (!stored.ok()) {
      // Nothing holds this checkpoint (kDisk append failed). Firing the
      // trim acks below would let upstream buffers drop tuples the
      // (nonexistent) backup cannot replay — the exact lost-window bug
      // the unchecked-status rule guards. Skip the stored event and the
      // acks; the owner's next checkpoint retries the append.
      ++metrics->ckpt_store_failures;
      return;
    }
  }
  if (auto* audit = cluster->audit()) {
    audit->OnCheckpointStored(owner_id, o->vm(), holder_id, h->vm(),
                              stored_seq);
  }
  metrics->checkpoints_taken++;
  metrics->checkpoint_bytes += bytes;
  // Capture-to-stored latency of the whole pipeline (sampling only; no
  // effect on simulated behaviour).
  metrics->ckpt_e2e_ms.Add(SimToMillis(cluster->Now() - taken_at));

  // Algorithm 1 line 4: acknowledge the checkpointed positions to all
  // upstream instances so they can trim their output buffers.
  for (OperatorId up_op : cluster->graph()->Upstream(owner_op)) {
    for (InstanceId uid : members->LiveInstancesOf(up_op)) {
      OperatorInstance* u = members->GetInstance(uid);
      u->OnTrimAck(owner_op, owner_id, positions.Get(u->origin()));
    }
  }
}

CheckpointShipment Transport::PrepareBackup(OperatorInstance* owner,
                                            CheckpointCapture* capture) {
  MaterializeCaptureBuffer(owner->buffer_state(), capture);
  CheckpointShipment ship;
  ship.logical_bytes = capture->ckpt.ByteSize();
  ship.ckpt =
      std::make_unique<core::StateCheckpoint>(std::move(capture->ckpt));
  return ship;
}

void Transport::ShipBackup(OperatorInstance* owner, CheckpointShipment ship) {
  BackupCheckpoint(owner, std::move(*ship.ckpt));
}

void ShipSerializedCheckpoint(Cluster* cluster, SerializedCkptFrame frame) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  MetricsRegistry* metrics = cluster->metrics();
  OperatorInstance* owner = cluster->GetInstance(frame.owner);
  if (owner == nullptr || !owner->alive() || owner->stopped() ||
      owner->checkpoints_suspended()) {
    // The owner died, stopped or was suspended while the frame was being
    // serialized: abort the in-flight checkpoint cleanly. Suspension case:
    // the coordinator already chose an older backup as its restore point;
    // this frame's trim acks would drop tuples that point still needs.
    ++metrics->async_ckpts_aborted;
    if (auto* audit = cluster->audit()) {
      audit->OnAsyncCheckpointAborted(frame.owner, frame.seq);
    }
    return;
  }
  metrics->ckpt_raw_bytes += frame.raw_bytes;
  metrics->ckpt_wire_bytes += frame.frame.size();
  cluster->transport()->ShipCheckpointFrame(owner, std::move(frame));
}

void DeliverCheckpointChunk(Cluster* cluster, const CkptChunkHeader& header,
                            const uint8_t* data, size_t n) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  MetricsRegistry* metrics = cluster->metrics();
  ++metrics->async_ckpt_chunks;
  if (auto* audit = cluster->audit()) {
    audit->OnCheckpointChunk(header.owner, header.holder, header.seq,
                             header.index, header.count, n,
                             header.frame_bytes);
  }
  auto frame = cluster->ckpt_reassembler()->OnChunk(header, data, n);
  if (!frame.has_value()) return;

  // The frame is whole: unframe (crc32c), decompress, decode, deliver. A
  // failure at any step drops the checkpoint — the owner's next one
  // supersedes it, exactly like a frame lost to a link failure.
  auto payload = serde::UnframePayload(*frame);
  if (!payload.ok()) {
    ++metrics->ckpt_decode_failures;
    return;
  }
  std::vector<uint8_t> raw = std::move(payload).value();
  if (header.compressed) {
    auto unpacked = serde::BlockDecompress(raw, header.raw_bytes);
    if (!unpacked.ok()) {
      ++metrics->ckpt_decode_failures;
      return;
    }
    raw = std::move(unpacked).value();
  }
  serde::Decoder dec(raw);
  auto ckpt = core::StateCheckpoint::Decode(&dec);
  if (!ckpt.ok()) {
    ++metrics->ckpt_decode_failures;
    return;
  }
  // A completed frame supersedes any partial stream it outranks.
  cluster->ckpt_reassembler()->ForgetThrough(header.owner, header.seq);
  const uint64_t bytes = ckpt.value().ByteSize();
  // Hand the intact wire frame along so a durable tier appends the received
  // bytes verbatim instead of re-encoding the decoded checkpoint.
  BackupStore::EncodedFrame prebuilt;
  prebuilt.frame = std::move(*frame);
  prebuilt.raw_bytes = header.raw_bytes;
  prebuilt.compressed = header.compressed;
  DeliverCheckpointToHolder(cluster, header.owner, header.owner_op,
                            header.holder, bytes, std::move(ckpt).value(),
                            &prebuilt);
}

void SimTransport::AttachVm(VmId vm) { cluster_->network()->Attach(vm); }

void SimTransport::DetachVm(VmId vm) { cluster_->network()->Detach(vm); }

SendPressure SimTransport::SendBatch(OperatorInstance* from, InstanceId to,
                                     core::TupleBatch batch) {
  batch.from = from->id();
  Membership* members = cluster_->membership();
  const OperatorInstance* dest = members->GetInstance(to);
  if (dest == nullptr) return SendPressure::kNone;
  const uint64_t bytes = batch.SerializedSize();
  auto shared = std::make_shared<core::TupleBatch>(std::move(batch));
  cluster_->network()->Send(
      from->vm(), dest->vm(), bytes, [members, to, shared]() {
        OperatorInstance* target = members->GetInstance(to);
        if (target != nullptr) target->OnBatch(std::move(*shared));
      });
  return SendPressure::kNone;
}

InstanceId SimTransport::BackupHolderFor(
    const OperatorInstance* owner) const {
  return ChooseBackupHolder(cluster_, owner);
}

void SimTransport::BackupCheckpoint(OperatorInstance* owner,
                                    core::StateCheckpoint ckpt) {
  // Algorithm 1 line 2: spread backup load over upstream instances by hash
  // (unless disabled for the ablation baseline).
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = cluster_->membership()->GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  const uint64_t bytes = ckpt.ByteSize();
  const InstanceId owner_id = owner->id();
  const OperatorId owner_op = owner->op();
  auto shared = std::make_shared<core::StateCheckpoint>(std::move(ckpt));

  cluster_->network()->Send(
      owner->vm(), holder->vm(), bytes,
      // Checkpoint shipping is throttled background traffic: it must not
      // delay the data path (the paper checkpoints asynchronously).
      [this, owner_id, owner_op, holder_id, bytes, shared]() {
        DeliverCheckpointToHolder(cluster_, owner_id, owner_op, holder_id,
                                  bytes, std::move(*shared));
      },
      /*background=*/true);
}

namespace {

/// One in-flight chunked frame ship on the sim backend. Background
/// messages share no FIFO with each other (they only queue behind
/// foreground traffic), so firing every chunk at once would deliver the
/// short tail chunk first; instead chunk i+1 leaves only when chunk i is
/// delivered — the stream stays in order, the frame trickles out behind
/// data batches, and an owner dying mid-stream cuts it exactly at a chunk
/// boundary (the partial stream is superseded by the next checkpoint).
struct SimChunkStream {
  Cluster* cluster = nullptr;
  CkptChunkHeader header;  // index filled in per chunk
  std::shared_ptr<SerializedCkptFrame> frame;
  VmId owner_vm = kInvalidVm;
  VmId holder_vm = kInvalidVm;
  size_t chunk_bytes = 0;
};

void SendChunk(const std::shared_ptr<SimChunkStream>& stream, uint32_t index) {
  CkptChunkHeader header = stream->header;
  header.index = index;
  const size_t total = stream->frame->frame.size();
  const size_t begin = static_cast<size_t>(index) * stream->chunk_bytes;
  const size_t len = std::min(stream->chunk_bytes, total - begin);
  stream->cluster->network()->Send(
      stream->owner_vm, stream->holder_vm, len,
      [stream, header, begin, len]() {
        DeliverCheckpointChunk(stream->cluster, header,
                               stream->frame->frame.data() + begin, len);
        if (header.index + 1 < header.count) {
          SendChunk(stream, header.index + 1);
        }
      },
      /*background=*/true);
}

}  // namespace

void SimTransport::ShipCheckpointFrame(OperatorInstance* owner,
                                       SerializedCkptFrame frame) {
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = cluster_->membership()->GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  const size_t chunk_bytes =
      std::max<size_t>(1, cluster_->config().checkpoint_chunk_bytes);
  auto shared = std::make_shared<SerializedCkptFrame>(std::move(frame));
  const size_t total = shared->frame.size();

  auto stream = std::make_shared<SimChunkStream>();
  stream->cluster = cluster_;
  stream->header.owner = shared->owner;
  stream->header.owner_op = shared->owner_op;
  stream->header.holder = holder_id;
  stream->header.seq = shared->seq;
  stream->header.count =
      static_cast<uint32_t>((total + chunk_bytes - 1) / chunk_bytes);
  stream->header.frame_bytes = total;
  stream->header.raw_bytes = shared->raw_bytes;
  stream->header.compressed = shared->compressed;
  stream->frame = std::move(shared);
  stream->owner_vm = owner->vm();
  stream->holder_vm = holder->vm();
  stream->chunk_bytes = chunk_bytes;
  SendChunk(stream, 0);
}

void SimTransport::ShipState(VmId from, VmId to, uint64_t size_bytes,
                             std::function<void()> on_delivery) {
  cluster_->network()->Send(from, to, size_bytes, std::move(on_delivery));
}

}  // namespace seep::runtime
