#include "runtime/backup_store.h"

#include <utility>

#include "common/logging.h"
#include "serde/block_codec.h"
#include "serde/decoder.h"
#include "serde/encoder.h"
#include "serde/frame.h"
#include "verify/invariant_auditor.h"

namespace seep::runtime {
namespace {

/// Serialize + compress + frame, exactly as CkptSerializer::BuildFrame does
/// for the async pipeline — the synchronous durable paths (sim-mode stores,
/// post-delta refreshes) must put byte-compatible frames in the log.
BackupStore::EncodedFrame EncodeCheckpointFrame(
    const core::StateCheckpoint& ckpt, bool compress) {
  serde::Encoder enc;
  ckpt.Encode(&enc);
  std::vector<uint8_t> payload = std::move(enc).TakeBuffer();
  BackupStore::EncodedFrame out;
  out.raw_bytes = payload.size();
  if (compress) {
    std::vector<uint8_t> packed = serde::BlockCompress(payload);
    if (packed.size() < payload.size()) {
      payload = std::move(packed);
      out.compressed = true;
    }
  }
  out.frame = serde::FramePayload(payload);
  return out;
}

/// Unframe (crc32c) + decompress + decode, exactly as the chunk receive
/// path does for frames off the wire.
[[nodiscard]] Result<core::StateCheckpoint> DecodeCheckpointFrame(
    const std::vector<uint8_t>& frame, uint64_t raw_bytes, bool compressed) {
  SEEP_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                        serde::UnframePayload(frame));
  if (compressed) {
    SEEP_ASSIGN_OR_RETURN(raw, serde::BlockDecompress(raw, raw_bytes));
  }
  serde::Decoder dec(raw);
  return core::StateCheckpoint::Decode(&dec);
}

}  // namespace

void BackupStore::AttachDurable(store::CheckpointLog* log,
                                BackupDurability mode, bool compress,
                                verify::InvariantAuditor* audit) {
  log_ = log;
  mode_ = mode;
  compress_ = compress;
  audit_ = audit;
  if (audit_ != nullptr) {
    audit_->SetDurableMode(mode_ != BackupDurability::kMemory &&
                           log_ != nullptr);
  }
}

[[nodiscard]] Status BackupStore::AppendDurable(
    InstanceId owner, InstanceId holder,
    const core::StateCheckpoint& checkpoint, const EncodedFrame* frame) {
  if (mode_ == BackupDurability::kMemory || log_ == nullptr) {
    return Status::OK();
  }
  EncodedFrame fresh;
  if (frame == nullptr) {
    fresh = EncodeCheckpointFrame(checkpoint, compress_);
    frame = &fresh;
  }
  store::RecordMeta meta;
  meta.owner = owner;
  meta.owner_op = checkpoint.op;
  meta.holder = holder;
  meta.seq = checkpoint.seq;
  meta.raw_bytes = frame->raw_bytes;
  meta.compressed = frame->compressed;
  const Status st =
      log_->Append(meta, frame->frame.data(), frame->frame.size());
  if (!st.ok()) {
    SEEP_LOG(kWarn, 0) << "durable append for instance " << owner
                       << " seq " << checkpoint.seq
                       << " failed: " << st.message();
    return st;
  }
  if (audit_ != nullptr) {
    audit_->OnDurableAppend(owner, checkpoint.seq);
    const auto indexed = log_->Find(owner);
    audit_->OnDurableIndexState(owner, indexed.has_value(),
                                indexed.has_value() ? indexed->seq : 0);
    if (audit_->level() >= verify::kAuditExpensive) {
      const Status spot = log_->SpotCheck(owner);
      if (!spot.ok()) audit_->OnDurableIndexDivergence(spot.message());
    }
  }
  return Status::OK();
}

[[nodiscard]] Status BackupStore::Store(InstanceId owner, InstanceId holder,
                                        core::StateCheckpoint checkpoint) {
  // The durable append happens before the in-memory replace: by the time
  // the caller fires trim acks off this store, the record is in the log.
  const Status durable = AppendDurable(owner, holder, checkpoint, nullptr);
  if (mode_ == BackupDurability::kDisk) return durable;  // no memory tier
  entries_[owner] = Entry{holder, std::move(checkpoint), false};
  return Status::OK();  // the memory tier holds it; degradation is logged
}

[[nodiscard]] Status BackupStore::StoreWithFrame(InstanceId owner,
                                                 InstanceId holder,
                                                 core::StateCheckpoint
                                                     checkpoint,
                                                 EncodedFrame frame) {
  const Status durable = AppendDurable(owner, holder, checkpoint, &frame);
  if (mode_ == BackupDurability::kDisk) return durable;
  entries_[owner] = Entry{holder, std::move(checkpoint), false};
  return Status::OK();
}

[[nodiscard]]
Result<BackupStore::Entry> BackupStore::Retrieve(InstanceId owner) const {
  auto it = entries_.find(owner);
  if (it != entries_.end()) return it->second;
  if (mode_ != BackupDurability::kMemory && log_ != nullptr) {
    return RetrieveDurable(owner);
  }
  return Status::NotFound("no backup for instance");
}

[[nodiscard]] Result<BackupStore::Entry> BackupStore::RetrieveDurable(
    InstanceId owner) const {
  const auto meta = log_->Find(owner);
  if (!meta.has_value()) {
    return Status::NotFound("no backup for instance");
  }
  SEEP_ASSIGN_OR_RETURN(const std::vector<uint8_t> frame,
                        log_->ReadPayload(owner));
  auto ckpt = DecodeCheckpointFrame(frame, meta->raw_bytes,
                                    meta->compressed);
  if (!ckpt.ok()) {
    // The record passed its crc32c at append and at every recovery scan; a
    // decode failure here is index/log divergence, not line noise.
    if (audit_ != nullptr) {
      audit_->OnDurableIndexDivergence(
          "durable record for instance " + std::to_string(owner) +
          " no longer decodes: " + ckpt.status().message());
    }
    return ckpt.status();
  }
  Entry entry;
  entry.holder = meta->holder;
  entry.checkpoint = std::move(ckpt).value();
  entry.from_disk = true;
  return entry;
}

const BackupStore::Entry* BackupStore::Find(InstanceId owner) const {
  auto it = entries_.find(owner);
  return it == entries_.end() ? nullptr : &it->second;
}

BackupStore::Entry* BackupStore::Mutable(InstanceId owner) {
  auto it = entries_.find(owner);
  return it == entries_.end() ? nullptr : &it->second;
}

[[nodiscard]] Status BackupStore::RefreshDurable(InstanceId owner) {
  if (mode_ == BackupDurability::kMemory || log_ == nullptr) {
    return Status::OK();
  }
  auto it = entries_.find(owner);
  if (it == entries_.end()) return Status::OK();
  return AppendDurable(owner, it->second.holder, it->second.checkpoint,
                       nullptr);
}

void BackupStore::Delete(InstanceId owner) {
  entries_.erase(owner);
  if (mode_ == BackupDurability::kMemory || log_ == nullptr) return;
  const Status st = log_->AppendTombstone(owner);
  if (!st.ok()) {
    SEEP_LOG(kWarn, 0) << "durable tombstone for instance " << owner
                       << " failed: " << st.message();
    return;
  }
  if (audit_ != nullptr) {
    audit_->OnDurableTombstone(owner);
    const auto indexed = log_->Find(owner);
    audit_->OnDurableIndexState(owner, indexed.has_value(),
                                indexed.has_value() ? indexed->seq : 0);
  }
}

InstanceId BackupStore::HolderOf(InstanceId owner) const {
  auto it = entries_.find(owner);
  if (it != entries_.end()) return it->second.holder;
  if (mode_ != BackupDurability::kMemory && log_ != nullptr) {
    const auto meta = log_->Find(owner);
    if (meta.has_value()) return meta->holder;
  }
  return kInvalidInstance;
}

bool BackupStore::Has(InstanceId owner) const {
  if (entries_.contains(owner)) return true;
  return mode_ != BackupDurability::kMemory && log_ != nullptr &&
         log_->Has(owner);
}

std::optional<uint64_t> BackupStore::LatestSeq(InstanceId owner) const {
  auto it = entries_.find(owner);
  if (it != entries_.end()) return it->second.checkpoint.seq;
  if (mode_ != BackupDurability::kMemory && log_ != nullptr) {
    const auto meta = log_->Find(owner);
    if (meta.has_value()) return meta->seq;
  }
  return std::nullopt;
}

size_t BackupStore::DropHeldBy(InstanceId holder) {
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.holder == holder) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace seep::runtime
