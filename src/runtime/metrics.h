#ifndef SEEP_RUNTIME_METRICS_H_
#define SEEP_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/time.h"

namespace seep::runtime {

/// One dynamic scale-out action (paper Fig. 6/8 annotations).
struct ScaleOutEvent {
  SimTime at = 0;
  OperatorId op = 0;
  InstanceId partitioned_instance = kInvalidInstance;
  uint32_t parallelism_before = 0;
  uint32_t parallelism_after = 0;
};

/// One dynamic scale-in action: two adjacent partitions merged into one
/// (paper §3.3's merge primitive), releasing a VM.
struct ScaleInEvent {
  SimTime at = 0;
  OperatorId op = 0;
  InstanceId merged_a = kInvalidInstance;
  InstanceId merged_b = kInvalidInstance;
  InstanceId merged_into = kInvalidInstance;
  uint32_t parallelism_before = 0;
  uint32_t parallelism_after = 0;
};

/// Wall-clock (simulated) extent of one reconfiguration-plan stage.
struct ReconfigStageTiming {
  const char* stage = "";  // StageKindName; static storage
  SimTime started = 0;
  SimTime ended = 0;
};

/// Lifecycle record of one reconfiguration plan (scale out/in, recovery):
/// which stages ran, how long each took, and whether the plan committed or
/// was aborted and compensated.
struct ReconfigPlanEvent {
  uint64_t plan_id = 0;
  OperatorId op = 0;
  const char* label = "";  // plan label; static storage
  bool aborted = false;
  std::string status;
  SimTime started = 0;
  SimTime ended = 0;
  std::vector<ReconfigStageTiming> stages;
};

/// One failure-recovery action (paper §6.2). `caught_up_at` is when the
/// restored instance finished processing all replayed tuples — the paper's
/// "time to recover (until the complete operator state was restored)".
struct RecoveryEvent {
  OperatorId op = 0;
  InstanceId failed_instance = kInvalidInstance;
  SimTime failed_at = 0;
  SimTime detected_at = 0;
  SimTime restored_at = 0;   // state restored onto the replacement(s)
  SimTime caught_up_at = 0;  // replay fence drained; 0 if not yet
  uint32_t parallelism = 1;  // 1 = serial recovery, >1 = parallel recovery

  double RecoverySeconds() const {
    return caught_up_at == 0 ? -1 : SimToSeconds(caught_up_at - failed_at);
  }
};

/// Run-wide observability: everything the paper's figures plot. Owned by the
/// Cluster and written by instances/coordinators; read by benches and tests.
class MetricsRegistry {
 public:
  MetricsRegistry()
      : latency_ms(1 << 20, /*seed=*/7),
        sink_tuples(kMicrosPerSecond),
        source_tuples(kMicrosPerSecond),
        dropped_tuples(kMicrosPerSecond) {}

  /// End-to-end processing latency of result tuples, in milliseconds.
  SampleDistribution latency_ms;
  /// Sparse (time, latency-ms) samples for latency-over-time plots (Fig. 7).
  TimeSeries latency_series_ms;
  /// Result tuples per second at sinks (Fig. 6 "throughput").
  RateCounter sink_tuples;
  /// Tuples actually emitted by sources per second (Fig. 6 "input rate").
  RateCounter source_tuples;
  /// Tuples dropped by admission control under overload (open-loop runs).
  RateCounter dropped_tuples;
  /// VMs hosting operator instances over time (Fig. 6 right axis).
  TimeSeries vms_in_use;

  std::vector<ScaleOutEvent> scale_outs;
  std::vector<ScaleInEvent> scale_ins;
  std::vector<RecoveryEvent> recoveries;
  std::vector<ReconfigPlanEvent> reconfig_plans;

  uint64_t duplicates_dropped = 0;
  uint64_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t delta_checkpoints_taken = 0;
  uint64_t delta_apply_failures = 0;
  /// Checkpoint stores rejected by the backup store (durable append
  /// failed with no surviving tier) or durable refreshes that left the
  /// log a delta behind. Each one is a checkpoint whose trim acks did
  /// NOT fire — the unchecked-status discipline made these observable.
  uint64_t ckpt_store_failures = 0;
  uint64_t tuples_replayed = 0;
  uint64_t tuples_processed = 0;
  uint64_t source_saturated_ticks = 0;

  // ---------------------------------------------- checkpoint pipeline
  /// Operator pause per checkpoint job (capture only when async), ms.
  SampleDistribution ckpt_pause_ms{1 << 16, /*seed=*/11};
  /// Capture-to-stored latency of the whole pipeline, ms.
  SampleDistribution ckpt_e2e_ms{1 << 16, /*seed=*/13};
  /// Async captures handed to the background serialization stage.
  uint64_t async_ckpt_captures = 0;
  /// Checkpoint chunks delivered at backup holders.
  uint64_t async_ckpt_chunks = 0;
  /// In-flight async checkpoints aborted (owner died/stopped/suspended).
  uint64_t async_ckpts_aborted = 0;
  /// Serialized checkpoint payload bytes before / after compression.
  uint64_t ckpt_raw_bytes = 0;
  uint64_t ckpt_wire_bytes = 0;
  /// Reassembled frames dropped for failing crc/decompress/decode.
  uint64_t ckpt_decode_failures = 0;
  /// Wire messages the TCP pump dropped because their body failed to
  /// decode. The frame already passed the net layer's crc32c, so these
  /// are encode/decode logic divergence, never line noise — silently
  /// swallowing them is how a protocol bug becomes unexplained data
  /// loss (enum-switch-exhaustiveness / unchecked-status discipline).
  uint64_t wire_decode_failures = 0;

  /// Sampling stride for latency_series_ms (1 sample per N sink tuples).
  uint32_t latency_series_stride = 64;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_METRICS_H_
