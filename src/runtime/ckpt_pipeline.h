#ifndef SEEP_RUNTIME_CKPT_PIPELINE_H_
#define SEEP_RUNTIME_CKPT_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <tuple>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/sync.h"
#include "common/time.h"
#include "core/state.h"
#include "serde/decoder.h"
#include "serde/encoder.h"
#include "sim/simulation.h"

namespace seep::runtime {

/// The asynchronous checkpoint pipeline (stage types and workers): a cheap
/// synchronous *capture* pauses the operator for microseconds, a background
/// *serialization* stage encodes/compresses/crc32c's the snapshot off the
/// processing path, and *chunked shipping* interleaves the frame with data
/// batches through the Transport seam, reassembled at the backup holder.
/// This header is Transport- and net-free by design: the background worker
/// code must never touch net/ directly (lint rule ckpt-worker-no-net).

/// The slice of one downstream replay buffer a capture covers, recorded as
/// positions instead of copied tuples: the live buffer is timestamp-sorted,
/// so (from_exclusive, back] names the captured suffix exactly, and the
/// bytes are materialized (or encoded straight from the live buffer) later.
struct BufferExtent {
  /// Materialize tuples with timestamp strictly above this (INT64_MIN on a
  /// full capture: the whole live region).
  int64_t from_exclusive = INT64_MIN;
  /// ...and at most this. INT64_MIN means the extent is empty.
  int64_t back = INT64_MIN;
  /// Tuple count and exact wire bytes of the extent, computed at capture so
  /// the serialization stage can reserve the frame in one allocation.
  size_t tuples = 0;
  size_t bytes = 0;
};

/// Stage-1 output: the checkpoint with everything *except* the buffer bytes
/// (`ckpt.buffer` stays empty until materialized), plus per-downstream
/// extents marking which buffered tuples belong to it. Capturing extents
/// instead of tuples is what removes the `c.buffer = buffer` deep copy from
/// the processing pause.
struct CheckpointCapture {
  core::StateCheckpoint ckpt;
  std::map<OperatorId, BufferExtent> extents;
  bool materialized = false;
};

/// Copies the captured buffer extents out of the live buffers into
/// `cap->ckpt.buffer`, producing exactly the checkpoint the old synchronous
/// capture built. Must run on the driver thread while `live` still covers
/// the extents (later trims only shrink the front, which is safe: trimmed
/// tuples are already covered downstream).
void MaterializeCaptureBuffer(const core::BufferState& live,
                              CheckpointCapture* cap);

/// Exact wire size of EncodeCapturedCheckpoint's output (equivalently, of
/// materialize-then-Encode), without materializing. Valid only before
/// MaterializeCaptureBuffer.
size_t CapturedEncodedSize(const CheckpointCapture& cap);

/// Encodes the capture as StateCheckpoint::Encode would after
/// materialization, but streams the buffer section straight out of the live
/// buffers — one pass from tuples to wire bytes with an exact up-front
/// Reserve, no intermediate BufferState copy. Must run at capture time,
/// before any trim can move the live buffers.
void EncodeCapturedCheckpoint(const core::BufferState& live,
                              const CheckpointCapture& cap,
                              serde::Encoder* enc);

/// A prepared synchronous backup, built at capture time and shipped when the
/// checkpoint job's service time elapses. Backends fill exactly one side:
/// the sim stores the struct; the TCP backend pre-encodes the payload.
struct CheckpointShipment {
  std::unique_ptr<core::StateCheckpoint> ckpt;  // sim backend
  std::vector<uint8_t> payload;                 // TCP backend (encoded ckpt)
  uint64_t logical_bytes = 0;  // ByteSize() of the checkpoint at capture
};

/// What a kCheckpoint scheduler job carries between PrepareJob (capture) and
/// FinishJob (hand-off to the backup path).
struct CheckpointWork {
  bool async = false;
  CheckpointCapture capture;    // async: materialized + serialized later
  CheckpointShipment shipment;  // sync: prepared at capture time
};

/// Stage-2 output: one serialized checkpoint frame ready to ship —
/// [length | crc32c | payload] where the payload is the encoded checkpoint,
/// block-compressed when that made it smaller.
struct SerializedCkptFrame {
  InstanceId owner = kInvalidInstance;
  OperatorId owner_op = 0;
  uint64_t seq = 0;
  SimTime captured_at = 0;
  uint64_t raw_bytes = 0;  // encoded payload size before compression
  bool compressed = false;
  std::vector<uint8_t> frame;
};

/// Background serialization workers (stage 2). In sim mode the work is a
/// deterministic deferred simulation event charged the same serialization
/// cost the synchronous path models, so figure tables stay byte-identical;
/// in TCP mode it runs on one std::thread per VM whose completions re-enter
/// the driver thread through a polled done-queue. Either way the completion
/// callback runs on the driver thread.
class CkptSerializer {
 public:
  struct Job {
    InstanceId owner = kInvalidInstance;
    OperatorId owner_op = 0;
    VmId vm = kInvalidVm;
    uint64_t seq = 0;
    SimTime captured_at = 0;
    core::StateCheckpoint snapshot;
  };
  using DoneFn = std::function<void(SerializedCkptFrame)>;
  /// Simulated CPU time one snapshot costs to serialize (sim mode's deferral
  /// delay — the same cost the synchronous pause used to charge).
  using CostFn = std::function<SimTime(const core::StateCheckpoint&)>;

  CkptSerializer(sim::Simulation* sim, bool threaded, bool compress,
                 SimTime pump_interval, CostFn cost, DoneFn on_done);
  ~CkptSerializer();

  CkptSerializer(const CkptSerializer&) = delete;
  CkptSerializer& operator=(const CkptSerializer&) = delete;

  /// Hands a snapshot to the background stage. Driver thread only
  /// (runtime-checked: submitting from a worker or loop thread aborts).
  void Submit(Job job);

  /// Jobs submitted whose completion has not yet been dispatched. Driver
  /// thread only.
  size_t in_flight() const SEEP_RUN_ON(sync::DriverThread) {
    return outstanding_;
  }

  /// The pure serialize+compress+frame step, shared by both modes (and unit
  /// tests): encode with an exact reserve, compress when smaller, frame with
  /// crc32c.
  static SerializedCkptFrame BuildFrame(const Job& job, bool compress);

 private:
  // A nested struct cannot name the enclosing serializer's mu_ in a
  // SEEP_GUARDED_BY annotation, so the discipline is recorded as waivers.
  struct WorkerState {
    std::deque<Job> queue SEEP_UNGUARDED("guarded by CkptSerializer::mu_");
    std::thread thread
        SEEP_UNGUARDED("created under mu_ in Submit; moved out under mu_ "
                       "and joined by the destructor");
    bool stop SEEP_UNGUARDED("guarded by CkptSerializer::mu_") = false;
  };

  void Pump() SEEP_RUN_ON(sync::DriverThread);
  void WorkerLoop(WorkerState* ws);

  sim::Simulation* const sim_;
  const bool threaded_;
  const bool compress_;
  const SimTime pump_interval_;
  CostFn cost_ SEEP_UNGUARDED("set in the constructor, immutable after");
  DoneFn on_done_ SEEP_UNGUARDED("set in the constructor, immutable after");

  // Driver-thread state.
  size_t outstanding_ SEEP_GUARDED_BY(sync::DriverThread) = 0;
  bool pump_scheduled_ SEEP_GUARDED_BY(sync::DriverThread) = false;

  // Shared with worker threads (threaded mode only).
  sync::Mutex mu_;
  sync::CondVar cv_;
  std::map<VmId, std::unique_ptr<WorkerState>> workers_ SEEP_GUARDED_BY(mu_);
  std::deque<SerializedCkptFrame> done_ SEEP_GUARDED_BY(mu_);
};

/// The per-chunk header travelling with each slice of a serialized frame
/// (stage 3). Chunks of one (owner, seq) stream arrive in order on their
/// FIFO link; `index`/`count` let the holder detect loss or interleaving
/// corruption, and `raw_bytes`/`compressed` parameterize decompression.
struct CkptChunkHeader {
  InstanceId owner = kInvalidInstance;
  OperatorId owner_op = 0;
  InstanceId holder = kInvalidInstance;
  uint64_t seq = 0;
  uint32_t index = 0;
  uint32_t count = 0;
  uint64_t frame_bytes = 0;  // total size of the reassembled frame
  uint64_t raw_bytes = 0;    // payload size before compression
  bool compressed = false;
};

void EncodeChunkHeader(const CkptChunkHeader& h, serde::Encoder* enc);
[[nodiscard]] Result<CkptChunkHeader> DecodeChunkHeader(serde::Decoder* dec);

/// Holder-side reassembly of chunked checkpoint frames, keyed by
/// (owner, seq, holder). Returns the whole frame when the last chunk lands.
/// Malformed streams (index gap, byte overflow, absurd declared size) are
/// dropped wholesale — the owner's next checkpoint supersedes them, exactly
/// like a frame lost to a link failure.
class CkptChunkReassembler {
 public:
  std::optional<std::vector<uint8_t>> OnChunk(const CkptChunkHeader& h,
                                              const uint8_t* data, size_t n);

  /// Drops partial streams of `owner` at or below `seq` (a stored
  /// checkpoint supersedes everything it outranks).
  void ForgetThrough(InstanceId owner, uint64_t seq);

  /// Drops every partial stream of `owner`, at any seq — the backup-delete
  /// path (Cluster::DeleteBackup), where a late-finishing stream must not
  /// resurrect a tombstoned instance.
  void ForgetOwner(InstanceId owner);

  size_t pending_streams() const { return pending_.size(); }

 private:
  struct Pending {
    uint32_t next_index = 0;
    uint32_t count = 0;
    uint64_t frame_bytes = 0;
    std::vector<uint8_t> frame;
  };
  // owner, seq, holder
  using Key = std::tuple<InstanceId, uint64_t, InstanceId>;
  std::map<Key, Pending> pending_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_CKPT_PIPELINE_H_
