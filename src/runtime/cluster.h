#ifndef SEEP_RUNTIME_CLUSTER_H_
#define SEEP_RUNTIME_CLUSTER_H_

#include <map>
#include <memory>
#include <vector>

#include "cloud/cloud_provider.h"
#include "cloud/vm_pool.h"
#include "common/result.h"
#include "core/query_graph.h"
#include "core/state.h"
#include "runtime/backup_store.h"
#include "runtime/ckpt_pipeline.h"
#include "runtime/fence_registry.h"
#include "runtime/membership.h"
#include "runtime/metrics.h"
#include "runtime/tcp_transport.h"
#include "runtime/transport.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "store/checkpoint_log.h"
#include "verify/invariant_auditor.h"

namespace seep::runtime {

class OperatorInstance;

/// Which fault-tolerance mechanism the deployment runs (paper §6.2 compares
/// all three; kNone is the Fig. 14 no-checkpointing baseline).
enum class FaultToleranceMode {
  kStateManagement,  // R+SM: periodic checkpoints backed up upstream
  kUpstreamBackup,   // UB: window-length buffers at every operator, replayed
  kSourceReplay,     // SR: buffers only at sources, whole pipeline replays
  kNone,             // no checkpoints, no recovery
};

/// Which Transport backend ships messages between instances. kSim is the
/// deterministic default every figure bench uses; kTcp runs real loopback
/// TCP between per-VM worker threads (net::LocalCluster) while the logical
/// runtime stays on the sim driver thread.
enum class TransportKind {
  kSim,
  kTcp,
};

struct ClusterConfig {
  sim::NetworkConfig network;
  cloud::CloudProviderConfig provider;
  cloud::VmPoolConfig pool;

  TransportKind transport = TransportKind::kSim;
  TcpTransportConfig tcp;
  /// How long an instance throttles its job scheduler after SendBatch
  /// reports outbound queue pressure (TCP backend only; the sim backend
  /// never reports pressure). 0 disables throttling.
  SimTime backpressure_pause = MillisToSim(5);

  FaultToleranceMode ft_mode = FaultToleranceMode::kStateManagement;
  /// Checkpointing interval c (paper §3.2); R+SM only.
  SimTime checkpoint_interval = SecondsToSim(5);
  /// Granularity at which sources materialise tuples into batches.
  SimTime source_tick = MillisToSim(100);
  /// Age horizon for buffer trimming in UB/SR modes; must exceed the longest
  /// window of any operator, plus slack for replay.
  SimTime buffer_window = SecondsToSim(35);
  /// Input-queue admission limit per instance; arrivals beyond it are
  /// dropped (the open-loop overload behaviour). Replay batches are exempt.
  /// The default is large enough that closed-loop runs never drop; open-loop
  /// experiments (paper Fig. 8) configure a small limit explicitly.
  size_t max_queue_tuples = 4'000'000;
  /// CPU cost of serialising/deserialising checkpoint state, µs per KiB on
  /// the reference core; drives the Fig. 14 overhead.
  double serialize_cost_us_per_kb = 25.0;

  /// Asynchronous checkpoint pipeline: the operator pauses only for a cheap
  /// capture; serialization/compression runs on a background stage and the
  /// frame ships in chunks. Off by default — the synchronous path (and
  /// every figure bench) is bit-for-bit unchanged.
  bool async_checkpoints = false;
  /// CPU cost of the capture pause (async pipeline), µs per KiB of
  /// processing state — the O(dirty) snapshot, not serialization.
  double capture_cost_us_per_kb = 1.0;
  /// Chunk size for shipping serialized checkpoint frames: multi-MB frames
  /// interleave with data batches at this granularity.
  size_t checkpoint_chunk_bytes = 256u << 10;
  /// Block-compress serialized checkpoint frames when it helps (the flag
  /// travels per frame, so incompressible payloads ship raw).
  bool compress_checkpoints = true;

  /// Durability tier of the backup directory: kMemory is the paper's single
  /// in-memory copy at the upstream holder (default, and byte-identical to
  /// the pre-durability behaviour), kDisk keeps backups only in the durable
  /// checkpoint log (src/store/), kTiered keeps both — memory for the fast
  /// paths, the log for correlated owner+holder failures.
  BackupDurability backup_durability = BackupDurability::kMemory;
  /// Durable checkpoint log settings (kDisk/kTiered only). An empty
  /// `store.directory` auto-provisions a unique directory under the working
  /// directory, removed again when the cluster shuts down.
  store::CheckpointLogConfig store;

  /// Whether backup holders are spread over upstream instances by hash
  /// (Algorithm 1 line 2). When false, every checkpoint goes to the first
  /// upstream instance — the baseline for the backup-spread ablation.
  bool spread_backups = true;

  /// Incremental checkpointing (paper §3.2 / [17]): operators that support
  /// dirty-key tracking ship only state deltas; the backup holder applies
  /// them onto its stored full copy. Every `full_checkpoint_every`-th
  /// checkpoint is a full resync.
  bool incremental_checkpoints = false;
  uint32_t full_checkpoint_every = 12;

  /// Protocol invariant auditing (src/verify/): 0 off, 1 cheap per-event
  /// checks, 2 adds per-tuple and whole-table sweeps. Defaults to the
  /// SEEP_AUDIT environment variable / the SEEP_AUDIT build option.
  int audit_level = verify::DefaultAuditLevel();

  uint64_t seed = 42;
};

/// The simulated deployment's substrate and subsystem wiring: event loop,
/// network, cloud provider, VM pool, metrics, routing and backup directory,
/// plus the three subsystems that own all runtime mechanism — Membership
/// (instance lifecycle), Transport (message shipping) and FenceRegistry
/// (replay fences). Policy (when to scale, how to recover) lives in
/// control/ and acts through those subsystem interfaces — mirroring the
/// paper's split between state management primitives and the SPS components
/// that use them. Cluster itself only wires and exposes; every membership
/// mutation goes through membership() and every message through
/// transport().
class Cluster {
 public:
  Cluster(const core::QueryGraph* graph, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation* simulation() { return &sim_; }
  sim::Network* network() { return &network_; }
  cloud::CloudProvider* provider() { return &provider_; }
  cloud::VmPool* pool() { return &pool_; }
  MetricsRegistry* metrics() { return &metrics_; }
  const ClusterConfig& config() const { return config_; }
  const core::QueryGraph* graph() const { return graph_; }
  core::RoutingState* routing() { return &routing_; }
  BackupStore* backups() { return &backups_; }
  SimTime Now() const { return sim_.Now(); }

  // --------------------------------------------------------------- planes

  /// Instance lifecycle and the partition/VM directories.
  Membership* membership() { return &membership_; }
  const Membership* membership() const { return &membership_; }

  /// All inter-instance message shipping.
  Transport* transport() { return transport_.get(); }

  /// Replay-fence registration and delivery.
  FenceRegistry* fences() { return &fences_; }

  /// The background serialization stage of the async checkpoint pipeline
  /// (one per cluster; per-VM workers inside).
  CkptSerializer* ckpt_serializer() { return ckpt_serializer_.get(); }

  /// Holder-side reassembly of chunked checkpoint frames.
  CkptChunkReassembler* ckpt_reassembler() { return &ckpt_reassembler_; }

  /// The protocol invariant auditor, or null when auditing is off. Every
  /// component hook guards on this pointer, so audit-off deployments pay one
  /// branch per hook site.
  verify::InvariantAuditor* audit() { return auditor_.get(); }

  /// The single choke point for routing installs: replaces `down_op`'s
  /// routes and lets the auditor assert the new table exactly tiles the key
  /// space (Algorithm 2). Coordinators must use this instead of writing
  /// routing() directly.
  void InstallRoutes(OperatorId down_op,
                     std::vector<core::RoutingState::Route> routes);

  /// The single choke point for deleting a backup: drops the in-memory
  /// entry, tombstones the durable log (kDisk/kTiered), and makes the chunk
  /// reassembler forget the owner's partial streams in the same step — so a
  /// dropped partial stream and a tombstone can never disagree about
  /// whether the owner still stores.
  void DeleteBackup(InstanceId owner);

  /// The durable checkpoint log, or null in kMemory mode.
  store::CheckpointLog* durable_log() { return durable_log_.get(); }

  // ------------------------------------------------- read-side conveniences
  // (lookups only — these delegate to membership(); mutations don't exist
  // here.)

  OperatorInstance* GetInstance(InstanceId id) {
    return membership_.GetInstance(id);
  }
  const OperatorInstance* GetInstance(InstanceId id) const {
    return membership_.GetInstance(id);
  }
  std::vector<InstanceId> InstancesOf(OperatorId op) const {
    return membership_.InstancesOf(op);
  }
  std::vector<InstanceId> LiveInstancesOf(OperatorId op) const {
    return membership_.LiveInstancesOf(op);
  }
  std::vector<InstanceId> UpstreamInstancesOf(OperatorId op) const {
    return membership_.UpstreamInstancesOf(op);
  }
  const std::map<InstanceId, std::unique_ptr<OperatorInstance>>& instances()
      const {
    return membership_.instances();
  }

  // ----------------------------------------------------------------- misc

  core::OriginId NewOrigin() { return ++origin_counter_; }

 private:
  const core::QueryGraph* graph_;
  ClusterConfig config_;
  sim::Simulation sim_;
  sim::Network network_;
  cloud::CloudProvider provider_;
  cloud::VmPool pool_;
  MetricsRegistry metrics_;
  core::RoutingState routing_;
  /// Declared before backups_ (which borrows a raw pointer) so the log
  /// outlives the directory that points into it.
  std::unique_ptr<store::CheckpointLog> durable_log_;
  /// Non-empty when the cluster auto-provisioned the store directory and
  /// owns its removal at shutdown.
  std::string owned_store_dir_;
  BackupStore backups_;

  core::OriginId origin_counter_ = 0;

  Membership membership_;
  FenceRegistry fences_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<CkptSerializer> ckpt_serializer_;
  CkptChunkReassembler ckpt_reassembler_;
  std::unique_ptr<verify::InvariantAuditor> auditor_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_CLUSTER_H_
