#ifndef SEEP_RUNTIME_CLUSTER_H_
#define SEEP_RUNTIME_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cloud/cloud_provider.h"
#include "cloud/vm_pool.h"
#include "common/result.h"
#include "core/query_graph.h"
#include "core/state.h"
#include "runtime/backup_store.h"
#include "runtime/metrics.h"
#include "runtime/operator_instance.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace seep::runtime {

/// Which fault-tolerance mechanism the deployment runs (paper §6.2 compares
/// all three; kNone is the Fig. 14 no-checkpointing baseline).
enum class FaultToleranceMode {
  kStateManagement,  // R+SM: periodic checkpoints backed up upstream
  kUpstreamBackup,   // UB: window-length buffers at every operator, replayed
  kSourceReplay,     // SR: buffers only at sources, whole pipeline replays
  kNone,             // no checkpoints, no recovery
};

struct ClusterConfig {
  sim::NetworkConfig network;
  cloud::CloudProviderConfig provider;
  cloud::VmPoolConfig pool;

  FaultToleranceMode ft_mode = FaultToleranceMode::kStateManagement;
  /// Checkpointing interval c (paper §3.2); R+SM only.
  SimTime checkpoint_interval = SecondsToSim(5);
  /// Granularity at which sources materialise tuples into batches.
  SimTime source_tick = MillisToSim(100);
  /// Age horizon for buffer trimming in UB/SR modes; must exceed the longest
  /// window of any operator, plus slack for replay.
  SimTime buffer_window = SecondsToSim(35);
  /// Input-queue admission limit per instance; arrivals beyond it are
  /// dropped (the open-loop overload behaviour). Replay batches are exempt.
  /// The default is large enough that closed-loop runs never drop; open-loop
  /// experiments (paper Fig. 8) configure a small limit explicitly.
  size_t max_queue_tuples = 4'000'000;
  /// CPU cost of serialising/deserialising checkpoint state, µs per KiB on
  /// the reference core; drives the Fig. 14 overhead.
  double serialize_cost_us_per_kb = 25.0;

  /// Whether backup holders are spread over upstream instances by hash
  /// (Algorithm 1 line 2). When false, every checkpoint goes to the first
  /// upstream instance — the baseline for the backup-spread ablation.
  bool spread_backups = true;

  /// Incremental checkpointing (paper §3.2 / [17]): operators that support
  /// dirty-key tracking ship only state deltas; the backup holder applies
  /// them onto its stored full copy. Every `full_checkpoint_every`-th
  /// checkpoint is a full resync.
  bool incremental_checkpoints = false;
  uint32_t full_checkpoint_every = 12;

  uint64_t seed = 42;
};

/// Owns every mechanism of the simulated deployment: the event loop, the
/// network, the cloud provider and VM pool, all operator instances, routing
/// state, checkpoint backups and metrics. Policy (when to scale, how to
/// recover) lives in control/ and acts through this interface — mirroring
/// the paper's split between state management primitives and the SPS
/// components that use them.
class Cluster {
 public:
  Cluster(const core::QueryGraph* graph, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation* simulation() { return &sim_; }
  sim::Network* network() { return &network_; }
  cloud::CloudProvider* provider() { return &provider_; }
  cloud::VmPool* pool() { return &pool_; }
  MetricsRegistry* metrics() { return &metrics_; }
  const ClusterConfig& config() const { return config_; }
  const core::QueryGraph* graph() const { return graph_; }
  core::RoutingState* routing() { return &routing_; }
  BackupStore* backups() { return &backups_; }
  SimTime Now() const { return sim_.Now(); }

  // ------------------------------------------------------------ deployment

  /// Creates an instance of logical operator `op` on `vm` covering `range`.
  /// The instance is registered as a current partition of `op` but not
  /// started; callers set routing and call Start.
  Result<InstanceId> DeployInstance(OperatorId op, VmId vm,
                                    core::KeyRange range,
                                    uint32_t source_index = 0,
                                    uint32_t source_count = 1);

  OperatorInstance* GetInstance(InstanceId id);
  const OperatorInstance* GetInstance(InstanceId id) const;

  /// Current partitions of a logical operator (includes failed instances
  /// until a recovery replaces them — their buffers upstream must be
  /// preserved meanwhile).
  std::vector<InstanceId> InstancesOf(OperatorId op) const;

  /// Same, restricted to alive instances.
  std::vector<InstanceId> LiveInstancesOf(OperatorId op) const;

  /// Alive instances of all upstream logical operators of `op` — the
  /// candidate backup holders (Algorithm 1).
  std::vector<InstanceId> UpstreamInstancesOf(OperatorId op) const;

  /// Removes `id` from the current membership of its logical operator (it
  /// was replaced); stops it and optionally releases its VM. The object
  /// remains as a tombstone so in-flight events resolve safely.
  void RetireInstance(InstanceId id, bool release_vm);

  /// First half of retirement: stop the instance and release its VM, but
  /// KEEP it in the membership. Until FinalizeRetire runs (atomically with
  /// the routing switch that seeds the replacements' acknowledgement
  /// positions), the stopped instance's frozen ack still constrains
  /// upstream buffer trimming — otherwise a sibling partition's checkpoint
  /// in the handover window could trim tuples the replacements still need.
  void StopInstance(InstanceId id, bool release_vm);

  /// Second half: removes `id` from membership and drops its backups.
  void FinalizeRetire(InstanceId id);

  const std::map<InstanceId, std::unique_ptr<OperatorInstance>>& instances()
      const {
    return instances_;
  }

  // --------------------------------------------------------------- failure

  /// Crash-stops a VM: the hosted instance dies, its network endpoint
  /// detaches (in-flight messages drop), and any checkpoint backups stored
  /// on it are lost.
  Status KillVm(VmId vm);

  /// Convenience for tests/benches: kills the VM hosting the (single)
  /// current instance of `op`.
  Status KillOperator(OperatorId op);

  // ------------------------------------------------------------- messaging

  /// Ships a tuple batch from one instance to another over the network.
  void SendBatch(OperatorInstance* from, InstanceId to,
                 core::TupleBatch batch);

  /// Algorithm 1 backup-state: selects the holder by hashing over upstream
  /// instances, ships the checkpoint over the network, stores it (applying
  /// it onto the held copy when it is a delta), and sends trim
  /// acknowledgements to the owner's upstream instances.
  void BackupCheckpoint(OperatorInstance* owner, core::StateCheckpoint ckpt);

  /// The holder Algorithm 1 would choose for `owner` right now, or
  /// kInvalidInstance if there is no live upstream. Owners use this to
  /// decide whether an incremental checkpoint can target the same holder
  /// as the stored base.
  InstanceId BackupHolderFor(const OperatorInstance* owner) const;

  // ---------------------------------------------------------------- fences

  /// Registers a replay fence: `expected` fence deliveries at instances in
  /// `targets` complete the fence and invoke `on_complete(now)`.
  uint64_t RegisterFence(int expected, std::set<InstanceId> targets,
                         std::function<void(SimTime)> on_complete);

  void HandleFence(uint64_t fence_id, OperatorInstance* at);

  // ----------------------------------------------------------------- misc

  core::OriginId NewOrigin() { return ++origin_counter_; }
  InstanceId NextInstanceId() { return next_instance_id_++; }
  void RecordVmsInUse();

 private:
  const core::QueryGraph* graph_;
  ClusterConfig config_;
  sim::Simulation sim_;
  sim::Network network_;
  cloud::CloudProvider provider_;
  cloud::VmPool pool_;
  MetricsRegistry metrics_;
  core::RoutingState routing_;
  BackupStore backups_;

  InstanceId next_instance_id_ = 0;
  core::OriginId origin_counter_ = 0;
  uint64_t fence_counter_ = 0;

  std::map<InstanceId, std::unique_ptr<OperatorInstance>> instances_;
  std::map<OperatorId, std::vector<InstanceId>> partitions_;
  std::map<VmId, InstanceId> vm_to_instance_;

  struct Fence {
    std::set<InstanceId> targets;
    int remaining = 0;
    std::function<void(SimTime)> on_complete;
  };
  std::map<uint64_t, Fence> fences_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_CLUSTER_H_
