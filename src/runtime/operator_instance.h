#ifndef SEEP_RUNTIME_OPERATOR_INSTANCE_H_
#define SEEP_RUNTIME_OPERATOR_INSTANCE_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/operator.h"
#include "core/query_graph.h"
#include "core/state.h"
#include "core/tuple.h"

namespace seep::runtime {

class Cluster;

/// A physical partitioned operator (the paper's o^i) running on one
/// simulated VM. Models a single-server FIFO queue: tuple batches,
/// checkpoints and window timers are jobs whose service time is derived from
/// per-tuple/per-byte CPU costs divided by the VM's capacity. All state
/// management hooks (checkpoint, restore, replay, trim, suppression) live
/// here; coordination policy lives in control/.
class OperatorInstance {
 public:
  struct Params {
    InstanceId id = kInvalidInstance;
    OperatorId op = 0;
    const core::OperatorSpec* spec = nullptr;
    VmId vm = kInvalidVm;
    double vm_capacity = 1.0;
    core::KeyRange range = core::KeyRange::Full();
    core::OriginId origin = core::kInvalidOrigin;
    uint32_t source_index = 0;  // which of N parallel sources this is
    uint32_t source_count = 1;
  };

  OperatorInstance(Cluster* cluster, Params params);
  ~OperatorInstance();

  OperatorInstance(const OperatorInstance&) = delete;
  OperatorInstance& operator=(const OperatorInstance&) = delete;

  InstanceId id() const { return p_.id; }
  OperatorId op() const { return p_.op; }
  VmId vm() const { return p_.vm; }
  const core::OperatorSpec& spec() const { return *p_.spec; }
  const core::KeyRange& key_range() const { return p_.range; }
  core::OriginId origin() const { return origin_; }
  bool alive() const { return alive_; }
  bool stopped() const { return stopped_; }
  bool idle() const { return !busy_ && queue_.empty(); }

  // ------------------------------------------------------------- lifecycle

  /// Begins source ticks, window timers and the checkpoint schedule.
  void Start();

  /// Graceful permanent stop (scale-out path, Algorithm 3 line 8): finishes
  /// nothing further; queued batches are discarded (upstream replays them).
  void Stop();

  /// Crash-stop (VM failure): all volatile state is lost.
  void MarkDead(SimTime now);

  /// Time of the crash-stop, or 0 if alive.
  SimTime died_at() const { return died_at_; }

  /// Temporarily halts job starts (Algorithm 3 lines 10/14 stop/start of
  /// upstream operators during routing and buffer repartitioning).
  void Pause();
  void Resume();

  /// Freezes the checkpoint schedule while the scale-out coordinator is
  /// partitioning this instance's backed-up state: a fresher checkpoint
  /// landing mid-operation would trim upstream buffers past the restore
  /// point. (The paper's Algorithm 3 likewise never asks the overloaded
  /// operator to checkpoint during its own scale out.)
  void SuspendCheckpoints() { checkpoints_suspended_ = true; }
  void ResumeCheckpoints() { checkpoints_suspended_ = false; }

  // ------------------------------------------------------------- data path

  /// Delivery of a batch from the network (or a fence).
  void OnBatch(core::TupleBatch batch);

  // ------------------------------------------------------ state management

  /// checkpoint-state(o) → (θo, τo, βo): synchronous snapshot, used by the
  /// checkpoint job and by quiesced scale-in.
  core::StateCheckpoint MakeCheckpoint();

  /// Incremental variant: only the state entries changed since the previous
  /// checkpoint, new buffer tuples, and trim positions for the mirrored
  /// buffer. Requires the operator's SupportsIncrementalState().
  core::StateCheckpoint MakeDeltaCheckpoint();

  /// Whether the next periodic checkpoint may be shipped as a delta
  /// (incremental mode on, operator supports it, a full base is stored at
  /// the holder Algorithm 1 currently selects, and no full resync is due).
  bool CanCheckpointIncrementally() const;

  /// restore-state(o, θ, τ, β): installs a checkpoint. With `inherit_origin`
  /// the instance adopts the checkpoint's origin and output clock so that
  /// downstream duplicate filtering recognises its re-emissions (serial
  /// recovery); otherwise it keeps its own fresh origin (scale-out
  /// partitions).
  void Restore(const core::StateCheckpoint& checkpoint, bool inherit_origin);

  /// Catch-up suppression: while re-processing replayed tuples with
  /// timestamps at or below these per-origin positions, state is updated but
  /// emissions are dropped — the stopped parent already delivered the
  /// corresponding outputs downstream.
  void SetSuppressUntil(core::InputPositions positions);

  /// Merges another partition's processing state (quiesced scale-in).
  void MergeState(const core::ProcessingState& state);

  /// Clears processing state, positions, buffers, the job queue and the
  /// output clock, and adopts a fresh origin. The source-replay baseline
  /// resets every operator this way and recomputes from the sources'
  /// buffered history.
  void ResetEmpty(core::OriginId fresh_origin);

  const core::InputPositions& positions() const { return positions_; }
  int64_t out_clock() const { return out_clock_; }
  core::BufferState& buffer_state() { return buffer_; }

  // --------------------------------------------------------------- replay

  /// replay-buffer-state(u, o): re-sends buffered tuples for downstream
  /// logical operator `down` with timestamp > from_ts, routed by the current
  /// routing state but restricted to `targets`. If fence_id != 0, a fence
  /// follows the replayed tuples to each target on the same FIFO link.
  void ReplayBuffer(OperatorId down, int64_t from_ts,
                    const std::vector<InstanceId>& targets, uint64_t fence_id);

  /// Downstream instance `down_instance` checkpointed through `position` of
  /// this instance's origin; trim the output buffer when all current
  /// partitions of `down_op` have acknowledged (Algorithm 1 line 4).
  void OnTrimAck(OperatorId down_op, InstanceId down_instance,
                 int64_t position);

  /// Drops ack entries for instances no longer routed (after scale out /
  /// recovery replaced partitions).
  void PruneAcks(OperatorId down_op);

  /// Seeds the ack position of a freshly restored downstream instance from
  /// its restored checkpoint, so trimming can make progress.
  void SeedAck(OperatorId down_op, InstanceId down_instance, int64_t position);

  // -------------------------------------------------------------- metrics

  /// Busy time (µs of wall simulated time this VM spent serving jobs) since
  /// the last call; the bottleneck detector's CPU utilisation signal.
  /// Catch-up work on replayed tuples is excluded: it is transient by
  /// construction (bounded by one checkpoint interval of backlog), and
  /// treating it as load would make every fresh partition look like a
  /// bottleneck and trigger split storms.
  double TakeBusyMicros();

  size_t queued_tuples() const { return queued_tuples_; }
  uint64_t processed_tuples() const { return processed_tuples_; }

  /// Per-tuple cost of this instance on the reference core, µs.
  double CostMicrosPerTuple() const;

 private:
  friend class Cluster;

  struct Job {
    enum class Kind { kBatch, kCheckpoint, kTimer };
    Kind kind = Kind::kBatch;
    core::TupleBatch batch;                       // kBatch
    std::unique_ptr<core::StateCheckpoint> ckpt;  // kCheckpoint (snapshot)
    std::vector<std::pair<int, core::Tuple>> timer_emissions;  // kTimer
    double cost_us = 0;
  };

  class EmitCollector;

  void EnqueueJob(Job job);
  void TryStartJob();
  void FinishJob(Job* job);
  void ProcessBatch(core::TupleBatch* batch);
  void ConsumeAtSink(core::TupleBatch* batch);
  void FlushEmissions(std::vector<std::pair<int, core::Tuple>>* emissions,
                      const std::vector<bool>* suppressed);
  void ScheduleCheckpointTimer();
  void ScheduleWindowTimer();
  void ScheduleSourceTick();
  void ScheduleAgeTrim();
  void MaybeTrim(OperatorId down_op);
  bool BuffersTo(OperatorId down_op) const;

  Cluster* cluster_;
  Params p_;
  core::OriginId origin_;

  std::unique_ptr<core::Operator> operator_;
  std::unique_ptr<core::SourceGenerator> source_;
  std::unique_ptr<core::SinkConsumer> sink_;

  bool alive_ = true;
  bool stopped_ = false;
  bool checkpoints_suspended_ = false;
  SimTime died_at_ = 0;
  bool paused_ = false;
  bool busy_ = false;

  std::deque<Job> queue_;
  size_t queued_tuples_ = 0;

  core::InputPositions positions_;
  core::InputPositions suppress_until_;
  bool suppressing_ = false;

  core::BufferState buffer_;
  // Per downstream logical op: last checkpoint-acknowledged position of each
  // current downstream instance (this instance's origin timestamps).
  std::map<OperatorId, std::map<InstanceId, int64_t>> acks_;
  // Per downstream logical op: highest timestamp sent to each downstream
  // instance. A destination only constrains buffer trimming while it has
  // outstanding (sent > acked) tuples; destinations that never receive
  // tuples from this partition (key-preserving operators route each
  // upstream partition to few downstream partitions) must not block trims.
  std::map<OperatorId, std::map<InstanceId, int64_t>> sent_;

  int64_t out_clock_ = 0;
  uint64_t ckpt_seq_ = 0;
  // Highest buffered timestamp shipped per downstream op (delta checkpoint
  // bookkeeping).
  std::map<OperatorId, int64_t> shipped_buffer_back_;
  double busy_accum_us_ = 0;
  uint64_t processed_tuples_ = 0;
  SimTime owed_source_time_ = 0;  // generation backlog while paused
  std::vector<OperatorId> downstream_ops_;  // port order (graph edge order)
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_OPERATOR_INSTANCE_H_
