#ifndef SEEP_RUNTIME_OPERATOR_INSTANCE_H_
#define SEEP_RUNTIME_OPERATOR_INSTANCE_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/sync.h"
#include "common/time.h"
#include "core/operator.h"
#include "core/query_graph.h"
#include "core/state.h"
#include "core/tuple.h"
#include "runtime/checkpoint_plane.h"
#include "runtime/emission_router.h"
#include "runtime/job_scheduler.h"
#include "runtime/trim_tracker.h"

namespace seep::runtime {

class Cluster;

/// A physical partitioned operator (the paper's o^i) running on one
/// simulated VM: the lifecycle glue around four composed components.
/// JobScheduler models the single-server FIFO queue (batches, checkpoints
/// and window timers as jobs with CPU-derived service times); CheckpointPlane
/// owns the full/delta checkpoint schedule and lineage; TrimTracker owns the
/// ack/sent bookkeeping that drives output-buffer trimming; EmissionRouter
/// stamps, buffers, routes and ships emissions. This class keeps identity,
/// liveness, input positions and the replay buffer, and wires the data path
/// through the components; coordination policy lives in control/.
class OperatorInstance : private JobScheduler::Host {
 public:
  struct Params {
    InstanceId id = kInvalidInstance;
    OperatorId op = 0;
    const core::OperatorSpec* spec = nullptr;
    VmId vm = kInvalidVm;
    double vm_capacity = 1.0;
    core::KeyRange range = core::KeyRange::Full();
    core::OriginId origin = core::kInvalidOrigin;
    uint32_t source_index = 0;  // which of N parallel sources this is
    uint32_t source_count = 1;
  };

  OperatorInstance(Cluster* cluster, Params params);
  ~OperatorInstance() override;

  OperatorInstance(const OperatorInstance&) = delete;
  OperatorInstance& operator=(const OperatorInstance&) = delete;

  InstanceId id() const { return p_.id; }
  OperatorId op() const { return p_.op; }
  VmId vm() const { return p_.vm; }
  const core::OperatorSpec& spec() const { return *p_.spec; }
  const core::KeyRange& key_range() const { return p_.range; }
  core::OriginId origin() const { return origin_; }
  bool alive() const override { return alive_; }
  bool stopped() const override { return stopped_; }
  bool idle() const { return scheduler_.idle(); }

  /// The operator implementation, or null for sources/sinks. Components use
  /// this for state capture; it is not a way around the instance's API.
  core::Operator* operator_impl() const { return operator_.get(); }

  // ------------------------------------------------------------- lifecycle

  /// Begins source ticks, window timers and the checkpoint schedule.
  void Start();

  /// Graceful permanent stop (scale-out path, Algorithm 3 line 8): finishes
  /// nothing further; queued batches are discarded (upstream replays them).
  void Stop();

  /// Crash-stop (VM failure): all volatile state is lost.
  void MarkDead(SimTime now);

  /// Time of the crash-stop, or 0 if alive.
  SimTime died_at() const { return died_at_; }

  /// Temporarily halts job starts (Algorithm 3 lines 10/14 stop/start of
  /// upstream operators during routing and buffer repartitioning).
  void Pause();
  void Resume();

  /// Freezes the checkpoint schedule while the scale-out coordinator is
  /// partitioning this instance's backed-up state (see CheckpointPlane).
  void SuspendCheckpoints() SEEP_RUN_ON(sync::DriverThread) {
    checkpoints_.Suspend();
  }
  void ResumeCheckpoints() SEEP_RUN_ON(sync::DriverThread) {
    checkpoints_.Resume();
  }
  bool checkpoints_suspended() const SEEP_RUN_ON(sync::DriverThread) {
    return checkpoints_.suspended();
  }

  // ------------------------------------------------------------- data path

  /// Delivery of a batch from the network (or a fence).
  void OnBatch(core::TupleBatch batch);

  /// Adds a job to this instance's FIFO queue (the checkpoint plane
  /// enqueues checkpoint jobs through this).
  void EnqueueJob(JobScheduler::Job job);

  /// The transport reported outbound queue pressure on this instance's
  /// sends: throttle the job scheduler briefly so the sender stops
  /// outrunning its links (TCP backend; the sim backend never signals).
  void OnSendPressure();

  // ------------------------------------------------------ state management

  /// checkpoint-state(o) → (θo, τo, βo): synchronous snapshot, used by the
  /// checkpoint job and by quiesced scale-in.
  core::StateCheckpoint MakeCheckpoint() SEEP_RUN_ON(sync::DriverThread) {
    return checkpoints_.MakeCheckpoint();
  }

  /// Incremental variant: only the state entries changed since the previous
  /// checkpoint, new buffer tuples, and trim positions for the mirrored
  /// buffer. Requires the operator's SupportsIncrementalState().
  core::StateCheckpoint MakeDeltaCheckpoint()
      SEEP_RUN_ON(sync::DriverThread) {
    return checkpoints_.MakeDeltaCheckpoint();
  }

  /// Whether the next periodic checkpoint may be shipped as a delta.
  bool CanCheckpointIncrementally() const SEEP_RUN_ON(sync::DriverThread) {
    return checkpoints_.CanCheckpointIncrementally();
  }

  /// restore-state(o, θ, τ, β): installs a checkpoint. With `inherit_origin`
  /// the instance adopts the checkpoint's origin and output clock so that
  /// downstream duplicate filtering recognises its re-emissions (serial
  /// recovery); otherwise it keeps its own fresh origin (scale-out
  /// partitions).
  void Restore(const core::StateCheckpoint& checkpoint, bool inherit_origin);

  /// Catch-up suppression: while re-processing replayed tuples with
  /// timestamps at or below these per-origin positions, state is updated but
  /// emissions are dropped — the stopped parent already delivered the
  /// corresponding outputs downstream.
  void SetSuppressUntil(core::InputPositions positions) {
    router_.SetSuppressUntil(std::move(positions));
  }

  /// Merges another partition's processing state (quiesced scale-in).
  void MergeState(const core::ProcessingState& state);

  /// Clears processing state, positions, buffers, the job queue and the
  /// output clock, and adopts a fresh origin. The source-replay baseline
  /// resets every operator this way and recomputes from the sources'
  /// buffered history.
  void ResetEmpty(core::OriginId fresh_origin);

  const core::InputPositions& positions() const { return positions_; }
  int64_t out_clock() const { return router_.out_clock(); }
  core::BufferState& buffer_state() { return buffer_; }
  const core::BufferState& buffer_state() const { return buffer_; }

  // --------------------------------------------------------------- replay

  /// replay-buffer-state(u, o): re-sends buffered tuples for downstream
  /// logical operator `down` with timestamp > from_ts, routed by the current
  /// routing state but restricted to `targets`. If fence_id != 0, a fence
  /// follows the replayed tuples to each target on the same FIFO link.
  void ReplayBuffer(OperatorId down, int64_t from_ts,
                    const std::vector<InstanceId>& targets, uint64_t fence_id);

  /// Downstream instance `down_instance` checkpointed through `position` of
  /// this instance's origin; trim the output buffer when all current
  /// partitions of `down_op` have acknowledged (Algorithm 1 line 4).
  void OnTrimAck(OperatorId down_op, InstanceId down_instance,
                 int64_t position) SEEP_RUN_ON(sync::DriverThread) {
    trims_.OnTrimAck(down_op, down_instance, position);
  }

  /// Drops ack entries for instances no longer routed (after scale out /
  /// recovery replaced partitions).
  void PruneAcks(OperatorId down_op) SEEP_RUN_ON(sync::DriverThread) {
    trims_.PruneAcks(down_op);
  }

  /// Seeds the ack position of a freshly restored downstream instance from
  /// its restored checkpoint, so trimming can make progress.
  void SeedAck(OperatorId down_op, InstanceId down_instance,
               int64_t position) SEEP_RUN_ON(sync::DriverThread) {
    trims_.SeedAck(down_op, down_instance, position);
  }

  // -------------------------------------------------------------- metrics

  /// Busy time since the last call (see JobScheduler::TakeBusyMicros).
  double TakeBusyMicros() { return scheduler_.TakeBusyMicros(); }

  size_t queued_tuples() const { return scheduler_.queued_tuples(); }
  uint64_t processed_tuples() const { return processed_tuples_; }

  /// Per-tuple cost of this instance on the reference core, µs.
  double CostMicrosPerTuple() const;

 private:
  class EmitCollector;

  // JobScheduler::Host: job cost model / snapshot at start, effects at end.
  void PrepareJob(JobScheduler::Job* job) override;
  void FinishJob(JobScheduler::Job* job) override;

  void ProcessBatch(core::TupleBatch* batch);
  void ConsumeAtSink(core::TupleBatch* batch);
  void ScheduleWindowTimer();
  void ScheduleSourceTick();
  void ScheduleAgeTrim();

  Cluster* cluster_;
  Params p_;
  core::OriginId origin_;

  std::unique_ptr<core::Operator> operator_;
  std::unique_ptr<core::SourceGenerator> source_;
  std::unique_ptr<core::SinkConsumer> sink_;

  bool alive_ = true;
  bool stopped_ = false;
  SimTime died_at_ = 0;

  core::InputPositions positions_;
  core::BufferState buffer_;

  uint64_t processed_tuples_ = 0;
  SimTime owed_source_time_ = 0;  // generation backlog while paused

  TrimTracker trims_;
  EmissionRouter router_;
  CheckpointPlane checkpoints_;
  JobScheduler scheduler_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_OPERATOR_INSTANCE_H_
