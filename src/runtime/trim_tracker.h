#ifndef SEEP_RUNTIME_TRIM_TRACKER_H_
#define SEEP_RUNTIME_TRIM_TRACKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/sync.h"
#include "core/state.h"
#include "verify/invariant_auditor.h"

namespace seep::runtime {

/// Output-buffer trim bookkeeping of one operator instance (Algorithm 1
/// line 4): which downstream instances have acknowledged checkpoints through
/// which positions, and which have outstanding (sent but not yet
/// checkpoint-covered) tuples. Owns nothing but the two position tables; the
/// buffer it trims and the membership it consults are injected, so the trim
/// semantics are unit-testable without a cluster.
class TrimTracker {
 public:
  /// Returns the *current* partitions of a downstream logical operator
  /// (including stopped-but-not-finalised instances, whose frozen acks must
  /// keep constraining trims during the retirement handover window).
  using MembersFn = std::function<std::vector<InstanceId>(OperatorId)>;

  /// `audit` (may be null) observes every ack/sent/trim event and
  /// independently re-derives the admissible trim bound; `self` identifies
  /// this instance in audit reports.
  TrimTracker(core::BufferState* buffer, MembersFn current_members,
              verify::InvariantAuditor* audit = nullptr,
              InstanceId self = kInvalidInstance)
      : buffer_(buffer),
        current_members_(std::move(current_members)),
        audit_(audit),
        self_(self) {}

  /// Records the highest timestamp sent to a downstream instance. A
  /// destination only constrains buffer trimming while it has outstanding
  /// (sent > acked) tuples; destinations that never receive tuples from this
  /// partition (key-preserving operators route each upstream partition to
  /// few downstream partitions) must not block trims.
  void NoteSent(OperatorId down_op, InstanceId dest, int64_t timestamp)
      SEEP_RUN_ON(sync::DriverThread);

  /// Downstream instance `down_instance` checkpointed through `position`;
  /// trim the output buffer when all current partitions of `down_op` have
  /// acknowledged (Algorithm 1 line 4).
  void OnTrimAck(OperatorId down_op, InstanceId down_instance,
                 int64_t position) SEEP_RUN_ON(sync::DriverThread);

  /// Drops ack entries for instances no longer routed (after scale out /
  /// recovery replaced partitions).
  void PruneAcks(OperatorId down_op) SEEP_RUN_ON(sync::DriverThread);

  /// Seeds the ack position of a freshly restored downstream instance from
  /// its restored checkpoint, so trimming can make progress.
  void SeedAck(OperatorId down_op, InstanceId down_instance,
               int64_t position) SEEP_RUN_ON(sync::DriverThread);

  /// Trims the buffer for `down_op` to the furthest position every current
  /// partition with outstanding tuples has acknowledged.
  void MaybeTrim(OperatorId down_op) SEEP_RUN_ON(sync::DriverThread);

 private:
  core::BufferState* buffer_;
  MembersFn current_members_;
  verify::InvariantAuditor* audit_;
  InstanceId self_;
  // Per downstream logical op: last checkpoint-acknowledged position of each
  // current downstream instance (this instance's origin timestamps).
  std::map<OperatorId, std::map<InstanceId, int64_t>> acks_
      SEEP_GUARDED_BY(sync::DriverThread);
  // Per downstream logical op: highest timestamp sent to each downstream
  // instance.
  std::map<OperatorId, std::map<InstanceId, int64_t>> sent_
      SEEP_GUARDED_BY(sync::DriverThread);
  // Per downstream logical op: high-water trim position. The admissible
  // bound can legitimately regress after a membership change (a partition
  // with nothing outstanding stops constraining it, then a freshly seeded
  // partition re-lowers it); re-trimming below the high-water mark is a
  // no-op on the buffer, so such bounds are suppressed rather than emitted.
  std::map<OperatorId, int64_t> trimmed_
      SEEP_GUARDED_BY(sync::DriverThread);
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_TRIM_TRACKER_H_
