#include "runtime/fence_registry.h"

#include <utility>

#include "runtime/cluster.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {

uint64_t FenceRegistry::Register(int expected, std::set<InstanceId> targets,
                                 std::function<void(SimTime)> on_complete) {
  const uint64_t id = ++counter_;
  fences_.emplace(
      id, Fence{std::move(targets), expected, std::move(on_complete)});
  return id;
}

void FenceRegistry::Handle(uint64_t fence_id, OperatorInstance* at) {
  auto it = fences_.find(fence_id);
  if (it == fences_.end()) return;
  Fence& fence = it->second;
  if (!fence.targets.contains(at->id())) {
    // Not the destination: forward downstream so fences traverse
    // intermediate operators (source-replay recovery).
    verify::InvariantAuditor* audit = cluster_->audit();
    for (OperatorId down : cluster_->graph()->Downstream(at->op())) {
      for (InstanceId dest : cluster_->membership()->LiveInstancesOf(down)) {
        core::TupleBatch fwd;
        fwd.fence_id = fence_id;
        fwd.replay = true;
        // The forwarded fence inherits the ordering obligation of this hop:
        // it must trail any replayed tuples `at` already sent to `dest`.
        if (audit) audit->OnFenceSent(fence_id, at->id(), dest);
        // The fence must traverse now to preserve its ordering
        // obligation; there is no scheduler loop here to throttle.
        // seep-ok: unchecked-status -- fence forwarding cannot defer
        (void)cluster_->transport()->SendBatch(at, dest, std::move(fwd));
      }
    }
    return;
  }
  if (--fence.remaining > 0) return;
  auto on_complete = std::move(fence.on_complete);
  fences_.erase(it);
  if (on_complete) on_complete(cluster_->Now());
}

}  // namespace seep::runtime
