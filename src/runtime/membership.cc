#include "runtime/membership.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {

Membership::Membership(Cluster* cluster) : cluster_(cluster) {}

Membership::~Membership() = default;

[[nodiscard]]
Result<InstanceId> Membership::DeployInstance(OperatorId op, VmId vm,
                                              core::KeyRange range,
                                              uint32_t source_index,
                                              uint32_t source_count) {
  const core::OperatorSpec* spec = cluster_->graph()->Get(op);
  if (spec == nullptr) return Status::NotFound("unknown operator");
  const cloud::Vm* vm_info = cluster_->provider()->GetVm(vm);
  if (vm_info == nullptr) return Status::NotFound("unknown VM");
  if (vm_info->state != cloud::VmState::kInUse &&
      vm_info->state != cloud::VmState::kPooled) {
    return Status::FailedPrecondition("VM not usable");
  }
  if (vm_to_instance_.contains(vm)) {
    return Status::AlreadyExists("VM already hosts an instance");
  }

  OperatorInstance::Params params;
  params.id = next_instance_id_++;
  params.op = op;
  params.spec = spec;
  params.vm = vm;
  params.vm_capacity = vm_info->capacity;
  params.range = range;
  params.origin = cluster_->NewOrigin();
  params.source_index = source_index;
  params.source_count = source_count;

  auto instance = std::make_unique<OperatorInstance>(cluster_, params);
  const InstanceId id = params.id;
  instances_.emplace(id, std::move(instance));
  partitions_[op].push_back(id);
  vm_to_instance_[vm] = id;
  cluster_->transport()->AttachVm(vm);
  RecordVmsInUse();
  return id;
}

OperatorInstance* Membership::GetInstance(InstanceId id) {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.get();
}

const OperatorInstance* Membership::GetInstance(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.get();
}

std::vector<InstanceId> Membership::InstancesOf(OperatorId op) const {
  auto it = partitions_.find(op);
  return it == partitions_.end() ? std::vector<InstanceId>{} : it->second;
}

std::vector<InstanceId> Membership::LiveInstancesOf(OperatorId op) const {
  std::vector<InstanceId> out;
  for (InstanceId id : InstancesOf(op)) {
    const OperatorInstance* inst = GetInstance(id);
    if (inst != nullptr && inst->alive() && !inst->stopped()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<InstanceId> Membership::UpstreamInstancesOf(OperatorId op) const {
  std::vector<InstanceId> out;
  for (OperatorId up : cluster_->graph()->Upstream(op)) {
    for (InstanceId id : LiveInstancesOf(up)) out.push_back(id);
  }
  return out;
}

void Membership::RetireInstance(InstanceId id, bool release_vm) {
  StopInstance(id, release_vm);
  FinalizeRetire(id);
}

void Membership::StopInstance(InstanceId id, bool release_vm) {
  OperatorInstance* inst = GetInstance(id);
  if (inst == nullptr) return;
  inst->Stop();
  if (release_vm && inst->vm() != kInvalidVm) {
    cluster_->transport()->DetachVm(inst->vm());
    vm_to_instance_.erase(inst->vm());
    // Retire races VM failure; anything beyond "already terminated"
    // is a leaked-VM bookkeeping bug and aborts inside the helper.
    cluster_->provider()->ReleaseVmCompensating(inst->vm());
  }
  RecordVmsInUse();
}

void Membership::FinalizeRetire(InstanceId id) {
  OperatorInstance* inst = GetInstance(id);
  if (inst == nullptr) return;
  auto& members = partitions_[inst->op()];
  members.erase(std::remove(members.begin(), members.end(), id),
                members.end());
  // The choke point also drops any partial chunk streams still reassembling
  // for the retired instance and tombstones the durable log.
  cluster_->DeleteBackup(id);
  RecordVmsInUse();
}

[[nodiscard]] Status Membership::KillVm(VmId vm) {
  auto it = vm_to_instance_.find(vm);
  SEEP_RETURN_IF_ERROR(cluster_->provider()->KillVm(vm));
  cluster_->transport()->DetachVm(vm);
  if (it != vm_to_instance_.end()) {
    OperatorInstance* inst = GetInstance(it->second);
    SEEP_CHECK(inst != nullptr);
    inst->MarkDead(cluster_->Now());
    if (auto* audit = cluster_->audit()) {
      audit->OnInstanceDead(inst->id());
    }
    // Checkpoints stored on this VM die with it (paper §4.3's backup(o)
    // failure case).
    cluster_->backups()->DropHeldBy(inst->id());
    SEEP_LOG(kInfo, cluster_->Now())
        << "VM " << vm << " failed; instance " << inst->id() << " of op '"
        << inst->spec().name << "' lost";
  }
  RecordVmsInUse();
  return Status::OK();
}

[[nodiscard]] Status Membership::KillOperator(OperatorId op) {
  const std::vector<InstanceId> live = LiveInstancesOf(op);
  if (live.empty()) return Status::NotFound("no live instance");
  const OperatorInstance* inst = GetInstance(live.front());
  return KillVm(inst->vm());
}

void Membership::RecordVmsInUse() {
  size_t in_use = 0;
  for (const auto& [id, inst] : instances_) {
    if (inst->alive() && !inst->stopped()) ++in_use;
  }
  cluster_->metrics()->vms_in_use.Add(cluster_->Now(),
                                      static_cast<double>(in_use));
}

}  // namespace seep::runtime
