#ifndef SEEP_RUNTIME_TCP_TRANSPORT_H_
#define SEEP_RUNTIME_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>

#include "common/time.h"
#include "runtime/transport.h"

namespace seep::net {
class LocalCluster;
}  // namespace seep::net

namespace seep::runtime {

/// Knobs for the TCP transport backend.
struct TcpTransportConfig {
  /// Sim interval between inbox pumps: how often deliveries that arrived on
  /// worker threads re-enter the (single-threaded) simulated runtime.
  SimTime pump_interval = MillisToSim(1);
  /// Soft watermark on a sending worker's queued outbound bytes; above it
  /// SendBatch reports kPressured and the sender throttles.
  size_t queue_pressure_bytes = 4u << 20;
  /// Hard cap: frames beyond it are dropped (replay recovers them, exactly
  /// as after a crash).
  size_t queue_max_bytes = 64u << 20;
  /// Ceiling a receiver enforces on a frame's declared payload length.
  uint64_t max_frame_bytes = 64ull << 20;
  /// Bulk state shipping sends min(logical size, this cap) of real filler
  /// bytes; the logical size still travels in the message.
  uint64_t ship_payload_cap = 1u << 20;
  /// Longest wall-clock wait per pump for in-flight messages to land before
  /// sim time advances past them (bounds sim-time skew without letting a
  /// stalled link wedge the simulation).
  int64_t pump_wait_micros = 200;
};

/// Transport over real loopback TCP: per-VM worker threads (net::Worker)
/// ship length-prefixed crc32c frames between epoll event loops, while the
/// logical runtime stays single-threaded on the simulation driver thread.
/// Worker threads never touch runtime state — inbound messages land in a
/// thread-safe inbox that a recurring sim "pump" event drains and dispatches
/// through exactly the same handlers SimTransport uses (OnBatch,
/// DeliverCheckpointToHolder). Per-link FIFO order is preserved because
/// each VM pair shares one TCP connection; only arrival *times* differ from
/// the sim backend, and the protocol's correctness is timing-independent.
class TcpTransport : public Transport {
 public:
  TcpTransport(Cluster* cluster, TcpTransportConfig config);
  ~TcpTransport() override;

  void AttachVm(VmId vm) override;
  void DetachVm(VmId vm) override;
  SendPressure SendBatch(OperatorInstance* from, InstanceId to,
                         core::TupleBatch batch) override;
  void BackupCheckpoint(OperatorInstance* owner,
                        core::StateCheckpoint ckpt) override;
  InstanceId BackupHolderFor(const OperatorInstance* owner) const override;
  /// Encodes the checkpoint wire payload straight from the live buffers at
  /// capture time — the synchronous path's buffer tuples go from the live
  /// buffer to wire bytes in one pass, never through an intermediate
  /// BufferState copy.
  CheckpointShipment PrepareBackup(OperatorInstance* owner,
                                   CheckpointCapture* capture) override;
  void ShipBackup(OperatorInstance* owner, CheckpointShipment ship) override;
  void ShipCheckpointFrame(OperatorInstance* owner,
                           SerializedCkptFrame frame) override;
  void ShipState(VmId from, VmId to, uint64_t size_bytes,
                 std::function<void()> on_delivery) override;

  /// Times any worker observed a peer link die (failure tests assert the
  /// upstream actually saw the disconnection).
  uint64_t disconnects_observed() const;
  /// Messages delivered over TCP into the runtime, and frames dropped by
  /// the net layer (overflow or link death).
  uint64_t messages_delivered() const;
  uint64_t frames_dropped() const;

  /// The loopback harness carrying this transport's traffic.
  net::LocalCluster* net_cluster();

 private:
  struct Impl;

  void Pump();
  void SchedulePump();

  /// A wire body that fails to decode after passing the net layer's
  /// crc32c is protocol divergence: drop the message, but loudly —
  /// count it and log what/why so the loss is attributable.
  void NoteWireDecodeFailure(const char* what, const Status& status);

  Cluster* cluster_;
  TcpTransportConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_TCP_TRANSPORT_H_
