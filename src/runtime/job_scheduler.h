#ifndef SEEP_RUNTIME_JOB_SCHEDULER_H_
#define SEEP_RUNTIME_JOB_SCHEDULER_H_

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "core/state.h"
#include "core/tuple.h"
#include "runtime/ckpt_pipeline.h"
#include "sim/simulation.h"

namespace seep::runtime {

/// The single-server FIFO queue of one operator instance: tuple batches,
/// checkpoints and window timers are jobs whose service time is derived from
/// per-tuple/per-byte CPU costs divided by the VM's capacity. The scheduler
/// owns queueing, pause/resume and busy-time accounting; what a job *does*
/// (cost model, processing, emission) is delegated to the Host.
class JobScheduler {
 public:
  struct Job {
    enum class Kind { kBatch, kCheckpoint, kTimer };
    Kind kind = Kind::kBatch;
    core::TupleBatch batch;                    // kBatch
    std::unique_ptr<CheckpointWork> ckpt_work;  // kCheckpoint (stage 1)
    std::vector<std::pair<int, core::Tuple>> timer_emissions;  // kTimer
    double cost_us = 0;
  };

  /// The operator instance hosting this scheduler. PrepareJob runs when a
  /// job reaches the head of the queue (checkpoints snapshot state here —
  /// the paper's get-processing-state "locks all internal operator data
  /// structures") and must set `cost_us`; FinishJob runs when its service
  /// time has elapsed.
  class Host {
   public:
    virtual ~Host() = default;
    virtual void PrepareJob(Job* job) = 0;
    virtual void FinishJob(Job* job) = 0;
    virtual bool alive() const = 0;
    virtual bool stopped() const = 0;
  };

  JobScheduler(sim::Simulation* sim, Host* host, double vm_capacity)
      : sim_(sim), host_(host), vm_capacity_(vm_capacity) {}

  /// Enqueues a job and starts it if the server is free. Checkpoints jump
  /// the queue: the paper's checkpointing is asynchronous, so a backlog of
  /// tuples must not delay the checkpoint — a late checkpoint delays trim
  /// acknowledgements, upstream buffers balloon, and the next recovery or
  /// scale-out replays far more than one interval's worth.
  void Enqueue(Job job);

  /// Temporarily halts job starts (the in-flight job still completes).
  void Pause() { paused_ = true; }
  void Resume();

  /// Backpressure throttle: halts job starts for `duration`, then resumes
  /// automatically. Independent of Pause/Resume (which coordinators own);
  /// re-throttling while already throttled is a no-op, so a burst of
  /// pressured sends costs one pause, not a pile-up of them.
  void ThrottleFor(SimTime duration);
  bool throttled() const { return throttled_; }

  /// Discards all queued jobs (graceful stop / crash-stop / reset).
  void Clear();

  bool idle() const { return !busy_ && queue_.empty(); }
  bool paused() const { return paused_; }
  size_t queued_tuples() const { return queued_tuples_; }

  /// Busy time (µs of wall simulated time this VM spent serving jobs) since
  /// the last call; the bottleneck detector's CPU utilisation signal.
  /// Catch-up work on replayed tuples is excluded: it is transient by
  /// construction (bounded by one checkpoint interval of backlog), and
  /// treating it as load would make every fresh partition look like a
  /// bottleneck and trigger split storms.
  double TakeBusyMicros();

 private:
  void TryStart();

  sim::Simulation* sim_;
  Host* host_;
  double vm_capacity_;

  bool busy_ = false;
  bool paused_ = false;
  bool throttled_ = false;
  std::deque<Job> queue_;
  size_t queued_tuples_ = 0;
  double busy_accum_us_ = 0;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_JOB_SCHEDULER_H_
