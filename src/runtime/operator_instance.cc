#include "runtime/operator_instance.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/sync.h"
#include "runtime/cluster.h"

namespace seep::runtime {

// Gathers the emissions of one Process/OnTimer invocation together with the
// per-emission suppression flag (catch-up suppression applies per input
// tuple, and one input can produce several outputs).
class OperatorInstance::EmitCollector : public core::Collector {
 public:
  void EmitTo(int port, core::Tuple tuple) override {
    emissions.emplace_back(port, std::move(tuple));
    suppressed.push_back(suppress);
  }

  std::vector<std::pair<int, core::Tuple>> emissions;
  std::vector<bool> suppressed;
  bool suppress = false;
};

OperatorInstance::OperatorInstance(Cluster* cluster, Params params)
    : cluster_(cluster),
      p_(params),
      origin_(params.origin),
      trims_(
          &buffer_,
          [cluster](OperatorId op) {
            return cluster->membership()->InstancesOf(op);
          },
          cluster->audit(), params.id),
      router_(cluster, this, &trims_),
      checkpoints_(cluster, this),
      scheduler_(cluster->simulation(), this, params.vm_capacity) {
  SEEP_CHECK(p_.spec != nullptr);
  switch (p_.spec->kind) {
    case core::VertexKind::kSource:
      source_ = p_.spec->source_factory(p_.source_index, p_.source_count);
      break;
    case core::VertexKind::kOperator:
      operator_ = p_.spec->factory();
      break;
    case core::VertexKind::kSink:
      sink_ = p_.spec->sink_factory();
      break;
  }
}

OperatorInstance::~OperatorInstance() = default;

double OperatorInstance::CostMicrosPerTuple() const {
  if (operator_) return operator_->CostMicrosPerTuple();
  return p_.spec->endpoint_cost_us;
}

// ------------------------------------------------------------------ lifecycle

void OperatorInstance::Start() {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  if (source_) ScheduleSourceTick();
  if (operator_ && operator_->TimerInterval() > 0) ScheduleWindowTimer();

  const FaultToleranceMode mode = cluster_->config().ft_mode;
  const bool is_inner = p_.spec->kind == core::VertexKind::kOperator;
  if (mode == FaultToleranceMode::kStateManagement && is_inner) {
    checkpoints_.StartSchedule();
  }
  // Age-based buffer trimming replaces checkpoint-driven trimming in the
  // baselines (and bounds buffers when checkpointing is off entirely).
  if (mode != FaultToleranceMode::kStateManagement) ScheduleAgeTrim();
}

void OperatorInstance::Stop() {
  stopped_ = true;
  scheduler_.Clear();
}

void OperatorInstance::MarkDead(SimTime now) {
  alive_ = false;
  died_at_ = now;
  scheduler_.Clear();
}

void OperatorInstance::Pause() { scheduler_.Pause(); }

void OperatorInstance::Resume() { scheduler_.Resume(); }

// -------------------------------------------------------------------- arrival

void OperatorInstance::OnBatch(core::TupleBatch batch) {
  if (!alive_ || stopped_) return;
  const size_t n = batch.tuples.size();
  if (batch.fence_id == 0 && !batch.replay &&
      scheduler_.queued_tuples() + n > cluster_->config().max_queue_tuples) {
    cluster_->metrics()->dropped_tuples.Add(cluster_->Now(), n);
    return;
  }
  JobScheduler::Job job;
  job.kind = JobScheduler::Job::Kind::kBatch;
  job.batch = std::move(batch);
  EnqueueJob(std::move(job));
}

void OperatorInstance::EnqueueJob(JobScheduler::Job job) {
  scheduler_.Enqueue(std::move(job));
}

void OperatorInstance::OnSendPressure() {
  scheduler_.ThrottleFor(cluster_->config().backpressure_pause);
}

// ------------------------------------------------------------------ job hooks

void OperatorInstance::PrepareJob(JobScheduler::Job* job) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  using Kind = JobScheduler::Job::Kind;
  switch (job->kind) {
    case Kind::kBatch:
      job->cost_us = static_cast<double>(job->batch.tuples.size()) *
                     CostMicrosPerTuple();
      break;
    case Kind::kCheckpoint: {
      const ClusterConfig& config = cluster_->config();
      auto work = std::make_unique<CheckpointWork>();
      work->async = config.async_checkpoints;
      work->capture =
          checkpoints_.Capture(checkpoints_.CanCheckpointIncrementally());
      if (work->capture.ckpt.is_delta) {
        ++cluster_->metrics()->delta_checkpoints_taken;
      }
      const double kib =
          static_cast<double>(work->capture.ckpt.processing.ByteSize() + 64) /
          1024.0;
      if (work->async) {
        // Asynchronous pipeline: the operator pauses only for the capture;
        // serialization CPU is charged on the background stage instead.
        job->cost_us = kib * config.capture_cost_us_per_kb;
      } else {
        // Synchronous path: the backup is fully prepared at capture time
        // (before any trim moves the live buffers) and serialisation CPU is
        // charged for the processing state only — buffer tuples are
        // retained in wire format and need no re-encoding (their bytes
        // still cost network transfer). This is what makes frequent
        // checkpoints of large state expensive (paper Figs. 14/15).
        work->shipment =
            cluster_->transport()->PrepareBackup(this, &work->capture);
        job->cost_us = kib * config.serialize_cost_us_per_kb;
      }
      job->ckpt_work = std::move(work);
      break;
    }
    case Kind::kTimer: {
      EmitCollector collector;
      operator_->OnTimer(cluster_->Now(), &collector);
      job->timer_emissions = std::move(collector.emissions);
      job->cost_us = static_cast<double>(job->timer_emissions.size()) *
                     CostMicrosPerTuple();
      break;
    }
  }
}

void OperatorInstance::FinishJob(JobScheduler::Job* job) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  using Kind = JobScheduler::Job::Kind;
  switch (job->kind) {
    case Kind::kBatch:
      if (job->batch.fence_id != 0) {
        if (auto* audit = cluster_->audit()) {
          audit->OnFenceProcessed(job->batch.fence_id, job->batch.from, id());
        }
        cluster_->fences()->Handle(job->batch.fence_id, this);
        return;
      }
      if (auto* audit = cluster_->audit();
          audit != nullptr && job->batch.replay) {
        audit->OnReplayProcessed(job->batch.from, id(),
                                 job->batch.tuples.size());
      }
      if (sink_) {
        ConsumeAtSink(&job->batch);
      } else if (operator_) {
        ProcessBatch(&job->batch);
      }
      break;
    case Kind::kCheckpoint: {
      CheckpointWork* work = job->ckpt_work.get();
      cluster_->metrics()->ckpt_pause_ms.Add(job->cost_us / 1000.0);
      if (work->async) {
        checkpoints_.ShipAsync(std::move(work->capture));
      } else {
        cluster_->transport()->ShipBackup(this, std::move(work->shipment));
      }
      break;
    }
    case Kind::kTimer:
      router_.Flush(&job->timer_emissions, nullptr);
      break;
  }
}

// ----------------------------------------------------------------- processing

void OperatorInstance::ProcessBatch(core::TupleBatch* batch) {
  EmitCollector collector;
  MetricsRegistry* metrics = cluster_->metrics();
  for (core::Tuple& t : batch->tuples) {
    // Per-origin duplicate filtering: replayed tuples already reflected in
    // the restored state are discarded here (paper §3.2).
    const bool suppress = router_.ShouldSuppress(t.origin, t.timestamp);
    if (!positions_.Advance(t.origin, t.timestamp)) {
      ++metrics->duplicates_dropped;
      continue;
    }
    collector.suppress = suppress;
    operator_->Process(t, &collector);
    ++processed_tuples_;
  }
  ++metrics->tuples_processed;  // batch granularity is fine for this counter
  router_.Flush(&collector.emissions, &collector.suppressed);
}

void OperatorInstance::ConsumeAtSink(core::TupleBatch* batch) {
  MetricsRegistry* metrics = cluster_->metrics();
  const SimTime now = cluster_->Now();
  for (core::Tuple& t : batch->tuples) {
    if (!positions_.Advance(t.origin, t.timestamp)) {
      ++metrics->duplicates_dropped;
      continue;
    }
    if (auto* audit = cluster_->audit()) {
      audit->OnSinkDelivered(p_.op, t.origin, t.timestamp);
    }
    sink_->Consume(t, now);
    metrics->sink_tuples.Add(now, 1);
    if (t.latency_sample) {
      const double latency_ms = SimToMillis(now - t.event_time);
      metrics->latency_ms.Add(latency_ms);
      if (metrics->sink_tuples.total() % metrics->latency_series_stride ==
          0) {
        metrics->latency_series_ms.Add(now, latency_ms);
      }
    }
  }
}

// ----------------------------------------------------------- periodic events

void OperatorInstance::ScheduleWindowTimer() {
  cluster_->simulation()->Schedule(operator_->TimerInterval(), [this]() {
    if (!alive_ || stopped_) return;
    JobScheduler::Job job;
    job.kind = JobScheduler::Job::Kind::kTimer;
    EnqueueJob(std::move(job));
    ScheduleWindowTimer();
  });
}

void OperatorInstance::ScheduleSourceTick() {
  const SimTime dt = cluster_->config().source_tick;
  cluster_->simulation()->Schedule(dt, [this, dt]() {
    if (!alive_ || stopped_) return;
    ScheduleSourceTick();
    if (scheduler_.paused()) {
      // Generation is halted (source-replay recovery pauses sources), but
      // the offered load is backlogged — a real feeder reads from a log —
      // and is emitted as a catch-up burst on resume.
      owed_source_time_ += dt;
      return;
    }
    const SimTime effective_dt = dt + owed_source_time_;
    owed_source_time_ = 0;
    EmitCollector collector;
    source_->GenerateBatch(cluster_->Now(), effective_dt, &collector);
    // Finite source capacity: the paper's sources max out on serialisation
    // (~600k tuples/s); beyond that, generation saturates.
    const double cost = p_.spec->endpoint_cost_us;
    const size_t max_tuples = static_cast<size_t>(
        p_.vm_capacity * static_cast<double>(dt) / std::max(cost, 1e-9));
    if (collector.emissions.size() > max_tuples) {
      collector.emissions.resize(max_tuples);
      ++cluster_->metrics()->source_saturated_ticks;
    }
    cluster_->metrics()->source_tuples.Add(cluster_->Now(),
                                           collector.emissions.size());
    router_.Flush(&collector.emissions, nullptr);
  });
}

void OperatorInstance::ScheduleAgeTrim() {
  cluster_->simulation()->Schedule(kMicrosPerSecond, [this]() {
    if (!alive_ || stopped_) return;
    const SimTime cutoff = cluster_->Now() - cluster_->config().buffer_window;
    if (cutoff > 0) buffer_.TrimByEventTime(cutoff);
    ScheduleAgeTrim();
  });
}

// ----------------------------------------------------------- state management

void OperatorInstance::Restore(const core::StateCheckpoint& checkpoint,
                               bool inherit_origin) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  if (inherit_origin) {
    origin_ = checkpoint.origin;
    router_.set_out_clock(checkpoint.out_clock);
  }
  positions_ = checkpoint.positions;
  if (operator_) operator_->SetProcessingState(checkpoint.processing);
  buffer_ = checkpoint.buffer;
  checkpoints_.OnRestore(checkpoint);
}

void OperatorInstance::MergeState(const core::ProcessingState& state) {
  SEEP_CHECK(operator_ != nullptr);
  operator_->MergeProcessingState(state);
}

void OperatorInstance::ResetEmpty(core::OriginId fresh_origin) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  origin_ = fresh_origin;
  router_.Reset();
  positions_ = core::InputPositions();
  buffer_ = core::BufferState();
  scheduler_.Clear();
  checkpoints_.Reset();
  if (operator_) operator_->SetProcessingState(core::ProcessingState());
}

// --------------------------------------------------------------------- replay

void OperatorInstance::ReplayBuffer(OperatorId down, int64_t from_ts,
                                    const std::vector<InstanceId>& targets,
                                    uint64_t fence_id) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  std::map<InstanceId, core::TupleBatch> outgoing;
  const core::TupleBuffer* tuples = buffer_.Get(down);
  size_t replayed = 0;
  if (tuples != nullptr) {
    // Timestamp-sorted buffer: start straight at the first tuple past the
    // restore point instead of scanning the already-covered prefix.
    for (auto it = tuples->UpperBound(from_ts); it != tuples->end(); ++it) {
      const core::Tuple& t = *it;
      const InstanceId dest = cluster_->routing()->RouteKey(down, t.key);
      if (std::find(targets.begin(), targets.end(), dest) == targets.end()) {
        continue;
      }
      trims_.NoteSent(down, dest, t.timestamp);
      outgoing[dest].tuples.push_back(t);
      ++replayed;
    }
  }
  cluster_->metrics()->tuples_replayed += replayed;
  verify::InvariantAuditor* audit = cluster_->audit();
  for (auto& [dest, batch] : outgoing) {
    batch.replay = true;
    if (audit) audit->OnReplaySent(id(), dest, batch.tuples.size());
    // Replay runs to completion during recovery, outside the job
    // scheduler the pressure signal throttles; deferring here would
    // stall the fence below and with it the whole recovery.
    // seep-ok: unchecked-status -- recovery replay cannot throttle
    (void)cluster_->transport()->SendBatch(this, dest, std::move(batch));
  }
  if (fence_id != 0) {
    // The fence follows the replay batches on the same FIFO links, so its
    // arrival implies the replay has fully drained.
    for (InstanceId dest : targets) {
      core::TupleBatch fence;
      fence.fence_id = fence_id;
      fence.replay = true;
      if (audit) audit->OnFenceSent(fence_id, id(), dest);
      // seep-ok: unchecked-status -- fence trails replay on FIFO links
      (void)cluster_->transport()->SendBatch(this, dest, std::move(fence));
    }
  }
}

}  // namespace seep::runtime
