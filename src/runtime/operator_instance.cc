#include "runtime/operator_instance.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/state_ops.h"
#include "runtime/cluster.h"

namespace seep::runtime {

// Gathers the emissions of one Process/OnTimer invocation together with the
// per-emission suppression flag (catch-up suppression applies per input
// tuple, and one input can produce several outputs).
class OperatorInstance::EmitCollector : public core::Collector {
 public:
  void EmitTo(int port, core::Tuple tuple) override {
    emissions.emplace_back(port, std::move(tuple));
    suppressed.push_back(suppress);
  }

  std::vector<std::pair<int, core::Tuple>> emissions;
  std::vector<bool> suppressed;
  bool suppress = false;
};

OperatorInstance::OperatorInstance(Cluster* cluster, Params params)
    : cluster_(cluster), p_(params), origin_(params.origin) {
  SEEP_CHECK(p_.spec != nullptr);
  switch (p_.spec->kind) {
    case core::VertexKind::kSource:
      source_ = p_.spec->source_factory(p_.source_index, p_.source_count);
      break;
    case core::VertexKind::kOperator:
      operator_ = p_.spec->factory();
      break;
    case core::VertexKind::kSink:
      sink_ = p_.spec->sink_factory();
      break;
  }
  downstream_ops_ = cluster_->graph()->Downstream(p_.op);
}

OperatorInstance::~OperatorInstance() = default;

double OperatorInstance::CostMicrosPerTuple() const {
  if (operator_) return operator_->CostMicrosPerTuple();
  return p_.spec->endpoint_cost_us;
}

// ------------------------------------------------------------------ lifecycle

void OperatorInstance::Start() {
  if (source_) ScheduleSourceTick();
  if (operator_ && operator_->TimerInterval() > 0) ScheduleWindowTimer();

  const FaultToleranceMode mode = cluster_->config().ft_mode;
  const bool is_inner = p_.spec->kind == core::VertexKind::kOperator;
  if (mode == FaultToleranceMode::kStateManagement && is_inner) {
    ScheduleCheckpointTimer();
  }
  // Age-based buffer trimming replaces checkpoint-driven trimming in the
  // baselines (and bounds buffers when checkpointing is off entirely).
  if (mode != FaultToleranceMode::kStateManagement) ScheduleAgeTrim();
}

void OperatorInstance::Stop() {
  stopped_ = true;
  queue_.clear();
  queued_tuples_ = 0;
}

void OperatorInstance::MarkDead(SimTime now) {
  alive_ = false;
  died_at_ = now;
  queue_.clear();
  queued_tuples_ = 0;
}

void OperatorInstance::Pause() { paused_ = true; }

void OperatorInstance::Resume() {
  if (!paused_) return;
  paused_ = false;
  TryStartJob();
}

// -------------------------------------------------------------------- arrival

void OperatorInstance::OnBatch(core::TupleBatch batch) {
  if (!alive_ || stopped_) return;
  const size_t n = batch.tuples.size();
  if (batch.fence_id == 0 && !batch.replay &&
      queued_tuples_ + n > cluster_->config().max_queue_tuples) {
    cluster_->metrics()->dropped_tuples.Add(cluster_->Now(), n);
    return;
  }
  queued_tuples_ += n;
  Job job;
  job.kind = Job::Kind::kBatch;
  job.batch = std::move(batch);
  EnqueueJob(std::move(job));
}

// ------------------------------------------------------------------ job queue

void OperatorInstance::EnqueueJob(Job job) {
  // Checkpoints jump the queue: the paper's checkpointing is asynchronous
  // (get-processing-state briefly locks the operator), so a backlog of
  // tuples must not delay the checkpoint — a late checkpoint delays trim
  // acknowledgements, upstream buffers balloon, and the next recovery or
  // scale-out replays far more than one interval's worth.
  if (job.kind == Job::Kind::kCheckpoint) {
    queue_.push_front(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
  TryStartJob();
}

void OperatorInstance::TryStartJob() {
  if (busy_ || paused_ || !alive_ || stopped_ || queue_.empty()) return;

  auto job = std::make_shared<Job>(std::move(queue_.front()));
  queue_.pop_front();

  // Determine the job's CPU cost. Checkpoints snapshot state at job start
  // (the paper's get-processing-state "locks all internal operator data
  // structures") so their cost reflects the real encoded size.
  switch (job->kind) {
    case Job::Kind::kBatch:
      job->cost_us = static_cast<double>(job->batch.tuples.size()) *
                     CostMicrosPerTuple();
      break;
    case Job::Kind::kCheckpoint: {
      job->ckpt = std::make_unique<core::StateCheckpoint>(
          CanCheckpointIncrementally() ? MakeDeltaCheckpoint()
                                       : MakeCheckpoint());
      if (job->ckpt->is_delta) {
        ++cluster_->metrics()->delta_checkpoints_taken;
      }
      // Serialisation CPU is charged for the processing state only: buffer
      // tuples are retained in wire format and need no re-encoding (their
      // bytes still cost network transfer below). This is what makes
      // frequent checkpoints of large state expensive (paper Figs. 14/15).
      const double kib =
          static_cast<double>(job->ckpt->processing.ByteSize() + 64) / 1024.0;
      job->cost_us = kib * cluster_->config().serialize_cost_us_per_kb;
      break;
    }
    case Job::Kind::kTimer: {
      EmitCollector collector;
      operator_->OnTimer(cluster_->Now(), &collector);
      job->timer_emissions = std::move(collector.emissions);
      job->cost_us = static_cast<double>(job->timer_emissions.size()) *
                     CostMicrosPerTuple();
      break;
    }
  }

  busy_ = true;
  const SimTime duration = std::max<SimTime>(
      0, static_cast<SimTime>(job->cost_us / p_.vm_capacity));
  const bool replay_catch_up =
      job->kind == Job::Kind::kBatch && job->batch.replay;
  if (!replay_catch_up) busy_accum_us_ += static_cast<double>(duration);
  cluster_->simulation()->Schedule(duration, [this, job]() {
    if (!alive_) return;
    busy_ = false;
    if (!stopped_) FinishJob(job.get());
    TryStartJob();
  });
}

void OperatorInstance::FinishJob(Job* job) {
  switch (job->kind) {
    case Job::Kind::kBatch:
      queued_tuples_ -= std::min(queued_tuples_, job->batch.tuples.size());
      if (job->batch.fence_id != 0) {
        cluster_->HandleFence(job->batch.fence_id, this);
        return;
      }
      if (sink_) {
        ConsumeAtSink(&job->batch);
      } else if (operator_) {
        ProcessBatch(&job->batch);
      }
      break;
    case Job::Kind::kCheckpoint:
      cluster_->BackupCheckpoint(this, std::move(*job->ckpt));
      break;
    case Job::Kind::kTimer:
      FlushEmissions(&job->timer_emissions, nullptr);
      break;
  }
}

// ----------------------------------------------------------------- processing

void OperatorInstance::ProcessBatch(core::TupleBatch* batch) {
  EmitCollector collector;
  MetricsRegistry* metrics = cluster_->metrics();
  for (core::Tuple& t : batch->tuples) {
    // Per-origin duplicate filtering: replayed tuples already reflected in
    // the restored state are discarded here (paper §3.2).
    const bool suppress =
        suppressing_ && t.timestamp <= suppress_until_.Get(t.origin);
    if (!positions_.Advance(t.origin, t.timestamp)) {
      ++metrics->duplicates_dropped;
      continue;
    }
    collector.suppress = suppress;
    operator_->Process(t, &collector);
    ++processed_tuples_;
  }
  ++metrics->tuples_processed;  // batch granularity is fine for this counter
  FlushEmissions(&collector.emissions, &collector.suppressed);
}

void OperatorInstance::ConsumeAtSink(core::TupleBatch* batch) {
  MetricsRegistry* metrics = cluster_->metrics();
  const SimTime now = cluster_->Now();
  for (core::Tuple& t : batch->tuples) {
    if (!positions_.Advance(t.origin, t.timestamp)) {
      ++metrics->duplicates_dropped;
      continue;
    }
    sink_->Consume(t, now);
    metrics->sink_tuples.Add(now, 1);
    if (t.latency_sample) {
      const double latency_ms = SimToMillis(now - t.event_time);
      metrics->latency_ms.Add(latency_ms);
      if (metrics->sink_tuples.total() % metrics->latency_series_stride ==
          0) {
        metrics->latency_series_ms.Add(now, latency_ms);
      }
    }
  }
}

void OperatorInstance::FlushEmissions(
    std::vector<std::pair<int, core::Tuple>>* emissions,
    const std::vector<bool>* suppressed) {
  std::map<InstanceId, core::TupleBatch> outgoing;
  for (size_t i = 0; i < emissions->size(); ++i) {
    auto& [port, tuple] = (*emissions)[i];
    SEEP_CHECK_LT(static_cast<size_t>(port), downstream_ops_.size());
    const OperatorId down = downstream_ops_[static_cast<size_t>(port)];
    tuple.timestamp = ++out_clock_;
    tuple.origin = origin_;
    // Suppressed emissions rebuild state only; the stopped parent already
    // delivered (and buffered through its checkpoint) these outputs.
    if (suppressed != nullptr && (*suppressed)[i]) continue;
    if (BuffersTo(down)) buffer_.Append(down, tuple);
    const InstanceId dest = cluster_->routing()->RouteKey(down, tuple.key);
    if (dest == kInvalidInstance) continue;
    sent_[down][dest] = tuple.timestamp;
    outgoing[dest].tuples.push_back(std::move(tuple));
  }
  for (auto& [dest, batch] : outgoing) {
    cluster_->SendBatch(this, dest, std::move(batch));
  }
}

bool OperatorInstance::BuffersTo(OperatorId down_op) const {
  const core::OperatorSpec* down = cluster_->graph()->Get(down_op);
  // Sinks are assumed reliable (paper §2.2), so no replay buffer is needed
  // for them. In source-replay mode only sources keep buffers.
  if (down->kind == core::VertexKind::kSink) return false;
  if (cluster_->config().ft_mode == FaultToleranceMode::kSourceReplay) {
    return p_.spec->kind == core::VertexKind::kSource;
  }
  return true;
}

// ----------------------------------------------------------- periodic events

void OperatorInstance::ScheduleCheckpointTimer() {
  cluster_->simulation()->Schedule(
      cluster_->config().checkpoint_interval, [this]() {
        if (!alive_ || stopped_) return;
        if (!checkpoints_suspended_) {
          Job job;
          job.kind = Job::Kind::kCheckpoint;
          EnqueueJob(std::move(job));
        }
        ScheduleCheckpointTimer();
      });
}

void OperatorInstance::ScheduleWindowTimer() {
  cluster_->simulation()->Schedule(operator_->TimerInterval(), [this]() {
    if (!alive_ || stopped_) return;
    Job job;
    job.kind = Job::Kind::kTimer;
    EnqueueJob(std::move(job));
    ScheduleWindowTimer();
  });
}

void OperatorInstance::ScheduleSourceTick() {
  const SimTime dt = cluster_->config().source_tick;
  cluster_->simulation()->Schedule(dt, [this, dt]() {
    if (!alive_ || stopped_) return;
    ScheduleSourceTick();
    if (paused_) {
      // Generation is halted (source-replay recovery pauses sources), but
      // the offered load is backlogged — a real feeder reads from a log —
      // and is emitted as a catch-up burst on resume.
      owed_source_time_ += dt;
      return;
    }
    const SimTime effective_dt = dt + owed_source_time_;
    owed_source_time_ = 0;
    EmitCollector collector;
    source_->GenerateBatch(cluster_->Now(), effective_dt, &collector);
    // Finite source capacity: the paper's sources max out on serialisation
    // (~600k tuples/s); beyond that, generation saturates.
    const double cost = p_.spec->endpoint_cost_us;
    const size_t max_tuples = static_cast<size_t>(
        p_.vm_capacity * static_cast<double>(dt) / std::max(cost, 1e-9));
    if (collector.emissions.size() > max_tuples) {
      collector.emissions.resize(max_tuples);
      ++cluster_->metrics()->source_saturated_ticks;
    }
    cluster_->metrics()->source_tuples.Add(cluster_->Now(),
                                           collector.emissions.size());
    FlushEmissions(&collector.emissions, nullptr);
  });
}

void OperatorInstance::ScheduleAgeTrim() {
  cluster_->simulation()->Schedule(kMicrosPerSecond, [this]() {
    if (!alive_ || stopped_) return;
    const SimTime cutoff = cluster_->Now() - cluster_->config().buffer_window;
    if (cutoff > 0) buffer_.TrimByEventTime(cutoff);
    ScheduleAgeTrim();
  });
}

// ----------------------------------------------------------- state management

core::StateCheckpoint OperatorInstance::MakeCheckpoint() {
  core::StateCheckpoint c;
  c.op = p_.op;
  c.instance = p_.id;
  c.origin = origin_;
  c.key_range = p_.range;
  c.out_clock = out_clock_;
  c.seq = ++ckpt_seq_;
  c.taken_at = cluster_->Now();
  c.positions = positions_;
  if (operator_ && operator_->IsStateful()) {
    c.processing = operator_->GetProcessingState();
    // A full checkpoint captures everything; reset delta tracking so the
    // next incremental checkpoint starts from this base.
    operator_->ClearStateDelta();
  }
  c.buffer = buffer_;
  for (const auto& [op_id, tuples] : buffer_.buffers()) {
    shipped_buffer_back_[op_id] =
        tuples.empty() ? out_clock_ : tuples.back().timestamp;
  }
  return c;
}

bool OperatorInstance::CanCheckpointIncrementally() const {
  const ClusterConfig& config = cluster_->config();
  if (!config.incremental_checkpoints) return false;
  if (operator_ == nullptr) return false;
  // Stateless operators always qualify: their delta is just the new buffer
  // tuples. Stateful operators must track dirty keys (including deletions).
  if (operator_->IsStateful() && !operator_->SupportsIncrementalState()) {
    return false;
  }
  // Periodic full resync bounds staleness after any failed delta apply.
  if (config.full_checkpoint_every > 0 &&
      (ckpt_seq_ + 1) % config.full_checkpoint_every == 0) {
    return false;
  }
  // The stored base must be at this sequence and at the holder Algorithm 1
  // would pick now (upstream repartitioning moves the holder). Find, not
  // Retrieve: this runs before every checkpoint and must not copy the base.
  const BackupStore::Entry* entry = cluster_->backups()->Find(p_.id);
  if (entry == nullptr) return false;
  if (entry->checkpoint.seq != ckpt_seq_) return false;
  return entry->holder == cluster_->BackupHolderFor(this);
}

core::StateCheckpoint OperatorInstance::MakeDeltaCheckpoint() {
  core::StateCheckpoint c;
  c.op = p_.op;
  c.instance = p_.id;
  c.origin = origin_;
  c.key_range = p_.range;
  c.out_clock = out_clock_;
  c.seq = ckpt_seq_ + 1;
  c.base_seq = ckpt_seq_;
  ++ckpt_seq_;
  c.taken_at = cluster_->Now();
  c.positions = positions_;
  c.is_delta = true;
  // The operator's dirty-key tracking makes this O(changed keys): only
  // entries written since the base checkpoint are captured.
  core::StateDelta delta = operator_->TakeProcessingStateDelta();
  c.processing = std::move(delta.updated);
  c.deleted_keys = std::move(delta.deleted);
  // Buffer delta: tuples beyond the last shipped timestamp, plus the
  // current buffer fronts so the holder can mirror our trims. Buffers are
  // timestamp-sorted, so the unshipped suffix starts at a binary search —
  // the capture never rescans tuples already shipped with an earlier delta.
  for (const auto& [op_id, tuples] : buffer_.buffers()) {
    const int64_t shipped = [&] {
      auto it = shipped_buffer_back_.find(op_id);
      return it == shipped_buffer_back_.end() ? INT64_MIN : it->second;
    }();
    c.buffer_front[op_id] =
        tuples.empty() ? out_clock_ + 1 : tuples.front().timestamp;
    for (auto it = tuples.UpperBound(shipped); it != tuples.end(); ++it) {
      c.buffer.Append(op_id, *it);
    }
    shipped_buffer_back_[op_id] =
        tuples.empty() ? out_clock_ : tuples.back().timestamp;
  }
  return c;
}

void OperatorInstance::Restore(const core::StateCheckpoint& checkpoint,
                               bool inherit_origin) {
  if (inherit_origin) {
    origin_ = checkpoint.origin;
    out_clock_ = checkpoint.out_clock;
  }
  positions_ = checkpoint.positions;
  if (operator_) operator_->SetProcessingState(checkpoint.processing);
  buffer_ = checkpoint.buffer;
  // Continue the checkpoint lineage: the restored state equals the stored
  // base of this sequence number, so subsequent delta checkpoints apply
  // cleanly on top of it.
  ckpt_seq_ = checkpoint.seq;
  shipped_buffer_back_.clear();
  for (const auto& [op_id, tuples] : buffer_.buffers()) {
    if (!tuples.empty()) shipped_buffer_back_[op_id] = tuples.back().timestamp;
  }
}

void OperatorInstance::SetSuppressUntil(core::InputPositions positions) {
  suppress_until_ = std::move(positions);
  suppressing_ = true;
}

void OperatorInstance::MergeState(const core::ProcessingState& state) {
  SEEP_CHECK(operator_ != nullptr);
  operator_->MergeProcessingState(state);
}

void OperatorInstance::ResetEmpty(core::OriginId fresh_origin) {
  origin_ = fresh_origin;
  out_clock_ = 0;
  positions_ = core::InputPositions();
  suppress_until_ = core::InputPositions();
  suppressing_ = false;
  buffer_ = core::BufferState();
  queue_.clear();
  queued_tuples_ = 0;
  ckpt_seq_ = 0;
  shipped_buffer_back_.clear();
  if (operator_) operator_->SetProcessingState(core::ProcessingState());
}

// --------------------------------------------------------------------- replay

void OperatorInstance::ReplayBuffer(OperatorId down, int64_t from_ts,
                                    const std::vector<InstanceId>& targets,
                                    uint64_t fence_id) {
  std::map<InstanceId, core::TupleBatch> outgoing;
  const core::TupleBuffer* tuples = buffer_.Get(down);
  size_t replayed = 0;
  if (tuples != nullptr) {
    // Timestamp-sorted buffer: start straight at the first tuple past the
    // restore point instead of scanning the already-covered prefix.
    for (auto it = tuples->UpperBound(from_ts); it != tuples->end(); ++it) {
      const core::Tuple& t = *it;
      const InstanceId dest = cluster_->routing()->RouteKey(down, t.key);
      if (std::find(targets.begin(), targets.end(), dest) == targets.end()) {
        continue;
      }
      auto [sent_it, inserted] = sent_[down].try_emplace(dest, t.timestamp);
      if (!inserted) sent_it->second = std::max(sent_it->second, t.timestamp);
      outgoing[dest].tuples.push_back(t);
      ++replayed;
    }
  }
  cluster_->metrics()->tuples_replayed += replayed;
  for (auto& [dest, batch] : outgoing) {
    batch.replay = true;
    cluster_->SendBatch(this, dest, std::move(batch));
  }
  if (fence_id != 0) {
    // The fence follows the replay batches on the same FIFO links, so its
    // arrival implies the replay has fully drained.
    for (InstanceId dest : targets) {
      core::TupleBatch fence;
      fence.fence_id = fence_id;
      fence.replay = true;
      cluster_->SendBatch(this, dest, std::move(fence));
    }
  }
}

void OperatorInstance::OnTrimAck(OperatorId down_op, InstanceId down_instance,
                                 int64_t position) {
  auto& acks = acks_[down_op];
  auto [it, inserted] = acks.try_emplace(down_instance, position);
  if (!inserted) it->second = std::max(it->second, position);
  MaybeTrim(down_op);
}

void OperatorInstance::PruneAcks(OperatorId down_op) {
  const std::vector<InstanceId> current = cluster_->InstancesOf(down_op);
  auto prune = [&](std::map<InstanceId, int64_t>* table) {
    for (auto entry = table->begin(); entry != table->end();) {
      if (std::find(current.begin(), current.end(), entry->first) ==
          current.end()) {
        entry = table->erase(entry);
      } else {
        ++entry;
      }
    }
  };
  if (auto it = acks_.find(down_op); it != acks_.end()) prune(&it->second);
  if (auto it = sent_.find(down_op); it != sent_.end()) prune(&it->second);
}

void OperatorInstance::SeedAck(OperatorId down_op, InstanceId down_instance,
                               int64_t position) {
  acks_[down_op][down_instance] = position;
}

void OperatorInstance::MaybeTrim(OperatorId down_op) {
  // Trim to the minimum acknowledged position over the current partitions
  // that still have outstanding (sent but not checkpoint-covered) tuples
  // from this instance. Partitions with nothing outstanding don't constrain
  // the trim: every tuple routed to them is reflected in their latest
  // checkpoint, so recovery never replays it.
  const std::vector<InstanceId> current = cluster_->InstancesOf(down_op);
  if (current.empty()) return;
  const auto& acks = acks_[down_op];
  const auto& sent = sent_[down_op];
  auto lookup = [](const std::map<InstanceId, int64_t>& table,
                   InstanceId id) {
    auto it = table.find(id);
    return it == table.end() ? INT64_MIN : it->second;
  };
  int64_t bound = INT64_MAX;
  int64_t max_sent = INT64_MIN;
  for (InstanceId inst : current) {
    const int64_t s = lookup(sent, inst);
    const int64_t a = lookup(acks, inst);
    max_sent = std::max(max_sent, s);
    if (s > a) bound = std::min(bound, a);
  }
  if (bound == INT64_MAX) {
    // Nothing outstanding anywhere: everything sent so far is covered.
    bound = max_sent;
  }
  if (bound > INT64_MIN) buffer_.Trim(down_op, bound);
}

double OperatorInstance::TakeBusyMicros() {
  const double v = busy_accum_us_;
  busy_accum_us_ = 0;
  return v;
}

}  // namespace seep::runtime
