#ifndef SEEP_RUNTIME_EMISSION_ROUTER_H_
#define SEEP_RUNTIME_EMISSION_ROUTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "core/state.h"
#include "core/tuple.h"

namespace seep::runtime {

class Cluster;
class OperatorInstance;
class TrimTracker;

/// The outbound half of one operator instance: stamps emissions with the
/// instance's origin and monotone output clock, appends them to the replay
/// buffer where required, routes them by key and ships per-destination
/// batches through the Transport. Also owns catch-up suppression (paper
/// §3.2): while re-processing replayed tuples the stopped parent already
/// delivered, state is updated but emissions are dropped.
class EmissionRouter {
 public:
  EmissionRouter(Cluster* cluster, OperatorInstance* instance,
                 TrimTracker* trims);

  /// Routes and ships one invocation's emissions. `suppressed` (parallel to
  /// `emissions`, may be null) flags outputs of replayed inputs that the
  /// stopped parent already delivered downstream.
  void Flush(std::vector<std::pair<int, core::Tuple>>* emissions,
             const std::vector<bool>* suppressed);

  void SetSuppressUntil(core::InputPositions positions);

  /// Whether an input tuple's outputs must be suppressed (its timestamp is
  /// at or below the suppression position of its origin).
  bool ShouldSuppress(core::OriginId origin, int64_t timestamp) const {
    return suppressing_ && timestamp <= suppress_until_.Get(origin);
  }

  /// Whether this instance keeps a replay buffer for `down_op` under the
  /// configured fault-tolerance mode.
  bool BuffersTo(OperatorId down_op) const;

  int64_t out_clock() const { return out_clock_; }
  void set_out_clock(int64_t clock) { out_clock_ = clock; }

  /// Clears the output clock and suppression state (ResetEmpty).
  void Reset();

 private:
  Cluster* cluster_;
  OperatorInstance* inst_;
  TrimTracker* trims_;

  int64_t out_clock_ = 0;
  core::InputPositions suppress_until_;
  bool suppressing_ = false;
  std::vector<OperatorId> downstream_ops_;  // port order (graph edge order)
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_EMISSION_ROUTER_H_
