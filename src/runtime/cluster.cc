#include "runtime/cluster.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "common/logging.h"
#include "common/sync.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {
namespace {

/// A fresh per-cluster store directory under the working directory:
/// pid + a process-wide counter keep concurrent clusters (and test shards)
/// apart without consulting the clock.
std::string MakeStoreDirectory() {
  static std::atomic<uint32_t> counter{0};
  const uint32_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path dir =
      std::filesystem::current_path() /
      (".seep-store-" + std::to_string(::getpid()) + "-" + std::to_string(n));
  return dir.string();
}

}  // namespace

Cluster::Cluster(const core::QueryGraph* graph, ClusterConfig config)
    : graph_(graph),
      config_(config),
      network_(&sim_, config.network),
      provider_(&sim_, config.provider, config.seed ^ 0xC10DD),
      pool_(&sim_, &provider_, config.pool),
      membership_(this),
      fences_(this) {
  if (config_.transport == TransportKind::kTcp) {
    transport_ = std::make_unique<TcpTransport>(this, config_.tcp);
  } else {
    transport_ = std::make_unique<SimTransport>(this);
  }
  // Background serialization stage of the async checkpoint pipeline. With
  // the sim backend it is a deterministic deferred event charged the same
  // serialization cost the synchronous pause models; with TCP it runs on
  // real per-VM worker threads drained by a pump.
  ckpt_serializer_ = std::make_unique<CkptSerializer>(
      &sim_, /*threaded=*/config_.transport == TransportKind::kTcp,
      config_.compress_checkpoints, config_.tcp.pump_interval,
      [this](const core::StateCheckpoint& snapshot) {
        const double kib =
            static_cast<double>(snapshot.processing.ByteSize() + 64) / 1024.0;
        return static_cast<SimTime>(kib * config_.serialize_cost_us_per_kb);
      },
      [this](SerializedCkptFrame frame) {
        // Completions are dispatched by the serializer's driver-side pump
        // (or a sim event); never directly by a worker thread.
        SEEP_ASSERT_RUN_ON(sync::DriverThread);
        ShipSerializedCheckpoint(this, std::move(frame));
      });
  if (config_.audit_level > verify::kAuditOff) {
    auditor_ = std::make_unique<verify::InvariantAuditor>(config_.audit_level);
  }
  if (config_.backup_durability != BackupDurability::kMemory) {
    store::CheckpointLogConfig log_config = config_.store;
    if (log_config.directory.empty()) {
      owned_store_dir_ = MakeStoreDirectory();
      log_config.directory = owned_store_dir_;
    }
    auto log = store::CheckpointLog::Open(log_config);
    if (!log.ok()) {
      SEEP_LOG(kWarn, 0) << "durable checkpoint log failed to open at "
                         << log_config.directory << ": "
                         << log.status().message();
    }
    SEEP_CHECK(log.ok());
    durable_log_ = std::move(log).value();
    backups_.AttachDurable(durable_log_.get(), config_.backup_durability,
                           config_.compress_checkpoints, auditor_.get());
  }
}

Cluster::~Cluster() {
  // Close the log (joining its compactor) before deleting an auto-created
  // store directory out from under it.
  durable_log_.reset();
  if (!owned_store_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(owned_store_dir_, ec);
  }
}

void Cluster::DeleteBackup(InstanceId owner) {
  ckpt_reassembler_.ForgetOwner(owner);
  backups_.Delete(owner);
}

void Cluster::InstallRoutes(OperatorId down_op,
                            std::vector<core::RoutingState::Route> routes) {
  if (auditor_) auditor_->OnRoutesInstalled(down_op, routes);
  routing_.SetRoutes(down_op, std::move(routes));
}

}  // namespace seep::runtime
